// Experiment T2 — convergence order on a smooth SRHD flow.
// Density wave advected on a periodic domain (exact solution known);
// L1 error and measured order per reconstruction as N doubles.
//
// Expected shape: PCM ~ 1st order, PLM ~ 2nd, PPM ~ 3rd; WENO5's spatial
// 5th order is capped near 3 by the SSP-RK3 time integrator at fixed CFL
// (documented in EXPERIMENTS.md).

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  const std::vector<long long> sizes = {32, 64, 128, 256};
  const std::vector<recon::Method> recons = {
      recon::Method::kPCM, recon::Method::kPLMMC, recon::Method::kPPM,
      recon::Method::kWENO5};
  constexpr double kTEnd = 0.2;

  Table table({"recon", "N", "L1_rho", "order"});
  table.set_title("T2: smooth-wave convergence (t=0.2, CFL=0.2, SSP-RK3)");

  for (const auto rm : recons) {
    double prev_err = -1.0;
    for (const long long n : sizes) {
      auto s = bench::make_wave_solver(n, rm);
      s->advance_to(kTEnd);
      const double err = bench::wave_l1_error(*s);
      table.add_row({std::string(recon::method_name(rm)), n, err,
                     prev_err > 0.0
                         ? analysis::convergence_order(prev_err, err)
                         : 0.0});
      prev_err = err;
    }
  }
  bench::emit(table, "t2_convergence");
  return 0;
}
