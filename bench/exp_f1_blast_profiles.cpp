// Experiment F1 — strongly relativistic blast-wave profiles (figure).
// Marti & Mueller problem 2 (p_L/p_R = 1e5, W* ~ 3.6) at N=800 with
// WENO5 + HLLC; emits the (x, rho, p, vx) series against the exact
// solution — the data behind the classic thin-shell blast figure.
//
// Expected shape: numerical profile tracks the exact rarefaction fan,
// captures the contact and the thin shocked shell (with the shell peak
// under-resolved at finite N — its height grows toward the exact value
// with resolution).

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 800;
  const problems::ShockTube st = problems::marti_muller_2();

  auto s = bench::make_tube_solver(st, kN, recon::Method::kWENO5,
                                   riemann::Solver::kHLLC);
  WallTimer t;
  const int steps = s->advance_to(st.t_final);
  const double seconds = t.seconds();

  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);

  const auto rho = s->gather_prim_var(srhd::kRho);
  const auto p = s->gather_prim_var(srhd::kP);
  const auto vx = s->gather_prim_var(srhd::kVx);

  Table table({"x", "rho", "rho_exact", "p", "p_exact", "vx", "vx_exact"});
  table.set_title("F1: MM2 blast profiles at t=0.35 (N=800, WENO5+HLLC)");
  for (long long i = 0; i < kN; i += 16) {
    const double x = s->grid().cell_center(0, i);
    const auto e = exact.sample((x - st.x_split) / st.t_final);
    table.add_row({x, rho[static_cast<std::size_t>(i)], e.rho,
                   p[static_cast<std::size_t>(i)], e.p,
                   vx[static_cast<std::size_t>(i)], e.v});
  }
  bench::emit(table, "f1_blast_profiles");

  const auto err = bench::tube_errors(*s, st);
  std::printf("summary: steps=%d wall=%.2fs L1(rho)=%.4e L1(vx)=%.4e "
              "p*=%.3f v*=%.4f floored=%lld\n",
              steps, seconds, err.l1_rho, err.l1_vx, exact.p_star(),
              exact.v_star(), s->c2p_stats().floored_zones);
  return 0;
}
