// Experiment T4 — conservative-to-primitive robustness and cost.
// Sweeps Lorentz factor W and pressure-to-density ratio over many decades
// for SRHD and for SRMHD at magnetization sigma ~ 1; reports mean/max
// Newton iterations and the failure (atmosphere-fallback) count.
//
// Expected shape: iteration counts grow slowly with W and stay bounded
// (< ~40) everywhere; zero failures across the physical sweep, including
// W = 50 and p/rho from 1e-8 to 1e8.

#include "exp_common.hpp"
#include "rshc/srmhd/con2prim.hpp"

int main() {
  using namespace rshc;
  const eos::IdealGas eos_h(5.0 / 3.0);
  const std::vector<double> lorentz = {1.01, 2.0, 5.0, 10.0, 20.0, 50.0};
  const std::vector<double> p_over_rho = {1e-8, 1e-4, 1e-2, 1.0,
                                          1e2,  1e4,  1e8};

  Table table({"system", "W", "mean_iters", "max_iters", "failures",
               "worst_rel_err"});
  table.set_title("T4: con2prim robustness across (W, p/rho) sweep");

  for (const bool mhd : {false, true}) {
    for (const double W : lorentz) {
      const double v = std::sqrt(1.0 - 1.0 / (W * W));
      long long total_iters = 0;
      long long max_iters = 0;
      long long failures = 0;
      long long cases = 0;
      double worst_err = 0.0;
      for (const double pr : p_over_rho) {
        // Several velocity orientations per (W, p/rho).
        for (const auto& dir :
             {std::array<double, 3>{1, 0, 0}, std::array<double, 3>{0.6, 0.8, 0},
              std::array<double, 3>{0.57735, 0.57735, 0.57735}}) {
          ++cases;
          if (!mhd) {
            srhd::Prim w;
            w.rho = 1.0;
            w.vx = v * dir[0];
            w.vy = v * dir[1];
            w.vz = v * dir[2];
            w.p = pr;
            const auto r = srhd::cons_to_prim(
                srhd::prim_to_cons(w, eos_h), eos_h);
            total_iters += r.iterations;
            max_iters = std::max<long long>(max_iters, r.iterations);
            failures += r.floored ? 1 : 0;
            if (!r.floored) {
              worst_err = std::max(worst_err,
                                   std::abs(r.prim.rho - w.rho) / w.rho);
            }
          } else {
            srmhd::Prim w;
            w.rho = 1.0;
            w.vx = v * dir[0];
            w.vy = v * dir[1];
            w.vz = v * dir[2];
            w.p = pr;
            // sigma ~ 1 field oblique to the flow.
            w.bx = 0.6;
            w.by = -0.7;
            w.bz = 0.2;
            const auto r = srmhd::cons_to_prim(
                srmhd::prim_to_cons(w, eos_h), eos_h);
            total_iters += r.iterations;
            max_iters = std::max<long long>(max_iters, r.iterations);
            failures += r.floored ? 1 : 0;
            if (!r.floored) {
              worst_err = std::max(worst_err,
                                   std::abs(r.prim.rho - w.rho) / w.rho);
            }
          }
        }
      }
      table.add_row({std::string(mhd ? "srmhd" : "srhd"), W,
                     static_cast<double>(total_iters) /
                         static_cast<double>(cases),
                     max_iters, failures, worst_err});
    }
  }
  bench::emit(table, "t4_con2prim");
  return 0;
}
