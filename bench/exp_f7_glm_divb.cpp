// Experiment F7 — GLM divergence cleaning (figure).
// Field-loop advection on a periodic box: the discretized loop edge seeds
// div B noise every step; with GLM the error is advected away at c_h and
// damped, without it the error accumulates.
//
// Expected shape: max|div B| with cleaning settles well below the
// uncleaned curve (a widening gap over time), while the physical fields
// remain essentially identical at this weak magnetization.

#include "rshc/solver/diagnostics.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 64;
  constexpr int kSteps = 120;
  constexpr int kSample = 10;

  Table table({"step", "t", "divb_glm_on", "divb_glm_off", "psi_l2",
               "ratio_off_over_on"});
  table.set_title("F7: max|div B| with and without GLM cleaning "
                  "(field loop, 64^2)");

  auto make = [&](bool glm) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrmhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.3;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(5.0 / 3.0);
    opt.physics.glm.enabled = glm;
    auto s = std::make_unique<solver::SrmhdSolver>(grid, opt);
    s->initialize(problems::field_loop_ic({}));
    return s;
  };
  auto on = make(true);
  auto off = make(false);

  for (int step = 0; step <= kSteps; ++step) {
    if (step % kSample == 0) {
      const double d_on = solver::max_divb(*on);
      const double d_off = solver::max_divb(*off);
      table.add_row({static_cast<long long>(step), on->time(), d_on, d_off,
                     solver::psi_l2(*on),
                     d_on > 0.0 ? d_off / d_on : 0.0});
    }
    const double dt = std::min(on->compute_dt(), off->compute_dt());
    on->step(dt);
    off->step(dt);
  }
  bench::emit(table, "f7_glm_divb");
  return 0;
}
