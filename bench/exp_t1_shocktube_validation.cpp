// Experiment T1 — shock-tube validation table.
// For each standard problem (MM1 / MM2 / relativistic Sod) and each
// (reconstruction x Riemann solver) combination, evolve to t_final and
// report the L1 errors against the exact Riemann solution.
//
// Expected shape: error decreases monotonically PCM -> PLM -> PPM/WENO5
// and LLF -> HLL -> HLLC at fixed N; MM2 (the W ~ 3.6 blast) is the
// hardest and carries the largest absolute errors.

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 200;

  Table table({"problem", "recon", "riemann", "L1_rho", "L1_vx", "steps",
               "floored"});
  table.set_title(
      "T1: shock-tube validation, N=200, L1 error vs exact solution");

  const std::vector<problems::ShockTube> tubes = {
      problems::marti_muller_1(), problems::marti_muller_2(),
      problems::sod()};
  const std::vector<recon::Method> recons = {
      recon::Method::kPCM, recon::Method::kPLMMC, recon::Method::kPPM,
      recon::Method::kWENO5};
  const std::vector<riemann::Solver> solvers = {
      riemann::Solver::kLLF, riemann::Solver::kHLL, riemann::Solver::kHLLC};

  for (const auto& st : tubes) {
    for (const auto rm : recons) {
      for (const auto rs : solvers) {
        auto s = bench::make_tube_solver(st, kN, rm, rs);
        const int steps = s->advance_to(st.t_final);
        const auto err = bench::tube_errors(*s, st);
        table.add_row({st.name, std::string(recon::method_name(rm)),
                       std::string(riemann::solver_name(rs)), err.l1_rho,
                       err.l1_vx, static_cast<long long>(steps),
                       s->c2p_stats().floored_zones});
      }
    }
  }
  bench::emit(table, "t1_shocktube_validation");
  return 0;
}
