// Ablation A1 — GLM damping strength.
// Field-loop advection with the cleaning-wave damping parameter alpha
// swept from 0 (pure advection of div B errors, no damping) through the
// literature range (~0.1-0.5, Mignone & Tzeferacos 2010) to over-damped.
//
// Expected shape: alpha = 0 leaves a larger steady psi norm; moderate
// alpha minimizes both max|div B| and psi; very large alpha degrades
// cleaning back toward the undamped level because psi is destroyed before
// it can carry divergence away.

#include "rshc/solver/diagnostics.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 48;
  constexpr int kSteps = 80;

  Table table({"alpha", "final_max_divB", "final_psi_l2", "floored"});
  table.set_title("A1: GLM damping-strength ablation (field loop, 48^2)");

  for (const double alpha : {0.0, 0.1, 0.3, 1.0, 5.0}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrmhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.3;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(5.0 / 3.0);
    opt.physics.glm.alpha = alpha;
    solver::SrmhdSolver s(grid, opt);
    s.initialize(problems::field_loop_ic({}));
    for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());
    table.add_row({alpha, solver::max_divb(s), solver::psi_l2(s),
                   s.c2p_stats().floored_zones});
  }
  bench::emit(table, "a1_glm_alpha");
  return 0;
}
