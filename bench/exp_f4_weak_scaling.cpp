// Experiment F4 — weak scaling (figure).
// 64x64 zones *per worker*: the grid grows with the worker count, so
// perfect weak scaling keeps time/step constant.
//
// Expected shape (many-core host): near-flat time/step; on this 1-core
// machine time/step instead grows linearly with workers, which is the
// correct oversubscribed limit and is called out in EXPERIMENTS.md.

#include "rshc/parallel/thread_pool.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kPerWorker = 64;
  constexpr int kSteps = 8;
  const std::vector<unsigned> workers = {1, 2, 4};

  Table table({"mode", "workers", "grid", "sec_per_step",
               "weak_efficiency", "Mzone_updates_per_s"});
  table.set_title("F4: weak scaling, 64^2 zones per worker "
                  "(1-core host; see EXPERIMENTS.md)");

  for (const bool dataflow : {false, true}) {
    double t1 = 0.0;
    for (const unsigned w : workers) {
      const long long nx = kPerWorker * w;
      const long long ny = kPerWorker;
      const mesh::Grid grid =
          mesh::Grid::make_2d(nx, ny, 0.0, static_cast<double>(w), -0.5, 0.5);
      solver::SrhdSolver::Options opt;
      opt.recon = recon::Method::kPLMMC;
      opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
      opt.physics.eos = eos::IdealGas(4.0 / 3.0);
      opt.blocks = {2 * static_cast<int>(w), 2, 1};
      solver::SrhdSolver s(grid, opt);
      s.initialize(problems::kelvin_helmholtz_ic({}));
      parallel::ThreadPool pool(w);
      const double dt = 0.1 / static_cast<double>(kPerWorker);
      s.step_parallel(dt, pool, dataflow);  // warm-up
      WallTimer t;
      if (dataflow) {
        s.run_steps_dataflow(kSteps, dt, pool);
      } else {
        s.run_steps_bulksync(kSteps, dt, pool);
      }
      const double per_step = t.seconds() / kSteps;
      if (w == 1) t1 = per_step;
      table.add_row({std::string(dataflow ? "dataflow" : "bulk-sync"),
                     static_cast<long long>(w),
                     std::to_string(nx) + "x" + std::to_string(ny),
                     per_step, t1 / per_step,
                     static_cast<double>(nx * ny) * 3.0 / per_step / 1e6});
    }
  }
  bench::emit(table, "f4_weak_scaling");
  return 0;
}
