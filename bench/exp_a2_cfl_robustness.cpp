// Ablation A2 — CFL number robustness.
// MM1 shock tube swept over CFL: accuracy, atmosphere fallbacks, and the
// stability boundary (SSP-RK3 + HLL is stable up to CFL ~ 1 in 1D; pushed
// past it the run goes non-finite or floors zones).
//
// Expected shape: error nearly flat for CFL <= 0.8 (spatial error
// dominates), then breakdown — floored zones and/or non-finite fields —
// past the stability limit.

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 200;
  const problems::ShockTube st = problems::marti_muller_1();

  Table table({"cfl", "L1_rho", "steps", "floored", "finite"});
  table.set_title("A2: CFL robustness ablation (MM1, N=200, PLM+HLL)");

  for (const double cfl : {0.2, 0.4, 0.6, 0.8, 1.0, 1.3}) {
    auto s = bench::make_tube_solver(st, kN, recon::Method::kPLMMC,
                                     riemann::Solver::kHLL, cfl);
    const int steps = s->advance_to(st.t_final);
    const auto rho = s->gather_prim_var(srhd::kRho);
    bool finite = true;
    for (const double r : rho) finite = finite && std::isfinite(r);
    const double err =
        finite ? bench::tube_errors(*s, st).l1_rho
               : std::numeric_limits<double>::quiet_NaN();
    table.add_row({cfl, err, static_cast<long long>(steps),
                   s->c2p_stats().floored_zones,
                   std::string(finite ? "yes" : "NO")});
  }
  bench::emit(table, "a2_cfl_robustness");
  return 0;
}
