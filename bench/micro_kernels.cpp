// B1 — google-benchmark microbenchmarks of the hot per-zone kernels:
// reconstruction variants, Riemann solvers, prim<->cons maps, the GLM
// interface flux, the RK combination kernel, and the solver rhs phase
// under the pencil vs batched host pipelines.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "rshc/problems/problems.hpp"
#include "rshc/recon/reconstruct.hpp"
#include "rshc/riemann/riemann.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/srhd/con2prim.hpp"
#include "rshc/srhd/kernels.hpp"
#include "rshc/srmhd/con2prim.hpp"

namespace {

using namespace rshc;

const eos::IdealGas kEos(5.0 / 3.0);

std::vector<double> random_pencil(std::size_t n, unsigned seed = 3) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.5, 2.0);
  std::vector<double> q(n);
  for (auto& x : q) x = u(rng);
  return q;
}

void BM_Reconstruct(benchmark::State& state) {
  const auto method = static_cast<recon::Method>(state.range(0));
  const std::size_t n = 256;
  const auto q = random_pencil(n);
  std::vector<double> ql(n), qr(n);
  for (auto _ : state) {
    recon::reconstruct(method, q, ql, qr);
    benchmark::DoNotOptimize(ql.data());
    benchmark::DoNotOptimize(qr.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(std::string(recon::method_name(method)));
}
BENCHMARK(BM_Reconstruct)
    ->Arg(static_cast<int>(recon::Method::kPCM))
    ->Arg(static_cast<int>(recon::Method::kPLMMC))
    ->Arg(static_cast<int>(recon::Method::kPPM))
    ->Arg(static_cast<int>(recon::Method::kWENO5));

void BM_RiemannSrhd(benchmark::State& state) {
  const auto solver = static_cast<riemann::Solver>(state.range(0));
  const srhd::Prim wl{1.0, 0.2, 0.1, 0.0, 1.0};
  const srhd::Prim wr{0.5, -0.3, 0.0, 0.0, 0.2};
  for (auto _ : state) {
    auto f = riemann::solve_srhd(solver, wl, wr, 0, kEos);
    benchmark::DoNotOptimize(f);
  }
  state.SetLabel(std::string(riemann::solver_name(solver)));
}
BENCHMARK(BM_RiemannSrhd)
    ->Arg(static_cast<int>(riemann::Solver::kLLF))
    ->Arg(static_cast<int>(riemann::Solver::kHLL))
    ->Arg(static_cast<int>(riemann::Solver::kHLLC));

void BM_RiemannSrmhdHll(benchmark::State& state) {
  srmhd::Prim wl;
  wl.rho = 1.0; wl.vx = 0.2; wl.p = 1.0; wl.bx = 0.5; wl.by = 0.3;
  srmhd::Prim wr;
  wr.rho = 0.5; wr.vx = -0.1; wr.p = 0.4; wr.bx = 0.5; wr.by = -0.2;
  const srmhd::GlmParams glm;
  for (auto _ : state) {
    auto f = riemann::solve_srmhd_hll(wl, wr, 0, kEos, glm);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_RiemannSrmhdHll);

void BM_Con2PrimSrhd(benchmark::State& state) {
  // Lorentz factor from the benchmark argument (1..50).
  const double W = static_cast<double>(state.range(0));
  const double v = std::sqrt(1.0 - 1.0 / (W * W));
  const srhd::Prim w{1.0, 0.8 * v, 0.6 * v, 0.0, 0.5};
  const srhd::Cons u = srhd::prim_to_cons(w, kEos);
  for (auto _ : state) {
    auto r = srhd::cons_to_prim(u, kEos);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Con2PrimSrhd)->Arg(1)->Arg(2)->Arg(10)->Arg(50);

void BM_Con2PrimSrmhd(benchmark::State& state) {
  srmhd::Prim w;
  w.rho = 1.0; w.vx = 0.5; w.vy = 0.3; w.p = 0.5;
  w.bx = 0.6; w.by = -0.7; w.bz = 0.2;
  const srmhd::Cons u = srmhd::prim_to_cons(w, kEos);
  for (auto _ : state) {
    auto r = srmhd::cons_to_prim(u, kEos);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Con2PrimSrmhd);

void BM_PrimToConsBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto rho = random_pencil(n, 1);
  const auto p = random_pencil(n, 2);
  std::vector<double> vx(n, 0.3), vy(n, -0.2), vz(n, 0.1);
  std::vector<double> d(n), sx(n), sy(n), sz(n), tau(n);
  const bool simd = state.range(1) != 0;
  for (auto _ : state) {
    if (simd) {
      srhd::kernels::simd::prim_to_cons_n(n, rho.data(), vx.data(),
                                          vy.data(), vz.data(), p.data(),
                                          d.data(), sx.data(), sy.data(),
                                          sz.data(), tau.data(), 5.0 / 3.0);
    } else {
      srhd::kernels::scalar::prim_to_cons_n(n, rho.data(), vx.data(),
                                            vy.data(), vz.data(), p.data(),
                                            d.data(), sx.data(), sy.data(),
                                            sz.data(), tau.data(),
                                            5.0 / 3.0);
    }
    benchmark::DoNotOptimize(tau.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_PrimToConsBatch)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 0})
    ->Args({65536, 1});

void BM_Axpby(benchmark::State& state) {
  const std::size_t n = 65536;
  const auto x = random_pencil(n);
  std::vector<double> y(n, 1.0);
  for (auto _ : state) {
    srhd::kernels::simd::axpby_n(n, 0.5, x.data(), 0.5, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * 16);
}
BENCHMARK(BM_Axpby);

void BM_ReconstructRows(benchmark::State& state) {
  // Batched plane entry point vs per-pencil dispatch: same kernels, the
  // dispatch and span setup hoisted out of the per-pencil loop.
  const std::size_t rows = 32;
  const std::size_t n = 256;
  const auto q = random_pencil(rows * n);
  std::vector<double> ql(rows * n);
  std::vector<double> qr(rows * n);
  const recon::PencilKernel fn = recon::pencil_kernel(recon::Method::kPLMMC);
  for (auto _ : state) {
    recon::reconstruct_rows(fn, rows, n, q.data(), n, ql.data(), qr.data(),
                            n);
    benchmark::DoNotOptimize(ql.data());
    benchmark::DoNotOptimize(qr.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * n));
}
BENCHMARK(BM_ReconstructRows);

void BM_SolverRhs(benchmark::State& state) {
  // Whole rhs phase (reconstruction + Riemann + flux differencing) on the
  // 2D KH workload the perf suite tracks, per host pipeline.
  const auto pipeline = static_cast<solver::HostPipeline>(state.range(0));
  const long long n = 64;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  opt.pipeline = pipeline;
  solver::SrhdSolver s(grid, opt);
  s.initialize(problems::kelvin_helmholtz_ic({}));
  for (auto _ : state) {
    s.compute_rhs_all();
    benchmark::DoNotOptimize(&s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          grid.num_cells());
  state.SetLabel(std::string(solver::host_pipeline_name(pipeline)));
}
BENCHMARK(BM_SolverRhs)
    ->Arg(static_cast<int>(solver::HostPipeline::kPencil))
    ->Arg(static_cast<int>(solver::HostPipeline::kBatchedScalar))
    ->Arg(static_cast<int>(solver::HostPipeline::kBatchedSimd));

void BM_GlmInterfaceFlux(benchmark::State& state) {
  for (auto _ : state) {
    auto f = srmhd::glm_interface_flux(0.4, 0.1, 0.2, -0.05, 1.0);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_GlmInterfaceFlux);

}  // namespace

BENCHMARK_MAIN();
