// Experiment F2 — relativistic Kelvin-Helmholtz growth (figure).
// Evolves the perturbed shear layer at several resolutions, samples the
// transverse-velocity RMS over time, and fits the linear-phase growth
// rate per resolution.
//
// Expected shape: exponential growth after a short transient; the fitted
// rate converges (differences shrink) as resolution increases, and higher
// resolution sustains growth longer before numerical diffusion saturates
// the layer.

#include "exp_common.hpp"

namespace {

double vy_rms(rshc::solver::SrhdSolver& s) {
  const auto vy = s.gather_prim_var(rshc::srhd::kVy);
  double sum = 0.0;
  for (const double v : vy) sum += v * v;
  return std::sqrt(sum / static_cast<double>(vy.size()));
}

}  // namespace

int main() {
  using namespace rshc;
  const std::vector<long long> sizes = {32, 48, 64};
  problems::KelvinHelmholtz kh;
  kh.layer_width = 0.08;   // >= 2.5 cells at the coarsest resolution
  kh.shear_velocity = 0.3;
  constexpr double kTEnd = 5.0;

  Table series({"N", "t", "vy_rms"});
  series.set_title("F2a: KH transverse-velocity amplitude vs time");
  Table rates({"N", "growth_rate", "samples_in_fit"});
  rates.set_title("F2b: fitted linear-phase growth rate per resolution");

  for (const long long n : sizes) {
    const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
    solver::SrhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.4;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    solver::SrhdSolver s(grid, opt);
    s.initialize(problems::kelvin_helmholtz_ic(kh));

    std::vector<double> times;
    std::vector<double> amps;
    double next_sample = 0.0;
    while (s.time() < kTEnd) {
      if (s.time() >= next_sample) {
        times.push_back(s.time());
        amps.push_back(vy_rms(s));
        series.add_row({n, s.time(), amps.back()});
        next_sample += kTEnd / 40.0;
      }
      double dt = s.compute_dt();
      if (s.time() + dt > kTEnd) dt = kTEnd - s.time();
      s.step(dt);
    }

    // Fit the developed exponential phase: the final 40% of the run,
    // after the seed transient has reorganized into the growing mode.
    std::vector<double> tf;
    std::vector<double> af;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] >= 0.6 * kTEnd) {
        tf.push_back(times[i]);
        af.push_back(amps[i]);
      }
    }
    const double rate =
        tf.size() >= 2 ? analysis::growth_rate(tf, af) : 0.0;
    rates.add_row({n, rate, static_cast<long long>(tf.size())});
  }
  bench::emit(series, "f2a_kh_series");
  bench::emit(rates, "f2b_kh_rates");
  return 0;
}
