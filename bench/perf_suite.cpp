// Performance-regression suite (CI artifact + local tool). One binary,
// three workloads, one schema-versioned BENCH_perf.json:
//
//  1. Pinned SoA kernels (prim2cons / con2prim / flux_x / axpby): each rep
//     is timed individually into a TimeHist so the report carries real
//     p50/p90/p99, not just a mean.
//  2. Single-process SRHD Kelvin-Helmholtz run: exercises the instrumented
//     solver phases (solver.phase.exchange / rhs / update / c2p / other)
//     under the default batched host pipeline, then repeats the identical
//     workload on the per-pencil reference path into "pencil."-prefixed
//     rows — every report carries the batched-vs-pencil comparison
//     (compare e.g. solver.phase.rhs against pencil.solver.phase.rhs).
//  3. Four-rank distributed KH run (run_world): each rank observes into
//     its own Registry via report::RankScope, and the per-rank snapshots
//     are merged into "dist."-prefixed rows with min/mean/max/imbalance
//     across ranks.
//
// Output path comes from RSHC_PERF_OUT (default BENCH_perf.json). Compare
// two runs with tools/perf_report.py; CI's perf-smoke lane gates on the
// structural checks only, since container timings are noisy.

#include <array>
#include <cstdlib>
#include <iostream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "rshc/common/timer.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/obs/report.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/srhd/kernels.hpp"

// Provenance baked in by bench/CMakeLists.txt; "unknown" for stray builds.
#ifndef RSHC_GIT_SHA
#define RSHC_GIT_SHA "unknown"
#endif
#ifndef RSHC_BUILD_TYPE
#define RSHC_BUILD_TYPE "unknown"
#endif
#ifndef RSHC_BUILD_FLAGS
#define RSHC_BUILD_FLAGS ""
#endif

namespace {

using namespace rshc;

constexpr double kGamma = 5.0 / 3.0;
constexpr int kRanks = 4;

/// Randomized SoA batch shared by all kernel reps (same layout as F5).
struct Soa {
  std::vector<double> rho, vx, vy, vz, p;
  std::vector<double> d, sx, sy, sz, tau;
  std::vector<double> o1, o2, o3, o4, o5;

  explicit Soa(std::size_t n) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> ur(0.5, 2.0);
    std::uniform_real_distribution<double> uv(-0.6, 0.6);
    for (auto* v : {&rho, &vx, &vy, &vz, &p, &d, &sx, &sy, &sz, &tau, &o1,
                    &o2, &o3, &o4, &o5}) {
      v->resize(n);
    }
    const eos::IdealGas eos(kGamma);
    for (std::size_t i = 0; i < n; ++i) {
      srhd::Prim w{ur(rng), uv(rng), uv(rng), uv(rng), ur(rng)};
      rho[i] = w.rho; vx[i] = w.vx; vy[i] = w.vy; vz[i] = w.vz; p[i] = w.p;
      const auto u = srhd::prim_to_cons(w, eos);
      d[i] = u.d; sx[i] = u.sx; sy[i] = u.sy; sz[i] = u.sz; tau[i] = u.tau;
    }
  }
};

/// Time `fn` `reps` times, one histogram sample per rep, so the report's
/// percentiles reflect the rep-to-rep spread the regression gate cares
/// about (a single total would hide multimodal noise).
template <typename Fn>
void bench_kernel(const char* name, int reps, Fn&& fn) {
  fn();  // warm-up
  obs::TimeHist& hist =
      obs::Registry::global().timer(std::string("perf.kernel.") + name);
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    hist.record_seconds(t.seconds());
  }
}

void run_kernels(bool quick) {
  const std::size_t n = quick ? 50000 : 200000;
  const int reps = quick ? 8 : 32;
  Soa b(n);
  const srhd::Con2PrimOptions opt;
  namespace kv = srhd::kernels::simd;

  bench_kernel("prim2cons", reps, [&] {
    kv::prim_to_cons_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                       b.vz.data(), b.p.data(), b.o1.data(), b.o2.data(),
                       b.o3.data(), b.o4.data(), b.o5.data(), kGamma);
  });
  bench_kernel("con2prim", reps, [&] {
    kv::cons_to_prim_n(n, b.d.data(), b.sx.data(), b.sy.data(), b.sz.data(),
                       b.tau.data(), b.o1.data(), b.o2.data(), b.o3.data(),
                       b.o4.data(), b.o5.data(), kGamma, opt);
  });
  bench_kernel("flux_x", reps, [&] {
    kv::flux_n(n, 0, b.rho.data(), b.vx.data(), b.vy.data(), b.vz.data(),
               b.p.data(), b.d.data(), b.sx.data(), b.sy.data(),
               b.sz.data(), b.tau.data(), b.o1.data(), b.o2.data(),
               b.o3.data(), b.o4.data(), b.o5.data());
  });
  bench_kernel("axpby", reps, [&] {
    kv::axpby_n(n, 0.5, b.d.data(), 0.5, b.o1.data());
  });
}

solver::SrhdSolver::Options kh_options() {
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  return opt;
}

/// Single-process KH run; solver phases land in the current registry.
void run_solver(bool quick, solver::HostPipeline pipeline) {
  const long long n = quick ? 32 : 64;
  const int steps = quick ? 8 : 24;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
  auto opt = kh_options();
  opt.pipeline = pipeline;
  solver::SrhdSolver s(grid, opt);
  s.initialize(problems::kelvin_helmholtz_ic({}));
  for (int i = 0; i < steps; ++i) s.step(s.compute_dt());
}

/// The same KH workload on the per-pencil reference pipeline, observed in
/// a scoped registry so its phases do not mix with the batched run's, and
/// reported as "pencil."-prefixed rows.
std::vector<obs::report::PhaseStats> run_solver_pencil(bool quick) {
  obs::Registry reg;
  obs::Snapshot snap;
  {
    obs::ScopedRegistry scope(reg);
    run_solver(quick, solver::HostPipeline::kPencil);
    snap = reg.snapshot();
  }
  return obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(&snap, 1), "pencil.");
}

/// Four-rank distributed KH run. Each rank thread installs a RankScope so
/// its solver phases accumulate in its own registry; the caller merges the
/// snapshots into rank-resolved "dist." rows.
std::vector<obs::report::PhaseStats> run_distributed(bool quick) {
  const long long n = quick ? 32 : 64;
  const int steps = quick ? 6 : 16;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);

  std::array<obs::Registry, kRanks> rank_registries;
  std::array<obs::Snapshot, kRanks> rank_snaps;
  comm::run_world(kRanks, [&](comm::Communicator& comm) {
    const int r = comm.rank();
    obs::report::RankScope scope(
        rank_registries[static_cast<std::size_t>(r)], r);
    solver::DistributedSolver<solver::SrhdPhysics> ds(grid, comm,
                                                      kh_options());
    ds.initialize(problems::kelvin_helmholtz_ic({}));
    for (int i = 0; i < steps; ++i) ds.step(ds.compute_dt());
    rank_snaps[static_cast<std::size_t>(r)] =
        rank_registries[static_cast<std::size_t>(r)].snapshot();
  });
  return obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(rank_snaps), "dist.");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  run_kernels(quick);
  // Primary solver run: the default batched pipeline, overridable via
  // RSHC_HOST_PIPELINE (pencil | batched-scalar | batched-simd) so CI can
  // emit one report per pipeline setting from the same binary.
  solver::HostPipeline pipeline = solver::SrhdSolver::Options{}.pipeline;
  const char* pipe_env = std::getenv("RSHC_HOST_PIPELINE");
  if (pipe_env != nullptr && *pipe_env != '\0') {
    pipeline = solver::parse_host_pipeline(pipe_env);
  }
  run_solver(quick, pipeline);
  std::vector<obs::report::PhaseStats> pencil = run_solver_pencil(quick);
  std::vector<obs::report::PhaseStats> dist = run_distributed(quick);

  obs::report::RunReport rep;
  rep.suite = "perf_suite";
  rep.git_sha = RSHC_GIT_SHA;
  rep.build_type = RSHC_BUILD_TYPE;
  rep.build_flags = RSHC_BUILD_FLAGS;
  rep.ranks = kRanks;
  rep.hardware = obs::report::probe_hardware();

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  rep.phases = obs::report::phases_from_snapshot(snap);
  rep.phases.insert(rep.phases.end(), pencil.begin(), pencil.end());
  rep.phases.insert(rep.phases.end(), dist.begin(), dist.end());
  rep.counters = obs::report::counters_from_snapshot(snap);

  const char* out_env = std::getenv("RSHC_PERF_OUT");
  const std::string out =
      (out_env != nullptr && *out_env != '\0') ? out_env : "BENCH_perf.json";
  rep.write_file(out);
  std::cout << "[perf report: " << out << " | " << rep.phases.size()
            << " phases, " << rep.counters.size() << " counters]\n";

  // Honor the usual RSHC_DUMP_* env switches next to the bench CSVs.
  obs::maybe_dump("bench_results/perf_suite");
  return 0;
}
