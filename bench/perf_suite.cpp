// Performance-regression suite (CI artifact + local tool). One binary,
// three workloads, one schema-versioned BENCH_perf.json:
//
//  1. Pinned SoA kernels (prim2cons / con2prim / flux_x / axpby): each rep
//     is timed individually into a TimeHist so the report carries real
//     p50/p90/p99, not just a mean.
//  2. Single-process SRHD Kelvin-Helmholtz run: exercises the instrumented
//     solver phases (solver.phase.exchange / rhs / update / c2p / other)
//     under the default batched host pipeline, then repeats the identical
//     workload on the per-pencil reference path into "pencil."-prefixed
//     rows — every report carries the batched-vs-pencil comparison
//     (compare e.g. solver.phase.rhs against pencil.solver.phase.rhs).
//  3. Four-rank distributed KH run (run_world): each rank observes into
//     its own Registry via report::RankScope, and the per-rank snapshots
//     are merged into "dist."-prefixed rows with min/mean/max/imbalance
//     across ranks.
//  4. F8 accelerator crossover counters (perf.f8.*): where the staged and
//     resident con2prim offload modes reach host parity, against the
//     zones-per-step of workload 2 — see run_f8_crossover below.
//  5. Saturating simulation-service workload (run_serve): a 36-job mixed
//     queue (3 SRHD + 3 SRMHD problems, all three priority classes) on a
//     4-worker rshc::serve::SimulationService, distilled into the
//     service-level counters perf.serve.jobs_per_hour (bigger is better)
//     and perf.serve.p99_job_latency_ms (smaller is better), plus
//     "serve."-prefixed per-job phase roll-ups from the jobs' scoped
//     registries. RSHC_SERVE_ONLY=1 runs only workloads 1 and 5 — the
//     shape CI's perf-smoke lane uses for BENCH_perf_service.json.
//
// Output path comes from RSHC_PERF_OUT (default BENCH_perf.json). Compare
// two runs with tools/perf_report.py; CI's perf-smoke lane gates on the
// structural checks only, since container timings are noisy.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "exp_common.hpp"
#include "rshc/common/error.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/device/device.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/obs/journal.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/obs/report.hpp"
#include "rshc/obs/telemetry.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/serve/riemann_cache.hpp"
#include "rshc/serve/service.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/srhd/kernels.hpp"

// Provenance baked in by bench/CMakeLists.txt; "unknown" for stray builds.
#ifndef RSHC_GIT_SHA
#define RSHC_GIT_SHA "unknown"
#endif
#ifndef RSHC_BUILD_TYPE
#define RSHC_BUILD_TYPE "unknown"
#endif
#ifndef RSHC_BUILD_FLAGS
#define RSHC_BUILD_FLAGS ""
#endif

namespace {

using namespace rshc;

constexpr double kGamma = 5.0 / 3.0;
constexpr int kRanks = 4;

/// Randomized SoA batch shared by all kernel reps (same layout as F5).
struct Soa {
  std::vector<double> rho, vx, vy, vz, p;
  std::vector<double> d, sx, sy, sz, tau;
  std::vector<double> o1, o2, o3, o4, o5;

  explicit Soa(std::size_t n) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> ur(0.5, 2.0);
    std::uniform_real_distribution<double> uv(-0.6, 0.6);
    for (auto* v : {&rho, &vx, &vy, &vz, &p, &d, &sx, &sy, &sz, &tau, &o1,
                    &o2, &o3, &o4, &o5}) {
      v->resize(n);
    }
    const eos::IdealGas eos(kGamma);
    for (std::size_t i = 0; i < n; ++i) {
      srhd::Prim w{ur(rng), uv(rng), uv(rng), uv(rng), ur(rng)};
      rho[i] = w.rho; vx[i] = w.vx; vy[i] = w.vy; vz[i] = w.vz; p[i] = w.p;
      const auto u = srhd::prim_to_cons(w, eos);
      d[i] = u.d; sx[i] = u.sx; sy[i] = u.sy; sz[i] = u.sz; tau[i] = u.tau;
    }
  }
};

/// Time `fn` `reps` times, one histogram sample per rep, so the report's
/// percentiles reflect the rep-to-rep spread the regression gate cares
/// about (a single total would hide multimodal noise).
template <typename Fn>
void bench_kernel(const char* name, int reps, Fn&& fn) {
  fn();  // warm-up
  obs::TimeHist& hist =
      obs::Registry::global().timer(std::string("perf.kernel.") + name);
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    hist.record_seconds(t.seconds());
  }
}

void run_kernels(bool quick) {
  const std::size_t n = quick ? 50000 : 200000;
  const int reps = quick ? 8 : 32;
  Soa b(n);
  const srhd::Con2PrimOptions opt;
  namespace kv = srhd::kernels::simd;

  bench_kernel("prim2cons", reps, [&] {
    kv::prim_to_cons_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                       b.vz.data(), b.p.data(), b.o1.data(), b.o2.data(),
                       b.o3.data(), b.o4.data(), b.o5.data(), kGamma);
  });
  bench_kernel("con2prim", reps, [&] {
    kv::cons_to_prim_n(n, b.d.data(), b.sx.data(), b.sy.data(), b.sz.data(),
                       b.tau.data(), b.o1.data(), b.o2.data(), b.o3.data(),
                       b.o4.data(), b.o5.data(), kGamma, opt);
  });
  bench_kernel("flux_x", reps, [&] {
    kv::flux_n(n, 0, b.rho.data(), b.vx.data(), b.vy.data(), b.vz.data(),
               b.p.data(), b.d.data(), b.sx.data(), b.sy.data(),
               b.sz.data(), b.tau.data(), b.o1.data(), b.o2.data(),
               b.o3.data(), b.o4.data(), b.o5.data());
  });
  bench_kernel("axpby", reps, [&] {
    kv::axpby_n(n, 0.5, b.d.data(), 0.5, b.o1.data());
  });
}

/// Best-of-`reps` wall time of `fn`; the min filters scheduler noise the
/// way the crossover counters need (a single slow outlier must not move a
/// quantized crossover point).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Experiment F8 distilled into three report counters, so the perf report
/// (and `tools/perf_report.py compare`, which renders them as first-class
/// rows) tracks where each offload mode reaches the host-parity band
/// (>= 90% of host-simd con2prim throughput):
///
///   perf.f8.crossover_batch.staged   — smallest swept batch for the naive
///       offload (full upload/kernel/download round trip every call).
///   perf.f8.crossover_batch.resident — same for the persistent-residency
///       mode the FvSolver kDevice pipeline uses: state stays on the
///       device, only a halo slab moves per call, overlapped on a second
///       stream. This is the crossover the residency work exists to pull
///       into real step-size range.
///   perf.f8.kh_step_zones            — zone updates one step of this
///       suite's KH workload performs (interior zones x RK stages): the
///       "real" batch size a step hands the device, i.e. the bar the
///       resident crossover must clear.
///
/// 0 = never crossed within the sweep. Values are quantized to the x4
/// sweep, so the comparator can tolerate one-step timing jitter while
/// still catching a mode that drops out of the swept range entirely.
void run_f8_crossover(bool quick, std::int64_t kh_step_zones) {
  const std::array<std::size_t, 5> batches = {256, 1024, 4096, 16384, 65536};
  const int reps = quick ? 2 : 4;
  constexpr double kParityBand = 0.90;
  const srhd::Con2PrimOptions c2p_opt;

  std::int64_t staged_cross = 0;
  std::int64_t resident_cross = 0;
  for (const std::size_t n : batches) {
    Soa b(n);
    auto host_run = [&] {
      srhd::kernels::simd::cons_to_prim_n(
          n, b.d.data(), b.sx.data(), b.sy.data(), b.sz.data(),
          b.tau.data(), b.o1.data(), b.o2.data(), b.o3.data(), b.o4.data(),
          b.o5.data(), kGamma, c2p_opt);
    };
    host_run();  // warm-up
    const double host_sec = best_seconds(reps, host_run);

    auto dev = device::make_device(device::Backend::kAccelSim, {});
    std::array<device::Buffer, 10> bufs;
    for (auto& buf : bufs) buf = dev->alloc(n);
    auto view = [&](int i) {
      return bufs[static_cast<std::size_t>(i)].device_view().data();
    };
    const auto o = c2p_opt;
    auto dev_kernel = [=] {
      srhd::kernels::simd::cons_to_prim_n(
          n, view(0), view(1), view(2), view(3), view(4), view(5), view(6),
          view(7), view(8), view(9), kGamma, o);
    };

    // Staged: the full state crosses the link in both directions per call.
    const double staged_sec = best_seconds(reps, [&] {
      dev->upload_async(b.d, bufs[0]);
      dev->upload_async(b.sx, bufs[1]);
      dev->upload_async(b.sy, bufs[2]);
      dev->upload_async(b.sz, bufs[3]);
      dev->upload_async(b.tau, bufs[4]);
      dev->launch(dev_kernel, n);
      dev->download_async(bufs[5], b.o1);
      dev->download_async(bufs[6], b.o2);
      dev->download_async(bufs[7], b.o3);
      dev->download_async(bufs[8], b.o4);
      dev->download_async(bufs[9], b.o5);
      dev->synchronize();
    });

    // Resident: state persists on the device (uploaded above); per call
    // only a halo slab moves, on the transfer stream while the kernel runs
    // on the compute stream — the kDevice pipeline's steady-state shape.
    const device::StreamId transfer = dev->create_stream();
    const std::size_t halo = bench::f8_halo_zones(n);
    std::vector<double> halo_host(halo, 1.0);
    device::Buffer halo_buf = dev->alloc(halo);
    const double resident_sec = best_seconds(reps, [&] {
      dev->download_async(halo_buf, halo_host, transfer);
      dev->upload_async(halo_host, halo_buf, transfer);
      dev->launch(dev_kernel, n);
      dev->synchronize();
    });

    const auto batch = static_cast<std::int64_t>(n);
    if (staged_cross == 0 && host_sec / staged_sec >= kParityBand) {
      staged_cross = batch;
    }
    if (resident_cross == 0 && host_sec / resident_sec >= kParityBand) {
      resident_cross = batch;
    }
  }

  RSHC_OBS_COUNT("perf.f8.crossover_batch.staged", staged_cross);
  RSHC_OBS_COUNT("perf.f8.crossover_batch.resident", resident_cross);
  RSHC_OBS_COUNT("perf.f8.kh_step_zones", kh_step_zones);
}

solver::SrhdSolver::Options kh_options() {
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  return opt;
}

/// Experiment F6b distilled into one report counter:
///
///   perf.f6.overlap_efficiency — how much shallower the latency-hiding
///       exchange's time-per-step slope vs injected message latency is
///       than the synchronous schedule's, in percent. Both schedules run
///       the same 4-rank KH workload at zero and at kLatency injected
///       per-message latency; slope = (t_lat - t_0) / latency per
///       schedule, efficiency = 100 * slope_sync / slope_overlap. 200
///       means the overlapped schedule absorbs half the latency the sync
///       schedule pays; the acceptance bar for the overlap work is >= 200.
///
/// Values are clamped to [100, 10000]: 100 (parity) when the sync slope
/// is noise-dominated, 10000 when the overlapped slope is too small to
/// measure — keeping the counter finite and the comparator's
/// bigger-is-better gate meaningful on shared runners.
void run_f6_overlap(bool quick) {
  // The grid stays at 48^2 even in quick mode: the interior work per RK
  // stage is what hides the injected latency, and shrinking it below the
  // latency window turns the counter into a noise measurement.
  const long long n = 48;
  const int steps = quick ? 6 : 10;
  const int reps = quick ? 2 : 3;
  constexpr double kLatency = 500e-6;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
  const auto opt = kh_options();
  const double dt = 0.1 / static_cast<double>(n);

  auto per_step = [&](bool overlap, double latency_sec) {
    comm::TransferModel model;
    model.latency_sec = latency_sec;
    // Throwaway per-rank registries keep these extra solver runs out of
    // the report's solver.phase.* rows (workload 2 owns those).
    std::array<obs::Registry, kRanks> scratch;
    WallTimer t;
    comm::run_world(
        kRanks,
        [&](comm::Communicator& comm) {
          obs::ScopedRegistry scope(
              scratch[static_cast<std::size_t>(comm.rank())]);
          solver::DistributedSrhdSolver s(grid, comm, opt);
          s.set_overlap(overlap);
          s.initialize(problems::kelvin_helmholtz_ic({}));
          for (int i = 0; i < steps; ++i) s.step(dt);
        },
        model);
    return t.seconds() / steps;
  };
  auto best_per_step = [&](bool overlap, double latency_sec) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      best = std::min(best, per_step(overlap, latency_sec));
    }
    return best;
  };

  const double sync0 = best_per_step(false, 0.0);
  const double sync_lat = best_per_step(false, kLatency);
  const double overlap0 = best_per_step(true, 0.0);
  const double overlap_lat = best_per_step(true, kLatency);

  const double slope_sync = (sync_lat - sync0) / kLatency;
  const double slope_overlap = (overlap_lat - overlap0) / kLatency;
  std::int64_t efficiency = 100;
  if (slope_sync > 0.0) {
    const double floor = slope_sync / 100.0;  // caps the ratio at 100x
    const double ratio = slope_sync / std::max(slope_overlap, floor);
    efficiency = std::max<std::int64_t>(
        100, static_cast<std::int64_t>(ratio * 100.0 + 0.5));
  }
  RSHC_OBS_COUNT("perf.f6.overlap_efficiency", efficiency);
}

/// Single-process KH run; solver phases land in the current registry.
void run_solver(bool quick, solver::HostPipeline pipeline) {
  const long long n = quick ? 32 : 64;
  const int steps = quick ? 8 : 24;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
  auto opt = kh_options();
  opt.pipeline = pipeline;
  solver::SrhdSolver s(grid, opt);
  s.initialize(problems::kelvin_helmholtz_ic({}));
  for (int i = 0; i < steps; ++i) s.step(s.compute_dt());
}

/// The same KH workload on the per-pencil reference pipeline, observed in
/// a scoped registry so its phases do not mix with the batched run's, and
/// reported as "pencil."-prefixed rows.
std::vector<obs::report::PhaseStats> run_solver_pencil(bool quick) {
  obs::Registry reg;
  obs::Snapshot snap;
  {
    obs::ScopedRegistry scope(reg);
    run_solver(quick, solver::HostPipeline::kPencil);
    snap = reg.snapshot();
  }
  return obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(&snap, 1), "pencil.");
}

/// Four-rank distributed KH run. Each rank thread installs a RankScope so
/// its solver phases accumulate in its own registry; the caller merges the
/// snapshots into rank-resolved "dist." rows.
std::vector<obs::report::PhaseStats> run_distributed(bool quick) {
  const long long n = quick ? 32 : 64;
  const int steps = quick ? 6 : 16;
  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);

  std::array<obs::Registry, kRanks> rank_registries;
  std::array<obs::Snapshot, kRanks> rank_snaps;
  comm::run_world(kRanks, [&](comm::Communicator& comm) {
    const int r = comm.rank();
    obs::report::RankScope scope(
        rank_registries[static_cast<std::size_t>(r)], r);
    solver::DistributedSolver<solver::SrhdPhysics> ds(grid, comm,
                                                      kh_options());
    ds.initialize(problems::kelvin_helmholtz_ic({}));
    for (int i = 0; i < steps; ++i) ds.step(ds.compute_dt());
    rank_snaps[static_cast<std::size_t>(r)] =
        rank_registries[static_cast<std::size_t>(r)].snapshot();
  });
  return obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(rank_snaps), "dist.");
}

/// Saturating mixed workload through the simulation service: 36 jobs
/// (>= queue pressure on 4 workers throughout) spanning three SRHD and
/// three SRMHD problems and all three priority classes, the shock-tube
/// jobs validating against the shared exact-Riemann cache. Distilled into
/// two service-level gate counters:
///
///   perf.serve.jobs_per_hour      — completed jobs extrapolated to an
///       hour of wall time; the throughput the admission-control zone
///       budget exists to protect. Bigger is better.
///   perf.serve.p99_job_latency_ms — 99th-percentile submit-to-complete
///       latency across the batch, the tail the priority classes and
///       preemption shape. Smaller is better.
///
/// plus bookkeeping counters (jobs completed / preemptions / Riemann
/// cache hit+miss) and, on obs builds, "serve."-prefixed phase roll-ups
/// merged from the per-job scoped registries — min/mean/max/imbalance
/// across *jobs* the same way "dist." rows roll up across ranks.
std::vector<obs::report::PhaseStats> run_serve(bool quick) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 64;
  cfg.zone_budget = 1LL << 22;
  cfg.checkpoint_dir = "bench_results/serve_ckpt";
  serve::SimulationService svc(cfg);

  struct Mix {
    const char* problem;
    serve::PhysicsKind physics;
    long long resolution;
    int steps;
    bool validate;
  };
  const long long n1 = quick ? 48 : 96;   // 1D shock tubes
  const long long n2 = quick ? 12 : 24;   // 2D problems
  const int s1 = quick ? 6 : 16;
  const int s2 = quick ? 2 : 6;
  const Mix mixes[] = {
      {"sod", serve::PhysicsKind::kSrhd, n1, s1, true},
      {"mm1", serve::PhysicsKind::kSrhd, n1, s1, true},
      {"kh", serve::PhysicsKind::kSrhd, n2, s2, false},
      {"balsara1", serve::PhysicsKind::kSrmhd, n1, s1 / 2, false},
      {"mhd_blast", serve::PhysicsKind::kSrmhd, n2, s2, false},
      {"field_loop", serve::PhysicsKind::kSrmhd, n2, s2, false},
  };
  constexpr int kJobs = 36;

  serve::RiemannCache::global().clear();
  WallTimer wall;
  std::vector<serve::JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    const Mix& m = mixes[static_cast<std::size_t>(i) % std::size(mixes)];
    serve::JobSpec spec;
    spec.name = std::string(m.problem) + "_" + std::to_string(i);
    spec.problem = m.problem;
    spec.physics = m.physics;
    spec.resolution = m.resolution;
    spec.steps = m.steps;
    spec.validate = m.validate;
    spec.priority = (i % 8 == 7)   ? serve::Priority::kHigh
                    : (i % 3 == 0) ? serve::Priority::kBatch
                                   : serve::Priority::kNormal;
    const serve::Admission a = svc.submit(spec);
    RSHC_REQUIRE(a.admitted, "serve bench job rejected: " + a.reason);
    ids.push_back(a.id);
  }
  svc.wait_idle();
  const double elapsed = wall.seconds();

  std::vector<double> latencies;
  std::int64_t completed = 0;
  for (const serve::JobStatus& st : svc.statuses()) {
    RSHC_REQUIRE(st.state == serve::JobState::kCompleted,
                 "serve bench job did not complete: " + st.name + ": " +
                     st.message);
    if (st.latency_ms >= 0.0) latencies.push_back(st.latency_ms);
    ++completed;
  }
  const serve::ServiceStats stats = svc.stats();
  RSHC_REQUIRE(completed == kJobs && stats.completed == kJobs &&
                   stats.queued == 0 && stats.running == 0,
               "serve bench lost or duplicated jobs");

  std::sort(latencies.begin(), latencies.end());
  double p99 = 0.0;
  if (!latencies.empty()) {
    const auto idx = static_cast<std::size_t>(
        std::max<double>(0.0, std::ceil(0.99 * static_cast<double>(
                                            latencies.size())) -
                                  1.0));
    p99 = latencies[std::min(idx, latencies.size() - 1)];
  }
  RSHC_OBS_COUNT("perf.serve.jobs_per_hour",
                 static_cast<std::int64_t>(
                     static_cast<double>(completed) * 3600.0 /
                     std::max(elapsed, 1e-9)));
  RSHC_OBS_COUNT("perf.serve.p99_job_latency_ms",
                 std::max<std::int64_t>(1, std::llround(p99)));
  RSHC_OBS_COUNT("perf.serve.jobs_completed", completed);
  RSHC_OBS_COUNT("perf.serve.preemptions", stats.preempted);
  RSHC_OBS_COUNT("serve.riemann_cache.hits",
                 serve::RiemannCache::global().hits());
  RSHC_OBS_COUNT("serve.riemann_cache.misses",
                 serve::RiemannCache::global().misses());

#if RSHC_OBS_ENABLED
  const std::vector<obs::Snapshot> snaps = svc.job_snapshots();
  return obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(snaps), "serve.");
#else
  return {};
#endif
}

/// Steady-state solver throughput from the live-telemetry samples: the
/// median positive heartbeat rate (robust against the warm-up ramp and
/// the sampler catching an idle instant), falling back to the final
/// heartbeat when the sampler took no usable samples.
double steady_zones_per_sec(const obs::telemetry::Sampler& sampler) {
  std::vector<double> rates;
  for (const auto& s : sampler.samples()) {
    const obs::Snapshot::Entry* e =
        s.snapshot.find("solver.hb.zones_per_sec");
    if (e != nullptr && e->value > 0.0) rates.push_back(e->value);
  }
  if (rates.empty()) return obs::telemetry::last_heartbeat().zones_per_sec;
  auto mid = rates.begin() + static_cast<std::ptrdiff_t>(rates.size() / 2);
  std::nth_element(rates.begin(), mid, rates.end());
  return *mid;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  // Live telemetry rides along with every suite run: journal provenance +
  // run bracket, the periodic sampler (RSHC_TELEMETRY_OUT for the JSONL
  // stream), and the stall watchdog (armed only when RSHC_WATCHDOG says
  // so). The steady-state throughput the sampler observes feeds the
  // regression comparator as perf.telemetry.steady_zones_per_sec.
  obs::journal::Journal::global().set_provenance(RSHC_GIT_SHA);
  obs::journal::run_start("perf_suite");
  obs::telemetry::Sampler sampler;  // options from RSHC_TELEMETRY_*
  sampler.start();
  obs::telemetry::Watchdog watchdog;  // options from RSHC_WATCHDOG*
  watchdog.start();

  // RSHC_SERVE_ONLY trims the suite to the kernel reps plus the service
  // workload — the shape the perf-smoke lane uses to emit the standalone
  // BENCH_perf_service.json without re-timing the solver workloads.
  const char* serve_env = std::getenv("RSHC_SERVE_ONLY");
  const bool serve_only =
      serve_env != nullptr && *serve_env != '\0' && serve_env[0] != '0';

  run_kernels(quick);
  std::vector<obs::report::PhaseStats> pencil;
  std::vector<obs::report::PhaseStats> dist;
  if (!serve_only) {
    // Zone updates per KH step: interior zones x the 3 SSP-RK stages the
    // solver runs per step (solver.phase.* counts in any report confirm
    // the stage count: phase count / solver.steps).
    run_f8_crossover(quick, /*kh_step_zones=*/3 * (quick ? 32LL * 32LL
                                                         : 64LL * 64LL));
    run_f6_overlap(quick);
    // Primary solver run: the default batched pipeline, overridable via
    // RSHC_HOST_PIPELINE (pencil | batched-scalar | batched-simd |
    // device) so CI can emit one report per pipeline setting from the
    // same binary — the device report (BENCH_perf_device.json) exercises
    // the resident offload end-to-end, worker-thread kernel phases and
    // transfer byte counters included.
    solver::HostPipeline pipeline = solver::SrhdSolver::Options{}.pipeline;
    const char* pipe_env = std::getenv("RSHC_HOST_PIPELINE");
    if (pipe_env != nullptr && *pipe_env != '\0') {
      pipeline = solver::parse_host_pipeline(pipe_env);
    }
    run_solver(quick, pipeline);
    pencil = run_solver_pencil(quick);
    dist = run_distributed(quick);
  }
  std::vector<obs::report::PhaseStats> serve_phases = run_serve(quick);

  // Freeze telemetry before the report snapshot so the steady-throughput
  // counter lands in this report's counter table.
  watchdog.stop();
  sampler.stop();
  const double steady = steady_zones_per_sec(sampler);
  if (steady > 0.0) {
    RSHC_OBS_COUNT("perf.telemetry.steady_zones_per_sec",
                   static_cast<std::int64_t>(steady));
  }

  obs::report::RunReport rep;
  rep.suite = "perf_suite";
  rep.git_sha = RSHC_GIT_SHA;
  rep.build_type = RSHC_BUILD_TYPE;
  rep.build_flags = RSHC_BUILD_FLAGS;
  rep.ranks = kRanks;
  rep.hardware = obs::report::probe_hardware();

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  rep.phases = obs::report::phases_from_snapshot(snap);
  rep.phases.insert(rep.phases.end(), pencil.begin(), pencil.end());
  rep.phases.insert(rep.phases.end(), dist.begin(), dist.end());
  rep.phases.insert(rep.phases.end(), serve_phases.begin(),
                    serve_phases.end());
  rep.counters = obs::report::counters_from_snapshot(snap);

  const char* out_env = std::getenv("RSHC_PERF_OUT");
  const std::string out =
      (out_env != nullptr && *out_env != '\0') ? out_env : "BENCH_perf.json";
  rep.write_file(out);
  std::cout << "[perf report: " << out << " | " << rep.phases.size()
            << " phases, " << rep.counters.size() << " counters]\n";

  // Honor the usual RSHC_DUMP_* env switches next to the bench CSVs.
  obs::maybe_dump("bench_results/perf_suite");
  obs::journal::run_end("perf_suite");
  return 0;
}
