// Experiment T3 — Riemann-solver comparison: accuracy vs cost.
// Full MM1 run per solver (accuracy + wall time) plus an isolated
// per-interface kernel timing.
//
// Expected shape: HLLC is the most accurate at nearly the same per-call
// cost as HLL; LLF is cheapest per call but most diffusive.

#include "exp_common.hpp"

namespace {

double time_kernel(rshc::riemann::Solver s, int reps) {
  using namespace rshc;
  const eos::IdealGas eos(5.0 / 3.0);
  const srhd::Prim wl{1.0, 0.2, 0.1, 0.0, 1.0};
  const srhd::Prim wr{0.5, -0.3, 0.0, 0.0, 0.2};
  volatile double sink = 0.0;
  WallTimer t;
  for (int i = 0; i < reps; ++i) {
    const auto f = riemann::solve_srhd(s, wl, wr, 0, eos);
    sink = sink + f.d;
  }
  return t.seconds() / reps;
}

}  // namespace

int main() {
  using namespace rshc;
  constexpr long long kN = 400;
  constexpr int kKernelReps = 100000;
  const problems::ShockTube st = problems::marti_muller_1();

  Table table({"riemann", "L1_rho", "L1_vx", "run_seconds", "ns_per_flux"});
  table.set_title("T3: Riemann solver accuracy vs cost (MM1, N=400, PLM)");

  for (const auto rs : {riemann::Solver::kLLF, riemann::Solver::kHLL,
                        riemann::Solver::kHLLC,
                        riemann::Solver::kExact}) {
    auto s = bench::make_tube_solver(st, kN, recon::Method::kPLMMC, rs);
    WallTimer t;
    s->advance_to(st.t_final);
    const double seconds = t.seconds();
    const auto err = bench::tube_errors(*s, st);
    table.add_row({std::string(riemann::solver_name(rs)), err.l1_rho,
                   err.l1_vx, seconds,
                   time_kernel(rs, kKernelReps) * 1e9});
  }
  bench::emit(table, "t3_riemann_compare");
  return 0;
}
