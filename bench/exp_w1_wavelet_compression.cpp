// Experiment W1 — wavelet compression of HRSC solutions (figure).
// The wavelet-adaptivity motivation in one table: threshold sweep over
// (a) a smooth flow and (b) the MM1 blast-wave solution, reporting the
// compression ratio (points an adaptive method would *not* carry) and the
// reconstruction error.
//
// Expected shape: smooth fields compress by orders of magnitude at tiny
// error; shocked solutions keep a band of points around each wave but
// still compress ~10x at solution-error-level thresholds; reconstruction
// error tracks the threshold.

#include "exp_common.hpp"
#include "rshc/wavelet/interp_wavelet.hpp"

int main() {
  using namespace rshc;
  constexpr int kLevels = 10;  // 1025 points
  const std::size_t n = wavelet::grid_size(kLevels);

  // (a) smooth: the advected density wave profile.
  std::vector<double> smooth(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    smooth[i] = problems::smooth_wave_exact_rho({}, x, 0.0);
  }

  // (b) shocked: the exact MM1 solution at t_final.
  const problems::ShockTube st = problems::marti_muller_1();
  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  std::vector<double> shocked(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    shocked[i] = exact.sample((x - st.x_split) / st.t_final).rho;
  }

  Table table({"field", "eps", "kept", "total", "compression",
               "max_error"});
  table.set_title("W1: interpolating-wavelet compression of flow fields "
                  "(1025-point dyadic grid)");

  for (const auto& [name, field] :
       {std::pair{"smooth", &smooth}, std::pair{"mm1_blast", &shocked}}) {
    for (const double eps : {1e-2, 1e-4, 1e-6, 1e-8}) {
      std::vector<double> out(field->size());
      const auto c = wavelet::compress_roundtrip(*field, eps, out);
      double worst = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        worst = std::max(worst, std::abs(out[i] - (*field)[i]));
      }
      table.add_row({std::string(name), eps,
                     static_cast<long long>(c.kept),
                     static_cast<long long>(c.total),
                     c.compression_ratio(), worst});
    }
  }
  bench::emit(table, "w1_wavelet_compression");
  return 0;
}
