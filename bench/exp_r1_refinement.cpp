// Experiment R1 — mesh-refinement accuracy/cost trade (table).
// Sod tube at coarse resolution N, the same N with a 2x refined region
// covering the wave fan, and uniform 2N: L1 error (in the wave region,
// against the exact solution), wall time, and zone-update counts.
//
// Expected shape: refined error lands between uniform-N and uniform-2N
// at a cost well below uniform-2N (the region covers only part of the
// domain); conservation drift of the unrefluxed scheme stays at the
// truncation level.

#include "rshc/amr/two_level.hpp"

#include "exp_common.hpp"

namespace {

using namespace rshc;

double region_l1(const std::function<srhd::Prim(long long)>& sample_cell,
                 const mesh::Grid& g, const problems::ShockTube& st,
                 long long lo, long long hi) {
  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  double sum = 0.0;
  for (long long i = lo; i < hi; ++i) {
    const double x = g.cell_center(0, i);
    sum += std::abs(sample_cell(i).rho -
                    exact.sample((x - st.x_split) / st.t_final).rho);
  }
  return sum / static_cast<double>(hi - lo);
}

}  // namespace

int main() {
  using namespace rshc;
  constexpr long long kN = 128;
  const problems::ShockTube st = problems::sod();
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);

  // Wave-fan region in coarse indices (scaled for the 2N run).
  const long long lo = kN * 30 / 100;
  const long long hi = kN * 90 / 100;

  Table table({"configuration", "region_L1_rho", "seconds", "steps",
               "mass_drift"});
  table.set_title("R1: static 2x refinement vs uniform resolutions "
                  "(Sod, region = wave fan)");

  {
    const mesh::Grid g = mesh::Grid::make_1d(kN, 0.0, 1.0);
    solver::SrhdSolver s(g, opt);
    s.initialize(problems::shock_tube_ic(st));
    const double m0 = s.total_cons().d;
    WallTimer t;
    const int steps = s.advance_to(st.t_final);
    table.add_row({std::string("uniform N"),
                   region_l1([&](long long i) { return s.prim_at(i); }, g,
                             st, lo, hi),
                   t.seconds(), static_cast<long long>(steps),
                   std::abs(s.total_cons().d - m0) / m0});
  }
  {
    const mesh::Grid g = mesh::Grid::make_1d(kN, 0.0, 1.0);
    amr::TwoLevelSrhdSolver s(g, opt,
                              amr::RefineRegion{{lo, 0, 0}, {hi, 1, 1}});
    s.initialize(problems::shock_tube_ic(st));
    const double m0 = s.coarse().total_cons().d;
    WallTimer t;
    const int steps = s.advance_to(st.t_final);
    table.add_row(
        {std::string("refined region 2x"),
         region_l1([&](long long i) { return s.coarse().prim_at(i); }, g,
                   st, lo, hi),
         t.seconds(), static_cast<long long>(steps),
         std::abs(s.coarse().total_cons().d - m0) / m0});
  }
  {
    // Narrow refinement over the contact+shock only: most of the accuracy
    // at a fraction of the fine-region cost.
    const mesh::Grid g = mesh::Grid::make_1d(kN, 0.0, 1.0);
    amr::TwoLevelSrhdSolver s(
        g, opt,
        amr::RefineRegion{{kN * 55 / 100, 0, 0}, {kN * 95 / 100, 1, 1}});
    s.initialize(problems::shock_tube_ic(st));
    const double m0 = s.coarse().total_cons().d;
    WallTimer t;
    const int steps = s.advance_to(st.t_final);
    table.add_row(
        {std::string("refined shock-only"),
         region_l1([&](long long i) { return s.coarse().prim_at(i); }, g,
                   st, lo, hi),
         t.seconds(), static_cast<long long>(steps),
         std::abs(s.coarse().total_cons().d - m0) / m0});
  }
  {
    const mesh::Grid g = mesh::Grid::make_1d(2 * kN, 0.0, 1.0);
    solver::SrhdSolver s(g, opt);
    s.initialize(problems::shock_tube_ic(st));
    const double m0 = s.total_cons().d;
    WallTimer t;
    const int steps = s.advance_to(st.t_final);
    // Sample the 2N run at the coarse-cell centers (pairs average).
    auto sample = [&](long long ci) {
      const auto a = s.prim_at(2 * ci);
      const auto b = s.prim_at(2 * ci + 1);
      srhd::Prim p;
      p.rho = 0.5 * (a.rho + b.rho);
      return p;
    };
    table.add_row({std::string("uniform 2N"),
                   region_l1(sample, mesh::Grid::make_1d(kN, 0.0, 1.0), st,
                             lo, hi),
                   t.seconds(), static_cast<long long>(steps),
                   std::abs(s.total_cons().d - m0) / m0});
  }
  bench::emit(table, "r1_refinement");
  return 0;
}
