// Experiment F9 — per-phase cost breakdown (figure/table).
// Where does a step's wall time go? Exchange (halos + BCs), RHS
// (reconstruction + Riemann + flux differencing), update (RK + con2prim),
// and bookkeeping — per reconstruction scheme and per physics system.
//
// Expected shape: RHS dominates everywhere and grows with reconstruction
// order (WENO5 >> PCM); SRMHD pays more in both RHS (9 variables, GLM)
// and update (1D-W con2prim); exchange stays a few percent at this
// surface-to-volume ratio.

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 96;
  constexpr int kSteps = 10;

  Table table({"system", "recon", "exchange_pct", "rhs_pct", "update_pct",
               "other_pct", "sec_per_step"});
  table.set_title("F9: per-phase wall-time breakdown (96^2, 10 steps)");

  auto add_row = [&](const std::string& system, const std::string& rname,
                     const auto& phases) {
    const double total = phases.total();
    table.add_row({system, rname, 100.0 * phases.exchange / total,
                   100.0 * phases.rhs / total,
                   100.0 * phases.update / total,
                   100.0 * phases.other / total, total / kSteps});
  };

  for (const auto rm : {recon::Method::kPCM, recon::Method::kPLMMC,
                        recon::Method::kWENO5}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrhdSolver::Options opt;
    opt.recon = rm;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    solver::SrhdSolver s(grid, opt);
    s.initialize(problems::kelvin_helmholtz_ic({}));
    s.step(s.compute_dt());  // warm-up outside the measurement
    s.reset_phase_times();
    for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());
    add_row("srhd", std::string(recon::method_name(rm)), s.phase_times());
  }

  {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrmhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.3;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(5.0 / 3.0);
    solver::SrmhdSolver s(grid, opt);
    s.initialize(problems::field_loop_ic({}));
    s.step(s.compute_dt());
    s.reset_phase_times();
    for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());
    add_row("srmhd", "plm-mc", s.phase_times());
  }

  bench::emit(table, "f9_phase_breakdown");
  return 0;
}
