// Experiment F9 — per-phase cost breakdown (figure/table).
// Where does a step's wall time go? Exchange (halos + BCs), RHS
// (reconstruction + Riemann + flux differencing), update (RK + con2prim),
// and bookkeeping — per reconstruction scheme and per physics system.
//
// Expected shape: RHS dominates everywhere and grows with reconstruction
// order (WENO5 >> PCM); SRMHD pays more in both RHS (9 variables, GLM)
// and update (1D-W con2prim); exchange stays a few percent at this
// surface-to-volume ratio.

#include "exp_common.hpp"

namespace {

/// Phase seconds for one measured run, read back from the obs registry
/// (the update column folds in con2prim, which the solver times as its
/// own "solver.phase.c2p" histogram).
struct RegistryPhases {
  double exchange = 0.0;
  double rhs = 0.0;
  double update = 0.0;
  double other = 0.0;
  [[nodiscard]] double total() const {
    return exchange + rhs + update + other;
  }
};

RegistryPhases read_registry_phases() {
  const auto snap = rshc::obs::Registry::global().snapshot();
  RegistryPhases p;
  p.exchange = snap.value_or("solver.phase.exchange");
  p.rhs = snap.value_or("solver.phase.rhs");
  p.update = snap.value_or("solver.phase.update") +
             snap.value_or("solver.phase.c2p");
  p.other = snap.value_or("solver.phase.other");
  return p;
}

/// Run the measured loop and report its phase split. With the obs layer
/// compiled in, the breakdown comes from the metrics registry; otherwise
/// fall back to the solver's built-in wall timers.
template <typename Solver>
auto measure_phases(Solver& s, int nsteps) {
  s.step(s.compute_dt());  // warm-up outside the measurement
  s.reset_phase_times();
#if RSHC_OBS_ENABLED
  rshc::obs::Registry::global().reset();
  for (int i = 0; i < nsteps; ++i) s.step(s.compute_dt());
  RegistryPhases p = read_registry_phases();
  if (p.total() <= 0.0) {
    // Runtime-disabled (RSHC_OBS=0): the registry saw nothing — use the
    // solver's built-in wall timers instead of dividing by zero.
    const auto& w = s.phase_times();
    p = {w.exchange, w.rhs, w.update, w.other};
  }
  return p;
#else
  for (int i = 0; i < nsteps; ++i) s.step(s.compute_dt());
  return s.phase_times();
#endif
}

}  // namespace

int main() {
  using namespace rshc;
  constexpr long long kN = 96;
  constexpr int kSteps = 10;

  Table table({"system", "recon", "exchange_pct", "rhs_pct", "update_pct",
               "other_pct", "sec_per_step"});
  table.set_title("F9: per-phase wall-time breakdown (96^2, 10 steps)");

  auto add_row = [&](const std::string& system, const std::string& rname,
                     const auto& phases) {
    const double total = phases.total();
    table.add_row({system, rname, 100.0 * phases.exchange / total,
                   100.0 * phases.rhs / total,
                   100.0 * phases.update / total,
                   100.0 * phases.other / total, total / kSteps});
  };

  for (const auto rm : {recon::Method::kPCM, recon::Method::kPLMMC,
                        recon::Method::kWENO5}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrhdSolver::Options opt;
    opt.recon = rm;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    solver::SrhdSolver s(grid, opt);
    s.initialize(problems::kelvin_helmholtz_ic({}));
    add_row("srhd", std::string(recon::method_name(rm)),
            measure_phases(s, kSteps));
  }

  {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrmhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.3;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(5.0 / 3.0);
    solver::SrmhdSolver s(grid, opt);
    s.initialize(problems::field_loop_ic({}));
    add_row("srmhd", "plm-mc", measure_phases(s, kSteps));
  }

  bench::emit(table, "f9_phase_breakdown");
  return 0;
}
