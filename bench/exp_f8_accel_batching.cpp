// Experiment F8 — accelerator batch-size crossover (figure).
// The con2prim batch staged through the simulated accelerator at growing
// batch sizes, against the host-simd inline baseline, in two residency
// modes:
//
//   staged   — every rep pays the full upload/kernel/download round trip
//              (the naive offload). The bandwidth term never amortizes, so
//              throughput plateaus well below host-simd at every batch size.
//   resident — state lives on the device across reps (the FvSolver kDevice
//              pipeline's model): upload once outside the timed region, and
//              each rep moves only a halo-sized slab. Only the per-launch
//              overhead and the tiny halo transfer remain, so throughput
//              approaches host-simd once the batch amortizes them — the
//              crossover the persistent-residency pipeline exists to move
//              into real step-size range (see perf.f8.* counters in
//              bench/perf_suite.cpp).
//
// With a same-speed "device core" neither mode can beat host-simd; the
// figure is about how close each gets and at what batch size.

#include <random>

#include "exp_common.hpp"
#include "rshc/device/device.hpp"
#include "rshc/srhd/kernels.hpp"

namespace {

using namespace rshc;

struct ConsBatch {
  std::vector<double> d, sx, sy, sz, tau;
  explicit ConsBatch(std::size_t n) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> ur(0.5, 2.0);
    std::uniform_real_distribution<double> uv(-0.6, 0.6);
    d.resize(n); sx.resize(n); sy.resize(n); sz.resize(n); tau.resize(n);
    const eos::IdealGas eos(5.0 / 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      const srhd::Prim w{ur(rng), uv(rng), uv(rng), uv(rng), ur(rng)};
      const auto u = srhd::prim_to_cons(w, eos);
      d[i] = u.d; sx[i] = u.sx; sy[i] = u.sy; sz[i] = u.sz; tau[i] = u.tau;
    }
  }
};

}  // namespace

int main() {
  constexpr double kGamma = 5.0 / 3.0;
  const srhd::Con2PrimOptions opt;
  const std::vector<std::size_t> batches = {1000, 4000, 16000, 64000,
                                            256000};

  Table table({"batch", "host_simd_Mz/s", "staged_Mz/s", "staged_over_host",
               "resident_Mz/s", "resident_over_host", "transfer_share"});
  table.set_title("F8: accelerator staging crossover for con2prim batches");

  for (const std::size_t n : batches) {
    ConsBatch in(n);
    std::vector<double> rho(n), vx(n), vy(n), vz(n), p(n);

    // Host-simd inline baseline.
    auto host_run = [&] {
      srhd::kernels::simd::cons_to_prim_n(
          n, in.d.data(), in.sx.data(), in.sy.data(), in.sz.data(),
          in.tau.data(), rho.data(), vx.data(), vy.data(), vz.data(),
          p.data(), kGamma, opt);
    };
    host_run();
    WallTimer th;
    host_run();
    const double host_rate = static_cast<double>(n) / th.seconds() / 1e6;

    // Staged: upload 5 arrays, run kernel, download 5 arrays — every call.
    device::AccelModel model;  // defaults: 10us latency, 12 GB/s, 8us launch
    auto dev = device::make_device(device::Backend::kAccelSim, model);
    std::array<device::Buffer, 10> bufs;
    for (auto& b : bufs) b = dev->alloc(n);
    WallTimer ta;
    dev->upload_async(in.d, bufs[0]);
    dev->upload_async(in.sx, bufs[1]);
    dev->upload_async(in.sy, bufs[2]);
    dev->upload_async(in.sz, bufs[3]);
    dev->upload_async(in.tau, bufs[4]);
    auto views = [&](int i) { return bufs[static_cast<std::size_t>(i)].device_view().data(); };
    const auto o = opt;
    auto kernel = [=] {
      srhd::kernels::simd::cons_to_prim_n(
          n, views(0), views(1), views(2), views(3), views(4), views(5),
          views(6), views(7), views(8), views(9), kGamma, o);
    };
    dev->launch(kernel, n);
    dev->download_async(bufs[5], rho);
    dev->download_async(bufs[6], vx);
    dev->download_async(bufs[7], vy);
    dev->download_async(bufs[8], vz);
    dev->download_async(bufs[9], p);
    dev->synchronize();
    const double accel_sec = ta.seconds();
    const double accel_rate = static_cast<double>(n) / accel_sec / 1e6;
    const double transfer_sec =
        10.0 * model.transfer_latency_sec +
        10.0 * static_cast<double>(n) * sizeof(double) /
            model.transfer_bandwidth_bytes_per_sec;

    // Resident: the cons state already lives on the device (uploaded above),
    // so a step pays only the launch overhead plus a halo-sized slab each
    // way — the FvSolver kDevice pipeline's steady-state cost.
    const std::size_t halo = bench::f8_halo_zones(n);
    std::vector<double> halo_host(halo, 1.0);
    device::Buffer halo_buf = dev->alloc(halo);
    WallTimer tr;
    dev->download_async(halo_buf, halo_host);  // rims out
    dev->upload_async(halo_host, halo_buf);    // ghosts back
    dev->launch(kernel, n);
    dev->synchronize();
    const double resident_rate = static_cast<double>(n) / tr.seconds() / 1e6;

    table.add_row({static_cast<long long>(n), host_rate, accel_rate,
                   accel_rate / host_rate, resident_rate,
                   resident_rate / host_rate, transfer_sec / accel_sec});
  }
  bench::emit(table, "f8_accel_batching");
  return 0;
}
