// Experiment F5 — heterogeneous kernel throughput (figure/table).
// Batched SoA kernels (prim2cons, con2prim, max-speed, flux, axpby) timed
// on the scalar-host baseline, the vectorized-host variant, and the
// simulated accelerator (kernel-only and with staging transfers).
//
// Expected shape: vectorized-host beats scalar on the streaming kernels
// (prim2cons, flux, axpby); the branch-heavy con2prim gains little from
// vectorization; the accelerator matches host-simd kernel time but pays
// transfer overheads that only amortize at large batches (see F8).

#include <random>

#include "exp_common.hpp"
#include "rshc/device/device.hpp"
#include "rshc/srhd/kernels.hpp"

namespace {

using namespace rshc;

struct Soa {
  std::vector<double> rho, vx, vy, vz, p;
  std::vector<double> d, sx, sy, sz, tau;
  std::vector<double> out1, out2, out3, out4, out5;

  explicit Soa(std::size_t n) {
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> ur(0.5, 2.0);
    std::uniform_real_distribution<double> uv(-0.6, 0.6);
    auto sz_all = {&rho, &vx, &vy, &vz, &p, &d, &sx, &sy, &sz, &tau,
                   &out1, &out2, &out3, &out4, &out5};
    for (auto* v : sz_all) v->resize(n);
    const eos::IdealGas eos(5.0 / 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      srhd::Prim w{ur(rng), uv(rng), uv(rng), uv(rng), ur(rng)};
      rho[i] = w.rho; vx[i] = w.vx; vy[i] = w.vy; vz[i] = w.vz; p[i] = w.p;
      const auto u = srhd::prim_to_cons(w, eos);
      d[i] = u.d; sx[i] = u.sx; sy[i] = u.sy; sz[i] = u.sz; tau[i] = u.tau;
    }
  }
};

constexpr double kGamma = 5.0 / 3.0;

/// Run `fn` enough times to get a stable rate; returns Mzones/s.
template <typename Fn>
double rate(std::size_t n, Fn&& fn, int reps = 8) {
  fn();  // warm-up
  WallTimer t;
  for (int i = 0; i < reps; ++i) fn();
  return static_cast<double>(n) * reps / t.seconds() / 1e6;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 200000;
  Soa soa(kN);
  const srhd::Con2PrimOptions opt;

  Table table({"kernel", "scalar_Mz/s", "simd_Mz/s", "simd_speedup",
               "accel_kernel_Mz/s", "accel_with_staging_Mz/s"});
  table.set_title("F5: batched kernel throughput, 200k zones");

  namespace ks = srhd::kernels::scalar;
  namespace kv = srhd::kernels::simd;

  struct KernelRow {
    const char* name;
    std::function<void()> scalar_fn;
    std::function<void()> simd_fn;
    std::size_t staged_doubles;  // per zone, for the staging model
  };

  Soa& b = soa;
  const std::vector<KernelRow> kernels = {
      {"prim2cons",
       [&] {
         ks::prim_to_cons_n(kN, b.rho.data(), b.vx.data(), b.vy.data(),
                            b.vz.data(), b.p.data(), b.out1.data(),
                            b.out2.data(), b.out3.data(), b.out4.data(),
                            b.out5.data(), kGamma);
       },
       [&] {
         kv::prim_to_cons_n(kN, b.rho.data(), b.vx.data(), b.vy.data(),
                            b.vz.data(), b.p.data(), b.out1.data(),
                            b.out2.data(), b.out3.data(), b.out4.data(),
                            b.out5.data(), kGamma);
       },
       10},
      {"con2prim",
       [&] {
         ks::cons_to_prim_n(kN, b.d.data(), b.sx.data(), b.sy.data(),
                            b.sz.data(), b.tau.data(), b.out1.data(),
                            b.out2.data(), b.out3.data(), b.out4.data(),
                            b.out5.data(), kGamma, opt);
       },
       [&] {
         kv::cons_to_prim_n(kN, b.d.data(), b.sx.data(), b.sy.data(),
                            b.sz.data(), b.tau.data(), b.out1.data(),
                            b.out2.data(), b.out3.data(), b.out4.data(),
                            b.out5.data(), kGamma, opt);
       },
       10},
      {"max_speed",
       [&] {
         ks::max_speed_n(kN, b.rho.data(), b.vx.data(), b.vy.data(),
                         b.vz.data(), b.p.data(), b.out1.data(), kGamma, 3);
       },
       [&] {
         kv::max_speed_n(kN, b.rho.data(), b.vx.data(), b.vy.data(),
                         b.vz.data(), b.p.data(), b.out1.data(), kGamma, 3);
       },
       6},
      {"flux_x",
       [&] {
         ks::flux_n(kN, 0, b.rho.data(), b.vx.data(), b.vy.data(),
                    b.vz.data(), b.p.data(), b.d.data(), b.sx.data(),
                    b.sy.data(), b.sz.data(), b.tau.data(), b.out1.data(),
                    b.out2.data(), b.out3.data(), b.out4.data(),
                    b.out5.data());
       },
       [&] {
         kv::flux_n(kN, 0, b.rho.data(), b.vx.data(), b.vy.data(),
                    b.vz.data(), b.p.data(), b.d.data(), b.sx.data(),
                    b.sy.data(), b.sz.data(), b.tau.data(), b.out1.data(),
                    b.out2.data(), b.out3.data(), b.out4.data(),
                    b.out5.data());
       },
       15},
      {"axpby",
       [&] { ks::axpby_n(kN, 0.5, b.d.data(), 0.5, b.out1.data()); },
       [&] { kv::axpby_n(kN, 0.5, b.d.data(), 0.5, b.out1.data()); },
       2},
  };

  const device::AccelModel model;  // PCIe-3-ish defaults
  for (const auto& k : kernels) {
    const double r_scalar = rate(kN, k.scalar_fn);
    const double r_simd = rate(kN, k.simd_fn);
    // Accelerator: kernel time == simd time on its stream worker plus
    // launch overhead; staging adds the modeled link cost.
    auto accel = device::make_device(device::Backend::kAccelSim, model);
    WallTimer tk;
    accel->launch(k.simd_fn, kN);
    accel->synchronize();
    const double accel_kernel = static_cast<double>(kN) / tk.seconds() / 1e6;
    const double staging_sec =
        2.0 * model.transfer_latency_sec +
        static_cast<double>(k.staged_doubles * kN * sizeof(double)) /
            model.transfer_bandwidth_bytes_per_sec;
    const double accel_staged =
        static_cast<double>(kN) /
        (tk.seconds() + staging_sec) / 1e6;
    table.add_row({std::string(k.name), r_scalar, r_simd,
                   r_simd / r_scalar, accel_kernel, accel_staged});
  }
  bench::emit(table, "f5_kernel_throughput");
  return 0;
}
