// Experiment F6 — communication/computation overlap (figure).
// Part A (shared memory): dataflow vs bulk-sync time/step as the block
// count grows at fixed problem size — more blocks means more pipelining
// opportunity for dataflow and more barrier overhead for bulk-sync.
// Part B (message passing): distributed stepping under injected
// per-message latency; cost per step grows with latency since the rank
// loop cannot hide synchronous halo waits (the motivating gap that
// futurized runtimes close).
//
// Expected shape: A — dataflow's advantage grows with block count
// (muted on this 1-core host); B — time/step grows roughly linearly with
// injected latency at fixed message count.

#include "rshc/parallel/thread_pool.hpp"
#include "rshc/solver/distributed.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 96;
  constexpr int kSteps = 6;

  // --- Part A: block-count sweep --------------------------------------
  Table a({"blocks", "bulk_sec_per_step", "dataflow_sec_per_step",
           "dataflow_speedup"});
  a.set_title("F6a: overlap vs block count (96^2, 2 workers)");
  for (const int nb : {1, 2, 4, 6}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    opt.blocks = {nb, nb, 1};
    const double dt = 0.1 / static_cast<double>(kN);
    parallel::ThreadPool pool(2);

    auto run = [&](bool dataflow) {
      solver::SrhdSolver s(grid, opt);
      s.initialize(problems::kelvin_helmholtz_ic({}));
      s.step_parallel(dt, pool, dataflow);  // warm-up
      WallTimer t;
      if (dataflow) {
        s.run_steps_dataflow(kSteps, dt, pool);
      } else {
        s.run_steps_bulksync(kSteps, dt, pool);
      }
      return t.seconds() / kSteps;
    };
    const double bulk = run(false);
    const double flow = run(true);
    a.add_row({static_cast<long long>(nb * nb), bulk, flow, bulk / flow});
  }
  bench::emit(a, "f6a_overlap_blocks");

  // --- Part B: injected message latency --------------------------------
  Table b({"latency_us", "sec_per_step", "messages_per_step",
           "latency_share"});
  b.set_title("F6b: distributed step cost vs injected per-message latency "
              "(4 ranks, 96^2)");
  for (const double latency_us : {0.0, 50.0, 200.0, 500.0}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::DistributedSrhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    const double dt = 0.1 / static_cast<double>(kN);

    comm::TransferModel model;
    model.latency_sec = latency_us * 1e-6;
    comm::World world(4, model);
    WallTimer t;
    {
      std::vector<std::jthread> threads;
      for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&world, &grid, &opt, dt, r] {
          auto c = world.communicator(r);
          solver::DistributedSrhdSolver s(grid, c, opt);
          s.initialize(problems::kelvin_helmholtz_ic({}));
          for (int i = 0; i < kSteps; ++i) s.step(dt);
        });
      }
    }
    const double per_step = t.seconds() / kSteps;
    const double msgs_per_step =
        static_cast<double>(world.total_messages()) / kSteps;
    // Latency a rank actually waits on per step: one message per recv in
    // its own critical path (2 axes x 2 sides x 3 stages).
    const double critical_waits = 12.0;
    b.add_row({latency_us, per_step, msgs_per_step,
               critical_waits * latency_us * 1e-6 / per_step});
  }
  bench::emit(b, "f6b_overlap_latency");
  return 0;
}
