// Experiment F6 — communication/computation overlap (figure).
// Part A (shared memory): dataflow vs bulk-sync time/step as the block
// count grows at fixed problem size — more blocks means more pipelining
// opportunity for dataflow and more barrier overhead for bulk-sync.
// Part B (message passing): distributed stepping under injected
// per-message latency, synchronous vs latency-hiding exchange. The sync
// schedule pays every halo wait on the critical path, so its cost per
// step grows linearly with latency; the overlapped schedule computes the
// ghost-free interior while messages fly and only waits for the
// remainder, so its latency slope is much shallower. Both columns step
// the same bitwise-identical numerics (tests/test_overlap.cpp).
//
// Expected shape: A — dataflow's advantage grows with block count
// (muted on this 1-core host); B — sync time/step grows roughly linearly
// with injected latency while overlap's growth is mostly hidden
// (overlap_speedup rising with latency).

#include "rshc/parallel/thread_pool.hpp"
#include "rshc/solver/distributed.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 96;
  constexpr int kSteps = 6;

  // --- Part A: block-count sweep --------------------------------------
  Table a({"blocks", "bulk_sec_per_step", "dataflow_sec_per_step",
           "dataflow_speedup"});
  a.set_title("F6a: overlap vs block count (96^2, 2 workers)");
  for (const int nb : {1, 2, 4, 6}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::SrhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    opt.blocks = {nb, nb, 1};
    const double dt = 0.1 / static_cast<double>(kN);
    parallel::ThreadPool pool(2);

    auto run = [&](bool dataflow) {
      solver::SrhdSolver s(grid, opt);
      s.initialize(problems::kelvin_helmholtz_ic({}));
      s.step_parallel(dt, pool, dataflow);  // warm-up
      WallTimer t;
      if (dataflow) {
        s.run_steps_dataflow(kSteps, dt, pool);
      } else {
        s.run_steps_bulksync(kSteps, dt, pool);
      }
      return t.seconds() / kSteps;
    };
    const double bulk = run(false);
    const double flow = run(true);
    a.add_row({static_cast<long long>(nb * nb), bulk, flow, bulk / flow});
  }
  bench::emit(a, "f6a_overlap_blocks");

  // --- Part B: injected message latency, sync vs overlapped -------------
  Table b({"latency_us", "sync_sec_per_step", "overlap_sec_per_step",
           "overlap_speedup", "messages_per_step"});
  b.set_title("F6b: distributed step cost vs injected per-message latency "
              "(4 ranks, 96^2, sync vs latency-hiding exchange)");
  for (const double latency_us : {0.0, 250.0, 1000.0, 2000.0}) {
    const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
    solver::DistributedSrhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(4.0 / 3.0);
    const double dt = 0.1 / static_cast<double>(kN);

    comm::TransferModel model;
    model.latency_sec = latency_us * 1e-6;

    double msgs_per_step = 0.0;
    auto run = [&](bool overlap) {
      comm::World world(4, model);
      WallTimer t;
      {
        std::vector<std::jthread> threads;
        for (int r = 0; r < 4; ++r) {
          threads.emplace_back([&world, &grid, &opt, dt, overlap, r] {
            auto c = world.communicator(r);
            solver::DistributedSrhdSolver s(grid, c, opt);
            s.set_overlap(overlap);
            s.initialize(problems::kelvin_helmholtz_ic({}));
            for (int i = 0; i < kSteps; ++i) s.step(dt);
          });
        }
      }
      msgs_per_step = static_cast<double>(world.total_messages()) / kSteps;
      return t.seconds() / kSteps;
    };
    const double sync_step = run(false);
    const double overlap_step = run(true);
    b.add_row({latency_us, sync_step, overlap_step, sync_step / overlap_step,
               msgs_per_step});
  }
  bench::emit(b, "f6b_overlap_latency");
  return 0;
}
