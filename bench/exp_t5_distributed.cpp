// Experiment T5 — distributed halo exchange: correctness and cost.
// Rank sweep on a fixed 2D problem: time/step, messages and bytes moved,
// plus the L1 distance of the gathered solution from the serial reference
// (must be exactly zero — the numerics are rank-count invariant).
//
// Expected shape: message count grows linearly with ranks, bytes per rank
// shrink (surface-to-volume), and correctness holds at every rank count.

#include "rshc/solver/distributed.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 96;
  constexpr int kSteps = 6;
  const std::vector<int> rank_counts = {1, 2, 4, 8};

  const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
  solver::DistributedSrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  const double dt = 0.1 / static_cast<double>(kN);
  const auto ic = problems::kelvin_helmholtz_ic({});

  // Serial reference.
  solver::SrhdSolver ref(grid, static_cast<solver::SrhdSolver::Options>(opt));
  ref.initialize(ic);
  for (int i = 0; i < kSteps; ++i) ref.step(dt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  Table table({"ranks", "topology", "sec_per_step", "messages", "kbytes",
               "L1_vs_serial"});
  table.set_title("T5: distributed stepping, 96^2, 6 fixed-dt steps");

  for (const int nr : rank_counts) {
    comm::World world(nr);
    std::vector<double> rho;
    std::string topo;
    WallTimer t;
    {
      std::vector<std::jthread> threads;
      for (int r = 0; r < nr; ++r) {
        threads.emplace_back([&, r] {
          auto c = world.communicator(r);
          solver::DistributedSrhdSolver s(grid, c, opt);
          s.initialize(ic);
          for (int i = 0; i < kSteps; ++i) s.step(dt);
          auto gathered = s.gather_prim_var_root(srhd::kRho);
          if (r == 0) {
            rho = std::move(gathered);
            topo = std::to_string(s.topology().dims()[0]) + "x" +
                   std::to_string(s.topology().dims()[1]);
          }
        });
      }
    }
    const double per_step = t.seconds() / kSteps;
    table.add_row({static_cast<long long>(nr), topo, per_step,
                   static_cast<long long>(world.total_messages()),
                   static_cast<double>(world.total_bytes()) / 1024.0,
                   analysis::l1_error(rho, rho_ref)});
  }
  bench::emit(table, "t5_distributed");
  return 0;
}
