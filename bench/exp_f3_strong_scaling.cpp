// Experiment F3 — strong scaling (figure).
// Fixed 128^2 problem split into 4x4 blocks; worker count sweeps 1..8 for
// both execution models (bulk-synchronous vs futurized dataflow).
//
// Expected shape (on a many-core host): time/step drops with workers,
// dataflow >= bulk-sync throughput with the gap widening as barriers
// dominate. NOTE: this machine exposes a single hardware core, so the
// measured "scaling" here is flat-to-negative by construction — the
// harness is the deliverable; EXPERIMENTS.md discusses the substitution.

#include "rshc/parallel/thread_pool.hpp"

#include "exp_common.hpp"

int main() {
  using namespace rshc;
  constexpr long long kN = 128;
  constexpr int kSteps = 8;
  const std::vector<unsigned> workers = {1, 2, 4, 8};

  const mesh::Grid grid = mesh::Grid::make_2d(kN, kN, -0.5, 0.5, -0.5, 0.5);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  opt.blocks = {4, 4, 1};
  const double dt = 0.1 / static_cast<double>(kN);

  Table table({"mode", "workers", "sec_per_step", "speedup", "efficiency",
               "Mzone_updates_per_s"});
  table.set_title("F3: strong scaling, 128^2 in 4x4 blocks "
                  "(host has 1 hardware core; see EXPERIMENTS.md)");

  const double zones_per_step = static_cast<double>(kN * kN) * 3.0;  // RK3
  for (const bool dataflow : {false, true}) {
    double t1 = 0.0;
    for (const unsigned w : workers) {
      solver::SrhdSolver s(grid, opt);
      s.initialize(problems::kelvin_helmholtz_ic({}));
      parallel::ThreadPool pool(w);
      // Warm-up step excluded from timing.
      s.step_parallel(dt, pool, dataflow);
      WallTimer t;
      if (dataflow) {
        s.run_steps_dataflow(kSteps, dt, pool);
      } else {
        s.run_steps_bulksync(kSteps, dt, pool);
      }
      const double per_step = t.seconds() / kSteps;
      if (w == 1) t1 = per_step;
      table.add_row({std::string(dataflow ? "dataflow" : "bulk-sync"),
                     static_cast<long long>(w), per_step, t1 / per_step,
                     t1 / per_step / w,
                     zones_per_step / per_step / 1e6});
    }
  }
  bench::emit(table, "f3_strong_scaling");
  return 0;
}
