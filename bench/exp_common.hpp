#pragma once
// Shared plumbing for the experiment harnesses (bench/exp_*): solver
// factories for the standard workloads, exact-solution error evaluation,
// and CSV emission. Every harness prints a Table to stdout and mirrors it
// to bench_results/<id>.csv for plotting.

#include <cmath>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/table.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace rshc::bench {

/// Print the table and mirror it to bench_results/<id>.csv. When the
/// environment asks for it (RSHC_DUMP_METRICS / RSHC_DUMP_TRACE), also
/// dump the metrics registry and the Chrome trace next to the CSV.
inline void emit(const Table& table, const std::string& id) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    table.write_csv_file("bench_results/" + id + ".csv");
    std::cout << "[csv: bench_results/" << id << ".csv]\n";
    obs::maybe_dump("bench_results/" + id);
  }
  std::cout << std::endl;
}

/// Configured SRHD shock-tube solver on [0, 1].
inline std::unique_ptr<solver::SrhdSolver> make_tube_solver(
    const problems::ShockTube& st, long long n, recon::Method recon_m,
    riemann::Solver riemann_s, double cfl = 0.4) {
  const mesh::Grid grid = mesh::Grid::make_1d(n, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = recon_m;
  opt.cfl = cfl;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = riemann_s;
  auto s = std::make_unique<solver::SrhdSolver>(grid, opt);
  s->initialize(problems::shock_tube_ic(st));
  return s;
}

struct TubeErrors {
  double l1_rho = 0.0;
  double l1_vx = 0.0;
};

/// L1 errors of a completed tube run against the exact Riemann solution.
inline TubeErrors tube_errors(solver::SrhdSolver& s,
                              const problems::ShockTube& st) {
  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  const auto& g = s.grid();
  const auto rho = s.gather_prim_var(srhd::kRho);
  const auto vx = s.gather_prim_var(srhd::kVx);
  std::vector<double> rho_ref(rho.size());
  std::vector<double> vx_ref(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) {
    const auto e = exact.sample(
        (g.cell_center(0, static_cast<long long>(i)) - st.x_split) /
        s.time());
    rho_ref[i] = e.rho;
    vx_ref[i] = e.v;
  }
  return {analysis::l1_error(rho, rho_ref), analysis::l1_error(vx, vx_ref)};
}

/// Halo slab (in doubles) a device-resident batch of `n` zones moves per
/// step in experiment F8 and the perf.f8.* crossover counters: the 5 prim
/// variables on the 3-deep rims of both axes of a sqrt(n) x sqrt(n) tile —
/// the same steady-state geometry the FvSolver kDevice pipeline exchanges
/// each stage. Capped at n so degenerate tiny batches stay well-formed.
inline std::size_t f8_halo_zones(std::size_t n) {
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  return std::min(n, std::size_t{5} * 2 * 2 * 3 * side);
}

/// Smooth-wave solver on a periodic [0, 1] grid.
inline std::unique_ptr<solver::SrhdSolver> make_wave_solver(
    long long n, recon::Method recon_m, double cfl = 0.2) {
  const mesh::Grid grid = mesh::Grid::make_1d(n, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = recon_m;
  opt.cfl = cfl;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  auto s = std::make_unique<solver::SrhdSolver>(grid, opt);
  s->initialize(problems::smooth_wave_ic({}));
  return s;
}

inline double wave_l1_error(solver::SrhdSolver& s) {
  const problems::SmoothWave wave{};
  const auto rho = s.gather_prim_var(srhd::kRho);
  std::vector<double> exact(rho.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    exact[i] = problems::smooth_wave_exact_rho(
        wave, s.grid().cell_center(0, static_cast<long long>(i)), s.time());
  }
  return analysis::l1_error(rho, exact);
}

}  // namespace rshc::bench
