# Empty dependencies file for mhd_blast.
# This may be replaced when dependencies are built.
