file(REMOVE_RECURSE
  "CMakeFiles/mhd_blast.dir/mhd_blast.cpp.o"
  "CMakeFiles/mhd_blast.dir/mhd_blast.cpp.o.d"
  "mhd_blast"
  "mhd_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
