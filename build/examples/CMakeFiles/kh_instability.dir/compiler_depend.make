# Empty compiler generated dependencies file for kh_instability.
# This may be replaced when dependencies are built.
