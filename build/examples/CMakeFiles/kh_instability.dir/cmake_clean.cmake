file(REMOVE_RECURSE
  "CMakeFiles/kh_instability.dir/kh_instability.cpp.o"
  "CMakeFiles/kh_instability.dir/kh_instability.cpp.o.d"
  "kh_instability"
  "kh_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kh_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
