file(REMOVE_RECURSE
  "CMakeFiles/amr_shock_tracking.dir/amr_shock_tracking.cpp.o"
  "CMakeFiles/amr_shock_tracking.dir/amr_shock_tracking.cpp.o.d"
  "amr_shock_tracking"
  "amr_shock_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_shock_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
