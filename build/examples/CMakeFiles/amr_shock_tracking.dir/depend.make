# Empty dependencies file for amr_shock_tracking.
# This may be replaced when dependencies are built.
