# Empty compiler generated dependencies file for distributed_tube.
# This may be replaced when dependencies are built.
