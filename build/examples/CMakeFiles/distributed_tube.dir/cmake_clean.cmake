file(REMOVE_RECURSE
  "CMakeFiles/distributed_tube.dir/distributed_tube.cpp.o"
  "CMakeFiles/distributed_tube.dir/distributed_tube.cpp.o.d"
  "distributed_tube"
  "distributed_tube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
