# Empty dependencies file for test_srhd.
# This may be replaced when dependencies are built.
