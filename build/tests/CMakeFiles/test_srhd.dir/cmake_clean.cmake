file(REMOVE_RECURSE
  "CMakeFiles/test_srhd.dir/test_srhd.cpp.o"
  "CMakeFiles/test_srhd.dir/test_srhd.cpp.o.d"
  "test_srhd"
  "test_srhd.pdb"
  "test_srhd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
