file(REMOVE_RECURSE
  "CMakeFiles/test_stress_misc.dir/test_stress_misc.cpp.o"
  "CMakeFiles/test_stress_misc.dir/test_stress_misc.cpp.o.d"
  "test_stress_misc"
  "test_stress_misc.pdb"
  "test_stress_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
