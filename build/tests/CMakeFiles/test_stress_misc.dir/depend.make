# Empty dependencies file for test_stress_misc.
# This may be replaced when dependencies are built.
