file(REMOVE_RECURSE
  "CMakeFiles/test_exact_riemann.dir/test_exact_riemann.cpp.o"
  "CMakeFiles/test_exact_riemann.dir/test_exact_riemann.cpp.o.d"
  "test_exact_riemann"
  "test_exact_riemann.pdb"
  "test_exact_riemann[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_riemann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
