# Empty dependencies file for test_exact_riemann.
# This may be replaced when dependencies are built.
