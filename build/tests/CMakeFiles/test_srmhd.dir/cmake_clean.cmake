file(REMOVE_RECURSE
  "CMakeFiles/test_srmhd.dir/test_srmhd.cpp.o"
  "CMakeFiles/test_srmhd.dir/test_srmhd.cpp.o.d"
  "test_srmhd"
  "test_srmhd.pdb"
  "test_srmhd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
