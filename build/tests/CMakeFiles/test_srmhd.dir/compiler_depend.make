# Empty compiler generated dependencies file for test_srmhd.
# This may be replaced when dependencies are built.
