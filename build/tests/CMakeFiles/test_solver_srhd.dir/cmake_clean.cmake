file(REMOVE_RECURSE
  "CMakeFiles/test_solver_srhd.dir/test_solver_srhd.cpp.o"
  "CMakeFiles/test_solver_srhd.dir/test_solver_srhd.cpp.o.d"
  "test_solver_srhd"
  "test_solver_srhd.pdb"
  "test_solver_srhd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_srhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
