# Empty compiler generated dependencies file for test_solver_srhd.
# This may be replaced when dependencies are built.
