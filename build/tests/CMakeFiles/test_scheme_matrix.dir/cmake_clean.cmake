file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_matrix.dir/test_scheme_matrix.cpp.o"
  "CMakeFiles/test_scheme_matrix.dir/test_scheme_matrix.cpp.o.d"
  "test_scheme_matrix"
  "test_scheme_matrix.pdb"
  "test_scheme_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
