# Empty dependencies file for test_scheme_matrix.
# This may be replaced when dependencies are built.
