file(REMOVE_RECURSE
  "CMakeFiles/test_eos.dir/test_eos.cpp.o"
  "CMakeFiles/test_eos.dir/test_eos.cpp.o.d"
  "test_eos"
  "test_eos.pdb"
  "test_eos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
