file(REMOVE_RECURSE
  "CMakeFiles/test_offload_io.dir/test_offload_io.cpp.o"
  "CMakeFiles/test_offload_io.dir/test_offload_io.cpp.o.d"
  "test_offload_io"
  "test_offload_io.pdb"
  "test_offload_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offload_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
