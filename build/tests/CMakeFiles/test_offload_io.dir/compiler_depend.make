# Empty compiler generated dependencies file for test_offload_io.
# This may be replaced when dependencies are built.
