file(REMOVE_RECURSE
  "CMakeFiles/test_srhd_kernels.dir/test_srhd_kernels.cpp.o"
  "CMakeFiles/test_srhd_kernels.dir/test_srhd_kernels.cpp.o.d"
  "test_srhd_kernels"
  "test_srhd_kernels.pdb"
  "test_srhd_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srhd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
