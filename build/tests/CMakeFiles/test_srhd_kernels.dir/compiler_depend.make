# Empty compiler generated dependencies file for test_srhd_kernels.
# This may be replaced when dependencies are built.
