file(REMOVE_RECURSE
  "CMakeFiles/test_solver_3d.dir/test_solver_3d.cpp.o"
  "CMakeFiles/test_solver_3d.dir/test_solver_3d.cpp.o.d"
  "test_solver_3d"
  "test_solver_3d.pdb"
  "test_solver_3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
