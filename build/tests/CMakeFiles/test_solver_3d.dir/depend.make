# Empty dependencies file for test_solver_3d.
# This may be replaced when dependencies are built.
