# Empty dependencies file for test_solver_srmhd.
# This may be replaced when dependencies are built.
