file(REMOVE_RECURSE
  "CMakeFiles/test_solver_srmhd.dir/test_solver_srmhd.cpp.o"
  "CMakeFiles/test_solver_srmhd.dir/test_solver_srmhd.cpp.o.d"
  "test_solver_srmhd"
  "test_solver_srmhd.pdb"
  "test_solver_srmhd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_srmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
