# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_eos[1]_include.cmake")
include("/root/repo/build/tests/test_srhd[1]_include.cmake")
include("/root/repo/build/tests/test_srhd_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_srmhd[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_riemann[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_time[1]_include.cmake")
include("/root/repo/build/tests/test_exact_riemann[1]_include.cmake")
include("/root/repo/build/tests/test_solver_srhd[1]_include.cmake")
include("/root/repo/build/tests/test_solver_srmhd[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_offload_io[1]_include.cmake")
include("/root/repo/build/tests/test_problems[1]_include.cmake")
include("/root/repo/build/tests/test_solver_3d[1]_include.cmake")
include("/root/repo/build/tests/test_wavelet[1]_include.cmake")
include("/root/repo/build/tests/test_amr[1]_include.cmake")
include("/root/repo/build/tests/test_log_misc[1]_include.cmake")
include("/root/repo/build/tests/test_scheme_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_stress_misc[1]_include.cmake")
