# Empty compiler generated dependencies file for exp_t2_convergence.
# This may be replaced when dependencies are built.
