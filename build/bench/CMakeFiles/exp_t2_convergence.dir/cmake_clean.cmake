file(REMOVE_RECURSE
  "CMakeFiles/exp_t2_convergence.dir/exp_t2_convergence.cpp.o"
  "CMakeFiles/exp_t2_convergence.dir/exp_t2_convergence.cpp.o.d"
  "exp_t2_convergence"
  "exp_t2_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t2_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
