file(REMOVE_RECURSE
  "CMakeFiles/exp_w1_wavelet_compression.dir/exp_w1_wavelet_compression.cpp.o"
  "CMakeFiles/exp_w1_wavelet_compression.dir/exp_w1_wavelet_compression.cpp.o.d"
  "exp_w1_wavelet_compression"
  "exp_w1_wavelet_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_w1_wavelet_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
