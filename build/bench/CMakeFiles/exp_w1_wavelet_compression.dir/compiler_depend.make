# Empty compiler generated dependencies file for exp_w1_wavelet_compression.
# This may be replaced when dependencies are built.
