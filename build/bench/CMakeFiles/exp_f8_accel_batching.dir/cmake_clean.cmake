file(REMOVE_RECURSE
  "CMakeFiles/exp_f8_accel_batching.dir/exp_f8_accel_batching.cpp.o"
  "CMakeFiles/exp_f8_accel_batching.dir/exp_f8_accel_batching.cpp.o.d"
  "exp_f8_accel_batching"
  "exp_f8_accel_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f8_accel_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
