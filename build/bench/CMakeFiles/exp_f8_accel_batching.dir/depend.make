# Empty dependencies file for exp_f8_accel_batching.
# This may be replaced when dependencies are built.
