file(REMOVE_RECURSE
  "CMakeFiles/exp_f6_overlap.dir/exp_f6_overlap.cpp.o"
  "CMakeFiles/exp_f6_overlap.dir/exp_f6_overlap.cpp.o.d"
  "exp_f6_overlap"
  "exp_f6_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f6_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
