# Empty compiler generated dependencies file for exp_f6_overlap.
# This may be replaced when dependencies are built.
