# Empty compiler generated dependencies file for exp_f2_kh_growth.
# This may be replaced when dependencies are built.
