file(REMOVE_RECURSE
  "CMakeFiles/exp_f2_kh_growth.dir/exp_f2_kh_growth.cpp.o"
  "CMakeFiles/exp_f2_kh_growth.dir/exp_f2_kh_growth.cpp.o.d"
  "exp_f2_kh_growth"
  "exp_f2_kh_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f2_kh_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
