file(REMOVE_RECURSE
  "CMakeFiles/exp_t5_distributed.dir/exp_t5_distributed.cpp.o"
  "CMakeFiles/exp_t5_distributed.dir/exp_t5_distributed.cpp.o.d"
  "exp_t5_distributed"
  "exp_t5_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t5_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
