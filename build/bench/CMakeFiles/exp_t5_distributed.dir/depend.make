# Empty dependencies file for exp_t5_distributed.
# This may be replaced when dependencies are built.
