file(REMOVE_RECURSE
  "CMakeFiles/exp_f3_strong_scaling.dir/exp_f3_strong_scaling.cpp.o"
  "CMakeFiles/exp_f3_strong_scaling.dir/exp_f3_strong_scaling.cpp.o.d"
  "exp_f3_strong_scaling"
  "exp_f3_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f3_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
