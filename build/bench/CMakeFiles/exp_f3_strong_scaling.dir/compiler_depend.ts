# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_f3_strong_scaling.
