# Empty dependencies file for exp_f3_strong_scaling.
# This may be replaced when dependencies are built.
