file(REMOVE_RECURSE
  "CMakeFiles/exp_f1_blast_profiles.dir/exp_f1_blast_profiles.cpp.o"
  "CMakeFiles/exp_f1_blast_profiles.dir/exp_f1_blast_profiles.cpp.o.d"
  "exp_f1_blast_profiles"
  "exp_f1_blast_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f1_blast_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
