# Empty dependencies file for exp_f1_blast_profiles.
# This may be replaced when dependencies are built.
