file(REMOVE_RECURSE
  "CMakeFiles/exp_t3_riemann_compare.dir/exp_t3_riemann_compare.cpp.o"
  "CMakeFiles/exp_t3_riemann_compare.dir/exp_t3_riemann_compare.cpp.o.d"
  "exp_t3_riemann_compare"
  "exp_t3_riemann_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t3_riemann_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
