# Empty dependencies file for exp_t3_riemann_compare.
# This may be replaced when dependencies are built.
