# Empty dependencies file for exp_r1_refinement.
# This may be replaced when dependencies are built.
