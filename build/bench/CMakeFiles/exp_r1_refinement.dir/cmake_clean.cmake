file(REMOVE_RECURSE
  "CMakeFiles/exp_r1_refinement.dir/exp_r1_refinement.cpp.o"
  "CMakeFiles/exp_r1_refinement.dir/exp_r1_refinement.cpp.o.d"
  "exp_r1_refinement"
  "exp_r1_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r1_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
