# Empty compiler generated dependencies file for exp_f4_weak_scaling.
# This may be replaced when dependencies are built.
