file(REMOVE_RECURSE
  "CMakeFiles/exp_f4_weak_scaling.dir/exp_f4_weak_scaling.cpp.o"
  "CMakeFiles/exp_f4_weak_scaling.dir/exp_f4_weak_scaling.cpp.o.d"
  "exp_f4_weak_scaling"
  "exp_f4_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f4_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
