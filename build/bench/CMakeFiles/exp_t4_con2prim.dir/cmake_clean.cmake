file(REMOVE_RECURSE
  "CMakeFiles/exp_t4_con2prim.dir/exp_t4_con2prim.cpp.o"
  "CMakeFiles/exp_t4_con2prim.dir/exp_t4_con2prim.cpp.o.d"
  "exp_t4_con2prim"
  "exp_t4_con2prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t4_con2prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
