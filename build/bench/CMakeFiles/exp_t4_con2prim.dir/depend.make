# Empty dependencies file for exp_t4_con2prim.
# This may be replaced when dependencies are built.
