# Empty dependencies file for exp_f7_glm_divb.
# This may be replaced when dependencies are built.
