file(REMOVE_RECURSE
  "CMakeFiles/exp_f7_glm_divb.dir/exp_f7_glm_divb.cpp.o"
  "CMakeFiles/exp_f7_glm_divb.dir/exp_f7_glm_divb.cpp.o.d"
  "exp_f7_glm_divb"
  "exp_f7_glm_divb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f7_glm_divb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
