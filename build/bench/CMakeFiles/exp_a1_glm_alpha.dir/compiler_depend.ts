# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_a1_glm_alpha.
