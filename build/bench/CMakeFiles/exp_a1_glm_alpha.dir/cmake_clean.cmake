file(REMOVE_RECURSE
  "CMakeFiles/exp_a1_glm_alpha.dir/exp_a1_glm_alpha.cpp.o"
  "CMakeFiles/exp_a1_glm_alpha.dir/exp_a1_glm_alpha.cpp.o.d"
  "exp_a1_glm_alpha"
  "exp_a1_glm_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_a1_glm_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
