# Empty compiler generated dependencies file for exp_a1_glm_alpha.
# This may be replaced when dependencies are built.
