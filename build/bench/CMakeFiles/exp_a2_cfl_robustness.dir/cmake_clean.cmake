file(REMOVE_RECURSE
  "CMakeFiles/exp_a2_cfl_robustness.dir/exp_a2_cfl_robustness.cpp.o"
  "CMakeFiles/exp_a2_cfl_robustness.dir/exp_a2_cfl_robustness.cpp.o.d"
  "exp_a2_cfl_robustness"
  "exp_a2_cfl_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_a2_cfl_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
