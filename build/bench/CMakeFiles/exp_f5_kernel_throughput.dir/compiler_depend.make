# Empty compiler generated dependencies file for exp_f5_kernel_throughput.
# This may be replaced when dependencies are built.
