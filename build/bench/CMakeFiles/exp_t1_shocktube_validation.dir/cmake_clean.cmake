file(REMOVE_RECURSE
  "CMakeFiles/exp_t1_shocktube_validation.dir/exp_t1_shocktube_validation.cpp.o"
  "CMakeFiles/exp_t1_shocktube_validation.dir/exp_t1_shocktube_validation.cpp.o.d"
  "exp_t1_shocktube_validation"
  "exp_t1_shocktube_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t1_shocktube_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
