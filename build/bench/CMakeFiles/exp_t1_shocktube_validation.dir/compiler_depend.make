# Empty compiler generated dependencies file for exp_t1_shocktube_validation.
# This may be replaced when dependencies are built.
