file(REMOVE_RECURSE
  "CMakeFiles/exp_f9_phase_breakdown.dir/exp_f9_phase_breakdown.cpp.o"
  "CMakeFiles/exp_f9_phase_breakdown.dir/exp_f9_phase_breakdown.cpp.o.d"
  "exp_f9_phase_breakdown"
  "exp_f9_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f9_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
