
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_f9_phase_breakdown.cpp" "bench/CMakeFiles/exp_f9_phase_breakdown.dir/exp_f9_phase_breakdown.cpp.o" "gcc" "bench/CMakeFiles/exp_f9_phase_breakdown.dir/exp_f9_phase_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/problems/CMakeFiles/rshc_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/rshc_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/rshc_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rshc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rshc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rshc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rshc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rshc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/rshc_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/riemann/CMakeFiles/rshc_riemann.dir/DependInfo.cmake"
  "/root/repo/build/src/srhd/CMakeFiles/rshc_srhd.dir/DependInfo.cmake"
  "/root/repo/build/src/srmhd/CMakeFiles/rshc_srmhd.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rshc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/rshc_time.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/rshc_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rshc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
