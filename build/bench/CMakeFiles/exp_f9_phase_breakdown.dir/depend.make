# Empty dependencies file for exp_f9_phase_breakdown.
# This may be replaced when dependencies are built.
