file(REMOVE_RECURSE
  "librshc_srhd.a"
)
