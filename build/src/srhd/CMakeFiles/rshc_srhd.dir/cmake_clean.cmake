file(REMOVE_RECURSE
  "CMakeFiles/rshc_srhd.dir/kernels_scalar.cpp.o"
  "CMakeFiles/rshc_srhd.dir/kernels_scalar.cpp.o.d"
  "CMakeFiles/rshc_srhd.dir/kernels_simd.cpp.o"
  "CMakeFiles/rshc_srhd.dir/kernels_simd.cpp.o.d"
  "librshc_srhd.a"
  "librshc_srhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_srhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
