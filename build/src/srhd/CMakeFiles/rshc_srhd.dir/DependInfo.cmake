
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srhd/kernels_scalar.cpp" "src/srhd/CMakeFiles/rshc_srhd.dir/kernels_scalar.cpp.o" "gcc" "src/srhd/CMakeFiles/rshc_srhd.dir/kernels_scalar.cpp.o.d"
  "/root/repo/src/srhd/kernels_simd.cpp" "src/srhd/CMakeFiles/rshc_srhd.dir/kernels_simd.cpp.o" "gcc" "src/srhd/CMakeFiles/rshc_srhd.dir/kernels_simd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rshc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
