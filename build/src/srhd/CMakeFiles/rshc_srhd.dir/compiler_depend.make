# Empty compiler generated dependencies file for rshc_srhd.
# This may be replaced when dependencies are built.
