file(REMOVE_RECURSE
  "CMakeFiles/rshc_parallel.dir/task_graph.cpp.o"
  "CMakeFiles/rshc_parallel.dir/task_graph.cpp.o.d"
  "CMakeFiles/rshc_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rshc_parallel.dir/thread_pool.cpp.o.d"
  "librshc_parallel.a"
  "librshc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
