file(REMOVE_RECURSE
  "librshc_parallel.a"
)
