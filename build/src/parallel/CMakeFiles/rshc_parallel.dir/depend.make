# Empty dependencies file for rshc_parallel.
# This may be replaced when dependencies are built.
