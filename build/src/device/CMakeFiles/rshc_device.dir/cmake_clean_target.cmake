file(REMOVE_RECURSE
  "librshc_device.a"
)
