# Empty dependencies file for rshc_device.
# This may be replaced when dependencies are built.
