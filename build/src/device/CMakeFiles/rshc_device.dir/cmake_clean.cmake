file(REMOVE_RECURSE
  "CMakeFiles/rshc_device.dir/device.cpp.o"
  "CMakeFiles/rshc_device.dir/device.cpp.o.d"
  "librshc_device.a"
  "librshc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
