file(REMOVE_RECURSE
  "CMakeFiles/rshc_amr.dir/two_level.cpp.o"
  "CMakeFiles/rshc_amr.dir/two_level.cpp.o.d"
  "librshc_amr.a"
  "librshc_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
