file(REMOVE_RECURSE
  "librshc_amr.a"
)
