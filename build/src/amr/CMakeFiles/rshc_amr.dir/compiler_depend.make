# Empty compiler generated dependencies file for rshc_amr.
# This may be replaced when dependencies are built.
