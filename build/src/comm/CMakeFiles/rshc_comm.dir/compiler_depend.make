# Empty compiler generated dependencies file for rshc_comm.
# This may be replaced when dependencies are built.
