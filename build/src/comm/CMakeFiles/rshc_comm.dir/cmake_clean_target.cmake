file(REMOVE_RECURSE
  "librshc_comm.a"
)
