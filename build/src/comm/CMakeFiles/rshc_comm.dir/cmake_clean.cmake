file(REMOVE_RECURSE
  "CMakeFiles/rshc_comm.dir/cart_topology.cpp.o"
  "CMakeFiles/rshc_comm.dir/cart_topology.cpp.o.d"
  "CMakeFiles/rshc_comm.dir/communicator.cpp.o"
  "CMakeFiles/rshc_comm.dir/communicator.cpp.o.d"
  "librshc_comm.a"
  "librshc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
