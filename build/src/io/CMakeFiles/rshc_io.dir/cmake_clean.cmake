file(REMOVE_RECURSE
  "CMakeFiles/rshc_io.dir/checkpoint.cpp.o"
  "CMakeFiles/rshc_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/rshc_io.dir/vtk.cpp.o"
  "CMakeFiles/rshc_io.dir/vtk.cpp.o.d"
  "librshc_io.a"
  "librshc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
