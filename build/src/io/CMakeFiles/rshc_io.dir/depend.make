# Empty dependencies file for rshc_io.
# This may be replaced when dependencies are built.
