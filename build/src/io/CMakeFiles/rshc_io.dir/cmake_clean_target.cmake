file(REMOVE_RECURSE
  "librshc_io.a"
)
