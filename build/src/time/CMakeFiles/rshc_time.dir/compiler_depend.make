# Empty compiler generated dependencies file for rshc_time.
# This may be replaced when dependencies are built.
