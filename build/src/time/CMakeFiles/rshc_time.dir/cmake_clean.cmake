file(REMOVE_RECURSE
  "CMakeFiles/rshc_time.dir/integrator.cpp.o"
  "CMakeFiles/rshc_time.dir/integrator.cpp.o.d"
  "librshc_time.a"
  "librshc_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
