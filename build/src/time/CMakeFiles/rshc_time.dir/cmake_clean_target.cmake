file(REMOVE_RECURSE
  "librshc_time.a"
)
