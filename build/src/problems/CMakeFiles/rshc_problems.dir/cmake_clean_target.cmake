file(REMOVE_RECURSE
  "librshc_problems.a"
)
