# Empty dependencies file for rshc_problems.
# This may be replaced when dependencies are built.
