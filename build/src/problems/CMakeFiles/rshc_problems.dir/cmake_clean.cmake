file(REMOVE_RECURSE
  "CMakeFiles/rshc_problems.dir/problems.cpp.o"
  "CMakeFiles/rshc_problems.dir/problems.cpp.o.d"
  "librshc_problems.a"
  "librshc_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
