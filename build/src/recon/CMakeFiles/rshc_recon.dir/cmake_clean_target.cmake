file(REMOVE_RECURSE
  "librshc_recon.a"
)
