file(REMOVE_RECURSE
  "CMakeFiles/rshc_recon.dir/reconstruct.cpp.o"
  "CMakeFiles/rshc_recon.dir/reconstruct.cpp.o.d"
  "librshc_recon.a"
  "librshc_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
