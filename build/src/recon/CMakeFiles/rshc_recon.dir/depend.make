# Empty dependencies file for rshc_recon.
# This may be replaced when dependencies are built.
