# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("parallel")
subdirs("comm")
subdirs("device")
subdirs("eos")
subdirs("srhd")
subdirs("srmhd")
subdirs("recon")
subdirs("riemann")
subdirs("time")
subdirs("mesh")
subdirs("solver")
subdirs("problems")
subdirs("analysis")
subdirs("wavelet")
subdirs("amr")
subdirs("io")
