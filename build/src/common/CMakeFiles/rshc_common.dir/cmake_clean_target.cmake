file(REMOVE_RECURSE
  "librshc_common.a"
)
