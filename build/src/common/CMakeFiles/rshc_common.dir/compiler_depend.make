# Empty compiler generated dependencies file for rshc_common.
# This may be replaced when dependencies are built.
