file(REMOVE_RECURSE
  "CMakeFiles/rshc_common.dir/config.cpp.o"
  "CMakeFiles/rshc_common.dir/config.cpp.o.d"
  "CMakeFiles/rshc_common.dir/log.cpp.o"
  "CMakeFiles/rshc_common.dir/log.cpp.o.d"
  "CMakeFiles/rshc_common.dir/table.cpp.o"
  "CMakeFiles/rshc_common.dir/table.cpp.o.d"
  "librshc_common.a"
  "librshc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
