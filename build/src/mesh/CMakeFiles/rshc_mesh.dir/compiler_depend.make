# Empty compiler generated dependencies file for rshc_mesh.
# This may be replaced when dependencies are built.
