file(REMOVE_RECURSE
  "CMakeFiles/rshc_mesh.dir/boundary.cpp.o"
  "CMakeFiles/rshc_mesh.dir/boundary.cpp.o.d"
  "CMakeFiles/rshc_mesh.dir/decomposition.cpp.o"
  "CMakeFiles/rshc_mesh.dir/decomposition.cpp.o.d"
  "CMakeFiles/rshc_mesh.dir/halo.cpp.o"
  "CMakeFiles/rshc_mesh.dir/halo.cpp.o.d"
  "librshc_mesh.a"
  "librshc_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
