file(REMOVE_RECURSE
  "librshc_mesh.a"
)
