file(REMOVE_RECURSE
  "librshc_wavelet.a"
)
