# Empty compiler generated dependencies file for rshc_wavelet.
# This may be replaced when dependencies are built.
