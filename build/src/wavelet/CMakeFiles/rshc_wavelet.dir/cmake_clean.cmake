file(REMOVE_RECURSE
  "CMakeFiles/rshc_wavelet.dir/interp_wavelet.cpp.o"
  "CMakeFiles/rshc_wavelet.dir/interp_wavelet.cpp.o.d"
  "librshc_wavelet.a"
  "librshc_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
