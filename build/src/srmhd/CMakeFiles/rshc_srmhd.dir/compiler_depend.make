# Empty compiler generated dependencies file for rshc_srmhd.
# This may be replaced when dependencies are built.
