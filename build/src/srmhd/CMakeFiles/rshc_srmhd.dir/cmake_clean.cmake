file(REMOVE_RECURSE
  "CMakeFiles/rshc_srmhd.dir/con2prim.cpp.o"
  "CMakeFiles/rshc_srmhd.dir/con2prim.cpp.o.d"
  "CMakeFiles/rshc_srmhd.dir/glm.cpp.o"
  "CMakeFiles/rshc_srmhd.dir/glm.cpp.o.d"
  "CMakeFiles/rshc_srmhd.dir/state.cpp.o"
  "CMakeFiles/rshc_srmhd.dir/state.cpp.o.d"
  "librshc_srmhd.a"
  "librshc_srmhd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_srmhd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
