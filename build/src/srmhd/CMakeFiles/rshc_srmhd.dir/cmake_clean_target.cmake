file(REMOVE_RECURSE
  "librshc_srmhd.a"
)
