file(REMOVE_RECURSE
  "librshc_analysis.a"
)
