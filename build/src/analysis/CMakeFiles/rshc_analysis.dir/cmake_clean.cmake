file(REMOVE_RECURSE
  "CMakeFiles/rshc_analysis.dir/exact_riemann.cpp.o"
  "CMakeFiles/rshc_analysis.dir/exact_riemann.cpp.o.d"
  "CMakeFiles/rshc_analysis.dir/norms.cpp.o"
  "CMakeFiles/rshc_analysis.dir/norms.cpp.o.d"
  "librshc_analysis.a"
  "librshc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
