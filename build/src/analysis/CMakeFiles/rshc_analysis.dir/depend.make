# Empty dependencies file for rshc_analysis.
# This may be replaced when dependencies are built.
