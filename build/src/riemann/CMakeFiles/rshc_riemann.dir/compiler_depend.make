# Empty compiler generated dependencies file for rshc_riemann.
# This may be replaced when dependencies are built.
