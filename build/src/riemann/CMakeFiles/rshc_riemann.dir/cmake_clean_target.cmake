file(REMOVE_RECURSE
  "librshc_riemann.a"
)
