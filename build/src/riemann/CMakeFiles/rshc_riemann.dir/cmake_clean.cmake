file(REMOVE_RECURSE
  "CMakeFiles/rshc_riemann.dir/riemann.cpp.o"
  "CMakeFiles/rshc_riemann.dir/riemann.cpp.o.d"
  "librshc_riemann.a"
  "librshc_riemann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_riemann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
