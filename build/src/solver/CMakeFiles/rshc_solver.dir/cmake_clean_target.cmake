file(REMOVE_RECURSE
  "librshc_solver.a"
)
