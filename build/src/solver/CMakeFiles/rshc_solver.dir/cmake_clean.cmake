file(REMOVE_RECURSE
  "CMakeFiles/rshc_solver.dir/diagnostics.cpp.o"
  "CMakeFiles/rshc_solver.dir/diagnostics.cpp.o.d"
  "CMakeFiles/rshc_solver.dir/distributed.cpp.o"
  "CMakeFiles/rshc_solver.dir/distributed.cpp.o.d"
  "CMakeFiles/rshc_solver.dir/fv_solver.cpp.o"
  "CMakeFiles/rshc_solver.dir/fv_solver.cpp.o.d"
  "CMakeFiles/rshc_solver.dir/offload.cpp.o"
  "CMakeFiles/rshc_solver.dir/offload.cpp.o.d"
  "CMakeFiles/rshc_solver.dir/physics.cpp.o"
  "CMakeFiles/rshc_solver.dir/physics.cpp.o.d"
  "librshc_solver.a"
  "librshc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rshc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
