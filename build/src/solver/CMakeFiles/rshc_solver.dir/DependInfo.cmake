
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/diagnostics.cpp" "src/solver/CMakeFiles/rshc_solver.dir/diagnostics.cpp.o" "gcc" "src/solver/CMakeFiles/rshc_solver.dir/diagnostics.cpp.o.d"
  "/root/repo/src/solver/distributed.cpp" "src/solver/CMakeFiles/rshc_solver.dir/distributed.cpp.o" "gcc" "src/solver/CMakeFiles/rshc_solver.dir/distributed.cpp.o.d"
  "/root/repo/src/solver/fv_solver.cpp" "src/solver/CMakeFiles/rshc_solver.dir/fv_solver.cpp.o" "gcc" "src/solver/CMakeFiles/rshc_solver.dir/fv_solver.cpp.o.d"
  "/root/repo/src/solver/offload.cpp" "src/solver/CMakeFiles/rshc_solver.dir/offload.cpp.o" "gcc" "src/solver/CMakeFiles/rshc_solver.dir/offload.cpp.o.d"
  "/root/repo/src/solver/physics.cpp" "src/solver/CMakeFiles/rshc_solver.dir/physics.cpp.o" "gcc" "src/solver/CMakeFiles/rshc_solver.dir/physics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rshc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rshc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rshc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rshc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/srhd/CMakeFiles/rshc_srhd.dir/DependInfo.cmake"
  "/root/repo/build/src/srmhd/CMakeFiles/rshc_srmhd.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/rshc_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/riemann/CMakeFiles/rshc_riemann.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/rshc_time.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/rshc_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rshc_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
