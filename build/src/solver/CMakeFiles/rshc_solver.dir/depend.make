# Empty dependencies file for rshc_solver.
# This may be replaced when dependencies are built.
