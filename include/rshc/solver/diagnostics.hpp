#pragma once
// Solver-level diagnostics: divergence of B for SRMHD runs (F7) and
// conservation audits shared by tests and benches.

#include "rshc/mesh/block.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace rshc::solver {

/// Max |div B| over the interior of `blk` using central differences on the
/// primitive field (ghosts must be current; call fill_all_ghosts first).
[[nodiscard]] double max_divb_block(const mesh::Block& blk);

/// Max |div B| over all blocks of an SRMHD solver (refreshes ghosts).
[[nodiscard]] double max_divb(SrmhdSolver& solver);

/// L2 norm of psi over the interior (cleaning-activity diagnostic).
[[nodiscard]] double psi_l2(const SrmhdSolver& solver);

}  // namespace rshc::solver
