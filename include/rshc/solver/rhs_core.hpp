#pragma once
// Shared batched solver cores (DESIGN.md systems #4/#12): the slab-wise
// rhs, RK update / con2prim, CFL scan, and post-step bodies extracted from
// FvSolver so the host batched pipelines and the device-offload pipeline
// execute the *same compiled code*. The functions take raw SoA slab
// pointers plus a BlockShape instead of mesh types, because the device
// path runs them against flat arena buffers that are not FieldArrays.
//
// Every template is defined in src/solver/rhs_core.cpp and explicitly
// instantiated there, compiled under the kernel-TU recipe
// (-ffp-contract=off, no reassociation): one machine-code copy per
// physics, shared by every pipeline — bitwise identity by construction,
// pinned by test_rhs_pipeline and test_device_pipeline.

#include <array>
#include <cstddef>
#include <vector>

#include "rshc/mesh/block.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/recon/reconstruct.hpp"
#include "rshc/solver/physics.hpp"

namespace rshc::solver::core {

/// Pencils reconstructed per batched tile. Bounds the transpose/flux
/// staging working set to kTileRows * max_extent per variable (a few
/// hundred KiB — cache-resident) independent of block size.
inline constexpr int kTileRows = 32;

/// Geometry of one ghosted block, decoupled from mesh::Block. Axis order
/// is (x, y, z); cell_index matches FieldArray's (k, j, i) row-major
/// layout, so a flat device arena indexed through a BlockShape aliases a
/// host FieldArray exactly.
struct BlockShape {
  int ndim = 1;
  std::array<int, 3> total = {1, 1, 1};  ///< ghosted extents per axis
  std::array<int, 3> begin = {0, 0, 0};  ///< first interior index per axis
  std::array<int, 3> end = {1, 1, 1};    ///< one past last interior
  std::array<double, 3> inv_dx = {0.0, 0.0, 0.0};

  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(total[0]) *
           static_cast<std::size_t>(total[1]) *
           static_cast<std::size_t>(total[2]);
  }
  [[nodiscard]] std::size_t cell_index(int k, int j, int i) const {
    return (static_cast<std::size_t>(k) * static_cast<std::size_t>(total[1]) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(total[0]) +
           static_cast<std::size_t>(i);
  }
  [[nodiscard]] int max_extent() const {
    return std::max({total[0], total[1], total[2]});
  }
};

[[nodiscard]] BlockShape shape_of(const mesh::Block& blk,
                                  const mesh::Grid& grid);

/// Batched tile work arrays: [var][row * max_extent + pencil index].
template <typename Physics>
struct BatchScratch {
  std::array<std::vector<double>, Physics::kNumPrim> tq;
  std::array<std::vector<double>, Physics::kNumPrim> tql;
  std::array<std::vector<double>, Physics::kNumPrim> tqr;
  std::array<std::vector<double>, Physics::kNumCons> tfl;

  explicit BatchScratch(int max_extent) {
    const std::size_t tlen = static_cast<std::size_t>(kTileRows) *
                             static_cast<std::size_t>(max_extent);
    for (int v = 0; v < Physics::kNumPrim; ++v) {
      tq[v].resize(tlen);
      tql[v].resize(tlen);
      tqr[v].resize(tlen);
    }
    for (int v = 0; v < Physics::kNumCons; ++v) tfl[v].resize(tlen);
  }
};

/// Batched rhs: zero `du`, then accumulate flux differences for every
/// active axis. `w` / `du` are flat SoA bases laid out per `sh`. `simd`
/// selects the kernel TU; `block_id` is zone provenance for the checkers.
/// Identical arithmetic to FvSolver's pencil path — see the comment on the
/// definition for how the tile staging preserves the expression shapes.
template <typename Physics>
void rhs_batched(const BlockShape& sh, const typename Physics::Context& ctx,
                 recon::PencilKernel recon_fn, bool simd, const double* w,
                 double* du, BatchScratch<Physics>& s, int block_id);

/// Zone-range-restricted batched rhs (the interior/boundary split the
/// overlapped distributed step uses): accumulate flux differences only for
/// zones in the box [lo, hi) (interior coordinates; lo/hi must lie within
/// [sh.begin, sh.end]). Reconstruction runs on sub-pencil windows padded
/// by the stencil radius, so every zone in the box receives *bitwise* the
/// per-axis contributions the full-range call would give it — callers may
/// partition the interior into disjoint boxes and invoke this per box in
/// any order. `zero_du` zeroes the whole du array first (exactly one box
/// of a partition must pass true, before any other box runs).
/// rhs_batched is this call with [sh.begin, sh.end) and zero_du = true.
template <typename Physics>
void rhs_batched_range(const BlockShape& sh,
                       const typename Physics::Context& ctx,
                       recon::PencilKernel recon_fn, bool simd,
                       const double* w, double* du, BatchScratch<Physics>& s,
                       int block_id, const std::array<int, 3>& lo,
                       const std::array<int, 3>& hi, bool zero_du);

/// Batched RK stage: u = (ca*u0 + cb*u) + cdt*du over the interior, then
/// primitive recovery u -> w through the batched con2prim kernels.
template <typename Physics>
void update_batched(const BlockShape& sh, const typename Physics::Context& ctx,
                    bool simd, double ca, double cb, double cdt,
                    const double* u0, const double* du, double* u, double* w,
                    C2PStats& stats, int block_id);

/// Interior max signal speed (slab-wise scan; `speed` is resized to one
/// row). Seeded with 1e-30 like FvSolver::compute_dt.
template <typename Physics>
[[nodiscard]] double max_wave_speed_batched(const BlockShape& sh,
                                            const typename Physics::Context& ctx,
                                            bool simd, const double* w,
                                            std::vector<double>& speed);

/// Slab-pointer variant of Physics::post_step over whole (ghosted) arrays:
/// GLM psi damping for SRMHD, no-op for SRHD.
template <typename Physics>
void post_step_slabs(const BlockShape& sh,
                     const typename Physics::Context& ctx, double* u,
                     double* w, double dt, double dx_min);

template <>
void post_step_slabs<SrmhdPhysics>(const BlockShape& sh,
                                   const SrmhdPhysics::Context& ctx, double* u,
                                   double* w, double dt, double dx_min);

}  // namespace rshc::solver::core
