#pragma once
// Device-resident execution of the FvSolver hot path (DESIGN.md systems
// #4/#12): each block's cons/prim/u0/du live in a per-block device arena
// that persists across steps, so after the initial residency upload only
// halo-sized payloads cross the H2D/D2H boundary — interior rims come down
// for the host-side ghost logic (sibling copies, physical BCs, or the
// distributed driver's custom filler), freshly filled ghost shells go back
// up. Transfers ride a dedicated transfer stream and are fenced against a
// compute stream with device::Events, so one block's rhs/update kernels
// run while the next block's halo upload is still in flight.
//
// The kernels launched here call the same compiled core::rhs_batched /
// core::update_batched / core::max_wave_speed_batched instantiations as
// the host batched pipelines (rhs_core.cpp, -ffp-contract=off recipe), so
// HostPipeline::kDevice is bitwise identical to the pencil and batched
// host paths by construction — pinned by tests/test_device_pipeline.cpp.

#include <functional>
#include <memory>
#include <vector>

#include "rshc/device/device.hpp"
#include "rshc/mesh/block.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/recon/reconstruct.hpp"
#include "rshc/solver/physics.hpp"

namespace rshc::solver {

template <typename Physics>
class DeviceExec {
 public:
  using Context = typename Physics::Context;

  /// `blocks` is the solver's host mirror; it must outlive this object.
  DeviceExec(const mesh::Grid& grid, std::vector<mesh::Block>& blocks,
             const Context& ctx, recon::PencilKernel recon_fn,
             device::AccelModel model);
  ~DeviceExec();

  /// True while the device arenas hold the authoritative state.
  [[nodiscard]] bool resident() const { return resident_; }
  /// Host mirror was rewritten (initialize/restart); re-upload next step.
  void invalidate() { resident_ = false; }

  /// Establish residency: full cons+prim upload for every block. No-op
  /// when already resident — steady-state steps move only halos.
  void ensure_resident();

  /// Device-side u0 = cons for every block (RK reference state).
  void save_state();

  /// One RK stage (u = (ca*u0 + cb*u) + cdt*du, then con2prim):
  ///   1. pack interior rims on the compute stream, download them on the
  ///      transfer stream (event-fenced), unpack into the host mirror;
  ///   2. run `exchange` per block (FvSolver's exchange_block, including
  ///      any custom ghost filler) against the host mirror;
  ///   3. pack ghost shells, upload on the transfer stream, and enqueue
  ///      unpack + rhs + update kernels that wait on the upload event —
  ///      block b computes while block b+1's upload is in flight.
  /// `stats[b]` receives the con2prim counters (read only after
  /// synchronize()).
  void stage(double ca, double cb, double cdt,
             const std::function<void(int)>& exchange,
             std::vector<C2PStats>& stats);

  /// Device-side per-step hook (GLM psi damping; no-op for SRHD).
  void post_step(double dt, double dx_min);

  /// Interior max signal speed from the device-resident state (the CFL
  /// scan as a device kernel + one scalar-sized download per block).
  [[nodiscard]] double max_wave_speed();

  /// Copy cons+prim back into the host mirror (residency is kept; the
  /// mirror becomes a consistent snapshot).
  void download_all();

  /// Drain both streams; after this the host may read `stats`.
  void synchronize();

 private:
  struct Arena;

  const mesh::Grid* grid_;
  std::vector<mesh::Block>* blocks_;
  Context ctx_;
  recon::PencilKernel recon_fn_;
  std::unique_ptr<device::Device> dev_;
  device::StreamId compute_ = device::kDefaultStream;
  device::StreamId transfer_ = device::kDefaultStream;
  std::vector<std::unique_ptr<Arena>> arenas_;
  device::Buffer vmax_dev_;
  std::vector<double> vmax_host_;
  bool resident_ = false;
};

using SrhdDeviceExec = DeviceExec<SrhdPhysics>;
using SrmhdDeviceExec = DeviceExec<SrmhdPhysics>;

extern template class DeviceExec<SrhdPhysics>;
extern template class DeviceExec<SrmhdPhysics>;

}  // namespace rshc::solver
