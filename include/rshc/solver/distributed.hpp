#pragma once
// Distributed driver: one rank = one block of a Cartesian domain
// decomposition, halos exchanged as messages over a Communicator, dt
// agreed by allreduce. Built by splicing a message-passing ghost filler
// into the shared FvSolver machinery (set_ghost_filler), so the numerics
// are bit-identical to the shared-memory paths — which is exactly what the
// distributed-equivalence tests assert. Works for both physics systems
// (SRHD and SRMHD) through the same trait mechanism as FvSolver.

#include <optional>

#include "rshc/check/halo_guard.hpp"
#include "rshc/comm/cart_topology.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace rshc::solver {

template <typename Physics>
class DistributedSolver {
 public:
  using Options = typename FvSolver<Physics>::Options;  // `blocks` ignored
  using Prim = typename Physics::Prim;

  DistributedSolver(const mesh::Grid& grid, comm::Communicator& comm,
                    Options opt);

  void initialize(const std::function<Prim(double, double, double)>& fn);

  /// Globally agreed CFL step (local bound + min-allreduce).
  [[nodiscard]] double compute_dt();

  void step(double dt);
  /// Advance all ranks to t_end with adaptive, globally agreed dt.
  int advance_to(double t_end, int max_steps = 1000000);

  [[nodiscard]] double time() const { return local_.time(); }
  [[nodiscard]] const mesh::Block& local_block() const {
    return local_.block(0);
  }
  [[nodiscard]] FvSolver<Physics>& local() { return local_; }
  [[nodiscard]] const comm::CartTopology& topology() const { return topo_; }

  /// Gather one primitive variable to rank 0 in global row-major order
  /// (empty vector on other ranks). Collective: all ranks must call.
  [[nodiscard]] std::vector<double> gather_prim_var_root(int v);

 private:
  void exchange_halos();

  mesh::Grid grid_;
  comm::Communicator comm_;
  comm::CartTopology topo_;
  mesh::BlockExtents my_extents_;
  FvSolver<Physics> local_;
  std::vector<double> send_buf_;
  std::vector<double> recv_buf_;
  // Lifecycle assertions on recv_buf_ (no-op unless RSHC_CHECKS is on).
  check::HaloGuard halo_guard_;
};

using DistributedSrhdSolver = DistributedSolver<SrhdPhysics>;
using DistributedSrmhdSolver = DistributedSolver<SrmhdPhysics>;

extern template class DistributedSolver<SrhdPhysics>;
extern template class DistributedSolver<SrmhdPhysics>;

}  // namespace rshc::solver
