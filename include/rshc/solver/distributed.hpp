#pragma once
// Distributed driver: one rank = one block of a Cartesian domain
// decomposition, halos exchanged as messages over a Communicator, dt
// agreed by allreduce. Built by splicing a message-passing ghost filler
// into the shared FvSolver machinery (set_ghost_filler), so the numerics
// are bit-identical to the shared-memory paths — which is exactly what the
// distributed-equivalence tests assert. Works for both physics systems
// (SRHD and SRMHD) through the same trait mechanism as FvSolver.
//
// Stepping defaults to the latency-hiding exchange (DESIGN.md
// "Latency-hiding halo exchange"): begin_exchange posts every irecv and
// isend up front through persistent per-face buffers, FvSolver computes
// the ghost-free interior while the messages fly, and finish_exchange
// unpacks faces in arrival order (wait_any), releasing each boundary box
// the moment its ghosts are valid. Bitwise identical to the synchronous
// schedule; RSHC_OVERLAP=off (or set_overlap(false)) restores it.

#include <array>
#include <optional>
#include <span>

#include "rshc/check/halo_guard.hpp"
#include "rshc/comm/cart_topology.hpp"
#include "rshc/comm/communicator.hpp"
#include "rshc/mesh/halo.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace rshc::solver {

template <typename Physics>
class DistributedSolver {
 public:
  using Options = typename FvSolver<Physics>::Options;  // `blocks` ignored
  using Prim = typename Physics::Prim;

  DistributedSolver(const mesh::Grid& grid, comm::Communicator& comm,
                    Options opt);

  void initialize(const std::function<Prim(double, double, double)>& fn);

  /// Globally agreed CFL step (local bound + min-allreduce).
  [[nodiscard]] double compute_dt();

  void step(double dt);
  /// Advance all ranks to t_end with adaptive, globally agreed dt.
  int advance_to(double t_end, int max_steps = 1000000);

  /// Enable/disable the latency-hiding exchange for subsequent steps.
  /// Initial state comes from RSHC_OVERLAP (on unless "off"/"0"). Both
  /// schedules are bitwise identical; off exists for A/B timing (F6b) and
  /// as an escape hatch.
  void set_overlap(bool on);
  [[nodiscard]] bool overlap_enabled() const { return overlap_; }

  [[nodiscard]] double time() const { return local_.time(); }
  [[nodiscard]] const mesh::Block& local_block() const {
    return local_.block(0);
  }
  [[nodiscard]] FvSolver<Physics>& local() { return local_; }
  [[nodiscard]] const comm::CartTopology& topology() const { return topo_; }

  /// Gather one primitive variable to rank 0 in global row-major order
  /// (empty vector on other ranks). Collective: all ranks must call.
  [[nodiscard]] std::vector<double> gather_prim_var_root(int v);
  /// Gather several primitive variables at once — one coalesced message
  /// per rank instead of one per variable. Collective; every rank must
  /// pass the same `vars`. Returns one global row-major array per
  /// requested variable on rank 0, empty elsewhere.
  [[nodiscard]] std::vector<std::vector<double>> gather_prim_vars_root(
      std::span<const int> vars);

 private:
  using FaceReadyFn = typename FvSolver<Physics>::FaceReadyFn;

  void exchange_halos();
  /// Post every face irecv, then pack + isend every face, and return while
  /// the messages fly. The per-face recv futures stay armed (and the
  /// HaloGuard in-flight) until finish_exchange completes them.
  void begin_exchange();
  /// Apply physical boundaries, then complete halo receives in arrival
  /// order (wait_any), unpacking each face as its message lands. `ready`
  /// is invoked once per face the moment its ghosts are valid.
  void finish_exchange(const FaceReadyFn& ready);

  mesh::Grid grid_;
  comm::Communicator comm_;
  comm::CartTopology topo_;
  mesh::BlockExtents my_extents_;
  FvSolver<Physics> local_;
  // Persistent per-(axis, side) staging buffers: no per-exchange
  // allocation, all faces in flight simultaneously.
  mesh::HaloBufferSet halo_bufs_;
  // In-flight recv futures, indexed axis*2+side; empty slots = no
  // neighbour on that face.
  std::array<comm::CommFuture, 6> recv_futures_;
  bool overlap_ = true;
  // Lifecycle assertions on the recv buffers (no-op unless RSHC_CHECKS is
  // on): armed at irecv post, completed+consumed at the arrival-order
  // unpack — the guard spans the whole async window.
  check::HaloGuard halo_guard_;
};

using DistributedSrhdSolver = DistributedSolver<SrhdPhysics>;
using DistributedSrmhdSolver = DistributedSolver<SrmhdPhysics>;

extern template class DistributedSolver<SrhdPhysics>;
extern template class DistributedSolver<SrmhdPhysics>;

}  // namespace rshc::solver
