#pragma once
// Device-offload path: runs the conservative-to-primitive batch over a
// block's interior on an execution Device, staging SoA slabs exactly the
// way a GPU port would (gather interior -> upload -> kernel -> download ->
// scatter). The same routine serves all three backends, which is what the
// backend-equivalence tests rely on.

#include "rshc/device/device.hpp"
#include "rshc/mesh/block.hpp"
#include "rshc/solver/physics.hpp"
#include "rshc/srhd/kernels.hpp"

namespace rshc::solver {

struct OffloadStats {
  double upload_seconds = 0.0;
  double kernel_seconds = 0.0;
  double download_seconds = 0.0;
  srhd::kernels::BatchStats batch{};
  std::size_t zones = 0;
};

/// Recover primitives from conservatives for the whole interior of `blk`
/// on `dev`. Scalar backend uses the scalar kernel variant; SIMD and the
/// simulated accelerator use the vectorized variant.
OffloadStats offload_cons_to_prim(device::Device& dev, mesh::Block& blk,
                                  const SrhdPhysics::Context& ctx);

}  // namespace rshc::solver
