#pragma once
// Generic block-structured finite-volume HRSC solver (method of lines):
// reconstruct primitives along axis pencils, solve a Riemann problem at
// every interface, accumulate flux differences, advance with an SSP
// Runge-Kutta integrator, and recover primitives. Parametrized over a
// Physics trait (SrhdPhysics / SrmhdPhysics).
//
// Execution modes:
//  - step(dt)                     serial reference path
//  - step_parallel(..., bulk)     block-parallel with a barrier per phase
//  - step_parallel(..., dataflow) futurized dataflow: per-(block,stage)
//    exchange and compute tasks linked only by true data dependencies, no
//    global barrier inside a step
//  - run_steps_dataflow(n, dt)    one task graph spanning n whole steps —
//    no barrier *between* steps either (the heterogeneous-runtime payoff
//    measured in F3/F6)
//
// Per-step dependency structure (E = exchange+BC, K = rhs+update+c2p):
//   E(b,s) <- K(b,s-1), K(nbr,s-1)   (needs stage s-1 prims of b and nbrs)
//   K(b,s) <- E(b,s), E(nbr,s)       (E(nbr,s) read b's prims: anti-dep)

#include <array>
#include <cmath>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "rshc/device/device.hpp"
#include "rshc/mesh/block.hpp"
#include "rshc/mesh/boundary.hpp"
#include "rshc/mesh/decomposition.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/mesh/halo.hpp"
#include "rshc/parallel/task_graph.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/recon/reconstruct.hpp"
#include "rshc/solver/physics.hpp"
#include "rshc/time/integrator.hpp"

namespace rshc::solver {

/// Execution strategy for the per-block hot loops (rhs, RK update,
/// con2prim, CFL scan). All settings are bitwise identical; they
/// reorganize data movement only, never arithmetic:
///  - kPencil         per-pencil gather + per-zone state structs (the
///                    reference path the other settings are checked
///                    against)
///  - kBatchedScalar  slab-wise plane reconstruction, tiled transpose
///                    gathers, fused span loops; kernels::scalar TUs
///  - kBatchedSimd    same layout, kernels::simd TUs (-O3, native arch)
///  - kDevice         the batched cores launched as kernels on the
///                    simulated accelerator (DeviceExec): per-block state
///                    is device-resident across steps, only halo slabs
///                    cross the H2D/D2H boundary, transfers overlap with
///                    interior compute on a second stream
enum class HostPipeline {
  kPencil,
  kBatchedScalar,
  kBatchedSimd,
  kDevice,
};

[[nodiscard]] std::string_view host_pipeline_name(HostPipeline p);
/// Parse "pencil", "batched-scalar", "batched-simd", "device".
[[nodiscard]] HostPipeline parse_host_pipeline(std::string_view name);

template <typename Physics>
class DeviceExec;

template <typename Physics>
class FvSolver {
 public:
  using Prim = typename Physics::Prim;
  using Cons = typename Physics::Cons;
  using Context = typename Physics::Context;

  struct Options {
    recon::Method recon = recon::Method::kPLMMC;
    time::Integrator integrator = time::Integrator::kSspRk3;
    double cfl = 0.4;
    mesh::BoundarySpec bc{};
    Context physics{};
    std::array<int, 3> blocks = {1, 1, 1};
    HostPipeline pipeline = HostPipeline::kBatchedSimd;
    /// Transfer/launch cost model for HostPipeline::kDevice (tests pass a
    /// zero-cost model; benchmarks keep the PCIe-like defaults).
    device::AccelModel accel{};
  };

  FvSolver(const mesh::Grid& grid, Options opt);

  /// Restricted construction: own a *single* block covering `sub` of the
  /// global grid (the distributed driver's per-rank view). A ghost filler
  /// must be installed before stepping — the built-in shared-memory
  /// exchange has no sibling blocks to copy from.
  FvSolver(const mesh::Grid& grid, Options opt, mesh::BlockExtents sub);

  ~FvSolver();  // out-of-line: Scratch is incomplete here

  /// Set initial data: fn(x, y, z) -> Prim, evaluated at interior cell
  /// centers; conservatives derived, ghosts filled.
  void initialize(const std::function<Prim(double, double, double)>& fn);

  /// CFL-limited time step from the current state.
  [[nodiscard]] double compute_dt() const;

  /// One time step (serial reference path).
  void step(double dt);

  /// One time step on `pool`; dataflow=false uses bulk-synchronous phases.
  void step_parallel(double dt, parallel::ThreadPool& pool, bool dataflow);

  /// `nsteps` fixed-dt steps as one dependency graph (no barriers at all).
  void run_steps_dataflow(int nsteps, double dt, parallel::ThreadPool& pool);
  /// Baseline for the same workload: barrier per phase, per stage, per step.
  void run_steps_bulksync(int nsteps, double dt, parallel::ThreadPool& pool);

  /// Advance to t_end with adaptive dt (serial); returns steps taken.
  int advance_to(double t_end, int max_steps = 1000000);

  // --- observation ----------------------------------------------------
  [[nodiscard]] const mesh::Grid& grid() const { return grid_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] double time() const { return time_; }
  /// Steps taken over this solver's lifetime (any stepping entry point);
  /// also the step number stamped on the telemetry heartbeat.
  [[nodiscard]] long long steps_taken() const { return steps_taken_; }
  [[nodiscard]] int num_blocks() const {
    return static_cast<int>(blocks_.size());
  }
  [[nodiscard]] mesh::Block& block(int b) { return blocks_[b]; }
  [[nodiscard]] const mesh::Block& block(int b) const { return blocks_[b]; }
  [[nodiscard]] const C2PStats& c2p_stats() const { return stats_; }

  /// Primitive state at a global interior cell (slow; analysis only).
  [[nodiscard]] Prim prim_at(long long gi, long long gj = 0,
                             long long gk = 0) const;
  /// One primitive variable over the whole interior in global row-major
  /// (k, j, i) order (analysis/norms only).
  [[nodiscard]] std::vector<double> gather_prim_var(int v) const;
  /// Volume-weighted sum of the conservatives (conservation audits).
  [[nodiscard]] Cons total_cons() const;

  /// Re-fill all ghost zones from current prims (diagnostics that need
  /// up-to-date halos, e.g. div B).
  void fill_all_ghosts();

  /// Restart support: overwrite the clock and re-derive primitives from the
  /// (externally restored) conservative fields, then refresh ghosts.
  void set_time(double t) { time_ = t; }
  void recover_all_prims();

  /// Evaluate the flux-divergence RHS for every block from the current
  /// primitives (benchmark hook: isolates the rhs phase of the selected
  /// pipeline without stepping).
  void compute_rhs_all();

  /// Per-phase wall-time breakdown, accumulated on the *serial* stepping
  /// path only (experiment F9). Parallel paths skip the timers to avoid
  /// cross-thread races.
  struct PhaseTimes {
    double exchange = 0.0;  ///< halo copies + boundary conditions
    double rhs = 0.0;       ///< reconstruction + Riemann + flux differencing
    double update = 0.0;    ///< RK combination + con2prim
    double other = 0.0;     ///< state save, psi damping, bookkeeping
    [[nodiscard]] double total() const {
      return exchange + rhs + update + other;
    }
  };
  [[nodiscard]] const PhaseTimes& phase_times() const { return phases_; }
  void reset_phase_times() { phases_ = {}; }

  /// Replace the default shared-memory ghost fill for block `b` with a
  /// custom routine — the hook the distributed (message-passing) driver
  /// uses to splice halo exchange over a Communicator into the same
  /// stepping machinery.
  void set_ghost_filler(std::function<void(int)> filler) {
    ghost_filler_ = std::move(filler);
  }

  /// Invoked by the finish hook once per face of block b, as soon as that
  /// face's ghosts are valid (halo unpacked or physical boundary applied).
  using FaceReadyFn = std::function<void(int axis, int side)>;
  /// Install the latency-hiding exchange pair (the distributed driver's
  /// hook; see DESIGN.md "Latency-hiding halo exchange"). `begin(b)` posts
  /// the async exchange for block b and returns while messages fly;
  /// `finish(b, ready)` completes it, calling `ready(axis, side)` for
  /// every face as its ghosts become valid. With the pair installed (and a
  /// host pipeline selected), the stepping paths split each RHS into a
  /// ghost-independent interior pass overlapped with the message flight
  /// plus stencil-width boundary boxes computed as their faces arrive —
  /// bitwise identical to the synchronous schedule. Pass empty functions
  /// to uninstall (the sync ghost filler is used again).
  void set_overlap_exchange(
      std::function<void(int)> begin,
      std::function<void(int, const FaceReadyFn&)> finish) {
    overlap_begin_ = std::move(begin);
    overlap_finish_ = std::move(finish);
  }

  // --- device offload (HostPipeline::kDevice) -------------------------
  /// True when device arenas hold the authoritative state (the host
  /// mirror's interior may be stale between sync_from_device calls).
  [[nodiscard]] bool device_resident() const;
  /// Drain the device and copy cons+prim back into the host mirror so
  /// prim_at / gather_prim_var / total_cons / offload see current data.
  /// Residency is kept; no-op when not resident.
  void sync_from_device();
  /// Switch the execution pipeline mid-run. Leaving kDevice syncs the
  /// host mirror and drops residency (the next kDevice step re-uploads).
  void set_pipeline(HostPipeline p);

 private:
  struct Scratch;  // per-block pencil + batched-tile work arrays

  [[nodiscard]] bool overlap_active() const {
    return static_cast<bool>(overlap_begin_) &&
           static_cast<bool>(overlap_finish_) &&
           opt_.pipeline != HostPipeline::kDevice;
  }
  void exchange_block(int b);
  void compute_rhs(int b);
  void compute_rhs_pencil(int b);
  void compute_rhs_batched(int b);
  /// Restricted-box RHS: accumulate only zones in [lo, hi); `zero_du`
  /// clears the whole accumulator first. Bitwise equal per zone to the
  /// full-range call (see core::rhs_batched_range).
  void compute_rhs_range(int b, const std::array<int, 3>& lo,
                         const std::array<int, 3>& hi, bool zero_du);
  void compute_rhs_pencil_range(int b, const std::array<int, 3>& lo,
                                const std::array<int, 3>& hi);
  /// Interior-first RHS for the overlapped exchange: interior box while
  /// messages fly, then boundary boxes as overlap_finish_ reports faces.
  void compute_rhs_overlapped(int b);
  void update_block(int b, time::StageCoeffs coeffs, double dt);
  void update_block_pencil(int b, time::StageCoeffs coeffs, double dt);
  void update_block_batched(int b, time::StageCoeffs coeffs, double dt);
  void save_state();
  void post_step_all();
  void stage_serial(int stage, double dt);
  void step_device(double dt);
  parallel::TaskGraph& step_graph(int nsteps);

  mesh::Grid grid_;
  Options opt_;
  int ng_;
  mesh::Decomposition decomp_;
  std::vector<mesh::Block> blocks_;
  std::vector<mesh::FieldArray> u0_;  // RK reference state
  std::vector<mesh::FieldArray> du_;  // flux-difference accumulator
  std::vector<std::unique_ptr<Scratch>> scratch_;
  std::vector<C2PStats> block_stats_;
  std::function<void(int)> ghost_filler_;
  std::function<void(int)> overlap_begin_;
  std::function<void(int, const FaceReadyFn&)> overlap_finish_;
  recon::PencilKernel recon_fn_ = nullptr;  // opt_.recon, resolved once
  bool restricted_ = false;
  C2PStats stats_;
  double time_ = 0.0;
  double current_dt_ = 0.0;
  long long steps_taken_ = 0;
  PhaseTimes phases_;

  // Lazily constructed on the first kDevice step; owns the per-block
  // device arenas (see device_exec.hpp).
  std::unique_ptr<DeviceExec<Physics>> device_;

  // Cached dataflow graphs keyed by step count (and overlap mode — the
  // node bodies differ when the exchange is futurized).
  std::unique_ptr<parallel::TaskGraph> graph_;
  int graph_steps_ = 0;
  bool graph_overlap_ = false;
};

using SrhdSolver = FvSolver<SrhdPhysics>;
using SrmhdSolver = FvSolver<SrmhdPhysics>;

extern template class FvSolver<SrhdPhysics>;
extern template class FvSolver<SrmhdPhysics>;

}  // namespace rshc::solver
