#pragma once
// Physics traits binding the generic finite-volume machinery (FvSolver) to
// a concrete system of equations. Two instantiations ship: SrhdPhysics and
// SrmhdPhysics. A trait supplies variable counts, state types, load/store
// between FieldArray SoA storage and state structs, the physical maps
// (prim<->cons, interface flux, signal speeds) and the per-step hook used
// by GLM damping.

#include <cstddef>
#include <vector>

#include "rshc/eos/ideal_gas.hpp"
#include "rshc/mesh/field_array.hpp"
#include "rshc/riemann/riemann.hpp"
#include "rshc/srhd/con2prim.hpp"
#include "rshc/srhd/state.hpp"
#include "rshc/srmhd/con2prim.hpp"
#include "rshc/srmhd/glm.hpp"
#include "rshc/srmhd/state.hpp"

namespace rshc::solver {

/// Accumulated con2prim health counters for one step (experiment T4's
/// in-situ analogue; also the failure-injection observability hook).
struct C2PStats {
  long long total_iterations = 0;
  long long floored_zones = 0;

  C2PStats& operator+=(const C2PStats& o) {
    total_iterations += o.total_iterations;
    floored_zones += o.floored_zones;
    return *this;
  }
};

struct SrhdPhysics {
  static constexpr int kNumCons = srhd::kNumVars;
  static constexpr int kNumPrim = srhd::kNumVars;
  using Prim = srhd::Prim;
  using Cons = srhd::Cons;

  struct Context {
    eos::IdealGas eos{4.0 / 3.0};
    srhd::Con2PrimOptions c2p{};
    riemann::Solver riemann = riemann::Solver::kHLL;
  };

  static Prim load_prim(const mesh::FieldArray& w, int k, int j, int i) {
    return Prim{w(srhd::kRho, k, j, i), w(srhd::kVx, k, j, i),
                w(srhd::kVy, k, j, i), w(srhd::kVz, k, j, i),
                w(srhd::kP, k, j, i)};
  }
  static void store_prim(mesh::FieldArray& w, int k, int j, int i,
                         const Prim& p) {
    w(srhd::kRho, k, j, i) = p.rho;
    w(srhd::kVx, k, j, i) = p.vx;
    w(srhd::kVy, k, j, i) = p.vy;
    w(srhd::kVz, k, j, i) = p.vz;
    w(srhd::kP, k, j, i) = p.p;
  }
  static Cons load_cons(const mesh::FieldArray& u, int k, int j, int i) {
    return Cons{u(srhd::kD, k, j, i), u(srhd::kSx, k, j, i),
                u(srhd::kSy, k, j, i), u(srhd::kSz, k, j, i),
                u(srhd::kTau, k, j, i)};
  }
  static void store_cons(mesh::FieldArray& u, int k, int j, int i,
                         const Cons& c) {
    u(srhd::kD, k, j, i) = c.d;
    u(srhd::kSx, k, j, i) = c.sx;
    u(srhd::kSy, k, j, i) = c.sy;
    u(srhd::kSz, k, j, i) = c.sz;
    u(srhd::kTau, k, j, i) = c.tau;
  }

  /// Build a Prim from per-variable reconstructed values.
  static Prim prim_from_components(const double* q) {
    return Prim{q[srhd::kRho], q[srhd::kVx], q[srhd::kVy], q[srhd::kVz],
                q[srhd::kP]};
  }
  /// Decompose a Cons into per-variable values (Var order) — the inverse of
  /// prim_from_components, used by the batched flux staging.
  static void cons_components(const Cons& c, double* q) {
    q[srhd::kD] = c.d;
    q[srhd::kSx] = c.sx;
    q[srhd::kSy] = c.sy;
    q[srhd::kSz] = c.sz;
    q[srhd::kTau] = c.tau;
  }

  // Batched span-level kernels for the host pipeline: `u` holds kNumCons
  // SoA spans in Var order, `w` kNumPrim spans in PrimVar order, all of
  // length n. `simd` selects the kernel translation unit; both variants
  // are bitwise-identical to the per-zone to_prim / max_speed calls.
  static void cons_to_prim_n(bool simd, std::size_t n, const double* const* u,
                             double* const* w, const Context& ctx,
                             C2PStats& stats);
  static void max_speed_n(bool simd, std::size_t n, const double* const* w,
                          double* speed, const Context& ctx, int ndim);
  /// Batched limiter + Riemann solve + flux over n interfaces: `wl`/`wr`
  /// hold kNumPrim face-state rows, `f` receives kNumCons flux rows.
  /// Returns false when the configured solver has no batched kernel (the
  /// exact Godunov solve) — the caller then falls back to the
  /// per-interface path. Bitwise identical to limit_face_state +
  /// interface_flux per zone.
  static bool interface_flux_n(bool simd, std::size_t n, int axis,
                               const double* const* wl,
                               const double* const* wr, double* const* f,
                               const Context& ctx);

  static Cons to_cons(const Prim& w, const Context& ctx) {
    return srhd::prim_to_cons(w, ctx.eos);
  }
  static Prim to_prim(const Cons& u, const Context& ctx, C2PStats& stats) {
    const auto r = srhd::cons_to_prim(u, ctx.eos, ctx.c2p);
    stats.total_iterations += r.iterations;
    stats.floored_zones += r.floored ? 1 : 0;
    return r.prim;
  }
  static Cons interface_flux(const Prim& wl, const Prim& wr, int axis,
                             const Context& ctx) {
    return riemann::solve_srhd(ctx.riemann, wl, wr, axis, ctx.eos);
  }
  static double max_speed(const Prim& w, const Context& ctx, int ndim) {
    return srhd::max_signal_speed(w, ctx.eos, ndim);
  }
  /// Primitive variables whose sign flips under reflection across `axis`.
  static std::vector<int> reflect_negate_vars(int axis) {
    return {srhd::kVx + axis};
  }
  /// Sanitize reconstructed face states (positivity of rho, p; |v| < 1).
  static void limit_face_state(Prim& w, const Context& ctx);
  /// Per-step hook (psi damping for MHD); no-op here.
  static void post_step(mesh::FieldArray&, mesh::FieldArray&, const Context&,
                        double /*dt*/, double /*dx_min*/) {}
};

struct SrmhdPhysics {
  static constexpr int kNumCons = srmhd::kNumVars;
  static constexpr int kNumPrim = srmhd::kNumVars;
  using Prim = srmhd::Prim;
  using Cons = srmhd::Cons;

  struct Context {
    eos::IdealGas eos{5.0 / 3.0};
    srmhd::Con2PrimOptions c2p{};
    srmhd::GlmParams glm{};
  };

  static Prim load_prim(const mesh::FieldArray& w, int k, int j, int i) {
    Prim p;
    p.rho = w(srmhd::kRho, k, j, i);
    p.vx = w(srmhd::kVx, k, j, i);
    p.vy = w(srmhd::kVy, k, j, i);
    p.vz = w(srmhd::kVz, k, j, i);
    p.p = w(srmhd::kP, k, j, i);
    p.bx = w(srmhd::kBx, k, j, i);
    p.by = w(srmhd::kBy, k, j, i);
    p.bz = w(srmhd::kBz, k, j, i);
    p.psi = w(srmhd::kPsi, k, j, i);
    return p;
  }
  static void store_prim(mesh::FieldArray& w, int k, int j, int i,
                         const Prim& p) {
    w(srmhd::kRho, k, j, i) = p.rho;
    w(srmhd::kVx, k, j, i) = p.vx;
    w(srmhd::kVy, k, j, i) = p.vy;
    w(srmhd::kVz, k, j, i) = p.vz;
    w(srmhd::kP, k, j, i) = p.p;
    w(srmhd::kBx, k, j, i) = p.bx;
    w(srmhd::kBy, k, j, i) = p.by;
    w(srmhd::kBz, k, j, i) = p.bz;
    w(srmhd::kPsi, k, j, i) = p.psi;
  }
  static Cons load_cons(const mesh::FieldArray& u, int k, int j, int i) {
    Cons c;
    c.d = u(srmhd::kD, k, j, i);
    c.sx = u(srmhd::kSx, k, j, i);
    c.sy = u(srmhd::kSy, k, j, i);
    c.sz = u(srmhd::kSz, k, j, i);
    c.tau = u(srmhd::kTau, k, j, i);
    c.bx = u(srmhd::kBx, k, j, i);
    c.by = u(srmhd::kBy, k, j, i);
    c.bz = u(srmhd::kBz, k, j, i);
    c.psi = u(srmhd::kPsi, k, j, i);
    return c;
  }
  static void store_cons(mesh::FieldArray& u, int k, int j, int i,
                         const Cons& c) {
    u(srmhd::kD, k, j, i) = c.d;
    u(srmhd::kSx, k, j, i) = c.sx;
    u(srmhd::kSy, k, j, i) = c.sy;
    u(srmhd::kSz, k, j, i) = c.sz;
    u(srmhd::kTau, k, j, i) = c.tau;
    u(srmhd::kBx, k, j, i) = c.bx;
    u(srmhd::kBy, k, j, i) = c.by;
    u(srmhd::kBz, k, j, i) = c.bz;
    u(srmhd::kPsi, k, j, i) = c.psi;
  }

  static Prim prim_from_components(const double* q) {
    Prim p;
    p.rho = q[srmhd::kRho];
    p.vx = q[srmhd::kVx];
    p.vy = q[srmhd::kVy];
    p.vz = q[srmhd::kVz];
    p.p = q[srmhd::kP];
    p.bx = q[srmhd::kBx];
    p.by = q[srmhd::kBy];
    p.bz = q[srmhd::kBz];
    p.psi = q[srmhd::kPsi];
    return p;
  }
  static void cons_components(const Cons& c, double* q) {
    q[srmhd::kD] = c.d;
    q[srmhd::kSx] = c.sx;
    q[srmhd::kSy] = c.sy;
    q[srmhd::kSz] = c.sz;
    q[srmhd::kTau] = c.tau;
    q[srmhd::kBx] = c.bx;
    q[srmhd::kBy] = c.by;
    q[srmhd::kBz] = c.bz;
    q[srmhd::kPsi] = c.psi;
  }

  // Batched span-level kernels (see SrhdPhysics for the contract).
  static void cons_to_prim_n(bool simd, std::size_t n, const double* const* u,
                             double* const* w, const Context& ctx,
                             C2PStats& stats);
  static void max_speed_n(bool simd, std::size_t n, const double* const* w,
                          double* speed, const Context& ctx, int ndim);
  static bool interface_flux_n(bool simd, std::size_t n, int axis,
                               const double* const* wl,
                               const double* const* wr, double* const* f,
                               const Context& ctx);

  static Cons to_cons(const Prim& w, const Context& ctx) {
    return srmhd::prim_to_cons(w, ctx.eos);
  }
  static Prim to_prim(const Cons& u, const Context& ctx, C2PStats& stats) {
    const auto r = srmhd::cons_to_prim(u, ctx.eos, ctx.c2p);
    stats.total_iterations += r.iterations;
    stats.floored_zones += r.floored ? 1 : 0;
    return r.prim;
  }
  static Cons interface_flux(const Prim& wl, const Prim& wr, int axis,
                             const Context& ctx) {
    return riemann::solve_srmhd_hll(wl, wr, axis, ctx.eos, ctx.glm);
  }
  static double max_speed(const Prim& w, const Context& ctx, int ndim) {
    return srmhd::max_signal_speed(w, ctx.eos, ndim);
  }
  static std::vector<int> reflect_negate_vars(int axis) {
    return {srmhd::kVx + axis, srmhd::kBx + axis};
  }
  static void limit_face_state(Prim& w, const Context& ctx);
  /// GLM psi damping, applied to both cons and prim psi slabs.
  static void post_step(mesh::FieldArray& cons, mesh::FieldArray& prim,
                        const Context& ctx, double dt, double dx_min);
};

/// y[i] = (a*x[i] + b*y[i]) + c*z[i] over n entries — the RK stage
/// combination as a physics-agnostic span kernel. `simd` selects the
/// kernel translation unit; both variants keep the pencil path's
/// left-associated expression shape, so the result is bitwise identical.
void rk_combine_n(bool simd, std::size_t n, double a, const double* x,
                  double b, double* y, double c, const double* z);

}  // namespace rshc::solver
