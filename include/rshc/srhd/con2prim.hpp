#pragma once
// Conservative-to-primitive recovery for SRHD — the stiff nonlinear kernel
// at the heart of every relativistic HRSC step (experiment T4). We solve a
// 1D root problem in the pressure:
//     f(p) = p_eos(rho(p), eps(p)) - p = 0
// with  v^2(p) = S^2 / (E + p)^2,  E = tau + D,
//       W = (1 - v^2)^{-1/2},  rho = D / W,  h = (E + p) / (D W),
//       eps = h - 1 - p / rho.
// Newton iteration with the standard analytic slope df/dp = v^2 cs^2 - 1,
// guarded by a bisection bracket so pathological states still converge.
// Failures are *reported*, never thrown; callers apply the atmosphere
// policy (floors) and continue — matching production HRSC practice.
//
// Implementation is header-inline so the scalar/SIMD kernel TUs compile it
// under their own flags (same rationale as state.hpp).

#include <algorithm>
#include <cmath>

#include "rshc/check/check.hpp"
#include "rshc/srhd/state.hpp"

namespace rshc::srhd {

struct Con2PrimOptions {
  double tolerance = 1e-12;   ///< relative tolerance on f(p)/max(p, floor)
  int max_iterations = 60;
  double rho_floor = 1e-14;   ///< atmosphere rest-mass density
  double p_floor = 1e-16;     ///< atmosphere pressure
};

struct Con2PrimResult {
  Prim prim;
  int iterations = 0;
  bool converged = false;
  bool floored = false;  ///< atmosphere policy was applied
};

namespace detail {

/// Residual f(p) plus the primitive state implied by p.
struct C2PResidual {
  double f = 0.0;
  double df = -1.0;  // analytic approximate slope
  Prim prim;
  bool physical = false;
};

inline C2PResidual c2p_evaluate(const Cons& u, double p,
                                const eos::IdealGas& eos) {
  C2PResidual r;
  const double E = u.tau + u.d;
  const double Ep = E + p;
  if (Ep <= 0.0) return r;
  const double s2 = u.s_sq();
  const double v2 = s2 / (Ep * Ep);
  if (v2 >= 1.0) return r;
  const double W = 1.0 / std::sqrt(1.0 - v2);
  const double rho = u.d / W;
  if (rho <= 0.0) return r;
  const double h = Ep / (u.d * W);
  const double eps = h - 1.0 - p / rho;
  const double p_eos = eos.pressure(rho, eps);
  const double cs2 = eos.gamma() * p_eos / (rho * h);
  r.f = p_eos - p;
  r.df = v2 * cs2 - 1.0;
  r.prim = Prim{rho, u.sx / Ep, u.sy / Ep, u.sz / Ep, p};
  r.physical = true;
  return r;
}

}  // namespace detail

/// Recover primitives from conservatives. Always returns a usable Prim:
/// when the root solve fails or the state is unphysical, the atmosphere
/// floor is applied and `floored` is set.
[[nodiscard]] inline Con2PrimResult cons_to_prim(
    const Cons& u, const eos::IdealGas& eos, const Con2PrimOptions& opt = {}) {
  Con2PrimResult out;
  const Prim atmo{opt.rho_floor, 0.0, 0.0, 0.0, opt.p_floor};

  // Evacuated or invalid zones go straight to atmosphere.
  if (!(u.d > opt.rho_floor) || !std::isfinite(u.d) ||
      !std::isfinite(u.tau) || !std::isfinite(u.s_sq())) {
    out.prim = atmo;
    out.floored = true;
    RSHC_CHECK_PRIM("srhd.con2prim", out.prim, -1, -1, -1, -1);
    return out;
  }

  const double E = u.tau + u.d;
  const double s_abs = std::sqrt(u.s_sq());

  // Physicality requires E + p > |S| (subluminal velocity); start the
  // bracket just above the causal minimum.
  const double p_min =
      std::max(opt.p_floor, s_abs - E + 1e-14 * std::max(1.0, std::abs(E)));
  // Upper bound: generous multiple of the zero-velocity ideal-gas pressure.
  const double p_max =
      std::max(2.0 * p_min, 2.0 * (eos.gamma() - 1.0) * std::abs(E)) + 1.0;

  if (!detail::c2p_evaluate(u, p_min, eos).physical) {
    out.prim = atmo;
    out.floored = true;
    RSHC_CHECK_PRIM("srhd.con2prim", out.prim, -1, -1, -1, -1);
    return out;
  }

  // Initial guess: zero-velocity ideal-gas estimate clipped into bracket.
  double p = std::clamp((eos.gamma() - 1.0) * u.tau, p_min, p_max);
  double lo = p_min;
  double hi = p_max;

  for (int it = 0; it < opt.max_iterations; ++it) {
    out.iterations = it + 1;
    const detail::C2PResidual r = detail::c2p_evaluate(u, p, eos);
    if (!r.physical) {
      p = 0.5 * (lo + hi);
      continue;
    }
    const double scale = std::max({std::abs(p), opt.p_floor, 1e-30});
    if (std::abs(r.f) <= opt.tolerance * scale) {
      out.prim = r.prim;
      out.prim.rho = std::max(out.prim.rho, opt.rho_floor);
      out.prim.p = std::max(out.prim.p, opt.p_floor);
      out.converged = true;
      // Whatever the root solve did, what leaves c2p must be physical —
      // including the floored components (a misconfigured atmosphere is a
      // checkable bug, not a recoverable state).
      RSHC_CHECK_PRIM("srhd.con2prim", out.prim, -1, -1, -1, -1);
      return out;
    }
    // Maintain the bisection bracket: f decreases in p near the root
    // (df < 0), so f > 0 means the root lies above p.
    if (r.f > 0.0) {
      lo = std::max(lo, p);
    } else {
      hi = std::min(hi, p);
    }
    double p_next = p - r.f / r.df;  // Newton
    if (!(p_next > lo && p_next < hi) || !std::isfinite(p_next)) {
      p_next = 0.5 * (lo + hi);  // bisection fallback
    }
    p = p_next;
  }

  out.prim = atmo;
  out.floored = true;
  out.converged = false;
  RSHC_CHECK_PRIM("srhd.con2prim", out.prim, -1, -1, -1, -1);
  return out;
}

}  // namespace rshc::srhd
