#pragma once
// Special relativistic hydrodynamics (SRHD) state vectors and conversions.
// Conservative formulation (units c = 1):
//   D   = rho W                 (lab-frame rest-mass density)
//   S_i = rho h W^2 v_i         (momentum density)
//   tau = rho h W^2 - p - D     (energy density minus rest mass)
// with W = (1 - v^2)^{-1/2} the Lorentz factor and h the specific enthalpy.

#include <array>
#include <cmath>

#include "rshc/eos/ideal_gas.hpp"

namespace rshc::srhd {

inline constexpr int kNumVars = 5;

/// Variable ordering shared by Prim/Cons SoA layouts.
enum Var : int { kD = 0, kSx = 1, kSy = 2, kSz = 3, kTau = 4 };
enum PrimVar : int { kRho = 0, kVx = 1, kVy = 2, kVz = 3, kP = 4 };

struct Prim {
  double rho = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  double vz = 0.0;
  double p = 0.0;

  [[nodiscard]] double v_sq() const { return vx * vx + vy * vy + vz * vz; }
  [[nodiscard]] double lorentz() const {
    return 1.0 / std::sqrt(1.0 - v_sq());
  }
  [[nodiscard]] double v(int axis) const {
    return axis == 0 ? vx : (axis == 1 ? vy : vz);
  }
};

struct Cons {
  double d = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sz = 0.0;
  double tau = 0.0;

  [[nodiscard]] double s_sq() const { return sx * sx + sy * sy + sz * sz; }
  [[nodiscard]] double s(int axis) const {
    return axis == 0 ? sx : (axis == 1 ? sy : sz);
  }

  Cons& operator+=(const Cons& o) {
    d += o.d; sx += o.sx; sy += o.sy; sz += o.sz; tau += o.tau;
    return *this;
  }
  friend Cons operator*(double a, const Cons& c) {
    return {a * c.d, a * c.sx, a * c.sy, a * c.sz, a * c.tau};
  }
  friend Cons operator+(Cons a, const Cons& b) { return a += b; }
  friend Cons operator-(const Cons& a, const Cons& b) {
    return {a.d - b.d, a.sx - b.sx, a.sy - b.sy, a.sz - b.sz, a.tau - b.tau};
  }
};

struct SignalSpeeds {
  double lambda_minus = 0.0;
  double lambda_plus = 0.0;
};

// ---------------------------------------------------------------------------
// Inline implementations: these are header-inline (not in a .cpp) so the
// scalar and SIMD kernel translation units can each compile them under their
// own optimization flags (see src/srhd/kernels_*.cpp).
// ---------------------------------------------------------------------------

inline Cons prim_to_cons(const Prim& w, const eos::IdealGas& eos) {
  const double W = w.lorentz();
  const double h = eos.enthalpy(w.rho, w.p);
  const double rho_h_W2 = w.rho * h * W * W;
  Cons u;
  u.d = w.rho * W;
  u.sx = rho_h_W2 * w.vx;
  u.sy = rho_h_W2 * w.vy;
  u.sz = rho_h_W2 * w.vz;
  u.tau = rho_h_W2 - w.p - u.d;
  return u;
}

inline Cons flux(const Prim& w, const Cons& u, int axis) {
  const double vd = w.v(axis);
  Cons f;
  f.d = u.d * vd;
  f.sx = u.sx * vd;
  f.sy = u.sy * vd;
  f.sz = u.sz * vd;
  switch (axis) {
    case 0: f.sx += w.p; break;
    case 1: f.sy += w.p; break;
    default: f.sz += w.p; break;
  }
  // F(tau) = (tau + p) v_d = S_d - D v_d.
  f.tau = u.s(axis) - u.d * vd;
  return f;
}

inline SignalSpeeds signal_speeds(const Prim& w, int axis,
                                  const eos::IdealGas& eos) {
  const double cs2 = eos.sound_speed_sq(w.rho, w.p);
  const double v2 = w.v_sq();
  const double vd = w.v(axis);
  const double denom = 1.0 - v2 * cs2;
  // Marti & Mueller (2003) acoustic eigenvalues in 3D:
  // lambda_pm = [ v_d (1-cs2) pm cs sqrt((1-v2)(1 - vd^2 - (v2-vd^2) cs2)) ]
  //             / (1 - v2 cs2)
  const double disc = (1.0 - v2) * (1.0 - vd * vd - (v2 - vd * vd) * cs2);
  const double root = disc > 0.0 ? std::sqrt(disc) : 0.0;
  const double cs = std::sqrt(cs2);
  SignalSpeeds s;
  s.lambda_minus = (vd * (1.0 - cs2) - cs * root) / denom;
  s.lambda_plus = (vd * (1.0 - cs2) + cs * root) / denom;
  return s;
}

inline double max_signal_speed(const Prim& w, const eos::IdealGas& eos,
                               int ndim) {
  double vmax = 0.0;
  for (int axis = 0; axis < ndim; ++axis) {
    const SignalSpeeds s = signal_speeds(w, axis, eos);
    const double m =
        s.lambda_minus < 0.0 ? -s.lambda_minus : s.lambda_minus;
    const double pl = s.lambda_plus < 0.0 ? -s.lambda_plus : s.lambda_plus;
    if (m > vmax) vmax = m;
    if (pl > vmax) vmax = pl;
  }
  return vmax;
}

}  // namespace rshc::srhd
