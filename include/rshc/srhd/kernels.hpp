#pragma once
// Batched SoA kernels over zone arrays — the offload surface for the
// heterogeneous device experiments (F5, F8). Every kernel exists in two
// semantically identical variants compiled in separate translation units:
//   kernels::scalar — baseline flags (vectorization disabled)
//   kernels::simd   — -O3 -march=native, loops annotated for vectorization
// The simulated accelerator runs the simd variants on its stream worker.

#include <cstddef>

#include "rshc/srhd/con2prim.hpp"

namespace rshc::srhd::kernels {

struct BatchStats {
  long long total_iterations = 0;
  long long failures = 0;  ///< zones that hit the atmosphere fallback
};

enum class Variant { kScalar, kSimd };

// NOLINTBEGIN(bugprone-easily-swappable-parameters) — SoA arrays by design.
#define RSHC_DECLARE_KERNELS                                                   \
  /* prim -> cons over n zones */                                              \
  void prim_to_cons_n(std::size_t n, const double* rho, const double* vx,      \
                      const double* vy, const double* vz, const double* p,     \
                      double* d, double* sx, double* sy, double* sz,           \
                      double* tau, double gamma);                              \
  /* cons -> prim over n zones; returns iteration/failure stats */             \
  BatchStats cons_to_prim_n(std::size_t n, const double* d,                    \
                            const double* sx, const double* sy,                \
                            const double* sz, const double* tau, double* rho,  \
                            double* vx, double* vy, double* vz, double* p,     \
                            double gamma, const Con2PrimOptions& opt);         \
  /* per-zone max characteristic speed (CFL bound) */                          \
  void max_speed_n(std::size_t n, const double* rho, const double* vx,         \
                   const double* vy, const double* vz, const double* p,        \
                   double* speed, double gamma, int ndim);                     \
  /* y[i] = a*x[i] + b*y[i] — the RK stage-combination kernel */               \
  void axpby_n(std::size_t n, double a, const double* x, double b, double* y); \
  /* y[i] = (a*x[i] + b*y[i]) + c*z[i] — the full three-term RK stage */       \
  void rk_combine_n(std::size_t n, double a, const double* x, double b,        \
                    double* y, double c, const double* z);                     \
  /* physical flux along axis over n zones (prim+cons in, flux out) */         \
  void flux_n(std::size_t n, int axis, const double* rho, const double* vx,    \
              const double* vy, const double* vz, const double* p,             \
              const double* d, const double* sx, const double* sy,             \
              const double* sz, const double* tau, double* fd, double* fsx,    \
              double* fsy, double* fsz, double* ftau);

namespace scalar {
RSHC_DECLARE_KERNELS
}
namespace simd {
RSHC_DECLARE_KERNELS
}
#undef RSHC_DECLARE_KERNELS
// NOLINTEND(bugprone-easily-swappable-parameters)

}  // namespace rshc::srhd::kernels
