#pragma once
// High-resolution reconstruction on 1D pencils (DESIGN.md system #8).
// Cell-centric convention: for each cell i the scheme produces the values
// the solution takes at the cell's two faces,
//   ql[i] — at face i-1/2 approached from inside cell i,
//   qr[i] — at face i+1/2 approached from inside cell i,
// so the Riemann problem at interface i+1/2 is (left=qr[i], right=ql[i+1]).
// Schemes (in increasing formal order): piecewise constant, piecewise
// linear with minmod / MC / van Leer limiters, PPM (Colella & Woodward
// 1984), and WENO5 (Jiang & Shu 1996).

#include <span>
#include <string_view>

namespace rshc::recon {

enum class Method {
  kPCM,
  kPLMMinmod,
  kPLMMC,
  kPLMVanLeer,
  kPPM,
  kWENO5,
};

/// Stencil radius: cells needed on each side of cell i.
[[nodiscard]] int stencil_radius(Method m);

/// Ghost-zone requirement for a solver using this method
/// (= stencil_radius + 1: the boundary interface also needs the ghost
/// cell's own reconstruction).
[[nodiscard]] int ghost_width(Method m);

[[nodiscard]] std::string_view method_name(Method m);
/// Parse "pcm", "plm-minmod", "plm-mc", "plm-vanleer", "ppm", "weno5".
[[nodiscard]] Method parse_method(std::string_view name);

/// Reconstruct one variable along a pencil. ql/qr must match q in size;
/// entries are written for i in [stencil_radius, n - stencil_radius).
void reconstruct(Method m, std::span<const double> q, std::span<double> ql,
                 std::span<double> qr);

/// Per-pencil kernel of one scheme, resolvable once per run so batched
/// callers hoist the method dispatch out of their hot loops. The returned
/// function is the exact same code `reconstruct` dispatches to, so results
/// are bitwise identical to the span overload.
using PencilKernel = void (*)(std::span<const double> q, std::span<double> ql,
                              std::span<double> qr);
[[nodiscard]] PencilKernel pencil_kernel(Method m);

/// Reconstruct `nrows` independent pencils of length `n` in one call (one
/// plane of a block). Pencil r reads q + r*qstride and writes
/// ql/qr + r*face_stride; strides are in elements and rows may alias
/// nothing. Dispatch is resolved once for the whole batch.
void reconstruct_rows(Method m, std::size_t nrows, std::size_t n,
                      const double* q, std::size_t qstride, double* ql,
                      double* qr, std::size_t face_stride);
/// Same, with the scheme already resolved via pencil_kernel (callers that
/// batch many planes hoist even the one switch per plane).
void reconstruct_rows(PencilKernel fn, std::size_t nrows, std::size_t n,
                      const double* q, std::size_t qstride, double* ql,
                      double* qr, std::size_t face_stride);

/// Formal order of accuracy on smooth solutions (for convergence tables).
[[nodiscard]] int formal_order(Method m);

}  // namespace rshc::recon
