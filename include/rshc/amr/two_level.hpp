#pragma once
// Two-level static mesh refinement for the SRHD solver — the structured-
// refinement substrate of the adaptive production codes in this paper's
// lineage (HAD/Dendro-style), reduced to its testable core:
//
//  - a coarse FvSolver over the whole domain,
//  - a factor-2 refined FvSolver over a fixed sub-region,
//  - per stage, the fine level's ghost zones are *prolongated* from the
//    coarse primitives (piecewise-constant injection, refreshed every
//    stage via the ghost-filler hook),
//  - after each step the fine conservatives are *restricted* (cell
//    averages) onto the underlying coarse cells and re-inverted.
//
// Both levels advance with the same dt (no subcycling); compute_dt()
// returns the fine level's CFL bound, so the coarse level simply runs at
// half its allowed Courant number. Without refluxing, conservation holds
// only to the truncation error of the coarse-fine boundary flux mismatch
// — measured, documented, and asserted small in the tests (the
// reconstructed experiment R1 quantifies it).

#include <array>
#include <memory>

#include "rshc/solver/fv_solver.hpp"

namespace rshc::amr {

/// Coarse-cell index box [lo, hi) to refine by a factor of 2.
struct RefineRegion {
  std::array<long long, 3> lo = {0, 0, 0};
  std::array<long long, 3> hi = {1, 1, 1};
};

class TwoLevelSrhdSolver {
 public:
  using Options = solver::SrhdSolver::Options;
  using Prim = solver::SrhdPhysics::Prim;

  /// The region must keep `ghost-width + 1` coarse cells of clearance
  /// from every non-periodic domain edge so fine ghosts always land on
  /// valid coarse data.
  TwoLevelSrhdSolver(const mesh::Grid& coarse_grid, Options opt,
                     RefineRegion region);

  void initialize(const std::function<Prim(double, double, double)>& fn);

  /// Adaptivity: every `interval` steps, re-center the refined region on
  /// the cells whose relative density gradient exceeds `threshold`
  /// (plus `padding` coarse cells of margin). The region keeps its
  /// current size along each axis and clamps to the legal clearance; old
  /// fine data is copied where the old and new regions overlap and
  /// prolongated from the coarse level elsewhere. Pass interval = 0 to
  /// disable (static region, the default).
  void enable_adaptivity(int interval, double threshold = 0.1,
                         long long padding = 4);

  /// Recompute the region once, immediately (also used internally).
  void regrid_now();

  /// Fine-level CFL bound (the binding one without subcycling).
  [[nodiscard]] double compute_dt();
  void step(double dt);
  int advance_to(double t_end, int max_steps = 1000000);

  [[nodiscard]] double time() const { return coarse_->time(); }
  [[nodiscard]] solver::SrhdSolver& coarse() { return *coarse_; }
  [[nodiscard]] solver::SrhdSolver& fine() { return *fine_; }
  [[nodiscard]] const RefineRegion& region() const { return region_; }

  /// Composite view: the coarse-grid field with the refined region holding
  /// restricted fine averages (kept current by step()).
  [[nodiscard]] std::vector<double> gather_composite_var(int v) const {
    return coarse_->gather_prim_var(v);
  }

 private:
  void prolongate_fine_ghosts(int block);
  void restrict_to_coarse();
  void build_fine(const RefineRegion& region,
                  const solver::SrhdSolver* old_fine,
                  const RefineRegion& old_region);
  [[nodiscard]] RefineRegion flagged_region() const;

  mesh::Grid coarse_grid_;
  RefineRegion region_;
  std::unique_ptr<solver::SrhdSolver> coarse_;
  std::unique_ptr<mesh::Grid> fine_grid_;
  std::unique_ptr<solver::SrhdSolver> fine_;

  // Adaptivity state.
  int regrid_interval_ = 0;
  double regrid_threshold_ = 0.1;
  long long regrid_padding_ = 4;
  int steps_since_regrid_ = 0;
};

}  // namespace rshc::amr
