#pragma once
// Interpolating-wavelet multiresolution analysis (Donoho 1992 /
// Deslauriers-Dubuc 4-point family) on dyadic grids — the adaptive-
// representation substrate of the wavelet-multiresolution line of work
// adjacent to this paper ("Relativistic Hydrodynamics with Wavelets",
// Anderson et al.). Detail coefficients measure the local interpolation
// error of the solution; thresholding them yields a sparse representation
// whose points concentrate where the solution has structure (shocks,
// contacts) — the criterion wavelet-adaptive HRSC codes refine on.
//
// Grids hold 2^levels + 1 points. The transform is the in-place lifting
// form: at each level the odd points are replaced by their deviation from
// the cubic interpolation of the neighbouring even points (exact for
// polynomials up to degree 3, so smooth regions compress aggressively).

#include <cstddef>
#include <cstdint>
#include <span>

namespace rshc::wavelet {

/// Number of points of a `levels`-deep dyadic grid: 2^levels + 1.
[[nodiscard]] std::size_t grid_size(int levels);

/// Number of levels for a point count n = 2^J + 1; throws if n is not of
/// that form (or too small: levels >= 1).
[[nodiscard]] int levels_for_size(std::size_t n);

/// In-place forward transform: after the call, even multiples of
/// 2^levels hold scaling coefficients and all other entries hold detail
/// coefficients of their level.
void forward(std::span<double> v, int levels);

/// In-place inverse transform (exact inverse of forward()).
void inverse(std::span<double> v, int levels);

struct Compression {
  std::size_t total = 0;     ///< detail coefficients examined
  std::size_t kept = 0;      ///< details with |d| >= eps
  double max_dropped = 0.0;  ///< largest zeroed coefficient
  [[nodiscard]] double compression_ratio() const {
    return kept > 0 ? static_cast<double>(total) / static_cast<double>(kept)
                    : static_cast<double>(total);
  }
};

/// Zero detail coefficients with |d| < eps (scaling coefficients are
/// always kept). Call between forward() and inverse().
Compression threshold(std::span<double> coeffs, int levels, double eps);

/// Convenience: forward -> threshold(eps) -> inverse on a copy of
/// `values` into `out`; returns the compression stats. `out` may alias
/// `values`.
Compression compress_roundtrip(std::span<const double> values, double eps,
                               std::span<double> out);

/// Per-point activity mask from a thresholded coefficient array: nonzero
/// where the point's coefficient survived (endpoints always active).
/// Used to visualize where an adaptive method would place points.
/// (uint8 rather than bool: std::vector<bool> cannot provide a span.)
void active_mask(std::span<const double> coeffs, int levels, double eps,
                 std::span<std::uint8_t> mask);

// --- 2D (separable) ---------------------------------------------------

/// Forward transform of an (ny, nx) row-major field, applied along rows
/// then columns; nx and ny must each be 2^levels + 1 for the same levels.
void forward_2d(std::span<double> v, std::size_t nx, std::size_t ny,
                int levels);
void inverse_2d(std::span<double> v, std::size_t nx, std::size_t ny,
                int levels);

}  // namespace rshc::wavelet
