#pragma once
// Batched SoA kernels over SRMHD zone arrays — the host-pipeline (and
// future offload) surface mirroring rshc/srhd/kernels.hpp. Same two-TU
// compilation scheme:
//   kernels::scalar — baseline flags (vectorization disabled)
//   kernels::simd   — -O3 (-march=native), loops annotated for vectorization
// The branch-heavy per-zone work (1D-W Newton c2p, fast-speed bound) lives
// in src/srmhd/{con2prim,state}.cpp compiled once with default flags, so
// both variants — and the per-zone pencil path — are bitwise identical by
// construction; the batched win is data movement, not arithmetic.

#include <cstddef>

#include "rshc/srmhd/con2prim.hpp"

namespace rshc::srmhd::kernels {

struct BatchStats {
  long long total_iterations = 0;
  long long failures = 0;  ///< zones that hit the atmosphere fallback
};

// NOLINTBEGIN(bugprone-easily-swappable-parameters) — SoA arrays by design.
#define RSHC_SRMHD_DECLARE_KERNELS                                            \
  /* cons -> prim over n zones (B and psi pass through); returns stats */     \
  BatchStats cons_to_prim_n(                                                  \
      std::size_t n, const double* d, const double* sx, const double* sy,     \
      const double* sz, const double* tau, const double* ubx,                 \
      const double* uby, const double* ubz, const double* upsi, double* rho,  \
      double* vx, double* vy, double* vz, double* p, double* bx, double* by,  \
      double* bz, double* psi, double gamma, const Con2PrimOptions& opt);     \
  /* per-zone max fast-mode speed (CFL bound) */                              \
  void max_speed_n(std::size_t n, const double* rho, const double* vx,        \
                   const double* vy, const double* vz, const double* p,       \
                   const double* bx, const double* by, const double* bz,      \
                   const double* psi, double* speed, double gamma, int ndim);

namespace scalar {
RSHC_SRMHD_DECLARE_KERNELS
}
namespace simd {
RSHC_SRMHD_DECLARE_KERNELS
}
#undef RSHC_SRMHD_DECLARE_KERNELS
// NOLINTEND(bugprone-easily-swappable-parameters)

}  // namespace rshc::srmhd::kernels
