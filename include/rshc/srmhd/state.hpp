#pragma once
// Special relativistic magnetohydrodynamics (SRMHD) in the conservative
// Del Zanna & Bucciantini formulation (units c = 1), extended with a GLM
// (Dedner) divergence-cleaning scalar psi:
//   D   = rho W
//   S_i = (rho h W^2 + B^2) v_i - (v.B) B_i
//   tau = rho h W^2 - p + B^2/2 + (v^2 B^2 - (v.B)^2)/2 - D
//   B_i = lab-frame magnetic field
//   psi = divergence-cleaning scalar (advects div B away and damps it)

#include <cmath>

#include "rshc/eos/ideal_gas.hpp"

namespace rshc::srmhd {

inline constexpr int kNumVars = 9;

enum Var : int {
  kD = 0, kSx = 1, kSy = 2, kSz = 3, kTau = 4,
  kBx = 5, kBy = 6, kBz = 7, kPsi = 8,
};
enum PrimVar : int {
  kRho = 0, kVx = 1, kVy = 2, kVz = 3, kP = 4,
  // Prim reuses kBx..kPsi slots for B and psi (they are both prim & cons).
};

struct Prim {
  double rho = 0.0;
  double vx = 0.0, vy = 0.0, vz = 0.0;
  double p = 0.0;
  double bx = 0.0, by = 0.0, bz = 0.0;
  double psi = 0.0;

  [[nodiscard]] double v_sq() const { return vx * vx + vy * vy + vz * vz; }
  [[nodiscard]] double b_sq_lab() const { return bx * bx + by * by + bz * bz; }
  [[nodiscard]] double v_dot_b() const { return vx * bx + vy * by + vz * bz; }
  [[nodiscard]] double lorentz() const { return 1.0 / std::sqrt(1.0 - v_sq()); }
  [[nodiscard]] double v(int axis) const {
    return axis == 0 ? vx : (axis == 1 ? vy : vz);
  }
  [[nodiscard]] double b(int axis) const {
    return axis == 0 ? bx : (axis == 1 ? by : bz);
  }
  /// Comoving-frame field strength squared b^2 = B^2/W^2 + (v.B)^2.
  [[nodiscard]] double b_sq_comoving() const {
    return b_sq_lab() * (1.0 - v_sq()) + v_dot_b() * v_dot_b();
  }
};

struct Cons {
  double d = 0.0;
  double sx = 0.0, sy = 0.0, sz = 0.0;
  double tau = 0.0;
  double bx = 0.0, by = 0.0, bz = 0.0;
  double psi = 0.0;

  [[nodiscard]] double s_sq() const { return sx * sx + sy * sy + sz * sz; }
  [[nodiscard]] double b_sq() const { return bx * bx + by * by + bz * bz; }
  [[nodiscard]] double s_dot_b() const { return sx * bx + sy * by + sz * bz; }
  [[nodiscard]] double s(int axis) const {
    return axis == 0 ? sx : (axis == 1 ? sy : sz);
  }
  [[nodiscard]] double b(int axis) const {
    return axis == 0 ? bx : (axis == 1 ? by : bz);
  }

  Cons& operator+=(const Cons& o) {
    d += o.d; sx += o.sx; sy += o.sy; sz += o.sz; tau += o.tau;
    bx += o.bx; by += o.by; bz += o.bz; psi += o.psi;
    return *this;
  }
  friend Cons operator*(double a, const Cons& c) {
    return {a * c.d, a * c.sx, a * c.sy, a * c.sz, a * c.tau,
            a * c.bx, a * c.by, a * c.bz, a * c.psi};
  }
  friend Cons operator+(Cons a, const Cons& b) { return a += b; }
  friend Cons operator-(const Cons& a, const Cons& b) {
    return {a.d - b.d,   a.sx - b.sx, a.sy - b.sy,
            a.sz - b.sz, a.tau - b.tau, a.bx - b.bx,
            a.by - b.by, a.bz - b.bz, a.psi - b.psi};
  }
};

/// Exact prim -> cons map.
[[nodiscard]] Cons prim_to_cons(const Prim& w, const eos::IdealGas& eos);

/// Physical flux along `axis` (GLM terms excluded — the Riemann solver adds
/// the upwinded psi/Bn coupling; see riemann/hll_srmhd).
[[nodiscard]] Cons flux(const Prim& w, const Cons& u, int axis,
                        const eos::IdealGas& eos);

struct SignalSpeeds {
  double lambda_minus = 0.0;
  double lambda_plus = 0.0;
};

/// Fast-magnetosonic bound on the characteristic speeds along `axis`,
/// using the standard a^2 = cs^2 + c_A^2 - cs^2 c_A^2 approximation
/// (Gammie et al. 2003) inserted into the relativistic eigenvalue formula.
[[nodiscard]] SignalSpeeds fast_speeds(const Prim& w, int axis,
                                       const eos::IdealGas& eos);

/// Max |lambda| over all axes for the CFL bound.
[[nodiscard]] double max_signal_speed(const Prim& w, const eos::IdealGas& eos,
                                      int ndim);

}  // namespace rshc::srmhd
