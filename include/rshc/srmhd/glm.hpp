#pragma once
// GLM (Dedner et al. 2002) hyperbolic divergence cleaning for SRMHD.
// The (B_n, psi) subsystem decouples at each interface into two linear
// waves at +-c_h; its exact upwind flux is
//   B_n* = (B_nL + B_nR)/2 - (psiR - psiL) / (2 c_h)
//   psi* = (psiL + psiR)/2 - c_h (B_nR - B_nL) / 2
//   F(B_n) = psi*,  F(psi) = c_h^2 B_n*
// and between steps psi is damped: psi <- psi * exp(-alpha c_h dt / dx).
// In units c = 1 we take c_h = 1 (clean at the fastest causal speed).

namespace rshc::srmhd {

struct GlmParams {
  bool enabled = true;
  double ch = 1.0;      ///< cleaning wave speed (<= 1)
  double alpha = 0.3;   ///< damping strength (Mignone & Tzeferacos 2010 range)
};

struct GlmInterfaceFlux {
  double flux_bn = 0.0;   ///< contribution to F(B_n)
  double flux_psi = 0.0;  ///< contribution to F(psi)
};

/// Exact upwind flux of the decoupled (B_n, psi) subsystem.
[[nodiscard]] inline GlmInterfaceFlux glm_interface_flux(double bn_left,
                                                         double psi_left,
                                                         double bn_right,
                                                         double psi_right,
                                                         double ch) {
  const double bn_star =
      0.5 * (bn_left + bn_right) - 0.5 * (psi_right - psi_left) / ch;
  const double psi_star =
      0.5 * (psi_left + psi_right) - 0.5 * ch * (bn_right - bn_left);
  return {psi_star, ch * ch * bn_star};
}

/// Damping factor applied to psi once per time step.
[[nodiscard]] double glm_damping_factor(const GlmParams& glm, double dt,
                                        double dx_min);

}  // namespace rshc::srmhd
