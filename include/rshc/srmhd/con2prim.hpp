#pragma once
// SRMHD conservative-to-primitive recovery: 1D Newton solve on
// z = rho h W^2 (the "1D_W" scheme of Mignone & McKinney 2007). With
//   vB(z)  = (S.B)/z
//   v^2(z) = [S^2 + (S.B)^2 (2z + B^2)/z^2] / (z + B^2)^2
//   W(z)   = (1 - v^2)^{-1/2},  rho = D/W
//   p(z)   = (Gamma-1)/Gamma * (z/W^2 - D/W)        (ideal gas)
// the energy equation becomes the scalar residual
//   f(z) = z - p(z) + B^2/2 (1 + v^2(z)) - (S.B)^2/(2 z^2) - (tau + D) = 0
// solved by safeguarded Newton (numerical derivative) inside an expanding
// bracket. Same failure policy as SRHD: report + atmosphere, never throw.

#include "rshc/srmhd/state.hpp"

namespace rshc::srmhd {

struct Con2PrimOptions {
  double tolerance = 1e-12;
  int max_iterations = 80;
  double rho_floor = 1e-14;
  double p_floor = 1e-16;
};

struct Con2PrimResult {
  Prim prim;
  int iterations = 0;
  bool converged = false;
  bool floored = false;
};

[[nodiscard]] Con2PrimResult cons_to_prim(const Cons& u,
                                          const eos::IdealGas& eos,
                                          const Con2PrimOptions& opt = {});

}  // namespace rshc::srmhd
