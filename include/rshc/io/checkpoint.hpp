#pragma once
// Binary checkpoint / restart for FvSolver states: a small header (magic,
// version, grid shape, variable counts, time) followed by each block's
// conservative interior. Restart recovers primitives through con2prim, so
// a checkpoint round-trip is also an end-to-end c2p consistency test.

#include <string>

#include "rshc/solver/fv_solver.hpp"

namespace rshc::io {

inline constexpr std::uint32_t kCheckpointMagic = 0x52534843;  // "RSHC"
inline constexpr std::uint32_t kCheckpointVersion = 1;

template <typename Physics>
void write_checkpoint(const std::string& path,
                      const solver::FvSolver<Physics>& s);

/// Restore state into a solver constructed with the SAME grid, options and
/// block layout. The file is fully validated before any solver field is
/// written — magic, version, header sanity, grid/physics/block-layout
/// compatibility, and the exact payload size — so a truncated or
/// mismatched-physics file throws rshc::Error (after a "checkpoint_error"
/// journal event) and leaves the solver state untouched. A successful
/// restore journals a "restore" event.
template <typename Physics>
void read_checkpoint(const std::string& path, solver::FvSolver<Physics>& s);

extern template void write_checkpoint<solver::SrhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrhdPhysics>&);
extern template void write_checkpoint<solver::SrmhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrmhdPhysics>&);
extern template void read_checkpoint<solver::SrhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrhdPhysics>&);
extern template void read_checkpoint<solver::SrmhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrmhdPhysics>&);

}  // namespace rshc::io
