#pragma once
// Legacy-VTK structured-points writer for visual inspection of 2D/3D runs
// (loads directly in ParaView/VisIt). One scalar field per call or a
// multi-field dataset from a gather.

#include <span>
#include <string>
#include <vector>

#include "rshc/mesh/grid.hpp"

namespace rshc::io {

struct VtkField {
  std::string name;
  std::vector<double> data;  ///< global row-major (k, j, i), interior only
};

/// Write `fields` over `grid` as legacy VTK STRUCTURED_POINTS (cell data).
void write_vtk(const std::string& path, const mesh::Grid& grid,
               std::span<const VtkField> fields);

}  // namespace rshc::io
