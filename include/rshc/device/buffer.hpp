#pragma once
// Device-resident array of doubles. For host devices the buffer aliases
// ordinary host memory; for the simulated accelerator it represents a
// separate arena that host code must reach through explicit upload/download
// calls (the Device enforces staging discipline).

#include <cstddef>
#include <span>

#include "rshc/common/aligned.hpp"

namespace rshc::device {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t n, int device_id)
      : storage_(n, 0.0), device_id_(device_id) {}

  [[nodiscard]] std::size_t size() const { return storage_.size(); }
  [[nodiscard]] int device_id() const { return device_id_; }

  /// View usable *on the owning device only* (inside launched kernels).
  [[nodiscard]] std::span<double> device_view() { return storage_; }
  [[nodiscard]] std::span<const double> device_view() const {
    return storage_;
  }

 private:
  rshc::aligned_vector<double> storage_;
  int device_id_ = -1;
};

}  // namespace rshc::device
