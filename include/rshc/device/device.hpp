#pragma once
// Execution devices (DESIGN.md system #4). Three backends:
//   kHostScalar — kernels run inline on the calling thread (baseline).
//   kHostSimd   — kernels run inline but callers select the vectorized
//                 kernel variants (see srhd/kernels_simd.*).
//   kAccelSim   — simulated accelerator: dedicated in-order stream workers
//                 execute kernels in submission order, and all data movement
//                 goes through upload/download with a modeled PCIe-like cost
//                 (latency + bandwidth), exercising the same staging and
//                 overlap logic a real GPU offload needs.
//
// Streams follow the CUDA model: every device starts with one default
// stream (id 0); create_stream() adds further independent in-order queues.
// Work on different streams may overlap; cross-stream ordering is imposed
// only by wait_event(stream, event) — the analogue of
// cudaStreamWaitEvent — which makes `stream` hold until `event` (returned
// by an upload/download/launch on another stream) has completed.

#include <functional>
#include <memory>
#include <string_view>

#include "rshc/device/buffer.hpp"
#include "rshc/device/event.hpp"

namespace rshc::device {

enum class Backend { kHostScalar, kHostSimd, kAccelSim };

[[nodiscard]] std::string_view backend_name(Backend b);

/// In-order work queue handle; 0 is the default stream every device owns.
using StreamId = int;
inline constexpr StreamId kDefaultStream = 0;

/// Accelerator transfer cost model; defaults approximate a PCIe 3.0 x16 link.
struct AccelModel {
  double transfer_latency_sec = 10e-6;
  double transfer_bandwidth_bytes_per_sec = 12.0e9;
  /// Per-kernel launch overhead, the accelerator's analogue of a CUDA
  /// launch (drives the batch-size crossover in experiment F8).
  double launch_overhead_sec = 8e-6;
};

class Device {
 public:
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] virtual Backend backend() const = 0;
  [[nodiscard]] std::string_view name() const {
    return backend_name(backend());
  }
  /// True when host code must stage data via upload/download.
  [[nodiscard]] virtual bool requires_staging() const = 0;

  [[nodiscard]] virtual Buffer alloc(std::size_t n) = 0;

  /// New independent in-order stream; returns its id. Host devices execute
  /// everything inline, so their "streams" are trivially ordered.
  [[nodiscard]] virtual StreamId create_stream() = 0;

  /// Asynchronous host->device copy (ordered w.r.t. other work on `stream`).
  virtual Event upload_async(std::span<const double> host, Buffer& dst,
                             StreamId stream = kDefaultStream) = 0;
  /// Asynchronous device->host copy.
  virtual Event download_async(const Buffer& src, std::span<double> host,
                               StreamId stream = kDefaultStream) = 0;
  /// Enqueue a kernel; it may touch device_view() of this device's buffers.
  /// `work_items` feeds the launch-overhead model (0 = untimed).
  virtual Event launch(std::function<void()> kernel, std::size_t work_items = 0,
                       StreamId stream = kDefaultStream) = 0;
  /// Make `stream` wait until `event` has completed before running any work
  /// submitted to it afterwards (cross-stream fence; no-op if already set).
  virtual void wait_event(StreamId stream, Event event) = 0;
  /// Block until all submitted work on all streams has completed.
  virtual void synchronize() = 0;

 protected:
  Device() = default;
};

/// Factory. The accelerator backend accepts a cost model.
std::unique_ptr<Device> make_device(Backend backend, AccelModel model = {});

}  // namespace rshc::device
