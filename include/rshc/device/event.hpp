#pragma once
// CUDA-event-like completion handle shared between a stream worker (the
// producer) and host code (the consumer).

#include <condition_variable>
#include <memory>

#include "rshc/common/mutex.hpp"

namespace rshc::device {

class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Mark complete and wake waiters (called by the stream worker).
  void set() const {
    {
      LockGuard lock(state_->mutex);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

  /// Block until set().
  void wait() const {
    State& s = *state_;
    LockGuard lock(s.mutex);
    s.cv.wait(lock.native_lock(), [&s] {
      s.mutex.assert_held();  // predicate runs under the wait's lock
      return s.done;
    });
  }

  [[nodiscard]] bool query() const {
    LockGuard lock(state_->mutex);
    return state_->done;
  }

 private:
  struct State {
    Mutex mutex;
    std::condition_variable cv;
    bool done RSHC_GUARDED_BY(mutex) = false;
  };
  std::shared_ptr<State> state_;
};

}  // namespace rshc::device
