#pragma once
// CUDA-event-like completion handle shared between a stream worker (the
// producer) and host code (the consumer).

#include <condition_variable>
#include <memory>
#include <mutex>

namespace rshc::device {

class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Mark complete and wake waiters (called by the stream worker).
  void set() const {
    {
      std::scoped_lock lock(state_->mutex);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

  /// Block until set().
  void wait() const {
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->done; });
  }

  [[nodiscard]] bool query() const {
    std::scoped_lock lock(state_->mutex);
    return state_->done;
  }

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

}  // namespace rshc::device
