#pragma once
// Ideal gamma-law equation of state, the closure used throughout the HRSC
// solver: p = (Gamma - 1) rho eps. Units c = 1.

#include <cmath>

#include "rshc/common/error.hpp"

namespace rshc::eos {

class IdealGas {
 public:
  /// Gamma must lie in (1, 2]; relativistic kinetic theory bounds the
  /// adiabatic index by 2 (stiff causal limit) and 4/3 (ultrarelativistic).
  explicit IdealGas(double gamma) : gamma_(gamma) {
    RSHC_REQUIRE(gamma > 1.0 && gamma <= 2.0,
                 "adiabatic index must be in (1, 2]");
  }

  [[nodiscard]] double gamma() const { return gamma_; }

  /// p(rho, eps) with eps the specific internal energy.
  [[nodiscard]] double pressure(double rho, double eps) const {
    return (gamma_ - 1.0) * rho * eps;
  }

  /// eps(rho, p).
  [[nodiscard]] double specific_internal_energy(double rho, double p) const {
    return p / ((gamma_ - 1.0) * rho);
  }

  /// Specific enthalpy h = 1 + eps + p/rho = 1 + Gamma/(Gamma-1) p/rho.
  [[nodiscard]] double enthalpy(double rho, double p) const {
    return 1.0 + gamma_ / (gamma_ - 1.0) * p / rho;
  }

  /// Relativistic sound speed squared cs^2 = Gamma p / (rho h).
  [[nodiscard]] double sound_speed_sq(double rho, double p) const {
    return gamma_ * p / (rho * enthalpy(rho, p));
  }

  [[nodiscard]] double sound_speed(double rho, double p) const {
    return std::sqrt(sound_speed_sq(rho, p));
  }

  /// Polytropic pressure at entropy constant kappa: p = kappa rho^Gamma.
  /// (Used to set up smooth isentropic initial data for convergence tests.)
  [[nodiscard]] double polytropic_pressure(double rho, double kappa) const {
    return kappa * std::pow(rho, gamma_);
  }

 private:
  double gamma_;
};

}  // namespace rshc::eos
