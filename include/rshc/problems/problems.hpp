#pragma once
// Initial-condition library: the standard relativistic HRSC test suite the
// reconstructed evaluation runs on (see DESIGN.md experiment index).
//
// SRHD:
//  - Marti & Mueller (2003) shock-tube problems 1 and 2 (mildly and highly
//    relativistic blast waves), relativistic Sod.
//  - Smooth density wave (uniform v, p): pure advection with an exact
//    solution — the convergence-order workload (T2).
//  - 2D cylindrical blast (F1-adjacent), Kelvin-Helmholtz shear layer (F2).
// SRMHD:
//  - Balsara (2001) relativistic Brio-Wu analogue shock tube.
//  - 2D cylindrical magnetized blast, field-loop advection (F7).

#include <functional>
#include <string>

#include "rshc/srhd/state.hpp"
#include "rshc/srmhd/state.hpp"

namespace rshc::problems {

using SrhdIc = std::function<srhd::Prim(double, double, double)>;
using SrmhdIc = std::function<srmhd::Prim(double, double, double)>;

// --- SRHD shock tubes --------------------------------------------------

struct ShockTube {
  std::string name;
  srhd::Prim left;
  srhd::Prim right;
  double x_split = 0.5;   ///< membrane position in [0, 1]
  double t_final = 0.4;
  double gamma = 5.0 / 3.0;
};

/// Marti & Mueller problem 1: (rho, v, p) = (10, 0, 13.33 | 1, 0, 1e-7),
/// Gamma = 5/3 — mildly relativistic blast wave.
[[nodiscard]] ShockTube marti_muller_1();
/// Marti & Mueller problem 2: (1, 0, 1000 | 1, 0, 0.01), Gamma = 5/3 —
/// strongly relativistic blast (W_max ~ 3.6, thin shell).
[[nodiscard]] ShockTube marti_muller_2();
/// Relativistic Sod: (1, 0, 1 | 0.125, 0, 0.1), Gamma = 1.4.
[[nodiscard]] ShockTube sod();

[[nodiscard]] SrhdIc shock_tube_ic(const ShockTube& st);

// --- SRHD smooth / multi-D ----------------------------------------------

struct SmoothWave {
  double amplitude = 0.3;   ///< density contrast (must stay < 1)
  double velocity = 0.5;    ///< uniform advection speed
  double pressure = 1.0;
  double rho0 = 1.0;
};

/// rho = rho0 + A sin(2 pi x), uniform v and p: advects unchanged, exact
/// solution at time t is the profile shifted by v t (periodic domain [0,1]).
[[nodiscard]] SrhdIc smooth_wave_ic(const SmoothWave& w);
/// Exact density at (x, t) for the smooth wave.
[[nodiscard]] double smooth_wave_exact_rho(const SmoothWave& w, double x,
                                           double t);

struct KelvinHelmholtz {
  double shear_velocity = 0.25;  ///< +-v_x across the layer
  double layer_width = 0.05;     ///< tanh profile scale
  double perturb_amplitude = 0.01;
  double density_contrast = 0.0;  ///< optional rho jump across layer
  double pressure = 1.0;
};

/// Shear layer on y = 0 of the periodic domain [-0.5, 0.5]^2 with a
/// single-mode v_y perturbation (growth measured in F2).
[[nodiscard]] SrhdIc kelvin_helmholtz_ic(const KelvinHelmholtz& kh);

struct Blast2d {
  double r_inner = 0.1;
  double p_inner = 10.0;
  double p_outer = 0.01;
  double rho = 1.0;
};

/// Cylindrical overpressure at the origin of [-1, 1]^2 (outflow BCs).
[[nodiscard]] SrhdIc blast2d_ic(const Blast2d& b);

// --- SRMHD --------------------------------------------------------------

struct MhdShockTube {
  std::string name;
  srmhd::Prim left;
  srmhd::Prim right;
  double x_split = 0.5;
  double t_final = 0.4;
  double gamma = 2.0;
};

/// Balsara (2001) test 1 — the relativistic Brio & Wu analogue:
/// (rho, p, By) = (1, 1, 1 | 0.125, 0.1, -1), Bx = 0.5, Gamma = 2.
[[nodiscard]] MhdShockTube balsara_1();

[[nodiscard]] SrmhdIc mhd_shock_tube_ic(const MhdShockTube& st);

struct MhdBlast2d {
  double r_inner = 0.1;
  double p_inner = 1.0;
  double p_outer = 0.01;
  double rho = 1.0;
  double bx = 0.1;
};

/// Magnetized cylindrical blast in a uniform horizontal field (F7).
[[nodiscard]] SrmhdIc mhd_blast2d_ic(const MhdBlast2d& b);

struct FieldLoop {
  double radius = 0.3;
  double field = 1e-3;       ///< loop field amplitude
  double vx = 0.2;
  double vy = 0.1;
  double rho = 1.0;
  double pressure = 3.0;
};

/// Weak magnetic field loop advected diagonally across the periodic
/// domain [-0.5, 0.5]^2 (divergence-cleaning stress test).
[[nodiscard]] SrmhdIc field_loop_ic(const FieldLoop& fl);

}  // namespace rshc::problems
