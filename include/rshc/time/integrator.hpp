#pragma once
// Strong-stability-preserving Runge-Kutta integrators (Shu & Osher 1988)
// in the convex-combination form used by the solvers:
//   U_stage(s+1) = a_s * U0 + b_s * U_stage(s) + c_s * dt * L(U_stage(s))
// with U_stage(0) = U0. SSP schemes keep the TVD property of the spatial
// discretization, which is what makes them the standard choice for HRSC.

#include <string_view>

namespace rshc::time {

enum class Integrator { kEuler, kSspRk2, kSspRk3 };

struct StageCoeffs {
  double a = 1.0;  ///< weight of U0
  double b = 0.0;  ///< weight of the previous stage state
  double c = 1.0;  ///< weight of dt * L(previous stage)
};

[[nodiscard]] constexpr int num_stages(Integrator m) {
  switch (m) {
    case Integrator::kEuler: return 1;
    case Integrator::kSspRk2: return 2;
    case Integrator::kSspRk3: return 3;
  }
  return 1;
}

[[nodiscard]] constexpr StageCoeffs stage_coeffs(Integrator m, int stage) {
  switch (m) {
    case Integrator::kEuler:
      return {1.0, 0.0, 1.0};
    case Integrator::kSspRk2:
      return stage == 0 ? StageCoeffs{1.0, 0.0, 1.0}
                        : StageCoeffs{0.5, 0.5, 0.5};
    case Integrator::kSspRk3:
      if (stage == 0) return {1.0, 0.0, 1.0};
      if (stage == 1) return {0.75, 0.25, 0.25};
      return {1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0};
  }
  return {1.0, 0.0, 1.0};
}

/// Formal temporal order (for convergence tables).
[[nodiscard]] constexpr int formal_order(Integrator m) {
  switch (m) {
    case Integrator::kEuler: return 1;
    case Integrator::kSspRk2: return 2;
    case Integrator::kSspRk3: return 3;
  }
  return 1;
}

[[nodiscard]] std::string_view integrator_name(Integrator m);
[[nodiscard]] Integrator parse_integrator(std::string_view name);

}  // namespace rshc::time
