#pragma once
// Scenario catalog + engine for the simulation service (DESIGN.md system:
// simulation service). A ScenarioEngine wraps one FvSolver instantiation
// behind a physics-erased interface so SimulationService can drive SRHD
// and SRMHD jobs through one code path: initialize or warm-restore, step,
// checkpoint, and (for validation-class jobs) score against the shared
// exact-Riemann reference cache.

#include <memory>
#include <string>
#include <string_view>

#include "rshc/serve/job.hpp"
#include "rshc/serve/riemann_cache.hpp"

namespace rshc::serve {

/// Physics-erased handle on one running scenario. Not thread safe; a job's
/// engine is only ever touched by the worker currently running that job.
class ScenarioEngine {
 public:
  virtual ~ScenarioEngine() = default;

  /// Set the problem's initial data (cold start).
  virtual void initialize() = 0;
  /// Warm start: restore solver state from a checkpoint written by
  /// checkpoint() on an engine built from the same JobSpec. Throws
  /// rshc::Error on malformed or mismatched files (io::read_checkpoint).
  virtual void restore(const std::string& path) = 0;
  /// Persist the current state (preemption eviction / result artifact).
  /// Non-const: a device-resident solver syncs its host mirror first.
  virtual void checkpoint(const std::string& path) = 0;
  /// One adaptive-dt step. Deterministic given the current state, so a
  /// restore + step sequence is bitwise identical to never stopping.
  virtual void step() = 0;
  [[nodiscard]] virtual double time() const = 0;
  /// L1 density error against the exact Riemann solution from `cache`;
  /// -1 when the scenario has no exact reference (see
  /// validation_supported).
  [[nodiscard]] virtual double validation_error(RiemannCache& cache) = 0;
};

/// True when `problem` names a catalog entry for `physics`.
[[nodiscard]] bool known_problem(PhysicsKind physics, std::string_view problem);
/// Catalog dimensionality (1 or 2); 0 for unknown problems.
[[nodiscard]] int problem_ndim(PhysicsKind physics, std::string_view problem);
/// Interior zone count a spec admits against the service zone budget
/// (resolution^ndim); 0 for unknown problems.
[[nodiscard]] long long spec_zones(const JobSpec& spec);
/// True when spec.validate can be honored: SRHD shock tubes with an exact
/// Marti-Mueller reference ("sod", "mm1", "mm2").
[[nodiscard]] bool validation_supported(const JobSpec& spec);

/// Build the engine for a spec. Throws rshc::Error for unknown problems
/// (the service rejects those at admission, so a throw here indicates a
/// caller bypassing admission control).
[[nodiscard]] std::unique_ptr<ScenarioEngine> make_engine(const JobSpec& spec);

}  // namespace rshc::serve
