#pragma once
// rshc::serve job model (DESIGN.md system: simulation service). A JobSpec
// is one scenario request — problem x physics x scheme x resolution x
// pipeline — plus scheduling attributes (priority class, fixed step
// budget) and optional validation/output requests. The service assigns a
// JobId at admission and reports progress through JobStatus / ServiceStats.

#include <cstdint>
#include <string>
#include <string_view>

#include "rshc/recon/reconstruct.hpp"
#include "rshc/riemann/riemann.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace rshc::serve {

/// Job identifier handed out at admission; 0 is never a valid id.
using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = 0;

/// Physics system a job runs under (selects the FvSolver instantiation).
enum class PhysicsKind { kSrhd, kSrmhd };

[[nodiscard]] std::string_view physics_name(PhysicsKind k);
/// Parse "srhd" | "srmhd".
[[nodiscard]] PhysicsKind parse_physics(std::string_view name);

/// Scheduling class. Higher classes are dispatched first and may preempt
/// a running lower-class job when no worker is idle (the victim is
/// checkpointed and requeued; see SimulationService).
enum class Priority { kBatch = 0, kNormal = 1, kHigh = 2 };

[[nodiscard]] std::string_view priority_name(Priority p);

/// Job lifecycle. A preempted job goes back to kQueued (its preempt /
/// resume counts live in JobStatus); the terminal states are kCompleted,
/// kFailed, and kCancelled.
enum class JobState { kQueued, kRunning, kCompleted, kFailed, kCancelled };

[[nodiscard]] std::string_view job_state_name(JobState s);

/// One scenario request. The problem catalog (scenario.hpp) maps
/// `problem` to a grid, boundary conditions, and initial data; everything
/// else plugs straight into FvSolver<Physics>::Options.
struct JobSpec {
  std::string name = "job";
  std::string problem = "sod";  ///< catalog key, see scenario.hpp
  PhysicsKind physics = PhysicsKind::kSrhd;
  long long resolution = 64;  ///< cells per axis
  int steps = 16;             ///< fixed step budget (termination criterion)
  Priority priority = Priority::kNormal;
  recon::Method recon = recon::Method::kPLMMC;
  riemann::Solver riemann = riemann::Solver::kHLLC;  ///< SRHD only
  solver::HostPipeline pipeline = solver::HostPipeline::kBatchedSimd;
  double cfl = 0.4;
  /// Validation-class job: after the final step, compute the L1 density
  /// error against the shared exact-Riemann reference (RiemannCache).
  /// Only supported for the SRHD shock-tube problems.
  bool validate = false;
  /// When non-empty, write a checkpoint of the final state here — the
  /// job's result artifact (and the bitwise preempt/resume test hook).
  std::string result_checkpoint;
  /// Artificial per-step delay. Test/chaos knob: makes short jobs
  /// preemptible and stall-detectable at deterministic points. 0 in
  /// production specs.
  int step_delay_ms = 0;
};

/// submit() outcome. Rejections never enter the job table; `reason` names
/// the admission rule that fired (queue capacity, zone budget, unknown
/// problem, unsupported validation, shutdown).
struct Admission {
  bool admitted = false;
  JobId id = kInvalidJob;
  std::string reason;  ///< empty when admitted
};

/// Point-in-time view of one job (status()/wait()/statuses()).
struct JobStatus {
  JobId id = kInvalidJob;
  std::string name;
  JobState state = JobState::kQueued;
  Priority priority = Priority::kNormal;
  int steps_done = 0;
  int steps_total = 0;
  int preempts = 0;  ///< times evicted mid-run
  int resumes = 0;   ///< times warm-restarted from the eviction checkpoint
  int stalls = 0;    ///< per-job stall-monitor firings while running
  /// submit -> terminal-state wall latency; -1 while the job is live.
  double latency_ms = -1.0;
  /// Validation L1 density error; -1 when not a validation job (or not
  /// finished).
  double l1_error = -1.0;
  std::string message;  ///< failure reason for kFailed
};

/// Service-wide counters (stats()). Conservation invariant for any quiesced
/// service: admitted == completed + failed + cancelled + queued + running.
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t preempted = 0;
  std::int64_t resumed = 0;
  std::int64_t stalled = 0;
  long long zones_admitted = 0;  ///< zones currently held against the budget
  int queued = 0;
  int running = 0;
};

}  // namespace rshc::serve
