#pragma once
// SimulationService (DESIGN.md system: simulation service): a long-lived
// job queue driving many scenario runs over one ThreadPool.
//
//  - Admission control: a bounded submission queue plus an aggregate
//    interior-zone budget; submit() rejects with a reason instead of
//    blocking, so callers can shed load.
//  - Priority scheduling: three classes (batch < normal < high); workers
//    always pop the highest class, FIFO within a class. When every worker
//    is busy, admitting a higher-class job marks the lowest-class running
//    job for preemption.
//  - Preempt / warm resume: a preempted job checkpoints through
//    io::write_checkpoint and re-enters the queue; on re-dispatch it
//    restores via io::read_checkpoint and continues bitwise-identically
//    to an uninterrupted run (fixed step budget, deterministic dt).
//  - Isolation: with RSHC_OBS on, each job's solver metrics accumulate in
//    a per-job obs::Registry (installed thread-locally while the job
//    runs), and every lifecycle transition is journaled.
//  - Stall monitoring is per job: only *running* jobs are scanned, so an
//    idle queued job can neither fire nor mask a stall warning.
//
// Configuration comes from ServiceConfig or the RSHC_SERVE_* environment
// (see service_config_from_env and README "Simulation service").

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rshc/common/mutex.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/serve/job.hpp"

#ifndef RSHC_OBS_ENABLED
#define RSHC_OBS_ENABLED 1
#endif
#if RSHC_OBS_ENABLED
#include "rshc/obs/metrics.hpp"
#endif

#include <condition_variable>

namespace rshc::serve {

struct ServiceConfig {
  unsigned workers = 2;           ///< concurrent jobs (>= 1)
  std::size_t queue_capacity = 32;  ///< max jobs waiting for a worker
  /// Aggregate interior-zone budget over queued + running jobs; a job's
  /// zones are held from admission until its terminal state.
  long long zone_budget = 1LL << 22;
  /// Per-job stall alarm: a running job making no step progress for this
  /// long is journaled and counted (never killed). 0 disables the monitor.
  std::chrono::milliseconds stall_timeout{0};
  /// Directory for preemption checkpoints (created on construction).
  std::string checkpoint_dir = "serve_ckpt";
};

/// ServiceConfig with RSHC_SERVE_WORKERS / RSHC_SERVE_QUEUE_CAP /
/// RSHC_SERVE_ZONE_BUDGET / RSHC_SERVE_STALL_MS / RSHC_SERVE_CKPT_DIR
/// applied over the defaults (unset or malformed entries keep defaults).
[[nodiscard]] ServiceConfig service_config_from_env();

class SimulationService {
 public:
  explicit SimulationService(ServiceConfig cfg = {});
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Admit or reject a job. Never blocks on queue pressure — a full queue
  /// or exhausted zone budget is an immediate reject-with-reason.
  [[nodiscard]] Admission submit(const JobSpec& spec) RSHC_EXCLUDES(mutex_);

  /// Ask the (running) job to preempt at its next step boundary; it will
  /// checkpoint and requeue. False when `id` is not currently running.
  bool preempt(JobId id) RSHC_EXCLUDES(mutex_);

  /// Block until `id` reaches a terminal state; returns its final status.
  /// Throws rshc::Error for unknown ids.
  JobStatus wait(JobId id) RSHC_EXCLUDES(mutex_);
  /// Block until no job is queued or running.
  void wait_idle() RSHC_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<JobStatus> status(JobId id) const
      RSHC_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<JobStatus> statuses() const RSHC_EXCLUDES(mutex_);
  [[nodiscard]] ServiceStats stats() const RSHC_EXCLUDES(mutex_);

  /// Stop accepting work and cancel every queued job (running jobs finish,
  /// including preempted jobs already requeued). Idempotent; the
  /// destructor calls it.
  void shutdown() RSHC_EXCLUDES(mutex_);

#if RSHC_OBS_ENABLED
  /// Per-job registry snapshots, in job-id order (isolation view: each
  /// entry holds only the metrics its job's worker thread recorded).
  [[nodiscard]] std::vector<obs::Snapshot> job_snapshots() const
      RSHC_EXCLUDES(mutex_);
  [[nodiscard]] std::optional<obs::Snapshot> job_snapshot(JobId id) const
      RSHC_EXCLUDES(mutex_);
#endif

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;

  void worker_loop() RSHC_EXCLUDES(mutex_);
  void run_job(const JobPtr& job) RSHC_EXCLUDES(mutex_);
  void monitor_loop() RSHC_EXCLUDES(mutex_);

  ServiceConfig cfg_;

  mutable Mutex mutex_;
  std::condition_variable work_cv_;  ///< queue push / shutdown
  std::condition_variable done_cv_;  ///< terminal transitions / idleness
  std::map<JobId, JobPtr> jobs_ RSHC_GUARDED_BY(mutex_);
  std::vector<JobPtr> queue_ RSHC_GUARDED_BY(mutex_);
  JobId next_id_ RSHC_GUARDED_BY(mutex_) = 1;
  std::int64_t next_seq_ RSHC_GUARDED_BY(mutex_) = 0;
  bool stopping_ RSHC_GUARDED_BY(mutex_) = false;
  int idle_workers_ RSHC_GUARDED_BY(mutex_) = 0;
  int running_ RSHC_GUARDED_BY(mutex_) = 0;
  long long zones_admitted_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t submitted_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t admitted_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t rejected_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t completed_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t failed_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t cancelled_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t preempted_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t resumed_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t stalled_ RSHC_GUARDED_BY(mutex_) = 0;

  // Stall monitor plumbing (separate mutex: the monitor CV wait must not
  // hold mutex_ between scans).
  Mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ RSHC_GUARDED_BY(monitor_mutex_) = false;
  std::thread monitor_;

  // Declared last so any future member initialization precedes worker
  // startup; shutdown() quiesces workers before reset() joins them.
  std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace rshc::serve
