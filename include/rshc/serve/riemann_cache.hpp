#pragma once
// Process-wide cache of exact Riemann reference solutions (DESIGN.md
// system: simulation service). Validation-class jobs all score against the
// Marti-Mueller exact solver; its construction (the p* root find) is the
// expensive part and depends only on the initial-state tuple, so
// concurrent jobs validating the same shock tube share one immutable
// solution. Keys are the *bit patterns* of the seven defining doubles —
// never the floating-point values themselves — so lookups cannot drift
// with FMA/vectorization differences (see the float-keyed-map lint rule).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/common/mutex.hpp"

namespace rshc::serve {

class RiemannCache {
 public:
  using State = analysis::ExactRiemann::State;

  /// Process-wide cache shared by every SimulationService (and test).
  static RiemannCache& global();

  RiemannCache() = default;
  RiemannCache(const RiemannCache&) = delete;
  RiemannCache& operator=(const RiemannCache&) = delete;

  /// The exact solution for (left | right, gamma), constructing it on the
  /// first request and returning the shared instance afterwards. Thread
  /// safe; the returned solution is immutable and outlives the cache
  /// entry it came from.
  [[nodiscard]] std::shared_ptr<const analysis::ExactRiemann> lookup(
      const State& left, const State& right, double gamma)
      RSHC_EXCLUDES(mutex_);

  [[nodiscard]] std::int64_t hits() const noexcept;
  [[nodiscard]] std::int64_t misses() const noexcept;
  [[nodiscard]] std::size_t size() const RSHC_EXCLUDES(mutex_);
  /// Drop all entries and zero the hit/miss counters (test hook).
  void clear() RSHC_EXCLUDES(mutex_);

 private:
  /// Bit patterns of (rhoL, vL, pL, rhoR, vR, pR, gamma).
  using Key = std::array<std::uint64_t, 7>;

  mutable Mutex mutex_;
  std::map<Key, std::shared_ptr<const analysis::ExactRiemann>> cache_
      RSHC_GUARDED_BY(mutex_);
  // relaxed: hit/miss tallies for reports and tests; readers only need
  // eventual visibility.
  std::atomic<std::int64_t> hits_{0};
  // relaxed: same contract as hits_.
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace rshc::serve
