#pragma once
// Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>

#include "rshc/common/error.hpp"

namespace rshc {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time across start()/stop() pairs. Unpaired calls
/// (start while running, stop without start) are misuse: they assert in
/// debug builds and are ignored in NDEBUG builds.
class AccumTimer {
 public:
  void start() {
    RSHC_ASSERT(!running_ && "AccumTimer::start() while already running");
    timer_.reset();
    running_ = true;
  }
  void stop() {
    RSHC_ASSERT(running_ && "AccumTimer::stop() without a matching start()");
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  [[nodiscard]] double seconds() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace rshc
