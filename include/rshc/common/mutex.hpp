#pragma once
// Annotated mutex wrappers — the only locking primitives library code may
// use. `rshc::Mutex` is a `std::mutex` carrying the Clang capability
// attribute; `rshc::LockGuard` is the RAII lock (scoped capability) whose
// `native_lock()` plugs into std::condition_variable waits. Using these
// instead of the bare std types is what lets `-Wthread-safety` (see
// thread_annotations.hpp and the CI `static-analysis` lane) prove every
// RSHC_GUARDED_BY field is only touched under its lock.
//
// Lock/unlock are noexcept by policy: std::mutex::lock can only throw
// system_error on resource exhaustion or operator error (EDEADLK /
// EAGAIN), and no caller in this codebase can recover from either —
// terminating is strictly better than unwinding through a solver step
// with a lock in an unknown state.

#include <mutex>

#include "rshc/common/thread_annotations.hpp"

namespace rshc {

/// std::mutex with the Clang `capability` attribute. Non-recursive; the
/// RSHC_EXCLUDES annotations on public locking methods exist precisely
/// because re-locking would deadlock.
class RSHC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // NOLINTNEXTLINE(bugprone-exception-escape): system_error from
  // std::mutex::lock is unrecoverable here; noexcept-terminate is the
  // documented policy (header comment).
  void lock() noexcept RSHC_ACQUIRE() { m_.lock(); }
  void unlock() noexcept RSHC_RELEASE() { m_.unlock(); }
  // NOLINTNEXTLINE(bugprone-exception-escape): same policy as lock().
  [[nodiscard]] bool try_lock() noexcept RSHC_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// Runtime no-op telling the analysis this mutex is held. For
  /// condition-variable predicate lambdas, which run under the lock but
  /// are separate functions as far as the analysis is concerned.
  void assert_held() const noexcept RSHC_ASSERT_CAPABILITY() {}

  /// The wrapped std::mutex, for LockGuard and condition-variable plumbing
  /// only. The lock_returned annotation maps locks taken through the
  /// native handle back to this capability.
  [[nodiscard]] std::mutex& native() noexcept RSHC_RETURN_CAPABILITY(this) {
    return m_;
  }

 private:
  std::mutex m_;
};

/// RAII exclusive lock over rshc::Mutex (scoped capability). Owns a
/// std::unique_lock underneath so std::condition_variable[_any] waits can
/// run against native_lock(); from the analysis's point of view the
/// capability stays held across a wait, which is exactly the contract the
/// predicate re-check needs.
class RSHC_SCOPED_CAPABILITY LockGuard {
 public:
  // NOLINTNEXTLINE(bugprone-exception-escape): locking follows the same
  // noexcept-terminate policy as Mutex::lock.
  explicit LockGuard(Mutex& m) noexcept RSHC_ACQUIRE(m) : lock_(m.native()) {}
  ~LockGuard() noexcept RSHC_RELEASE() {}  // unique_lock member unlocks

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  /// The underlying std::unique_lock, for condition-variable waits:
  /// `cv.wait(lock.native_lock(), [&]{ mutex.assert_held(); ... })`.
  [[nodiscard]] std::unique_lock<std::mutex>& native_lock() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace rshc
