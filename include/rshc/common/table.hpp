#pragma once
// Column-oriented result table: accumulates typed rows, pretty-prints to a
// stream in the fixed-width style of a paper table, and dumps CSV for
// downstream plotting. Used by every bench/exp_* harness.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rshc {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> columns);

  /// Title printed above the table (e.g. "T1: shock-tube validation").
  void set_title(std::string title);

  /// Append one row; must have exactly as many cells as columns.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  /// Raw cell access (row-major), mainly for tests.
  [[nodiscard]] const Cell& cell(std::size_t row, std::size_t col) const;

  /// Fixed-width human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting of commas needed for our content).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

 private:
  static std::string render(const Cell& c);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace rshc
