#pragma once
// Clang thread-safety-analysis annotations (the `-Wthread-safety`
// capability model) behind RSHC_* macros that compile to nothing on every
// other compiler. The annotations turn the repo's locking conventions —
// which fields a mutex guards, which locks a method needs, which locks it
// must NOT already hold — into compile-time contracts: the CI
// `static-analysis` lane builds the library with
// `-Wthread-safety -Werror=thread-safety` under Clang, so a new access to
// a guarded field without its lock is a build break, not a TSan roll of
// the dice.
//
// Conventions (see DESIGN.md "Concurrency contracts & static analysis"):
//  - every mutex is an `rshc::Mutex` (common/mutex.hpp), never a bare
//    `std::mutex`, so lock/unlock sites carry acquire/release semantics
//    the analysis can see;
//  - every field shared across threads is RSHC_GUARDED_BY its mutex;
//  - public methods that take a lock internally are RSHC_EXCLUDES(lock)
//    (calling them with the lock held would self-deadlock);
//  - helpers that assume a lock is already held are RSHC_REQUIRES(lock);
//  - condition-variable predicate lambdas run with the lock held but the
//    analysis cannot see across the std::condition_variable boundary:
//    open them with `lock.assert_held()` (a no-op that re-asserts the
//    invariant to the analysis).
//
// The macro set mirrors the canonical mutex.h example from the Clang
// documentation; only the spellings used by this repo are defined.

// GCC and MSVC do not implement the capability attributes and would warn
// (`-Wattributes`) on every use, so the macros vanish entirely off-Clang.
// tests/test_thread_annotations.cpp compiles a probe TU against both
// expansions, so a broken no-op path fails the tier-1 build fast.
#if defined(__clang__) && !defined(SWIG)
#define RSHC_THREAD_ANNOTATION(x) __attribute__((x))
#define RSHC_THREAD_ANNOTATIONS_ACTIVE 1
#else
#define RSHC_THREAD_ANNOTATION(x)  // no-op off-Clang
#define RSHC_THREAD_ANNOTATIONS_ACTIVE 0
#endif

/// Declares a class to be a capability (lockable) type. The string names
/// the capability kind in diagnostics ("mutex").
#define RSHC_CAPABILITY(x) RSHC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define RSHC_SCOPED_CAPABILITY RSHC_THREAD_ANNOTATION(scoped_lockable)

/// A data member that may only be read or written while holding `x`.
#define RSHC_GUARDED_BY(x) RSHC_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define RSHC_PT_GUARDED_BY(x) RSHC_THREAD_ANNOTATION(pt_guarded_by(x))

/// The calling thread must already hold the listed capabilities
/// exclusively (and they are still held on return).
#define RSHC_REQUIRES(...) \
  RSHC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
/// With no argument on a member of a capability class, acquires `this`.
#define RSHC_ACQUIRE(...) \
  RSHC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held on
/// entry). With no argument on a member of a capability class, `this`.
#define RSHC_RELEASE(...) \
  RSHC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability and returns `ret`
/// (true/false) on success.
#define RSHC_TRY_ACQUIRE(...) \
  RSHC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities: the function (or one
/// it calls) acquires them itself, so entering with them held would
/// self-deadlock on the non-recursive std::mutex underneath.
#define RSHC_EXCLUDES(...) \
  RSHC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime no-op that tells the analysis the capability IS held here.
/// Used at the top of condition-variable predicate lambdas, which execute
/// under the lock but are opaque to the intraprocedural analysis.
#define RSHC_ASSERT_CAPABILITY(...) \
  RSHC_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// The function returns a reference to the named capability (used by
/// accessors that expose the underlying std::mutex for CV waits).
#define RSHC_RETURN_CAPABILITY(x) RSHC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis inside one function. Every use must
/// carry a justification comment (same policy as sanitizer suppressions).
#define RSHC_NO_THREAD_SAFETY_ANALYSIS \
  RSHC_THREAD_ANNOTATION(no_thread_safety_analysis)
