#pragma once
// Small branch-light math helpers shared by reconstruction and physics
// kernels. All are constexpr-friendly and safe to call inside SIMD loops.

#include <algorithm>
#include <cmath>

namespace rshc {

[[nodiscard]] constexpr double sq(double x) { return x * x; }
[[nodiscard]] constexpr double cube(double x) { return x * x * x; }

[[nodiscard]] constexpr double sign(double x) {
  return (x > 0.0) - (x < 0.0);
}

/// minmod limiter of two arguments.
[[nodiscard]] constexpr double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

/// minmod limiter of three arguments.
[[nodiscard]] constexpr double minmod3(double a, double b, double c) {
  return minmod(a, minmod(b, c));
}

/// Monotonized-central (MC) limited slope from left/right differences.
[[nodiscard]] constexpr double mc_slope(double dqm, double dqp) {
  return minmod3(0.5 * (dqm + dqp), 2.0 * dqm, 2.0 * dqp);
}

/// van Leer (harmonic) limited slope from left/right differences.
[[nodiscard]] inline double van_leer_slope(double dqm, double dqp) {
  const double prod = dqm * dqp;
  if (prod <= 0.0) return 0.0;
  return 2.0 * prod / (dqm + dqp);
}

/// Relative difference |a-b| / max(|a|,|b|,floor).
[[nodiscard]] inline double rel_diff(double a, double b,
                                     double floor = 1e-300) {
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / scale;
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] inline bool close(double a, double b, double rtol = 1e-12,
                                double atol = 1e-14) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace rshc
