#pragma once
// Tiny key=value configuration store. Examples and bench harnesses accept
// overrides on the command line ("N=512 cfl=0.4 recon=weno5") and look them
// up with typed accessors + defaults.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rshc {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; tokens without '=' raise rshc::Error.
  static Config from_args(int argc, const char* const* argv);
  static Config from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Keys in insertion-independent (sorted) order, for echoing the run setup.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  [[nodiscard]] std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace rshc
