#pragma once
// Error handling policy (see DESIGN.md):
//  - RSHC_REQUIRE: recoverable precondition / runtime failure -> rshc::Error
//    with file:line context. Used at API boundaries, config parsing, I/O.
//  - RSHC_ASSERT: internal invariant, compiled out in NDEBUG builds. Never
//    used in per-zone hot loops; kernels report failure through status codes.

#include <stdexcept>
#include <string>
#include <string_view>

namespace rshc {

/// Exception carrying a formatted location-tagged message.
class Error : public std::runtime_error {
 public:
  Error(std::string_view what, std::string_view file, int line)
      : std::runtime_error(format(what, file, line)) {}

 private:
  static std::string format(std::string_view what, std::string_view file,
                            int line) {
    std::string s;
    s.reserve(what.size() + file.size() + 16);
    s.append(file).append(":").append(std::to_string(line)).append(": ");
    s.append(what);
    return s;
  }
};

[[noreturn]] inline void throw_error(std::string_view what,
                                     std::string_view file, int line) {
  throw Error(what, file, line);
}

}  // namespace rshc

#define RSHC_REQUIRE(cond, msg)                          \
  do {                                                   \
    if (!(cond)) [[unlikely]] {                          \
      ::rshc::throw_error((msg), __FILE__, __LINE__);    \
    }                                                    \
  } while (false)

#ifdef NDEBUG
#define RSHC_ASSERT(cond) ((void)0)
#else
#define RSHC_ASSERT(cond)                                             \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::rshc::throw_error("assertion failed: " #cond, __FILE__,       \
                          __LINE__);                                  \
    }                                                                 \
  } while (false)
#endif
