#pragma once
// Minimal leveled logger. Thread-safe (single global mutex); intended for
// progress / diagnostic messages, never for per-zone output.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace rshc::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emit one line at `level` (adds timestamp + level tag).
void write(Level level, std::string_view msg);

namespace detail {
template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}

/// Call-site rate limiter for repeated identical messages: at most one
/// emission per `min_interval`, counting what was dropped in between.
/// Keep one instance (static local or long-lived member) next to the call
/// it gates — the stall watchdog's warn mode uses one so a stalled run
/// logs once per window instead of once per poll. Thread-safe.
class RateLimit {
 public:
  explicit RateLimit(std::chrono::milliseconds min_interval) noexcept
      : interval_ns_(
            std::chrono::duration_cast<std::chrono::nanoseconds>(min_interval)
                .count()) {}

  /// Returns -1 when the call must stay silent, otherwise the number of
  /// calls suppressed since the last emission (0 when none were).
  [[nodiscard]] std::int64_t acquire() noexcept;

  /// Calls dropped since the last allowed emission (diagnostic).
  [[nodiscard]] std::int64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t interval_ns_;
  // relaxed CAS claims the next emission window; losers only bump the
  // suppressed counter, so no ordering beyond atomicity is needed.
  std::atomic<std::int64_t> next_ns_{0};
  // relaxed: dropped-call counter, eventual visibility only.
  std::atomic<std::int64_t> suppressed_{0};
};

/// warn(), but gated by `limit`: drops the message inside the suppression
/// window and annotates the next allowed one with the dropped count.
template <typename... Args>
void warn_limited(RateLimit& limit, Args&&... args) {
  const std::int64_t dropped = limit.acquire();
  if (dropped < 0) return;
  if (dropped > 0) {
    detail::emit(Level::kWarn, std::forward<Args>(args)..., " (", dropped,
                 " similar suppressed)");
  } else {
    detail::emit(Level::kWarn, std::forward<Args>(args)...);
  }
}

}  // namespace rshc::log
