#pragma once
// Minimal leveled logger. Thread-safe (single global mutex); intended for
// progress / diagnostic messages, never for per-zone output.

#include <sstream>
#include <string_view>

namespace rshc::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emit one line at `level` (adds timestamp + level tag).
void write(Level level, std::string_view msg);

namespace detail {
template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}

}  // namespace rshc::log
