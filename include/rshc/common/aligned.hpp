#pragma once
// Cache-line / SIMD-width aligned storage for SoA field arrays.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace rshc {

inline constexpr std::size_t kAlignment = 64;  // cache line & AVX-512 width

/// Minimal aligned allocator (Core Guidelines R.10: no naked malloc/free in
/// user code — containment here is the single sanctioned wrapper).
template <typename T, std::size_t Align = kAlignment>
struct AlignedAllocator {
  using value_type = T;

  // Explicit rebind: the default one cannot see through the non-type
  // alignment parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

/// Vector whose data() is 64-byte aligned — the storage type for all field
/// arrays so vectorized kernels can assume alignment.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace rshc
