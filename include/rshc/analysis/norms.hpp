#pragma once
// Error norms, convergence orders, and time-series fits used by the
// experiment harnesses.

#include <span>
#include <vector>

namespace rshc::analysis {

/// Mean absolute difference (discrete L1 norm of the error).
[[nodiscard]] double l1_error(std::span<const double> a,
                              std::span<const double> b);
/// Root-mean-square difference.
[[nodiscard]] double l2_error(std::span<const double> a,
                              std::span<const double> b);
/// Max absolute difference.
[[nodiscard]] double linf_error(std::span<const double> a,
                                std::span<const double> b);

/// Observed order p = log(e_coarse / e_fine) / log(refinement_ratio).
[[nodiscard]] double convergence_order(double err_coarse, double err_fine,
                                       double ratio = 2.0);

/// Least-squares slope of y over x (e.g. log-amplitude growth rate).
[[nodiscard]] double linear_fit_slope(std::span<const double> x,
                                      std::span<const double> y);

/// Exponential growth rate: slope of ln(y) over x; y must be positive.
[[nodiscard]] double growth_rate(std::span<const double> t,
                                 std::span<const double> amplitude);

}  // namespace rshc::analysis
