#pragma once
// Exact solver for the special relativistic Riemann problem with an ideal
// gas EOS and purely normal flow (v_t = 0), following Marti & Mueller
// (Living Reviews in Relativity, 2003). Used as ground truth for the
// shock-tube validation experiments (T1, F1) and the HLLC accuracy table.
//
// The star pressure p* solves v*_L(p) = v*_R(p), where each side's
// post-wave velocity comes from
//  - a shock (Taub adiabat + relativistic Rankine-Hugoniot) if p > p_side,
//  - a rarefaction (relativistic Riemann invariant
//      atanh(v) +- G(c_s),  G(c) = 2/sqrt(g-1) atanh(c/sqrt(g-1)))
//    if p < p_side.
// sample(xi) returns the self-similar solution at xi = x/t.

namespace rshc::analysis {

class ExactRiemann {
 public:
  struct State {
    double rho = 0.0;
    double v = 0.0;  ///< normal velocity
    double p = 0.0;
  };

  /// Wave pattern classification, per side.
  enum class Wave { kShock, kRarefaction };

  ExactRiemann(State left, State right, double gamma);

  [[nodiscard]] double p_star() const { return p_star_; }
  [[nodiscard]] double v_star() const { return v_star_; }
  [[nodiscard]] Wave left_wave() const { return left_wave_; }
  [[nodiscard]] Wave right_wave() const { return right_wave_; }

  /// Self-similar solution at xi = (x - x_membrane) / t.
  [[nodiscard]] State sample(double xi) const;

 private:
  struct WaveResult {
    double v = 0.0;          ///< flow speed behind the wave
    double rho = 0.0;        ///< density behind the wave
    double speed_head = 0.0; ///< fastest wave edge (shock speed or head)
    double speed_tail = 0.0; ///< slowest edge (== head for shocks)
  };

  [[nodiscard]] WaveResult shock(const State& a, double p, int sign) const;
  [[nodiscard]] WaveResult rarefaction(const State& a, double p,
                                       int sign) const;
  [[nodiscard]] WaveResult wave(const State& a, double p, int sign) const;
  [[nodiscard]] State sample_rarefaction_fan(const State& a, double xi,
                                             int sign) const;

  [[nodiscard]] double sound_speed(double rho, double p) const;
  [[nodiscard]] double invariant_g(double cs) const;

  State left_;
  State right_;
  double gamma_;
  double p_star_ = 0.0;
  double v_star_ = 0.0;
  Wave left_wave_ = Wave::kShock;
  Wave right_wave_ = Wave::kShock;
  WaveResult lw_{};
  WaveResult rw_{};
};

}  // namespace rshc::analysis
