#pragma once
// Dependency-driven task graph — the "futurized dataflow" execution model
// (DESIGN.md substitution for the HPX runtime). Solvers build one node per
// (block, stage) with edges from the neighbour blocks' previous stage, then
// run() executes the whole step with no intra-step global barrier: a block
// advances as soon as its own halo dependencies are met.
//
// A graph is built once and can be run() repeatedly (structure is immutable
// after the first run; per-run scheduling state is reset internally).

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <initializer_list>
#include <span>
#include <vector>

#include "rshc/check/check.hpp"
#include "rshc/common/mutex.hpp"

namespace rshc::parallel {

class ThreadPool;

class TaskGraph {
 public:
  using NodeId = std::size_t;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node executing `fn` after every node in `deps` has completed.
  /// Dependencies must already exist (ids are returned in creation order),
  /// which makes cycles unrepresentable.
  NodeId add(std::function<void()> fn, std::span<const NodeId> deps = {});

  NodeId add(std::function<void()> fn, std::initializer_list<NodeId> deps) {
    return add(std::move(fn), std::span<const NodeId>(deps.begin(), deps.size()));
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Execute all nodes on `pool`, blocking until the graph drains.
  /// The first exception thrown by any node is rethrown here; downstream
  /// nodes of a failed node still run (physics kernels report failure via
  /// status fields, not exceptions, so this only matters for test hooks).
  void run(ThreadPool& pool) RSHC_EXCLUDES(error_mutex_);

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> dependents;
    int num_deps = 0;
    // acq_rel on the releasing decrement: the node that drops pending to 0
    // must observe all writes of the dependencies it waited for. The
    // per-run reset in run() is relaxed (no worker is live yet).
    std::atomic<int> pending{0};
#if RSHC_CHECKS_ENABLED
    // relaxed: checker bookkeeping only (fired-exactly-once invariant);
    // ordering is already provided by `pending`.
    std::atomic<int> fired{0};
#endif
  };

  void finish_node(ThreadPool& pool, NodeId id) RSHC_EXCLUDES(error_mutex_);
  void release_dependents(ThreadPool& pool, NodeId id);

  // deque: stable addresses, no relocation (Node holds an atomic).
  std::deque<Node> nodes_;

  // Per-run state.
  // acq_rel on the final decrement: the thread observing 0 fulfils the
  // done_ promise and must see every node's side effects. The per-run
  // reset in run() is relaxed (no worker is live yet).
  std::atomic<std::size_t> remaining_{0};
  std::promise<void> done_;
  Mutex error_mutex_;
  std::exception_ptr error_ RSHC_GUARDED_BY(error_mutex_);
};

/// Process-wide scheduler introspection for the stall watchdog
/// (obs::telemetry): nodes scheduled-but-unfinished right now, and a
/// monotonic finished count. Summed over every TaskGraph run in flight.
/// Deliberately obs-free so the hooks exist in all build configurations.
namespace introspect {

// relaxed: watchdog diagnostics only; readers tolerate stale values.
inline std::atomic<long long>& graph_pending_counter() noexcept {
  static std::atomic<long long> pending{0};
  return pending;
}

// relaxed: monotonic progress ticker for the watchdog; no ordering needed.
inline std::atomic<long long>& graph_finished_counter() noexcept {
  static std::atomic<long long> finished{0};
  return finished;
}

/// Nodes scheduled by a run() that has not observed their completion yet.
[[nodiscard]] inline long long pending_graph_nodes() noexcept {
  return graph_pending_counter().load(std::memory_order_relaxed);
}

/// Monotonic count of nodes that finished (successfully or not).
[[nodiscard]] inline long long graph_nodes_finished() noexcept {
  return graph_finished_counter().load(std::memory_order_relaxed);
}

}  // namespace introspect

}  // namespace rshc::parallel
