#pragma once
// Fixed-size worker pool with a central task queue. This is the
// shared-memory substrate for block-parallel stepping and the futurized
// dataflow scheduler (DESIGN.md system #2). Follows CP.24/CP.25: tasks and
// futures rather than raw detached threads; workers are std::jthread and
// join on destruction.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "rshc/common/mutex.hpp"

namespace rshc::parallel {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (>=1). Workers sleep when idle.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Fire-and-forget variant used by the dataflow engine (result delivery is
  /// handled by the caller's promise).
  void enqueue(std::function<void()> fn) RSHC_EXCLUDES(mutex_);

  /// Run `fn(i)` for i in [begin, end) across the pool, blocking until done.
  /// `grain` is the minimum chunk size per task. Safe to call from a worker
  /// thread: the caller participates by draining its own chunk inline.
  void parallel_for(long long begin, long long end,
                    const std::function<void(long long)>& fn,
                    long long grain = 1);

  /// Number of tasks currently queued (diagnostic).
  [[nodiscard]] std::size_t queued() const RSHC_EXCLUDES(mutex_);

 private:
  void worker_loop(const std::stop_token& st) RSHC_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ RSHC_GUARDED_BY(mutex_);
  // Only the constructor mutates workers_; size() reads it lock-free after
  // construction completes (publication via the constructing thread).
  std::vector<std::jthread> workers_;
  bool stopping_ RSHC_GUARDED_BY(mutex_) = false;
};

/// Process-wide default pool sized from hardware_concurrency(); created on
/// first use. Harnesses that sweep worker counts construct their own pools.
ThreadPool& default_pool();

/// Worker-state introspection for the stall watchdog's per-thread dump
/// (obs::telemetry), summed over every pool in the process. Deliberately
/// obs-free so the hooks exist in all build configurations.
namespace introspect {

// relaxed: watchdog diagnostics only; readers tolerate stale values.
inline std::atomic<long long>& pool_busy_counter() noexcept {
  static std::atomic<long long> busy{0};
  return busy;
}

// relaxed: monotonic progress ticker for the watchdog; no ordering needed.
inline std::atomic<long long>& pool_finished_counter() noexcept {
  static std::atomic<long long> finished{0};
  return finished;
}

/// Workers currently executing a task (as opposed to sleeping on the CV).
[[nodiscard]] inline long long pool_busy_workers() noexcept {
  return pool_busy_counter().load(std::memory_order_relaxed);
}

/// Monotonic count of pool tasks that ran to completion.
[[nodiscard]] inline long long pool_tasks_finished() noexcept {
  return pool_finished_counter().load(std::memory_order_relaxed);
}

}  // namespace introspect

}  // namespace rshc::parallel
