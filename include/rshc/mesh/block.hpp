#pragma once
// One rectangular tile of the global grid, padded with `ng` ghost cells in
// every active dimension. Blocks own their conservative (U) and primitive
// (W) field arrays; ghost zones are filled by halo exchange / boundary
// conditions on the *primitive* fields (reconstruction consumes primitives;
// interior conservatives never need ghosts).

#include <array>

#include "rshc/mesh/field_array.hpp"
#include "rshc/mesh/grid.hpp"

namespace rshc::mesh {

/// Global interior index range [lo, hi) owned by a block.
struct BlockExtents {
  std::array<long long, 3> lo = {0, 0, 0};
  std::array<long long, 3> hi = {1, 1, 1};

  [[nodiscard]] long long width(int axis) const {
    return hi[static_cast<std::size_t>(axis)] -
           lo[static_cast<std::size_t>(axis)];
  }
  [[nodiscard]] long long num_cells() const {
    return width(0) * width(1) * width(2);
  }
};

class Block {
 public:
  Block(const Grid& grid, BlockExtents extents, int ng, int nvar_cons,
        int nvar_prim)
      : grid_(&grid), ext_(extents), ng_(ng) {
    for (int a = 0; a < 3; ++a) {
      const bool active = a < grid.ndim();
      interior_[static_cast<std::size_t>(a)] =
          static_cast<int>(ext_.width(a));
      total_[static_cast<std::size_t>(a)] =
          interior_[static_cast<std::size_t>(a)] + (active ? 2 * ng : 0);
      ghost_[static_cast<std::size_t>(a)] = active ? ng : 0;
    }
    cons_ = FieldArray(nvar_cons, total_[2], total_[1], total_[0]);
    prim_ = FieldArray(nvar_prim, total_[2], total_[1], total_[0]);
  }

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] const BlockExtents& extents() const { return ext_; }
  [[nodiscard]] int ng() const { return ng_; }
  [[nodiscard]] int ndim() const { return grid_->ndim(); }

  /// Interior cell count along `axis` (no ghosts).
  [[nodiscard]] int interior(int axis) const {
    return interior_[static_cast<std::size_t>(axis)];
  }
  /// Total (ghosted) cell count along `axis`.
  [[nodiscard]] int total(int axis) const {
    return total_[static_cast<std::size_t>(axis)];
  }
  /// Ghost width along `axis` (0 for inactive dimensions).
  [[nodiscard]] int ghost(int axis) const {
    return ghost_[static_cast<std::size_t>(axis)];
  }
  /// First interior local index along `axis` (== ghost(axis)).
  [[nodiscard]] int begin(int axis) const { return ghost(axis); }
  /// One past the last interior local index.
  [[nodiscard]] int end(int axis) const {
    return ghost(axis) + interior(axis);
  }

  /// Physical center coordinate of *local* (ghost-offset) index along axis.
  [[nodiscard]] double center(int axis, int local) const {
    const long long global = ext_.lo[static_cast<std::size_t>(axis)] +
                             (local - ghost(axis));
    return grid_->cell_center(axis, global);
  }

  [[nodiscard]] FieldArray& cons() { return cons_; }
  [[nodiscard]] const FieldArray& cons() const { return cons_; }
  [[nodiscard]] FieldArray& prim() { return prim_; }
  [[nodiscard]] const FieldArray& prim() const { return prim_; }

 private:
  const Grid* grid_;
  BlockExtents ext_;
  int ng_;
  std::array<int, 3> interior_ = {1, 1, 1};
  std::array<int, 3> total_ = {1, 1, 1};
  std::array<int, 3> ghost_ = {0, 0, 0};
  FieldArray cons_;
  FieldArray prim_;
};

}  // namespace rshc::mesh
