#pragma once
// SoA multi-variable field over one block (ghosts included): element
// (v, k, j, i) lives at ((v*nk + k)*nj + j)*ni + i, so each variable is a
// contiguous, 64-byte-aligned slab — the layout batched kernels and the
// device staging path require.

#include <algorithm>
#include <cstddef>
#include <span>

#include "rshc/common/aligned.hpp"
#include "rshc/common/error.hpp"

namespace rshc::mesh {

class FieldArray {
 public:
  FieldArray() = default;
  FieldArray(int nvar, int nk, int nj, int ni)
      : nvar_(nvar), nk_(nk), nj_(nj), ni_(ni),
        data_(static_cast<std::size_t>(nvar) * static_cast<std::size_t>(nk) *
                  static_cast<std::size_t>(nj) * static_cast<std::size_t>(ni),
              0.0) {
    RSHC_REQUIRE(nvar >= 1 && nk >= 1 && nj >= 1 && ni >= 1,
                 "field array extents must be positive");
  }

  [[nodiscard]] int nvar() const { return nvar_; }
  [[nodiscard]] int nk() const { return nk_; }
  [[nodiscard]] int nj() const { return nj_; }
  [[nodiscard]] int ni() const { return ni_; }
  [[nodiscard]] std::size_t cells_per_var() const {
    return static_cast<std::size_t>(nk_) * static_cast<std::size_t>(nj_) *
           static_cast<std::size_t>(ni_);
  }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(int v, int k, int j, int i) {
    return data_[index(v, k, j, i)];
  }
  [[nodiscard]] double operator()(int v, int k, int j, int i) const {
    return data_[index(v, k, j, i)];
  }

  /// Contiguous slab of one variable (length cells_per_var()).
  [[nodiscard]] std::span<double> var(int v) {
    return {data_.data() + static_cast<std::size_t>(v) * cells_per_var(),
            cells_per_var()};
  }
  [[nodiscard]] std::span<const double> var(int v) const {
    return {data_.data() + static_cast<std::size_t>(v) * cells_per_var(),
            cells_per_var()};
  }

  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Linear cell index (k, j, i) within one variable slab.
  [[nodiscard]] std::size_t cell_index(int k, int j, int i) const {
    return (static_cast<std::size_t>(k) * static_cast<std::size_t>(nj_) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(ni_) +
           static_cast<std::size_t>(i);
  }

 private:
  [[nodiscard]] std::size_t index(int v, int k, int j, int i) const {
    RSHC_ASSERT(v >= 0 && v < nvar_ && k >= 0 && k < nk_ && j >= 0 &&
                j < nj_ && i >= 0 && i < ni_);
    return static_cast<std::size_t>(v) * cells_per_var() + cell_index(k, j, i);
  }

  int nvar_ = 0;
  int nk_ = 0;
  int nj_ = 0;
  int ni_ = 0;
  rshc::aligned_vector<double> data_;
};

}  // namespace rshc::mesh
