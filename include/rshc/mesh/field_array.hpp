#pragma once
// SoA multi-variable field over one block (ghosts included): element
// (v, k, j, i) lives at ((v*nk + k)*nj + j)*ni + i, so each variable is a
// contiguous, 64-byte-aligned slab. Batched kernels walk these slabs
// directly; device staging copies them wholesale via flat() (full-array
// residency upload) or through the BoxSpec pack/unpack views below
// (halo-sized sub-box transfers). The raw-pointer overloads exist so the
// same copy code runs against a flat device arena, which has this layout
// but is not a FieldArray.

#include <algorithm>
#include <cstddef>
#include <span>

#include "rshc/common/aligned.hpp"
#include "rshc/common/error.hpp"

namespace rshc::mesh {

/// Rectangular sub-box of a ghost-inclusive (nk, nj, ni) index space; the
/// unit of staging transfer (a halo rim, a ghost shell face, or the whole
/// array).
struct BoxSpec {
  int k0 = 0, j0 = 0, i0 = 0;  ///< origin (local, ghost-offset indices)
  int nk = 1, nj = 1, ni = 1;  ///< box extents
  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(nk) * static_cast<std::size_t>(nj) *
           static_cast<std::size_t>(ni);
  }
};

/// Gather `box` for all `nvar` variables of an SoA array with per-variable
/// extents (ank, anj, ani) into `out`, packed v-major then (k, j, i).
/// `out` must hold nvar * box.cells() doubles.
inline void pack_box(const double* data, int nvar, int ank, int anj, int ani,
                     const BoxSpec& box, double* out) {
  const std::size_t cells =
      static_cast<std::size_t>(ank) * static_cast<std::size_t>(anj) *
      static_cast<std::size_t>(ani);
  for (int v = 0; v < nvar; ++v) {
    const double* slab = data + static_cast<std::size_t>(v) * cells;
    for (int k = 0; k < box.nk; ++k) {
      for (int j = 0; j < box.nj; ++j) {
        const double* row =
            slab + (static_cast<std::size_t>(box.k0 + k) *
                        static_cast<std::size_t>(anj) +
                    static_cast<std::size_t>(box.j0 + j)) *
                       static_cast<std::size_t>(ani) +
            static_cast<std::size_t>(box.i0);
        for (int i = 0; i < box.ni; ++i) *out++ = row[i];
      }
    }
  }
}

/// Scatter `in` (layout produced by pack_box) back into `box` of the array.
inline void unpack_box(double* data, int nvar, int ank, int anj, int ani,
                       const BoxSpec& box, const double* in) {
  const std::size_t cells =
      static_cast<std::size_t>(ank) * static_cast<std::size_t>(anj) *
      static_cast<std::size_t>(ani);
  for (int v = 0; v < nvar; ++v) {
    double* slab = data + static_cast<std::size_t>(v) * cells;
    for (int k = 0; k < box.nk; ++k) {
      for (int j = 0; j < box.nj; ++j) {
        double* row =
            slab + (static_cast<std::size_t>(box.k0 + k) *
                        static_cast<std::size_t>(anj) +
                    static_cast<std::size_t>(box.j0 + j)) *
                       static_cast<std::size_t>(ani) +
            static_cast<std::size_t>(box.i0);
        for (int i = 0; i < box.ni; ++i) row[i] = *in++;
      }
    }
  }
}

class FieldArray {
 public:
  FieldArray() = default;
  FieldArray(int nvar, int nk, int nj, int ni)
      : nvar_(nvar), nk_(nk), nj_(nj), ni_(ni),
        data_(static_cast<std::size_t>(nvar) * static_cast<std::size_t>(nk) *
                  static_cast<std::size_t>(nj) * static_cast<std::size_t>(ni),
              0.0) {
    RSHC_REQUIRE(nvar >= 1 && nk >= 1 && nj >= 1 && ni >= 1,
                 "field array extents must be positive");
  }

  [[nodiscard]] int nvar() const { return nvar_; }
  [[nodiscard]] int nk() const { return nk_; }
  [[nodiscard]] int nj() const { return nj_; }
  [[nodiscard]] int ni() const { return ni_; }
  [[nodiscard]] std::size_t cells_per_var() const {
    return static_cast<std::size_t>(nk_) * static_cast<std::size_t>(nj_) *
           static_cast<std::size_t>(ni_);
  }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(int v, int k, int j, int i) {
    return data_[index(v, k, j, i)];
  }
  [[nodiscard]] double operator()(int v, int k, int j, int i) const {
    return data_[index(v, k, j, i)];
  }

  /// Contiguous slab of one variable (length cells_per_var()).
  [[nodiscard]] std::span<double> var(int v) {
    return {data_.data() + static_cast<std::size_t>(v) * cells_per_var(),
            cells_per_var()};
  }
  [[nodiscard]] std::span<const double> var(int v) const {
    return {data_.data() + static_cast<std::size_t>(v) * cells_per_var(),
            cells_per_var()};
  }

  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Staging view: gather `box` across all variables into `out`
  /// (pack_box layout; out.size() == nvar() * box.cells()).
  void pack_box(const BoxSpec& box, std::span<double> out) const {
    require_box(box, out.size());
    mesh::pack_box(data_.data(), nvar_, nk_, nj_, ni_, box, out.data());
  }

  /// Staging view: scatter `in` (pack_box layout) back into `box`.
  void unpack_box(const BoxSpec& box, std::span<const double> in) {
    require_box(box, in.size());
    mesh::unpack_box(data_.data(), nvar_, nk_, nj_, ni_, box, in.data());
  }

  /// Linear cell index (k, j, i) within one variable slab.
  [[nodiscard]] std::size_t cell_index(int k, int j, int i) const {
    return (static_cast<std::size_t>(k) * static_cast<std::size_t>(nj_) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(ni_) +
           static_cast<std::size_t>(i);
  }

 private:
  void require_box(const BoxSpec& box, std::size_t staged) const {
    RSHC_REQUIRE(box.nk >= 1 && box.nj >= 1 && box.ni >= 1 && box.k0 >= 0 &&
                     box.j0 >= 0 && box.i0 >= 0 && box.k0 + box.nk <= nk_ &&
                     box.j0 + box.nj <= nj_ && box.i0 + box.ni <= ni_,
                 "staging box exceeds field extents");
    RSHC_REQUIRE(staged == static_cast<std::size_t>(nvar_) * box.cells(),
                 "staging buffer size mismatch");
  }

  [[nodiscard]] std::size_t index(int v, int k, int j, int i) const {
    RSHC_ASSERT(v >= 0 && v < nvar_ && k >= 0 && k < nk_ && j >= 0 &&
                j < nj_ && i >= 0 && i < ni_);
    return static_cast<std::size_t>(v) * cells_per_var() + cell_index(k, j, i);
  }

  int nvar_ = 0;
  int nk_ = 0;
  int nj_ = 0;
  int ni_ = 0;
  rshc::aligned_vector<double> data_;
};

}  // namespace rshc::mesh
