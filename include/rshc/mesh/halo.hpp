#pragma once
// Ghost-zone filling for the primitive fields.
//
// Only face halos are exchanged (no corners): reconstruction stencils are
// axis-aligned pencils, so corner ghosts are never read. This keeps the
// exchanges of different axes independent — exactly what the futurized
// dataflow stepping exploits. Transverse ranges are therefore restricted
// to the interior.
//
// Two paths share the same pack/unpack layout:
//   copy_halo    — direct shared-memory copy between sibling blocks
//   pack_face /
//   unpack_ghost — staging through a contiguous buffer for the
//                  message-passing (distributed) driver.

#include <array>
#include <span>
#include <vector>

#include "rshc/mesh/block.hpp"

namespace rshc::mesh {

/// Number of doubles in one face halo message of `b` across `axis`
/// (all prim variables × ng layers × interior transverse extent).
[[nodiscard]] std::size_t halo_buffer_size(const Block& b, int axis);

/// Persistent per-(axis, side) staging buffers for the message-passing
/// exchange. One send and one recv buffer per face, sized once from the
/// block, so (a) the rank hot path stops reallocating per exchange and
/// (b) all six faces can be in flight simultaneously — the prerequisite
/// for posting every irecv/isend up front and overlapping the waits with
/// interior compute.
class HaloBufferSet {
 public:
  HaloBufferSet() = default;

  /// Size every face buffer for `b`. Idempotent; cheap after the first
  /// call (vectors never shrink, so repeated calls are no-ops).
  void ensure_sized(const Block& b) {
    if (sized_) return;
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t n = halo_buffer_size(b, axis);
      for (int side = 0; side < 2; ++side) {
        send_[slot(axis, side)].resize(n);
        recv_[slot(axis, side)].resize(n);
      }
    }
    sized_ = true;
  }

  [[nodiscard]] std::span<double> send(int axis, int side) {
    return send_[slot(axis, side)];
  }
  [[nodiscard]] std::span<double> recv(int axis, int side) {
    return recv_[slot(axis, side)];
  }

 private:
  [[nodiscard]] static std::size_t slot(int axis, int side) {
    return static_cast<std::size_t>(axis * 2 + side);
  }

  std::array<std::vector<double>, 6> send_;
  std::array<std::vector<double>, 6> recv_;
  bool sized_ = false;
};

/// Pack the ng interior layers of `src` adjacent to its (axis, side) face
/// (side 0 = low, 1 = high) into `buf` (size halo_buffer_size).
void pack_face(const Block& src, int axis, int side, std::span<double> buf);

/// Unpack `buf` into the ghost layers of `dst` at its (axis, side) face.
void unpack_ghost(Block& dst, int axis, int side,
                  std::span<const double> buf);

/// Fill dst's ghosts at face (axis, side) from the adjacent interior
/// layers of `src` (the neighbour across that face). Blocks must agree on
/// transverse extents.
void copy_halo(Block& dst, const Block& src, int axis, int side);

/// Single-block periodic wrap along `axis` (both faces).
void apply_periodic(Block& b, int axis);

}  // namespace rshc::mesh
