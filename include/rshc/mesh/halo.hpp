#pragma once
// Ghost-zone filling for the primitive fields.
//
// Only face halos are exchanged (no corners): reconstruction stencils are
// axis-aligned pencils, so corner ghosts are never read. This keeps the
// exchanges of different axes independent — exactly what the futurized
// dataflow stepping exploits. Transverse ranges are therefore restricted
// to the interior.
//
// Two paths share the same pack/unpack layout:
//   copy_halo    — direct shared-memory copy between sibling blocks
//   pack_face /
//   unpack_ghost — staging through a contiguous buffer for the
//                  message-passing (distributed) driver.

#include <span>

#include "rshc/mesh/block.hpp"

namespace rshc::mesh {

/// Number of doubles in one face halo message of `b` across `axis`
/// (all prim variables × ng layers × interior transverse extent).
[[nodiscard]] std::size_t halo_buffer_size(const Block& b, int axis);

/// Pack the ng interior layers of `src` adjacent to its (axis, side) face
/// (side 0 = low, 1 = high) into `buf` (size halo_buffer_size).
void pack_face(const Block& src, int axis, int side, std::span<double> buf);

/// Unpack `buf` into the ghost layers of `dst` at its (axis, side) face.
void unpack_ghost(Block& dst, int axis, int side,
                  std::span<const double> buf);

/// Fill dst's ghosts at face (axis, side) from the adjacent interior
/// layers of `src` (the neighbour across that face). Blocks must agree on
/// transverse extents.
void copy_halo(Block& dst, const Block& src, int axis, int side);

/// Single-block periodic wrap along `axis` (both faces).
void apply_periodic(Block& b, int axis);

}  // namespace rshc::mesh
