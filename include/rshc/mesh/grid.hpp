#pragma once
// Global structured grid descriptor: uniform Cartesian, 1/2/3 dimensional.
// Index convention everywhere: axis 0 = x (fastest-varying in memory),
// axis 1 = y, axis 2 = z.

#include <array>

#include "rshc/common/error.hpp"

namespace rshc::mesh {

class Grid {
 public:
  Grid(int ndim, std::array<long long, 3> n, std::array<double, 3> xmin,
       std::array<double, 3> xmax)
      : ndim_(ndim), n_(n), xmin_(xmin), xmax_(xmax) {
    RSHC_REQUIRE(ndim >= 1 && ndim <= 3, "grid must be 1..3 dimensional");
    for (int a = 0; a < 3; ++a) {
      if (a >= ndim) {
        n_[static_cast<std::size_t>(a)] = 1;
        continue;
      }
      RSHC_REQUIRE(n_[static_cast<std::size_t>(a)] >= 1,
                   "grid extent must be positive");
      RSHC_REQUIRE(xmax[static_cast<std::size_t>(a)] >
                       xmin[static_cast<std::size_t>(a)],
                   "grid domain must have positive length");
    }
  }

  /// Convenience 1D / 2D constructors.
  static Grid make_1d(long long nx, double xmin, double xmax) {
    return Grid(1, {nx, 1, 1}, {xmin, 0.0, 0.0}, {xmax, 1.0, 1.0});
  }
  static Grid make_2d(long long nx, long long ny, double xmin, double xmax,
                      double ymin, double ymax) {
    return Grid(2, {nx, ny, 1}, {xmin, ymin, 0.0}, {xmax, ymax, 1.0});
  }

  [[nodiscard]] int ndim() const { return ndim_; }
  [[nodiscard]] long long extent(int axis) const {
    return n_[static_cast<std::size_t>(axis)];
  }
  [[nodiscard]] long long num_cells() const {
    return n_[0] * n_[1] * n_[2];
  }
  [[nodiscard]] double xmin(int axis) const {
    return xmin_[static_cast<std::size_t>(axis)];
  }
  [[nodiscard]] double xmax(int axis) const {
    return xmax_[static_cast<std::size_t>(axis)];
  }
  [[nodiscard]] double dx(int axis) const {
    return (xmax(axis) - xmin(axis)) /
           static_cast<double>(extent(axis));
  }
  [[nodiscard]] double min_dx() const {
    double d = dx(0);
    for (int a = 1; a < ndim_; ++a) d = d < dx(a) ? d : dx(a);
    return d;
  }
  /// Center coordinate of global cell index i along `axis`.
  [[nodiscard]] double cell_center(int axis, long long i) const {
    return xmin(axis) + (static_cast<double>(i) + 0.5) * dx(axis);
  }

 private:
  int ndim_;
  std::array<long long, 3> n_;
  std::array<double, 3> xmin_;
  std::array<double, 3> xmax_;
};

}  // namespace rshc::mesh
