#pragma once
// Cartesian decomposition of a Grid into a (bx, by, bz) array of blocks,
// with neighbour queries used by the halo-exchange machinery. Remainder
// cells are spread over the leading blocks so any block count divides any
// grid.

#include <array>
#include <optional>
#include <vector>

#include "rshc/mesh/block.hpp"
#include "rshc/mesh/grid.hpp"

namespace rshc::mesh {

class Decomposition {
 public:
  Decomposition(const Grid& grid, std::array<int, 3> nblocks);

  [[nodiscard]] const Grid& grid() const { return *grid_; }
  [[nodiscard]] int num_blocks() const {
    return nb_[0] * nb_[1] * nb_[2];
  }
  [[nodiscard]] int blocks(int axis) const {
    return nb_[static_cast<std::size_t>(axis)];
  }

  [[nodiscard]] int block_id(std::array<int, 3> coords) const;
  [[nodiscard]] std::array<int, 3> block_coords(int id) const;
  [[nodiscard]] BlockExtents extents(int id) const;

  /// Neighbouring block across face (`axis`, `side`): side=0 is the low
  /// face, side=1 the high face. `periodic` wraps; otherwise nullopt at the
  /// domain edge (a physical boundary).
  [[nodiscard]] std::optional<int> neighbor(int id, int axis, int side,
                                            bool periodic) const;

 private:
  const Grid* grid_;
  std::array<int, 3> nb_;
  // Per-axis split points (size nb[a]+1) in global cell indices.
  std::array<std::vector<long long>, 3> splits_;
};

}  // namespace rshc::mesh
