#pragma once
// Physical boundary conditions on the primitive ghost zones.
//   kPeriodic — handled by halo exchange / apply_periodic, listed here so a
//               full BC specification can be stored per axis.
//   kOutflow  — zero-gradient copy of the nearest interior layer.
//   kReflect  — mirror interior layers; variables listed in
//               ReflectSpec::negate_vars (normal velocity, normal B) flip
//               sign.

#include <array>
#include <string_view>
#include <vector>

#include "rshc/mesh/block.hpp"

namespace rshc::mesh {

enum class BcType { kPeriodic, kOutflow, kReflect };

[[nodiscard]] std::string_view bc_name(BcType t);
[[nodiscard]] BcType parse_bc(std::string_view name);

/// Per-axis boundary specification (same type on both faces).
struct BoundarySpec {
  std::array<BcType, 3> type = {BcType::kPeriodic, BcType::kPeriodic,
                                BcType::kPeriodic};

  [[nodiscard]] bool periodic(int axis) const {
    return type[static_cast<std::size_t>(axis)] == BcType::kPeriodic;
  }
  static BoundarySpec all(BcType t) { return {{t, t, t}}; }
};

/// Apply a non-periodic physical BC to the (axis, side) ghost face of `b`.
/// `negate_vars` lists primitive variable indices whose sign flips under
/// reflection (ignored for outflow).
void apply_physical_boundary(Block& b, int axis, int side, BcType type,
                             std::span<const int> negate_vars);

}  // namespace rshc::mesh
