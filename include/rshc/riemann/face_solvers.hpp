#pragma once
// Per-interface solver cores shared between the struct entry points
// (src/riemann/riemann.cpp) and the batched face-kernel translation units
// (src/riemann/faces_*.cpp). Header-inline for the same reason as
// srhd/state.hpp: each TU compiles this code under its own optimization
// flags while -ffp-contract=off keeps every variant bitwise identical to
// the tree-default baseline (no FMA contraction on the x86-64 baseline).
//
// Everything here is an implementation detail of rshc::riemann; the public
// surface stays riemann.hpp (per-interface) and riemann/kernels.hpp
// (batched SoA rows).

#include <algorithm>
#include <cmath>

#include "rshc/eos/ideal_gas.hpp"
#include "rshc/srhd/state.hpp"
#include "rshc/srmhd/glm.hpp"
#include "rshc/srmhd/state.hpp"

namespace rshc::riemann::detail {

/// Rescale a velocity vector to |v| <= vmax (< 1), preserving direction.
template <typename P>
inline void cap_velocity(P& w, double vmax) {
  const double v2 = w.v_sq();
  if (v2 >= vmax * vmax) {
    const double scale = vmax / std::sqrt(v2);
    w.vx *= scale;
    w.vy *= scale;
    w.vz *= scale;
  }
}

/// Sanitize a reconstructed face state before the Riemann solve: positivity
/// floors on rho and p, |v| capped strictly below 1. The single definition
/// both Physics::limit_face_state and the batched face kernels compile, so
/// the two host pipelines limit with identical arithmetic.
template <typename P>
inline void limit_face(P& w, double rho_floor, double p_floor) {
  w.rho = std::max(w.rho, rho_floor);
  w.p = std::max(w.p, p_floor);
  cap_velocity(w, 1.0 - 1e-10);
}

/// One side of an SRHD interface: primitive state plus everything the
/// approximate solvers consume (conservatives, physical flux, acoustic
/// signal speeds).
struct SrhdSide {
  srhd::Prim w;
  srhd::Cons u;
  srhd::Cons f;
  srhd::SignalSpeeds s;
};

inline SrhdSide srhd_side(const srhd::Prim& w, int axis,
                          const eos::IdealGas& eos) {
  SrhdSide p;
  p.w = w;
  p.u = srhd::prim_to_cons(w, eos);
  p.f = srhd::flux(w, p.u, axis);
  p.s = srhd::signal_speeds(w, axis, eos);
  return p;
}

inline srhd::Cons llf(const SrhdSide& l, const SrhdSide& r) {
  const double a =
      std::max({std::abs(l.s.lambda_minus), std::abs(l.s.lambda_plus),
                std::abs(r.s.lambda_minus), std::abs(r.s.lambda_plus)});
  return 0.5 * (l.f + r.f) + (-0.5 * a) * (r.u - l.u);
}

inline srhd::Cons hll(const SrhdSide& l, const SrhdSide& r) {
  const double sl = std::min({0.0, l.s.lambda_minus, r.s.lambda_minus});
  const double sr = std::max({0.0, l.s.lambda_plus, r.s.lambda_plus});
  if (sl >= 0.0) return l.f;
  if (sr <= 0.0) return r.f;
  const double inv = 1.0 / (sr - sl);
  return inv * ((sr * l.f) + (-sl) * r.f + (sl * sr) * (r.u - l.u));
}

/// Mignone & Bodo (2005) HLLC. Works with the *total* energy E = tau + D
/// (whose flux is the normal momentum) and converts back at the end.
inline srhd::Cons hllc(const SrhdSide& l, const SrhdSide& r, int axis) {
  const double sl = std::min(l.s.lambda_minus, r.s.lambda_minus);
  const double sr = std::max(l.s.lambda_plus, r.s.lambda_plus);
  if (sl >= 0.0) return l.f;
  if (sr <= 0.0) return r.f;

  // HLL-averaged state and flux of (E, m_n).
  const double inv = 1.0 / (sr - sl);
  auto hll_avg = [&](double ul, double ur, double fl, double fr) {
    return (sr * ur - sl * ul + fl - fr) * inv;
  };
  auto hll_flux = [&](double ul, double ur, double fl, double fr) {
    return (sr * fl - sl * fr + sl * sr * (ur - ul)) * inv;
  };

  const double El = l.u.tau + l.u.d;
  const double Er = r.u.tau + r.u.d;
  const double fEl = l.f.tau + l.f.d;  // = m_n,L
  const double fEr = r.f.tau + r.f.d;
  const double ml = l.u.s(axis);
  const double mr = r.u.s(axis);
  const double fml = l.f.s(axis);
  const double fmr = r.f.s(axis);

  const double E_h = hll_avg(El, Er, fEl, fEr);
  const double m_h = hll_avg(ml, mr, fml, fmr);
  const double fE_h = hll_flux(El, Er, fEl, fEr);
  const double fm_h = hll_flux(ml, mr, fml, fmr);

  // Contact speed: the physical root of
  //   fE_h lam^2 - (E_h + fm_h) lam + m_h = 0.
  double lam_star;
  const double a = fE_h;
  const double b = -(E_h + fm_h);
  const double c = m_h;
  if (std::abs(a) > 1e-12 * std::max(std::abs(b), 1.0)) {
    const double disc = std::max(0.0, b * b - 4.0 * a * c);
    // Minus root (Mignone & Bodo 2005, eq. 18) is the causal one.
    lam_star = (-b - std::sqrt(disc)) / (2.0 * a);
  } else {
    lam_star = -c / b;
  }
  lam_star = std::clamp(lam_star, sl, sr);

  const double p_star = fm_h - fE_h * lam_star;

  auto star_flux = [&](const SrhdSide& k, double sk) {
    const double vk = k.w.v(axis);
    const double Ek = k.u.tau + k.u.d;
    const double fac = (sk - vk) / (sk - lam_star);
    srhd::Cons star;
    star.d = k.u.d * fac;
    // Normal momentum gains the pressure jump; transverse just advect.
    const double mk = k.u.s(axis);
    const double m_star =
        (mk * (sk - vk) + p_star - k.w.p) / (sk - lam_star);
    star.sx = k.u.sx * fac;
    star.sy = k.u.sy * fac;
    star.sz = k.u.sz * fac;
    switch (axis) {
      case 0: star.sx = m_star; break;
      case 1: star.sy = m_star; break;
      default: star.sz = m_star; break;
    }
    const double E_star =
        (Ek * (sk - vk) + p_star * lam_star - k.w.p * vk) / (sk - lam_star);
    star.tau = E_star - star.d;
    return k.f + sk * (star - k.u);
  };

  if (lam_star >= 0.0) return star_flux(l, sl);
  return star_flux(r, sr);
}

/// SRMHD HLL with the exact upwind GLM coupling for (B_n, psi). The heavy
/// per-state maps (prim_to_cons / flux / fast_speeds) stay out-of-line in
/// src/srmhd/state.cpp, so every caller gets the same bits by construction;
/// only the combination arithmetic is inlined here.
inline srmhd::Cons srmhd_hll(const srmhd::Prim& wl, const srmhd::Prim& wr,
                             int axis, const eos::IdealGas& eos,
                             const srmhd::GlmParams& glm) {
  const srmhd::Cons ul = srmhd::prim_to_cons(wl, eos);
  const srmhd::Cons ur = srmhd::prim_to_cons(wr, eos);
  const srmhd::Cons fl = srmhd::flux(wl, ul, axis, eos);
  const srmhd::Cons fr = srmhd::flux(wr, ur, axis, eos);
  const srmhd::SignalSpeeds ssl = srmhd::fast_speeds(wl, axis, eos);
  const srmhd::SignalSpeeds ssr = srmhd::fast_speeds(wr, axis, eos);

  const double sl = std::min({0.0, ssl.lambda_minus, ssr.lambda_minus});
  const double sr = std::max({0.0, ssl.lambda_plus, ssr.lambda_plus});

  srmhd::Cons f;
  if (sl >= 0.0) {
    f = fl;
  } else if (sr <= 0.0) {
    f = fr;
  } else {
    const double inv = 1.0 / (sr - sl);
    f = inv * ((sr * fl) + (-sl) * fr + (sl * sr) * (ur - ul));
  }

  if (glm.enabled) {
    const double bn_l = wl.b(axis);
    const double bn_r = wr.b(axis);
    const auto g =
        srmhd::glm_interface_flux(bn_l, wl.psi, bn_r, wr.psi, glm.ch);
    switch (axis) {
      case 0: f.bx = g.flux_bn; break;
      case 1: f.by = g.flux_bn; break;
      default: f.bz = g.flux_bn; break;
    }
    f.psi = g.flux_psi;
  } else {
    f.psi = 0.0;
  }
  return f;
}

}  // namespace rshc::riemann::detail
