#pragma once
// Approximate Riemann solvers at zone interfaces (DESIGN.md system #9).
// SRHD: LLF (baseline), HLL, and the HLLC contact-restoring solver of
// Mignone & Bodo (2005). SRMHD: HLL with the exact upwind GLM coupling for
// the (B_n, psi) subsystem.

#include <string_view>

#include "rshc/eos/ideal_gas.hpp"
#include "rshc/srhd/state.hpp"
#include "rshc/srmhd/glm.hpp"
#include "rshc/srmhd/state.hpp"

namespace rshc::riemann {

// kExact samples the exact Riemann solution at the interface (Godunov's
// original scheme): the most accurate and most expensive option. Transverse
// velocities are advected passively from the upwind side of the contact —
// exact for v_t = 0 states, an approximation otherwise.
enum class Solver { kLLF, kHLL, kHLLC, kExact };

[[nodiscard]] std::string_view solver_name(Solver s);
[[nodiscard]] Solver parse_solver(std::string_view name);

/// Numerical SRHD flux at the interface with left state `wl` / right `wr`
/// (primitives; conservatives are derived internally) along `axis`.
[[nodiscard]] srhd::Cons solve_srhd(Solver s, const srhd::Prim& wl,
                                    const srhd::Prim& wr, int axis,
                                    const eos::IdealGas& eos);

/// Numerical SRMHD flux (HLL core + GLM interface coupling).
[[nodiscard]] srmhd::Cons solve_srmhd_hll(const srmhd::Prim& wl,
                                          const srmhd::Prim& wr, int axis,
                                          const eos::IdealGas& eos,
                                          const srmhd::GlmParams& glm);

}  // namespace rshc::riemann
