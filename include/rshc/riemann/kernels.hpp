#pragma once
// Batched SoA face kernels: limiter + Riemann solve + flux for a whole row
// of interfaces per call, consuming the reconstructed face-state rows the
// batched host pipeline already holds in SoA layout. Like the srhd/srmhd
// zone kernels, every kernel exists in two semantically identical variants
// compiled in separate translation units:
//   kernels::scalar — baseline flags (vectorization disabled)
//   kernels::simd   — -O3 -march=native, fully inlined solver cores
// Both carry -ffp-contract=off, so either variant is bitwise identical to
// the per-interface solve_srhd / solve_srmhd_hll reference path.
//
// Row layout: `wl` / `wr` are arrays of per-variable pointers in PrimVar
// order (left = right face of cell f, right = left face of cell f+1), `f`
// per-variable flux outputs in Var order, all rows of length n.

#include <cstddef>

#include "rshc/eos/ideal_gas.hpp"
#include "rshc/riemann/riemann.hpp"
#include "rshc/srmhd/glm.hpp"

namespace rshc::riemann::kernels {

// NOLINTBEGIN(bugprone-easily-swappable-parameters) — SoA rows by design.
#define RSHC_DECLARE_FACE_KERNELS                                             \
  /* SRHD faces: LLF / HLL / HLLC (kExact has no batched kernel). */          \
  void srhd_faces_n(std::size_t n, int axis, Solver solver,                   \
                    const double* const* wl, const double* const* wr,         \
                    double* const* f, const eos::IdealGas& eos,               \
                    double rho_floor, double p_floor);                        \
  /* SRMHD faces: HLL with the upwind GLM (B_n, psi) coupling. */             \
  void srmhd_faces_n(std::size_t n, int axis, const double* const* wl,        \
                     const double* const* wr, double* const* f,               \
                     const eos::IdealGas& eos, const srmhd::GlmParams& glm,   \
                     double rho_floor, double p_floor);

namespace scalar {
RSHC_DECLARE_FACE_KERNELS
}
namespace simd {
RSHC_DECLARE_FACE_KERNELS
}
#undef RSHC_DECLARE_FACE_KERNELS
// NOLINTEND(bugprone-easily-swappable-parameters)

}  // namespace rshc::riemann::kernels
