#pragma once
// Structured event journal (DESIGN.md system: observability — live layer).
// Append-only JSONL stream of run-lifecycle events: run start/end,
// checkpoint writes, rshc::check failures, and stall-watchdog firings.
// Every line is a self-contained JSON object carrying schema/version
// ("rshc.journal" v1), a trace-epoch timestamp, the recording thread's
// rank, and git-sha provenance, so a post-mortem can line journal events
// up with the Chrome trace and the telemetry stream from the same run.
//
// Compile gating mirrors obs.hpp: with RSHC_OBS=OFF everything here is an
// inline no-op stub and src/obs/journal.cpp compiles to an empty object
// (the CI obs-off nm lane proves it), so callers in io/bench/tests never
// need their own #if guards.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#ifndef RSHC_OBS_ENABLED
#define RSHC_OBS_ENABLED 1
#endif

#if RSHC_OBS_ENABLED

#include <atomic>
#include <fstream>

#include "rshc/common/mutex.hpp"

namespace rshc::obs::journal {

inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "rshc.journal";

/// Append `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Shared with the telemetry JSONL writer.
void append_json_escaped(std::string& out, std::string_view s);

/// One extra key/value pair on a journal event. The value is pre-rendered
/// to JSON text at construction (strings escaped and quoted, numbers
/// formatted, raw() passed through), so event() just concatenates.
struct Field {
  Field(std::string_view k, std::string_view v);
  Field(std::string_view k, const char* v) : Field(k, std::string_view(v)) {}
  Field(std::string_view k, double v);
  Field(std::string_view k, std::int64_t v);
  Field(std::string_view k, int v) : Field(k, static_cast<std::int64_t>(v)) {}

  /// `json` must already be valid JSON (e.g. an embedded registry
  /// snapshot); it is emitted verbatim.
  [[nodiscard]] static Field raw(std::string_view k, std::string_view json);

  std::string key;
  std::string rendered;  ///< JSON value text, ready to emit

 private:
  Field() = default;
};

/// Append-only JSONL sink. Thread-safe; every event() flushes, because the
/// most interesting lines (check failure, fatal watchdog) are written
/// moments before an abort.
class Journal {
 public:
  /// Process-wide journal. On first access it opens the path named by
  /// RSHC_JOURNAL_OUT, when set (missing parent directories are created);
  /// otherwise it stays closed until open() is called explicitly.
  static Journal& global();

  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (truncating) `path`, creating missing parent directories.
  /// Reopening closes the previous stream first.
  void open(const std::string& path) RSHC_EXCLUDES(mutex_);
  void close() RSHC_EXCLUDES(mutex_);
  [[nodiscard]] bool active() const RSHC_EXCLUDES(mutex_);

  /// Git revision stamped on every subsequent event ("unknown" until set).
  void set_provenance(std::string git_sha) RSHC_EXCLUDES(mutex_);

  /// Append one event line:
  ///   {"schema":"rshc.journal","v":1,"event":<type>,"ts_ms":...,
  ///    "rank":...,"git_sha":...,<fields...>}
  /// No-op when closed. Never throws: a journal write failure must not
  /// take down the run it is documenting.
  void event(std::string_view type,
             std::initializer_list<Field> fields = {}) noexcept
      RSHC_EXCLUDES(mutex_);

  /// Lines written since open() (test hook).
  [[nodiscard]] std::int64_t events_written() const noexcept;

 private:
  mutable Mutex mutex_;
  std::ofstream os_ RSHC_GUARDED_BY(mutex_);
  bool open_ RSHC_GUARDED_BY(mutex_) = false;
  std::string git_sha_ RSHC_GUARDED_BY(mutex_) = "unknown";
  // relaxed: test-visible event counter, eventual visibility only.
  std::atomic<std::int64_t> events_{0};
};

/// Install the rshc::check failure hook that mirrors every check violation
/// into Journal::global() as a "check_failure" event. Idempotent.
void install_check_hook() noexcept;

/// Convenience events on Journal::global().
void run_start(std::string_view name) noexcept;
void run_end(std::string_view name) noexcept;
void checkpoint(std::string_view path, double time) noexcept;

}  // namespace rshc::obs::journal

#else  // !RSHC_OBS_ENABLED

namespace rshc::obs::journal {

inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "rshc.journal";

struct Field {
  Field(std::string_view, std::string_view) {}
  Field(std::string_view, const char*) {}
  Field(std::string_view, double) {}
  Field(std::string_view, std::int64_t) {}
  Field(std::string_view, int) {}
  [[nodiscard]] static Field raw(std::string_view k, std::string_view) {
    return Field(k, 0);
  }
};

class Journal {
 public:
  static Journal& global() {
    static Journal j;
    return j;
  }
  void open(const std::string&) {}
  void close() {}
  [[nodiscard]] bool active() const { return false; }
  void set_provenance(std::string) {}
  void event(std::string_view, std::initializer_list<Field> = {}) noexcept {}
  [[nodiscard]] std::int64_t events_written() const noexcept { return 0; }
};

inline void install_check_hook() noexcept {}
inline void run_start(std::string_view) noexcept {}
inline void run_end(std::string_view) noexcept {}
inline void checkpoint(std::string_view, double) noexcept {}

}  // namespace rshc::obs::journal

#endif  // RSHC_OBS_ENABLED
