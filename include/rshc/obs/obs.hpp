#pragma once
// Umbrella header for the observability subsystem: metrics registry + span
// tracer + the instrumentation macros the rest of the library uses.
//
// Two gates, per DESIGN.md:
//  - compile time: the CMake option RSHC_OBS (default ON) defines
//    RSHC_OBS_ENABLED. With RSHC_OBS=OFF every macro below expands to
//    nothing, so instrumented hot paths carry no tracer calls at all (the
//    CI job checks the solver object code for leaked obs symbols).
//  - runtime: obs::enabled() (env RSHC_OBS=0 to disable) gates metric
//    accumulation; obs::tracing_active() (env RSHC_TRACE=1 to enable)
//    additionally gates span recording.
//
// The macros cache the Registry lookup in a function-local static, so the
// steady-state cost of a disabled-at-runtime site is one relaxed load and
// a branch; an enabled site adds two clock reads and a striped atomic add.

#include "rshc/obs/metrics.hpp"
#include "rshc/obs/trace.hpp"

#ifndef RSHC_OBS_ENABLED
#define RSHC_OBS_ENABLED 1
#endif

namespace rshc::obs {

/// Combined phase instrumentation: one clock-read pair feeds both a
/// registry TimeHist and (when tracing) a trace span.
class PhaseScope {
 public:
  PhaseScope(TimeHist& hist, const char* name, const char* cat,
             std::int64_t id = -1) noexcept {
    if (enabled()) {
      hist_ = &hist;
      name_ = name;
      cat_ = cat;
      id_ = id;
      trace_ = tracing_active();
      t0_ = now_ns();
    }
  }
  ~PhaseScope() {
    if (hist_ != nullptr) {
      const std::int64_t t1 = now_ns();
      hist_->record_ns(t1 - t0_);
      if (trace_) Tracer::global().record_span(name_, cat_, id_, t0_, t1);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TimeHist* hist_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t id_ = -1;
  std::int64_t t0_ = 0;
  bool trace_ = false;
};

/// Write the registry CSV and/or the Chrome trace JSON next to a run's
/// other outputs when the environment asks for it: RSHC_DUMP_METRICS=1
/// writes <prefix>.metrics.csv, RSHC_DUMP_TRACE=1 writes
/// <prefix>.trace.json. Used by the bench harnesses with
/// prefix = "bench_results/<id>". No-op otherwise.
void maybe_dump(const std::string& prefix);

}  // namespace rshc::obs

#define RSHC_OBS_CONCAT_INNER(a, b) a##b
#define RSHC_OBS_CONCAT(a, b) RSHC_OBS_CONCAT_INNER(a, b)

#if RSHC_OBS_ENABLED

/// Increment counter `name` (string literal) by n.
#define RSHC_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    if (::rshc::obs::enabled()) {                                       \
      static ::rshc::obs::Counter& rshc_obs_counter_site =              \
          ::rshc::obs::Registry::global().counter(name);                \
      rshc_obs_counter_site.add(n);                                     \
    }                                                                   \
  } while (false)

/// Set gauge `name` (string literal) to v.
#define RSHC_OBS_GAUGE(name, v)                                         \
  do {                                                                  \
    if (::rshc::obs::enabled()) {                                       \
      static ::rshc::obs::Gauge& rshc_obs_gauge_site =                  \
          ::rshc::obs::Registry::global().gauge(name);                  \
      rshc_obs_gauge_site.set(v);                                       \
    }                                                                   \
  } while (false)

/// Time the rest of the enclosing scope into TimeHist `name` and, when
/// tracing, emit a span (name/cat literals; id is a small integer arg).
#define RSHC_OBS_PHASE(name, cat, id)                                   \
  static ::rshc::obs::TimeHist& RSHC_OBS_CONCAT(rshc_obs_hist_,         \
                                                __LINE__) =             \
      ::rshc::obs::Registry::global().timer(name);                      \
  ::rshc::obs::PhaseScope RSHC_OBS_CONCAT(rshc_obs_phase_, __LINE__)(   \
      RSHC_OBS_CONCAT(rshc_obs_hist_, __LINE__), name, cat, id)

/// Trace-only span for the rest of the enclosing scope (no registry).
#define RSHC_TRACE_SCOPE(name, cat, id)                                 \
  ::rshc::obs::TraceScope RSHC_OBS_CONCAT(rshc_obs_trace_, __LINE__)(   \
      name, cat, id)

#else  // !RSHC_OBS_ENABLED

#define RSHC_OBS_COUNT(name, n) ((void)0)
#define RSHC_OBS_GAUGE(name, v) ((void)0)
#define RSHC_OBS_PHASE(name, cat, id) ((void)0)
#define RSHC_TRACE_SCOPE(name, cat, id) ((void)0)

#endif  // RSHC_OBS_ENABLED
