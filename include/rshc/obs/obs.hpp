#pragma once
// Umbrella header for the observability subsystem: metrics registry + span
// tracer + the instrumentation macros the rest of the library uses.
//
// Two gates, per DESIGN.md:
//  - compile time: the CMake option RSHC_OBS (default ON) defines
//    RSHC_OBS_ENABLED. With RSHC_OBS=OFF every macro below expands to
//    nothing, so instrumented hot paths carry no tracer calls at all (the
//    CI job checks the solver object code for leaked obs symbols).
//  - runtime: obs::enabled() (env RSHC_OBS=0 to disable) gates metric
//    accumulation; obs::tracing_active() (env RSHC_TRACE=1 to enable)
//    additionally gates span recording.
//
// The macros cache the Registry lookup in a function-local static, so the
// steady-state cost of a disabled-at-runtime site is one relaxed load and
// a branch; an enabled site adds two clock reads and a striped atomic add.

#include "rshc/obs/metrics.hpp"
#include "rshc/obs/trace.hpp"

#ifndef RSHC_OBS_ENABLED
#define RSHC_OBS_ENABLED 1
#endif

namespace rshc::obs {

/// Combined phase instrumentation: one clock-read pair feeds both a
/// registry TimeHist and (when tracing) a trace span. When the calling
/// thread is under a ScopedRegistry (rank scoping), the sample goes to the
/// scoped registry's timer of the same name instead of the cached global
/// one.
class PhaseScope {
 public:
  PhaseScope(TimeHist& hist, const char* name, const char* cat,
             std::int64_t id = -1) noexcept {
    if (enabled()) {
      // A scoped-registry timer lookup can allocate on first use; on
      // failure skip this scope's instrumentation (hist_ stays null)
      // rather than let the exception escape the noexcept constructor.
      try {
        Registry* scoped = Registry::scoped();
        hist_ = scoped != nullptr ? &scoped->timer(name) : &hist;
      } catch (...) {
        return;
      }
      name_ = name;
      cat_ = cat;
      id_ = id;
      trace_ = tracing_active();
      t0_ = now_ns();
    }
  }
  ~PhaseScope() {
    if (hist_ != nullptr) {
      const std::int64_t t1 = now_ns();
      hist_->record_ns(t1 - t0_);
      // Same contract as ~TraceScope: drop the span, never terminate.
      try {
        if (trace_) Tracer::global().record_span(name_, cat_, id_, t0_, t1);
      } catch (...) {
      }
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TimeHist* hist_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t id_ = -1;
  std::int64_t t0_ = 0;
  bool trace_ = false;
};

/// Write the registry CSV, the Chrome trace JSON, and/or a schema-versioned
/// run report next to a run's other outputs when the environment asks for
/// it: RSHC_DUMP_METRICS=1 writes <prefix>.metrics.csv, RSHC_DUMP_TRACE=1
/// writes <prefix>.trace.json, RSHC_DUMP_REPORT=1 writes
/// <prefix>.report.json (see rshc/obs/report.hpp for the schema). The
/// prefix's parent directory is created if absent. Used by the bench
/// harnesses with prefix = "bench_results/<id>". No-op otherwise.
void maybe_dump(const std::string& prefix);

// Forward declaration so RSHC_OBS_HEARTBEAT does not pull the full
// telemetry header (threads, streams) into every instrumented TU; the
// definition lives in rshc/obs/telemetry.hpp.
namespace telemetry {
void publish_heartbeat(std::int64_t step, double t, double dt,
                       double zones_per_sec) noexcept;
}  // namespace telemetry

}  // namespace rshc::obs

#define RSHC_OBS_CONCAT_INNER(a, b) a##b
#define RSHC_OBS_CONCAT(a, b) RSHC_OBS_CONCAT_INNER(a, b)

#if RSHC_OBS_ENABLED

/// Increment counter `name` (string literal) by n. A thread under a
/// ScopedRegistry reports into its scoped registry (per-rank view) via an
/// uncached lookup; all other threads keep the cached-static fast path.
#define RSHC_OBS_COUNT(name, n)                                         \
  do {                                                                  \
    if (::rshc::obs::enabled()) {                                       \
      if (::rshc::obs::Registry* rshc_obs_scoped_reg =                  \
              ::rshc::obs::Registry::scoped()) {                        \
        rshc_obs_scoped_reg->counter(name).add(n);                      \
      } else {                                                          \
        static ::rshc::obs::Counter& rshc_obs_counter_site =            \
            ::rshc::obs::Registry::global().counter(name);              \
        rshc_obs_counter_site.add(n);                                   \
      }                                                                 \
    }                                                                   \
  } while (false)

/// Set gauge `name` (string literal) to v (ScopedRegistry-aware, see
/// RSHC_OBS_COUNT).
#define RSHC_OBS_GAUGE(name, v)                                         \
  do {                                                                  \
    if (::rshc::obs::enabled()) {                                       \
      if (::rshc::obs::Registry* rshc_obs_scoped_reg =                  \
              ::rshc::obs::Registry::scoped()) {                        \
        rshc_obs_scoped_reg->gauge(name).set(v);                        \
      } else {                                                          \
        static ::rshc::obs::Gauge& rshc_obs_gauge_site =                \
            ::rshc::obs::Registry::global().gauge(name);                \
        rshc_obs_gauge_site.set(v);                                     \
      }                                                                 \
    }                                                                   \
  } while (false)

/// Time the rest of the enclosing scope into TimeHist `name` and, when
/// tracing, emit a span (name/cat literals; id is a small integer arg).
#define RSHC_OBS_PHASE(name, cat, id)                                   \
  static ::rshc::obs::TimeHist& RSHC_OBS_CONCAT(rshc_obs_hist_,         \
                                                __LINE__) =             \
      ::rshc::obs::Registry::global().timer(name);                      \
  ::rshc::obs::PhaseScope RSHC_OBS_CONCAT(rshc_obs_phase_, __LINE__)(   \
      RSHC_OBS_CONCAT(rshc_obs_hist_, __LINE__), name, cat, id)

/// Trace-only span for the rest of the enclosing scope (no registry).
#define RSHC_TRACE_SCOPE(name, cat, id)                                 \
  ::rshc::obs::TraceScope RSHC_OBS_CONCAT(rshc_obs_trace_, __LINE__)(   \
      name, cat, id)

/// Sender half of a cross-thread flow arrow: yields a process-unique flow
/// id (0 when tracing is off) to carry to the receiver, and records the
/// ph:"s" endpoint inside the currently open span.
#define RSHC_OBS_FLOW_BEGIN(name, cat) ::rshc::obs::flow_begin(name, cat)

/// Receiver half: records the ph:"f" endpoint for `flow_id` inside the
/// currently open span. Ignores flow id 0.
#define RSHC_OBS_FLOW_END(name, cat, flow_id) \
  ::rshc::obs::flow_end(name, cat, flow_id)

/// Publish a solver heartbeat (per-step live-telemetry gauges + watchdog
/// progress tick; see rshc/obs/telemetry.hpp). Arguments are unevaluated
/// under RSHC_OBS=OFF.
#define RSHC_OBS_HEARTBEAT(step, t, dt, zps) \
  ::rshc::obs::telemetry::publish_heartbeat(step, t, dt, zps)

#else  // !RSHC_OBS_ENABLED

#define RSHC_OBS_COUNT(name, n) ((void)0)
#define RSHC_OBS_GAUGE(name, v) ((void)0)
#define RSHC_OBS_PHASE(name, cat, id) ((void)0)
#define RSHC_TRACE_SCOPE(name, cat, id) ((void)0)
#define RSHC_OBS_FLOW_BEGIN(name, cat) (std::uint64_t{0})
#define RSHC_OBS_FLOW_END(name, cat, flow_id) ((void)(flow_id))
#define RSHC_OBS_HEARTBEAT(step, t, dt, zps) ((void)0)

#endif  // RSHC_OBS_ENABLED
