#pragma once
// Process-wide metrics registry (DESIGN.md system: observability).
// Three metric kinds — monotonically increasing Counters, last-write-wins
// Gauges, and log-binned TimeHists for durations — all accumulated
// lock-free: every metric is striped across cache-line-padded atomic cells
// and each thread updates its own stripe with relaxed atomics, so hot-path
// instrumentation never contends or blocks. snapshot() sums the stripes
// into a plain value object that can be queried, or serialized with
// to_json() / to_csv().
//
// Metrics are registered on first use by name and live for the life of the
// process: Registry::reset() zeroes values in place, so references handed
// out earlier (cached in `static` locals at instrumentation sites) stay
// valid forever.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rshc/common/mutex.hpp"

namespace rshc::obs {

/// Master runtime switch for metric accumulation (and a prerequisite for
/// tracing). Defaults to on; the environment variable RSHC_OBS=0 (or "off")
/// disables it at startup.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {

inline constexpr std::size_t kStripes = 32;

/// Stable per-thread stripe index (round-robin over kStripes).
[[nodiscard]] std::size_t thread_stripe() noexcept;

struct alignas(64) CounterCell {
  // relaxed: per-stripe metric accumulator; snapshot() sums stripes with
  // no ordering requirement beyond eventual visibility.
  std::atomic<std::int64_t> v{0};
};

/// Relaxed-atomic max/min for doubles via compare-exchange.
void atomic_double_max(std::atomic<double>& target, double v) noexcept;
void atomic_double_min(std::atomic<double>& target, double v) noexcept;

}  // namespace detail

/// Monotonic event count. add() is wait-free on the caller's stripe.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    cells_[detail::thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total() const noexcept;
  void reset() noexcept;

 private:
  std::array<detail::CounterCell, detail::kStripes> cells_;
};

/// Last-written scalar (queue depths, configuration echoes, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Duration histogram: power-of-two nanosecond bins (bin i covers
/// [2^i, 2^(i+1)) ns; the last bin is open-ended at ~2.1 s) plus exact
/// count / sum / min / max. Striped like Counter.
class TimeHist {
 public:
  static constexpr std::size_t kNumBins = 32;

  void record_ns(std::int64_t ns) noexcept;
  void record_seconds(double s) noexcept {
    record_ns(static_cast<std::int64_t>(s * 1e9));
  }

  [[nodiscard]] std::int64_t count() const noexcept;
  /// Total accumulated time in seconds.
  [[nodiscard]] double sum_seconds() const noexcept;
  [[nodiscard]] double min_seconds() const noexcept;  // 0 when empty
  [[nodiscard]] double max_seconds() const noexcept;
  [[nodiscard]] std::array<std::int64_t, kNumBins> bins() const noexcept;
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// covering log bin, clamped to the exact [min, max] envelope; the
  /// relative error is bounded by the factor-of-two bin width. 0 if empty.
  [[nodiscard]] double percentile_seconds(double q) const noexcept;
  void reset() noexcept;

  [[nodiscard]] static std::size_t bin_index(std::int64_t ns) noexcept;
  /// The estimator behind percentile_seconds(), usable on bins copied out
  /// of a Snapshot entry (same log-bin layout).
  [[nodiscard]] static double percentile_from_bins(
      std::span<const std::int64_t> bins, double q, double min_seconds,
      double max_seconds) noexcept;

 private:
  // All Cell members are relaxed accumulators (striped per thread);
  // min/max use relaxed compare-exchange loops (atomic_double_min/max)
  // and snapshot() only needs eventual visibility.
  struct alignas(64) Cell {
    // relaxed adds (see struct comment above).
    std::atomic<std::int64_t> count{0};
    std::atomic<double> sum_ns{0.0};
    // relaxed CAS loops; +inf start so the running atomic-min needs no
    // first-sample special case.
    std::atomic<double> min_ns{std::numeric_limits<double>::infinity()};
    // relaxed CAS loop, same contract as min_ns.
    std::atomic<double> max_ns{0.0};
    // relaxed: histogram bin counters, same visibility contract as above.
    std::array<std::atomic<std::int64_t>, kNumBins> bins{};
  };
  std::array<Cell, detail::kStripes> cells_;
};

/// Point-in-time copy of the whole registry; plain data, safe to keep.
struct Snapshot {
  struct Entry {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "timer"
    double value = 0.0;  ///< counter total / gauge value / timer sum (sec)
    std::int64_t count = 0;  ///< timer sample count (0 otherwise)
    double min = 0.0;        ///< timer min (sec)
    double max = 0.0;        ///< timer max (sec)
    double p50 = 0.0;        ///< timer log-bin quantile estimates (sec)
    double p90 = 0.0;
    double p99 = 0.0;
    std::vector<std::int64_t> bins;  ///< timer bins (empty otherwise)
  };
  std::vector<Entry> entries;  ///< sorted by (name, kind)

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;
  /// Counter total / gauge value / timer sum, or `fallback` if absent.
  [[nodiscard]] double value_or(std::string_view name,
                                double fallback = 0.0) const noexcept;

  [[nodiscard]] std::string to_json() const;
  /// CSV with header "name,kind,count,value,min,max,p50,p90,p99"
  /// (bins omitted; percentile columns are 0 for counters/gauges).
  [[nodiscard]] std::string to_csv() const;
};

/// Name -> metric store. Lookup takes a mutex (registration is cold);
/// instrumentation sites cache the returned reference in a static local so
/// the hot path touches only the metric's own atomics.
class Registry {
 public:
  static Registry& global();

  /// Thread-local override installed by ScopedRegistry; nullptr when the
  /// calling thread reports into the process-global registry. The
  /// instrumentation macros consult this first, so a rank thread under a
  /// ScopedRegistry gets its own registry view (rank-aware aggregation).
  [[nodiscard]] static Registry* scoped() noexcept;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name) RSHC_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) RSHC_EXCLUDES(mutex_);
  TimeHist& timer(std::string_view name) RSHC_EXCLUDES(mutex_);

  [[nodiscard]] Snapshot snapshot() const RSHC_EXCLUDES(mutex_);
  /// Zero every metric in place; references stay valid.
  void reset() RSHC_EXCLUDES(mutex_);

 private:
  friend class ScopedRegistry;
  // mutex_ guards only the name->metric maps (registration and snapshot
  // iteration); the metrics themselves are lock-free atomics, so returned
  // references are used outside the lock by design.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      RSHC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      RSHC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<TimeHist>, std::less<>> timers_
      RSHC_GUARDED_BY(mutex_);
};

/// RAII: route the calling thread's macro instrumentation into `reg`
/// instead of Registry::global() for the lifetime of the scope. Scopes
/// nest (the previous override is restored on destruction) and are strictly
/// per-thread; `reg` must outlive the scope. Scoped sites pay a map lookup
/// per hit instead of the cached-static fast path — fine for measurement
/// runs, which is what rank scoping exists for.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& reg) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

}  // namespace rshc::obs
