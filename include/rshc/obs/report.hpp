#pragma once
// Schema-versioned JSON run report (DESIGN.md system: observability).
// The single performance artifact the benches and CI gate on: one
// RunReport = provenance (git sha, build type/flags, hardware probe) plus
// per-phase statistics (count / sum / min / max and log-bin p50/p90/p99
// from TimeHist) and, for multi-rank runs, a per-phase min/mean/max/
// imbalance roll-up across ranks. bench/perf_suite writes it as
// BENCH_perf.json; tools/perf_report.py validates and diffs reports.
//
// Rank awareness has two halves:
//  - RankScope: RAII installed on each in-process rank thread; routes the
//    macro instrumentation into a per-rank Registry (a registry *view* per
//    Communicator rank) and labels the thread's trace events with
//    pid = rank.
//  - rank_rollup(): collective, allreduce-based fold of per-rank phase
//    sums into min/mean/max/imbalance — every rank gets the same answer,
//    mirroring how a real MPI job would aggregate. phases_from_ranks()
//    computes the same numbers in-process from the gathered snapshots.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rshc/comm/communicator.hpp"
#include "rshc/obs/metrics.hpp"

namespace rshc::obs::report {

/// Bump when the JSON layout changes; tools/perf_report.py refuses to
/// compare reports across schema versions.
inline constexpr int kSchemaVersion = 1;
inline constexpr std::string_view kSchemaName = "rshc.perf_report";

struct HardwareProbe {
  int hardware_threads = 0;
  long page_size = 0;
  std::string cpu_model;  ///< /proc/cpuinfo "model name"; "" if unknown
};

/// Best-effort host description (never throws; fields degrade to 0/"").
[[nodiscard]] HardwareProbe probe_hardware();

/// Cross-rank fold of one phase's per-rank total seconds.
struct RankStats {
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  /// max/mean — 1.0 is perfectly balanced, 0 when the phase never ran.
  double imbalance = 0.0;
};

/// One timer's report row.
struct PhaseStats {
  std::string name;
  std::int64_t count = 0;
  double sum_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  std::optional<RankStats> ranks;  ///< present for rank-resolved phases
};

struct RunReport {
  int schema_version = kSchemaVersion;
  std::string suite;  ///< producing harness, e.g. "perf_suite"
  std::string git_sha = "unknown";
  std::string build_type;
  std::string build_flags;
  int ranks = 1;
  HardwareProbe hardware;
  std::vector<PhaseStats> phases;
  std::vector<std::pair<std::string, double>> counters;

  [[nodiscard]] std::string to_json() const;
  void write_file(const std::string& path) const;
};

/// Timer entries of `snap` as report rows, optionally filtered to names
/// starting with `prefix`. Timers that never recorded a sample are
/// skipped (a phase macro touched at static-init time but routed to a
/// scoped registry leaves a zero-count global timer behind).
[[nodiscard]] std::vector<PhaseStats> phases_from_snapshot(
    const Snapshot& snap, std::string_view prefix = {});

/// Counter entries of `snap` as (name, value) rows, same prefix filter.
[[nodiscard]] std::vector<std::pair<std::string, double>>
counters_from_snapshot(const Snapshot& snap, std::string_view prefix = {});

/// Merge per-rank snapshots (index = rank) into report rows: counts and
/// sums add up, min/max fold, percentiles come from the summed bins, and
/// each row carries the cross-rank RankStats. `name_prefix` is prepended
/// to every row name so rank-resolved phases cannot collide with
/// single-process rows of the same timer.
[[nodiscard]] std::vector<PhaseStats> phases_from_ranks(
    std::span<const Snapshot> per_rank, std::string_view name_prefix = {});

/// Collective allreduce-based roll-up: every rank passes its own
/// (scoped-registry) snapshot and the agreed phase-name list; all ranks
/// return identical stats. Costs three allreduces regardless of how many
/// phases are rolled up.
[[nodiscard]] inline std::vector<std::pair<std::string, RankStats>>
rank_rollup(comm::Communicator& comm, const Snapshot& local,
            const std::vector<std::string>& phase_names) {
  std::vector<double> sums(phase_names.size());
  for (std::size_t i = 0; i < phase_names.size(); ++i) {
    sums[i] = local.value_or(phase_names[i]);
  }
  std::vector<double> mins = sums;
  std::vector<double> maxs = sums;
  std::vector<double> totals = sums;
  comm.allreduce(std::span<double>(mins), comm::ReduceOp::kMin);
  comm.allreduce(std::span<double>(maxs), comm::ReduceOp::kMax);
  comm.allreduce(std::span<double>(totals), comm::ReduceOp::kSum);
  std::vector<std::pair<std::string, RankStats>> out;
  out.reserve(phase_names.size());
  const auto nranks = static_cast<double>(comm.size());
  for (std::size_t i = 0; i < phase_names.size(); ++i) {
    RankStats s;
    s.min_s = mins[i];
    s.max_s = maxs[i];
    s.mean_s = totals[i] / nranks;
    s.imbalance = s.mean_s > 0.0 ? s.max_s / s.mean_s : 0.0;
    out.emplace_back(phase_names[i], s);
  }
  return out;
}

/// RAII per-rank observation scope for in-process ranks: routes this
/// thread's metrics into `reg` (see ScopedRegistry), labels its trace
/// events with pid = rank, and registers "rank <r>" process metadata so
/// exported traces show named rank tracks. Install one at the top of each
/// run_world body; `reg` must outlive the scope.
class RankScope {
 public:
  RankScope(Registry& reg, int rank);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  ScopedRegistry registry_scope_;
  int prev_rank_;
};

}  // namespace rshc::obs::report
