#pragma once
// Span tracer (DESIGN.md system: observability). RAII TraceScope records
// (name, category, id, begin, end) spans into per-thread ring buffers owned
// by the process-wide Tracer; export produces Chrome trace-event JSON
// (load in chrome://tracing or https://ui.perfetto.dev) so task-graph
// execution, halo exchanges, and offload transfers can be inspected on a
// timeline.
//
// Span names and categories must be string literals (or otherwise
// static-duration strings): the ring stores the pointers, never copies.
// Recording is gated by tracing_active() — a couple of relaxed atomic
// loads — and each thread writes only its own ring, so tracing that is
// compiled in but switched off costs one branch per scope.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rshc/common/mutex.hpp"

namespace rshc::obs {

/// True when spans are being recorded: requires the master obs switch
/// (enabled()) plus the tracing flag. The flag defaults to off; the
/// environment variable RSHC_TRACE=1 (or set_tracing(true)) turns it on.
[[nodiscard]] bool tracing_active() noexcept;
void set_tracing(bool on) noexcept;

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::int64_t now_ns() noexcept;

/// Rank label used as the Chrome-trace pid of events recorded by the
/// calling thread (default 0). In-process ranks set it (via
/// report::RankScope) so multi-rank traces separate into per-rank
/// process tracks in Perfetto.
void set_thread_rank(int rank) noexcept;
[[nodiscard]] int thread_rank() noexcept;

/// What a TraceEvent represents in the Chrome trace-event model.
enum class EventKind : std::uint8_t {
  kSpan,       ///< complete event, ph:"X"
  kFlowStart,  ///< flow begin, ph:"s" (binds to the enclosing span)
  kFlowEnd,    ///< flow end, ph:"f" with bp:"e"
  kCounter,    ///< counter sample, ph:"C" (value tracks on the timeline)
};

struct TraceEvent {
  const char* name = nullptr;  ///< static-duration string
  const char* cat = nullptr;   ///< static-duration string
  std::int64_t id = -1;        ///< optional small argument (block id, rank)
  std::uint64_t flow_id = 0;   ///< nonzero pairing id for flow events
  std::int64_t t0_ns = 0;      ///< span begin, now_ns() clock
  std::int64_t t1_ns = 0;      ///< span end (== t0_ns for flow events)
  double value = 0.0;          ///< sampled value for counter events
  std::uint32_t tid = 0;       ///< recording thread (registration order)
  std::int32_t pid = 0;        ///< rank label (thread_rank() at record time)
  EventKind kind = EventKind::kSpan;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append a completed span to the calling thread's ring.
  void record_span(const char* name, const char* cat, std::int64_t id,
                   std::int64_t t0_ns, std::int64_t t1_ns);

  /// Append one endpoint of a cross-thread flow arrow (timestamped now).
  /// Outside the obs module use the RSHC_OBS_FLOW_* macros, which also
  /// compile away under RSHC_OBS=OFF.
  void record_flow(const char* name, const char* cat, std::uint64_t flow_id,
                   EventKind kind);

  /// Append a counter sample (ph:"C", timestamped now) to the calling
  /// thread's ring, attributed to process track `pid` (a rank; pass -1 to
  /// use the calling thread's rank). Counter names may be dynamic strings
  /// — e.g. metric names from a Registry snapshot — so they are interned
  /// into tracer-owned storage the first time they appear.
  void record_counter(std::string_view name, const char* cat, double value,
                      int pid = -1) RSHC_EXCLUDES(mutex_);

  /// Perfetto metadata (ph:"M"): label the process track for `pid`
  /// (a rank) and the calling thread's track. Unregistered pids/tids fall
  /// back to "rank <pid>" / "tid <tid>" at export time.
  void set_process_name(int pid, std::string name) RSHC_EXCLUDES(mutex_);
  void set_current_thread_name(std::string name) RSHC_EXCLUDES(mutex_);

  /// All buffered events merged across threads, sorted by begin time.
  [[nodiscard]] std::vector<TraceEvent> events() const RSHC_EXCLUDES(mutex_);

  /// Chrome trace-event JSON ({"traceEvents":[...]}, "X" complete events).
  void write_chrome_json(std::ostream& os) const RSHC_EXCLUDES(mutex_);
  void write_chrome_json_file(const std::string& path) const
      RSHC_EXCLUDES(mutex_);

  /// Drop all buffered events (rings stay allocated).
  void clear() RSHC_EXCLUDES(mutex_);

  /// Ring capacity in events per thread; applies to new rings and resets
  /// existing ones. Default 65536. When a ring is full the oldest events
  /// are overwritten and dropped() grows.
  void set_ring_capacity(std::size_t events_per_thread) RSHC_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const noexcept RSHC_EXCLUDES(mutex_);

 private:
  struct Ring;
  Ring& my_ring() RSHC_EXCLUDES(mutex_);

  // Lock order: mutex_ may be held while taking a Ring::mutex (export /
  // clear / resize iterate the rings), never the reverse — a ring writer
  // (record_span) holds only its own ring's mutex.
  const char* intern_name(std::string_view name) RSHC_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ RSHC_GUARDED_BY(mutex_);
  std::size_t capacity_ RSHC_GUARDED_BY(mutex_) = 65536;
  std::map<int, std::string> process_names_ RSHC_GUARDED_BY(mutex_);
  std::map<std::uint32_t, std::string> thread_names_ RSHC_GUARDED_BY(mutex_);
  // Interned counter names: std::set nodes are stable, so the c_str()
  // pointers handed to TraceEvent::name stay valid for the tracer's life.
  std::set<std::string, std::less<>> interned_ RSHC_GUARDED_BY(mutex_);
};

/// Begin a cross-thread flow (sender side): records a ph:"s" event bound
/// to the enclosing span and returns a process-unique id to hand to the
/// receiver. Returns 0 — and records nothing — when tracing is inactive.
[[nodiscard]] std::uint64_t flow_begin(const char* name, const char* cat);

/// End a flow begun by flow_begin (receiver side). An id of 0 is ignored,
/// so a message sent before tracing was switched on never emits a
/// dangling flow terminator.
void flow_end(const char* name, const char* cat, std::uint64_t id);

/// RAII span: measures construction-to-destruction and records it if
/// tracing was active at construction.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "rshc",
                      std::int64_t id = -1) noexcept {
    if (tracing_active()) {
      name_ = name;
      cat_ = cat;
      id_ = id;
      t0_ = now_ns();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      // Swallow allocation failure from a first-touch ring registration:
      // dropping one span beats terminating the traced program.
      try {
        Tracer::global().record_span(name_, cat_, id_, t0_, now_ns());
      } catch (...) {
      }
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t id_ = -1;
  std::int64_t t0_ = 0;
};

}  // namespace rshc::obs
