#pragma once
// Live run telemetry (DESIGN.md system: observability — live layer).
// Three cooperating pieces on top of the metrics Registry / span Tracer /
// event Journal:
//
//  - Sampler: a background thread that snapshots the Registry every
//    RSHC_TELEMETRY_INTERVAL_MS into a bounded ring, streams each sample
//    as one "rshc.telemetry" v1 JSONL line (RSHC_TELEMETRY_OUT), and —
//    when tracing is active — re-emits a watch list of metrics as Chrome
//    trace counter events (ph:"C"), so byte counters and step-rate gauges
//    line up with the phase spans on one timeline.
//  - Solver heartbeat: FvSolver publishes per-step progress (step, t, dt,
//    zones/sec, halo + device transfer bytes) as gauges, rank-scoped under
//    a ScopedRegistry like every other metric, plus a process-global
//    progress ticker the watchdog watches.
//  - Watchdog: a background thread that declares a stall when work is
//    visibly pending (task-graph nodes, mailbox messages — see the
//    introspect hooks in parallel/task_graph.hpp, parallel/thread_pool.hpp
//    and comm/communicator.hpp) but no progress signal has moved for
//    RSHC_WATCHDOG_TIMEOUT_MS, then journals a diagnostic dump and, per
//    RSHC_WATCHDOG=off|warn|fatal, stays quiet, warns (rate-limited), or
//    aborts the run.
//
// Compile gating mirrors obs.hpp: with RSHC_OBS=OFF everything here is an
// inline no-op stub and src/obs/telemetry.cpp compiles to an empty object
// (the CI obs-off nm lane proves it).

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rshc/obs/metrics.hpp"

#ifndef RSHC_OBS_ENABLED
#define RSHC_OBS_ENABLED 1
#endif

#if RSHC_OBS_ENABLED
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <thread>
#include <utility>

#include "rshc/common/log.hpp"
#include "rshc/common/mutex.hpp"
#endif

namespace rshc::obs::telemetry {

inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kSchemaName = "rshc.telemetry";
inline constexpr int kDefaultIntervalMs = 250;
inline constexpr int kDefaultWatchdogTimeoutMs = 5000;

/// Most recent solver heartbeat (process-wide, last writer wins; on a
/// multi-rank run each rank also carries the same values as rank-scoped
/// solver.hb.* gauges).
struct Heartbeat {
  std::int64_t step = 0;       ///< solver steps taken
  double t = 0.0;              ///< simulation time
  double dt = 0.0;             ///< last step size
  double zones_per_sec = 0.0;  ///< interior zone-updates/sec (x RK stages)
  double halo_bytes = 0.0;     ///< cumulative halo.bytes_sent
  double h2d_bytes = 0.0;      ///< cumulative device.h2d.bytes
  double d2h_bytes = 0.0;      ///< cumulative device.d2h.bytes
};

/// One Registry snapshot taken by the Sampler.
struct Sample {
  std::int64_t seq = 0;    ///< 0-based take order (gap = dropped sample)
  std::int64_t ts_ms = 0;  ///< trace-epoch milliseconds (obs::now_ns())
  int pid = 0;             ///< rank track (0 = process-global registry)
  Snapshot snapshot;
};

struct SamplerOptions {
  bool enabled = true;  ///< RSHC_TELEMETRY=0/off disables the sampler
  std::chrono::milliseconds interval{kDefaultIntervalMs};
  std::size_t ring_capacity = 256;
  std::string jsonl_path;  ///< "" = keep samples in the ring only
  /// Metric names re-emitted as ph:"C" counter events while tracing.
  std::vector<std::string> counter_tracks;
};

enum class WatchdogPolicy { kOff, kWarn, kFatal };

struct WatchdogOptions {
  WatchdogPolicy policy = WatchdogPolicy::kOff;
  std::chrono::milliseconds timeout{kDefaultWatchdogTimeoutMs};
  /// Poll period; zero means derive timeout/4 (clamped to >= 10ms), which
  /// bounds detection latency by ~1.25x the timeout.
  std::chrono::milliseconds poll{0};
};

#if RSHC_OBS_ENABLED

/// Default ph:"C" watch list: transfer byte counters + heartbeat gauges.
[[nodiscard]] std::vector<std::string> default_counter_tracks();

/// Options from RSHC_TELEMETRY / RSHC_TELEMETRY_INTERVAL_MS /
/// RSHC_TELEMETRY_OUT, with default_counter_tracks().
[[nodiscard]] SamplerOptions sampler_options_from_env();

/// "off"/"0"/"false" -> kOff, "fatal" -> kFatal, anything else -> kWarn.
[[nodiscard]] WatchdogPolicy parse_watchdog_policy(std::string_view s);

/// Options from RSHC_WATCHDOG / RSHC_WATCHDOG_TIMEOUT_MS (policy defaults
/// to kOff when RSHC_WATCHDOG is unset).
[[nodiscard]] WatchdogOptions watchdog_options_from_env();

/// Record a solver step: publishes solver.hb.* gauges into the calling
/// thread's registry (scoped or global), folds in the current transfer
/// byte counters, updates last_heartbeat(), and ticks the watchdog's
/// progress counter. No-op when obs is disabled at runtime.
void publish_heartbeat(std::int64_t step, double t, double dt,
                       double zones_per_sec) noexcept;

/// Monotonic count of publish_heartbeat() calls (watchdog progress).
[[nodiscard]] std::uint64_t heartbeat_ticks() noexcept;
[[nodiscard]] Heartbeat last_heartbeat();

/// Background Registry sampler. start()/stop() manage the thread; the
/// object must outlive it. sample_now() takes one synchronous sample and
/// is valid with or without the thread (tests use it for determinism).
class Sampler {
 public:
  explicit Sampler(SamplerOptions opt = sampler_options_from_env());
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Also sample `reg` (e.g. a rank's scoped registry), attributing its
  /// counter events and JSONL lines to rank track `pid`. The registry
  /// must stay alive until detach_registries() or stop(). Thread-safe.
  void attach_registry(int pid, const Registry* reg) RSHC_EXCLUDES(mutex_);
  void detach_registries() RSHC_EXCLUDES(mutex_);

  /// Spawn the sampling thread (no-op when !opt.enabled or running).
  void start();
  /// Join the thread and take one final sample so short runs always
  /// record their end state. Safe to call repeatedly; the destructor
  /// calls it.
  void stop() noexcept;

  void sample_now() RSHC_EXCLUDES(mutex_);

  /// Ring contents, oldest first (global + attached registries
  /// interleaved in take order).
  [[nodiscard]] std::vector<Sample> samples() const RSHC_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t samples_taken() const noexcept;

 private:
  void loop();
  void open_stream();

  SamplerOptions opt_;
  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  bool stop_requested_ RSHC_GUARDED_BY(mutex_) = false;
  std::vector<std::pair<int, const Registry*>> extra_ RSHC_GUARDED_BY(mutex_);
  std::vector<Sample> ring_ RSHC_GUARDED_BY(mutex_);
  std::size_t ring_next_ RSHC_GUARDED_BY(mutex_) = 0;
  std::uint64_t ring_written_ RSHC_GUARDED_BY(mutex_) = 0;
  std::int64_t seq_ RSHC_GUARDED_BY(mutex_) = 0;
  std::ofstream os_ RSHC_GUARDED_BY(mutex_);
  bool stream_open_ RSHC_GUARDED_BY(mutex_) = false;
  // relaxed: test-visible sample counter, eventual visibility only.
  std::atomic<std::int64_t> taken_{0};
  std::thread thread_;  // managed by start()/stop() only
};

/// Background stall detector; see the header comment for the model.
/// start()/stop() manage the thread; the destructor stops it.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions opt = watchdog_options_from_env());
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop() noexcept;

  [[nodiscard]] std::int64_t stalls_detected() const noexcept;

  /// Sum of every progress ticker the watchdog watches (heartbeats, graph
  /// nodes finished, pool tasks finished, messages received).
  [[nodiscard]] static std::uint64_t progress_signal() noexcept;
  /// Work visibly pending right now (graph nodes + mailbox messages).
  [[nodiscard]] static std::int64_t pending_work() noexcept;

 private:
  void loop();
  void fire(std::int64_t idle_ms);

  WatchdogOptions opt_;
  log::RateLimit warn_limit_;
  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  bool stop_requested_ RSHC_GUARDED_BY(mutex_) = false;
  // relaxed: test-visible stall counter, eventual visibility only.
  std::atomic<std::int64_t> stalls_{0};
  std::thread thread_;  // managed by start()/stop() only
};

#else  // !RSHC_OBS_ENABLED

inline std::vector<std::string> default_counter_tracks() { return {}; }
inline SamplerOptions sampler_options_from_env() { return {}; }
inline WatchdogPolicy parse_watchdog_policy(std::string_view) {
  return WatchdogPolicy::kOff;
}
inline WatchdogOptions watchdog_options_from_env() { return {}; }

inline void publish_heartbeat(std::int64_t, double, double, double) noexcept {
}
inline std::uint64_t heartbeat_ticks() noexcept { return 0; }
inline Heartbeat last_heartbeat() { return {}; }

class Sampler {
 public:
  explicit Sampler(SamplerOptions = {}) {}
  void attach_registry(int, const Registry*) {}
  void detach_registries() {}
  void start() {}
  void stop() noexcept {}
  void sample_now() {}
  [[nodiscard]] std::vector<Sample> samples() const { return {}; }
  [[nodiscard]] std::int64_t samples_taken() const noexcept { return 0; }
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions = {}) {}
  void start() {}
  void stop() noexcept {}
  [[nodiscard]] std::int64_t stalls_detected() const noexcept { return 0; }
  [[nodiscard]] static std::uint64_t progress_signal() noexcept { return 0; }
  [[nodiscard]] static std::int64_t pending_work() noexcept { return 0; }
};

#endif  // RSHC_OBS_ENABLED

}  // namespace rshc::obs::telemetry
