#pragma once
// Cartesian process topology (MPI_Cart_create analogue): factorizes the
// world size into a near-cubic grid, maps rank <-> coordinates, and answers
// neighbour queries with optional periodic wraparound.

#include <array>
#include <optional>

namespace rshc::comm {

class CartTopology {
 public:
  /// Build an `ndim`-dimensional topology for `size` ranks. `requested`
  /// entries > 0 are honoured (their product must divide `size`); entries
  /// == 0 are filled greedily toward a balanced decomposition.
  CartTopology(int size, int ndim, std::array<int, 3> requested = {0, 0, 0},
               std::array<bool, 3> periodic = {true, true, true});

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int ndim() const { return ndim_; }
  [[nodiscard]] const std::array<int, 3>& dims() const { return dims_; }
  [[nodiscard]] bool periodic(int axis) const {
    return periodic_[static_cast<std::size_t>(axis)];
  }

  [[nodiscard]] std::array<int, 3> coords(int rank) const;
  [[nodiscard]] int rank_of(const std::array<int, 3>& coords) const;

  /// Neighbour of `rank` displaced by `disp` (±1 typical) along `axis`;
  /// nullopt when the displacement runs off a non-periodic edge.
  [[nodiscard]] std::optional<int> neighbor(int rank, int axis,
                                            int disp) const;

 private:
  int size_;
  int ndim_;
  std::array<int, 3> dims_;
  std::array<bool, 3> periodic_;
};

}  // namespace rshc::comm
