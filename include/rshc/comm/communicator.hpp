#pragma once
// MPI-style message passing between "ranks" that live in one process
// (DESIGN.md substitution for a real interconnect). Each rank is a thread
// with a mailbox; send() copies the payload into the destination mailbox and
// recv() blocks until a matching (source, tag) message arrives. A transfer
// model (latency + bandwidth) can be injected so overlap experiments (F6)
// see realistic message costs: a message only becomes *receivable* after its
// modeled flight time has elapsed.
//
// The subset implemented mirrors the dozen-routine core of MPI that the LLNL
// tutorial calls out: send/recv, sendrecv, barrier, allreduce, bcast, gather.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/common/mutex.hpp"

namespace rshc::comm {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Modeled network cost per message; zero-initialized = instantaneous.
struct TransferModel {
  double latency_sec = 0.0;        ///< per-message latency
  double bandwidth_bytes_per_sec = 0.0;  ///< 0 => infinite
  /// Extra per-message delay drawn deterministically from [0, jitter_sec):
  /// message `seq` gets splitmix64(seq) scaled into the window, so delivery
  /// order gets scrambled under test without losing reproducibility.
  double jitter_sec = 0.0;

  [[nodiscard]] std::chrono::steady_clock::duration flight_time(
      std::size_t bytes, std::uint64_t seq = 0) const;
};

enum class ReduceOp { kSum, kMin, kMax };

class World;
class CommFuture;

namespace detail {
/// Opaque shared state behind a CommFuture (defined in communicator.cpp).
struct CommFutureState;
}  // namespace detail

/// Per-rank handle; cheap to copy within the owning rank's thread.
class Communicator {
 public:
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  // --- point to point ------------------------------------------------
  void send_bytes(int dest, int tag, std::span<const std::byte> payload);
  /// Blocking receive into `out`; message size must match exactly.
  /// Returns the actual source (useful with kAnySource).
  int recv_bytes(int source, int tag, std::span<std::byte> out);
  /// Blocking receive of unknown size.
  std::vector<std::byte> recv_any_bytes(int source, int tag,
                                        int* actual_source = nullptr);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::span<const T>(&v, 1));
  }
  template <typename T>
  int recv(int source, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes(source, tag, std::as_writable_bytes(out));
  }
  template <typename T>
  T recv_value(int source, int tag) {
    T v{};
    recv(source, tag, std::span<T>(&v, 1));
    return v;
  }

  /// Exchange: send to `dest` and receive from `src` with the same tag.
  /// Sends first (sends never block), so symmetric exchanges cannot deadlock.
  template <typename T>
  void sendrecv(int dest, std::span<const T> sendbuf, int src,
                std::span<T> recvbuf, int tag) {
    send(dest, tag, sendbuf);
    recv(src, tag, recvbuf);
  }

  // --- non-blocking point to point ------------------------------------
  /// Start a send. Sends never block in this model (the payload is copied
  /// into the destination mailbox immediately), so the returned future is
  /// already complete — it exists so call sites read symmetrically with
  /// irecv and keep working if sends ever gain real asynchrony.
  CommFuture isend_bytes(int dest, int tag, std::span<const std::byte> payload);
  /// Post a receive into `out` and return immediately. The message is
  /// matched and copied out lazily, when the future is completed via
  /// test()/wait()/wait_any(); `out` must stay alive and unread until then.
  CommFuture irecv_bytes(int source, int tag, std::span<std::byte> out);

  // (defined after CommFuture below — the return type must be complete)
  template <typename T>
  CommFuture isend(int dest, int tag, std::span<const T> data);
  template <typename T>
  CommFuture irecv(int source, int tag, std::span<T> out);

  // --- collectives ----------------------------------------------------
  void barrier();
  double allreduce(double value, ReduceOp op);
  void allreduce(std::span<double> values, ReduceOp op);
  /// Root's `data` is broadcast into every rank's `data`.
  void bcast(std::span<double> data, int root);
  /// Gathers each rank's scalar to root (returned vector is empty elsewhere).
  std::vector<double> gather(double value, int root);

 private:
  World* world_;
  int rank_;
};

/// Waitable handle for a non-blocking comm operation (MPI_Request
/// analogue). Completion is *lazy*: the matching message is taken out of
/// the owning rank's mailbox by whichever of test()/wait()/wait_any()
/// observes it first, preserving the blocking path's semantics exactly —
/// FIFO head-of-line matching per (source, tag), modeled flight time
/// honoured, trace flow pairing closed and the watchdog's received counter
/// bumped at the moment the message is actually taken.
///
/// A future is owned by the rank that created it and its methods must be
/// called from that rank's thread (same single-consumer rule as recv).
/// Internal state still carries its own mutex (see State in the .cpp) so
/// done/source transitions are annotated for the thread-safety lanes; the
/// mailbox lock is always released before the state lock is taken, so the
/// two levels cannot deadlock.
class CommFuture {
 public:
  CommFuture();                              ///< empty; valid() == false
  ~CommFuture();
  CommFuture(CommFuture&&) noexcept;
  CommFuture& operator=(CommFuture&&) noexcept;
  CommFuture(const CommFuture&) = delete;
  CommFuture& operator=(const CommFuture&) = delete;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// True once the operation completed (message copied into `out`).
  [[nodiscard]] bool done() const;
  /// Try to complete without blocking. Returns done().
  bool test();
  /// Block until complete; returns the actual source rank (kAnySource
  /// receives resolve here). No-op if already done.
  int wait();
  /// Actual source rank; requires done().
  [[nodiscard]] int source() const;

  /// Block until at least one future completes; returns its index within
  /// `futures`. Already-done entries are returned immediately (lowest index
  /// first). All pending entries must belong to the same rank. When several
  /// patterns could match the same mailbox message, the lowest-index
  /// pending future wins — completion order is a property of message
  /// readiness, not of the order the futures were posted in.
  static std::size_t wait_any(std::span<CommFuture* const> futures);
  /// wait() every future (any order; result is order-independent).
  static void wait_all(std::span<CommFuture* const> futures);

 private:
  friend class Communicator;
  explicit CommFuture(std::unique_ptr<detail::CommFutureState> state);

  std::unique_ptr<detail::CommFutureState> state_;
};

template <typename T>
CommFuture Communicator::isend(int dest, int tag, std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  return isend_bytes(dest, tag, std::as_bytes(data));
}

template <typename T>
CommFuture Communicator::irecv(int source, int tag, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>);
  return irecv_bytes(source, tag, std::as_writable_bytes(out));
}

/// Owns the mailboxes and collective state for `size` ranks.
class World {
 public:
  explicit World(int size, TransferModel model = {});

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Communicator communicator(int rank) {
    RSHC_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
    return Communicator(*this, rank);
  }

  /// Diagnostics for the distributed experiments.
  [[nodiscard]] std::size_t total_messages() const;
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  friend class Communicator;
  friend class CommFuture;
  friend struct detail::CommFutureState;

  struct Message {
    int source;
    int tag;
    std::vector<std::byte> payload;
    std::chrono::steady_clock::time_point ready_at;
    /// Trace flow pairing id carried from send to recv (0 = not traced).
    std::uint64_t flow_id = 0;
  };

  struct Mailbox {
    Mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages RSHC_GUARDED_BY(mutex);
  };

  /// (source, tag) matching pattern for multi-receive waits; either field
  /// may be the kAny* wildcard.
  struct RecvPattern {
    int source;
    int tag;
  };

  static bool matches(const Message& m, int source, int tag);

  void deliver(int dest, Message msg);
  Message take_matching(int me, int source, int tag);
  /// Non-blocking take: succeeds only when the pattern's FIFO head-of-line
  /// match exists *and* its modeled flight time has elapsed (a ready later
  /// message never overtakes an in-flight earlier one).
  bool try_take_matching(int me, int source, int tag, Message& out);
  /// Block until any pattern's head-of-line match is ready; take it and
  /// return the pattern index (lowest index wins ties).
  std::size_t take_any(int me, std::span<const RecvPattern> patterns,
                       Message& out);

  int size_;
  TransferModel model_;
  // Set up in the constructor, immutable afterwards (per-element state is
  // behind each Mailbox's own mutex).
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Collective state (monitor-style, generation-counted for reuse).
  Mutex coll_mutex_;
  std::condition_variable coll_cv_;
  long long coll_generation_ RSHC_GUARDED_BY(coll_mutex_) = 0;
  int coll_count_ RSHC_GUARDED_BY(coll_mutex_) = 0;
  std::vector<double> coll_buffer_ RSHC_GUARDED_BY(coll_mutex_);
  std::vector<double> coll_result_ RSHC_GUARDED_BY(coll_mutex_);

  // relaxed: traffic statistics only; read after join/barrier, no
  // synchronization is derived from them.
  std::atomic<std::size_t> msg_count_{0};
  std::atomic<std::size_t> byte_count_{0};
  // relaxed: per-message sequence feeding the deterministic jitter hash.
  std::atomic<std::uint64_t> send_seq_{0};
};

/// Spawn `size` rank threads each running `body(comm)`; joins all and
/// rethrows the first exception raised by any rank.
void run_world(int size, const std::function<void(Communicator&)>& body,
               TransferModel model = {});

/// Mailbox introspection for the stall watchdog (obs::telemetry): messages
/// sitting delivered-but-unreceived across all Worlds, and a monotonic
/// received count. Deliberately obs-free so the hooks exist in all build
/// configurations.
namespace introspect {

// relaxed: watchdog diagnostics only; readers tolerate stale values.
inline std::atomic<long long>& mailbox_depth_counter() noexcept {
  static std::atomic<long long> depth{0};
  return depth;
}

// relaxed: monotonic progress ticker for the watchdog; no ordering needed.
inline std::atomic<long long>& received_counter() noexcept {
  static std::atomic<long long> received{0};
  return received;
}

/// Messages currently waiting in some rank's mailbox.
[[nodiscard]] inline long long mailbox_depth() noexcept {
  return mailbox_depth_counter().load(std::memory_order_relaxed);
}

/// Monotonic count of messages actually received (taken out of a mailbox).
[[nodiscard]] inline long long messages_received() noexcept {
  return received_counter().load(std::memory_order_relaxed);
}

}  // namespace introspect

}  // namespace rshc::comm
