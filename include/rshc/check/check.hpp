#pragma once
// Runtime correctness checker (rshc::check) — the compiled-away sibling of
// the observability layer. Where rshc::obs measures, rshc::check *asserts*:
// physical-state invariants at the c2p and flux boundaries (finite, p > 0,
// rho > 0, |v| < 1, bounded Lorentz factor), task-graph scheduling
// invariants (pending counts never negative, every node fires exactly
// once), and halo-buffer lifecycle rules (a recv buffer may not be read
// before its exchange completes — see halo_guard.hpp).
//
// Gating mirrors RSHC_OBS (see obs/obs.hpp):
//  - compile time: the CMake option RSHC_CHECKS (AUTO = ON in Debug)
//    defines RSHC_CHECKS_ENABLED. With it 0, every macro below expands to
//    ((void)0) and the inline helpers are never referenced, so Release
//    object code for the solver, c2p, and halo TUs carries no
//    rshc::check symbols at all (CI proves this with nm).
//  - runtime: on violation the checker either aborts after printing the
//    report (the default — a corrupted state must not silently keep
//    evolving) or, in kCount mode (tests; env RSHC_CHECKS_ABORT=0),
//    records the report and continues so the caller can assert on it.
//
// Violations report the *phase* (c2p, flux, graph, halo, ...) and, where
// the call site knows them, the block id and zone coordinates — the two
// things needed to reproduce a bad zone offline.

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#ifndef RSHC_CHECKS_ENABLED
#define RSHC_CHECKS_ENABLED 0
#endif

namespace rshc::check {

/// What fail() does after recording and printing a violation.
enum class Action {
  kAbort,  ///< print the report and std::abort() (default)
  kCount,  ///< record and continue (tests assert on violation_count())
};

/// Zone provenance attached to a physical-state violation; block/i/j/k
/// stay -1 when the call site does not know them (e.g. inside con2prim).
struct Zone {
  int block = -1;
  int i = -1;
  int j = -1;
  int k = -1;
};

/// Process-wide violation sink. Thread-safe. Always compiled (the library
/// must exist for tests of the OFF configuration); only *referenced* from
/// RSHC_CHECKS_ENABLED call sites.
void set_action(Action a) noexcept;
[[nodiscard]] Action action() noexcept;
[[nodiscard]] std::int64_t violation_count() noexcept;
/// Formatted report of the most recent violation ("" when none).
[[nodiscard]] std::string last_violation();
/// Reset count + last message (test isolation).
void reset() noexcept;

/// Record a violation: formats "phase file:line: what [block b zone
/// (i,j,k)]", stores it, logs to stderr, and aborts in kAbort mode.
void fail(const char* phase, const char* what, const char* file, int line,
          Zone zone = {}) noexcept;

/// Observer invoked by fail() with the formatted report, after the
/// violation is recorded and printed but before a kAbort-mode abort. It
/// must not throw. Lets the structured event journal (obs::journal) record
/// check failures without rshc::check depending on the obs layer; nullptr
/// uninstalls.
using FailureHook = void (*)(const char* report);
void set_failure_hook(FailureHook hook) noexcept;

/// Largest Lorentz factor accepted by the state validators. The face
/// limiter caps |v| at 1 - 1e-10 (W ~ 7.1e4), so anything beyond 1e6 is
/// unreachable by healthy code paths.
inline constexpr double kMaxLorentz = 1e6;

/// Physical-state validation for a primitive state (works for srhd::Prim
/// and srmhd::Prim — both expose rho, p, v_sq()). Returns nullptr when the
/// state is physical, else a static string naming the violated invariant.
template <typename P>
[[nodiscard]] inline const char* violates_prim(const P& w) noexcept {
  if (!std::isfinite(w.rho) || !std::isfinite(w.p)) {
    return "non-finite rho or p";
  }
  if (!(w.rho > 0.0)) return "rho <= 0";
  if (!(w.p > 0.0)) return "p <= 0";
  const double v2 = w.v_sq();
  if (!std::isfinite(v2)) return "non-finite velocity";
  if (v2 >= 1.0) return "superluminal |v| >= 1";
  if (v2 > 1.0 - 1.0 / (kMaxLorentz * kMaxLorentz)) {
    return "Lorentz factor beyond kMaxLorentz";
  }
  return nullptr;
}

/// Conservative-state validation (srhd::Cons / srmhd::Cons — both expose
/// d, tau, s_sq()). Conservatives may legitimately be *unphysical* in the
/// c2p sense mid-evolution (that is what the atmosphere policy heals), so
/// this only rejects states no finite-volume update can produce: NaN/Inf.
template <typename C>
[[nodiscard]] inline const char* violates_cons(const C& u) noexcept {
  if (!std::isfinite(u.d) || !std::isfinite(u.tau) ||
      !std::isfinite(u.s_sq())) {
    return "non-finite conservative state";
  }
  return nullptr;
}

/// nullptr if every element of `buf` is finite, else a static message.
[[nodiscard]] inline const char* violates_finite(
    std::span<const double> buf) noexcept {
  for (const double x : buf) {
    if (!std::isfinite(x)) return "non-finite value in halo buffer";
  }
  return nullptr;
}

}  // namespace rshc::check

#if RSHC_CHECKS_ENABLED

/// Generic invariant: report `what` under `phase` when cond fails.
#define RSHC_CHECK(phase, cond, what)                               \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::rshc::check::fail(phase, what, __FILE__, __LINE__);         \
    }                                                               \
  } while (false)

/// Physical-state check on a primitive state with zone provenance.
#define RSHC_CHECK_PRIM(phase, w, blk, ii, jj, kk)                   \
  do {                                                               \
    const char* rshc_chk_why = ::rshc::check::violates_prim(w);      \
    if (rshc_chk_why != nullptr) [[unlikely]] {                      \
      ::rshc::check::fail(phase, rshc_chk_why, __FILE__, __LINE__,   \
                          {(blk), (ii), (jj), (kk)});                \
    }                                                                \
  } while (false)

/// NaN/Inf check on a conservative state with zone provenance.
#define RSHC_CHECK_CONS(phase, u, blk, ii, jj, kk)                   \
  do {                                                               \
    const char* rshc_chk_why = ::rshc::check::violates_cons(u);      \
    if (rshc_chk_why != nullptr) [[unlikely]] {                      \
      ::rshc::check::fail(phase, rshc_chk_why, __FILE__, __LINE__,   \
                          {(blk), (ii), (jj), (kk)});                \
    }                                                                \
  } while (false)

/// Every element of a packed buffer must be finite.
#define RSHC_CHECK_FINITE_SPAN(phase, span_, what)                   \
  do {                                                               \
    const char* rshc_chk_why = ::rshc::check::violates_finite(span_);\
    if (rshc_chk_why != nullptr) [[unlikely]] {                      \
      ::rshc::check::fail(phase, what, __FILE__, __LINE__);          \
    }                                                                \
  } while (false)

#else  // !RSHC_CHECKS_ENABLED

#define RSHC_CHECK(phase, cond, what) ((void)0)
#define RSHC_CHECK_PRIM(phase, w, blk, ii, jj, kk) ((void)0)
#define RSHC_CHECK_CONS(phase, u, blk, ii, jj, kk) ((void)0)
#define RSHC_CHECK_FINITE_SPAN(phase, span_, what) ((void)0)

#endif  // RSHC_CHECKS_ENABLED
