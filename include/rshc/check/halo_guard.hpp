#pragma once
// Halo recv-buffer lifecycle assertions. The overlapped-exchange designs
// this codebase is growing toward (paper section on comm/compute overlap)
// have one classic silent-corruption bug: unpacking a receive buffer
// before its exchange has completed. The guard encodes the legal protocol
// as a tiny per-(axis, side) state machine:
//
//     idle --post()--> in-flight --complete()--> ready --consume()--> idle
//
// post() marks a recv as posted (buffer contents undefined), complete()
// marks the exchange finished (buffer readable), consume() asserts
// readiness at the unpack site. Any out-of-order transition reports a
// "halo" violation through rshc::check.
//
// With RSHC_CHECKS_ENABLED=0 every method is an empty inline and the class
// holds no state — the guard vanishes from Release object code.

#include "rshc/check/check.hpp"

namespace rshc::check {

class HaloGuard {
 public:
#if RSHC_CHECKS_ENABLED
  void post(int axis, int side) noexcept {
    State& s = state(axis, side);
    if (s == State::kInFlight) {
      fail("halo", "recv posted twice without completion", __FILE__,
           __LINE__);
    }
    s = State::kInFlight;
  }

  void complete(int axis, int side) noexcept {
    State& s = state(axis, side);
    if (s != State::kInFlight) {
      fail("halo", "exchange completed with no recv in flight", __FILE__,
           __LINE__);
    }
    s = State::kReady;
  }

  void consume(int axis, int side) noexcept {
    State& s = state(axis, side);
    if (s != State::kReady) {
      fail("halo",
           s == State::kInFlight
               ? "recv buffer read before its exchange completed"
               : "recv buffer read with no exchange posted",
           __FILE__, __LINE__);
    }
    s = State::kIdle;
  }

 private:
  enum class State : unsigned char { kIdle, kInFlight, kReady };

  State& state(int axis, int side) noexcept {
    return state_[axis & 3][side & 1];
  }

  State state_[4][2] = {};
#else
  void post(int, int) noexcept {}
  void complete(int, int) noexcept {}
  void consume(int, int) noexcept {}
#endif
};

}  // namespace rshc::check
