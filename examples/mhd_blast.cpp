// Magnetized cylindrical blast wave (SRMHD) with GLM divergence cleaning.
//
//   ./examples/mhd_blast [N=96] [t_end=0.8] [glm=1] [vtk=0]
//
// Runs the 2D magnetized blast from the problem library, reporting the
// divergence-cleaning health (max |div B|, psi norm) and conservation
// drift over time; optionally writes a final VTK snapshot.

#include <cmath>
#include <cstdio>

#include "rshc/common/config.hpp"
#include "rshc/io/vtk.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/diagnostics.hpp"
#include "rshc/solver/fv_solver.hpp"

int main(int argc, char** argv) {
  using namespace rshc;
  const Config cfg = Config::from_args(argc, argv);
  const long long n = cfg.get_int("N", 96);
  const double t_end = cfg.get_double("t_end", 0.8);
  const bool glm = cfg.get_bool("glm", true);
  const bool write_vtk = cfg.get_bool("vtk", false);

  const mesh::Grid grid = mesh::Grid::make_2d(n, n, -1.0, 1.0, -1.0, 1.0);
  solver::SrmhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  opt.physics.glm.enabled = glm;

  solver::SrmhdSolver s(grid, opt);
  s.initialize(problems::mhd_blast2d_ic({}));
  const auto cons0 = s.total_cons();

  std::printf("# SRMHD blast %lldx%lld, GLM %s, t_end=%.2f\n", n, n,
              glm ? "on" : "off", t_end);
  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "t", "max|divB|", "psi_L2",
              "p_max", "steps");

  int steps = 0;
  double next_report = 0.0;
  while (s.time() < t_end) {
    if (s.time() >= next_report) {
      const auto p = s.gather_prim_var(srmhd::kP);
      std::printf("%-8.3f %-12.4e %-12.4e %-12.4e %-10d\n", s.time(),
                  solver::max_divb(s), solver::psi_l2(s),
                  *std::max_element(p.begin(), p.end()), steps);
      next_report += t_end / 10.0;
    }
    double dt = s.compute_dt();
    if (s.time() + dt > t_end) dt = t_end - s.time();
    s.step(dt);
    ++steps;
  }

  const auto cons1 = s.total_cons();
  std::printf("\n# conservation drift: dD=%.3e dtau=%.3e (outflow BCs lose "
              "what leaves the box)\n",
              std::abs(cons1.d - cons0.d) / cons0.d,
              std::abs(cons1.tau - cons0.tau) /
                  std::max(1e-300, std::abs(cons0.tau)));
  std::printf("# c2p health: %lld floored zones over %d steps\n",
              s.c2p_stats().floored_zones, steps);

  if (write_vtk) {
    std::vector<io::VtkField> fields;
    fields.push_back({"rho", s.gather_prim_var(srmhd::kRho)});
    fields.push_back({"p", s.gather_prim_var(srmhd::kP)});
    fields.push_back({"bx", s.gather_prim_var(srmhd::kBx)});
    fields.push_back({"by", s.gather_prim_var(srmhd::kBy)});
    io::write_vtk("mhd_blast.vtk", grid, fields);
    std::printf("# wrote mhd_blast.vtk\n");
  }
  return 0;
}
