// Quickstart: solve a relativistic shock tube (Marti & Mueller problem 1)
// and compare against the exact Riemann solution.
//
//   ./examples/quickstart [N=400] [recon=weno5] [riemann=hllc] [cfl=0.4]
//
// This is the smallest complete tour of the public API: build a grid,
// configure an SRHD solver, set initial data from the problem library,
// advance to t_final, and measure the L1 error with the analysis tools.

#include <cstdio>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/config.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

int main(int argc, char** argv) {
  using namespace rshc;

  const Config cfg = Config::from_args(argc, argv);
  const long long n = cfg.get_int("N", 400);
  const auto recon = recon::parse_method(cfg.get_string("recon", "weno5"));
  const auto riem = riemann::parse_solver(cfg.get_string("riemann", "hllc"));
  const double cfl = cfg.get_double("cfl", 0.4);

  // Problem setup: MM1 on [0, 1], membrane at x = 0.5.
  const problems::ShockTube st = problems::marti_muller_1();
  const mesh::Grid grid = mesh::Grid::make_1d(n, 0.0, 1.0);

  solver::SrhdSolver::Options opt;
  opt.recon = recon;
  opt.cfl = cfl;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = riem;

  solver::SrhdSolver solver(grid, opt);
  solver.initialize(problems::shock_tube_ic(st));
  const int steps = solver.advance_to(st.t_final);

  // Exact reference sampled at cell centers.
  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  std::vector<double> rho_exact(static_cast<std::size_t>(n));
  std::vector<double> v_exact(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    const double x = grid.cell_center(0, i);
    const auto s = exact.sample((x - st.x_split) / st.t_final);
    rho_exact[static_cast<std::size_t>(i)] = s.rho;
    v_exact[static_cast<std::size_t>(i)] = s.v;
  }
  const auto rho_num = solver.gather_prim_var(srhd::kRho);
  const auto v_num = solver.gather_prim_var(srhd::kVx);

  std::printf("# %s: N=%lld recon=%s riemann=%s steps=%d t=%.3f\n",
              st.name.c_str(), n, std::string(recon::method_name(recon)).c_str(),
              std::string(riemann::solver_name(riem)).c_str(), steps,
              solver.time());
  std::printf("# exact: p*=%.6f v*=%.6f\n", exact.p_star(), exact.v_star());
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "x", "rho", "rho_exact",
              "vx", "vx_exact");
  const long long stride = n / 20 > 0 ? n / 20 : 1;
  for (long long i = stride / 2; i < n; i += stride) {
    std::printf("%-10.4f %-12.6f %-12.6f %-12.6f %-12.6f\n",
                grid.cell_center(0, i), rho_num[static_cast<std::size_t>(i)],
                rho_exact[static_cast<std::size_t>(i)],
                v_num[static_cast<std::size_t>(i)],
                v_exact[static_cast<std::size_t>(i)]);
  }
  std::printf("\nL1(rho) = %.6e   L1(vx) = %.6e\n",
              analysis::l1_error(rho_num, rho_exact),
              analysis::l1_error(v_num, v_exact));
  std::printf("c2p: %lld floored zones, %lld total Newton iterations\n",
              solver.c2p_stats().floored_zones,
              solver.c2p_stats().total_iterations);
  return 0;
}
