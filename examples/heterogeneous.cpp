// Heterogeneous execution demo: the same conservative-to-primitive batch
// staged through all three device backends, plus a dataflow-vs-bulk-sync
// comparison of the block-parallel stepping.
//
//   ./examples/heterogeneous [N=128] [threads=4] [steps=20]
//
// This is the "zero to offload" tour of the device and runtime layers the
// paper's heterogeneous pipeline rests on.

#include <cmath>
#include <cstdio>

#include "rshc/common/config.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/device/device.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/solver/offload.hpp"

int main(int argc, char** argv) {
  using namespace rshc;
  const Config cfg = Config::from_args(argc, argv);
  const long long n = cfg.get_int("N", 128);
  const unsigned threads =
      static_cast<unsigned>(cfg.get_int("threads", 4));
  const int steps = static_cast<int>(cfg.get_int("steps", 20));

  const mesh::Grid grid = mesh::Grid::make_2d(n, n, 0.0, 1.0, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);

  // Part 1: device offload of the c2p kernel batch.
  std::printf("# Part 1: c2p offload of a %lldx%lld block per backend\n", n,
              n);
  std::printf("%-14s %-12s %-12s %-12s %-12s\n", "backend", "upload_s",
              "kernel_s", "download_s", "Mzones/s");
  for (const auto backend :
       {device::Backend::kHostScalar, device::Backend::kHostSimd,
        device::Backend::kAccelSim}) {
    solver::SrhdSolver s(grid, opt);
    s.initialize([](double x, double y, double) {
      srhd::Prim w;
      w.rho = 1.0 + 0.5 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
      w.vx = 0.4;
      w.vy = -0.3;
      w.p = 1.0;
      return w;
    });
    auto dev = device::make_device(backend);
    const auto st = solver::offload_cons_to_prim(*dev, s.block(0),
                                                 opt.physics);
    const double total =
        st.upload_seconds + st.kernel_seconds + st.download_seconds;
    std::printf("%-14s %-12.4e %-12.4e %-12.4e %-12.2f\n",
                std::string(dev->name()).c_str(), st.upload_seconds,
                st.kernel_seconds, st.download_seconds,
                static_cast<double>(st.zones) / total / 1e6);
  }

  // Part 2: futurized dataflow vs bulk-synchronous stepping.
  std::printf("\n# Part 2: %d steps of a %lldx%lld run on %u workers, "
              "4x4 blocks\n",
              steps, n, n, threads);
  auto make_solver = [&] {
    auto o = opt;
    o.blocks = {4, 4, 1};
    auto s = std::make_unique<solver::SrhdSolver>(grid, o);
    s->initialize(problems::kelvin_helmholtz_ic({}));
    return s;
  };
  parallel::ThreadPool pool(threads);
  const double dt = 0.2 / static_cast<double>(n);

  auto bulk = make_solver();
  WallTimer t1;
  bulk->run_steps_bulksync(steps, dt, pool);
  const double t_bulk = t1.seconds();

  auto flow = make_solver();
  WallTimer t2;
  flow->run_steps_dataflow(steps, dt, pool);
  const double t_flow = t2.seconds();

  std::printf("%-14s %-12s %-12s\n", "mode", "seconds", "steps/s");
  std::printf("%-14s %-12.4f %-12.2f\n", "bulk-sync", t_bulk,
              steps / t_bulk);
  std::printf("%-14s %-12.4f %-12.2f\n", "dataflow", t_flow,
              steps / t_flow);
  std::printf("# dataflow speedup: %.2fx (expect ~1 on a 1-core host; the "
              "gap widens with cores and block count)\n",
              t_bulk / t_flow);
  rshc::obs::maybe_dump("heterogeneous");
  return 0;
}
