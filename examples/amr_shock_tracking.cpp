// Adaptive mesh refinement tracking a relativistic blast wave.
//
//   ./examples/amr_shock_tracking [N=256] [interval=5] [threshold=0.05]
//
// Runs the MM1 blast on a coarse grid with a 2x refined region that
// re-centers itself on the steep-gradient cells every few steps, printing
// the region's trajectory as it chases the shock, and the final accuracy
// against the exact solution compared to an unrefined run.

#include <cstdio>

#include "rshc/amr/two_level.hpp"
#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/config.hpp"
#include "rshc/problems/problems.hpp"

int main(int argc, char** argv) {
  using namespace rshc;
  const Config cfg = Config::from_args(argc, argv);
  const long long n = cfg.get_int("N", 256);
  const int interval = static_cast<int>(cfg.get_int("interval", 5));
  const double threshold = cfg.get_double("threshold", 0.05);

  const problems::ShockTube st = problems::marti_muller_1();
  const mesh::Grid grid = mesh::Grid::make_1d(n, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = riemann::Solver::kHLLC;

  // Start the region centered on the membrane; adaptivity takes it from
  // there.
  amr::TwoLevelSrhdSolver s(
      grid, opt,
      amr::RefineRegion{{n * 40 / 100, 0, 0}, {n * 60 / 100, 1, 1}});
  s.enable_adaptivity(interval, threshold, /*padding=*/4);
  s.initialize(problems::shock_tube_ic(st));

  std::printf("# %s with adaptive 2x refinement, N=%lld, regrid every %d "
              "steps at threshold %.2f\n",
              st.name.c_str(), n, interval, threshold);
  std::printf("%-8s %-12s %-12s %-10s\n", "t", "region_lo", "region_hi",
              "fine_cells");
  double next_report = 0.0;
  while (s.time() < st.t_final) {
    if (s.time() >= next_report) {
      std::printf("%-8.3f %-12.4f %-12.4f %-10lld\n", s.time(),
                  static_cast<double>(s.region().lo[0]) / n,
                  static_cast<double>(s.region().hi[0]) / n,
                  s.fine().grid().extent(0));
      next_report += st.t_final / 12.0;
    }
    double dt = s.compute_dt();
    if (s.time() + dt > st.t_final) dt = st.t_final - s.time();
    s.step(dt);
  }

  // Accuracy vs an unrefined run, both against the exact solution.
  solver::SrhdSolver plain(grid, opt);
  plain.initialize(problems::shock_tube_ic(st));
  plain.advance_to(st.t_final);

  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  auto l1 = [&](solver::SrhdSolver& sv) {
    const auto rho = sv.gather_prim_var(srhd::kRho);
    std::vector<double> ref(rho.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ref[i] = exact
                   .sample((grid.cell_center(0, static_cast<long long>(i)) -
                            st.x_split) /
                           st.t_final)
                   .rho;
    }
    return analysis::l1_error(rho, ref);
  };
  std::printf("\nL1(rho): unrefined = %.5e, adaptive-AMR composite = %.5e\n",
              l1(plain), l1(s.coarse()));
  std::printf("final refined region: [%.3f, %.3f)\n",
              static_cast<double>(s.region().lo[0]) / n,
              static_cast<double>(s.region().hi[0]) / n);
  return 0;
}
