// Distributed shock tube: the relativistic blast wave of quickstart, but
// decomposed across message-passing ranks (simulated cluster nodes).
//
//   ./examples/distributed_tube [ranks=4] [N=400] [latency_us=0]
//
// Each rank owns a slab of the domain, exchanges halos as messages, and
// agrees on dt by allreduce. Rank 0 gathers the solution and reports the
// L1 error against the exact Riemann solution plus the message traffic.

#include <cstdio>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/config.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/distributed.hpp"

int main(int argc, char** argv) {
  using namespace rshc;
  const Config cfg = Config::from_args(argc, argv);
  const int ranks = static_cast<int>(cfg.get_int("ranks", 4));
  const long long n = cfg.get_int("N", 400);
  const double latency_us = cfg.get_double("latency_us", 0.0);

  const problems::ShockTube st = problems::marti_muller_1();
  const mesh::Grid grid = mesh::Grid::make_1d(n, 0.0, 1.0);

  solver::DistributedSrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = riemann::Solver::kHLLC;

  comm::TransferModel model;
  model.latency_sec = latency_us * 1e-6;

  comm::World world(ranks, model);
  std::vector<std::jthread> threads;
  WallTimer timer;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&world, &grid, &opt, &st, r] {
      auto comm = world.communicator(r);
      solver::DistributedSrhdSolver s(grid, comm, opt);
      s.initialize(problems::shock_tube_ic(st));
      const int steps = s.advance_to(st.t_final);
      const auto rho = s.gather_prim_var_root(srhd::kRho);
      if (r == 0) {
        const analysis::ExactRiemann exact(
            {st.left.rho, st.left.vx, st.left.p},
            {st.right.rho, st.right.vx, st.right.p}, st.gamma);
        std::vector<double> ref(rho.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
          const double x =
              s.local_block().grid().cell_center(0,
                                                 static_cast<long long>(i));
          ref[i] = exact.sample((x - st.x_split) / st.t_final).rho;
        }
        std::printf("# %s on %d ranks, N=%lld: %d steps to t=%.2f\n",
                    st.name.c_str(), s.topology().size(),
                    static_cast<long long>(rho.size()), steps, st.t_final);
        std::printf("L1(rho) vs exact = %.6e\n",
                    analysis::l1_error(rho, ref));
      }
    });
  }
  threads.clear();  // join all ranks

  std::printf("wall time          = %.3f s\n", timer.seconds());
  std::printf("halo messages      = %zu\n", world.total_messages());
  std::printf("halo bytes         = %zu\n", world.total_bytes());
  std::printf("(latency model: %.1f us/message)\n", latency_us);
  return 0;
}
