// Kelvin-Helmholtz instability in 2D special relativistic hydrodynamics.
//
//   ./examples/kh_instability [N=128] [t_end=3.0] [vtk=0] [blocks=2]
//
// Evolves a perturbed shear layer on a periodic box, tracks the growth of
// the transverse kinetic signature, fits an exponential growth rate, and
// (optionally) writes VTK snapshots for ParaView. This is the workload
// behind experiment F2.

#include <cmath>
#include <cstdio>
#include <string>

#include "rshc/analysis/norms.hpp"
#include "rshc/common/config.hpp"
#include "rshc/io/vtk.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

/// RMS of transverse velocity — the KH growth diagnostic.
double vy_rms(rshc::solver::SrhdSolver& s) {
  const auto vy = s.gather_prim_var(rshc::srhd::kVy);
  double sum = 0.0;
  for (const double v : vy) sum += v * v;
  return std::sqrt(sum / static_cast<double>(vy.size()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rshc;
  const Config cfg = Config::from_args(argc, argv);
  const long long n = cfg.get_int("N", 128);
  const double t_end = cfg.get_double("t_end", 3.0);
  const bool write_vtk = cfg.get_bool("vtk", false);
  const int blocks = static_cast<int>(cfg.get_int("blocks", 2));

  const mesh::Grid grid =
      mesh::Grid::make_2d(n, n, -0.5, 0.5, -0.5, 0.5);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  opt.blocks = {blocks, blocks, 1};

  const problems::KelvinHelmholtz kh{};
  solver::SrhdSolver s(grid, opt);
  s.initialize(problems::kelvin_helmholtz_ic(kh));

  std::printf("# KH %lldx%lld, shear v=%.2f, layer a=%.3f, t_end=%.2f\n", n,
              n, kh.shear_velocity, kh.layer_width, t_end);
  std::printf("%-8s %-14s\n", "t", "vy_rms");

  std::vector<double> times;
  std::vector<double> amplitudes;
  int snapshot = 0;
  double next_sample = 0.0;
  while (s.time() < t_end) {
    if (s.time() >= next_sample) {
      const double a = vy_rms(s);
      std::printf("%-8.3f %-14.6e\n", s.time(), a);
      times.push_back(s.time());
      amplitudes.push_back(a);
      next_sample += t_end / 30.0;
      if (write_vtk) {
        std::vector<io::VtkField> fields(2);
        fields[0] = {"rho", s.gather_prim_var(srhd::kRho)};
        fields[1] = {"vy", s.gather_prim_var(srhd::kVy)};
        io::write_vtk("kh_" + std::to_string(snapshot++) + ".vtk", grid,
                      fields);
      }
    }
    double dt = s.compute_dt();
    if (s.time() + dt > t_end) dt = t_end - s.time();
    s.step(dt);
  }

  // Fit the exponential phase (skip the initial transient, stop before
  // saturation: use the window where amplitude is 3x initial .. 1/3 max).
  std::vector<double> tf;
  std::vector<double> af;
  const double a0 = amplitudes.front();
  const double amax = *std::max_element(amplitudes.begin(), amplitudes.end());
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (amplitudes[i] > 2.0 * a0 && amplitudes[i] < 0.5 * amax) {
      tf.push_back(times[i]);
      af.push_back(amplitudes[i]);
    }
  }
  if (tf.size() >= 2) {
    std::printf("\n# linear-phase growth rate: %.4f (e-folds per unit time)\n",
                analysis::growth_rate(tf, af));
  } else {
    std::printf("\n# growth window too short to fit (try larger t_end)\n");
  }
  std::printf("# c2p health: %lld floored zones\n",
              s.c2p_stats().floored_zones);
  return 0;
}
