#include "rshc/problems/problems.hpp"

#include <cmath>
#include <numbers>

#include "rshc/common/math.hpp"

namespace rshc::problems {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

ShockTube marti_muller_1() {
  ShockTube st;
  st.name = "MM1";
  st.left = srhd::Prim{10.0, 0.0, 0.0, 0.0, 13.33};
  st.right = srhd::Prim{1.0, 0.0, 0.0, 0.0, 1e-7};
  st.t_final = 0.4;
  st.gamma = 5.0 / 3.0;
  return st;
}

ShockTube marti_muller_2() {
  ShockTube st;
  st.name = "MM2";
  st.left = srhd::Prim{1.0, 0.0, 0.0, 0.0, 1000.0};
  st.right = srhd::Prim{1.0, 0.0, 0.0, 0.0, 0.01};
  st.t_final = 0.35;
  st.gamma = 5.0 / 3.0;
  return st;
}

ShockTube sod() {
  ShockTube st;
  st.name = "Sod";
  st.left = srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  st.right = srhd::Prim{0.125, 0.0, 0.0, 0.0, 0.1};
  st.t_final = 0.35;
  st.gamma = 1.4;
  return st;
}

SrhdIc shock_tube_ic(const ShockTube& st) {
  return [st](double x, double, double) {
    return x < st.x_split ? st.left : st.right;
  };
}

SrhdIc smooth_wave_ic(const SmoothWave& w) {
  return [w](double x, double, double) {
    srhd::Prim p;
    p.rho = w.rho0 + w.amplitude * std::sin(kTwoPi * x);
    p.vx = w.velocity;
    p.p = w.pressure;
    return p;
  };
}

double smooth_wave_exact_rho(const SmoothWave& w, double x, double t) {
  // Uniform v and p: the density profile is exactly advected.
  return w.rho0 + w.amplitude * std::sin(kTwoPi * (x - w.velocity * t));
}

SrhdIc kelvin_helmholtz_ic(const KelvinHelmholtz& kh) {
  // Double shear layer at y = +-1/4 so the profile is smooth across the
  // periodic y-boundary (a single layer would leave an unresolved jump
  // there). Inner band streams at +v_sh, outer band at -v_sh.
  return [kh](double x, double y, double) {
    srhd::Prim p;
    const double a = kh.layer_width;
    const double profile =
        std::tanh((y + 0.25) / a) - std::tanh((y - 0.25) / a) - 1.0;
    p.rho = 1.0 + 0.5 * kh.density_contrast * profile;
    p.vx = kh.shear_velocity * profile;
    // Single-mode perturbation localized on both layers.
    const double lobes =
        std::exp(-rshc::sq(y - 0.25) / (4.0 * a * a)) +
        std::exp(-rshc::sq(y + 0.25) / (4.0 * a * a));
    p.vy = kh.perturb_amplitude * kh.shear_velocity *
           std::sin(kTwoPi * x) * lobes;
    p.p = kh.pressure;
    return p;
  };
}

SrhdIc blast2d_ic(const Blast2d& b) {
  return [b](double x, double y, double) {
    srhd::Prim p;
    p.rho = b.rho;
    p.p = std::hypot(x, y) < b.r_inner ? b.p_inner : b.p_outer;
    return p;
  };
}

MhdShockTube balsara_1() {
  MhdShockTube st;
  st.name = "Balsara1";
  st.left.rho = 1.0;
  st.left.p = 1.0;
  st.left.bx = 0.5;
  st.left.by = 1.0;
  st.right.rho = 0.125;
  st.right.p = 0.1;
  st.right.bx = 0.5;
  st.right.by = -1.0;
  st.t_final = 0.4;
  st.gamma = 2.0;
  return st;
}

SrmhdIc mhd_shock_tube_ic(const MhdShockTube& st) {
  return [st](double x, double, double) {
    return x < st.x_split ? st.left : st.right;
  };
}

SrmhdIc mhd_blast2d_ic(const MhdBlast2d& b) {
  return [b](double x, double y, double) {
    srmhd::Prim p;
    p.rho = b.rho;
    p.p = std::hypot(x, y) < b.r_inner ? b.p_inner : b.p_outer;
    p.bx = b.bx;
    return p;
  };
}

SrmhdIc field_loop_ic(const FieldLoop& fl) {
  return [fl](double x, double y, double) {
    srmhd::Prim p;
    p.rho = fl.rho;
    p.p = fl.pressure;
    p.vx = fl.vx;
    p.vy = fl.vy;
    // B = curl(A z_hat) with A = A0 (R - r) inside the loop:
    // B = A0 * (-y/r, x/r) for r < R (tangential field of constant
    // magnitude), zero outside.
    const double r = std::hypot(x, y);
    if (r < fl.radius && r > 1e-12) {
      p.bx = -fl.field * y / r;
      p.by = fl.field * x / r;
    }
    return p;
  };
}

}  // namespace rshc::problems
