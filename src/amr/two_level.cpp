#include "rshc/amr/two_level.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rshc::amr {
namespace {

constexpr int kRatio = 2;  // refinement factor

long long clearance_cells(const TwoLevelSrhdSolver::Options& opt) {
  return recon::ghost_width(opt.recon) / kRatio + 1;
}

}  // namespace

TwoLevelSrhdSolver::TwoLevelSrhdSolver(const mesh::Grid& coarse_grid,
                                       Options opt, RefineRegion region)
    : coarse_grid_(coarse_grid), region_(region) {
  const int ndim = coarse_grid.ndim();
  const long long clearance = clearance_cells(opt);
  for (int a = 0; a < 3; ++a) {
    if (a >= ndim) {
      region_.lo[static_cast<std::size_t>(a)] = 0;
      region_.hi[static_cast<std::size_t>(a)] = 1;
      continue;
    }
    const long long lo = region_.lo[static_cast<std::size_t>(a)];
    const long long hi = region_.hi[static_cast<std::size_t>(a)];
    RSHC_REQUIRE(lo < hi, "refine region must be non-empty");
    RSHC_REQUIRE(lo >= 0 && hi <= coarse_grid.extent(a),
                 "refine region outside the grid");
    // Fine ghosts reach past the region; demand clearance from the domain
    // edge so prolongation always lands on valid coarse data.
    RSHC_REQUIRE(lo >= clearance && hi + clearance <= coarse_grid.extent(a),
                 "refine region too close to the domain boundary");
  }
  coarse_ = std::make_unique<solver::SrhdSolver>(coarse_grid_, opt);
  build_fine(region_, nullptr, region_);
}

void TwoLevelSrhdSolver::build_fine(const RefineRegion& region,
                                    const solver::SrhdSolver* old_fine,
                                    const RefineRegion& old_region) {
  (void)old_region;  // geometry is recovered from old_fine's grid
  const int ndim = coarse_grid_.ndim();
  std::array<long long, 3> fine_n = {1, 1, 1};
  std::array<double, 3> fine_lo = {0.0, 0.0, 0.0};
  std::array<double, 3> fine_hi = {1.0, 1.0, 1.0};
  for (int a = 0; a < ndim; ++a) {
    const long long lo = region.lo[static_cast<std::size_t>(a)];
    const long long hi = region.hi[static_cast<std::size_t>(a)];
    fine_n[static_cast<std::size_t>(a)] = (hi - lo) * kRatio;
    fine_lo[static_cast<std::size_t>(a)] =
        coarse_grid_.xmin(a) + static_cast<double>(lo) * coarse_grid_.dx(a);
    fine_hi[static_cast<std::size_t>(a)] =
        coarse_grid_.xmin(a) + static_cast<double>(hi) * coarse_grid_.dx(a);
  }

  Options fine_opt = coarse_->options();
  fine_opt.blocks = {1, 1, 1};
  auto new_grid =
      std::make_unique<mesh::Grid>(ndim, fine_n, fine_lo, fine_hi);
  auto new_fine = std::make_unique<solver::SrhdSolver>(*new_grid, fine_opt);
  // The fine level's "boundaries" are all coarse-fine interfaces.
  new_fine->set_ghost_filler([this](int b) { prolongate_fine_ghosts(b); });

  if (old_fine == nullptr) {
    fine_grid_ = std::move(new_grid);
    fine_ = std::move(new_fine);
    region_ = region;
    return;
  }

  // Regrid data transfer: copy old fine data where the regions overlap
  // (cell centers coincide exactly — both levels are factor-2 children of
  // the same coarse grid), prolongate from coarse elsewhere.
  const double t = coarse_->time();
  const auto& og = old_fine->grid();
  auto transfer = [this, old_fine, &og, ndim](double x, double y, double z) {
    const double pos[3] = {x, y, z};
    bool in_old = true;
    long long fidx[3] = {0, 0, 0};
    for (int a = 0; a < ndim; ++a) {
      if (pos[a] < og.xmin(a) || pos[a] > og.xmax(a)) {
        in_old = false;
        break;
      }
      fidx[a] = std::clamp<long long>(
          static_cast<long long>(
              std::floor((pos[a] - og.xmin(a)) / og.dx(a))),
          0, og.extent(a) - 1);
    }
    if (in_old) return old_fine->prim_at(fidx[0], fidx[1], fidx[2]);
    long long cidx[3] = {0, 0, 0};
    for (int a = 0; a < ndim; ++a) {
      cidx[a] = std::clamp<long long>(
          static_cast<long long>(std::floor(
              (pos[a] - coarse_grid_.xmin(a)) / coarse_grid_.dx(a))),
          0, coarse_grid_.extent(a) - 1);
    }
    return coarse_->prim_at(cidx[0], cidx[1], cidx[2]);
  };

  // Swap in the new level before initialize: the ghost filler consults
  // this->region_/fine_ geometry. The old level stays alive in new_fine's
  // caller frame (we still hold it via `old_fine` until initialize ends).
  auto keep_old_alive = std::move(fine_);
  auto keep_old_grid = std::move(fine_grid_);
  fine_grid_ = std::move(new_grid);
  fine_ = std::move(new_fine);
  region_ = region;
  fine_->initialize(transfer);
  fine_->set_time(t);
}

void TwoLevelSrhdSolver::initialize(
    const std::function<Prim(double, double, double)>& fn) {
  coarse_->initialize(fn);
  fine_->initialize(fn);
  restrict_to_coarse();
  steps_since_regrid_ = 0;
}

void TwoLevelSrhdSolver::enable_adaptivity(int interval, double threshold,
                                           long long padding) {
  RSHC_REQUIRE(interval >= 0, "regrid interval must be >= 0");
  RSHC_REQUIRE(threshold > 0.0, "regrid threshold must be positive");
  RSHC_REQUIRE(padding >= 1, "regrid padding must be >= 1");
  regrid_interval_ = interval;
  regrid_threshold_ = threshold;
  regrid_padding_ = padding;
}

amr::RefineRegion TwoLevelSrhdSolver::flagged_region() const {
  // Flag coarse cells whose relative density jump to either neighbour
  // exceeds the threshold (per active axis); return the padded bounding
  // box, clamped to the legal clearance. Falls back to the current region
  // when nothing is flagged.
  const int ndim = coarse_grid_.ndim();
  const auto rho = coarse_->gather_prim_var(srhd::kRho);
  const long long nx = coarse_grid_.extent(0);
  const long long ny = coarse_grid_.extent(1);
  const long long nz = coarse_grid_.extent(2);
  auto at = [&](long long i, long long j, long long k) {
    return rho[static_cast<std::size_t>((k * ny + j) * nx + i)];
  };

  RefineRegion box;
  bool any = false;
  for (int a = 0; a < 3; ++a) {
    box.lo[static_cast<std::size_t>(a)] =
        std::numeric_limits<long long>::max();
    box.hi[static_cast<std::size_t>(a)] =
        std::numeric_limits<long long>::min();
  }
  for (long long k = 0; k < nz; ++k) {
    for (long long j = 0; j < ny; ++j) {
      for (long long i = 0; i < nx; ++i) {
        const double c = at(i, j, k);
        double jump = 0.0;
        if (i > 0) jump = std::max(jump, std::abs(c - at(i - 1, j, k)));
        if (i + 1 < nx) jump = std::max(jump, std::abs(c - at(i + 1, j, k)));
        if (ndim >= 2) {
          if (j > 0) jump = std::max(jump, std::abs(c - at(i, j - 1, k)));
          if (j + 1 < ny)
            jump = std::max(jump, std::abs(c - at(i, j + 1, k)));
        }
        if (ndim >= 3) {
          if (k > 0) jump = std::max(jump, std::abs(c - at(i, j, k - 1)));
          if (k + 1 < nz)
            jump = std::max(jump, std::abs(c - at(i, j, k + 1)));
        }
        if (jump / std::max(c, 1e-300) < regrid_threshold_) continue;
        any = true;
        const long long idx[3] = {i, j, k};
        for (int a = 0; a < 3; ++a) {
          box.lo[static_cast<std::size_t>(a)] =
              std::min(box.lo[static_cast<std::size_t>(a)], idx[a]);
          box.hi[static_cast<std::size_t>(a)] =
              std::max(box.hi[static_cast<std::size_t>(a)], idx[a] + 1);
        }
      }
    }
  }
  if (!any) return region_;

  const long long clearance = clearance_cells(coarse_->options());
  for (int a = 0; a < 3; ++a) {
    if (a >= ndim) {
      box.lo[static_cast<std::size_t>(a)] = 0;
      box.hi[static_cast<std::size_t>(a)] = 1;
      continue;
    }
    box.lo[static_cast<std::size_t>(a)] = std::clamp<long long>(
        box.lo[static_cast<std::size_t>(a)] - regrid_padding_, clearance,
        coarse_grid_.extent(a) - clearance - 1);
    box.hi[static_cast<std::size_t>(a)] = std::clamp<long long>(
        box.hi[static_cast<std::size_t>(a)] + regrid_padding_,
        box.lo[static_cast<std::size_t>(a)] + 1,
        coarse_grid_.extent(a) - clearance);
  }
  return box;
}

void TwoLevelSrhdSolver::regrid_now() {
  const RefineRegion target = flagged_region();
  const bool same = target.lo == region_.lo && target.hi == region_.hi;
  steps_since_regrid_ = 0;
  if (same) return;
  build_fine(target, fine_.get(), region_);
  restrict_to_coarse();
}

void TwoLevelSrhdSolver::prolongate_fine_ghosts(int block) {
  // Piecewise-constant injection: each fine ghost cell takes the
  // primitives of the coarse cell containing its center. Refreshed every
  // stage through the ghost-filler hook, so the fine level always sees
  // the coarse level's current state.
  mesh::Block& blk = fine_->block(block);
  auto& w = blk.prim();
  const auto& g = coarse_grid_;
  auto coarse_index = [&](int axis, double x) {
    long long i = static_cast<long long>(
        std::floor((x - g.xmin(axis)) / g.dx(axis)));
    return std::clamp<long long>(i, 0, g.extent(axis) - 1);
  };
  for (int k = 0; k < blk.total(2); ++k) {
    for (int j = 0; j < blk.total(1); ++j) {
      for (int i = 0; i < blk.total(0); ++i) {
        const bool interior = i >= blk.begin(0) && i < blk.end(0) &&
                              j >= blk.begin(1) && j < blk.end(1) &&
                              k >= blk.begin(2) && k < blk.end(2);
        if (interior) continue;
        const long long ci = coarse_index(0, blk.center(0, i));
        const long long cj =
            g.ndim() >= 2 ? coarse_index(1, blk.center(1, j)) : 0;
        const long long ck =
            g.ndim() >= 3 ? coarse_index(2, blk.center(2, k)) : 0;
        const Prim p = coarse_->prim_at(ci, cj, ck);
        solver::SrhdPhysics::store_prim(w, k, j, i, p);
      }
    }
  }
}

void TwoLevelSrhdSolver::restrict_to_coarse() {
  // Average the 2^ndim fine conservatives under each covered coarse cell,
  // overwrite the coarse state, and re-derive its primitives.
  const int ndim = coarse_grid_.ndim();
  const mesh::Block& fb = fine_->block(0);
  const auto& fu = fb.cons();
  solver::C2PStats scratch_stats;
  for (int b = 0; b < coarse_->num_blocks(); ++b) {
    mesh::Block& cb = coarse_->block(b);
    auto& cu = cb.cons();
    auto& cw = cb.prim();
    const auto& e = cb.extents();
    for (int k = cb.begin(2); k < cb.end(2); ++k) {
      for (int j = cb.begin(1); j < cb.end(1); ++j) {
        for (int i = cb.begin(0); i < cb.end(0); ++i) {
          const long long gi = e.lo[0] + (i - cb.ghost(0));
          const long long gj = e.lo[1] + (j - cb.ghost(1));
          const long long gk = e.lo[2] + (k - cb.ghost(2));
          if (gi < region_.lo[0] || gi >= region_.hi[0] ||
              gj < region_.lo[1] || gj >= region_.hi[1] ||
              gk < region_.lo[2] || gk >= region_.hi[2]) {
            continue;
          }
          // Fine cells covering this coarse cell.
          const long long fi0 = (gi - region_.lo[0]) * kRatio;
          const long long fj0 = (gj - region_.lo[1]) * kRatio;
          const long long fk0 = (gk - region_.lo[2]) * kRatio;
          solver::SrhdPhysics::Cons avg;
          int count = 0;
          for (int dk = 0; dk < (ndim >= 3 ? kRatio : 1); ++dk) {
            for (int dj = 0; dj < (ndim >= 2 ? kRatio : 1); ++dj) {
              for (int di = 0; di < kRatio; ++di) {
                avg += solver::SrhdPhysics::load_cons(
                    fu, static_cast<int>(fk0) + dk + fb.ghost(2),
                    static_cast<int>(fj0) + dj + fb.ghost(1),
                    static_cast<int>(fi0) + di + fb.ghost(0));
                ++count;
              }
            }
          }
          avg = (1.0 / count) * avg;
          solver::SrhdPhysics::store_cons(cu, k, j, i, avg);
          const Prim p = solver::SrhdPhysics::to_prim(
              avg, coarse_->options().physics, scratch_stats);
          solver::SrhdPhysics::store_prim(cw, k, j, i, p);
        }
      }
    }
  }
  coarse_->fill_all_ghosts();
}

double TwoLevelSrhdSolver::compute_dt() {
  return std::min(coarse_->compute_dt(), fine_->compute_dt());
}

void TwoLevelSrhdSolver::step(double dt) {
  // Fine first (its stage-wise ghost prolongation reads the coarse state
  // at time t), then coarse, then restriction reconciles the overlap.
  fine_->step(dt);
  coarse_->step(dt);
  restrict_to_coarse();
  if (regrid_interval_ > 0 && ++steps_since_regrid_ >= regrid_interval_) {
    regrid_now();
  }
}

int TwoLevelSrhdSolver::advance_to(double t_end, int max_steps) {
  int steps = 0;
  while (time() < t_end && steps < max_steps) {
    double dt = compute_dt();
    if (time() + dt > t_end) dt = t_end - time();
    step(dt);
    ++steps;
  }
  return steps;
}

}  // namespace rshc::amr
