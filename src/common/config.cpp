#include "rshc/common/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "rshc/common/error.hpp"

namespace rshc {

Config Config::from_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return from_tokens(tokens);
}

Config Config::from_tokens(const std::vector<std::string>& tokens) {
  Config cfg;
  for (const auto& tok : tokens) {
    const auto eq = tok.find('=');
    RSHC_REQUIRE(eq != std::string::npos && eq > 0,
                 "config token is not key=value: " + tok);
    cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return find(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  RSHC_REQUIRE(end != nullptr && *end == '\0',
               "config value for '" + key + "' is not a number: " + *v);
  return x;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long x = std::strtoll(v->c_str(), &end, 10);
  RSHC_REQUIRE(end != nullptr && *end == '\0',
               "config value for '" + key + "' is not an integer: " + *v);
  return x;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  if (*v == "1" || *v == "true" || *v == "on" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "off" || *v == "no") return false;
  RSHC_REQUIRE(false, "config value for '" + key + "' is not a bool: " + *v);
  return fallback;  // unreachable
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace rshc
