#include "rshc/common/table.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "rshc/common/error.hpp"

namespace rshc {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  RSHC_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void Table::set_title(std::string title) { title_ = std::move(title); }

void Table::add_row(std::vector<Cell> cells) {
  RSHC_REQUIRE(cells.size() == columns_.size(),
               "row width does not match column count");
  rows_.push_back(std::move(cells));
}

const Table::Cell& Table::cell(std::size_t row, std::size_t col) const {
  RSHC_REQUIRE(row < rows_.size() && col < columns_.size(),
               "table cell out of range");
  return rows_[row][col];
}

std::string Table::render(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double v = std::get<double>(c);
  char buf[32];
  // %.6g keeps tables compact while preserving convergence-order digits.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w + 2; ++i) os << ' ';
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) pad(columns_[c], width[c]);
  os << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    pad(std::string(width[c], '-'), width[c]);
  os << '\n';
  for (const auto& row : rendered) {
    for (std::size_t c = 0; c < row.size(); ++c) pad(row[c], width[c]);
    os << '\n';
  }
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << columns_[c] << (c + 1 == columns_.size() ? '\n' : ',');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << render(row[c]) << (c + 1 == row.size() ? '\n' : ',');
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  RSHC_REQUIRE(f.good(), "cannot open csv file for writing: " + path);
  write_csv(f);
}

}  // namespace rshc
