#include "rshc/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>

#include "rshc/common/mutex.hpp"

namespace rshc::log {
namespace {

// relaxed: level filter flag; stale reads just let one message through.
std::atomic<Level> g_level{Level::kInfo};
// Serializes whole-line writes to stderr (no data it guards beyond the
// stream itself, so no GUARDED_BY fields hang off it).
Mutex g_mutex;

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    default:            return "?????";
  }
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, std::string_view msg) {
  using clock = std::chrono::steady_clock;
  static const auto t0 = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - t0).count();
  LockGuard lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %s %.*s\n", secs, tag(lvl),
               static_cast<int>(msg.size()), msg.data());
}

std::int64_t RateLimit::acquire() noexcept {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  std::int64_t next = next_ns_.load(std::memory_order_relaxed);
  for (;;) {
    if (now < next) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return -1;
    }
    // Claim the window [now, now + interval); a losing CAS re-reads `next`
    // and either finds the winner's window (suppress) or retries.
    if (next_ns_.compare_exchange_weak(next, now + interval_ns_,
                                       std::memory_order_relaxed)) {
      return suppressed_.exchange(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace rshc::log
