#include "rshc/recon/reconstruct.hpp"

#include <algorithm>
#include <cmath>

#include "rshc/common/error.hpp"
#include "rshc/common/math.hpp"

namespace rshc::recon {
namespace {

void pcm(std::span<const double> q, std::span<double> ql,
         std::span<double> qr) {
  const std::size_t n = q.size();
  for (std::size_t i = 0; i < n; ++i) {
    ql[i] = q[i];
    qr[i] = q[i];
  }
}

template <typename Limiter>
void plm(std::span<const double> q, std::span<double> ql, std::span<double> qr,
         Limiter limiter) {
  const std::size_t n = q.size();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double dqm = q[i] - q[i - 1];
    const double dqp = q[i + 1] - q[i];
    const double slope = limiter(dqm, dqp);
    ql[i] = q[i] - 0.5 * slope;
    qr[i] = q[i] + 0.5 * slope;
  }
}

/// Colella & Woodward (1984) PPM with the original monotonization.
void ppm(std::span<const double> q, std::span<double> ql,
         std::span<double> qr) {
  const std::size_t n = q.size();
  if (n < 5) return;
  // 4th-order face interpolant at i+1/2 (uses i-1..i+2).
  auto face = [&](std::size_t i) {
    return (7.0 / 12.0) * (q[i] + q[i + 1]) -
           (1.0 / 12.0) * (q[i - 1] + q[i + 2]);
  };
  for (std::size_t i = 2; i + 2 < n; ++i) {
    double qm = face(i - 1);  // value at i-1/2
    double qp = face(i);      // value at i+1/2

    // CW84 monotonization: clip face values into the neighbouring-cell
    // range, then remove interior extrema.
    qm = std::clamp(qm, std::min(q[i - 1], q[i]), std::max(q[i - 1], q[i]));
    qp = std::clamp(qp, std::min(q[i], q[i + 1]), std::max(q[i], q[i + 1]));

    if ((qp - q[i]) * (q[i] - qm) <= 0.0) {
      // Cell is a local extremum: flatten.
      qm = q[i];
      qp = q[i];
    } else {
      const double dq = qp - qm;
      const double q6 = 6.0 * (q[i] - 0.5 * (qm + qp));
      if (dq * q6 > dq * dq) {
        qm = 3.0 * q[i] - 2.0 * qp;
      } else if (-dq * dq > dq * q6) {
        qp = 3.0 * q[i] - 2.0 * qm;
      }
    }
    ql[i] = qm;
    qr[i] = qp;
  }
}

/// Jiang & Shu (1996) WENO5 value at the right face of cell i, from the
/// 5-point stencil q[i-2..i+2].
double weno5_face(double qm2, double qm1, double q0, double qp1, double qp2) {
  constexpr double eps = 1e-6;
  // Candidate stencils (3rd order each).
  const double f0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0;
  const double f1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0;
  const double f2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0;
  // Smoothness indicators.
  const double b0 = (13.0 / 12.0) * rshc::sq(qm2 - 2.0 * qm1 + q0) +
                    0.25 * rshc::sq(qm2 - 4.0 * qm1 + 3.0 * q0);
  const double b1 = (13.0 / 12.0) * rshc::sq(qm1 - 2.0 * q0 + qp1) +
                    0.25 * rshc::sq(qm1 - qp1);
  const double b2 = (13.0 / 12.0) * rshc::sq(q0 - 2.0 * qp1 + qp2) +
                    0.25 * rshc::sq(3.0 * q0 - 4.0 * qp1 + qp2);
  // Nonlinear weights from ideal weights {1,6,3}/10.
  const double a0 = 0.1 / rshc::sq(eps + b0);
  const double a1 = 0.6 / rshc::sq(eps + b1);
  const double a2 = 0.3 / rshc::sq(eps + b2);
  return (a0 * f0 + a1 * f1 + a2 * f2) / (a0 + a1 + a2);
}

void weno5(std::span<const double> q, std::span<double> ql,
           std::span<double> qr) {
  const std::size_t n = q.size();
  if (n < 5) return;
  for (std::size_t i = 2; i + 2 < n; ++i) {
    // Right face: upwind-biased from the left.
    qr[i] = weno5_face(q[i - 2], q[i - 1], q[i], q[i + 1], q[i + 2]);
    // Left face: mirror the stencil.
    ql[i] = weno5_face(q[i + 2], q[i + 1], q[i], q[i - 1], q[i - 2]);
  }
}

// Named wrappers for the PLM template instantiations so every scheme has a
// PencilKernel-shaped function. Both reconstruct() and the batched rows
// entry point route through these — one code path, bitwise-identical
// results regardless of how a pencil reaches it.
void plm_minmod(std::span<const double> q, std::span<double> ql,
                std::span<double> qr) {
  plm(q, ql, qr, [](double a, double b) { return rshc::minmod(a, b); });
}

void plm_mc(std::span<const double> q, std::span<double> ql,
            std::span<double> qr) {
  plm(q, ql, qr, [](double a, double b) { return rshc::mc_slope(a, b); });
}

void plm_van_leer(std::span<const double> q, std::span<double> ql,
                  std::span<double> qr) {
  plm(q, ql, qr,
      [](double a, double b) { return rshc::van_leer_slope(a, b); });
}

}  // namespace

int stencil_radius(Method m) {
  switch (m) {
    case Method::kPCM: return 0;
    case Method::kPLMMinmod:
    case Method::kPLMMC:
    case Method::kPLMVanLeer: return 1;
    case Method::kPPM:
    case Method::kWENO5: return 2;
  }
  return 2;
}

int ghost_width(Method m) { return stencil_radius(m) + 1; }

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kPCM: return "pcm";
    case Method::kPLMMinmod: return "plm-minmod";
    case Method::kPLMMC: return "plm-mc";
    case Method::kPLMVanLeer: return "plm-vanleer";
    case Method::kPPM: return "ppm";
    case Method::kWENO5: return "weno5";
  }
  return "unknown";
}

Method parse_method(std::string_view name) {
  if (name == "pcm") return Method::kPCM;
  if (name == "plm-minmod") return Method::kPLMMinmod;
  if (name == "plm-mc" || name == "plm") return Method::kPLMMC;
  if (name == "plm-vanleer") return Method::kPLMVanLeer;
  if (name == "ppm") return Method::kPPM;
  if (name == "weno5") return Method::kWENO5;
  RSHC_REQUIRE(false, std::string("unknown reconstruction method: ") +
                          std::string(name));
  return Method::kPCM;  // unreachable
}

int formal_order(Method m) {
  switch (m) {
    case Method::kPCM: return 1;
    case Method::kPLMMinmod:
    case Method::kPLMMC:
    case Method::kPLMVanLeer: return 2;
    case Method::kPPM: return 3;  // 3rd order at faces in this MOL setting
    case Method::kWENO5: return 5;
  }
  return 1;
}

PencilKernel pencil_kernel(Method m) {
  switch (m) {
    case Method::kPCM: return &pcm;
    case Method::kPLMMinmod: return &plm_minmod;
    case Method::kPLMMC: return &plm_mc;
    case Method::kPLMVanLeer: return &plm_van_leer;
    case Method::kPPM: return &ppm;
    case Method::kWENO5: return &weno5;
  }
  return &pcm;  // unreachable
}

void reconstruct(Method m, std::span<const double> q, std::span<double> ql,
                 std::span<double> qr) {
  RSHC_REQUIRE(ql.size() == q.size() && qr.size() == q.size(),
               "reconstruction output size mismatch");
  pencil_kernel(m)(q, ql, qr);
}

void reconstruct_rows(Method m, std::size_t nrows, std::size_t n,
                      const double* q, std::size_t qstride, double* ql,
                      double* qr, std::size_t face_stride) {
  reconstruct_rows(pencil_kernel(m), nrows, n, q, qstride, ql, qr,
                   face_stride);
}

void reconstruct_rows(PencilKernel fn, std::size_t nrows, std::size_t n,
                      const double* q, std::size_t qstride, double* ql,
                      double* qr, std::size_t face_stride) {
  for (std::size_t r = 0; r < nrows; ++r) {
    fn({q + r * qstride, n}, {ql + r * face_stride, n},
       {qr + r * face_stride, n});
  }
}

}  // namespace rshc::recon
