#include "rshc/comm/cart_topology.hpp"

#include "rshc/common/error.hpp"

namespace rshc::comm {
namespace {

/// Greedy MPI_Dims_create-style balanced factorization of `n` into `ndim`
/// factors, largest factors assigned to the emptiest slots.
std::array<int, 3> balanced_dims(int n, int ndim, std::array<int, 3> req) {
  std::array<int, 3> dims = {1, 1, 1};
  int remaining = n;
  for (int a = 0; a < ndim; ++a) {
    if (req[static_cast<std::size_t>(a)] > 0) {
      const int d = req[static_cast<std::size_t>(a)];
      RSHC_REQUIRE(remaining % d == 0,
                   "requested topology dims do not divide world size");
      dims[static_cast<std::size_t>(a)] = d;
      remaining /= d;
    }
  }
  // Distribute prime factors of what is left, largest first, to the
  // currently-smallest unconstrained axis.
  auto smallest_free_axis = [&]() {
    int best = -1;
    for (int a = 0; a < ndim; ++a) {
      if (req[static_cast<std::size_t>(a)] > 0) continue;
      if (best < 0 || dims[static_cast<std::size_t>(a)] <
                          dims[static_cast<std::size_t>(best)]) {
        best = a;
      }
    }
    return best;
  };
  for (int f = 2; remaining > 1;) {
    if (remaining % f == 0) {
      const int axis = smallest_free_axis();
      RSHC_REQUIRE(axis >= 0,
                   "all topology axes constrained but ranks remain");
      dims[static_cast<std::size_t>(axis)] *= f;
      remaining /= f;
    } else {
      ++f;
      if (f * f > remaining) f = remaining;  // remaining is prime
    }
  }
  return dims;
}

}  // namespace

CartTopology::CartTopology(int size, int ndim, std::array<int, 3> requested,
                           std::array<bool, 3> periodic)
    : size_(size), ndim_(ndim), periodic_(periodic) {
  RSHC_REQUIRE(size >= 1, "topology needs at least one rank");
  RSHC_REQUIRE(ndim >= 1 && ndim <= 3, "topology supports 1..3 dimensions");
  dims_ = balanced_dims(size, ndim, requested);
  long long prod = 1;
  for (int a = 0; a < 3; ++a) prod *= dims_[static_cast<std::size_t>(a)];
  RSHC_REQUIRE(prod == size, "topology dims do not cover world size");
}

std::array<int, 3> CartTopology::coords(int rank) const {
  RSHC_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  std::array<int, 3> c = {0, 0, 0};
  // Row-major: axis 0 slowest, last axis fastest (matches rank_of below).
  int rem = rank;
  for (int a = ndim_ - 1; a >= 0; --a) {
    c[static_cast<std::size_t>(a)] = rem % dims_[static_cast<std::size_t>(a)];
    rem /= dims_[static_cast<std::size_t>(a)];
  }
  return c;
}

int CartTopology::rank_of(const std::array<int, 3>& coords) const {
  int rank = 0;
  for (int a = 0; a < ndim_; ++a) {
    const int d = dims_[static_cast<std::size_t>(a)];
    const int c = coords[static_cast<std::size_t>(a)];
    RSHC_REQUIRE(c >= 0 && c < d, "coordinate out of range");
    rank = rank * d + c;
  }
  return rank;
}

std::optional<int> CartTopology::neighbor(int rank, int axis, int disp) const {
  RSHC_REQUIRE(axis >= 0 && axis < ndim_, "axis out of range");
  auto c = coords(rank);
  const int d = dims_[static_cast<std::size_t>(axis)];
  int x = c[static_cast<std::size_t>(axis)] + disp;
  if (periodic_[static_cast<std::size_t>(axis)]) {
    x = ((x % d) + d) % d;
  } else if (x < 0 || x >= d) {
    return std::nullopt;
  }
  c[static_cast<std::size_t>(axis)] = x;
  return rank_of(c);
}

}  // namespace rshc::comm
