#include "rshc/comm/communicator.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "rshc/obs/obs.hpp"

namespace rshc::comm {

namespace {

/// splitmix64 finalizer: uniform in [0, 1) from a message sequence number.
double jitter_fraction(std::uint64_t seq) noexcept {
  std::uint64_t z = seq + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

std::chrono::steady_clock::duration TransferModel::flight_time(
    std::size_t bytes, std::uint64_t seq) const {
  double secs = latency_sec;
  if (bandwidth_bytes_per_sec > 0.0) {
    secs += static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
  if (jitter_sec > 0.0) {
    secs += jitter_fraction(seq) * jitter_sec;
  }
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(secs));
}

World::World(int size, TransferModel model) : size_(size), model_(model) {
  RSHC_REQUIRE(size >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

std::size_t World::total_messages() const {
  return msg_count_.load(std::memory_order_relaxed);
}
std::size_t World::total_bytes() const {
  return byte_count_.load(std::memory_order_relaxed);
}

void World::deliver(int dest, Message msg) {
  RSHC_REQUIRE(dest >= 0 && dest < size_, "send destination out of range");
  msg_count_.fetch_add(1, std::memory_order_relaxed);
  byte_count_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    LockGuard lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  introspect::mailbox_depth_counter().fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

bool World::matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}

World::Message World::take_matching(int me, int source, int tag) {
  Message out;
  const RecvPattern pattern{source, tag};
  (void)take_any(me, std::span<const RecvPattern>(&pattern, 1), out);
  return out;
}

bool World::try_take_matching(int me, int source, int tag, Message& out) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  LockGuard lock(box.mutex);
  // Same head-of-line rule as the blocking path: only the *first* FIFO
  // match may be taken, and only once its flight time has elapsed.
  for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
    if (!matches(*it, source, tag)) continue;
    if (it->ready_at > std::chrono::steady_clock::now()) return false;
    out = std::move(*it);
    box.messages.erase(it);
    introspect::mailbox_depth_counter().fetch_sub(1,
                                                  std::memory_order_relaxed);
    introspect::received_counter().fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::size_t World::take_any(int me, std::span<const RecvPattern> patterns,
                            Message& out) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  LockGuard lock(box.mutex);
  for (;;) {
    // In-order delivery per (source, tag): for every pattern consider only
    // its *first* match in FIFO order and, if that one is still in flight,
    // wait for it specifically — a later same-tag message must never
    // overtake it. Among ready head-of-line matches the lowest pattern
    // index wins, so the result does not depend on mailbox interleaving
    // beyond per-pattern FIFO order.
    auto earliest = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (!matches(*it, patterns[p].source, patterns[p].tag)) {
          continue;
        }
        if (it->ready_at <= now) {
          out = std::move(*it);
          box.messages.erase(it);
          introspect::mailbox_depth_counter().fetch_sub(
              1, std::memory_order_relaxed);
          introspect::received_counter().fetch_add(1,
                                                   std::memory_order_relaxed);
          return p;
        }
        earliest = std::min(earliest, it->ready_at);
        break;  // head-of-line only: do not look past the first match
      }
    }
    if (earliest != std::chrono::steady_clock::time_point::max()) {
      box.cv.wait_until(lock.native_lock(), earliest);
    } else {
      box.cv.wait(lock.native_lock());
    }
  }
}

int Communicator::size() const { return world_->size(); }

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::byte> payload) {
  RSHC_TRACE_SCOPE("comm.send", "comm", dest);
  RSHC_OBS_COUNT("comm.messages_sent", 1);
  RSHC_OBS_COUNT("comm.bytes_sent",
                 static_cast<std::int64_t>(payload.size()));
  World::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());
  msg.ready_at =
      std::chrono::steady_clock::now() +
      world_->model_.flight_time(
          payload.size(),
          world_->send_seq_.fetch_add(1, std::memory_order_relaxed));
  // The flow id rides inside the message so the receiving rank can close
  // the send→recv arrow Perfetto draws between the two spans.
  msg.flow_id = RSHC_OBS_FLOW_BEGIN("comm.msg", "comm");
  world_->deliver(dest, std::move(msg));
}

int Communicator::recv_bytes(int source, int tag, std::span<std::byte> out) {
  RSHC_TRACE_SCOPE("comm.recv", "comm", source);
  RSHC_OBS_COUNT("comm.messages_received", 1);
  World::Message msg = world_->take_matching(rank_, source, tag);
  RSHC_OBS_FLOW_END("comm.msg", "comm", msg.flow_id);
  RSHC_REQUIRE(msg.payload.size() == out.size(),
               "recv size mismatch: expected " + std::to_string(out.size()) +
                   " bytes, got " + std::to_string(msg.payload.size()));
  std::memcpy(out.data(), msg.payload.data(), out.size());
  return msg.source;
}

std::vector<std::byte> Communicator::recv_any_bytes(int source, int tag,
                                                    int* actual_source) {
  RSHC_TRACE_SCOPE("comm.recv", "comm", source);
  RSHC_OBS_COUNT("comm.messages_received", 1);
  World::Message msg = world_->take_matching(rank_, source, tag);
  RSHC_OBS_FLOW_END("comm.msg", "comm", msg.flow_id);
  if (actual_source != nullptr) *actual_source = msg.source;
  return std::move(msg.payload);
}

// --- non-blocking point to point --------------------------------------

namespace detail {

/// Shared state behind a CommFuture. The owning rank's thread is the only
/// caller of test/wait/wait_any, but the done/actual_source transition is
/// still mutex-guarded so the thread-safety lanes can reason about it.
/// Lock order: the mailbox mutex (inside the World take helpers) is always
/// released before this mutex is taken — the two are never nested.
struct CommFutureState {
  World* world = nullptr;  ///< nullptr for already-complete send futures
  int me = -1;
  int source = kAnySource;
  int tag = kAnyTag;
  std::span<std::byte> out{};

  Mutex mutex;
  bool done RSHC_GUARDED_BY(mutex) = false;
  int actual_source RSHC_GUARDED_BY(mutex) = -1;

  /// Finish the receive with its matched message: close the trace flow the
  /// sender opened, account the receive, copy the payload out, and flip the
  /// guarded done flag. Runs with no locks held on entry.
  int finish(World::Message&& msg) {
    RSHC_OBS_COUNT("comm.messages_received", 1);
    RSHC_OBS_FLOW_END("comm.msg", "comm", msg.flow_id);
    RSHC_REQUIRE(msg.payload.size() == out.size(),
                 "irecv size mismatch: expected " +
                     std::to_string(out.size()) + " bytes, got " +
                     std::to_string(msg.payload.size()));
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), out.size());
    }
    LockGuard lock(mutex);
    done = true;
    actual_source = msg.source;
    return msg.source;
  }
};

}  // namespace detail

CommFuture::CommFuture() = default;
CommFuture::~CommFuture() = default;
CommFuture::CommFuture(CommFuture&&) noexcept = default;
CommFuture& CommFuture::operator=(CommFuture&&) noexcept = default;
CommFuture::CommFuture(std::unique_ptr<detail::CommFutureState> state)
    : state_(std::move(state)) {}

bool CommFuture::done() const {
  RSHC_REQUIRE(state_ != nullptr, "done() on an empty CommFuture");
  LockGuard lock(state_->mutex);
  return state_->done;
}

int CommFuture::source() const {
  RSHC_REQUIRE(state_ != nullptr, "source() on an empty CommFuture");
  LockGuard lock(state_->mutex);
  RSHC_REQUIRE(state_->done, "source() before the future completed");
  return state_->actual_source;
}

bool CommFuture::test() {
  RSHC_REQUIRE(state_ != nullptr, "test() on an empty CommFuture");
  if (done()) return true;
  World::Message msg;
  if (!state_->world->try_take_matching(state_->me, state_->source,
                                        state_->tag, msg)) {
    return false;
  }
  state_->finish(std::move(msg));
  return true;
}

int CommFuture::wait() {
  RSHC_REQUIRE(state_ != nullptr, "wait() on an empty CommFuture");
  {
    LockGuard lock(state_->mutex);
    if (state_->done) return state_->actual_source;
  }
  RSHC_TRACE_SCOPE("comm.wait", "comm", state_->tag);
  World::Message msg =
      state_->world->take_matching(state_->me, state_->source, state_->tag);
  return state_->finish(std::move(msg));
}

std::size_t CommFuture::wait_any(std::span<CommFuture* const> futures) {
  RSHC_REQUIRE(!futures.empty(), "wait_any() on an empty future set");
  std::vector<World::RecvPattern> patterns;
  std::vector<std::size_t> pending;  // pattern index -> futures index
  patterns.reserve(futures.size());
  pending.reserve(futures.size());
  World* world = nullptr;
  int me = -1;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    CommFuture* f = futures[i];
    RSHC_REQUIRE(f != nullptr && f->valid(),
                 "wait_any() over an empty CommFuture");
    if (f->done()) return i;
    RSHC_REQUIRE(f->state_->world != nullptr,
                 "wait_any() over a detached future");
    if (world == nullptr) {
      world = f->state_->world;
      me = f->state_->me;
    }
    RSHC_REQUIRE(world == f->state_->world && me == f->state_->me,
                 "wait_any() futures must belong to one rank");
    patterns.push_back({f->state_->source, f->state_->tag});
    pending.push_back(i);
  }
  RSHC_TRACE_SCOPE("comm.wait", "comm",
                   static_cast<int>(patterns.size()));
  World::Message msg;
  const std::size_t p = world->take_any(me, patterns, msg);
  const std::size_t idx = pending[p];
  futures[idx]->state_->finish(std::move(msg));
  return idx;
}

void CommFuture::wait_all(std::span<CommFuture* const> futures) {
  for (CommFuture* f : futures) {
    RSHC_REQUIRE(f != nullptr && f->valid(),
                 "wait_all() over an empty CommFuture");
    f->wait();
  }
}

CommFuture Communicator::isend_bytes(int dest, int tag,
                                     std::span<const std::byte> payload) {
  send_bytes(dest, tag, payload);
  auto state = std::make_unique<detail::CommFutureState>();
  state->me = rank_;
  {
    LockGuard lock(state->mutex);
    state->done = true;  // copied into the destination mailbox already
    state->actual_source = dest;
  }
  return CommFuture(std::move(state));
}

CommFuture Communicator::irecv_bytes(int source, int tag,
                                     std::span<std::byte> out) {
  // Deliberately no obs events here: the receive is accounted (and its
  // trace flow closed) when the message is actually taken, so counter
  // totals match the blocking path exactly.
  auto state = std::make_unique<detail::CommFutureState>();
  state->world = world_;
  state->me = rank_;
  state->source = source;
  state->tag = tag;
  state->out = out;
  return CommFuture(std::move(state));
}

void Communicator::barrier() {
  RSHC_TRACE_SCOPE("comm.barrier", "comm", rank_);
  LockGuard lock(world_->coll_mutex_);
  const long long gen = world_->coll_generation_;
  if (++world_->coll_count_ == world_->size_) {
    world_->coll_count_ = 0;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock.native_lock(), [&] {
      world_->coll_mutex_.assert_held();  // predicate runs under the wait
      return world_->coll_generation_ != gen;
    });
  }
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  RSHC_TRACE_SCOPE("comm.allreduce", "comm", rank_);
  auto combine = [op](double a, double b) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMin: return std::min(a, b);
      case ReduceOp::kMax: return std::max(a, b);
    }
    return a;  // unreachable
  };
  LockGuard lock(world_->coll_mutex_);
  const long long gen = world_->coll_generation_;
  if (world_->coll_count_ == 0) {
    world_->coll_buffer_.assign(values.begin(), values.end());
  } else {
    RSHC_REQUIRE(world_->coll_buffer_.size() == values.size(),
                 "allreduce length mismatch across ranks");
    for (std::size_t i = 0; i < values.size(); ++i) {
      world_->coll_buffer_[i] = combine(world_->coll_buffer_[i], values[i]);
    }
  }
  if (++world_->coll_count_ == world_->size_) {
    world_->coll_count_ = 0;
    // Snapshot into a separate result buffer: the *next* collective's first
    // arriver reuses coll_buffer_ while slow ranks may still be reading.
    world_->coll_result_ = world_->coll_buffer_;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock.native_lock(), [&] {
      world_->coll_mutex_.assert_held();  // predicate runs under the wait
      return world_->coll_generation_ != gen;
    });
  }
  std::copy(world_->coll_result_.begin(), world_->coll_result_.end(),
            values.begin());
}

double Communicator::allreduce(double value, ReduceOp op) {
  allreduce(std::span<double>(&value, 1), op);
  return value;
}

namespace {
// Reserved tag range for collectives implemented over point-to-point.
constexpr int kBcastTag = 1 << 28;
constexpr int kGatherTag = (1 << 28) + 1;
}  // namespace

void Communicator::bcast(std::span<double> data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, std::span<const double>(data));
    }
  } else {
    recv(root, kBcastTag, data);
  }
}

std::vector<double> Communicator::gather(double value, int root) {
  if (rank_ == root) {
    std::vector<double> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = value;
    for (int i = 0; i < size() - 1; ++i) {
      int src = kAnySource;
      const double v = [&] {
        double tmp;
        src = recv(kAnySource, kGatherTag, std::span<double>(&tmp, 1));
        return tmp;
      }();
      out[static_cast<std::size_t>(src)] = v;
    }
    return out;
  }
  send_value(root, kGatherTag, value);
  return {};
}

void run_world(int size, const std::function<void(Communicator&)>& body,
               TransferModel model) {
  World world(size, model);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      threads.emplace_back([&world, &body, &errors, r] {
        try {
          Communicator comm = world.communicator(r);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace rshc::comm
