#include "rshc/comm/communicator.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "rshc/obs/obs.hpp"

namespace rshc::comm {

std::chrono::steady_clock::duration TransferModel::flight_time(
    std::size_t bytes) const {
  double secs = latency_sec;
  if (bandwidth_bytes_per_sec > 0.0) {
    secs += static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(secs));
}

World::World(int size, TransferModel model) : size_(size), model_(model) {
  RSHC_REQUIRE(size >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

std::size_t World::total_messages() const {
  return msg_count_.load(std::memory_order_relaxed);
}
std::size_t World::total_bytes() const {
  return byte_count_.load(std::memory_order_relaxed);
}

void World::deliver(int dest, Message msg) {
  RSHC_REQUIRE(dest >= 0 && dest < size_, "send destination out of range");
  msg_count_.fetch_add(1, std::memory_order_relaxed);
  byte_count_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    LockGuard lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  introspect::mailbox_depth_counter().fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

World::Message World::take_matching(int me, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  LockGuard lock(box.mutex);
  for (;;) {
    // In-order delivery per (source, tag): always take the *first* match in
    // FIFO order and, if it is still in flight, wait for it specifically —
    // a later same-tag message must never overtake it.
    auto match_it = box.messages.end();
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      const bool match = (source == kAnySource || it->source == source) &&
                         (tag == kAnyTag || it->tag == tag);
      if (match) {
        match_it = it;
        break;
      }
    }
    if (match_it != box.messages.end()) {
      const auto ready_at = match_it->ready_at;
      if (ready_at <= std::chrono::steady_clock::now()) {
        Message msg = std::move(*match_it);
        box.messages.erase(match_it);
        introspect::mailbox_depth_counter().fetch_sub(
            1, std::memory_order_relaxed);
        introspect::received_counter().fetch_add(1, std::memory_order_relaxed);
        return msg;
      }
      box.cv.wait_until(lock.native_lock(), ready_at);
    } else {
      box.cv.wait(lock.native_lock());
    }
  }
}

int Communicator::size() const { return world_->size(); }

void Communicator::send_bytes(int dest, int tag,
                              std::span<const std::byte> payload) {
  RSHC_TRACE_SCOPE("comm.send", "comm", dest);
  RSHC_OBS_COUNT("comm.messages_sent", 1);
  RSHC_OBS_COUNT("comm.bytes_sent",
                 static_cast<std::int64_t>(payload.size()));
  World::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());
  msg.ready_at =
      std::chrono::steady_clock::now() + world_->model_.flight_time(payload.size());
  // The flow id rides inside the message so the receiving rank can close
  // the send→recv arrow Perfetto draws between the two spans.
  msg.flow_id = RSHC_OBS_FLOW_BEGIN("comm.msg", "comm");
  world_->deliver(dest, std::move(msg));
}

int Communicator::recv_bytes(int source, int tag, std::span<std::byte> out) {
  RSHC_TRACE_SCOPE("comm.recv", "comm", source);
  RSHC_OBS_COUNT("comm.messages_received", 1);
  World::Message msg = world_->take_matching(rank_, source, tag);
  RSHC_OBS_FLOW_END("comm.msg", "comm", msg.flow_id);
  RSHC_REQUIRE(msg.payload.size() == out.size(),
               "recv size mismatch: expected " + std::to_string(out.size()) +
                   " bytes, got " + std::to_string(msg.payload.size()));
  std::memcpy(out.data(), msg.payload.data(), out.size());
  return msg.source;
}

std::vector<std::byte> Communicator::recv_any_bytes(int source, int tag,
                                                    int* actual_source) {
  RSHC_TRACE_SCOPE("comm.recv", "comm", source);
  RSHC_OBS_COUNT("comm.messages_received", 1);
  World::Message msg = world_->take_matching(rank_, source, tag);
  RSHC_OBS_FLOW_END("comm.msg", "comm", msg.flow_id);
  if (actual_source != nullptr) *actual_source = msg.source;
  return std::move(msg.payload);
}

void Communicator::barrier() {
  RSHC_TRACE_SCOPE("comm.barrier", "comm", rank_);
  LockGuard lock(world_->coll_mutex_);
  const long long gen = world_->coll_generation_;
  if (++world_->coll_count_ == world_->size_) {
    world_->coll_count_ = 0;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock.native_lock(), [&] {
      world_->coll_mutex_.assert_held();  // predicate runs under the wait
      return world_->coll_generation_ != gen;
    });
  }
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  RSHC_TRACE_SCOPE("comm.allreduce", "comm", rank_);
  auto combine = [op](double a, double b) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMin: return std::min(a, b);
      case ReduceOp::kMax: return std::max(a, b);
    }
    return a;  // unreachable
  };
  LockGuard lock(world_->coll_mutex_);
  const long long gen = world_->coll_generation_;
  if (world_->coll_count_ == 0) {
    world_->coll_buffer_.assign(values.begin(), values.end());
  } else {
    RSHC_REQUIRE(world_->coll_buffer_.size() == values.size(),
                 "allreduce length mismatch across ranks");
    for (std::size_t i = 0; i < values.size(); ++i) {
      world_->coll_buffer_[i] = combine(world_->coll_buffer_[i], values[i]);
    }
  }
  if (++world_->coll_count_ == world_->size_) {
    world_->coll_count_ = 0;
    // Snapshot into a separate result buffer: the *next* collective's first
    // arriver reuses coll_buffer_ while slow ranks may still be reading.
    world_->coll_result_ = world_->coll_buffer_;
    ++world_->coll_generation_;
    world_->coll_cv_.notify_all();
  } else {
    world_->coll_cv_.wait(lock.native_lock(), [&] {
      world_->coll_mutex_.assert_held();  // predicate runs under the wait
      return world_->coll_generation_ != gen;
    });
  }
  std::copy(world_->coll_result_.begin(), world_->coll_result_.end(),
            values.begin());
}

double Communicator::allreduce(double value, ReduceOp op) {
  allreduce(std::span<double>(&value, 1), op);
  return value;
}

namespace {
// Reserved tag range for collectives implemented over point-to-point.
constexpr int kBcastTag = 1 << 28;
constexpr int kGatherTag = (1 << 28) + 1;
}  // namespace

void Communicator::bcast(std::span<double> data, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, std::span<const double>(data));
    }
  } else {
    recv(root, kBcastTag, data);
  }
}

std::vector<double> Communicator::gather(double value, int root) {
  if (rank_ == root) {
    std::vector<double> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = value;
    for (int i = 0; i < size() - 1; ++i) {
      int src = kAnySource;
      const double v = [&] {
        double tmp;
        src = recv(kAnySource, kGatherTag, std::span<double>(&tmp, 1));
        return tmp;
      }();
      out[static_cast<std::size_t>(src)] = v;
    }
    return out;
  }
  send_value(root, kGatherTag, value);
  return {};
}

void run_world(int size, const std::function<void(Communicator&)>& body,
               TransferModel model) {
  World world(size, model);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      threads.emplace_back([&world, &body, &errors, r] {
        try {
          Communicator comm = world.communicator(r);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace rshc::comm
