#include "rshc/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "rshc/common/error.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::parallel {

ThreadPool::ThreadPool(unsigned num_threads) {
  RSHC_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread destructor joins.
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    LockGuard lock(mutex_);
    RSHC_REQUIRE(!stopping_, "enqueue on stopped thread pool");
    queue_.push_back(std::move(fn));
    RSHC_OBS_GAUGE("pool.queue_depth", static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::queued() const {
  LockGuard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop(const std::stop_token& st) {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mutex_);
      cv_.wait(lock.native_lock(), st, [this] {
        mutex_.assert_held();  // predicate runs under the wait's lock
        return !queue_.empty() || stopping_;
      });
      if (queue_.empty()) return;  // stop requested and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    introspect::pool_busy_counter().fetch_add(1, std::memory_order_relaxed);
    {
      RSHC_TRACE_SCOPE("pool.task", "pool", -1);
      task();
    }
    introspect::pool_busy_counter().fetch_sub(1, std::memory_order_relaxed);
    introspect::pool_finished_counter().fetch_add(1,
                                                  std::memory_order_relaxed);
    RSHC_OBS_COUNT("pool.tasks", 1);
  }
}

void ThreadPool::parallel_for(long long begin, long long end,
                              const std::function<void(long long)>& fn,
                              long long grain) {
  if (begin >= end) return;
  grain = std::max<long long>(1, grain);
  const long long n = end - begin;
  const long long nchunks = (n + grain - 1) / grain;
  if (nchunks <= 1) {
    for (long long i = begin; i < end; ++i) fn(i);
    return;
  }

  // Self-scheduling: helpers and the caller all claim chunks from a shared
  // atomic cursor. The caller participates, so every chunk is either done or
  // being executed by a live thread — parallel_for is therefore safe to call
  // from inside a pool worker (no queued-but-unstarted work is awaited).
  struct Shared {
    // relaxed: chunk cursor — claims need atomicity, not ordering (the
    // claimed range is only touched by the claiming thread).
    std::atomic<long long> next;
    // acq_rel on the final add: the finisher that reaches `total` fulfils
    // the promise and must observe every chunk's writes.
    std::atomic<long long> completed{0};
    long long total;
    std::promise<void> done;
    Mutex error_mutex;
    std::exception_ptr error RSHC_GUARDED_BY(error_mutex);
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin, std::memory_order_relaxed);
  shared->total = nchunks;

  auto drive = [shared, end, grain, &fn] {
    long long finished = 0;
    for (;;) {
      const long long lo =
          shared->next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const long long hi = std::min(end, lo + grain);
      try {
        for (long long i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        LockGuard lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      ++finished;
    }
    if (finished > 0 &&
        shared->completed.fetch_add(finished, std::memory_order_acq_rel) +
                finished ==
            shared->total) {
      shared->done.set_value();
    }
  };

  const long long helpers =
      std::min<long long>(nchunks - 1, static_cast<long long>(size()));
  for (long long h = 0; h < helpers; ++h) enqueue(drive);
  drive();
  shared->done.get_future().wait();
  // All chunks have completed; take the lock anyway so the guarded read
  // satisfies the capability contract (cold path, one lock per call).
  LockGuard lock(shared->error_mutex);
  if (shared->error) std::rethrow_exception(shared->error);
}

ThreadPool& default_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace rshc::parallel
