#include "rshc/parallel/task_graph.hpp"

#include "rshc/common/error.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/parallel/thread_pool.hpp"

namespace rshc::parallel {

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 std::span<const NodeId> deps) {
  const NodeId id = nodes_.size();
  auto& node = nodes_.emplace_back();
  node.fn = std::move(fn);
  node.num_deps = static_cast<int>(deps.size());
  for (const NodeId dep : deps) {
    RSHC_REQUIRE(dep < id, "task graph dependency must precede the node");
    nodes_[dep].dependents.push_back(id);
  }
  return id;
}

void TaskGraph::finish_node(ThreadPool& pool, NodeId id) {
#if RSHC_CHECKS_ENABLED
  RSHC_CHECK("graph",
             nodes_[id].fired.fetch_add(1, std::memory_order_relaxed) == 0,
             "task graph node fired more than once in a run");
#endif
  try {
    RSHC_TRACE_SCOPE("graph.node", "graph", static_cast<std::int64_t>(id));
    nodes_[id].fn();
  } catch (...) {
    LockGuard lock(error_mutex_);
    if (!error_) error_ = std::current_exception();
  }
  RSHC_OBS_COUNT("graph.nodes_run", 1);
  introspect::graph_finished_counter().fetch_add(1, std::memory_order_relaxed);
  introspect::graph_pending_counter().fetch_sub(1, std::memory_order_relaxed);
  release_dependents(pool, id);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_.set_value();
  }
}

void TaskGraph::release_dependents(ThreadPool& pool, NodeId id) {
  for (const NodeId dep : nodes_[id].dependents) {
    const int prev =
        nodes_[dep].pending.fetch_sub(1, std::memory_order_acq_rel);
    RSHC_CHECK("graph", prev >= 1,
               "task graph pending count went negative (double release)");
    if (prev == 1) {
      pool.enqueue([this, &pool, dep] { finish_node(pool, dep); });
    }
  }
}

void TaskGraph::run(ThreadPool& pool) {
  if (nodes_.empty()) return;
  // Reset per-run scheduling state.
  for (auto& n : nodes_) n.pending.store(n.num_deps, std::memory_order_relaxed);
#if RSHC_CHECKS_ENABLED
  for (auto& n : nodes_) n.fired.store(0, std::memory_order_relaxed);
#endif
  remaining_.store(nodes_.size(), std::memory_order_relaxed);
  introspect::graph_pending_counter().fetch_add(
      static_cast<long long>(nodes_.size()), std::memory_order_relaxed);
  done_ = std::promise<void>();
  {
    LockGuard lock(error_mutex_);
    error_ = nullptr;
  }

  auto done = done_.get_future();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].num_deps == 0) {
      pool.enqueue([this, &pool, id] { finish_node(pool, id); });
    }
  }
  done.wait();
#if RSHC_CHECKS_ENABLED
  // The graph drained: every node must have fired exactly once (a node
  // that never fired would mean an unsatisfiable dependency — a cycle or
  // a lost release — and would have hung `done` instead, but a duplicate
  // fire can slip through scheduling races; assert both edges here).
  for (const auto& n : nodes_) {
    RSHC_CHECK("graph", n.fired.load(std::memory_order_relaxed) == 1,
               "task graph drained with a node not fired exactly once");
  }
#endif
  // The graph drained, so no writer remains; lock anyway to satisfy the
  // guarded-by contract (one uncontended lock per run).
  LockGuard lock(error_mutex_);
  if (error_) std::rethrow_exception(error_);
}

}  // namespace rshc::parallel
