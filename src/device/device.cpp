#include "rshc/device/device.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/common/mutex.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::device {

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kHostScalar: return "host-scalar";
    case Backend::kHostSimd:   return "host-simd";
    case Backend::kAccelSim:   return "accel-sim";
  }
  return "unknown";
}

namespace {

int next_device_id() {
  // relaxed: id allocator; uniqueness only, no ordering implied.
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void count_h2d(std::size_t bytes) {
  RSHC_OBS_COUNT("device.h2d.bytes", static_cast<std::int64_t>(bytes));
}
void count_d2h(std::size_t bytes) {
  RSHC_OBS_COUNT("device.d2h.bytes", static_cast<std::int64_t>(bytes));
}

/// Host devices: no separate arena, everything executes inline; streams are
/// trivially ordered because each op completes before the call returns.
class HostDevice final : public Device {
 public:
  explicit HostDevice(Backend backend)
      : backend_(backend), id_(next_device_id()) {}

  [[nodiscard]] Backend backend() const override { return backend_; }
  [[nodiscard]] bool requires_staging() const override { return false; }

  [[nodiscard]] Buffer alloc(std::size_t n) override { return Buffer(n, id_); }

  [[nodiscard]] StreamId create_stream() override { return ++last_stream_; }

  Event upload_async(std::span<const double> host, Buffer& dst,
                     StreamId) override {
    RSHC_REQUIRE(host.size() == dst.size(), "upload size mismatch");
    count_h2d(host.size_bytes());
    std::memcpy(dst.device_view().data(), host.data(),
                host.size() * sizeof(double));
    Event e;
    e.set();
    return e;
  }

  Event download_async(const Buffer& src, std::span<double> host,
                       StreamId) override {
    RSHC_REQUIRE(host.size() == src.size(), "download size mismatch");
    count_d2h(host.size_bytes());
    std::memcpy(host.data(), src.device_view().data(),
                host.size() * sizeof(double));
    Event e;
    e.set();
    return e;
  }

  Event launch(std::function<void()> kernel, std::size_t, StreamId) override {
    kernel();
    Event e;
    e.set();
    return e;
  }

  void wait_event(StreamId, Event event) override { event.wait(); }

  void synchronize() override {}

 private:
  Backend backend_;
  int id_;
  StreamId last_stream_ = 0;
};

/// Simulated accelerator: one in-order worker thread per stream, modeled
/// transfer and launch costs. The "delay" is imposed by making the worker
/// sleep for the modeled duration *in addition* to the actual memcpy/kernel
/// time it spends — the memcpy stands in for DMA, the sleep for the
/// link/launch overhead a real device would add. Cross-stream ordering
/// exists only through wait_event fences, exactly like CUDA streams.
class AccelDevice final : public Device {
 public:
  explicit AccelDevice(AccelModel model)
      : model_(model), id_(next_device_id()) {
    streams_.push_back(std::make_unique<Stream>(id_));  // default stream 0
  }

  ~AccelDevice() override {
    for (auto& s : streams_) s->stop();
  }

  [[nodiscard]] Backend backend() const override {
    return Backend::kAccelSim;
  }
  [[nodiscard]] bool requires_staging() const override { return true; }

  [[nodiscard]] Buffer alloc(std::size_t n) override { return Buffer(n, id_); }

  [[nodiscard]] StreamId create_stream() override {
    LockGuard lock(streams_mutex_);
    streams_.push_back(std::make_unique<Stream>(id_));
    return static_cast<StreamId>(streams_.size()) - 1;
  }

  Event upload_async(std::span<const double> host, Buffer& dst,
                     StreamId stream) override {
    RSHC_REQUIRE(host.size() == dst.size(), "upload size mismatch");
    count_h2d(host.size_bytes());
    const double cost = transfer_cost(host.size_bytes());
    auto d = dst.device_view();
    return enqueue(stream, "accel.upload", [host, d, cost] {
      model_sleep(cost);
      std::memcpy(d.data(), host.data(), host.size_bytes());
    });
  }

  Event download_async(const Buffer& src, std::span<double> host,
                       StreamId stream) override {
    RSHC_REQUIRE(host.size() == src.size(), "download size mismatch");
    count_d2h(host.size_bytes());
    const double cost = transfer_cost(host.size_bytes());
    auto s = src.device_view();
    return enqueue(stream, "accel.download", [host, s, cost] {
      model_sleep(cost);
      std::memcpy(host.data(), s.data(), host.size_bytes());
    });
  }

  Event launch(std::function<void()> kernel, std::size_t work_items,
               StreamId stream) override {
    const double overhead = work_items > 0 ? model_.launch_overhead_sec : 0.0;
    return enqueue(stream, "accel.kernel",
                   [kernel = std::move(kernel), overhead] {
                     model_sleep(overhead);
                     kernel();
                   });
  }

  void wait_event(StreamId stream, Event event) override {
    enqueue(stream, "accel.wait_event",
            [event = std::move(event)] { event.wait(); });
  }

  void synchronize() override {
    // Fence every stream, then wait on all fences: streams drain in
    // parallel, and each fence completes only after everything submitted
    // to its stream beforehand.
    std::vector<Stream*> all;
    {
      LockGuard lock(streams_mutex_);
      all.reserve(streams_.size());
      for (auto& s : streams_) all.push_back(s.get());
    }
    std::vector<Event> fences;
    fences.reserve(all.size());
    for (Stream* s : all) fences.push_back(s->enqueue("accel.fence", [] {}));
    for (const Event& f : fences) f.wait();
  }

 private:
  // Stream op tagged with a static-duration name so each in-order worker
  // thread shows each op as a span on its own trace track.
  struct StreamOp {
    const char* name = "";
    std::function<void()> fn;
    Event event;
  };

  /// One in-order work queue with a dedicated worker thread.
  struct Stream {
    explicit Stream(int device_id)
        : id(device_id), worker([this](const std::stop_token& st) {
            worker_loop(st);
          }) {}

    // noexcept: called from the device destructor; a throw while tearing
    // down a worker would terminate anyway, so promise it up front.
    void stop() noexcept {
      {
        LockGuard lock(mutex);
        stopping = true;
      }
      worker.request_stop();
      cv.notify_all();
      if (worker.joinable()) worker.join();
    }

    Event enqueue(const char* name, std::function<void()> op)
        RSHC_EXCLUDES(mutex) {
      Event e;
      {
        LockGuard lock(mutex);
        RSHC_REQUIRE(!stopping, "submit to destroyed accelerator");
        queue.push_back(StreamOp{name, std::move(op), e});
      }
      cv.notify_one();
      return e;
    }

    void worker_loop(const std::stop_token& st) RSHC_EXCLUDES(mutex) {
      for (;;) {
        StreamOp item;
        {
          LockGuard lock(mutex);
          cv.wait(lock.native_lock(), st, [this] {
            mutex.assert_held();  // predicate runs under the wait's lock
            return !queue.empty() || stopping;
          });
          if (queue.empty()) return;
          item = std::move(queue.front());
          queue.pop_front();
        }
        {
          RSHC_TRACE_SCOPE(item.name, "device", id);
          item.fn();
        }
        item.event.set();
      }
    }

    int id;
    Mutex mutex;
    std::condition_variable_any cv;
    std::deque<StreamOp> queue RSHC_GUARDED_BY(mutex);
    bool stopping RSHC_GUARDED_BY(mutex) = false;
    std::jthread worker;
  };

  [[nodiscard]] double transfer_cost(std::size_t bytes) const {
    return model_.transfer_latency_sec +
           static_cast<double>(bytes) / model_.transfer_bandwidth_bytes_per_sec;
  }

  /// Impose the modeled delay. A bare sleep_for overshoots microsecond
  /// delays by a scheduler quantum (tens of us), which would swamp the
  /// very latency/launch terms the model exists to represent and push the
  /// F8 batch-size crossover far from where the modeled costs put it. So:
  /// sleep for the bulk of long waits, then spin out the (sub-quantum)
  /// tail on the steady clock — the worker is a dedicated stream thread,
  /// and busy-polling the tail is what real drivers do too.
  static void model_sleep(double secs) {
    if (secs <= 0.0) return;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(secs);
    constexpr auto kSpinTail = std::chrono::microseconds(200);
    if (std::chrono::duration<double>(secs) > 2 * kSpinTail) {
      std::this_thread::sleep_for(std::chrono::duration<double>(secs) -
                                  kSpinTail);
    }
    while (std::chrono::steady_clock::now() < deadline) {
      // sub-200us tail by construction
    }
  }

  Event enqueue(StreamId stream, const char* name, std::function<void()> op) {
    Stream* s = nullptr;
    {
      LockGuard lock(streams_mutex_);
      RSHC_REQUIRE(stream >= 0 &&
                       stream < static_cast<StreamId>(streams_.size()),
                   "unknown stream id");
      s = streams_[static_cast<std::size_t>(stream)].get();
    }
    return s->enqueue(name, std::move(op));
  }

  AccelModel model_;
  int id_;
  Mutex streams_mutex_;  // guards the streams_ vector, not the queues
  std::vector<std::unique_ptr<Stream>> streams_
      RSHC_GUARDED_BY(streams_mutex_);
};

}  // namespace

std::unique_ptr<Device> make_device(Backend backend, AccelModel model) {
  if (backend == Backend::kAccelSim) {
    return std::make_unique<AccelDevice>(model);
  }
  return std::make_unique<HostDevice>(backend);
}

}  // namespace rshc::device
