#include "rshc/device/device.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "rshc/common/error.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::device {

std::string_view backend_name(Backend b) {
  switch (b) {
    case Backend::kHostScalar: return "host-scalar";
    case Backend::kHostSimd:   return "host-simd";
    case Backend::kAccelSim:   return "accel-sim";
  }
  return "unknown";
}

namespace {

int next_device_id() {
  // relaxed: id allocator; uniqueness only, no ordering implied.
  static std::atomic<int> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Host devices: no separate arena, everything executes inline.
class HostDevice final : public Device {
 public:
  explicit HostDevice(Backend backend)
      : backend_(backend), id_(next_device_id()) {}

  [[nodiscard]] Backend backend() const override { return backend_; }
  [[nodiscard]] bool requires_staging() const override { return false; }

  [[nodiscard]] Buffer alloc(std::size_t n) override { return Buffer(n, id_); }

  Event upload_async(std::span<const double> host, Buffer& dst) override {
    RSHC_REQUIRE(host.size() == dst.size(), "upload size mismatch");
    std::memcpy(dst.device_view().data(), host.data(),
                host.size() * sizeof(double));
    Event e;
    e.set();
    return e;
  }

  Event download_async(const Buffer& src, std::span<double> host) override {
    RSHC_REQUIRE(host.size() == src.size(), "download size mismatch");
    std::memcpy(host.data(), src.device_view().data(),
                host.size() * sizeof(double));
    Event e;
    e.set();
    return e;
  }

  Event launch(std::function<void()> kernel, std::size_t) override {
    kernel();
    Event e;
    e.set();
    return e;
  }

  void synchronize() override {}

 private:
  Backend backend_;
  int id_;
};

/// Simulated accelerator: one in-order stream worker, modeled transfer and
/// launch costs. The "delay" is imposed by making the worker sleep for the
/// modeled duration *in addition* to the actual memcpy/kernel time it spends
/// — the memcpy stands in for DMA, the sleep for the link/launch overhead a
/// real device would add.
class AccelDevice final : public Device {
 public:
  explicit AccelDevice(AccelModel model)
      : model_(model), id_(next_device_id()), worker_([this](const std::stop_token& st) {
          worker_loop(st);
        }) {}

  ~AccelDevice() override {
    {
      std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    worker_.request_stop();
    cv_.notify_all();
  }

  [[nodiscard]] Backend backend() const override {
    return Backend::kAccelSim;
  }
  [[nodiscard]] bool requires_staging() const override { return true; }

  [[nodiscard]] Buffer alloc(std::size_t n) override { return Buffer(n, id_); }

  Event upload_async(std::span<const double> host, Buffer& dst) override {
    RSHC_REQUIRE(host.size() == dst.size(), "upload size mismatch");
    const double cost = transfer_cost(host.size_bytes());
    auto d = dst.device_view();
    return enqueue("accel.upload",
                   [host, d, cost] {
                     model_sleep(cost);
                     std::memcpy(d.data(), host.data(), host.size_bytes());
                   });
  }

  Event download_async(const Buffer& src, std::span<double> host) override {
    RSHC_REQUIRE(host.size() == src.size(), "download size mismatch");
    const double cost = transfer_cost(host.size_bytes());
    auto s = src.device_view();
    return enqueue("accel.download",
                   [host, s, cost] {
                     model_sleep(cost);
                     std::memcpy(host.data(), s.data(), host.size_bytes());
                   });
  }

  Event launch(std::function<void()> kernel, std::size_t work_items) override {
    const double overhead = work_items > 0 ? model_.launch_overhead_sec : 0.0;
    return enqueue("accel.kernel", [kernel = std::move(kernel), overhead] {
      model_sleep(overhead);
      kernel();
    });
  }

  void synchronize() override {
    Event fence = enqueue("accel.fence", [] {});
    fence.wait();
  }

 private:
  [[nodiscard]] double transfer_cost(std::size_t bytes) const {
    return model_.transfer_latency_sec +
           static_cast<double>(bytes) / model_.transfer_bandwidth_bytes_per_sec;
  }

  static void model_sleep(double secs) {
    if (secs <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  }

  // Stream op tagged with a static-duration name so the in-order worker
  // thread shows each op as a span on its own trace track.
  struct StreamOp {
    const char* name = "";
    std::function<void()> fn;
    Event event;
  };

  Event enqueue(const char* name, std::function<void()> op) {
    Event e;
    {
      std::scoped_lock lock(mutex_);
      RSHC_REQUIRE(!stopping_, "submit to destroyed accelerator");
      queue_.push_back(StreamOp{name, std::move(op), e});
    }
    cv_.notify_one();
    return e;
  }

  void worker_loop(const std::stop_token& st) {
    for (;;) {
      StreamOp item;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, st, [this] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      {
        RSHC_TRACE_SCOPE(item.name, "device", id_);
        item.fn();
      }
      item.event.set();
    }
  }

  AccelModel model_;
  int id_;
  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<StreamOp> queue_;
  bool stopping_ = false;
  std::jthread worker_;
};

}  // namespace

std::unique_ptr<Device> make_device(Backend backend, AccelModel model) {
  if (backend == Backend::kAccelSim) {
    return std::make_unique<AccelDevice>(model);
  }
  return std::make_unique<HostDevice>(backend);
}

}  // namespace rshc::device
