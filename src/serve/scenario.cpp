#include "rshc/serve/scenario.hpp"

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "rshc/analysis/norms.hpp"
#include "rshc/common/error.hpp"
#include "rshc/io/checkpoint.hpp"
#include "rshc/mesh/boundary.hpp"
#include "rshc/mesh/grid.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/srhd/state.hpp"

namespace rshc::serve {
namespace {

// One catalog row: how a problem key maps onto a grid and boundary
// conditions. Initial data and gamma are bound per-problem in make_engine.
struct CatalogEntry {
  std::string_view key;
  int ndim = 1;
  mesh::BcType bc = mesh::BcType::kOutflow;
  double xmin = 0.0;  ///< per-axis domain bounds (square in 2D)
  double xmax = 1.0;
};

constexpr CatalogEntry kSrhdCatalog[] = {
    {"sod", 1, mesh::BcType::kOutflow, 0.0, 1.0},
    {"mm1", 1, mesh::BcType::kOutflow, 0.0, 1.0},
    {"mm2", 1, mesh::BcType::kOutflow, 0.0, 1.0},
    {"smooth", 1, mesh::BcType::kPeriodic, 0.0, 1.0},
    {"kh", 2, mesh::BcType::kPeriodic, -0.5, 0.5},
    {"blast2d", 2, mesh::BcType::kOutflow, -1.0, 1.0},
};

constexpr CatalogEntry kSrmhdCatalog[] = {
    {"balsara1", 1, mesh::BcType::kOutflow, 0.0, 1.0},
    {"mhd_blast", 2, mesh::BcType::kOutflow, -1.0, 1.0},
    {"field_loop", 2, mesh::BcType::kPeriodic, -0.5, 0.5},
};

const CatalogEntry* find_entry(PhysicsKind physics, std::string_view problem) {
  if (physics == PhysicsKind::kSrhd) {
    for (const auto& e : kSrhdCatalog) {
      if (e.key == problem) return &e;
    }
    return nullptr;
  }
  for (const auto& e : kSrmhdCatalog) {
    if (e.key == problem) return &e;
  }
  return nullptr;
}

mesh::Grid make_grid(const CatalogEntry& e, long long n) {
  if (e.ndim == 1) return mesh::Grid::make_1d(n, e.xmin, e.xmax);
  return mesh::Grid::make_2d(n, n, e.xmin, e.xmax, e.xmin, e.xmax);
}

template <typename Physics>
class EngineImpl final : public ScenarioEngine {
 public:
  using Ic = std::function<typename Physics::Prim(double, double, double)>;
  using Options = typename solver::FvSolver<Physics>::Options;

  EngineImpl(const mesh::Grid& grid, const Options& opt, Ic ic,
             std::optional<problems::ShockTube> tube)
      : ic_(std::move(ic)), tube_(std::move(tube)), solver_(grid, opt) {}

  void initialize() override { solver_.initialize(ic_); }

  void restore(const std::string& path) override {
    io::read_checkpoint<Physics>(path, solver_);
  }

  void checkpoint(const std::string& path) override {
    solver_.sync_from_device();  // no-op unless device resident
    io::write_checkpoint<Physics>(path, solver_);
  }

  void step() override { solver_.step(solver_.compute_dt()); }

  [[nodiscard]] double time() const override { return solver_.time(); }

  [[nodiscard]] double validation_error(RiemannCache& cache) override {
    if constexpr (std::is_same_v<Physics, solver::SrhdPhysics>) {
      if (!tube_ || solver_.time() <= 0.0) return -1.0;
      const auto ref = cache.lookup(
          {tube_->left.rho, tube_->left.vx, tube_->left.p},
          {tube_->right.rho, tube_->right.vx, tube_->right.p}, tube_->gamma);
      solver_.sync_from_device();
      const std::vector<double> rho = solver_.gather_prim_var(srhd::kRho);
      std::vector<double> exact(rho.size());
      const auto& g = solver_.grid();
      const double t = solver_.time();
      for (std::size_t i = 0; i < rho.size(); ++i) {
        const double x = g.cell_center(0, static_cast<long long>(i));
        exact[i] = ref->sample((x - tube_->x_split) / t).rho;
      }
      return analysis::l1_error(rho, exact);
    } else {
      (void)cache;
      return -1.0;
    }
  }

 private:
  Ic ic_;
  std::optional<problems::ShockTube> tube_;
  solver::FvSolver<Physics> solver_;
};

std::unique_ptr<ScenarioEngine> make_srhd_engine(const JobSpec& spec,
                                                 const CatalogEntry& e) {
  using Options = solver::SrhdSolver::Options;
  Options opt;
  opt.recon = spec.recon;
  opt.cfl = spec.cfl;
  opt.pipeline = spec.pipeline;
  opt.bc = mesh::BoundarySpec::all(e.bc);
  opt.physics.riemann = spec.riemann;

  std::optional<problems::ShockTube> tube;
  problems::SrhdIc ic;
  if (spec.problem == "sod") {
    tube = problems::sod();
  } else if (spec.problem == "mm1") {
    tube = problems::marti_muller_1();
  } else if (spec.problem == "mm2") {
    tube = problems::marti_muller_2();
  } else if (spec.problem == "smooth") {
    opt.physics.eos = eos::IdealGas{5.0 / 3.0};
    ic = problems::smooth_wave_ic(problems::SmoothWave{});
  } else if (spec.problem == "kh") {
    opt.physics.eos = eos::IdealGas{4.0 / 3.0};
    ic = problems::kelvin_helmholtz_ic(problems::KelvinHelmholtz{});
  } else {  // blast2d (catalog-checked by the caller)
    opt.physics.eos = eos::IdealGas{5.0 / 3.0};
    ic = problems::blast2d_ic(problems::Blast2d{});
  }
  if (tube) {
    opt.physics.eos = eos::IdealGas{tube->gamma};
    ic = problems::shock_tube_ic(*tube);
  }
  return std::make_unique<EngineImpl<solver::SrhdPhysics>>(
      make_grid(e, spec.resolution), opt, std::move(ic), std::move(tube));
}

std::unique_ptr<ScenarioEngine> make_srmhd_engine(const JobSpec& spec,
                                                  const CatalogEntry& e) {
  using Options = solver::SrmhdSolver::Options;
  Options opt;
  opt.recon = spec.recon;
  opt.cfl = spec.cfl;
  opt.pipeline = spec.pipeline;
  opt.bc = mesh::BoundarySpec::all(e.bc);

  problems::SrmhdIc ic;
  if (spec.problem == "balsara1") {
    const auto tube = problems::balsara_1();
    opt.physics.eos = eos::IdealGas{tube.gamma};
    ic = problems::mhd_shock_tube_ic(tube);
  } else if (spec.problem == "mhd_blast") {
    opt.physics.eos = eos::IdealGas{5.0 / 3.0};
    ic = problems::mhd_blast2d_ic(problems::MhdBlast2d{});
  } else {  // field_loop (catalog-checked by the caller)
    opt.physics.eos = eos::IdealGas{5.0 / 3.0};
    ic = problems::field_loop_ic(problems::FieldLoop{});
  }
  return std::make_unique<EngineImpl<solver::SrmhdPhysics>>(
      make_grid(e, spec.resolution), opt, std::move(ic), std::nullopt);
}

}  // namespace

bool known_problem(PhysicsKind physics, std::string_view problem) {
  return find_entry(physics, problem) != nullptr;
}

int problem_ndim(PhysicsKind physics, std::string_view problem) {
  const auto* e = find_entry(physics, problem);
  return e != nullptr ? e->ndim : 0;
}

long long spec_zones(const JobSpec& spec) {
  const int nd = problem_ndim(spec.physics, spec.problem);
  if (nd == 0 || spec.resolution <= 0) return 0;
  long long zones = spec.resolution;
  for (int a = 1; a < nd; ++a) zones *= spec.resolution;
  return zones;
}

bool validation_supported(const JobSpec& spec) {
  if (spec.physics != PhysicsKind::kSrhd) return false;
  return spec.problem == "sod" || spec.problem == "mm1" ||
         spec.problem == "mm2";
}

std::unique_ptr<ScenarioEngine> make_engine(const JobSpec& spec) {
  const auto* e = find_entry(spec.physics, spec.problem);
  RSHC_REQUIRE(e != nullptr, "unknown scenario problem: " + spec.problem);
  if (spec.physics == PhysicsKind::kSrhd) return make_srhd_engine(spec, *e);
  return make_srmhd_engine(spec, *e);
}

}  // namespace rshc::serve
