#include "rshc/serve/riemann_cache.hpp"

#include <bit>

namespace rshc::serve {

RiemannCache& RiemannCache::global() {
  static RiemannCache cache;
  return cache;
}

std::shared_ptr<const analysis::ExactRiemann> RiemannCache::lookup(
    const State& left, const State& right, double gamma) {
  const Key key = {
      std::bit_cast<std::uint64_t>(left.rho),
      std::bit_cast<std::uint64_t>(left.v),
      std::bit_cast<std::uint64_t>(left.p),
      std::bit_cast<std::uint64_t>(right.rho),
      std::bit_cast<std::uint64_t>(right.v),
      std::bit_cast<std::uint64_t>(right.p),
      std::bit_cast<std::uint64_t>(gamma),
  };
  // The p* root find runs under the lock on a miss. That serializes the
  // first validation job per tuple, but guarantees every later job shares
  // the one instance instead of racing to construct duplicates.
  LockGuard lock(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto solution =
      std::make_shared<const analysis::ExactRiemann>(left, right, gamma);
  cache_.emplace(key, solution);
  return solution;
}

std::int64_t RiemannCache::hits() const noexcept {
  return hits_.load(std::memory_order_relaxed);
}

std::int64_t RiemannCache::misses() const noexcept {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t RiemannCache::size() const {
  LockGuard lock(mutex_);
  return cache_.size();
}

void RiemannCache::clear() {
  LockGuard lock(mutex_);
  cache_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace rshc::serve
