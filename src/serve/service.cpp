#include "rshc/serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "rshc/common/error.hpp"
#include "rshc/common/log.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/serve/scenario.hpp"

#if RSHC_OBS_ENABLED
#include "rshc/obs/journal.hpp"
// Journal a service lifecycle event. Not routed through the journal.hpp
// OFF-stub on purpose: the obs-off CI lane nm-scans serve objects for
// rshc::obs symbols, so every journal touch must vanish at preprocessing
// time, not rely on the stub inlining away.
#define RSHC_SERVE_JOURNAL(...) \
  ::rshc::obs::journal::Journal::global().event(__VA_ARGS__)
namespace {
using rshc::obs::journal::Field;
}  // namespace
#else
#define RSHC_SERVE_JOURNAL(...) ((void)0)
#endif

namespace rshc::serve {
namespace {

[[nodiscard]] std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] long long env_ll(const char* name, long long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  return (end == s || *end != '\0') ? fallback : v;
}

[[nodiscard]] bool terminal(JobState s) {
  return s == JobState::kCompleted || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

}  // namespace

std::string_view physics_name(PhysicsKind k) {
  return k == PhysicsKind::kSrhd ? "srhd" : "srmhd";
}

PhysicsKind parse_physics(std::string_view name) {
  if (name == "srhd") return PhysicsKind::kSrhd;
  RSHC_REQUIRE(name == "srmhd", "unknown physics: " + std::string(name));
  return PhysicsKind::kSrmhd;
}

std::string_view priority_name(Priority p) {
  switch (p) {
    case Priority::kBatch:
      return "batch";
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      break;
  }
  return "normal";
}

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      break;
  }
  return "cancelled";
}

ServiceConfig service_config_from_env() {
  ServiceConfig cfg;
  cfg.workers = static_cast<unsigned>(std::max(
      1LL, env_ll("RSHC_SERVE_WORKERS", static_cast<long long>(cfg.workers))));
  cfg.queue_capacity = static_cast<std::size_t>(
      std::max(1LL, env_ll("RSHC_SERVE_QUEUE_CAP",
                           static_cast<long long>(cfg.queue_capacity))));
  cfg.zone_budget = std::max(1LL, env_ll("RSHC_SERVE_ZONE_BUDGET",
                                         cfg.zone_budget));
  cfg.stall_timeout = std::chrono::milliseconds(
      std::max(0LL, env_ll("RSHC_SERVE_STALL_MS",
                           static_cast<long long>(cfg.stall_timeout.count()))));
  if (const char* dir = std::getenv("RSHC_SERVE_CKPT_DIR");
      dir != nullptr && *dir != '\0') {
    cfg.checkpoint_dir = dir;
  }
  return cfg;
}

// All non-atomic mutable fields are guarded by SimulationService::mutex_
// (stated here once; Job is private to the service and never escapes it).
struct SimulationService::Job {
  JobSpec spec;
  JobId id = kInvalidJob;
  long long zones = 0;
  std::string ckpt_path;  ///< eviction checkpoint location

  JobState state = JobState::kQueued;
  int preempts = 0;
  int resumes = 0;
  int stalls = 0;
  bool has_checkpoint = false;  ///< eviction checkpoint exists on disk
  bool stall_fired = false;     ///< one-shot latch per stall episode
  std::int64_t seq = 0;         ///< FIFO order within a priority class
  std::int64_t submit_ns = 0;
  double latency_ms = -1.0;
  double l1_error = -1.0;
  std::string message;

  // relaxed: progress counter; the runner increments, status() and the
  // run loop only need eventual visibility.
  std::atomic<int> steps_done{0};
  // relaxed: set by submit()/preempt(), polled by the runner at step
  // boundaries; a one-step delay in visibility is acceptable.
  std::atomic<bool> preempt_requested{false};
  // relaxed: steady-clock stamp of the last completed step, read by the
  // stall monitor; staleness of one poll interval is inherent anyway.
  std::atomic<std::int64_t> last_progress_ns{0};

#if RSHC_OBS_ENABLED
  /// Per-job metrics registry, installed thread-locally while the job's
  /// worker drives the engine (the isolation piece of the service).
  obs::Registry registry;
#endif
};

SimulationService::SimulationService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  std::error_code ec;
  std::filesystem::create_directories(cfg_.checkpoint_dir, ec);
  pool_ = std::make_unique<parallel::ThreadPool>(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    pool_->enqueue([this] { worker_loop(); });
  }
  if (cfg_.stall_timeout.count() > 0) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

SimulationService::~SimulationService() {
  shutdown();
  pool_.reset();  // joins workers; running jobs drain first
  if (monitor_.joinable()) {
    {
      LockGuard lock(monitor_mutex_);
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    monitor_.join();
  }
}

Admission SimulationService::submit(const JobSpec& spec) {
  // Spec validation needs no service state; run it outside the lock.
  std::string reject;
  const long long zones = spec_zones(spec);
  if (!known_problem(spec.physics, spec.problem)) {
    reject = "unknown problem '" + spec.problem + "' for physics " +
             std::string(physics_name(spec.physics));
  } else if (spec.steps <= 0) {
    reject = "steps must be positive";
  } else if (spec.resolution < 2) {
    reject = "resolution must be >= 2";
  } else if (spec.validate && !validation_supported(spec)) {
    reject = "no exact reference for validation of problem '" + spec.problem +
             "'";
  }

  RSHC_SERVE_JOURNAL("job_submit",
                     {Field("name", spec.name), Field("problem", spec.problem),
                      Field("physics", physics_name(spec.physics)),
                      Field("priority", priority_name(spec.priority)),
                      Field("zones", static_cast<std::int64_t>(zones))});

  JobId id = kInvalidJob;
  JobPtr victim;
  {
    LockGuard lock(mutex_);
    ++submitted_;
    if (reject.empty()) {
      if (stopping_) {
        reject = "service shutting down";
      } else if (queue_.size() >= cfg_.queue_capacity) {
        reject = "queue full (capacity " +
                 std::to_string(cfg_.queue_capacity) + ")";
      } else if (zones_admitted_ + zones > cfg_.zone_budget) {
        reject = "zone budget exceeded (" + std::to_string(zones_admitted_) +
                 " admitted + " + std::to_string(zones) + " requested > " +
                 std::to_string(cfg_.zone_budget) + ")";
      }
    }
    if (!reject.empty()) {
      ++rejected_;
    } else {
      id = next_id_++;
      auto job = std::make_shared<Job>();
      job->spec = spec;
      job->id = id;
      job->zones = zones;
      job->ckpt_path =
          cfg_.checkpoint_dir + "/job_" + std::to_string(id) + ".ckpt";
      job->submit_ns = steady_now_ns();
      job->last_progress_ns.store(job->submit_ns, std::memory_order_relaxed);
      job->seq = next_seq_++;
      jobs_.emplace(id, job);
      queue_.push_back(job);
      zones_admitted_ += zones;
      ++admitted_;
      if (idle_workers_ == 0) {
        // Saturated: pick the weakest running job strictly below the new
        // one's class (lowest class first, youngest within a class) and
        // mark it for preemption so this submission gets a worker.
        for (auto& [jid, j] : jobs_) {
          if (j->state != JobState::kRunning) continue;
          if (j->preempt_requested.load(std::memory_order_relaxed)) continue;
          if (j->spec.priority >= spec.priority) continue;
          if (!victim || j->spec.priority < victim->spec.priority ||
              (j->spec.priority == victim->spec.priority &&
               j->seq > victim->seq)) {
            victim = j;
          }
        }
        if (victim) victim->preempt_requested.store(true,
                                                    std::memory_order_relaxed);
      }
    }
  }

  if (id == kInvalidJob) {
    RSHC_SERVE_JOURNAL("job_reject", {Field("name", spec.name),
                                      Field("reason", reject)});
    return Admission{false, kInvalidJob, reject};
  }
  RSHC_SERVE_JOURNAL("job_admit", {Field("job", id), Field("name", spec.name)});
  if (victim) {
    RSHC_SERVE_JOURNAL("job_preempt_request",
                       {Field("job", victim->id), Field("for_job", id)});
  }
  work_cv_.notify_one();
  return Admission{true, id, ""};
}

bool SimulationService::preempt(JobId id) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kRunning) {
    return false;
  }
  it->second->preempt_requested.store(true, std::memory_order_relaxed);
  return true;
}

void SimulationService::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      LockGuard lock(mutex_);
      ++idle_workers_;
      work_cv_.wait(lock.native_lock(), [&] {
        mutex_.assert_held();
        return stopping_ || !queue_.empty();
      });
      --idle_workers_;
      if (queue_.empty()) return;  // stopping, nothing left to drain
      auto best = queue_.begin();
      for (auto it = std::next(best); it != queue_.end(); ++it) {
        if ((*it)->spec.priority > (*best)->spec.priority ||
            ((*it)->spec.priority == (*best)->spec.priority &&
             (*it)->seq < (*best)->seq)) {
          best = it;
        }
      }
      job = *best;
      queue_.erase(best);
      job->state = JobState::kRunning;
      job->stall_fired = false;
      job->last_progress_ns.store(steady_now_ns(), std::memory_order_relaxed);
      ++running_;
    }
    run_job(job);
  }
}

void SimulationService::run_job(const JobPtr& job) {
  bool resuming = false;
  {
    LockGuard lock(mutex_);
    resuming = job->has_checkpoint;
    if (resuming) {
      ++job->resumes;
      ++resumed_;
    }
  }
  if (resuming) {
    RSHC_SERVE_JOURNAL("job_resume",
                       {Field("job", job->id),
                        Field("steps_done", job->steps_done.load(
                                                std::memory_order_relaxed))});
  } else {
    RSHC_SERVE_JOURNAL("job_start", {Field("job", job->id),
                                     Field("name", job->spec.name)});
  }

  bool preempt_now = false;
  std::string fail;
  double l1 = -1.0;
  {
#if RSHC_OBS_ENABLED
    // Everything the engine records below lands in this job's registry,
    // not the process-global one: per-job isolation.
    obs::ScopedRegistry scope(job->registry);
#endif
    try {
      auto engine = make_engine(job->spec);
      if (resuming) {
        engine->restore(job->ckpt_path);
      } else {
        engine->initialize();
      }
      while (job->steps_done.load(std::memory_order_relaxed) <
             job->spec.steps) {
        if (job->preempt_requested.load(std::memory_order_relaxed)) {
          engine->checkpoint(job->ckpt_path);
          preempt_now = true;
          break;
        }
        if (job->spec.step_delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(job->spec.step_delay_ms));
        }
        engine->step();
        job->steps_done.fetch_add(1, std::memory_order_relaxed);
        job->last_progress_ns.store(steady_now_ns(),
                                    std::memory_order_relaxed);
      }
      if (!preempt_now) {
        if (job->spec.validate) {
          l1 = engine->validation_error(RiemannCache::global());
        }
        if (!job->spec.result_checkpoint.empty()) {
          engine->checkpoint(job->spec.result_checkpoint);
        }
      }
    } catch (const std::exception& e) {
      fail = e.what();
      preempt_now = false;
    }
  }

  if (preempt_now) {
    int steps_done = 0;
    {
      LockGuard lock(mutex_);
      job->preempt_requested.store(false, std::memory_order_relaxed);
      job->has_checkpoint = true;
      job->state = JobState::kQueued;
      job->seq = next_seq_++;  // back of its priority class
      ++job->preempts;
      ++preempted_;
      --running_;
      queue_.push_back(job);
      steps_done = job->steps_done.load(std::memory_order_relaxed);
    }
    RSHC_SERVE_JOURNAL("job_preempt", {Field("job", job->id),
                                       Field("steps_done", steps_done)});
    RSHC_OBS_COUNT("serve.jobs.preempted", 1);
    work_cv_.notify_one();
    return;
  }

  const bool ok = fail.empty();
  double latency_ms = 0.0;
  {
    LockGuard lock(mutex_);
    --running_;
    job->l1_error = l1;
    latency_ms =
        static_cast<double>(steady_now_ns() - job->submit_ns) / 1.0e6;
    job->latency_ms = latency_ms;
    if (ok) {
      job->state = JobState::kCompleted;
      ++completed_;
    } else {
      job->state = JobState::kFailed;
      job->message = fail;
      ++failed_;
    }
    zones_admitted_ -= job->zones;
  }
  if (ok) {
    RSHC_SERVE_JOURNAL("job_complete", {Field("job", job->id),
                                        Field("latency_ms", latency_ms),
                                        Field("l1_error", l1)});
    RSHC_OBS_COUNT("serve.jobs.completed", 1);
  } else {
    RSHC_SERVE_JOURNAL("job_failed",
                       {Field("job", job->id), Field("error", fail)});
    RSHC_OBS_COUNT("serve.jobs.failed", 1);
    log::warn("serve: job ", job->id, " (", job->spec.name,
              ") failed: ", fail);
  }
  done_cv_.notify_all();
}

void SimulationService::monitor_loop() {
  const std::int64_t timeout_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(cfg_.stall_timeout)
          .count();
  const auto poll = std::max(std::chrono::milliseconds(10),
                             cfg_.stall_timeout / 4);
  for (;;) {
    {
      LockGuard lock(monitor_mutex_);
      const bool stop =
          monitor_cv_.wait_for(lock.native_lock(), poll, [&] {
            monitor_mutex_.assert_held();
            return monitor_stop_;
          });
      if (stop) return;
    }
    struct Fired {
      JobId id = kInvalidJob;
      std::string name;
      double idle_ms = 0.0;
    };
    std::vector<Fired> fired;
    const std::int64_t now = steady_now_ns();
    {
      LockGuard lock(mutex_);
      for (auto& [id, job] : jobs_) {
        // Only running jobs are eligible: a queued job is idle by design
        // and must neither fire a stall nor latch stall_fired in a way
        // that would mask a later real stall.
        if (job->state != JobState::kRunning) continue;
        const std::int64_t idle =
            now - job->last_progress_ns.load(std::memory_order_relaxed);
        if (idle < timeout_ns) {
          job->stall_fired = false;  // progress resumed; re-arm
          continue;
        }
        if (job->stall_fired) continue;  // one warning per episode
        job->stall_fired = true;
        ++job->stalls;
        ++stalled_;
        fired.push_back(
            {id, job->spec.name, static_cast<double>(idle) / 1.0e6});
      }
    }
    for (const auto& f : fired) {
      RSHC_SERVE_JOURNAL("job_stall", {Field("job", f.id),
                                       Field("name", f.name),
                                       Field("idle_ms", f.idle_ms)});
      static log::RateLimit limit(std::chrono::milliseconds(1000));
      log::warn_limited(limit, "serve: job ", f.id, " (", f.name,
                        ") made no step progress for ", f.idle_ms, " ms");
    }
  }
}

JobStatus SimulationService::wait(JobId id) {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  RSHC_REQUIRE(it != jobs_.end(),
               "unknown job id " + std::to_string(id));
  const JobPtr job = it->second;
  done_cv_.wait(lock.native_lock(), [&] {
    mutex_.assert_held();
    return terminal(job->state);
  });
  JobStatus st;
  st.id = job->id;
  st.name = job->spec.name;
  st.state = job->state;
  st.priority = job->spec.priority;
  st.steps_done = job->steps_done.load(std::memory_order_relaxed);
  st.steps_total = job->spec.steps;
  st.preempts = job->preempts;
  st.resumes = job->resumes;
  st.stalls = job->stalls;
  st.latency_ms = job->latency_ms;
  st.l1_error = job->l1_error;
  st.message = job->message;
  return st;
}

void SimulationService::wait_idle() {
  LockGuard lock(mutex_);
  done_cv_.wait(lock.native_lock(), [&] {
    mutex_.assert_held();
    return queue_.empty() && running_ == 0;
  });
}

std::optional<JobStatus> SimulationService::status(JobId id) const {
  LockGuard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  JobStatus st;
  st.id = job.id;
  st.name = job.spec.name;
  st.state = job.state;
  st.priority = job.spec.priority;
  st.steps_done = job.steps_done.load(std::memory_order_relaxed);
  st.steps_total = job.spec.steps;
  st.preempts = job.preempts;
  st.resumes = job.resumes;
  st.stalls = job.stalls;
  st.latency_ms = job.latency_ms;
  st.l1_error = job.l1_error;
  st.message = job.message;
  return st;
}

std::vector<JobStatus> SimulationService::statuses() const {
  std::vector<JobId> ids;
  {
    LockGuard lock(mutex_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<JobStatus> out;
  out.reserve(ids.size());
  for (JobId id : ids) {
    if (auto st = status(id)) out.push_back(std::move(*st));
  }
  return out;
}

ServiceStats SimulationService::stats() const {
  LockGuard lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.preempted = preempted_;
  s.resumed = resumed_;
  s.stalled = stalled_;
  s.zones_admitted = zones_admitted_;
  s.queued = static_cast<int>(queue_.size());
  s.running = running_;
  return s;
}

void SimulationService::shutdown() {
  std::vector<JobPtr> cancelled;
  {
    LockGuard lock(mutex_);
    stopping_ = true;
    for (auto& job : queue_) {
      job->state = JobState::kCancelled;
      job->latency_ms =
          static_cast<double>(steady_now_ns() - job->submit_ns) / 1.0e6;
      zones_admitted_ -= job->zones;
      ++cancelled_;
      cancelled.push_back(job);
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (const auto& job : cancelled) {
    RSHC_SERVE_JOURNAL("job_cancel", {Field("job", job->id)});
    RSHC_OBS_COUNT("serve.jobs.cancelled", 1);
  }
}

#if RSHC_OBS_ENABLED

std::vector<obs::Snapshot> SimulationService::job_snapshots() const {
  std::vector<JobPtr> jobs;
  {
    LockGuard lock(mutex_);
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  std::vector<obs::Snapshot> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) out.push_back(job->registry.snapshot());
  return out;
}

std::optional<obs::Snapshot> SimulationService::job_snapshot(JobId id) const {
  JobPtr job;
  {
    LockGuard lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  return job->registry.snapshot();
}

#endif  // RSHC_OBS_ENABLED

}  // namespace rshc::serve
