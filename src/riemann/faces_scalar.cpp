// Baseline (non-vectorized) face-kernel variants; flags set in CMake.
#define RSHC_KERNEL_NS scalar
#include "faces_impl.inc"
