#include "rshc/riemann/riemann.hpp"

#include <cmath>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/common/error.hpp"
#include "rshc/riemann/face_solvers.hpp"

namespace rshc::riemann {

std::string_view solver_name(Solver s) {
  switch (s) {
    case Solver::kLLF: return "llf";
    case Solver::kHLL: return "hll";
    case Solver::kHLLC: return "hllc";
    case Solver::kExact: return "exact";
  }
  return "unknown";
}

Solver parse_solver(std::string_view name) {
  if (name == "llf") return Solver::kLLF;
  if (name == "hll") return Solver::kHLL;
  if (name == "hllc") return Solver::kHLLC;
  if (name == "exact") return Solver::kExact;
  RSHC_REQUIRE(false, std::string("unknown riemann solver: ") +
                          std::string(name));
  return Solver::kHLL;  // unreachable
}

namespace {

using srhd::Cons;
using srhd::Prim;

/// Godunov flux from the exact Riemann solution sampled on the interface
/// characteristic xi = 0. Transverse velocity is taken from the upwind
/// side of the contact and rescaled so the state stays subluminal.
Cons exact_godunov(const Prim& wl, const Prim& wr, int axis,
                   const eos::IdealGas& eos) {
  const analysis::ExactRiemann er({wl.rho, wl.v(axis), wl.p},
                                  {wr.rho, wr.v(axis), wr.p}, eos.gamma());
  const auto s = er.sample(0.0);
  // Upwind transverse components by the contact speed.
  const Prim& up = er.v_star() >= 0.0 ? wl : wr;
  Prim w;
  w.rho = s.rho;
  w.p = s.p;
  switch (axis) {
    case 0: w.vx = s.v; w.vy = up.vy; w.vz = up.vz; break;
    case 1: w.vy = s.v; w.vx = up.vx; w.vz = up.vz; break;
    default: w.vz = s.v; w.vx = up.vx; w.vy = up.vy; break;
  }
  // Guard |v| < 1 after grafting transverse components.
  const double v2 = w.v_sq();
  if (v2 >= 1.0) {
    const double scale = std::sqrt((1.0 - 1e-12) / v2);
    w.vx *= scale;
    w.vy *= scale;
    w.vz *= scale;
  }
  const Cons u = srhd::prim_to_cons(w, eos);
  return srhd::flux(w, u, axis);
}

}  // namespace

srhd::Cons solve_srhd(Solver s, const srhd::Prim& wl, const srhd::Prim& wr,
                      int axis, const eos::IdealGas& eos) {
  if (s == Solver::kExact) return exact_godunov(wl, wr, axis, eos);
  const detail::SrhdSide l = detail::srhd_side(wl, axis, eos);
  const detail::SrhdSide r = detail::srhd_side(wr, axis, eos);
  switch (s) {
    case Solver::kLLF: return detail::llf(l, r);
    case Solver::kHLL: return detail::hll(l, r);
    case Solver::kHLLC: return detail::hllc(l, r, axis);
    case Solver::kExact: break;  // handled above
  }
  return detail::hll(l, r);  // unreachable
}

srmhd::Cons solve_srmhd_hll(const srmhd::Prim& wl, const srmhd::Prim& wr,
                            int axis, const eos::IdealGas& eos,
                            const srmhd::GlmParams& glm) {
  return detail::srmhd_hll(wl, wr, axis, eos, glm);
}

}  // namespace rshc::riemann
