// Hot face-kernel variants; compiled -O3 (-march=native when enabled).
#define RSHC_KERNEL_NS simd
#include "faces_impl.inc"
