#include "rshc/time/integrator.hpp"

#include <string>

#include "rshc/common/error.hpp"

namespace rshc::time {

std::string_view integrator_name(Integrator m) {
  switch (m) {
    case Integrator::kEuler: return "euler";
    case Integrator::kSspRk2: return "ssprk2";
    case Integrator::kSspRk3: return "ssprk3";
  }
  return "unknown";
}

Integrator parse_integrator(std::string_view name) {
  if (name == "euler") return Integrator::kEuler;
  if (name == "ssprk2" || name == "rk2") return Integrator::kSspRk2;
  if (name == "ssprk3" || name == "rk3") return Integrator::kSspRk3;
  RSHC_REQUIRE(false,
               std::string("unknown integrator: ") + std::string(name));
  return Integrator::kEuler;  // unreachable
}

}  // namespace rshc::time
