#include "rshc/check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "rshc/common/mutex.hpp"

namespace rshc::check {
namespace {

bool env_abort_default() {
  // RSHC_CHECKS_ABORT=0 switches the process to kCount mode at startup
  // (CI lanes that want to collect every violation before failing).
  const char* v = std::getenv("RSHC_CHECKS_ABORT");
  return v == nullptr || (v[0] != '0' && v[0] != 'f' && v[0] != 'F');
}

// relaxed: the action flag is a mode switch, not a synchronization point.
std::atomic<Action>& action_flag() {
  static std::atomic<Action> a{env_abort_default() ? Action::kAbort
                                                   : Action::kCount};
  return a;
}

// relaxed: monotonic event counter; readers only need an eventual value.
std::atomic<std::int64_t> g_violations{0};

// Last-violation sink: the mutex and the string it guards travel together
// so the guarded-by relation is expressible (function-local statics cannot
// name each other in attributes).
struct Sink {
  Mutex mutex;
  std::string last RSHC_GUARDED_BY(mutex);
};

Sink& sink() {
  static Sink s;
  return s;
}

// relaxed: hook installation is a cold mode switch; a racing fail() either
// sees the hook or misses one event, never a torn pointer.
std::atomic<FailureHook>& failure_hook() {
  static std::atomic<FailureHook> h{nullptr};
  return h;
}

}  // namespace

void set_action(Action a) noexcept {
  action_flag().store(a, std::memory_order_relaxed);
}

Action action() noexcept {
  return action_flag().load(std::memory_order_relaxed);
}

std::int64_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

std::string last_violation() {
  Sink& s = sink();
  LockGuard lock(s.mutex);
  return s.last;
}

void reset() noexcept {
  g_violations.store(0, std::memory_order_relaxed);
  Sink& s = sink();
  LockGuard lock(s.mutex);
  s.last.clear();
}

void fail(const char* phase, const char* what, const char* file, int line,
          Zone zone) noexcept {
  char buf[512];
  if (zone.block >= 0 || zone.i >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "RSHC_CHECK violation [%s] %s:%d: %s (block %d zone "
                  "i=%d j=%d k=%d)",
                  phase, file, line, what, zone.block, zone.i, zone.j,
                  zone.k);
  } else {
    std::snprintf(buf, sizeof(buf), "RSHC_CHECK violation [%s] %s:%d: %s",
                  phase, file, line, what);
  }
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    Sink& s = sink();
    LockGuard lock(s.mutex);
    // fail() is noexcept: swallow an (effectively impossible after the
    // first call — capacity is reused) allocation failure rather than
    // terminate while reporting someone else's violation.
    try {
      s.last = buf;
    } catch (...) {
    }
  }
  std::fprintf(stderr, "%s\n", buf);
  if (FailureHook hook = failure_hook().load(std::memory_order_relaxed)) {
    // fail() is noexcept and may be one instruction from abort(): a hook
    // that breaks its no-throw contract must not mask the violation.
    try {
      hook(buf);
    } catch (...) {
    }
  }
  if (action() == Action::kAbort) std::abort();
}

void set_failure_hook(FailureHook hook) noexcept {
  failure_hook().store(hook, std::memory_order_relaxed);
}

}  // namespace rshc::check
