#include "rshc/wavelet/interp_wavelet.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rshc/common/error.hpp"

namespace rshc::wavelet {
namespace {

/// Deslauriers-Dubuc prediction of the odd point at index k = (2m+1) s
/// from the even points (multiples of 2s): Lagrange interpolation at
/// x = m + 1/2 through the 4 nearest even points (clamped window at the
/// boundaries, giving the one-sided stencils; 3-point quadratic on the
/// 5-point level where only 3 even points exist). Exact for cubics in the
/// interior, quadratics on the coarsest cubic-impossible level.
double predict(std::span<const double> v, std::size_t k, std::size_t s2) {
  const std::size_t n = v.size();
  const std::size_t ne = (n - 1) / s2 + 1;  // number of even points
  const std::size_t m = (k - s2 / 2) / s2;  // x = m + 1/2 among evens
  const std::size_t width = std::min<std::size_t>(4, ne);
  // Window start: center the stencil, clamped into range.
  std::size_t j0 = m >= 1 ? m - 1 : 0;
  if (j0 + width > ne) j0 = ne - width;
  const double x = static_cast<double>(m) + 0.5;
  double p = 0.0;
  for (std::size_t a = 0; a < width; ++a) {
    const double xa = static_cast<double>(j0 + a);
    double w = 1.0;
    for (std::size_t b = 0; b < width; ++b) {
      if (b == a) continue;
      const double xb = static_cast<double>(j0 + b);
      w *= (x - xb) / (xa - xb);
    }
    p += w * v[(j0 + a) * s2];
  }
  return p;
}

void check_size(std::size_t n, int levels) {
  RSHC_REQUIRE(levels >= 1 && levels < 60, "wavelet levels out of range");
  RSHC_REQUIRE(n == grid_size(levels),
               "wavelet grid must have 2^levels + 1 points");
  RSHC_REQUIRE(n >= 5, "wavelet grid too small for the cubic stencil");
}

}  // namespace

std::size_t grid_size(int levels) {
  RSHC_REQUIRE(levels >= 1 && levels < 60, "wavelet levels out of range");
  return (static_cast<std::size_t>(1) << levels) + 1;
}

int levels_for_size(std::size_t n) {
  RSHC_REQUIRE(n >= 5, "wavelet grid too small");
  const std::size_t m = n - 1;
  RSHC_REQUIRE((m & (m - 1)) == 0, "wavelet grid must be 2^J + 1 points");
  int levels = 0;
  for (std::size_t x = m; x > 1; x >>= 1) ++levels;
  RSHC_REQUIRE(levels >= 2, "wavelet grid needs at least 2 levels");
  return levels;
}

void forward(std::span<double> v, int levels) {
  check_size(v.size(), levels);
  // Finest to coarsest: stride doubles each level.
  for (int lvl = 0; lvl < levels - 1; ++lvl) {
    const std::size_t s = static_cast<std::size_t>(1) << lvl;
    for (std::size_t k = s; k < v.size(); k += 2 * s) {
      v[k] -= predict(v, k, 2 * s);
    }
  }
  // Coarsest level has 3 points (0, mid, end); the mid point is predicted
  // by linear interpolation of the two endpoints (cubic needs 4 evens).
  const std::size_t s = v.size() / 2;
  v[s] -= 0.5 * (v[0] + v[v.size() - 1]);
}

void inverse(std::span<double> v, int levels) {
  check_size(v.size(), levels);
  const std::size_t s = v.size() / 2;
  v[s] += 0.5 * (v[0] + v[v.size() - 1]);
  for (int lvl = levels - 2; lvl >= 0; --lvl) {
    const std::size_t st = static_cast<std::size_t>(1) << lvl;
    for (std::size_t k = st; k < v.size(); k += 2 * st) {
      v[k] += predict(v, k, 2 * st);
    }
  }
}

Compression threshold(std::span<double> coeffs, int levels, double eps) {
  check_size(coeffs.size(), levels);
  RSHC_REQUIRE(eps >= 0.0, "threshold must be non-negative");
  Compression c;
  // Every index that is not a multiple of 2^levels... the only pure
  // scaling points are 0 and n-1 plus the coarsest midpoint's parents;
  // operationally: all odd multiples of every stride are details.
  for (std::size_t k = 1; k + 1 < coeffs.size(); ++k) {
    // k is a detail index unless it is an endpoint; the coarsest midpoint
    // is also a detail (predicted linearly).
    ++c.total;
    if (std::abs(coeffs[k]) < eps) {
      c.max_dropped = std::max(c.max_dropped, std::abs(coeffs[k]));
      coeffs[k] = 0.0;
    } else {
      ++c.kept;
    }
  }
  return c;
}

Compression compress_roundtrip(std::span<const double> values, double eps,
                               std::span<double> out) {
  RSHC_REQUIRE(values.size() == out.size(),
               "compress_roundtrip size mismatch");
  const int levels = levels_for_size(values.size());
  std::copy(values.begin(), values.end(), out.begin());
  forward(out, levels);
  const Compression c = threshold(out, levels, eps);
  inverse(out, levels);
  return c;
}

void active_mask(std::span<const double> coeffs, int levels, double eps,
                 std::span<std::uint8_t> mask) {
  check_size(coeffs.size(), levels);
  RSHC_REQUIRE(mask.size() == coeffs.size(), "mask size mismatch");
  mask[0] = 1;
  mask[mask.size() - 1] = 1;
  for (std::size_t k = 1; k + 1 < coeffs.size(); ++k) {
    mask[k] = std::abs(coeffs[k]) >= eps ? 1 : 0;
  }
}

void forward_2d(std::span<double> v, std::size_t nx, std::size_t ny,
                int levels) {
  RSHC_REQUIRE(v.size() == nx * ny, "2d field size mismatch");
  check_size(nx, levels);
  check_size(ny, levels);
  // Rows.
  for (std::size_t j = 0; j < ny; ++j) {
    forward(v.subspan(j * nx, nx), levels);
  }
  // Columns via a strided gather/scatter.
  std::vector<double> col(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) col[j] = v[j * nx + i];
    forward(col, levels);
    for (std::size_t j = 0; j < ny; ++j) v[j * nx + i] = col[j];
  }
}

void inverse_2d(std::span<double> v, std::size_t nx, std::size_t ny,
                int levels) {
  RSHC_REQUIRE(v.size() == nx * ny, "2d field size mismatch");
  check_size(nx, levels);
  check_size(ny, levels);
  std::vector<double> col(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) col[j] = v[j * nx + i];
    inverse(col, levels);
    for (std::size_t j = 0; j < ny; ++j) v[j * nx + i] = col[j];
  }
  for (std::size_t j = 0; j < ny; ++j) {
    inverse(v.subspan(j * nx, nx), levels);
  }
}

}  // namespace rshc::wavelet
