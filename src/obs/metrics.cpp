#include "rshc/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rshc::obs {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::string s(v);
  if (s == "0" || s == "off" || s == "OFF" || s == "false") return false;
  return true;
}

std::atomic<bool>& enabled_flag() {
  // relaxed: master on/off switch; a stale read drops or keeps one sample.
  static std::atomic<bool> flag{env_flag("RSHC_OBS", true)};
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_stripe() noexcept {
  // relaxed: stripe-index allocator; uniqueness mod kStripes only.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return mine;
}

void atomic_double_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_double_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// --- Counter ---------------------------------------------------------------

std::int64_t Counter::total() const noexcept {
  std::int64_t sum = 0;
  for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// --- TimeHist --------------------------------------------------------------

std::size_t TimeHist::bin_index(std::int64_t ns) noexcept {
  if (ns <= 0) return 0;
  const auto width =
      std::bit_width(static_cast<std::uint64_t>(ns));  // floor(log2)+1
  return std::min<std::size_t>(kNumBins - 1,
                               static_cast<std::size_t>(width - 1));
}

void TimeHist::record_ns(std::int64_t ns) noexcept {
  if (ns < 0) ns = 0;
  Cell& c = cells_[detail::thread_stripe()];
  const double dns = static_cast<double>(ns);
  c.count.fetch_add(1, std::memory_order_relaxed);
  // sum via CAS-free fetch_add (C++20 atomic<double>).
  c.sum_ns.fetch_add(dns, std::memory_order_relaxed);
  detail::atomic_double_min(c.min_ns, dns);
  detail::atomic_double_max(c.max_ns, dns);
  c.bins[bin_index(ns)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t TimeHist::count() const noexcept {
  std::int64_t n = 0;
  for (const auto& c : cells_) n += c.count.load(std::memory_order_relaxed);
  return n;
}

double TimeHist::sum_seconds() const noexcept {
  double s = 0.0;
  for (const auto& c : cells_) s += c.sum_ns.load(std::memory_order_relaxed);
  return s * 1e-9;
}

double TimeHist::min_seconds() const noexcept {
  double m = 0.0;
  bool seen = false;
  for (const auto& c : cells_) {
    if (c.count.load(std::memory_order_relaxed) == 0) continue;
    const double v = c.min_ns.load(std::memory_order_relaxed);
    m = seen ? std::min(m, v) : v;
    seen = true;
  }
  return m * 1e-9;
}

double TimeHist::max_seconds() const noexcept {
  double m = 0.0;
  for (const auto& c : cells_) {
    if (c.count.load(std::memory_order_relaxed) == 0) continue;
    m = std::max(m, c.max_ns.load(std::memory_order_relaxed));
  }
  return m * 1e-9;
}

double TimeHist::percentile_from_bins(std::span<const std::int64_t> bins,
                                      double q, double min_seconds,
                                      double max_seconds) noexcept {
  std::int64_t total = 0;
  for (const auto b : bins) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    const double next = cum + static_cast<double>(bins[i]);
    if (next >= target) {
      // Bin i covers [2^i, 2^(i+1)) ns (bin 0 starts at 0); interpolate
      // linearly by rank inside it, then clamp to the exact envelope —
      // which also bounds the open-ended last bin.
      const double lo = i == 0 ? 0.0 : static_cast<double>(std::int64_t{1} << i);
      const double hi = static_cast<double>(std::int64_t{1} << (i + 1));
      const double frac =
          std::clamp((target - cum) / static_cast<double>(bins[i]), 0.0, 1.0);
      const double v = (lo + frac * (hi - lo)) * 1e-9;
      return std::clamp(v, min_seconds, max_seconds);
    }
    cum = next;
  }
  return max_seconds;
}

double TimeHist::percentile_seconds(double q) const noexcept {
  const auto b = bins();
  return percentile_from_bins(std::span<const std::int64_t>(b), q,
                              min_seconds(), max_seconds());
}

std::array<std::int64_t, TimeHist::kNumBins> TimeHist::bins() const noexcept {
  std::array<std::int64_t, kNumBins> out{};
  for (const auto& c : cells_) {
    for (std::size_t b = 0; b < kNumBins; ++b) {
      out[b] += c.bins[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void TimeHist::reset() noexcept {
  for (auto& c : cells_) {
    c.count.store(0, std::memory_order_relaxed);
    c.sum_ns.store(0.0, std::memory_order_relaxed);
    c.min_ns.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    c.max_ns.store(0.0, std::memory_order_relaxed);
    for (auto& b : c.bins) b.store(0, std::memory_order_relaxed);
  }
}

// --- Snapshot --------------------------------------------------------------

const Snapshot::Entry* Snapshot::find(std::string_view name) const noexcept {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double Snapshot::value_or(std::string_view name,
                          double fallback) const noexcept {
  const Entry* e = find(name);
  return e != nullptr ? e->value : fallback;
}

namespace {

void json_escape_into(std::ostringstream& os, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << ch;
    }
  }
}

}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape_into(os, e.name);
    os << "\",\"kind\":\"" << e.kind << "\",\"value\":" << e.value;
    if (e.kind == "timer") {
      os << ",\"count\":" << e.count << ",\"min\":" << e.min
         << ",\"max\":" << e.max << ",\"p50\":" << e.p50
         << ",\"p90\":" << e.p90 << ",\"p99\":" << e.p99 << ",\"bins\":[";
      for (std::size_t b = 0; b < e.bins.size(); ++b) {
        if (b > 0) os << ",";
        os << e.bins[b];
      }
      os << "]";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string Snapshot::to_csv() const {
  std::ostringstream os;
  os.precision(17);
  os << "name,kind,count,value,min,max,p50,p90,p99\n";
  for (const auto& e : entries) {
    os << e.name << "," << e.kind << "," << e.count << "," << e.value << ","
       << e.min << "," << e.max << "," << e.p50 << "," << e.p90 << ","
       << e.p99 << "\n";
  }
  return os.str();
}

// --- Registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

namespace {
// Per-thread registry override; plain thread_local (no atomics needed,
// only the owning thread reads or writes it).
thread_local Registry* tl_scoped_registry = nullptr;
}  // namespace

Registry* Registry::scoped() noexcept { return tl_scoped_registry; }

ScopedRegistry::ScopedRegistry(Registry& reg) noexcept
    : prev_(tl_scoped_registry) {
  tl_scoped_registry = &reg;
}

ScopedRegistry::~ScopedRegistry() { tl_scoped_registry = prev_; }

Counter& Registry::counter(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

TimeHist& Registry::timer(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<TimeHist>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  LockGuard lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, c] : counters_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "counter";
    e.value = static_cast<double>(c->total());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "gauge";
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, t] : timers_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = "timer";
    e.value = t->sum_seconds();
    e.count = t->count();
    e.min = t->min_seconds();
    e.max = t->max_seconds();
    const auto bins = t->bins();
    e.bins.assign(bins.begin(), bins.end());
    e.p50 = TimeHist::percentile_from_bins(e.bins, 0.50, e.min, e.max);
    e.p90 = TimeHist::percentile_from_bins(e.bins, 0.90, e.min, e.max);
    e.p99 = TimeHist::percentile_from_bins(e.bins, 0.99, e.min, e.max);
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.name != b.name ? a.name < b.name : a.kind < b.kind;
            });
  return snap;
}

void Registry::reset() {
  LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace rshc::obs
