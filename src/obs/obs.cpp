#include "rshc/obs/obs.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "rshc/obs/report.hpp"

namespace rshc::obs {

namespace {

bool env_on(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

}  // namespace

void maybe_dump(const std::string& prefix) {
  // Benches pass prefixes like "bench_results/<id>"; create the directory
  // part instead of silently writing nothing when it is absent.
  const std::filesystem::path parent =
      std::filesystem::path(prefix).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  if (env_on("RSHC_DUMP_METRICS")) {
    const std::string path = prefix + ".metrics.csv";
    std::ofstream os(path);
    if (os.good()) {
      os << Registry::global().snapshot().to_csv();
      std::cout << "[metrics: " << path << "]\n";
    }
  }
  if (env_on("RSHC_DUMP_TRACE")) {
    const std::string path = prefix + ".trace.json";
    Tracer::global().write_chrome_json_file(path);
    std::cout << "[trace: " << path << "]\n";
  }
  if (env_on("RSHC_DUMP_REPORT")) {
    const std::string path = prefix + ".report.json";
    report::RunReport rep;
    rep.suite = std::filesystem::path(prefix).filename().string();
    rep.hardware = report::probe_hardware();
    const Snapshot snap = Registry::global().snapshot();
    rep.phases = report::phases_from_snapshot(snap);
    rep.counters = report::counters_from_snapshot(snap);
    rep.write_file(path);
    std::cout << "[report: " << path << "]\n";
  }
}

}  // namespace rshc::obs
