#include "rshc/obs/obs.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

namespace rshc::obs {

namespace {

bool env_on(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

}  // namespace

void maybe_dump(const std::string& prefix) {
  if (env_on("RSHC_DUMP_METRICS")) {
    const std::string path = prefix + ".metrics.csv";
    std::ofstream os(path);
    if (os.good()) {
      os << Registry::global().snapshot().to_csv();
      std::cout << "[metrics: " << path << "]\n";
    }
  }
  if (env_on("RSHC_DUMP_TRACE")) {
    const std::string path = prefix + ".trace.json";
    Tracer::global().write_chrome_json_file(path);
    std::cout << "[trace: " << path << "]\n";
  }
}

}  // namespace rshc::obs
