#include "rshc/obs/report.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "rshc/common/error.hpp"
#include "rshc/obs/trace.hpp"

namespace rshc::obs::report {

HardwareProbe probe_hardware() {
  HardwareProbe hw;
  hw.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  hw.page_size = ::sysconf(_SC_PAGESIZE);
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (line.rfind("model name", 0) == 0 && colon != std::string::npos) {
      const auto start = line.find_first_not_of(" \t", colon + 1);
      if (start != std::string::npos) hw.cpu_model = line.substr(start);
      break;
    }
  }
  return hw;
}

namespace {

void json_escape_into(std::ostringstream& os, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << ch;
    }
  }
}

void phase_json_into(std::ostringstream& os, const PhaseStats& p) {
  os << "{\"name\":\"";
  json_escape_into(os, p.name);
  os << "\",\"count\":" << p.count << ",\"sum_s\":" << p.sum_s
     << ",\"min_s\":" << p.min_s << ",\"max_s\":" << p.max_s
     << ",\"p50_s\":" << p.p50_s << ",\"p90_s\":" << p.p90_s
     << ",\"p99_s\":" << p.p99_s;
  if (p.ranks.has_value()) {
    os << ",\"ranks\":{\"min_s\":" << p.ranks->min_s
       << ",\"mean_s\":" << p.ranks->mean_s
       << ",\"max_s\":" << p.ranks->max_s
       << ",\"imbalance\":" << p.ranks->imbalance << "}";
  }
  os << "}";
}

}  // namespace

std::string RunReport::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\":\"" << kSchemaName
     << "\",\"schema_version\":" << schema_version << ",\"suite\":\"";
  json_escape_into(os, suite);
  os << "\",\"git_sha\":\"";
  json_escape_into(os, git_sha);
  os << "\",\"build\":{\"type\":\"";
  json_escape_into(os, build_type);
  os << "\",\"flags\":\"";
  json_escape_into(os, build_flags);
  os << "\"},\"hardware\":{\"threads\":" << hardware.hardware_threads
     << ",\"page_size\":" << hardware.page_size << ",\"cpu\":\"";
  json_escape_into(os, hardware.cpu_model);
  os << "\"},\"ranks\":" << ranks << ",\"phases\":[";
  bool first = true;
  for (const auto& p : phases) {
    if (!first) os << ",";
    first = false;
    phase_json_into(os, p);
  }
  os << "],\"counters\":[";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape_into(os, name);
    os << "\",\"value\":" << value << "}";
  }
  os << "]}";
  return os.str();
}

void RunReport::write_file(const std::string& path) const {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream os(path);
  RSHC_REQUIRE(os.good(), "cannot open report output file: " + path);
  os << to_json() << "\n";
}

std::vector<PhaseStats> phases_from_snapshot(const Snapshot& snap,
                                             std::string_view prefix) {
  std::vector<PhaseStats> out;
  for (const auto& e : snap.entries) {
    if (e.kind != "timer" || e.count == 0) continue;
    if (!prefix.empty() && e.name.rfind(prefix, 0) != 0) continue;
    PhaseStats p;
    p.name = e.name;
    p.count = e.count;
    p.sum_s = e.value;
    p.min_s = e.min;
    p.max_s = e.max;
    p.p50_s = e.p50;
    p.p90_s = e.p90;
    p.p99_s = e.p99;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::pair<std::string, double>> counters_from_snapshot(
    const Snapshot& snap, std::string_view prefix) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& e : snap.entries) {
    if (e.kind != "counter") continue;
    if (!prefix.empty() && e.name.rfind(prefix, 0) != 0) continue;
    out.emplace_back(e.name, e.value);
  }
  return out;
}

std::vector<PhaseStats> phases_from_ranks(std::span<const Snapshot> per_rank,
                                          std::string_view name_prefix) {
  // Union of timer names across ranks, in sorted order.
  struct Merged {
    PhaseStats stats;
    std::vector<std::int64_t> bins;
    std::vector<double> rank_sums;
    bool any = false;
  };
  std::map<std::string, Merged> merged;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    for (const auto& e : per_rank[r].entries) {
      if (e.kind != "timer" || e.count == 0) continue;
      Merged& m = merged[e.name];
      if (m.rank_sums.empty()) m.rank_sums.assign(per_rank.size(), 0.0);
      if (m.bins.empty()) m.bins.assign(e.bins.size(), 0);
      m.stats.count += e.count;
      m.stats.sum_s += e.value;
      m.stats.min_s = m.any ? std::min(m.stats.min_s, e.min) : e.min;
      m.stats.max_s = std::max(m.stats.max_s, e.max);
      m.rank_sums[r] = e.value;
      for (std::size_t b = 0; b < e.bins.size() && b < m.bins.size(); ++b) {
        m.bins[b] += e.bins[b];
      }
      m.any = true;
    }
  }
  std::vector<PhaseStats> out;
  out.reserve(merged.size());
  const auto nranks = static_cast<double>(per_rank.size());
  for (auto& [name, m] : merged) {
    m.stats.name = std::string(name_prefix) + name;
    m.stats.p50_s = TimeHist::percentile_from_bins(m.bins, 0.50,
                                                   m.stats.min_s,
                                                   m.stats.max_s);
    m.stats.p90_s = TimeHist::percentile_from_bins(m.bins, 0.90,
                                                   m.stats.min_s,
                                                   m.stats.max_s);
    m.stats.p99_s = TimeHist::percentile_from_bins(m.bins, 0.99,
                                                   m.stats.min_s,
                                                   m.stats.max_s);
    RankStats rs;
    rs.min_s = *std::min_element(m.rank_sums.begin(), m.rank_sums.end());
    rs.max_s = *std::max_element(m.rank_sums.begin(), m.rank_sums.end());
    double total = 0.0;
    for (const double s : m.rank_sums) total += s;
    rs.mean_s = nranks > 0.0 ? total / nranks : 0.0;
    rs.imbalance = rs.mean_s > 0.0 ? rs.max_s / rs.mean_s : 0.0;
    m.stats.ranks = rs;
    out.push_back(std::move(m.stats));
  }
  return out;
}

RankScope::RankScope(Registry& reg, int rank)
    : registry_scope_(reg), prev_rank_(thread_rank()) {
  set_thread_rank(rank);
  Tracer::global().set_process_name(rank, "rank " + std::to_string(rank));
}

RankScope::~RankScope() { set_thread_rank(prev_rank_); }

}  // namespace rshc::obs::report
