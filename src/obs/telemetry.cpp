#include "rshc/obs/telemetry.hpp"

// With RSHC_OBS=OFF this TU compiles to an empty object (the header
// provides inline no-op stubs); the CI obs-off nm lane checks that.
#if RSHC_OBS_ENABLED

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "rshc/comm/communicator.hpp"
#include "rshc/obs/journal.hpp"
#include "rshc/obs/trace.hpp"
#include "rshc/parallel/task_graph.hpp"
#include "rshc/parallel/thread_pool.hpp"

namespace rshc::obs::telemetry {

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

bool env_off(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s == "0" || s == "off" || s == "OFF" || s == "false";
}

// Last heartbeat: low-frequency writes; mutex and payload travel together
// so the guarded-by relation is expressible.
struct HbState {
  Mutex mutex;
  Heartbeat hb RSHC_GUARDED_BY(mutex);
};

HbState& hb_state() {
  static HbState s;
  return s;
}

// relaxed: monotonic watchdog progress ticker, eventual visibility only.
std::atomic<std::uint64_t> g_hb_ticks{0};

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::vector<std::string> default_counter_tracks() {
  return {"device.h2d.bytes",  "device.d2h.bytes",
          "halo.bytes_sent",   "comm.bytes_sent",
          "solver.hb.step",    "solver.hb.zones_per_sec",
          "pool.queue_depth"};
}

SamplerOptions sampler_options_from_env() {
  SamplerOptions opt;
  opt.enabled = !env_off("RSHC_TELEMETRY");
  opt.interval = std::chrono::milliseconds(std::max(
      1, env_int("RSHC_TELEMETRY_INTERVAL_MS", kDefaultIntervalMs)));
  const char* out = std::getenv("RSHC_TELEMETRY_OUT");
  if (out != nullptr) opt.jsonl_path = out;
  opt.counter_tracks = default_counter_tracks();
  return opt;
}

WatchdogPolicy parse_watchdog_policy(std::string_view s) {
  if (s.empty() || s == "0" || s == "off" || s == "OFF" || s == "false") {
    return WatchdogPolicy::kOff;
  }
  if (s == "fatal" || s == "FATAL") return WatchdogPolicy::kFatal;
  return WatchdogPolicy::kWarn;
}

WatchdogOptions watchdog_options_from_env() {
  WatchdogOptions opt;
  const char* v = std::getenv("RSHC_WATCHDOG");
  opt.policy =
      v == nullptr ? WatchdogPolicy::kOff : parse_watchdog_policy(v);
  opt.timeout = std::chrono::milliseconds(std::max(
      1, env_int("RSHC_WATCHDOG_TIMEOUT_MS", kDefaultWatchdogTimeoutMs)));
  return opt;
}

void publish_heartbeat(std::int64_t step, double t, double dt,
                       double zones_per_sec) noexcept {
  if (!enabled()) return;
  // noexcept: first-use metric registration can allocate; dropping one
  // heartbeat beats terminating the solver step that published it.
  try {
    Registry* scoped = Registry::scoped();
    Registry* reg = scoped != nullptr ? scoped : &Registry::global();
    Heartbeat hb;
    hb.step = step;
    hb.t = t;
    hb.dt = dt;
    hb.zones_per_sec = zones_per_sec;
    // Halo traffic is counted in the publishing rank's registry; device
    // transfers are counted by unscoped stream-worker threads, i.e. in
    // the global registry.
    hb.halo_bytes =
        static_cast<double>(reg->counter("halo.bytes_sent").total());
    hb.h2d_bytes = static_cast<double>(
        Registry::global().counter("device.h2d.bytes").total());
    hb.d2h_bytes = static_cast<double>(
        Registry::global().counter("device.d2h.bytes").total());
    reg->gauge("solver.hb.step").set(static_cast<double>(step));
    reg->gauge("solver.hb.t").set(t);
    reg->gauge("solver.hb.dt").set(dt);
    reg->gauge("solver.hb.zones_per_sec").set(zones_per_sec);
    reg->gauge("solver.hb.mlups").set(zones_per_sec / 1e6);
    reg->gauge("solver.hb.halo_bytes").set(hb.halo_bytes);
    reg->gauge("solver.hb.h2d_bytes").set(hb.h2d_bytes);
    reg->gauge("solver.hb.d2h_bytes").set(hb.d2h_bytes);
    // The process-wide heartbeat view and the watchdog progress ticker
    // belong to unscoped (whole-process) solvers only. A thread under a
    // ScopedRegistry is one job of a multi-job process (simulation
    // service): letting it tick the global watchdog would mask another
    // job's stall, and letting it overwrite last_heartbeat() would smear
    // unrelated jobs' progress into one bogus stream. Per-job stall
    // detection for scoped jobs lives in serve::SimulationService.
    if (scoped == nullptr) {
      {
        HbState& s = hb_state();
        LockGuard lock(s.mutex);
        s.hb = hb;
      }
      g_hb_ticks.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (...) {
  }
}

std::uint64_t heartbeat_ticks() noexcept {
  return g_hb_ticks.load(std::memory_order_relaxed);
}

Heartbeat last_heartbeat() {
  HbState& s = hb_state();
  LockGuard lock(s.mutex);
  return s.hb;
}

// --- Sampler ---------------------------------------------------------

Sampler::Sampler(SamplerOptions opt) : opt_(std::move(opt)) {
  if (opt_.enabled && !opt_.jsonl_path.empty()) open_stream();
}

Sampler::~Sampler() {
  stop();
  LockGuard lock(mutex_);
  if (stream_open_) os_.close();
  stream_open_ = false;
}

void Sampler::open_stream() {
  namespace fs = std::filesystem;
  const fs::path parent = fs::path(opt_.jsonl_path).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  std::string line;
  line += "{\"schema\":\"";
  line += kSchemaName;
  line += "\",\"v\":";
  line += std::to_string(kSchemaVersion);
  line += ",\"kind\":\"config\",\"interval_ms\":";
  line += std::to_string(opt_.interval.count());
  line += ",\"ring_capacity\":";
  line += std::to_string(opt_.ring_capacity);
  line += ",\"ts_ms\":";
  append_double(line, static_cast<double>(now_ns()) / 1e6);
  line += '}';
  LockGuard lock(mutex_);
  os_.open(opt_.jsonl_path, std::ios::trunc);
  stream_open_ = os_.good();
  if (stream_open_) {
    os_ << line << '\n';
    os_.flush();
  }
}

void Sampler::attach_registry(int pid, const Registry* reg) {
  LockGuard lock(mutex_);
  extra_.emplace_back(pid, reg);
}

void Sampler::detach_registries() {
  LockGuard lock(mutex_);
  extra_.clear();
}

void Sampler::sample_now() {
  std::vector<std::pair<int, const Registry*>> regs;
  regs.emplace_back(0, &Registry::global());
  {
    LockGuard lock(mutex_);
    regs.insert(regs.end(), extra_.begin(), extra_.end());
  }
  const std::int64_t ts = now_ns() / 1'000'000;
  const Heartbeat hb = last_heartbeat();
  const std::uint64_t ticks = heartbeat_ticks();

  std::vector<Sample> taken;
  taken.reserve(regs.size());
  for (const auto& [pid, reg] : regs) {
    Sample s;
    s.ts_ms = ts;
    s.pid = pid;
    s.snapshot = reg->snapshot();
    taken.push_back(std::move(s));
  }

  // Counter-event emission happens outside mutex_ (the tracer takes its
  // own locks; keeping the two lock families un-nested keeps the process
  // lock-order graph trivially acyclic).
  if (tracing_active()) {
    for (const Sample& s : taken) {
      for (const std::string& name : opt_.counter_tracks) {
        if (const Snapshot::Entry* e = s.snapshot.find(name)) {
          Tracer::global().record_counter(name, "telemetry", e->value, s.pid);
        }
      }
    }
  }

  LockGuard lock(mutex_);
  for (Sample& s : taken) {
    s.seq = seq_++;
    if (stream_open_) {
      std::string line;
      line.reserve(512);
      line += "{\"schema\":\"";
      line += kSchemaName;
      line += "\",\"v\":";
      line += std::to_string(kSchemaVersion);
      line += ",\"kind\":\"sample\",\"seq\":";
      line += std::to_string(s.seq);
      line += ",\"ts_ms\":";
      line += std::to_string(s.ts_ms);
      line += ",\"pid\":";
      line += std::to_string(s.pid);
      line += ",\"hb\":{\"step\":";
      line += std::to_string(hb.step);
      line += ",\"t\":";
      append_double(line, hb.t);
      line += ",\"dt\":";
      append_double(line, hb.dt);
      line += ",\"zones_per_sec\":";
      append_double(line, hb.zones_per_sec);
      line += ",\"ticks\":";
      line += std::to_string(ticks);
      line += "},\"metrics\":{";
      bool first = true;
      for (const Snapshot::Entry& e : s.snapshot.entries) {
        if (!first) line += ',';
        first = false;
        line += '"';
        journal::append_json_escaped(line, e.name);
        line += "\":";
        append_double(line, e.value);
      }
      line += "}}";
      os_ << line << '\n';
    }
    if (opt_.ring_capacity > 0) {
      if (ring_.size() < opt_.ring_capacity) {
        ring_.push_back(std::move(s));
      } else {
        ring_[ring_next_] = std::move(s);
        ring_next_ = (ring_next_ + 1) % opt_.ring_capacity;
      }
      ++ring_written_;
    }
  }
  if (stream_open_) os_.flush();
  taken_.fetch_add(static_cast<std::int64_t>(taken.size()),
                   std::memory_order_relaxed);
}

std::vector<Sample> Sampler::samples() const {
  LockGuard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // Oldest-first: when wrapped, the oldest live sample sits at ring_next_.
  const std::size_t n = ring_.size();
  const std::size_t start = ring_written_ > n ? ring_next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % n]);
  }
  return out;
}

std::int64_t Sampler::samples_taken() const noexcept {
  return taken_.load(std::memory_order_relaxed);
}

void Sampler::start() {
  if (!opt_.enabled || thread_.joinable()) return;
  {
    LockGuard lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() noexcept {
  // noexcept: shutdown path; sampling failure must not escape.
  try {
    if (!thread_.joinable()) return;
    {
      LockGuard lock(mutex_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // One final sample so short runs always record their end state.
    sample_now();
  } catch (...) {
  }
}

void Sampler::loop() {
  // Thread entry: swallow rather than terminate on a sampling failure.
  try {
    for (;;) {
      {
        LockGuard lock(mutex_);
        cv_.wait_for(lock.native_lock(), opt_.interval, [this] {
          mutex_.assert_held();  // predicate runs under the wait's lock
          return stop_requested_;
        });
        if (stop_requested_) return;
      }
      sample_now();
    }
  } catch (...) {
  }
}

// --- Watchdog --------------------------------------------------------

Watchdog::Watchdog(WatchdogOptions opt)
    : opt_(opt),
      // Warn-mode log output at most once per stall window (and never
      // more often than once a second); the journal records every firing.
      warn_limit_(std::chrono::milliseconds(
          std::max<long long>(opt.timeout.count(), 1000))) {}

Watchdog::~Watchdog() { stop(); }

std::uint64_t Watchdog::progress_signal() noexcept {
  return heartbeat_ticks() +
         static_cast<std::uint64_t>(
             parallel::introspect::graph_nodes_finished()) +
         static_cast<std::uint64_t>(
             parallel::introspect::pool_tasks_finished()) +
         static_cast<std::uint64_t>(comm::introspect::messages_received());
}

std::int64_t Watchdog::pending_work() noexcept {
  return parallel::introspect::pending_graph_nodes() +
         comm::introspect::mailbox_depth();
}

std::int64_t Watchdog::stalls_detected() const noexcept {
  return stalls_.load(std::memory_order_relaxed);
}

void Watchdog::start() {
  if (opt_.policy == WatchdogPolicy::kOff || thread_.joinable()) return;
  {
    LockGuard lock(mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() noexcept {
  // noexcept: shutdown path (same policy as Sampler::stop).
  try {
    if (!thread_.joinable()) return;
    {
      LockGuard lock(mutex_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
  } catch (...) {
  }
}

void Watchdog::loop() {
  // Thread entry: swallow rather than terminate on a diagnostic failure.
  try {
    const auto poll =
        opt_.poll.count() > 0
            ? opt_.poll
            : std::max(std::chrono::milliseconds(10), opt_.timeout / 4);
    std::uint64_t last_progress = progress_signal();
    auto last_change = std::chrono::steady_clock::now();
    for (;;) {
      {
        LockGuard lock(mutex_);
        cv_.wait_for(lock.native_lock(), poll, [this] {
          mutex_.assert_held();  // predicate runs under the wait's lock
          return stop_requested_;
        });
        if (stop_requested_) return;
      }
      const std::uint64_t p = progress_signal();
      const auto now = std::chrono::steady_clock::now();
      if (p != last_progress) {
        last_progress = p;
        last_change = now;
        continue;
      }
      if (pending_work() <= 0) {
        // Nothing visibly pending: idle, not stalled.
        last_change = now;
        continue;
      }
      const auto idle = now - last_change;
      if (idle >= opt_.timeout) {
        fire(std::chrono::duration_cast<std::chrono::milliseconds>(idle)
                 .count());
        // Re-arm: the next firing needs another full quiet timeout.
        last_change = now;
      }
    }
  } catch (...) {
  }
}

void Watchdog::fire(std::int64_t idle_ms) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  const Heartbeat hb = last_heartbeat();
  const std::int64_t pending_nodes =
      parallel::introspect::pending_graph_nodes();
  const std::int64_t mailbox_depth = comm::introspect::mailbox_depth();
  const std::int64_t pool_busy = parallel::introspect::pool_busy_workers();
  journal::Journal::global().event(
      "watchdog",
      {{"idle_ms", idle_ms},
       {"policy",
        opt_.policy == WatchdogPolicy::kFatal ? "fatal" : "warn"},
       {"pending_nodes", pending_nodes},
       {"mailbox_depth", mailbox_depth},
       {"pool_busy", pool_busy},
       {"heartbeat_step", hb.step},
       {"heartbeat_t", hb.t},
       {"heartbeat_zones_per_sec", hb.zones_per_sec},
       journal::Field::raw("registry",
                           Registry::global().snapshot().to_json())});
  if (opt_.policy == WatchdogPolicy::kFatal) {
    log::error("rshc watchdog: no progress for ", idle_ms,
               " ms with pending work (graph nodes ", pending_nodes,
               ", mailbox depth ", mailbox_depth,
               "); aborting (RSHC_WATCHDOG=fatal)");
    std::abort();
  }
  log::warn_limited(warn_limit_, "rshc watchdog: no progress for ", idle_ms,
                    " ms (pending graph nodes ", pending_nodes,
                    ", mailbox depth ", mailbox_depth, ", busy workers ",
                    pool_busy, ")");
}

}  // namespace rshc::obs::telemetry

#endif  // RSHC_OBS_ENABLED
