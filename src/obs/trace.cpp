#include "rshc/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "rshc/common/error.hpp"
#include "rshc/obs/metrics.hpp"

namespace rshc::obs {

namespace {

std::atomic<bool>& tracing_flag() {
  // relaxed: tracing on/off switch; a stale read drops or keeps one span.
  static std::atomic<bool> flag{[] {
    const char* v = std::getenv("RSHC_TRACE");
    if (v == nullptr || *v == '\0') return false;
    const std::string s(v);
    return !(s == "0" || s == "off" || s == "OFF" || s == "false");
  }()};
  return flag;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool tracing_active() noexcept {
  return tracing_flag().load(std::memory_order_relaxed) && enabled();
}

void set_tracing(bool on) noexcept {
  if (on) (void)trace_epoch();  // pin the epoch no later than enablement
  tracing_flag().store(on, std::memory_order_relaxed);
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

namespace {
// Per-thread rank label; plain thread_local, owner-thread access only.
thread_local int tl_thread_rank = 0;
}  // namespace

void set_thread_rank(int rank) noexcept { tl_thread_rank = rank; }

int thread_rank() noexcept { return tl_thread_rank; }

// Fixed-capacity overwrite-oldest ring. Writers are single-threaded (each
// thread owns one ring); the mutex only serializes against export/clear.
// Lock order: Tracer::mutex_ -> Ring::mutex (export/clear/resize take the
// tracer lock first); push() takes only its own ring's mutex.
struct Tracer::Ring {
  Mutex mutex;
  std::vector<TraceEvent> buf RSHC_GUARDED_BY(mutex);
  std::size_t next RSHC_GUARDED_BY(mutex) = 0;       // slot for the next event
  std::uint64_t written RSHC_GUARDED_BY(mutex) = 0;  // lifetime events
  std::uint32_t tid = 0;

  explicit Ring(std::size_t capacity, std::uint32_t tid_in) : tid(tid_in) {
    buf.resize(capacity);
  }

  void push(const TraceEvent& ev) RSHC_EXCLUDES(mutex) {
    LockGuard lock(mutex);
    buf[next] = ev;
    next = (next + 1) % buf.size();
    ++written;
  }
};

Tracer::Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Ring& Tracer::my_ring() {
  thread_local Ring* mine = nullptr;
  thread_local const Tracer* owner = nullptr;
  if (mine == nullptr || owner != this) {
    LockGuard lock(mutex_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size())));
    mine = rings_.back().get();
    owner = this;
  }
  return *mine;
}

void Tracer::record_span(const char* name, const char* cat, std::int64_t id,
                         std::int64_t t0_ns, std::int64_t t1_ns) {
  Ring& ring = my_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.id = id;
  ev.t0_ns = t0_ns;
  ev.t1_ns = t1_ns;
  ev.tid = ring.tid;
  ev.pid = tl_thread_rank;
  ring.push(ev);
}

void Tracer::record_flow(const char* name, const char* cat,
                         std::uint64_t flow_id, EventKind kind) {
  Ring& ring = my_ring();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.flow_id = flow_id;
  ev.t0_ns = now_ns();
  ev.t1_ns = ev.t0_ns;
  ev.tid = ring.tid;
  ev.pid = tl_thread_rank;
  ev.kind = kind;
  ring.push(ev);
}

const char* Tracer::intern_name(std::string_view name) {
  LockGuard lock(mutex_);
  auto it = interned_.find(name);
  if (it == interned_.end()) it = interned_.emplace(name).first;
  return it->c_str();
}

void Tracer::record_counter(std::string_view name, const char* cat,
                            double value, int pid) {
  // Intern first (takes mutex_), then push (takes only the ring's mutex):
  // the documented mutex_ -> Ring::mutex order is never inverted.
  const char* interned = intern_name(name);
  Ring& ring = my_ring();
  TraceEvent ev;
  ev.name = interned;
  ev.cat = cat;
  ev.value = value;
  ev.t0_ns = now_ns();
  ev.t1_ns = ev.t0_ns;
  ev.tid = ring.tid;
  ev.pid = pid >= 0 ? pid : tl_thread_rank;
  ev.kind = EventKind::kCounter;
  ring.push(ev);
}

void Tracer::set_process_name(int pid, std::string name) {
  LockGuard lock(mutex_);
  process_names_[pid] = std::move(name);
}

void Tracer::set_current_thread_name(std::string name) {
  const std::uint32_t tid = my_ring().tid;
  LockGuard lock(mutex_);
  thread_names_[tid] = std::move(name);
}

std::uint64_t flow_begin(const char* name, const char* cat) {
  if (!tracing_active()) return 0;
  // relaxed: id allocator; uniqueness is all that matters (0 is reserved
  // for "no flow").
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  Tracer::global().record_flow(name, cat, id, EventKind::kFlowStart);
  return id;
}

void flow_end(const char* name, const char* cat, std::uint64_t id) {
  if (id == 0 || !tracing_active()) return;
  Tracer::global().record_flow(name, cat, id, EventKind::kFlowEnd);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  LockGuard lock(mutex_);
  for (const auto& ring : rings_) {
    LockGuard rlock(ring->mutex);
    const std::size_t cap = ring->buf.size();
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(ring->written, cap));
    // Oldest-first: when wrapped, the oldest live event sits at `next`.
    const std::size_t start = ring->written > cap ? ring->next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring->buf[(start + i) % cap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns
                                        : a.t1_ns > b.t1_ns;
            });
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const auto evs = events();
  std::map<int, std::string> process_names;
  std::map<std::uint32_t, std::string> thread_names;
  {
    LockGuard lock(mutex_);
    process_names = process_names_;
    thread_names = thread_names_;
  }
  // Tracks present in the buffered events; every one gets ph:"M" metadata
  // so Perfetto shows rank/thread labels instead of bare numeric pids.
  std::map<int, std::vector<std::uint32_t>> tracks;
  for (const auto& ev : evs) {
    auto& tids = tracks[ev.pid];
    if (std::find(tids.begin(), tids.end(), ev.tid) == tids.end()) {
      tids.push_back(ev.tid);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const auto& [pid, tids] : tracks) {
    if (!first) os << ",";
    first = false;
    const auto pit = process_names.find(pid);
    const std::string pname =
        pit != process_names.end() ? pit->second
                                   : "rank " + std::to_string(pid);
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << pname << "\"}}";
    for (const auto tid : tids) {
      const auto tit = thread_names.find(tid);
      const std::string tname = tit != thread_names.end()
                                    ? tit->second
                                    : "tid " + std::to_string(tid);
      os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << tname
         << "\"}}";
    }
  }
  for (const auto& ev : evs) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << (ev.name != nullptr ? ev.name : "")
       << "\",\"cat\":\"" << (ev.cat != nullptr ? ev.cat : "") << "\"";
    if (ev.kind == EventKind::kSpan) {
      os << ",\"ph\":\"X\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                    static_cast<double>(ev.t0_ns) / 1e3,
                    static_cast<double>(ev.t1_ns - ev.t0_ns) / 1e3);
      os << buf;
      if (ev.id >= 0) os << ",\"args\":{\"id\":" << ev.id << "}";
    } else if (ev.kind == EventKind::kCounter) {
      // Counter track: Perfetto plots args values against ts on the pid's
      // process track, lining metric samples up with the phase spans.
      os << ",\"ph\":\"C\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                    static_cast<double>(ev.t0_ns) / 1e3);
      os << buf;
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.17g}",
                    ev.value);
      os << buf;
    } else {
      // Flow endpoints bind to the span enclosing their timestamp on the
      // same (pid, tid) track; bp:"e" attaches the end to the enclosing
      // slice instead of the next one.
      os << ",\"ph\":\""
         << (ev.kind == EventKind::kFlowStart ? "s" : "f") << "\"";
      if (ev.kind == EventKind::kFlowEnd) os << ",\"bp\":\"e\"";
      os << ",\"id\":" << ev.flow_id << ",\"pid\":" << ev.pid
         << ",\"tid\":" << ev.tid;
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                    static_cast<double>(ev.t0_ns) / 1e3);
      os << buf;
    }
    os << "}";
  }
  os << "]}";
}

void Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path);
  RSHC_REQUIRE(os.good(), "cannot open trace output file: " + path);
  write_chrome_json(os);
}

void Tracer::clear() {
  LockGuard lock(mutex_);
  for (auto& ring : rings_) {
    LockGuard rlock(ring->mutex);
    ring->next = 0;
    ring->written = 0;
  }
}

void Tracer::set_ring_capacity(std::size_t events_per_thread) {
  RSHC_REQUIRE(events_per_thread >= 1, "trace ring capacity must be >= 1");
  LockGuard lock(mutex_);
  capacity_ = events_per_thread;
  for (auto& ring : rings_) {
    LockGuard rlock(ring->mutex);
    ring->buf.assign(events_per_thread, TraceEvent{});
    ring->next = 0;
    ring->written = 0;
  }
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t d = 0;
  LockGuard lock(mutex_);
  for (const auto& ring : rings_) {
    LockGuard rlock(ring->mutex);
    const auto cap = static_cast<std::uint64_t>(ring->buf.size());
    if (ring->written > cap) d += ring->written - cap;
  }
  return d;
}

}  // namespace rshc::obs
