#include "rshc/obs/journal.hpp"

// With RSHC_OBS=OFF this TU compiles to an empty object (the header
// provides inline no-op stubs); the CI obs-off nm lane checks that.
#if RSHC_OBS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "rshc/check/check.hpp"
#include "rshc/obs/trace.hpp"

namespace rshc::obs::journal {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

Field::Field(std::string_view k, std::string_view v) : key(k) {
  rendered.reserve(v.size() + 2);
  rendered += '"';
  append_json_escaped(rendered, v);
  rendered += '"';
}

Field::Field(std::string_view k, double v) : key(k) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  rendered = buf;
}

Field::Field(std::string_view k, std::int64_t v) : key(k) {
  rendered = std::to_string(v);
}

Field Field::raw(std::string_view k, std::string_view json) {
  Field f;
  f.key = k;
  f.rendered = json;
  return f;
}

Journal& Journal::global() {
  static Journal j;
  static const bool opened_from_env = [] {
    const char* v = std::getenv("RSHC_JOURNAL_OUT");
    if (v != nullptr && *v != '\0') j.open(v);
    return true;
  }();
  (void)opened_from_env;
  return j;
}

Journal::~Journal() { close(); }

void Journal::open(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  LockGuard lock(mutex_);
  if (open_) os_.close();
  os_.open(path, std::ios::trunc);
  open_ = os_.good();
  events_.store(0, std::memory_order_relaxed);
}

void Journal::close() {
  LockGuard lock(mutex_);
  if (open_) os_.close();
  open_ = false;
}

bool Journal::active() const {
  LockGuard lock(mutex_);
  return open_;
}

void Journal::set_provenance(std::string git_sha) {
  LockGuard lock(mutex_);
  git_sha_ = std::move(git_sha);
}

void Journal::event(std::string_view type,
                    std::initializer_list<Field> fields) noexcept {
  // Never throws: a journal allocation or I/O failure must not take down
  // the run it documents (event() runs inside check::fail and the
  // watchdog, possibly moments before an abort).
  try {
    std::string line;
    line.reserve(256);
    line += "{\"schema\":\"";
    line += kSchemaName;
    line += "\",\"v\":";
    line += std::to_string(kSchemaVersion);
    line += ",\"event\":\"";
    append_json_escaped(line, type);
    line += '"';
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"ts_ms\":%.3f",
                  static_cast<double>(now_ns()) / 1e6);
    line += buf;
    line += ",\"rank\":";
    line += std::to_string(thread_rank());
    LockGuard lock(mutex_);
    if (!open_) return;
    line += ",\"git_sha\":\"";
    append_json_escaped(line, git_sha_);
    line += '"';
    for (const Field& f : fields) {
      line += ",\"";
      append_json_escaped(line, f.key);
      line += "\":";
      line += f.rendered;
    }
    line += '}';
    os_ << line << '\n';
    // Flush per event: lines are rare and the next one may never come.
    os_.flush();
    events_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
  }
}

std::int64_t Journal::events_written() const noexcept {
  return events_.load(std::memory_order_relaxed);
}

void install_check_hook() noexcept {
  check::set_failure_hook([](const char* report) {
    Journal::global().event("check_failure",
                            {{"report", std::string_view(report)}});
  });
}

void run_start(std::string_view name) noexcept {
  Journal::global().event("run_start", {{"name", name}});
}

void run_end(std::string_view name) noexcept {
  Journal::global().event("run_end", {{"name", name}});
}

void checkpoint(std::string_view path, double time) noexcept {
  Journal::global().event("checkpoint", {{"path", path}, {"t", time}});
}

}  // namespace rshc::obs::journal

#endif  // RSHC_OBS_ENABLED
