#include "rshc/mesh/decomposition.hpp"

namespace rshc::mesh {

Decomposition::Decomposition(const Grid& grid, std::array<int, 3> nblocks)
    : grid_(&grid), nb_(nblocks) {
  for (int a = 0; a < 3; ++a) {
    auto& sa = nb_[static_cast<std::size_t>(a)];
    if (a >= grid.ndim()) sa = 1;
    RSHC_REQUIRE(sa >= 1, "block count must be positive");
    const long long n = grid.extent(a);
    RSHC_REQUIRE(sa <= n, "more blocks than cells along an axis");
    auto& splits = splits_[static_cast<std::size_t>(a)];
    splits.resize(static_cast<std::size_t>(sa) + 1);
    const long long base = n / sa;
    const long long rem = n % sa;
    splits[0] = 0;
    for (int b = 0; b < sa; ++b) {
      splits[static_cast<std::size_t>(b) + 1] =
          splits[static_cast<std::size_t>(b)] + base + (b < rem ? 1 : 0);
    }
  }
}

int Decomposition::block_id(std::array<int, 3> c) const {
  for (int a = 0; a < 3; ++a) {
    RSHC_REQUIRE(c[static_cast<std::size_t>(a)] >= 0 &&
                     c[static_cast<std::size_t>(a)] <
                         nb_[static_cast<std::size_t>(a)],
                 "block coordinate out of range");
  }
  return (c[2] * nb_[1] + c[1]) * nb_[0] + c[0];
}

std::array<int, 3> Decomposition::block_coords(int id) const {
  RSHC_REQUIRE(id >= 0 && id < num_blocks(), "block id out of range");
  std::array<int, 3> c;
  c[0] = id % nb_[0];
  c[1] = (id / nb_[0]) % nb_[1];
  c[2] = id / (nb_[0] * nb_[1]);
  return c;
}

BlockExtents Decomposition::extents(int id) const {
  const auto c = block_coords(id);
  BlockExtents e;
  for (int a = 0; a < 3; ++a) {
    const auto& splits = splits_[static_cast<std::size_t>(a)];
    e.lo[static_cast<std::size_t>(a)] =
        splits[static_cast<std::size_t>(c[static_cast<std::size_t>(a)])];
    e.hi[static_cast<std::size_t>(a)] =
        splits[static_cast<std::size_t>(c[static_cast<std::size_t>(a)]) + 1];
  }
  return e;
}

std::optional<int> Decomposition::neighbor(int id, int axis, int side,
                                           bool periodic) const {
  auto c = block_coords(id);
  const int d = nb_[static_cast<std::size_t>(axis)];
  int x = c[static_cast<std::size_t>(axis)] + (side == 0 ? -1 : 1);
  if (x < 0 || x >= d) {
    if (!periodic) return std::nullopt;
    x = (x + d) % d;
  }
  c[static_cast<std::size_t>(axis)] = x;
  return block_id(c);
}

}  // namespace rshc::mesh
