#include "rshc/mesh/halo.hpp"

#include "rshc/check/check.hpp"

namespace rshc::mesh {
namespace {

/// Iterate over (v, layer, transverse...) of a face region, calling
/// fn(v, k, j, i) with local indices. `first_layer` is the starting local
/// index along `axis`; ng layers are visited. Transverse axes span the
/// interior only.
template <typename Fn>
void for_each_face_cell(const Block& b, int axis, int first_layer, Fn&& fn) {
  const int ng = b.ghost(axis);
  const int nvar = b.prim().nvar();
  int lo[3];
  int hi[3];
  for (int a = 0; a < 3; ++a) {
    lo[a] = b.begin(a);
    hi[a] = b.end(a);
  }
  lo[axis] = first_layer;
  hi[axis] = first_layer + ng;
  for (int v = 0; v < nvar; ++v) {
    for (int k = lo[2]; k < hi[2]; ++k) {
      for (int j = lo[1]; j < hi[1]; ++j) {
        for (int i = lo[0]; i < hi[0]; ++i) {
          fn(v, k, j, i);
        }
      }
    }
  }
}

}  // namespace

std::size_t halo_buffer_size(const Block& b, int axis) {
  std::size_t n = static_cast<std::size_t>(b.prim().nvar()) *
                  static_cast<std::size_t>(b.ghost(axis));
  for (int a = 0; a < 3; ++a) {
    if (a == axis) continue;
    n *= static_cast<std::size_t>(b.interior(a));
  }
  return n;
}

void pack_face(const Block& src, int axis, int side, std::span<double> buf) {
  RSHC_REQUIRE(buf.size() == halo_buffer_size(src, axis),
               "halo pack buffer size mismatch");
  // Low face: first ng interior layers; high face: last ng interior layers.
  const int first =
      side == 0 ? src.begin(axis) : src.end(axis) - src.ghost(axis);
  std::size_t idx = 0;
  const auto& w = src.prim();
  for_each_face_cell(src, axis, first, [&](int v, int k, int j, int i) {
    buf[idx++] = w(v, k, j, i);
  });
  // A NaN packed here crosses the rank boundary and corrupts a neighbour
  // that did nothing wrong — flag it on the sender where the bad zone is.
  RSHC_CHECK_FINITE_SPAN("halo", buf,
                         "packed halo face contains non-finite values");
}

void unpack_ghost(Block& dst, int axis, int side,
                  std::span<const double> buf) {
  RSHC_REQUIRE(buf.size() == halo_buffer_size(dst, axis),
               "halo unpack buffer size mismatch");
  RSHC_CHECK_FINITE_SPAN("halo", buf,
                         "received halo face contains non-finite values");
  // Low-side ghosts start at 0; high-side ghosts start at end(axis).
  const int first = side == 0 ? 0 : dst.end(axis);
  std::size_t idx = 0;
  auto& w = dst.prim();
  for_each_face_cell(dst, axis, first, [&](int v, int k, int j, int i) {
    w(v, k, j, i) = buf[idx++];
  });
}

void copy_halo(Block& dst, const Block& src, int axis, int side) {
  RSHC_REQUIRE(dst.ghost(axis) == src.ghost(axis),
               "halo ghost width mismatch");
  for (int a = 0; a < 3; ++a) {
    if (a == axis) continue;
    RSHC_REQUIRE(dst.interior(a) == src.interior(a),
                 "halo transverse extent mismatch");
  }
  // dst's (axis, side) ghosts come from src's opposite face layers.
  const int src_first =
      side == 0 ? src.end(axis) - src.ghost(axis) : src.begin(axis);
  const int dst_first = side == 0 ? 0 : dst.end(axis);
  const int shift = dst_first - src_first;
  const auto& ws = src.prim();
  auto& wd = dst.prim();
  for_each_face_cell(src, axis, src_first, [&](int v, int k, int j, int i) {
    const int kk = axis == 2 ? k + shift : k;
    const int jj = axis == 1 ? j + shift : j;
    const int ii = axis == 0 ? i + shift : i;
    wd(v, kk, jj, ii) = ws(v, k, j, i);
  });
}

void apply_periodic(Block& b, int axis) {
  copy_halo(b, b, axis, 0);
  copy_halo(b, b, axis, 1);
}

}  // namespace rshc::mesh
