#include "rshc/mesh/boundary.hpp"

#include <algorithm>

namespace rshc::mesh {

std::string_view bc_name(BcType t) {
  switch (t) {
    case BcType::kPeriodic: return "periodic";
    case BcType::kOutflow: return "outflow";
    case BcType::kReflect: return "reflect";
  }
  return "unknown";
}

BcType parse_bc(std::string_view name) {
  if (name == "periodic") return BcType::kPeriodic;
  if (name == "outflow") return BcType::kOutflow;
  if (name == "reflect") return BcType::kReflect;
  RSHC_REQUIRE(false, std::string("unknown boundary type: ") +
                          std::string(name));
  return BcType::kOutflow;  // unreachable
}

void apply_physical_boundary(Block& b, int axis, int side, BcType type,
                             std::span<const int> negate_vars) {
  RSHC_REQUIRE(type != BcType::kPeriodic,
               "periodic boundaries are applied via halo exchange");
  const int ng = b.ghost(axis);
  if (ng == 0) return;
  auto& w = b.prim();
  const int nvar = w.nvar();

  // Full transverse extent (ghosts included) so corner ghosts at physical
  // boundaries hold sane values regardless of application order.
  int lo[3] = {0, 0, 0};
  int hi[3] = {b.total(0), b.total(1), b.total(2)};

  auto is_negated = [&](int v) {
    return std::find(negate_vars.begin(), negate_vars.end(), v) !=
           negate_vars.end();
  };

  for (int g = 0; g < ng; ++g) {
    // Ghost layer index and its source interior layer.
    int ghost_idx;
    int src_idx;
    if (side == 0) {
      ghost_idx = b.begin(axis) - 1 - g;
      src_idx = type == BcType::kOutflow ? b.begin(axis)
                                         : b.begin(axis) + g;  // mirror
    } else {
      ghost_idx = b.end(axis) + g;
      src_idx = type == BcType::kOutflow ? b.end(axis) - 1
                                         : b.end(axis) - 1 - g;  // mirror
    }
    for (int v = 0; v < nvar; ++v) {
      const double sign =
          (type == BcType::kReflect && is_negated(v)) ? -1.0 : 1.0;
      int l0[3] = {lo[0], lo[1], lo[2]};
      int h0[3] = {hi[0], hi[1], hi[2]};
      l0[axis] = ghost_idx;
      h0[axis] = ghost_idx + 1;
      for (int k = l0[2]; k < h0[2]; ++k) {
        for (int j = l0[1]; j < h0[1]; ++j) {
          for (int i = l0[0]; i < h0[0]; ++i) {
            const int ks = axis == 2 ? src_idx : k;
            const int js = axis == 1 ? src_idx : j;
            const int is = axis == 0 ? src_idx : i;
            w(v, k, j, i) = sign * w(v, ks, js, is);
          }
        }
      }
    }
  }
}

}  // namespace rshc::mesh
