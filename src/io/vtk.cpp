#include "rshc/io/vtk.hpp"

#include <fstream>

#include "rshc/common/error.hpp"

namespace rshc::io {

void write_vtk(const std::string& path, const mesh::Grid& grid,
               std::span<const VtkField> fields) {
  std::ofstream f(path);
  RSHC_REQUIRE(f.good(), "cannot open vtk file for writing: " + path);
  const long long nx = grid.extent(0);
  const long long ny = grid.extent(1);
  const long long nz = grid.extent(2);
  const long long ncells = nx * ny * nz;

  f << "# vtk DataFile Version 3.0\n";
  f << "rshc output\n";
  f << "ASCII\n";
  f << "DATASET STRUCTURED_POINTS\n";
  // Cell data on an (nx+1, ny+1, nz+1) point lattice.
  f << "DIMENSIONS " << nx + 1 << ' ' << ny + 1 << ' ' << nz + 1 << '\n';
  f << "ORIGIN " << grid.xmin(0) << ' '
    << (grid.ndim() >= 2 ? grid.xmin(1) : 0.0) << ' '
    << (grid.ndim() >= 3 ? grid.xmin(2) : 0.0) << '\n';
  f << "SPACING " << grid.dx(0) << ' '
    << (grid.ndim() >= 2 ? grid.dx(1) : 1.0) << ' '
    << (grid.ndim() >= 3 ? grid.dx(2) : 1.0) << '\n';
  f << "CELL_DATA " << ncells << '\n';
  for (const auto& field : fields) {
    RSHC_REQUIRE(field.data.size() == static_cast<std::size_t>(ncells),
                 "vtk field size does not match grid: " + field.name);
    f << "SCALARS " << field.name << " double 1\n";
    f << "LOOKUP_TABLE default\n";
    for (const double v : field.data) f << v << '\n';
  }
  RSHC_REQUIRE(f.good(), "vtk write failed: " + path);
}

}  // namespace rshc::io
