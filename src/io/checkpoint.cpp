#include "rshc/io/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <string>

#include "rshc/common/error.hpp"
#include "rshc/obs/journal.hpp"

namespace rshc::io {
namespace {

struct Header {
  std::uint32_t magic = kCheckpointMagic;
  std::uint32_t version = kCheckpointVersion;
  std::int32_t ndim = 0;
  std::int32_t nvar_cons = 0;
  std::int32_t num_blocks = 0;
  std::int32_t reserved = 0;
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 0;
  double time = 0.0;
};
static_assert(sizeof(Header) == 56);

template <typename T>
void write_raw(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void read_raw(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
}

/// Journal and throw a restore failure. Every validation below funnels
/// through here so a malformed file leaves (a) one "checkpoint_error"
/// journal line and (b) an rshc::Error naming the path and rule — and,
/// because all checks run before any solver field is written, the caller's
/// solver state is untouched.
[[noreturn]] void fail_read(const std::string& path, const std::string& why) {
  obs::journal::Journal::global().event(
      "checkpoint_error",
      {obs::journal::Field("path", path), obs::journal::Field("error", why)});
  throw rshc::Error("checkpoint " + path + ": " + why, __FILE__, __LINE__);
}

}  // namespace

template <typename Physics>
void write_checkpoint(const std::string& path,
                      const solver::FvSolver<Physics>& s) {
  std::ofstream f(path, std::ios::binary);
  RSHC_REQUIRE(f.good(), "cannot open checkpoint for writing: " + path);
  Header h;
  h.ndim = s.grid().ndim();
  h.nvar_cons = Physics::kNumCons;
  h.num_blocks = s.num_blocks();
  h.nx = s.grid().extent(0);
  h.ny = s.grid().extent(1);
  h.nz = s.grid().extent(2);
  h.time = s.time();
  write_raw(f, h);
  for (int b = 0; b < s.num_blocks(); ++b) {
    const auto& blk = s.block(b);
    const auto& u = blk.cons();
    for (int v = 0; v < Physics::kNumCons; ++v) {
      for (int k = blk.begin(2); k < blk.end(2); ++k) {
        for (int j = blk.begin(1); j < blk.end(1); ++j) {
          for (int i = blk.begin(0); i < blk.end(0); ++i) {
            write_raw(f, u(v, k, j, i));
          }
        }
      }
    }
  }
  RSHC_REQUIRE(f.good(), "checkpoint write failed: " + path);
  obs::journal::checkpoint(path, s.time());
}

template <typename Physics>
void read_checkpoint(const std::string& path,
                     solver::FvSolver<Physics>& s) {
  // Validate everything — header sanity, compatibility with the target
  // solver, and the exact payload size — before writing a single byte of
  // solver state. Preempt/resume makes truncated files a real scenario
  // (a preemption checkpoint raced by a crash), and a partial restore
  // would silently corrupt the resumed run.
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f.good()) fail_read(path, "cannot open for reading");
  const auto file_size = static_cast<std::int64_t>(f.tellg());
  f.seekg(0);
  if (file_size < static_cast<std::int64_t>(sizeof(Header))) {
    fail_read(path, "truncated header (" + std::to_string(file_size) +
                        " bytes, need " + std::to_string(sizeof(Header)) +
                        ")");
  }
  Header h;
  read_raw(f, h);
  if (!f.good() || h.magic != kCheckpointMagic) {
    fail_read(path, "bad magic (not an rshc checkpoint)");
  }
  if (h.version != kCheckpointVersion) {
    fail_read(path, "unsupported version " + std::to_string(h.version) +
                        " (expected " + std::to_string(kCheckpointVersion) +
                        ")");
  }
  if (h.ndim < 1 || h.ndim > 3 || h.nvar_cons <= 0 || h.num_blocks <= 0 ||
      h.nx <= 0 || h.ny <= 0 || h.nz <= 0) {
    fail_read(path, "corrupt header (implausible shape fields)");
  }
  if (h.ndim != s.grid().ndim() || h.nx != s.grid().extent(0) ||
      h.ny != s.grid().extent(1) || h.nz != s.grid().extent(2)) {
    fail_read(path, "grid shape mismatch");
  }
  if (h.nvar_cons != Physics::kNumCons) {
    fail_read(path, "physics mismatch (file has " +
                        std::to_string(h.nvar_cons) +
                        " conserved variables, solver expects " +
                        std::to_string(Physics::kNumCons) + ")");
  }
  if (h.num_blocks != s.num_blocks()) {
    fail_read(path, "block layout mismatch");
  }
  std::int64_t payload = 0;
  for (int b = 0; b < s.num_blocks(); ++b) {
    const auto& blk = s.block(b);
    std::int64_t zones = 1;
    for (int a = 0; a < 3; ++a) zones *= blk.end(a) - blk.begin(a);
    payload += zones * Physics::kNumCons *
               static_cast<std::int64_t>(sizeof(double));
  }
  const std::int64_t expected =
      static_cast<std::int64_t>(sizeof(Header)) + payload;
  if (file_size < expected) {
    fail_read(path, "truncated payload (" + std::to_string(file_size) +
                        " bytes, need " + std::to_string(expected) + ")");
  }
  if (file_size > expected) {
    fail_read(path, "size mismatch (" + std::to_string(file_size) +
                        " bytes, expected " + std::to_string(expected) + ")");
  }
  for (int b = 0; b < s.num_blocks(); ++b) {
    auto& blk = s.block(b);
    auto& u = blk.cons();
    for (int v = 0; v < Physics::kNumCons; ++v) {
      for (int k = blk.begin(2); k < blk.end(2); ++k) {
        for (int j = blk.begin(1); j < blk.end(1); ++j) {
          for (int i = blk.begin(0); i < blk.end(0); ++i) {
            read_raw(f, u(v, k, j, i));
          }
        }
      }
    }
  }
  if (!f.good()) fail_read(path, "read failed mid-payload");
  s.set_time(h.time);
  s.recover_all_prims();
  obs::journal::Journal::global().event(
      "restore", {obs::journal::Field("path", path),
                  obs::journal::Field("time", h.time)});
}

template void write_checkpoint<solver::SrhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrhdPhysics>&);
template void write_checkpoint<solver::SrmhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrmhdPhysics>&);
template void read_checkpoint<solver::SrhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrhdPhysics>&);
template void read_checkpoint<solver::SrmhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrmhdPhysics>&);

}  // namespace rshc::io
