#include "rshc/io/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "rshc/obs/journal.hpp"

namespace rshc::io {
namespace {

struct Header {
  std::uint32_t magic = kCheckpointMagic;
  std::uint32_t version = kCheckpointVersion;
  std::int32_t ndim = 0;
  std::int32_t nvar_cons = 0;
  std::int32_t num_blocks = 0;
  std::int32_t reserved = 0;
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 0;
  double time = 0.0;
};
static_assert(sizeof(Header) == 56);

template <typename T>
void write_raw(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
void read_raw(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

template <typename Physics>
void write_checkpoint(const std::string& path,
                      const solver::FvSolver<Physics>& s) {
  std::ofstream f(path, std::ios::binary);
  RSHC_REQUIRE(f.good(), "cannot open checkpoint for writing: " + path);
  Header h;
  h.ndim = s.grid().ndim();
  h.nvar_cons = Physics::kNumCons;
  h.num_blocks = s.num_blocks();
  h.nx = s.grid().extent(0);
  h.ny = s.grid().extent(1);
  h.nz = s.grid().extent(2);
  h.time = s.time();
  write_raw(f, h);
  for (int b = 0; b < s.num_blocks(); ++b) {
    const auto& blk = s.block(b);
    const auto& u = blk.cons();
    for (int v = 0; v < Physics::kNumCons; ++v) {
      for (int k = blk.begin(2); k < blk.end(2); ++k) {
        for (int j = blk.begin(1); j < blk.end(1); ++j) {
          for (int i = blk.begin(0); i < blk.end(0); ++i) {
            write_raw(f, u(v, k, j, i));
          }
        }
      }
    }
  }
  RSHC_REQUIRE(f.good(), "checkpoint write failed: " + path);
  obs::journal::checkpoint(path, s.time());
}

template <typename Physics>
void read_checkpoint(const std::string& path,
                     solver::FvSolver<Physics>& s) {
  std::ifstream f(path, std::ios::binary);
  RSHC_REQUIRE(f.good(), "cannot open checkpoint for reading: " + path);
  Header h;
  read_raw(f, h);
  RSHC_REQUIRE(f.good() && h.magic == kCheckpointMagic,
               "not an rshc checkpoint: " + path);
  RSHC_REQUIRE(h.version == kCheckpointVersion,
               "unsupported checkpoint version");
  RSHC_REQUIRE(h.ndim == s.grid().ndim() && h.nx == s.grid().extent(0) &&
                   h.ny == s.grid().extent(1) && h.nz == s.grid().extent(2),
               "checkpoint grid shape mismatch");
  RSHC_REQUIRE(h.nvar_cons == Physics::kNumCons,
               "checkpoint physics mismatch");
  RSHC_REQUIRE(h.num_blocks == s.num_blocks(),
               "checkpoint block layout mismatch");
  for (int b = 0; b < s.num_blocks(); ++b) {
    auto& blk = s.block(b);
    auto& u = blk.cons();
    for (int v = 0; v < Physics::kNumCons; ++v) {
      for (int k = blk.begin(2); k < blk.end(2); ++k) {
        for (int j = blk.begin(1); j < blk.end(1); ++j) {
          for (int i = blk.begin(0); i < blk.end(0); ++i) {
            read_raw(f, u(v, k, j, i));
          }
        }
      }
    }
  }
  RSHC_REQUIRE(f.good(), "checkpoint truncated: " + path);
  s.set_time(h.time);
  s.recover_all_prims();
}

template void write_checkpoint<solver::SrhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrhdPhysics>&);
template void write_checkpoint<solver::SrmhdPhysics>(
    const std::string&, const solver::FvSolver<solver::SrmhdPhysics>&);
template void read_checkpoint<solver::SrhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrhdPhysics>&);
template void read_checkpoint<solver::SrmhdPhysics>(
    const std::string&, solver::FvSolver<solver::SrmhdPhysics>&);

}  // namespace rshc::io
