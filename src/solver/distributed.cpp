#include "rshc/solver/distributed.hpp"

#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "rshc/mesh/decomposition.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::solver {
namespace {

/// Message tag for a halo landing on the receiver's (axis, side) face.
int halo_tag(int axis, int receiver_side) { return axis * 2 + receiver_side; }

/// One coalesced gather message per rank (all requested variables).
constexpr int kGatherTag = 100;

/// Slot in recv_futures_ / HaloBufferSet for face (axis, side).
std::size_t face_slot(int axis, int side) {
  return static_cast<std::size_t>(axis * 2 + side);
}

bool overlap_env_enabled() {
  const char* e = std::getenv("RSHC_OVERLAP");
  if (e == nullptr) return true;
  const std::string_view v(e);
  return !(v == "off" || v == "0" || v == "false");
}

std::array<bool, 3> periodic_flags(const mesh::BoundarySpec& bc) {
  return {bc.periodic(0), bc.periodic(1), bc.periodic(2)};
}

mesh::BlockExtents extents_for_rank(const mesh::Grid& grid,
                                    const comm::CartTopology& topo,
                                    int rank) {
  const mesh::Decomposition decomp(
      grid, {topo.dims()[0], topo.dims()[1], topo.dims()[2]});
  const auto c = topo.coords(rank);
  return decomp.extents(decomp.block_id({c[0], c[1], c[2]}));
}

}  // namespace

template <typename Physics>
DistributedSolver<Physics>::DistributedSolver(const mesh::Grid& grid,
                                              comm::Communicator& comm,
                                              Options opt)
    : grid_(grid),
      comm_(comm),
      topo_(comm.size(), grid.ndim(), {0, 0, 0}, periodic_flags(opt.bc)),
      my_extents_(extents_for_rank(grid, topo_, comm.rank())),
      local_(grid_, opt, my_extents_) {
  // Synchronous filler stays installed for the non-stepping ghost fills
  // (initialize, restart recovery) and as the overlap-off path.
  local_.set_ghost_filler([this](int) { exchange_halos(); });
  set_overlap(overlap_env_enabled());
}

template <typename Physics>
void DistributedSolver<Physics>::set_overlap(bool on) {
  overlap_ = on;
  if (on) {
    local_.set_overlap_exchange(
        [this](int) { begin_exchange(); },
        [this](int, const FaceReadyFn& ready) { finish_exchange(ready); });
  } else {
    local_.set_overlap_exchange({}, {});
  }
}

template <typename Physics>
void DistributedSolver<Physics>::initialize(
    const std::function<Prim(double, double, double)>& fn) {
  local_.initialize(fn);
}

template <typename Physics>
void DistributedSolver<Physics>::begin_exchange() {
  RSHC_TRACE_SCOPE("halo.exchange.begin", "comm", comm_.rank());
  mesh::Block& blk = local_.block(0);
  halo_bufs_.ensure_sized(blk);
  const int me = comm_.rank();
  // Post every irecv before any send: the MPI-correct shape (receives
  // pre-posted when the payloads land) even though sends never block in
  // the in-process model. The guard arms here and stays in-flight across
  // the whole async window — a premature unpack trips it.
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    for (int side = 0; side < 2; ++side) {
      const auto nbr = topo_.neighbor(me, axis, side == 0 ? -1 : +1);
      if (!nbr.has_value()) continue;
      halo_guard_.post(axis, side);
      recv_futures_[face_slot(axis, side)] = comm_.irecv(
          *nbr, halo_tag(axis, side),
          std::span<double>(halo_bufs_.recv(axis, side)));
    }
  }
  // Pack and launch every face. Each face has its own persistent buffer,
  // so all of them are in flight simultaneously — no reallocation, no
  // serialization point.
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    for (int side = 0; side < 2; ++side) {
      const auto nbr = topo_.neighbor(me, axis, side == 0 ? -1 : +1);
      if (!nbr.has_value()) continue;
      const auto buf = halo_bufs_.send(axis, side);
      {
        RSHC_TRACE_SCOPE("halo.pack", "comm", axis);
        mesh::pack_face(blk, axis, side, buf);
      }
      RSHC_OBS_COUNT("halo.messages_sent", 1);
      RSHC_OBS_COUNT("halo.bytes_sent",
                     static_cast<std::int64_t>(buf.size() * sizeof(double)));
      // My face `side` fills the neighbour's opposite-side ghosts.
      comm_.isend(*nbr, halo_tag(axis, 1 - side),
                  std::span<const double>(buf));
    }
  }
}

template <typename Physics>
void DistributedSolver<Physics>::finish_exchange(const FaceReadyFn& ready) {
  mesh::Block& blk = local_.block(0);
  const int me = comm_.rank();
  // Physical boundaries first: no message to wait for, and reporting them
  // immediately lets boundary boxes that only touch them run under the
  // still-flying halos.
  std::vector<comm::CommFuture*> pending;
  std::vector<std::array<int, 2>> faces;
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    for (int side = 0; side < 2; ++side) {
      const auto nbr = topo_.neighbor(me, axis, side == 0 ? -1 : +1);
      if (nbr.has_value()) {
        pending.push_back(&recv_futures_[face_slot(axis, side)]);
        faces.push_back({axis, side});
      } else {
        const auto negate = Physics::reflect_negate_vars(axis);
        mesh::apply_physical_boundary(
            blk, axis, side,
            local_.options().bc.type[static_cast<std::size_t>(axis)],
            negate);
        ready(axis, side);
      }
    }
  }
  // Complete halos in arrival order: whichever face's message is ready
  // first gets unpacked and released first. Unpacks write disjoint ghost
  // regions (faces only, interior transverse), so the order is free.
  while (!pending.empty()) {
    std::size_t idx;
    {
      RSHC_TRACE_SCOPE("halo.wait", "comm",
                       static_cast<int>(pending.size()));
      idx = comm::CommFuture::wait_any(
          std::span<comm::CommFuture* const>(pending.data(),
                                             pending.size()));
    }
    const int axis = faces[idx][0];
    const int side = faces[idx][1];
    halo_guard_.complete(axis, side);
    halo_guard_.consume(axis, side);
    {
      RSHC_TRACE_SCOPE("halo.unpack", "comm", axis);
      mesh::unpack_ghost(blk, axis, side, halo_bufs_.recv(axis, side));
    }
    recv_futures_[face_slot(axis, side)] = comm::CommFuture{};
    ready(axis, side);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
    faces.erase(faces.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

template <typename Physics>
void DistributedSolver<Physics>::exchange_halos() {
  // Synchronous fill = post everything, then drain to completion. Same
  // messages, same tags, same unpack layout as the overlapped path — the
  // two schedules differ only in what runs between begin and finish.
  RSHC_TRACE_SCOPE("halo.exchange", "comm", comm_.rank());
  begin_exchange();
  finish_exchange([](int, int) {});
}

template <typename Physics>
double DistributedSolver<Physics>::compute_dt() {
  const double local_dt = local_.compute_dt();
  return comm_.allreduce(local_dt, comm::ReduceOp::kMin);
}

template <typename Physics>
void DistributedSolver<Physics>::step(double dt) {
  local_.step(dt);
}

template <typename Physics>
int DistributedSolver<Physics>::advance_to(double t_end, int max_steps) {
  int steps = 0;
  while (local_.time() < t_end && steps < max_steps) {
    double dt = compute_dt();
    if (local_.time() + dt > t_end) dt = t_end - local_.time();
    step(dt);
    ++steps;
  }
  return steps;
}

template <typename Physics>
std::vector<double> DistributedSolver<Physics>::gather_prim_var_root(int v) {
  const std::array<int, 1> vars = {v};
  auto out = gather_prim_vars_root(vars);
  if (out.empty()) return {};
  return std::move(out[0]);
}

template <typename Physics>
std::vector<std::vector<double>> DistributedSolver<Physics>::
    gather_prim_vars_root(std::span<const int> vars) {
  const mesh::Block& blk = local_.block(0);
  // Serialize the interior slabs of every requested variable into one
  // message: [var0 row-major][var1 row-major]... — one send per rank
  // regardless of how many variables the caller wants.
  const auto ncells = static_cast<std::size_t>(my_extents_.num_cells());
  std::vector<double> mine;
  mine.reserve(vars.size() * ncells);
  const auto& w = blk.prim();
  for (const int v : vars) {
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          mine.push_back(w(v, k, j, i));
        }
      }
    }
  }

  if (comm_.rank() != 0) {
    comm_.send(0, kGatherTag, std::span<const double>(mine));
    return {};
  }

  std::vector<std::vector<double>> global(vars.size());
  for (auto& g : global) {
    g.resize(static_cast<std::size_t>(grid_.num_cells()));
  }
  std::vector<double> data;
  for (int r = 0; r < comm_.size(); ++r) {
    const mesh::BlockExtents ext =
        r == 0 ? my_extents_ : extents_for_rank(grid_, topo_, r);
    const auto rcells = static_cast<std::size_t>(ext.num_cells());
    const std::span<const double> payload = [&] {
      if (r == 0) return std::span<const double>(mine);
      data.resize(vars.size() * rcells);
      comm_.recv(r, kGatherTag, std::span<double>(data));
      return std::span<const double>(data);
    }();
    for (std::size_t vi = 0; vi < vars.size(); ++vi) {
      std::size_t idx = vi * rcells;
      auto& g = global[vi];
      for (long long k = ext.lo[2]; k < ext.hi[2]; ++k) {
        for (long long j = ext.lo[1]; j < ext.hi[1]; ++j) {
          for (long long i = ext.lo[0]; i < ext.hi[0]; ++i) {
            g[static_cast<std::size_t>(
                (k * grid_.extent(1) + j) * grid_.extent(0) + i)] =
                payload[idx++];
          }
        }
      }
    }
  }
  return global;
}

template class DistributedSolver<SrhdPhysics>;
template class DistributedSolver<SrmhdPhysics>;

}  // namespace rshc::solver
