#include "rshc/solver/distributed.hpp"

#include "rshc/mesh/decomposition.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::solver {
namespace {

/// Message tag for a halo landing on the receiver's (axis, side) face.
int halo_tag(int axis, int receiver_side) { return axis * 2 + receiver_side; }

constexpr int kGatherTagBase = 100;

std::array<bool, 3> periodic_flags(const mesh::BoundarySpec& bc) {
  return {bc.periodic(0), bc.periodic(1), bc.periodic(2)};
}

mesh::BlockExtents extents_for_rank(const mesh::Grid& grid,
                                    const comm::CartTopology& topo,
                                    int rank) {
  const mesh::Decomposition decomp(
      grid, {topo.dims()[0], topo.dims()[1], topo.dims()[2]});
  const auto c = topo.coords(rank);
  return decomp.extents(decomp.block_id({c[0], c[1], c[2]}));
}

}  // namespace

template <typename Physics>
DistributedSolver<Physics>::DistributedSolver(const mesh::Grid& grid,
                                              comm::Communicator& comm,
                                              Options opt)
    : grid_(grid),
      comm_(comm),
      topo_(comm.size(), grid.ndim(), {0, 0, 0}, periodic_flags(opt.bc)),
      my_extents_(extents_for_rank(grid, topo_, comm.rank())),
      local_(grid_, opt, my_extents_) {
  local_.set_ghost_filler([this](int) { exchange_halos(); });
}

template <typename Physics>
void DistributedSolver<Physics>::initialize(
    const std::function<Prim(double, double, double)>& fn) {
  local_.initialize(fn);
}

template <typename Physics>
void DistributedSolver<Physics>::exchange_halos() {
  RSHC_TRACE_SCOPE("halo.exchange", "comm", comm_.rank());
  mesh::Block& blk = local_.block(0);
  const int me = comm_.rank();
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    // Post both sends first (sends never block), then receive.
    for (int side = 0; side < 2; ++side) {
      const auto nbr = topo_.neighbor(me, axis, side == 0 ? -1 : +1);
      if (!nbr.has_value()) continue;
      send_buf_.resize(mesh::halo_buffer_size(blk, axis));
      {
        RSHC_TRACE_SCOPE("halo.pack", "comm", axis);
        mesh::pack_face(blk, axis, side, send_buf_);
      }
      RSHC_OBS_COUNT("halo.messages_sent", 1);
      RSHC_OBS_COUNT("halo.bytes_sent", static_cast<std::int64_t>(
                                            send_buf_.size() *
                                            sizeof(double)));
      // My face `side` fills the neighbour's opposite-side ghosts.
      comm_.send(*nbr, halo_tag(axis, 1 - side),
                 std::span<const double>(send_buf_));
    }
    for (int side = 0; side < 2; ++side) {
      const auto nbr = topo_.neighbor(me, axis, side == 0 ? -1 : +1);
      if (nbr.has_value()) {
        recv_buf_.resize(mesh::halo_buffer_size(blk, axis));
        halo_guard_.post(axis, side);
        comm_.recv(*nbr, halo_tag(axis, side), std::span<double>(recv_buf_));
        // recv is blocking today; when it becomes a future (overlap work),
        // complete() moves to the future's ready callback and consume()
        // keeps guarding the unpack below.
        halo_guard_.complete(axis, side);
        halo_guard_.consume(axis, side);
        RSHC_TRACE_SCOPE("halo.unpack", "comm", axis);
        mesh::unpack_ghost(blk, axis, side, recv_buf_);
      } else {
        const auto negate = Physics::reflect_negate_vars(axis);
        mesh::apply_physical_boundary(
            blk, axis, side,
            local_.options().bc.type[static_cast<std::size_t>(axis)],
            negate);
      }
    }
  }
}

template <typename Physics>
double DistributedSolver<Physics>::compute_dt() {
  const double local_dt = local_.compute_dt();
  return comm_.allreduce(local_dt, comm::ReduceOp::kMin);
}

template <typename Physics>
void DistributedSolver<Physics>::step(double dt) {
  local_.step(dt);
}

template <typename Physics>
int DistributedSolver<Physics>::advance_to(double t_end, int max_steps) {
  int steps = 0;
  while (local_.time() < t_end && steps < max_steps) {
    double dt = compute_dt();
    if (local_.time() + dt > t_end) dt = t_end - local_.time();
    step(dt);
    ++steps;
  }
  return steps;
}

template <typename Physics>
std::vector<double> DistributedSolver<Physics>::gather_prim_var_root(int v) {
  const mesh::Block& blk = local_.block(0);
  // Serialize my interior slab in local row-major order.
  std::vector<double> mine;
  mine.reserve(static_cast<std::size_t>(my_extents_.num_cells()));
  const auto& w = blk.prim();
  for (int k = blk.begin(2); k < blk.end(2); ++k) {
    for (int j = blk.begin(1); j < blk.end(1); ++j) {
      for (int i = blk.begin(0); i < blk.end(0); ++i) {
        mine.push_back(w(v, k, j, i));
      }
    }
  }

  if (comm_.rank() != 0) {
    comm_.send(0, kGatherTagBase + v, std::span<const double>(mine));
    return {};
  }

  std::vector<double> global(static_cast<std::size_t>(grid_.num_cells()));
  for (int r = 0; r < comm_.size(); ++r) {
    const mesh::BlockExtents ext =
        r == 0 ? my_extents_ : extents_for_rank(grid_, topo_, r);
    std::vector<double> data;
    if (r == 0) {
      data = mine;
    } else {
      data.resize(static_cast<std::size_t>(ext.num_cells()));
      comm_.recv(r, kGatherTagBase + v, std::span<double>(data));
    }
    std::size_t idx = 0;
    for (long long k = ext.lo[2]; k < ext.hi[2]; ++k) {
      for (long long j = ext.lo[1]; j < ext.hi[1]; ++j) {
        for (long long i = ext.lo[0]; i < ext.hi[0]; ++i) {
          global[static_cast<std::size_t>(
              (k * grid_.extent(1) + j) * grid_.extent(0) + i)] =
              data[idx++];
        }
      }
    }
  }
  return global;
}

template class DistributedSolver<SrhdPhysics>;
template class DistributedSolver<SrmhdPhysics>;

}  // namespace rshc::solver
