#include "rshc/solver/rhs_core.hpp"

#include <algorithm>

#include "rshc/check/check.hpp"
#include "rshc/obs/obs.hpp"

namespace rshc::solver::core {

BlockShape shape_of(const mesh::Block& blk, const mesh::Grid& grid) {
  BlockShape sh;
  sh.ndim = grid.ndim();
  for (int a = 0; a < 3; ++a) {
    sh.total[static_cast<std::size_t>(a)] = blk.total(a);
    sh.begin[static_cast<std::size_t>(a)] = blk.begin(a);
    sh.end[static_cast<std::size_t>(a)] = blk.end(a);
  }
  for (int a = 0; a < grid.ndim(); ++a) {
    sh.inv_dx[static_cast<std::size_t>(a)] = 1.0 / grid.dx(a);
  }
  return sh;
}

// Batched rhs: identical arithmetic to FvSolver's pencil path, reorganized
// for data movement. Per axis, pencils are processed in tiles of kTileRows
// rows: the x axis reconstructs straight from the contiguous variable
// slabs (zero gather); y/z tiles gather through a transpose whose inner
// copies are unit-stride reads. The per-interface Riemann solve is the
// same scalar code; flux components are staged per tile so du accumulation
// runs as fused span loops preserving the pencil path's per-cell add order
// (+left interface first, then -right) and expression shapes — the two
// pipelines are bitwise identical. This single compiled instantiation also
// serves as the device kernel body, so the device pipeline inherits the
// same bits by construction.
template <typename Physics>
void rhs_batched_range(const BlockShape& sh,
                       const typename Physics::Context& ctx,
                       recon::PencilKernel recon_fn, bool simd,
                       const double* w, double* du, BatchScratch<Physics>& s,
                       [[maybe_unused]] int block_id,
                       const std::array<int, 3>& lo,
                       const std::array<int, 3>& hi, bool zero_du) {
  using Prim = typename Physics::Prim;
  using Cons = typename Physics::Cons;
  const std::size_t cells = sh.cells();
  if (zero_du) {
    std::fill(du, du + static_cast<std::size_t>(Physics::kNumCons) * cells,
              0.0);
  }
  for (int a = 0; a < 3; ++a) {
    if (lo[static_cast<std::size_t>(a)] >= hi[static_cast<std::size_t>(a)]) {
      return;  // empty box: zeroing (if requested) is all there is to do
    }
  }

  auto wvar = [&](int v) {
    return w + static_cast<std::size_t>(v) * cells;
  };
  auto dvar = [&](int v) {
    return du + static_cast<std::size_t>(v) * cells;
  };

  for (int axis = 0; axis < sh.ndim; ++axis) {
    const double inv_dx = sh.inv_dx[static_cast<std::size_t>(axis)];
    const double neg_inv_dx = -inv_dx;
    const int n = sh.total[static_cast<std::size_t>(axis)];
    const auto un = static_cast<std::size_t>(n);
    int a1 = -1;
    int a2 = -1;
    for (int a = 0; a < 3; ++a) {
      if (a == axis) continue;
      (a1 < 0 ? a1 : a2) = a;
    }
    const int fb = lo[static_cast<std::size_t>(axis)];
    const int fe = hi[static_cast<std::size_t>(axis)];
    const int b1 = lo[static_cast<std::size_t>(a1)];
    const int e1 = hi[static_cast<std::size_t>(a1)];
    const int b2 = lo[static_cast<std::size_t>(a2)];
    const int e2 = hi[static_cast<std::size_t>(a2)];
    // Reconstruction window: interfaces [fb-1, fe-1] read face states of
    // cells [fb-1, fe], and a cell's reconstruction reads `radius` cells
    // each side. The ghost width (== sh.begin on an active axis) is
    // radius + 1, so the window always fits inside [0, n] and every cell
    // in [fb-1, fe] sits >= radius from the window edges — its
    // reconstructed faces are bitwise those of the full-pencil call.
    const int radius = sh.begin[static_cast<std::size_t>(axis)] - 1;
    const int ws = fb - 1 - radius;
    const int we = fe + 1 + radius;
    const auto uws = static_cast<std::size_t>(ws);
    const auto uwin = static_cast<std::size_t>(we - ws);

    for (int t2 = b2; t2 < e2; ++t2) {
      for (int t10 = b1; t10 < e1; t10 += kTileRows) {
        const int rows = std::min(kTileRows, e1 - t10);
        const auto urows = static_cast<std::size_t>(rows);

        // Gather + reconstruct one tile of pencils per variable, with the
        // method dispatch already resolved to recon_fn. Faces land at
        // their absolute pencil offsets (tile arrays keep stride un), so
        // the staging below indexes identically for any window.
        for (int v = 0; v < Physics::kNumPrim; ++v) {
          if (axis == 0) {
            const double* src = wvar(v) + sh.cell_index(t2, t10, ws);
            recon::reconstruct_rows(recon_fn, urows, uwin, src, un,
                                    s.tql[v].data() + uws,
                                    s.tqr[v].data() + uws, un);
          } else {
            const double* wv = wvar(v);
            double* tq = s.tq[v].data();
            for (int f = ws; f < we; ++f) {
              const double* src = wv + (axis == 1 ? sh.cell_index(t2, f, t10)
                                                  : sh.cell_index(f, t2, t10));
              for (int t = 0; t < rows; ++t) {
                tq[static_cast<std::size_t>(t) * un +
                   static_cast<std::size_t>(f)] = src[t];
              }
            }
            recon::reconstruct_rows(recon_fn, urows, uwin, tq + uws, un,
                                    s.tql[v].data() + uws,
                                    s.tqr[v].data() + uws, un);
          }
        }

        // Limiter + Riemann solve + flux for the tile's interfaces. The
        // fast path hands whole face-state rows to the batched face
        // kernels (riemann/kernels.hpp) — one call per pencil, everything
        // inlined. The per-interface loop below stays as the fallback for
        // the exact solver and for checks-enabled builds, where the
        // checker wants zone provenance at the failing interface.
        bool staged = false;
#if !RSHC_CHECKS_ENABLED
        {
          const auto nif = static_cast<std::size_t>(fe - fb + 1);
          const double* wlp[Physics::kNumPrim];
          const double* wrp[Physics::kNumPrim];
          double* flp[Physics::kNumCons];
          staged = true;
          for (int t = 0; t < rows && staged; ++t) {
            const std::size_t off = static_cast<std::size_t>(t) * un +
                                    static_cast<std::size_t>(fb) - 1;
            for (int v = 0; v < Physics::kNumPrim; ++v) {
              wlp[v] = s.tqr[v].data() + off;
              wrp[v] = s.tql[v].data() + off + 1;
            }
            for (int v = 0; v < Physics::kNumCons; ++v) {
              flp[v] = s.tfl[v].data() + off;
            }
            staged =
                Physics::interface_flux_n(simd, nif, axis, wlp, wrp, flp, ctx);
          }
        }
#endif
        if (!staged) {
          double comp[Physics::kNumPrim];
          double fc[Physics::kNumCons];
          for (int t = 0; t < rows; ++t) {
            const std::size_t row = static_cast<std::size_t>(t) * un;
            for (int f = fb - 1; f < fe; ++f) {
              const std::size_t uf = row + static_cast<std::size_t>(f);
              for (int v = 0; v < Physics::kNumPrim; ++v) {
                comp[v] = s.tqr[v][uf];
              }
              Prim wl = Physics::prim_from_components(comp);
              for (int v = 0; v < Physics::kNumPrim; ++v) {
                comp[v] = s.tql[v][uf + 1];
              }
              Prim wr = Physics::prim_from_components(comp);
              Physics::limit_face_state(wl, ctx);
              Physics::limit_face_state(wr, ctx);
              const Cons flux = Physics::interface_flux(wl, wr, axis, ctx);
#if RSHC_CHECKS_ENABLED
              {
                int idx[3];
                idx[axis] = f;
                idx[a1] = t10 + t;
                idx[a2] = t2;
                RSHC_CHECK_PRIM("flux", wl, block_id, idx[0], idx[1], idx[2]);
                RSHC_CHECK_PRIM("flux", wr, block_id, idx[0], idx[1], idx[2]);
                RSHC_CHECK_CONS("flux", flux, block_id, idx[0], idx[1],
                                idx[2]);
              }
#endif
              Physics::cons_components(flux, fc);
              for (int v = 0; v < Physics::kNumCons; ++v) {
                s.tfl[v][uf] = fc[v];
              }
            }
          }
        }

        // Accumulate flux differences. Each interior cell takes + its left
        // interface flux then - its right one in a single pass.
        if (axis == 0) {
          for (int t = 0; t < rows; ++t) {
            for (int v = 0; v < Physics::kNumCons; ++v) {
              double* d = dvar(v) + sh.cell_index(t2, t10 + t, 0);
              const double* fl =
                  s.tfl[v].data() + static_cast<std::size_t>(t) * un;
              for (int f = fb; f < fe; ++f) {
                d[f] = (d[f] + inv_dx * fl[f - 1]) + neg_inv_dx * fl[f];
              }
            }
          }
        } else {
          // Strided axes flip the nesting: for a fixed pencil index f the
          // du addresses across rows are unit-stride.
          for (int v = 0; v < Physics::kNumCons; ++v) {
            const double* fl = s.tfl[v].data();
            for (int f = fb; f < fe; ++f) {
              double* d = dvar(v) + (axis == 1 ? sh.cell_index(t2, f, t10)
                                               : sh.cell_index(f, t2, t10));
              const auto uf = static_cast<std::size_t>(f);
              for (int t = 0; t < rows; ++t) {
                const std::size_t row = static_cast<std::size_t>(t) * un;
                d[t] = (d[t] + inv_dx * fl[row + uf - 1]) +
                       neg_inv_dx * fl[row + uf];
              }
            }
          }
        }
      }
    }
  }
}

// Full-range rhs is the restricted call over the whole interior — one
// compiled body serves the bulk pipelines, the device kernel, and every
// box of the overlapped interior/boundary split.
template <typename Physics>
void rhs_batched(const BlockShape& sh, const typename Physics::Context& ctx,
                 recon::PencilKernel recon_fn, bool simd, const double* w,
                 double* du, BatchScratch<Physics>& s, int block_id) {
  rhs_batched_range<Physics>(sh, ctx, recon_fn, simd, w, du, s, block_id,
                             sh.begin, sh.end, /*zero_du=*/true);
}

// Batched update: the RK convex combination runs as fused axpby-style span
// loops over contiguous interior rows of each variable slab, and primitive
// recovery goes through the batched cons_to_prim_n kernels. Expression
// shape ((a*u0 + b*u) + (c*dt)*du, left-associated) and the per-zone
// Newton solve match the pencil path exactly — bitwise identical.
template <typename Physics>
void update_batched(const BlockShape& sh, const typename Physics::Context& ctx,
                    bool simd, double ca, double cb, double cdt,
                    const double* u0, const double* du, double* u, double* w,
                    C2PStats& stats, [[maybe_unused]] int block_id) {
  const std::size_t cells = sh.cells();
  const int ib = sh.begin[0];
  const auto nx = static_cast<std::size_t>(sh.end[0] - sh.begin[0]);
  {
    RSHC_OBS_PHASE("solver.phase.update", "solver", block_id);
    for (int v = 0; v < Physics::kNumCons; ++v) {
      const std::size_t voff = static_cast<std::size_t>(v) * cells;
      for (int k = sh.begin[2]; k < sh.end[2]; ++k) {
        for (int j = sh.begin[1]; j < sh.end[1]; ++j) {
          const std::size_t base = sh.cell_index(k, j, ib);
          rk_combine_n(simd, nx, ca, u0 + voff + base, cb, u + voff + base,
                       cdt, du + voff + base);
        }
      }
    }
  }
  {
    RSHC_OBS_PHASE("solver.phase.c2p", "solver", block_id);
    const double* uptr[Physics::kNumCons];
    double* wptr[Physics::kNumPrim];
    for (int k = sh.begin[2]; k < sh.end[2]; ++k) {
      for (int j = sh.begin[1]; j < sh.end[1]; ++j) {
        const std::size_t base = sh.cell_index(k, j, ib);
        for (int v = 0; v < Physics::kNumCons; ++v) {
          uptr[v] = u + static_cast<std::size_t>(v) * cells + base;
        }
        for (int v = 0; v < Physics::kNumPrim; ++v) {
          wptr[v] = w + static_cast<std::size_t>(v) * cells + base;
        }
        Physics::cons_to_prim_n(simd, nx, uptr, wptr, ctx, stats);
#if RSHC_CHECKS_ENABLED
        // Same invariant as the pencil path: nothing unphysical may leave
        // c2p, even when the atmosphere fallback healed the zone.
        for (std::size_t i = 0; i < nx; ++i) {
          double comp[Physics::kNumPrim];
          for (int v = 0; v < Physics::kNumPrim; ++v) comp[v] = wptr[v][i];
          const auto p = Physics::prim_from_components(comp);
          RSHC_CHECK_PRIM("c2p", p, block_id, ib + static_cast<int>(i), j, k);
        }
#endif
      }
    }
  }
}

template <typename Physics>
double max_wave_speed_batched(const BlockShape& sh,
                              const typename Physics::Context& ctx, bool simd,
                              const double* w, std::vector<double>& speed) {
  double vmax = 1e-30;
  const std::size_t cells = sh.cells();
  const int ib = sh.begin[0];
  const auto nx = static_cast<std::size_t>(sh.end[0] - sh.begin[0]);
  const double* wptr[Physics::kNumPrim];
  speed.resize(nx);
  for (int k = sh.begin[2]; k < sh.end[2]; ++k) {
    for (int j = sh.begin[1]; j < sh.end[1]; ++j) {
      const std::size_t base = sh.cell_index(k, j, ib);
      for (int v = 0; v < Physics::kNumPrim; ++v) {
        wptr[v] = w + static_cast<std::size_t>(v) * cells + base;
      }
      Physics::max_speed_n(simd, nx, wptr, speed.data(), ctx, sh.ndim);
      for (std::size_t i = 0; i < nx; ++i) {
        vmax = std::max(vmax, speed[i]);
      }
    }
  }
  return vmax;
}

template <typename Physics>
void post_step_slabs(const BlockShape&, const typename Physics::Context&,
                     double*, double*, double, double) {}

// GLM psi damping over the whole ghosted psi slabs — same `psi *= factor`
// arithmetic as SrmhdPhysics::post_step on FieldArrays.
template <>
void post_step_slabs<SrmhdPhysics>(const BlockShape& sh,
                                   const SrmhdPhysics::Context& ctx, double* u,
                                   double* w, double dt, double dx_min) {
  const double factor = srmhd::glm_damping_factor(ctx.glm, dt, dx_min);
  if (factor >= 1.0) return;
  const std::size_t cells = sh.cells();
  double* up = u + static_cast<std::size_t>(srmhd::kPsi) * cells;
  double* wp = w + static_cast<std::size_t>(srmhd::kPsi) * cells;
  for (std::size_t n = 0; n < cells; ++n) up[n] *= factor;
  for (std::size_t n = 0; n < cells; ++n) wp[n] *= factor;
}

template void rhs_batched<SrhdPhysics>(const BlockShape&,
                                       const SrhdPhysics::Context&,
                                       recon::PencilKernel, bool,
                                       const double*, double*,
                                       BatchScratch<SrhdPhysics>&, int);
template void rhs_batched<SrmhdPhysics>(const BlockShape&,
                                        const SrmhdPhysics::Context&,
                                        recon::PencilKernel, bool,
                                        const double*, double*,
                                        BatchScratch<SrmhdPhysics>&, int);
template void rhs_batched_range<SrhdPhysics>(
    const BlockShape&, const SrhdPhysics::Context&, recon::PencilKernel,
    bool, const double*, double*, BatchScratch<SrhdPhysics>&, int,
    const std::array<int, 3>&, const std::array<int, 3>&, bool);
template void rhs_batched_range<SrmhdPhysics>(
    const BlockShape&, const SrmhdPhysics::Context&, recon::PencilKernel,
    bool, const double*, double*, BatchScratch<SrmhdPhysics>&, int,
    const std::array<int, 3>&, const std::array<int, 3>&, bool);
template void update_batched<SrhdPhysics>(const BlockShape&,
                                          const SrhdPhysics::Context&, bool,
                                          double, double, double,
                                          const double*, const double*,
                                          double*, double*, C2PStats&, int);
template void update_batched<SrmhdPhysics>(const BlockShape&,
                                           const SrmhdPhysics::Context&, bool,
                                           double, double, double,
                                           const double*, const double*,
                                           double*, double*, C2PStats&, int);
template double max_wave_speed_batched<SrhdPhysics>(
    const BlockShape&, const SrhdPhysics::Context&, bool, const double*,
    std::vector<double>&);
template double max_wave_speed_batched<SrmhdPhysics>(
    const BlockShape&, const SrmhdPhysics::Context&, bool, const double*,
    std::vector<double>&);
template void post_step_slabs<SrhdPhysics>(const BlockShape&,
                                           const SrhdPhysics::Context&,
                                           double*, double*, double, double);

}  // namespace rshc::solver::core
