#include "rshc/solver/diagnostics.hpp"

#include <cmath>

#include "rshc/srmhd/state.hpp"

namespace rshc::solver {

double max_divb_block(const mesh::Block& blk) {
  const auto& w = blk.prim();
  const auto& g = blk.grid();
  double worst = 0.0;
  for (int k = blk.begin(2); k < blk.end(2); ++k) {
    for (int j = blk.begin(1); j < blk.end(1); ++j) {
      for (int i = blk.begin(0); i < blk.end(0); ++i) {
        double div = (w(srmhd::kBx, k, j, i + 1) -
                      w(srmhd::kBx, k, j, i - 1)) /
                     (2.0 * g.dx(0));
        if (g.ndim() >= 2) {
          div += (w(srmhd::kBy, k, j + 1, i) - w(srmhd::kBy, k, j - 1, i)) /
                 (2.0 * g.dx(1));
        }
        if (g.ndim() >= 3) {
          div += (w(srmhd::kBz, k + 1, j, i) - w(srmhd::kBz, k - 1, j, i)) /
                 (2.0 * g.dx(2));
        }
        worst = std::max(worst, std::abs(div));
      }
    }
  }
  return worst;
}

double max_divb(SrmhdSolver& solver) {
  solver.fill_all_ghosts();
  double worst = 0.0;
  for (int b = 0; b < solver.num_blocks(); ++b) {
    worst = std::max(worst, max_divb_block(solver.block(b)));
  }
  return worst;
}

double psi_l2(const SrmhdSolver& solver) {
  double sum = 0.0;
  long long count = 0;
  for (int b = 0; b < solver.num_blocks(); ++b) {
    const auto& blk = solver.block(b);
    const auto& w = blk.prim();
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          sum += w(srmhd::kPsi, k, j, i) * w(srmhd::kPsi, k, j, i);
          ++count;
        }
      }
    }
  }
  return count > 0 ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
}

}  // namespace rshc::solver
