#include "rshc/solver/offload.hpp"

#include <array>
#include <vector>

#include "rshc/common/timer.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/srhd/state.hpp"

namespace rshc::solver {

OffloadStats offload_cons_to_prim(device::Device& dev, mesh::Block& blk,
                                  const SrhdPhysics::Context& ctx) {
  OffloadStats stats;
  const std::size_t n =
      static_cast<std::size_t>(blk.interior(0)) *
      static_cast<std::size_t>(blk.interior(1)) *
      static_cast<std::size_t>(blk.interior(2));
  stats.zones = n;
  RSHC_OBS_COUNT("offload.zones", static_cast<std::int64_t>(n));

  // Gather interior cons into contiguous staging arrays.
  std::array<std::vector<double>, srhd::kNumVars> host_in;
  std::array<std::vector<double>, srhd::kNumVars> host_out;
  for (int v = 0; v < srhd::kNumVars; ++v) {
    host_in[static_cast<std::size_t>(v)].resize(n);
    host_out[static_cast<std::size_t>(v)].resize(n);
  }
  const auto& u = blk.cons();
  std::size_t idx = 0;
  for (int k = blk.begin(2); k < blk.end(2); ++k) {
    for (int j = blk.begin(1); j < blk.end(1); ++j) {
      for (int i = blk.begin(0); i < blk.end(0); ++i) {
        for (int v = 0; v < srhd::kNumVars; ++v) {
          host_in[static_cast<std::size_t>(v)][idx] = u(v, k, j, i);
        }
        ++idx;
      }
    }
  }

  // Stage through device buffers.
  std::array<device::Buffer, srhd::kNumVars> in_buf;
  std::array<device::Buffer, srhd::kNumVars> out_buf;
  WallTimer timer;
  {
    RSHC_OBS_PHASE("offload.upload", "device", -1);
    for (int v = 0; v < srhd::kNumVars; ++v) {
      in_buf[static_cast<std::size_t>(v)] = dev.alloc(n);
      out_buf[static_cast<std::size_t>(v)] = dev.alloc(n);
      dev.upload_async(host_in[static_cast<std::size_t>(v)],
                       in_buf[static_cast<std::size_t>(v)]);
    }
    dev.synchronize();
  }
  stats.upload_seconds = timer.seconds();

  // Launch the batch on the device's stream; variant by backend.
  const bool scalar = dev.backend() == device::Backend::kHostScalar;
  auto* d = in_buf[srhd::kD].device_view().data();
  auto* sx = in_buf[srhd::kSx].device_view().data();
  auto* sy = in_buf[srhd::kSy].device_view().data();
  auto* sz = in_buf[srhd::kSz].device_view().data();
  auto* tau = in_buf[srhd::kTau].device_view().data();
  auto* rho = out_buf[srhd::kRho].device_view().data();
  auto* vx = out_buf[srhd::kVx].device_view().data();
  auto* vy = out_buf[srhd::kVy].device_view().data();
  auto* vz = out_buf[srhd::kVz].device_view().data();
  auto* p = out_buf[srhd::kP].device_view().data();
  const double gamma = ctx.eos.gamma();
  const auto opt = ctx.c2p;
  srhd::kernels::BatchStats batch;
  timer.reset();
  {
    RSHC_OBS_PHASE("offload.kernel", "device", -1);
    dev.launch(
        [=, &batch] {
          batch = scalar
                      ? srhd::kernels::scalar::cons_to_prim_n(
                            n, d, sx, sy, sz, tau, rho, vx, vy, vz, p, gamma,
                            opt)
                      : srhd::kernels::simd::cons_to_prim_n(
                            n, d, sx, sy, sz, tau, rho, vx, vy, vz, p, gamma,
                            opt);
        },
        n);
    dev.synchronize();
  }
  stats.kernel_seconds = timer.seconds();
  stats.batch = batch;

  timer.reset();
  {
    RSHC_OBS_PHASE("offload.download", "device", -1);
    for (int v = 0; v < srhd::kNumVars; ++v) {
      dev.download_async(out_buf[static_cast<std::size_t>(v)],
                         host_out[static_cast<std::size_t>(v)]);
    }
    dev.synchronize();
  }
  stats.download_seconds = timer.seconds();

  // Scatter primitives back into the block.
  auto& w = blk.prim();
  idx = 0;
  for (int k = blk.begin(2); k < blk.end(2); ++k) {
    for (int j = blk.begin(1); j < blk.end(1); ++j) {
      for (int i = blk.begin(0); i < blk.end(0); ++i) {
        for (int v = 0; v < srhd::kNumVars; ++v) {
          w(v, k, j, i) = host_out[static_cast<std::size_t>(v)][idx];
        }
        ++idx;
      }
    }
  }
  return stats;
}

}  // namespace rshc::solver
