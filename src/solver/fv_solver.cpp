#include "rshc/solver/fv_solver.hpp"

#include <algorithm>
#include <string>

#include "rshc/check/check.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/solver/device_exec.hpp"
#include "rshc/solver/rhs_core.hpp"

namespace rshc::solver {

std::string_view host_pipeline_name(HostPipeline p) {
  switch (p) {
    case HostPipeline::kPencil: return "pencil";
    case HostPipeline::kBatchedScalar: return "batched-scalar";
    case HostPipeline::kBatchedSimd: return "batched-simd";
    case HostPipeline::kDevice: return "device";
  }
  return "unknown";
}

HostPipeline parse_host_pipeline(std::string_view name) {
  if (name == "pencil") return HostPipeline::kPencil;
  if (name == "batched-scalar") return HostPipeline::kBatchedScalar;
  if (name == "batched-simd" || name == "batched") {
    return HostPipeline::kBatchedSimd;
  }
  if (name == "device") return HostPipeline::kDevice;
  RSHC_REQUIRE(false,
               std::string("unknown host pipeline: ") + std::string(name));
  return HostPipeline::kPencil;  // unreachable
}

#if RSHC_OBS_ENABLED
namespace {
// Heartbeat throughput: interior zone-updates per second over the step(s)
// just taken (zones x RK stages x steps / elapsed), the "zones/sec" the
// live telemetry reports and perf_report turns into MLUPS.
double heartbeat_zone_rate(const mesh::Grid& g, int stages, long long nsteps,
                           double seconds) {
  if (seconds <= 0.0) return 0.0;
  const double zones = static_cast<double>(g.extent(0)) *
                       static_cast<double>(g.extent(1)) *
                       static_cast<double>(g.extent(2));
  return zones * static_cast<double>(stages) *
         static_cast<double>(nsteps) / seconds;
}
}  // namespace
#endif

// Per-block work arrays, sized once for the longest axis. The pencil path
// uses the single-pencil q/ql/qr; the batched path reconstructs
// core::kTileRows pencils per call through the shared BatchScratch tiles
// (rhs_core.hpp), which the device pipeline allocates per arena as well.
template <typename Physics>
struct FvSolver<Physics>::Scratch {
  // q/ql/qr: [var][pencil index]
  std::array<std::vector<double>, Physics::kNumPrim> q;
  std::array<std::vector<double>, Physics::kNumPrim> ql;
  std::array<std::vector<double>, Physics::kNumPrim> qr;
  core::BatchScratch<Physics> batch;

  // Sub-millisecond remainder of overlap-hidden time, carried across
  // stages so the integer comm.overlap.hidden_ms counter loses < 1 ms
  // total (per block — Scratch is per block, so graph workers never race).
  double hidden_ms_acc = 0.0;

  explicit Scratch(int max_extent) : batch(max_extent) {
    const auto plen = static_cast<std::size_t>(max_extent);
    for (int v = 0; v < Physics::kNumPrim; ++v) {
      q[v].resize(plen);
      ql[v].resize(plen);
      qr[v].resize(plen);
    }
  }
};

template <typename Physics>
FvSolver<Physics>::FvSolver(const mesh::Grid& grid, Options opt)
    : grid_(grid),
      opt_(opt),
      ng_(recon::ghost_width(opt.recon)),
      decomp_(grid_, opt.blocks) {
  const int nb = decomp_.num_blocks();
  blocks_.reserve(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    blocks_.emplace_back(grid_, decomp_.extents(b), ng_, Physics::kNumCons,
                         Physics::kNumPrim);
    const auto& blk = blocks_.back();
    for (int a = 0; a < grid_.ndim(); ++a) {
      RSHC_REQUIRE(blk.interior(a) >= ng_,
                   "block too small for reconstruction stencil");
    }
    u0_.emplace_back(Physics::kNumCons, blk.total(2), blk.total(1),
                     blk.total(0));
    du_.emplace_back(Physics::kNumCons, blk.total(2), blk.total(1),
                     blk.total(0));
    const int max_extent =
        std::max({blk.total(0), blk.total(1), blk.total(2)});
    scratch_.push_back(std::make_unique<Scratch>(max_extent));
  }
  block_stats_.resize(static_cast<std::size_t>(nb));
  recon_fn_ = recon::pencil_kernel(opt_.recon);
}

template <typename Physics>
FvSolver<Physics>::FvSolver(const mesh::Grid& grid, Options opt,
                            mesh::BlockExtents sub)
    : grid_(grid),
      opt_(opt),
      ng_(recon::ghost_width(opt.recon)),
      decomp_(grid_, {1, 1, 1}),
      restricted_(true) {
  blocks_.emplace_back(grid_, sub, ng_, Physics::kNumCons,
                       Physics::kNumPrim);
  const auto& blk = blocks_.back();
  for (int a = 0; a < grid_.ndim(); ++a) {
    RSHC_REQUIRE(blk.interior(a) >= ng_,
                 "rank block too small for reconstruction stencil");
  }
  u0_.emplace_back(Physics::kNumCons, blk.total(2), blk.total(1),
                   blk.total(0));
  du_.emplace_back(Physics::kNumCons, blk.total(2), blk.total(1),
                   blk.total(0));
  scratch_.push_back(std::make_unique<Scratch>(
      std::max({blk.total(0), blk.total(1), blk.total(2)})));
  block_stats_.resize(1);
  recon_fn_ = recon::pencil_kernel(opt_.recon);
}

template <typename Physics>
FvSolver<Physics>::~FvSolver() = default;

template <typename Physics>
void FvSolver<Physics>::initialize(
    const std::function<Prim(double, double, double)>& fn) {
  for (auto& blk : blocks_) {
    auto& w = blk.prim();
    auto& u = blk.cons();
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          const Prim p =
              fn(blk.center(0, i), blk.center(1, j), blk.center(2, k));
          RSHC_CHECK_PRIM("init", p, -1, i, j, k);
          Physics::store_prim(w, k, j, i, p);
          Physics::store_cons(u, k, j, i, Physics::to_cons(p, opt_.physics));
        }
      }
    }
  }
  fill_all_ghosts();
  if (device_) device_->invalidate();  // host mirror is authoritative again
  time_ = 0.0;
  stats_ = {};
}

template <typename Physics>
void FvSolver<Physics>::exchange_block(int b) {
  RSHC_OBS_PHASE("solver.phase.exchange", "solver", b);
  if (ghost_filler_) {
    ghost_filler_(b);
    return;
  }
  RSHC_REQUIRE(!restricted_,
               "restricted solver needs set_ghost_filler before stepping");
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    const bool periodic = opt_.bc.periodic(axis);
    for (int side = 0; side < 2; ++side) {
      const auto nbr = decomp_.neighbor(b, axis, side, periodic);
      if (nbr.has_value()) {
        mesh::copy_halo(blk, blocks_[static_cast<std::size_t>(*nbr)], axis,
                        side);
      } else {
        const auto negate = Physics::reflect_negate_vars(axis);
        mesh::apply_physical_boundary(
            blk, axis, side, opt_.bc.type[static_cast<std::size_t>(axis)],
            negate);
      }
    }
  }
}

template <typename Physics>
void FvSolver<Physics>::fill_all_ghosts() {
  for (int b = 0; b < num_blocks(); ++b) exchange_block(b);
}

template <typename Physics>
void FvSolver<Physics>::compute_rhs(int b) {
  RSHC_OBS_PHASE("solver.phase.rhs", "solver", b);
  if (opt_.pipeline == HostPipeline::kPencil) {
    compute_rhs_pencil(b);
  } else {
    compute_rhs_batched(b);
  }
}

template <typename Physics>
void FvSolver<Physics>::compute_rhs_pencil(int b) {
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  Scratch& s = *scratch_[static_cast<std::size_t>(b)];
  du.fill(0.0);

  const auto& w = blk.prim();
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    const double inv_dx = 1.0 / grid_.dx(axis);
    const int n = blk.total(axis);
    // Transverse axes (interior ranges only; corners are never needed).
    int a1 = -1;
    int a2 = -1;
    for (int a = 0; a < 3; ++a) {
      if (a == axis) continue;
      (a1 < 0 ? a1 : a2) = a;
    }

    for (int t2 = blk.begin(a2); t2 < blk.end(a2); ++t2) {
      for (int t1 = blk.begin(a1); t1 < blk.end(a1); ++t1) {
        auto local = [&](int f) {
          int idx[3];
          idx[axis] = f;
          idx[a1] = t1;
          idx[a2] = t2;
          return std::array<int, 3>{idx[0], idx[1], idx[2]};  // (i, j, k)
        };

        // Load the pencil and reconstruct every primitive variable.
        for (int v = 0; v < Physics::kNumPrim; ++v) {
          for (int f = 0; f < n; ++f) {
            const auto c = local(f);
            s.q[v][static_cast<std::size_t>(f)] = w(v, c[2], c[1], c[0]);
          }
          recon::reconstruct(opt_.recon,
                             {s.q[v].data(), static_cast<std::size_t>(n)},
                             {s.ql[v].data(), static_cast<std::size_t>(n)},
                             {s.qr[v].data(), static_cast<std::size_t>(n)});
        }

        // Interfaces f+1/2 for f in [begin-1, end-1]: left state is the
        // right face of cell f, right state the left face of cell f+1.
        double comp[Physics::kNumPrim];
        for (int f = blk.begin(axis) - 1; f < blk.end(axis); ++f) {
          for (int v = 0; v < Physics::kNumPrim; ++v) {
            comp[v] = s.qr[v][static_cast<std::size_t>(f)];
          }
          Prim wl = Physics::prim_from_components(comp);
          for (int v = 0; v < Physics::kNumPrim; ++v) {
            comp[v] = s.ql[v][static_cast<std::size_t>(f) + 1];
          }
          Prim wr = Physics::prim_from_components(comp);
          Physics::limit_face_state(wl, opt_.physics);
          Physics::limit_face_state(wr, opt_.physics);

          const Cons flux =
              Physics::interface_flux(wl, wr, axis, opt_.physics);
#if RSHC_CHECKS_ENABLED
          {
            // Face states leave limit_face_state physical by construction;
            // a violation here means the limiter or reconstruction broke.
            // A non-finite flux poisons two zones silently — catch it at
            // the interface where the offending states are still in hand.
            const auto cf = local(f);
            RSHC_CHECK_PRIM("flux", wl, b, cf[0], cf[1], cf[2]);
            RSHC_CHECK_PRIM("flux", wr, b, cf[0], cf[1], cf[2]);
            RSHC_CHECK_CONS("flux", flux, b, cf[0], cf[1], cf[2]);
          }
#endif

          if (f >= blk.begin(axis)) {
            const auto c = local(f);
            Cons acc = Physics::load_cons(du, c[2], c[1], c[0]);
            acc += (-inv_dx) * flux;
            Physics::store_cons(du, c[2], c[1], c[0], acc);
          }
          if (f + 1 < blk.end(axis)) {
            const auto c = local(f + 1);
            Cons acc = Physics::load_cons(du, c[2], c[1], c[0]);
            acc += inv_dx * flux;
            Physics::store_cons(du, c[2], c[1], c[0], acc);
          }
        }
      }
    }
  }
}

// Range-restricted pencil rhs: same arithmetic as compute_rhs_pencil, but
// only zones in [lo, hi) accumulate. Reconstruction runs on sub-pencil
// windows padded by the stencil radius, so every face value a zone in the
// box reads is computed from exactly the cells the full pencil would use —
// bitwise identical per zone (the kernels are fixed-radius pointwise
// stencils; see rhs_core.cpp for the same argument on the batched side).
// The caller zeroes du; disjoint boxes may run in any order.
template <typename Physics>
void FvSolver<Physics>::compute_rhs_pencil_range(int b,
                                                 const std::array<int, 3>& lo,
                                                 const std::array<int, 3>& hi) {
  for (int a = 0; a < 3; ++a) {
    if (lo[a] >= hi[a]) return;  // empty box
  }
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  Scratch& s = *scratch_[static_cast<std::size_t>(b)];

  const auto& w = blk.prim();
  for (int axis = 0; axis < grid_.ndim(); ++axis) {
    const double inv_dx = 1.0 / grid_.dx(axis);
    int a1 = -1;
    int a2 = -1;
    for (int a = 0; a < 3; ++a) {
      if (a == axis) continue;
      (a1 < 0 ? a1 : a2) = a;
    }

    const int fb = lo[axis];
    const int fe = hi[axis];
    // Window [ws, we): the cells the stencils of faces f-1/2 .. f+1/2 for
    // f in [fb, fe) actually read. fb >= begin = ng and radius = ng - 1,
    // so the window never leaves the ghosted pencil.
    const int radius = blk.begin(axis) - 1;
    const int ws = fb - 1 - radius;
    const int we = fe + 1 + radius;
    const auto uws = static_cast<std::size_t>(ws);
    const auto nwin = static_cast<std::size_t>(we - ws);

    for (int t2 = lo[a2]; t2 < hi[a2]; ++t2) {
      for (int t1 = lo[a1]; t1 < hi[a1]; ++t1) {
        auto local = [&](int f) {
          int idx[3];
          idx[axis] = f;
          idx[a1] = t1;
          idx[a2] = t2;
          return std::array<int, 3>{idx[0], idx[1], idx[2]};  // (i, j, k)
        };

        // Load the window and reconstruct at absolute pencil offsets, so
        // the interface loop below indexes ql/qr exactly like the
        // full-pencil path does.
        for (int v = 0; v < Physics::kNumPrim; ++v) {
          for (int f = ws; f < we; ++f) {
            const auto c = local(f);
            s.q[v][static_cast<std::size_t>(f)] = w(v, c[2], c[1], c[0]);
          }
          recon::reconstruct(opt_.recon, {s.q[v].data() + uws, nwin},
                             {s.ql[v].data() + uws, nwin},
                             {s.qr[v].data() + uws, nwin});
        }

        // Interfaces f+1/2 for f in [fb-1, fe-1]; the box owns exactly the
        // zones in [fb, fe), so the accumulation guards clip to the box.
        double comp[Physics::kNumPrim];
        for (int f = fb - 1; f < fe; ++f) {
          for (int v = 0; v < Physics::kNumPrim; ++v) {
            comp[v] = s.qr[v][static_cast<std::size_t>(f)];
          }
          Prim wl = Physics::prim_from_components(comp);
          for (int v = 0; v < Physics::kNumPrim; ++v) {
            comp[v] = s.ql[v][static_cast<std::size_t>(f) + 1];
          }
          Prim wr = Physics::prim_from_components(comp);
          Physics::limit_face_state(wl, opt_.physics);
          Physics::limit_face_state(wr, opt_.physics);

          const Cons flux =
              Physics::interface_flux(wl, wr, axis, opt_.physics);
#if RSHC_CHECKS_ENABLED
          {
            const auto cf = local(f);
            RSHC_CHECK_PRIM("flux", wl, b, cf[0], cf[1], cf[2]);
            RSHC_CHECK_PRIM("flux", wr, b, cf[0], cf[1], cf[2]);
            RSHC_CHECK_CONS("flux", flux, b, cf[0], cf[1], cf[2]);
          }
#endif

          if (f >= fb) {
            const auto c = local(f);
            Cons acc = Physics::load_cons(du, c[2], c[1], c[0]);
            acc += (-inv_dx) * flux;
            Physics::store_cons(du, c[2], c[1], c[0], acc);
          }
          if (f + 1 < fe) {
            const auto c = local(f + 1);
            Cons acc = Physics::load_cons(du, c[2], c[1], c[0]);
            acc += inv_dx * flux;
            Physics::store_cons(du, c[2], c[1], c[0], acc);
          }
        }
      }
    }
  }
}

template <typename Physics>
void FvSolver<Physics>::compute_rhs_range(int b, const std::array<int, 3>& lo,
                                          const std::array<int, 3>& hi,
                                          bool zero_du) {
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  if (opt_.pipeline == HostPipeline::kPencil) {
    if (zero_du) du.fill(0.0);
    compute_rhs_pencil_range(b, lo, hi);
  } else {
    core::rhs_batched_range<Physics>(
        core::shape_of(blk, grid_), opt_.physics, recon_fn_,
        opt_.pipeline != HostPipeline::kBatchedScalar,
        blk.prim().flat().data(), du.flat().data(),
        scratch_[static_cast<std::size_t>(b)]->batch, b, lo, hi, zero_du);
  }
}

// Interior-first rhs for the latency-hiding exchange. The deep interior
// (every zone >= ng from each active face) reads no ghosts, so it runs
// while halo messages fly; the remaining onion of ng-wide boundary boxes
// runs as overlap_finish_ reports faces valid. The boxes partition the
// block disjointly and compute_rhs_range is bitwise per zone regardless of
// box order, so the result is bit-identical to compute_rhs after a
// synchronous exchange.
template <typename Physics>
void FvSolver<Physics>::compute_rhs_overlapped(int b) {
  RSHC_OBS_PHASE("solver.phase.rhs", "solver", b);
  const mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];

  std::array<int, 3> ilo{};
  std::array<int, 3> ihi{};
  bool has_interior = true;
  for (int a = 0; a < 3; ++a) {
    const int margin = a < grid_.ndim() ? blk.ghost(a) : 0;
    ilo[a] = blk.begin(a) + margin;
    ihi[a] = blk.end(a) - margin;
    if (ilo[a] >= ihi[a]) has_interior = false;
  }

  struct Box {
    std::array<int, 3> lo;
    std::array<int, 3> hi;
    unsigned need = 0;  // faces (bit axis*2+side) whose ghosts the box reads
    bool zero = false;
    bool done = false;
  };
  unsigned all_faces = 0;
  for (int a = 0; a < grid_.ndim(); ++a) {
    all_faces |= (1u << (a * 2)) | (1u << (a * 2 + 1));
  }

  std::array<Box, 7> boxes{};
  std::size_t nboxes = 0;
  if (has_interior) {
    // Onion decomposition: box(a, side) is the ng-wide margin at face
    // (a, side), restricted to the interior of axes < a and spanning axes
    // > a fully — the boxes tile (block \ deep interior) disjointly. A box
    // reads the ghosts of its own face, plus both faces of every active
    // axis t > a (its t-extent is full, so t-pencils reach both ghost
    // layers); axes < a never reach ghosts (extent clipped to interior).
    for (int a = 0; a < grid_.ndim(); ++a) {
      for (int side = 0; side < 2; ++side) {
        Box& box = boxes[nboxes++];
        for (int t = 0; t < 3; ++t) {
          box.lo[t] = t < a ? ilo[t] : blk.begin(t);
          box.hi[t] = t < a ? ihi[t] : blk.end(t);
        }
        if (side == 0) {
          box.lo[a] = blk.begin(a);
          box.hi[a] = ilo[a];
        } else {
          box.lo[a] = ihi[a];
          box.hi[a] = blk.end(a);
        }
        box.need = 1u << (a * 2 + side);
        for (int t = a + 1; t < grid_.ndim(); ++t) {
          box.need |= (1u << (t * 2)) | (1u << (t * 2 + 1));
        }
      }
    }
  } else {
    // Degenerate block (some extent < 3*ng): no ghost-free interior.
    // One full box gated on every active face — no overlap, still correct.
    Box& box = boxes[nboxes++];
    for (int t = 0; t < 3; ++t) {
      box.lo[t] = blk.begin(t);
      box.hi[t] = blk.end(t);
    }
    box.need = all_faces;
    box.zero = true;
  }

  if (has_interior) {
    const WallTimer t;
    compute_rhs_range(b, ilo, ihi, /*zero_du=*/true);
    // The interior pass ran while the halo messages were in flight: that
    // is the comm time this schedule hides.
    const double ms = t.seconds() * 1000.0;
    Scratch& s = *scratch_[static_cast<std::size_t>(b)];
    s.hidden_ms_acc += ms;
    const auto whole = static_cast<long long>(s.hidden_ms_acc);
    if (whole > 0) {
      RSHC_OBS_COUNT("comm.overlap.hidden_ms", whole);
      s.hidden_ms_acc -= static_cast<double>(whole);
    }
    RSHC_OBS_COUNT("solver.rhs.interior_zones",
                   static_cast<long long>(ihi[0] - ilo[0]) *
                       static_cast<long long>(ihi[1] - ilo[1]) *
                       static_cast<long long>(ihi[2] - ilo[2]));
  }

  // Inactive axes have no exchange: mark their faces pre-arrived so the
  // masks only ever gate on real messages.
  unsigned arrived = ~all_faces;
  auto sweep = [&] {
    for (std::size_t i = 0; i < nboxes; ++i) {
      Box& box = boxes[i];
      if (box.done || (box.need & ~arrived) != 0) continue;
      compute_rhs_range(b, box.lo, box.hi, box.zero);
      box.done = true;
    }
  };
  const FaceReadyFn ready = [&](int axis, int side) {
    arrived |= 1u << (axis * 2 + side);
    sweep();
  };
  overlap_finish_(b, ready);
  for (std::size_t i = 0; i < nboxes; ++i) {
    RSHC_REQUIRE(boxes[i].done,
                 "overlap finish hook did not report every face ready");
  }
}

// Batched rhs: delegates to the shared core::rhs_batched instantiation —
// the same compiled body the device pipeline launches as its rhs kernel.
// See rhs_core.cpp for how the tile staging preserves the pencil path's
// arithmetic (the two pipelines are bitwise identical).
template <typename Physics>
void FvSolver<Physics>::compute_rhs_batched(int b) {
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  core::rhs_batched<Physics>(core::shape_of(blk, grid_), opt_.physics,
                             recon_fn_,
                             opt_.pipeline != HostPipeline::kBatchedScalar,
                             blk.prim().flat().data(), du.flat().data(),
                             scratch_[static_cast<std::size_t>(b)]->batch, b);
}

template <typename Physics>
void FvSolver<Physics>::compute_rhs_all() {
  for (int b = 0; b < num_blocks(); ++b) compute_rhs(b);
}

template <typename Physics>
void FvSolver<Physics>::update_block(int b, time::StageCoeffs coeffs,
                                     double dt) {
  if (opt_.pipeline == HostPipeline::kPencil) {
    update_block_pencil(b, coeffs, dt);
  } else {
    update_block_batched(b, coeffs, dt);
  }
}

template <typename Physics>
void FvSolver<Physics>::update_block_pencil(int b, time::StageCoeffs coeffs,
                                            double dt) {
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  const mesh::FieldArray& u0 = u0_[static_cast<std::size_t>(b)];
  const mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  auto& u = blk.cons();
  auto& w = blk.prim();
  {
    // RK convex combination into the conservative field.
    RSHC_OBS_PHASE("solver.phase.update", "solver", b);
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          const Cons ref = Physics::load_cons(u0, k, j, i);
          const Cons cur = Physics::load_cons(u, k, j, i);
          const Cons rhs = Physics::load_cons(du, k, j, i);
          const Cons next =
              coeffs.a * ref + coeffs.b * cur + (coeffs.c * dt) * rhs;
          Physics::store_cons(u, k, j, i, next);
        }
      }
    }
  }
  C2PStats stats;
  {
    // Primitive recovery reads back the freshly stored conservatives, so
    // the result is bitwise identical to the previously fused loop.
    RSHC_OBS_PHASE("solver.phase.c2p", "solver", b);
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          const Cons next = Physics::load_cons(u, k, j, i);
          const Prim p = Physics::to_prim(next, opt_.physics, stats);
          // Post-recovery state must be physical even when the atmosphere
          // fallback healed the zone; an unphysical prim escaping c2p is
          // the bug class this checker exists for.
          RSHC_CHECK_PRIM("c2p", p, b, i, j, k);
          Physics::store_prim(w, k, j, i, p);
          // Keep cons consistent when the atmosphere policy rewrote prims.
          // (to_prim never throws; floored zones must not leave stale cons.)
        }
      }
    }
  }
  block_stats_[static_cast<std::size_t>(b)] += stats;
}

// Batched update: delegates to the shared core::update_batched
// instantiation (rk_combine_n span loops + batched con2prim) — the same
// compiled body the device pipeline launches as its update kernel.
// Bitwise identical to the pencil path; see rhs_core.cpp.
template <typename Physics>
void FvSolver<Physics>::update_block_batched(int b, time::StageCoeffs coeffs,
                                             double dt) {
  mesh::Block& blk = blocks_[static_cast<std::size_t>(b)];
  const mesh::FieldArray& u0 = u0_[static_cast<std::size_t>(b)];
  const mesh::FieldArray& du = du_[static_cast<std::size_t>(b)];
  C2PStats stats;
  core::update_batched<Physics>(
      core::shape_of(blk, grid_), opt_.physics,
      opt_.pipeline != HostPipeline::kBatchedScalar, coeffs.a, coeffs.b,
      coeffs.c * dt, u0.flat().data(), du.flat().data(),
      blk.cons().flat().data(), blk.prim().flat().data(), stats, b);
  block_stats_[static_cast<std::size_t>(b)] += stats;
}

template <typename Physics>
void FvSolver<Physics>::save_state() {
  RSHC_OBS_PHASE("solver.phase.other", "solver", -1);
  for (int b = 0; b < num_blocks(); ++b) {
    const auto src = blocks_[static_cast<std::size_t>(b)].cons().flat();
    auto dst = u0_[static_cast<std::size_t>(b)].flat();
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

template <typename Physics>
void FvSolver<Physics>::post_step_all() {
  RSHC_OBS_PHASE("solver.phase.other", "solver", -1);
  for (int b = 0; b < num_blocks(); ++b) {
    auto& blk = blocks_[static_cast<std::size_t>(b)];
    Physics::post_step(blk.cons(), blk.prim(), opt_.physics, current_dt_,
                       grid_.min_dx());
  }
  for (const auto& bs : block_stats_) stats_ += bs;
  for (auto& bs : block_stats_) bs = {};
}

template <typename Physics>
void FvSolver<Physics>::recover_all_prims() {
  for (int b = 0; b < num_blocks(); ++b) {
    auto& blk = blocks_[static_cast<std::size_t>(b)];
    const auto& u = blk.cons();
    auto& w = blk.prim();
    C2PStats ignored;
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          const Cons c = Physics::load_cons(u, k, j, i);
          const Prim p = Physics::to_prim(c, opt_.physics, ignored);
          RSHC_CHECK_PRIM("c2p", p, b, i, j, k);
          Physics::store_prim(w, k, j, i, p);
        }
      }
    }
  }
  fill_all_ghosts();
  if (device_) device_->invalidate();  // restart rewrote the host mirror
}

template <typename Physics>
double FvSolver<Physics>::compute_dt() const {
  if (opt_.pipeline == HostPipeline::kDevice && device_ &&
      device_->resident()) {
    // CFL scan on the device-resident state: same compiled core body, one
    // scalar download per block instead of a state round-trip.
    return opt_.cfl * grid_.min_dx() / device_->max_wave_speed();
  }
  double vmax = 1e-30;
  if (opt_.pipeline != HostPipeline::kPencil) {
    // Slab-wise CFL scan through the shared core (the body the device
    // pipeline launches as its dt kernel), reduced in the same row-major
    // order as the per-zone loop (max is insensitive to the change anyway
    // — identical dt bit for bit).
    const bool simd = opt_.pipeline != HostPipeline::kBatchedScalar;
    std::vector<double> speed;
    for (const auto& blk : blocks_) {
      vmax = std::max(
          vmax, core::max_wave_speed_batched<Physics>(
                    core::shape_of(blk, grid_), opt_.physics, simd,
                    blk.prim().flat().data(), speed));
    }
    return opt_.cfl * grid_.min_dx() / vmax;
  }
  for (const auto& blk : blocks_) {
    const auto& w = blk.prim();
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          const Prim p = Physics::load_prim(w, k, j, i);
          vmax = std::max(vmax,
                          Physics::max_speed(p, opt_.physics, grid_.ndim()));
        }
      }
    }
  }
  return opt_.cfl * grid_.min_dx() / vmax;
}

template <typename Physics>
void FvSolver<Physics>::stage_serial(int stage, double dt) {
  const auto coeffs = time::stage_coeffs(opt_.integrator, stage);
  WallTimer t;
  if (overlap_active()) {
    // Latency-hiding schedule: post every face exchange up front, compute
    // the ghost-free interior while messages fly, and finish boundary
    // boxes as their faces land. The exchange phase is the pack+post cost
    // only; the waits hide inside the rhs phase (that is the point).
    for (int b = 0; b < num_blocks(); ++b) overlap_begin_(b);
    phases_.exchange += t.seconds();
    t.reset();
    for (int b = 0; b < num_blocks(); ++b) compute_rhs_overlapped(b);
    phases_.rhs += t.seconds();
  } else {
    for (int b = 0; b < num_blocks(); ++b) exchange_block(b);
    phases_.exchange += t.seconds();
    t.reset();
    for (int b = 0; b < num_blocks(); ++b) compute_rhs(b);
    phases_.rhs += t.seconds();
  }
  t.reset();
  for (int b = 0; b < num_blocks(); ++b) update_block(b, coeffs, dt);
  phases_.update += t.seconds();
}

// Device-offload step: establish residency (full upload, first step only),
// then per RK stage let DeviceExec pull rims down, run the host ghost
// logic, push ghosts back up, and chain the rhs/update kernels — all
// enqueued, overlapping transfer with compute. One synchronize at the end
// of the step publishes the c2p stats.
template <typename Physics>
void FvSolver<Physics>::step_device(double dt) {
  current_dt_ = dt;
  if (!device_) {
    device_ = std::make_unique<DeviceExec<Physics>>(
        grid_, blocks_, opt_.physics, recon_fn_, opt_.accel);
  }
  device_->ensure_resident();
  device_->save_state();
  for (int s = 0; s < time::num_stages(opt_.integrator); ++s) {
    const auto coeffs = time::stage_coeffs(opt_.integrator, s);
    device_->stage(coeffs.a, coeffs.b, coeffs.c * dt,
                   [this](int b) { exchange_block(b); }, block_stats_);
  }
  device_->post_step(dt, grid_.min_dx());
  device_->synchronize();
  for (const auto& bs : block_stats_) stats_ += bs;
  for (auto& bs : block_stats_) bs = {};
  time_ += dt;
}

template <typename Physics>
bool FvSolver<Physics>::device_resident() const {
  return device_ && device_->resident();
}

template <typename Physics>
void FvSolver<Physics>::sync_from_device() {
  if (!device_resident()) return;
  device_->synchronize();
  device_->download_all();
}

template <typename Physics>
void FvSolver<Physics>::set_pipeline(HostPipeline p) {
  if (p == opt_.pipeline) return;
  if (opt_.pipeline == HostPipeline::kDevice) {
    // Hand authority back to the host mirror; the next kDevice step will
    // re-upload (host steps in between mutate the mirror).
    sync_from_device();
    if (device_) device_->invalidate();
  }
  opt_.pipeline = p;
}

template <typename Physics>
void FvSolver<Physics>::step(double dt) {
  RSHC_OBS_PHASE("solver.step", "solver", -1);
  RSHC_OBS_COUNT("solver.steps", 1);
#if RSHC_OBS_ENABLED
  const WallTimer hb_timer;
#endif
  if (opt_.pipeline == HostPipeline::kDevice) {
    step_device(dt);
  } else {
    current_dt_ = dt;
    WallTimer t;
    save_state();
    phases_.other += t.seconds();
    for (int s = 0; s < time::num_stages(opt_.integrator); ++s) {
      stage_serial(s, dt);
    }
    t.reset();
    post_step_all();
    phases_.other += t.seconds();
    time_ += dt;
  }
  ++steps_taken_;
#if RSHC_OBS_ENABLED
  RSHC_OBS_HEARTBEAT(steps_taken_, time_, dt,
                     heartbeat_zone_rate(grid_,
                                         time::num_stages(opt_.integrator),
                                         1, hb_timer.seconds()));
#endif
}

template <typename Physics>
void FvSolver<Physics>::step_parallel(double dt, parallel::ThreadPool& pool,
                                      bool dataflow) {
  RSHC_REQUIRE(opt_.pipeline != HostPipeline::kDevice,
               "host-parallel stepping does not drive the device pipeline; "
               "use step() or set_pipeline() first");
  RSHC_OBS_PHASE("solver.step", "solver", -1);
  RSHC_OBS_COUNT("solver.steps", 1);
#if RSHC_OBS_ENABLED
  const WallTimer hb_timer;
#endif
  if (dataflow) {
    current_dt_ = dt;
    save_state();
    step_graph(1).run(pool);
    post_step_all();
    time_ += dt;
  } else {
    // Bulk-synchronous: a barrier after every phase of every stage.
    current_dt_ = dt;
    save_state();
    const int nb = num_blocks();
    for (int s = 0; s < time::num_stages(opt_.integrator); ++s) {
      const auto coeffs = time::stage_coeffs(opt_.integrator, s);
      pool.parallel_for(0, nb, [&](long long b) {
        exchange_block(static_cast<int>(b));
      });
      pool.parallel_for(0, nb, [&](long long b) {
        compute_rhs(static_cast<int>(b));
        update_block(static_cast<int>(b), coeffs, dt);
      });
    }
    post_step_all();
    time_ += dt;
  }
  ++steps_taken_;
#if RSHC_OBS_ENABLED
  RSHC_OBS_HEARTBEAT(steps_taken_, time_, dt,
                     heartbeat_zone_rate(grid_,
                                         time::num_stages(opt_.integrator),
                                         1, hb_timer.seconds()));
#endif
}

template <typename Physics>
parallel::TaskGraph& FvSolver<Physics>::step_graph(int nsteps) {
  if (graph_ && graph_steps_ == nsteps &&
      graph_overlap_ == overlap_active()) {
    return *graph_;
  }
  graph_ = std::make_unique<parallel::TaskGraph>();
  graph_steps_ = nsteps;
  graph_overlap_ = overlap_active();
  const bool overlap = graph_overlap_;

  using NodeId = parallel::TaskGraph::NodeId;
  const int nb = num_blocks();
  const int stages = time::num_stages(opt_.integrator);
  std::vector<NodeId> prev_k;  // K nodes of the previous global stage
  std::vector<NodeId> cur_e(static_cast<std::size_t>(nb));
  std::vector<NodeId> cur_k(static_cast<std::size_t>(nb));

  auto neighbors_of = [&](int b) {
    std::vector<int> out;
    for (int axis = 0; axis < grid_.ndim(); ++axis) {
      for (int side = 0; side < 2; ++side) {
        const auto nbr =
            decomp_.neighbor(b, axis, side, opt_.bc.periodic(axis));
        if (nbr.has_value() && *nbr != b) out.push_back(*nbr);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  for (int step = 0; step < nsteps; ++step) {
    for (int s = 0; s < stages; ++s) {
      const bool step_start = (s == 0);
      const bool step_end = (s == stages - 1);
      const auto coeffs = time::stage_coeffs(opt_.integrator, s);
      // E nodes: exchange+BC. Depend on previous-global-stage K of self and
      // neighbours (empty for the very first stage: graph roots).
      for (int b = 0; b < nb; ++b) {
        std::vector<NodeId> deps;
        if (!prev_k.empty()) {
          deps.push_back(prev_k[static_cast<std::size_t>(b)]);
          for (int nbr : neighbors_of(b)) {
            deps.push_back(prev_k[static_cast<std::size_t>(nbr)]);
          }
        }
        cur_e[static_cast<std::size_t>(b)] = graph_->add(
            [this, b, step_start, overlap] {
              if (step_start) {
                // Per-block save of the RK reference state (dataflow keeps
                // even this barrier-free).
                const auto src =
                    blocks_[static_cast<std::size_t>(b)].cons().flat();
                auto dst = u0_[static_cast<std::size_t>(b)].flat();
                std::copy(src.begin(), src.end(), dst.begin());
              }
              // Overlap: only post the async exchange here; the matching
              // K node finishes it face by face under the interior pass,
              // so boundary work keys off halo arrival, not a bulk wait.
              if (overlap) {
                overlap_begin_(b);
              } else {
                exchange_block(b);
              }
            },
            deps);
      }
      // K nodes: rhs+update+c2p. Depend on own E and neighbours' E
      // (anti-dependency: E(nbr) reads this block's prims).
      for (int b = 0; b < nb; ++b) {
        std::vector<NodeId> deps;
        deps.push_back(cur_e[static_cast<std::size_t>(b)]);
        for (int nbr : neighbors_of(b)) {
          deps.push_back(cur_e[static_cast<std::size_t>(nbr)]);
        }
        cur_k[static_cast<std::size_t>(b)] = graph_->add(
            [this, b, coeffs, step_end, overlap] {
              if (overlap) {
                compute_rhs_overlapped(b);
              } else {
                compute_rhs(b);
              }
              update_block(b, coeffs, current_dt_);
              if (step_end) {
                auto& blk = blocks_[static_cast<std::size_t>(b)];
                Physics::post_step(blk.cons(), blk.prim(), opt_.physics,
                                   current_dt_, grid_.min_dx());
              }
            },
            deps);
      }
      prev_k = cur_k;
    }
  }
  return *graph_;
}

template <typename Physics>
void FvSolver<Physics>::run_steps_dataflow(int nsteps, double dt,
                                           parallel::ThreadPool& pool) {
  RSHC_REQUIRE(opt_.pipeline != HostPipeline::kDevice,
               "host-parallel stepping does not drive the device pipeline; "
               "use step() or set_pipeline() first");
  RSHC_TRACE_SCOPE("solver.run_steps_dataflow", "solver", nsteps);
  RSHC_OBS_COUNT("solver.steps", nsteps);
#if RSHC_OBS_ENABLED
  const WallTimer hb_timer;
#endif
  current_dt_ = dt;
  // save_state happens inside the first-stage E nodes (per block).
  step_graph(nsteps).run(pool);
  // post_step is folded into the last-stage K nodes.
  for (const auto& bs : block_stats_) stats_ += bs;
  for (auto& bs : block_stats_) bs = {};
  time_ += dt * nsteps;
  steps_taken_ += nsteps;
#if RSHC_OBS_ENABLED
  // One heartbeat for the whole burst (there is no per-step boundary in
  // the fused graph); the rate still averages over every step taken.
  RSHC_OBS_HEARTBEAT(steps_taken_, time_, dt,
                     heartbeat_zone_rate(grid_,
                                         time::num_stages(opt_.integrator),
                                         nsteps, hb_timer.seconds()));
#endif
}

template <typename Physics>
void FvSolver<Physics>::run_steps_bulksync(int nsteps, double dt,
                                           parallel::ThreadPool& pool) {
  for (int i = 0; i < nsteps; ++i) step_parallel(dt, pool, /*dataflow=*/false);
}

template <typename Physics>
int FvSolver<Physics>::advance_to(double t_end, int max_steps) {
  int steps = 0;
  while (time_ < t_end && steps < max_steps) {
    double dt = compute_dt();
    if (time_ + dt > t_end) dt = t_end - time_;
    step(dt);
    ++steps;
  }
  return steps;
}

template <typename Physics>
typename Physics::Prim FvSolver<Physics>::prim_at(long long gi, long long gj,
                                                  long long gk) const {
  for (const auto& blk : blocks_) {
    const auto& e = blk.extents();
    if (gi >= e.lo[0] && gi < e.hi[0] && gj >= e.lo[1] && gj < e.hi[1] &&
        gk >= e.lo[2] && gk < e.hi[2]) {
      const int i = static_cast<int>(gi - e.lo[0]) + blk.ghost(0);
      const int j = static_cast<int>(gj - e.lo[1]) + blk.ghost(1);
      const int k = static_cast<int>(gk - e.lo[2]) + blk.ghost(2);
      return Physics::load_prim(blk.prim(), k, j, i);
    }
  }
  RSHC_REQUIRE(false, "global cell index outside the grid");
  return {};
}

template <typename Physics>
std::vector<double> FvSolver<Physics>::gather_prim_var(int v) const {
  std::vector<double> out(static_cast<std::size_t>(grid_.num_cells()));
  for (const auto& blk : blocks_) {
    const auto& e = blk.extents();
    const auto& w = blk.prim();
    // Interior rows are contiguous in both the block slab and the global
    // row-major output: copy whole rows.
    const auto nx = static_cast<std::size_t>(blk.interior(0));
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        const long long gj = e.lo[1] + (j - blk.ghost(1));
        const long long gk = e.lo[2] + (k - blk.ghost(2));
        const std::size_t idx = static_cast<std::size_t>(
            (gk * grid_.extent(1) + gj) * grid_.extent(0) + e.lo[0]);
        const double* row =
            w.var(v).data() + w.cell_index(k, j, blk.begin(0));
        std::copy(row, row + nx, out.begin() + static_cast<long long>(idx));
      }
    }
  }
  return out;
}

template <typename Physics>
typename Physics::Cons FvSolver<Physics>::total_cons() const {
  Cons total;
  double vol = 1.0;
  for (int a = 0; a < grid_.ndim(); ++a) vol *= grid_.dx(a);
  for (const auto& blk : blocks_) {
    const auto& u = blk.cons();
    for (int k = blk.begin(2); k < blk.end(2); ++k) {
      for (int j = blk.begin(1); j < blk.end(1); ++j) {
        for (int i = blk.begin(0); i < blk.end(0); ++i) {
          total += vol * Physics::load_cons(u, k, j, i);
        }
      }
    }
  }
  return total;
}

template class FvSolver<SrhdPhysics>;
template class FvSolver<SrmhdPhysics>;

}  // namespace rshc::solver
