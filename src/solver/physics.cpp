#include "rshc/solver/physics.hpp"

#include <algorithm>
#include <cmath>

#include "rshc/riemann/face_solvers.hpp"
#include "rshc/riemann/kernels.hpp"
#include "rshc/srhd/kernels.hpp"
#include "rshc/srmhd/kernels.hpp"

namespace rshc::solver {

void SrhdPhysics::limit_face_state(Prim& w, const Context& ctx) {
  // Single definition shared with the batched face kernels, so both host
  // pipelines limit with identical arithmetic.
  riemann::detail::limit_face(w, ctx.c2p.rho_floor, ctx.c2p.p_floor);
}

void SrhdPhysics::cons_to_prim_n(bool simd, std::size_t n,
                                 const double* const* u, double* const* w,
                                 const Context& ctx, C2PStats& stats) {
  const auto run = simd ? &srhd::kernels::simd::cons_to_prim_n
                        : &srhd::kernels::scalar::cons_to_prim_n;
  const auto r =
      run(n, u[srhd::kD], u[srhd::kSx], u[srhd::kSy], u[srhd::kSz],
          u[srhd::kTau], w[srhd::kRho], w[srhd::kVx], w[srhd::kVy],
          w[srhd::kVz], w[srhd::kP], ctx.eos.gamma(), ctx.c2p);
  stats.total_iterations += r.total_iterations;
  stats.floored_zones += r.failures;
}

void SrhdPhysics::max_speed_n(bool simd, std::size_t n, const double* const* w,
                              double* speed, const Context& ctx, int ndim) {
  const auto run = simd ? &srhd::kernels::simd::max_speed_n
                        : &srhd::kernels::scalar::max_speed_n;
  run(n, w[srhd::kRho], w[srhd::kVx], w[srhd::kVy], w[srhd::kVz], w[srhd::kP],
      speed, ctx.eos.gamma(), ndim);
}

void SrmhdPhysics::limit_face_state(Prim& w, const Context& ctx) {
  riemann::detail::limit_face(w, ctx.c2p.rho_floor, ctx.c2p.p_floor);
}

bool SrhdPhysics::interface_flux_n(bool simd, std::size_t n, int axis,
                                   const double* const* wl,
                                   const double* const* wr, double* const* f,
                                   const Context& ctx) {
  if (ctx.riemann == riemann::Solver::kExact) return false;
  const auto run = simd ? &riemann::kernels::simd::srhd_faces_n
                        : &riemann::kernels::scalar::srhd_faces_n;
  run(n, axis, ctx.riemann, wl, wr, f, ctx.eos, ctx.c2p.rho_floor,
      ctx.c2p.p_floor);
  return true;
}

bool SrmhdPhysics::interface_flux_n(bool simd, std::size_t n, int axis,
                                    const double* const* wl,
                                    const double* const* wr, double* const* f,
                                    const Context& ctx) {
  const auto run = simd ? &riemann::kernels::simd::srmhd_faces_n
                        : &riemann::kernels::scalar::srmhd_faces_n;
  run(n, axis, wl, wr, f, ctx.eos, ctx.glm, ctx.c2p.rho_floor,
      ctx.c2p.p_floor);
  return true;
}

void rk_combine_n(bool simd, std::size_t n, double a, const double* x,
                  double b, double* y, double c, const double* z) {
  const auto run = simd ? &srhd::kernels::simd::rk_combine_n
                        : &srhd::kernels::scalar::rk_combine_n;
  run(n, a, x, b, y, c, z);
}

void SrmhdPhysics::cons_to_prim_n(bool simd, std::size_t n,
                                  const double* const* u, double* const* w,
                                  const Context& ctx, C2PStats& stats) {
  const auto run = simd ? &srmhd::kernels::simd::cons_to_prim_n
                        : &srmhd::kernels::scalar::cons_to_prim_n;
  const auto r = run(n, u[srmhd::kD], u[srmhd::kSx], u[srmhd::kSy],
                     u[srmhd::kSz], u[srmhd::kTau], u[srmhd::kBx],
                     u[srmhd::kBy], u[srmhd::kBz], u[srmhd::kPsi],
                     w[srmhd::kRho], w[srmhd::kVx], w[srmhd::kVy],
                     w[srmhd::kVz], w[srmhd::kP], w[srmhd::kBx], w[srmhd::kBy],
                     w[srmhd::kBz], w[srmhd::kPsi], ctx.eos.gamma(), ctx.c2p);
  stats.total_iterations += r.total_iterations;
  stats.floored_zones += r.failures;
}

void SrmhdPhysics::max_speed_n(bool simd, std::size_t n, const double* const* w,
                               double* speed, const Context& ctx, int ndim) {
  const auto run = simd ? &srmhd::kernels::simd::max_speed_n
                        : &srmhd::kernels::scalar::max_speed_n;
  run(n, w[srmhd::kRho], w[srmhd::kVx], w[srmhd::kVy], w[srmhd::kVz],
      w[srmhd::kP], w[srmhd::kBx], w[srmhd::kBy], w[srmhd::kBz],
      w[srmhd::kPsi], speed, ctx.eos.gamma(), ndim);
}

void SrmhdPhysics::post_step(mesh::FieldArray& cons, mesh::FieldArray& prim,
                             const Context& ctx, double dt, double dx_min) {
  const double factor = srmhd::glm_damping_factor(ctx.glm, dt, dx_min);
  if (factor >= 1.0) return;
  for (double& psi : cons.var(srmhd::kPsi)) psi *= factor;
  for (double& psi : prim.var(srmhd::kPsi)) psi *= factor;
}

}  // namespace rshc::solver
