#include "rshc/solver/physics.hpp"

#include <algorithm>
#include <cmath>

namespace rshc::solver {
namespace {

/// Rescale a velocity vector to |v| <= vmax (< 1), preserving direction.
template <typename P>
void cap_velocity(P& w, double vmax) {
  const double v2 = w.v_sq();
  if (v2 >= vmax * vmax) {
    const double scale = vmax / std::sqrt(v2);
    w.vx *= scale;
    w.vy *= scale;
    w.vz *= scale;
  }
}

}  // namespace

void SrhdPhysics::limit_face_state(Prim& w, const Context& ctx) {
  w.rho = std::max(w.rho, ctx.c2p.rho_floor);
  w.p = std::max(w.p, ctx.c2p.p_floor);
  cap_velocity(w, 1.0 - 1e-10);
}

void SrmhdPhysics::limit_face_state(Prim& w, const Context& ctx) {
  w.rho = std::max(w.rho, ctx.c2p.rho_floor);
  w.p = std::max(w.p, ctx.c2p.p_floor);
  cap_velocity(w, 1.0 - 1e-10);
}

void SrmhdPhysics::post_step(mesh::FieldArray& cons, mesh::FieldArray& prim,
                             const Context& ctx, double dt, double dx_min) {
  const double factor = srmhd::glm_damping_factor(ctx.glm, dt, dx_min);
  if (factor >= 1.0) return;
  for (double& psi : cons.var(srmhd::kPsi)) psi *= factor;
  for (double& psi : prim.var(srmhd::kPsi)) psi *= factor;
}

}  // namespace rshc::solver
