#include "rshc/solver/device_exec.hpp"

#include <algorithm>

#include "rshc/mesh/field_array.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/solver/rhs_core.hpp"

namespace rshc::solver {

namespace {

/// Rim box: the ng interior layers adjacent to face (axis, side), with
/// transverse ranges restricted to the interior — exactly the region
/// halo.cpp's pack_face reads (corners are never read by the exchange).
mesh::BoxSpec rim_box(const mesh::Block& b, int axis, int side) {
  int lo[3];
  int n[3];
  for (int a = 0; a < 3; ++a) {
    lo[a] = b.begin(a);
    n[a] = b.interior(a);
  }
  lo[axis] = side == 0 ? b.begin(axis) : b.end(axis) - b.ghost(axis);
  n[axis] = b.ghost(axis);
  return mesh::BoxSpec{lo[2], lo[1], lo[0], n[2], n[1], n[0]};
}

/// Ghost box: the ng ghost layers outside face (axis, side). Transverse
/// ranges span the FULL ghosted extent — physical boundaries fill corner
/// ghosts (boundary.cpp writes the whole transverse range), and the device
/// prim array must mirror the host ghost state exactly for the bitwise
/// download contract to cover every cell.
mesh::BoxSpec ghost_box(const mesh::Block& b, int axis, int side) {
  int lo[3] = {0, 0, 0};
  int n[3] = {b.total(0), b.total(1), b.total(2)};
  lo[axis] = side == 0 ? 0 : b.end(axis);
  n[axis] = b.ghost(axis);
  return mesh::BoxSpec{lo[2], lo[1], lo[0], n[2], n[1], n[0]};
}

}  // namespace

/// Per-block device arena plus its halo staging plan. The staging buffer
/// holds one packed face box per active face, split into two buffers with
/// per-face offset tables: rims (interior transverse — exactly the cells
/// sibling exchange reads) come down, ghost shells (full transverse,
/// corners included) go back up. Steady-state traffic per step is exactly
/// nstages rim payloads D2H and nstages ghost-shell payloads H2D — the
/// halo-only contract the obs byte counters pin in test_device_pipeline.
template <typename Physics>
struct DeviceExec<Physics>::Arena {
  core::BlockShape shape;
  std::size_t cells = 0;
  device::Buffer cons, prim, u0, du;
  core::BatchScratch<Physics> scratch;
  std::vector<double> speed;  ///< CFL-kernel row scratch (device-side)
  std::vector<mesh::BoxSpec> rim;    ///< per active face, (axis, side) order
  std::vector<mesh::BoxSpec> ghost;  ///< matching ghost shells
  std::vector<std::size_t> rim_off, ghost_off;  ///< per-face, in doubles
  std::size_t rim_len = 0, ghost_len = 0;
  device::Buffer rim_stage, ghost_stage;
  std::vector<double> host_rim, host_ghost;

  Arena(device::Device& dev, const mesh::Block& blk, const mesh::Grid& grid)
      : shape(core::shape_of(blk, grid)), scratch(shape.max_extent()) {
    cells = shape.cells();
    cons = dev.alloc(static_cast<std::size_t>(Physics::kNumCons) * cells);
    prim = dev.alloc(static_cast<std::size_t>(Physics::kNumPrim) * cells);
    u0 = dev.alloc(static_cast<std::size_t>(Physics::kNumCons) * cells);
    du = dev.alloc(static_cast<std::size_t>(Physics::kNumCons) * cells);
    const auto nv = static_cast<std::size_t>(Physics::kNumPrim);
    for (int axis = 0; axis < grid.ndim(); ++axis) {
      for (int side = 0; side < 2; ++side) {
        rim.push_back(rim_box(blk, axis, side));
        ghost.push_back(ghost_box(blk, axis, side));
        rim_off.push_back(rim_len);
        ghost_off.push_back(ghost_len);
        rim_len += nv * rim.back().cells();
        ghost_len += nv * ghost.back().cells();
      }
    }
    rim_stage = dev.alloc(rim_len);
    ghost_stage = dev.alloc(ghost_len);
    host_rim.resize(rim_len);
    host_ghost.resize(ghost_len);
  }

  [[nodiscard]] std::size_t rim_face_len(std::size_t f) const {
    return static_cast<std::size_t>(Physics::kNumPrim) * rim[f].cells();
  }
  [[nodiscard]] std::size_t ghost_face_len(std::size_t f) const {
    return static_cast<std::size_t>(Physics::kNumPrim) * ghost[f].cells();
  }
};

template <typename Physics>
DeviceExec<Physics>::DeviceExec(const mesh::Grid& grid,
                                std::vector<mesh::Block>& blocks,
                                const Context& ctx,
                                recon::PencilKernel recon_fn,
                                device::AccelModel model)
    : grid_(&grid), blocks_(&blocks), ctx_(ctx), recon_fn_(recon_fn) {
  dev_ = device::make_device(device::Backend::kAccelSim, model);
  compute_ = device::kDefaultStream;
  transfer_ = dev_->create_stream();
  arenas_.reserve(blocks.size());
  for (const auto& blk : blocks) {
    arenas_.push_back(std::make_unique<Arena>(*dev_, blk, grid));
  }
  vmax_dev_ = dev_->alloc(blocks.size());
  vmax_host_.resize(blocks.size());
}

template <typename Physics>
DeviceExec<Physics>::~DeviceExec() {
  // Drain in-flight kernels before the arenas they reference go away.
  dev_->synchronize();
}

template <typename Physics>
void DeviceExec<Physics>::ensure_resident() {
  if (resident_) return;
  RSHC_TRACE_SCOPE("device.residency_upload", "device", -1);
  // Full-state upload, once. Enqueued on the compute stream so the first
  // stage's kernels are ordered after it without explicit fences.
  for (std::size_t b = 0; b < arenas_.size(); ++b) {
    const mesh::Block& blk = (*blocks_)[b];
    dev_->upload_async(blk.cons().flat(), arenas_[b]->cons, compute_);
    dev_->upload_async(blk.prim().flat(), arenas_[b]->prim, compute_);
  }
  resident_ = true;
}

template <typename Physics>
void DeviceExec<Physics>::save_state() {
  for (auto& ap : arenas_) {
    Arena* a = ap.get();
    dev_->launch(
        [a] {
          const auto src = a->cons.device_view();
          auto dst = a->u0.device_view();
          std::copy(src.begin(), src.end(), dst.begin());
        },
        a->cells, compute_);
  }
}

template <typename Physics>
void DeviceExec<Physics>::stage(double ca, double cb, double cdt,
                                const std::function<void(int)>& exchange,
                                std::vector<C2PStats>& stats) {
  const std::size_t nb = arenas_.size();

  // 1. Pack every block's interior rims on the compute stream (ordered
  //    after the previous stage's update), then download the packed
  //    staging buffer on the transfer stream, fenced on the pack.
  std::vector<device::Event> down(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    Arena* a = arenas_[b].get();
    const device::Event packed = dev_->launch(
        [a] {
          const double* prim = a->prim.device_view().data();
          double* stage = a->rim_stage.device_view().data();
          for (std::size_t f = 0; f < a->rim.size(); ++f) {
            mesh::pack_box(prim, Physics::kNumPrim, a->shape.total[2],
                           a->shape.total[1], a->shape.total[0], a->rim[f],
                           stage + a->rim_off[f]);
          }
        },
        a->rim_len, compute_);
    dev_->wait_event(transfer_, packed);
    down[b] = dev_->download_async(a->rim_stage, a->host_rim, transfer_);
  }

  // 2. Unpack every rim into the host mirror before any ghost logic runs:
  //    exchange_block reads *neighbour* rims (sibling halo copies), so all
  //    rims must land first.
  for (std::size_t b = 0; b < nb; ++b) {
    down[b].wait();
    Arena& a = *arenas_[b];
    auto& w = (*blocks_)[b].prim();
    for (std::size_t f = 0; f < a.rim.size(); ++f) {
      w.unpack_box(a.rim[f], std::span<const double>(a.host_rim)
                                 .subspan(a.rim_off[f], a.rim_face_len(f)));
    }
  }

  // 3. Per block: host-side ghost fill, ghost upload on the transfer
  //    stream, then the unpack/rhs/update kernel chain fenced on that
  //    upload — block b's kernels run while block b+1 is still
  //    exchanging and uploading.
  for (std::size_t b = 0; b < nb; ++b) {
    exchange(static_cast<int>(b));
    Arena* a = arenas_[b].get();
    const auto& w = (*blocks_)[b].prim();
    for (std::size_t f = 0; f < a->ghost.size(); ++f) {
      w.pack_box(a->ghost[f],
                 std::span<double>(a->host_ghost)
                     .subspan(a->ghost_off[f], a->ghost_face_len(f)));
    }
    const device::Event up =
        dev_->upload_async(a->host_ghost, a->ghost_stage, transfer_);
    dev_->wait_event(compute_, up);
    dev_->launch(
        [a] {
          const double* stage = a->ghost_stage.device_view().data();
          double* prim = a->prim.device_view().data();
          for (std::size_t f = 0; f < a->ghost.size(); ++f) {
            mesh::unpack_box(prim, Physics::kNumPrim, a->shape.total[2],
                             a->shape.total[1], a->shape.total[0], a->ghost[f],
                             stage + a->ghost_off[f]);
          }
        },
        a->ghost_len, compute_);
    dev_->launch(
        [this, a, b] {
          core::rhs_batched<Physics>(a->shape, ctx_, recon_fn_, /*simd=*/true,
                                     a->prim.device_view().data(),
                                     a->du.device_view().data(), a->scratch,
                                     static_cast<int>(b));
        },
        a->cells, compute_);
    dev_->launch(
        [this, a, b, ca, cb, cdt, ps = &stats[b]] {
          core::update_batched<Physics>(
              a->shape, ctx_, /*simd=*/true, ca, cb, cdt,
              a->u0.device_view().data(), a->du.device_view().data(),
              a->cons.device_view().data(), a->prim.device_view().data(), *ps,
              static_cast<int>(b));
        },
        a->cells, compute_);
  }
}

template <typename Physics>
void DeviceExec<Physics>::post_step(double dt, double dx_min) {
  for (auto& ap : arenas_) {
    Arena* a = ap.get();
    dev_->launch(
        [this, a, dt, dx_min] {
          core::post_step_slabs<Physics>(
              a->shape, ctx_, a->cons.device_view().data(),
              a->prim.device_view().data(), dt, dx_min);
        },
        a->cells, compute_);
  }
}

template <typename Physics>
double DeviceExec<Physics>::max_wave_speed() {
  device::Event last;
  for (std::size_t b = 0; b < arenas_.size(); ++b) {
    Arena* a = arenas_[b].get();
    last = dev_->launch(
        [this, a, b] {
          vmax_dev_.device_view()[b] = core::max_wave_speed_batched<Physics>(
              a->shape, ctx_, /*simd=*/true, a->prim.device_view().data(),
              a->speed);
        },
        a->cells, compute_);
  }
  // Only one scalar slot per block crosses the boundary — the CFL scan is
  // not a state round-trip.
  dev_->wait_event(transfer_, last);
  dev_->download_async(vmax_dev_, vmax_host_, transfer_).wait();
  double vmax = 1e-30;
  for (const double v : vmax_host_) vmax = std::max(vmax, v);
  return vmax;
}

template <typename Physics>
void DeviceExec<Physics>::download_all() {
  RSHC_TRACE_SCOPE("device.state_download", "device", -1);
  std::vector<device::Event> done;
  done.reserve(arenas_.size() * 2);
  for (std::size_t b = 0; b < arenas_.size(); ++b) {
    mesh::Block& blk = (*blocks_)[b];
    // Compute stream: ordered after any in-flight kernels for the block.
    done.push_back(
        dev_->download_async(arenas_[b]->cons, blk.cons().flat(), compute_));
    done.push_back(
        dev_->download_async(arenas_[b]->prim, blk.prim().flat(), compute_));
  }
  for (const auto& e : done) e.wait();
}

template <typename Physics>
void DeviceExec<Physics>::synchronize() {
  dev_->synchronize();
}

template class DeviceExec<SrhdPhysics>;
template class DeviceExec<SrmhdPhysics>;

}  // namespace rshc::solver
