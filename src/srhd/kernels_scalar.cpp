// Baseline (non-vectorized) kernel variants; compile flags set in CMake.
#define RSHC_KERNEL_NS scalar
#include "kernels_impl.inc"
