#include "rshc/srmhd/glm.hpp"

#include <cmath>

namespace rshc::srmhd {

double glm_damping_factor(const GlmParams& glm, double dt, double dx_min) {
  if (!glm.enabled || glm.alpha <= 0.0) return 1.0;
  return std::exp(-glm.alpha * glm.ch * dt / dx_min);
}

}  // namespace rshc::srmhd
