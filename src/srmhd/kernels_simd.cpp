// Vectorized kernel variants; compiled -O3 (-march=native when enabled).
#define RSHC_KERNEL_NS simd
#define RSHC_KERNEL_VECTORIZE 1
#include "kernels_impl.inc"
