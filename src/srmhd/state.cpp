#include "rshc/srmhd/state.hpp"

#include <algorithm>

namespace rshc::srmhd {

Cons prim_to_cons(const Prim& w, const eos::IdealGas& eos) {
  const double W = w.lorentz();
  const double W2 = W * W;
  const double h = eos.enthalpy(w.rho, w.p);
  const double z = w.rho * h * W2;  // rho h W^2
  const double B2 = w.b_sq_lab();
  const double vB = w.v_dot_b();
  const double v2 = w.v_sq();

  Cons u;
  u.d = w.rho * W;
  u.sx = (z + B2) * w.vx - vB * w.bx;
  u.sy = (z + B2) * w.vy - vB * w.by;
  u.sz = (z + B2) * w.vz - vB * w.bz;
  const double E = z - w.p + 0.5 * B2 + 0.5 * (v2 * B2 - vB * vB);
  u.tau = E - u.d;
  u.bx = w.bx;
  u.by = w.by;
  u.bz = w.bz;
  u.psi = w.psi;
  return u;
}

Cons flux(const Prim& w, const Cons& u, int axis, const eos::IdealGas& eos) {
  const double W = w.lorentz();
  const double W2 = W * W;
  const double vd = w.v(axis);
  const double Bd = w.b(axis);
  const double vB = w.v_dot_b();
  const double B2 = w.b_sq_lab();
  const double b2 = B2 / W2 + vB * vB;
  const double ptot = w.p + 0.5 * b2;
  (void)eos;

  Cons f;
  f.d = u.d * vd;
  // F(S_i) = S_i v_d - B_d (B_i / W^2 + (v.B) v_i) + p_tot delta_id
  f.sx = u.sx * vd - Bd * (w.bx / W2 + vB * w.vx);
  f.sy = u.sy * vd - Bd * (w.by / W2 + vB * w.vy);
  f.sz = u.sz * vd - Bd * (w.bz / W2 + vB * w.vz);
  switch (axis) {
    case 0: f.sx += ptot; break;
    case 1: f.sy += ptot; break;
    default: f.sz += ptot; break;
  }
  // Energy flux = S_d; tau flux = S_d - D v_d.
  f.tau = u.s(axis) - u.d * vd;
  // Induction: F_d(B_i) = v_d B_i - v_i B_d ; F_d(B_d) = 0 (GLM adds psi).
  f.bx = vd * w.bx - w.vx * Bd;
  f.by = vd * w.by - w.vy * Bd;
  f.bz = vd * w.bz - w.vz * Bd;
  switch (axis) {
    case 0: f.bx = 0.0; break;
    case 1: f.by = 0.0; break;
    default: f.bz = 0.0; break;
  }
  f.psi = 0.0;  // GLM coupling handled at the interface
  return f;
}

SignalSpeeds fast_speeds(const Prim& w, int axis, const eos::IdealGas& eos) {
  const double cs2 =
      std::clamp(eos.sound_speed_sq(w.rho, w.p), 0.0, 1.0 - 1e-12);
  const double b2 = w.b_sq_comoving();
  const double rho_h = w.rho * eos.enthalpy(w.rho, w.p);
  const double ca2 = b2 / (rho_h + b2);  // relativistic Alfven speed^2
  const double a2 = std::clamp(cs2 + ca2 - cs2 * ca2, 0.0, 1.0 - 1e-12);

  const double v2 = w.v_sq();
  const double vd = w.v(axis);
  const double denom = 1.0 - v2 * a2;
  const double disc = (1.0 - v2) * (1.0 - vd * vd - (v2 - vd * vd) * a2);
  const double root = disc > 0.0 ? std::sqrt(disc) : 0.0;
  const double a = std::sqrt(a2);
  SignalSpeeds s;
  s.lambda_minus = (vd * (1.0 - a2) - a * root) / denom;
  s.lambda_plus = (vd * (1.0 - a2) + a * root) / denom;
  return s;
}

double max_signal_speed(const Prim& w, const eos::IdealGas& eos, int ndim) {
  double vmax = 0.0;
  for (int axis = 0; axis < ndim; ++axis) {
    const SignalSpeeds s = fast_speeds(w, axis, eos);
    vmax = std::max({vmax, std::abs(s.lambda_minus), std::abs(s.lambda_plus)});
  }
  return vmax;
}

}  // namespace rshc::srmhd
