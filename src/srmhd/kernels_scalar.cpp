// Baseline kernel variants; compiled -O2 with vectorization disabled.
#define RSHC_KERNEL_NS scalar
#include "kernels_impl.inc"
