#include "rshc/srmhd/con2prim.hpp"

#include <algorithm>
#include <cmath>

#include "rshc/check/check.hpp"

namespace rshc::srmhd {
namespace {

struct ZState {
  double f = 0.0;
  double v2 = 0.0;
  double W = 1.0;
  double p = 0.0;
  bool physical = false;
};

ZState evaluate(const Cons& u, double z, const eos::IdealGas& eos) {
  ZState r;
  if (z <= 0.0) return r;
  const double B2 = u.b_sq();
  const double SB = u.s_dot_b();
  const double zB = z + B2;
  const double v2 =
      (u.s_sq() + SB * SB * (2.0 * z + B2) / (z * z)) / (zB * zB);
  if (v2 >= 1.0 || v2 < 0.0) return r;
  const double W = 1.0 / std::sqrt(1.0 - v2);
  const double rho = u.d / W;
  if (rho <= 0.0) return r;
  const double p =
      (eos.gamma() - 1.0) / eos.gamma() * (z / (W * W) - u.d / W);
  const double E = u.tau + u.d;
  r.f = z - p + 0.5 * B2 * (1.0 + v2) - 0.5 * SB * SB / (z * z) - E;
  r.v2 = v2;
  r.W = W;
  r.p = p;
  r.physical = true;
  return r;
}

Prim atmosphere(const Cons& u, const Con2PrimOptions& opt) {
  // Keep the magnetic field (it is directly evolved and divergence-
  // constrained); reset the fluid to atmosphere.
  Prim w;
  w.rho = opt.rho_floor;
  w.p = opt.p_floor;
  w.bx = u.bx;
  w.by = u.by;
  w.bz = u.bz;
  w.psi = u.psi;
  return w;
}

}  // namespace

Con2PrimResult cons_to_prim(const Cons& u, const eos::IdealGas& eos,
                            const Con2PrimOptions& opt) {
  Con2PrimResult out;

  if (!(u.d > opt.rho_floor) || !std::isfinite(u.d) ||
      !std::isfinite(u.tau) || !std::isfinite(u.s_sq()) ||
      !std::isfinite(u.b_sq())) {
    out.prim = atmosphere(u, opt);
    out.floored = true;
    RSHC_CHECK_PRIM("srmhd.con2prim", out.prim, -1, -1, -1, -1);
    return out;
  }

  // Bracket on z. Key facts: f is increasing in z near the root, the
  // physical root satisfies z* = rho h W^2 >= D, and states with z too
  // small are *unphysical* (v^2(z) >= 1). We therefore treat "unphysical"
  // as "below the root" for bracketing purposes, which makes plain
  // bisection robust even when the physical window starts far above D
  // (highly relativistic, strongly magnetized states).
  auto below_root = [](const ZState& s) { return !s.physical || s.f < 0.0; };

  double z_lo = std::max(u.d * (1.0 - 1e-12), 1e-30);
  // Expand the upper end until it is physical with f > 0.
  double z_hi =
      std::max(2.0 * z_lo, 2.0 * std::abs(u.tau + u.d) + u.b_sq() + 1.0);
  ZState s_hi = evaluate(u, z_hi, eos);
  int guard = 0;
  while (below_root(s_hi) && guard++ < 200) {
    z_hi *= 2.0;
    s_hi = evaluate(u, z_hi, eos);
  }
  if (below_root(s_hi)) {
    out.prim = atmosphere(u, opt);
    out.floored = true;
    RSHC_CHECK_PRIM("srmhd.con2prim", out.prim, -1, -1, -1, -1);
    return out;
  }

  double z = 0.5 * (z_lo + z_hi);
  const double E = u.tau + u.d;
  for (int it = 0; it < opt.max_iterations; ++it) {
    out.iterations = it + 1;
    const ZState r = evaluate(u, z, eos);
    if (!r.physical) {
      z_lo = std::max(z_lo, z);  // unphysical => z below the root
      z = 0.5 * (z_lo + z_hi);
      continue;
    }
    const double scale = std::max(std::abs(E), std::abs(z));
    if (std::abs(r.f) <= opt.tolerance * scale) {
      const double SB = u.s_dot_b();
      const double B2 = u.b_sq();
      Prim w;
      w.rho = std::max(u.d / r.W, opt.rho_floor);
      w.p = std::max(r.p, opt.p_floor);
      const double vB = SB / z;
      // Invert S = (z + B^2) v - (v.B) B  =>  v = (S + vB * B) / (z + B^2).
      w.vx = (u.sx + vB * u.bx) / (z + B2);
      w.vy = (u.sy + vB * u.by) / (z + B2);
      w.vz = (u.sz + vB * u.bz) / (z + B2);
      w.bx = u.bx;
      w.by = u.by;
      w.bz = u.bz;
      w.psi = u.psi;
      out.prim = w;
      out.converged = true;
      // Same contract as SRHD: nothing unphysical leaves c2p, floored or
      // not (see check.hpp; zone provenance is added by the solver site).
      RSHC_CHECK_PRIM("srmhd.con2prim", out.prim, -1, -1, -1, -1);
      return out;
    }
    if (r.f < 0.0) {
      z_lo = std::max(z_lo, z);
    } else {
      z_hi = std::min(z_hi, z);
    }
    // Newton with numerical derivative, bisection fallback.
    const double dz = 1e-8 * std::max(1.0, std::abs(z));
    const ZState rp = evaluate(u, z + dz, eos);
    double z_next = 0.0;
    if (rp.physical && std::abs(rp.f - r.f) > 0.0) {
      const double slope = (rp.f - r.f) / dz;
      z_next = z - r.f / slope;
    }
    if (!(z_next > z_lo && z_next < z_hi) || !std::isfinite(z_next)) {
      z_next = 0.5 * (z_lo + z_hi);
    }
    z = z_next;
  }

  out.prim = atmosphere(u, opt);
  out.floored = true;
  out.converged = false;
  RSHC_CHECK_PRIM("srmhd.con2prim", out.prim, -1, -1, -1, -1);
  return out;
}

}  // namespace rshc::srmhd
