#include "rshc/analysis/norms.hpp"

#include <cmath>

#include "rshc/common/error.hpp"

namespace rshc::analysis {

double l1_error(std::span<const double> a, std::span<const double> b) {
  RSHC_REQUIRE(a.size() == b.size() && !a.empty(), "norm size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double l2_error(std::span<const double> a, std::span<const double> b) {
  RSHC_REQUIRE(a.size() == b.size() && !a.empty(), "norm size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double linf_error(std::span<const double> a, std::span<const double> b) {
  RSHC_REQUIRE(a.size() == b.size() && !a.empty(), "norm size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double convergence_order(double err_coarse, double err_fine, double ratio) {
  RSHC_REQUIRE(err_coarse > 0.0 && err_fine > 0.0 && ratio > 1.0,
               "convergence order needs positive errors and ratio > 1");
  return std::log(err_coarse / err_fine) / std::log(ratio);
}

double linear_fit_slope(std::span<const double> x, std::span<const double> y) {
  RSHC_REQUIRE(x.size() == y.size() && x.size() >= 2,
               "linear fit needs >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  RSHC_REQUIRE(std::abs(denom) > 1e-300, "degenerate abscissae in fit");
  return (n * sxy - sx * sy) / denom;
}

double growth_rate(std::span<const double> t,
                   std::span<const double> amplitude) {
  RSHC_REQUIRE(t.size() == amplitude.size() && t.size() >= 2,
               "growth rate needs >= 2 samples");
  std::vector<double> log_amp(amplitude.size());
  for (std::size_t i = 0; i < amplitude.size(); ++i) {
    RSHC_REQUIRE(amplitude[i] > 0.0, "growth rate needs positive amplitudes");
    log_amp[i] = std::log(amplitude[i]);
  }
  return linear_fit_slope(t, log_amp);
}

}  // namespace rshc::analysis
