#include "rshc/analysis/exact_riemann.hpp"

#include <algorithm>
#include <cmath>

#include "rshc/common/error.hpp"

namespace rshc::analysis {
namespace {

double lorentz(double v) { return 1.0 / std::sqrt(1.0 - v * v); }

double enthalpy(double rho, double p, double gamma) {
  return 1.0 + gamma / (gamma - 1.0) * p / rho;
}

/// Characteristic speed lambda_s = (v + s c) / (1 + s v c), s = +-1.
double characteristic(double v, double c, int sign) {
  return (v + sign * c) / (1.0 + sign * v * c);
}

}  // namespace

double ExactRiemann::sound_speed(double rho, double p) const {
  return std::sqrt(gamma_ * p / (rho * enthalpy(rho, p, gamma_)));
}

double ExactRiemann::invariant_g(double cs) const {
  const double sg = std::sqrt(gamma_ - 1.0);
  return 2.0 / sg * std::atanh(cs / sg);
}

ExactRiemann::WaveResult ExactRiemann::shock(const State& a, double p,
                                             int sign) const {
  // Weak-shock limit: the Rankine-Hugoniot algebra degenerates (0/0) as
  // p -> p_a; below a relative jump of ~1e-10 return the acoustic wave.
  if (std::abs(p - a.p) <= 1e-10 * std::max(p, a.p)) {
    WaveResult r;
    r.v = a.v;
    r.rho = a.rho;
    const double c = sound_speed(a.rho, a.p);
    r.speed_head = characteristic(a.v, c, sign);
    r.speed_tail = r.speed_head;
    return r;
  }
  const double ha = enthalpy(a.rho, a.p, gamma_);
  const double Wa = lorentz(a.v);

  // Taub adiabat combined with the gamma-law EOS: quadratic in h_b.
  const double dp = a.p - p;  // negative for a shock (p > p_a)
  const double A = 1.0 + (gamma_ - 1.0) * dp / (gamma_ * p);
  const double B = -(gamma_ - 1.0) * dp / (gamma_ * p);
  const double C = ha * dp / a.rho - ha * ha;
  const double disc = std::max(0.0, B * B - 4.0 * A * C);
  const double hb = (-B + std::sqrt(disc)) / (2.0 * A);
  const double rho_b = gamma_ * p / ((gamma_ - 1.0) * (hb - 1.0));

  // Mass flux through the shock (positive magnitude).
  const double denom = ha / a.rho - hb / rho_b;
  const double j_abs = std::sqrt(std::max(1e-300, (p - a.p) / denom));
  const double j = sign * j_abs;

  // Shock velocity (Marti & Mueller 2003).
  const double da2 = a.rho * a.rho * Wa * Wa;
  const double vs =
      (da2 * a.v + sign * j_abs * std::sqrt(j * j + da2 * (1.0 - a.v * a.v))) /
      (da2 + j * j);
  const double Ws = lorentz(vs);

  // Post-shock flow velocity.
  const double num = ha * Wa * a.v + Ws * (p - a.p) / j;
  const double den =
      ha * Wa + (p - a.p) * (Ws * a.v / j + 1.0 / (a.rho * Wa));
  WaveResult r;
  r.v = num / den;
  r.rho = rho_b;
  r.speed_head = vs;
  r.speed_tail = vs;
  return r;
}

ExactRiemann::WaveResult ExactRiemann::rarefaction(const State& a, double p,
                                                   int sign) const {
  const double rho_b = a.rho * std::pow(p / a.p, 1.0 / gamma_);
  const double ca = sound_speed(a.rho, a.p);
  const double cb = sound_speed(rho_b, p);
  // atanh(v) - sign*(G(c_a) - G(c_b)) = atanh(v_a) rearranged for v_b:
  const double vb =
      std::tanh(std::atanh(a.v) - sign * (invariant_g(ca) - invariant_g(cb)));
  WaveResult r;
  r.v = vb;
  r.rho = rho_b;
  r.speed_head = characteristic(a.v, ca, sign);
  r.speed_tail = characteristic(vb, cb, sign);
  return r;
}

ExactRiemann::WaveResult ExactRiemann::wave(const State& a, double p,
                                            int sign) const {
  return p > a.p ? shock(a, p, sign) : rarefaction(a, p, sign);
}

ExactRiemann::ExactRiemann(State left, State right, double gamma)
    : left_(left), right_(right), gamma_(gamma) {
  RSHC_REQUIRE(gamma > 1.0 && gamma <= 2.0, "gamma out of range");
  RSHC_REQUIRE(left.rho > 0.0 && right.rho > 0.0 && left.p > 0.0 &&
                   right.p > 0.0,
               "exact Riemann solver needs positive rho and p");
  RSHC_REQUIRE(std::abs(left.v) < 1.0 && std::abs(right.v) < 1.0,
               "superluminal input state");

  // f(p) = v*_L(p) - v*_R(p) is strictly decreasing; bisect.
  auto f = [this](double p) {
    return wave(left_, p, -1).v - wave(right_, p, +1).v;
  };
  double lo = 1e-14 * std::min(left_.p, right_.p);
  double hi = 2.0 * std::max(left_.p, right_.p);
  int guard = 0;
  while (f(hi) > 0.0 && guard++ < 200) hi *= 2.0;
  RSHC_REQUIRE(guard < 200, "exact Riemann solver failed to bracket p*");
  // (f(lo) > 0 holds for any problem with a solution; vacuum-generating
  // inputs would violate it and are rejected implicitly by the bracket.)
  for (int it = 0; it < 200 && (hi - lo) > 1e-14 * hi; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  p_star_ = 0.5 * (lo + hi);
  lw_ = wave(left_, p_star_, -1);
  rw_ = wave(right_, p_star_, +1);
  v_star_ = 0.5 * (lw_.v + rw_.v);
  left_wave_ = p_star_ > left_.p ? Wave::kShock : Wave::kRarefaction;
  right_wave_ = p_star_ > right_.p ? Wave::kShock : Wave::kRarefaction;
}

ExactRiemann::State ExactRiemann::sample_rarefaction_fan(const State& a,
                                                         double xi,
                                                         int sign) const {
  // Inside the fan, the state on the characteristic with speed xi:
  // bisect p between p* and p_a on lambda(p) = xi.
  double lo = p_star_;
  double hi = a.p;
  for (int it = 0; it < 100 && (hi - lo) > 1e-13 * std::max(hi, 1e-300);
       ++it) {
    const double p = 0.5 * (lo + hi);
    const WaveResult w = rarefaction(a, p, sign);
    const double cb = sound_speed(w.rho, p);
    const double lam = characteristic(w.v, cb, sign);
    // For a left fan (sign=-1), lambda increases as p decreases.
    const bool go_lower = sign < 0 ? (lam < xi) : (lam > xi);
    if (go_lower) {
      hi = p;
    } else {
      lo = p;
    }
  }
  const double p = 0.5 * (lo + hi);
  const WaveResult w = rarefaction(a, p, sign);
  return State{w.rho, w.v, p};
}

ExactRiemann::State ExactRiemann::sample(double xi) const {
  // Left of the left wave?
  if (xi <= lw_.speed_head) return left_;
  // Right of the right wave?
  if (xi >= rw_.speed_head) return right_;

  // Inside the left rarefaction fan?
  if (left_wave_ == Wave::kRarefaction && xi < lw_.speed_tail) {
    return sample_rarefaction_fan(left_, xi, -1);
  }
  // Inside the right rarefaction fan?
  if (right_wave_ == Wave::kRarefaction && xi > rw_.speed_tail) {
    return sample_rarefaction_fan(right_, xi, +1);
  }
  // Star region, split by the contact.
  if (xi < v_star_) return State{lw_.rho, v_star_, p_star_};
  return State{rw_.rho, v_star_, p_star_};
}

}  // namespace rshc::analysis
