// Scalar/SIMD kernel-variant equivalence: both translation units must
// produce (bitwise-close) identical physics on identical batches — the
// invariant the heterogeneous backends rely on.

#include <gtest/gtest.h>

#include <random>

#include "rshc/srhd/kernels.hpp"

namespace {

using namespace rshc;
namespace k = srhd::kernels;

constexpr double kGamma = 5.0 / 3.0;

struct Batch {
  std::vector<double> rho, vx, vy, vz, p;
  std::vector<double> d, sx, sy, sz, tau;

  explicit Batch(std::size_t n, unsigned seed = 1234) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> urho(0.1, 10.0);
    std::uniform_real_distribution<double> uv(-0.55, 0.55);
    std::uniform_real_distribution<double> up(1e-3, 100.0);
    rho.resize(n); vx.resize(n); vy.resize(n); vz.resize(n); p.resize(n);
    d.resize(n); sx.resize(n); sy.resize(n); sz.resize(n); tau.resize(n);
    const eos::IdealGas eos(kGamma);
    for (std::size_t i = 0; i < n; ++i) {
      srhd::Prim w{urho(rng), uv(rng), uv(rng), uv(rng), up(rng)};
      rho[i] = w.rho; vx[i] = w.vx; vy[i] = w.vy; vz[i] = w.vz; p[i] = w.p;
      const srhd::Cons u = srhd::prim_to_cons(w, eos);
      d[i] = u.d; sx[i] = u.sx; sy[i] = u.sy; sz[i] = u.sz; tau[i] = u.tau;
    }
  }
};

class KernelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelEquivalence, PrimToConsMatchesAcrossVariants) {
  const std::size_t n = GetParam();
  Batch b(n);
  std::vector<double> d1(n), sx1(n), sy1(n), sz1(n), tau1(n);
  std::vector<double> d2(n), sx2(n), sy2(n), sz2(n), tau2(n);
  k::scalar::prim_to_cons_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                            b.vz.data(), b.p.data(), d1.data(), sx1.data(),
                            sy1.data(), sz1.data(), tau1.data(), kGamma);
  k::simd::prim_to_cons_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                          b.vz.data(), b.p.data(), d2.data(), sx2.data(),
                          sy2.data(), sz2.data(), tau2.data(), kGamma);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d1[i], d2[i], 1e-13 * std::abs(d1[i]));
    EXPECT_NEAR(tau1[i], tau2[i], 1e-12 * std::max(1.0, std::abs(tau1[i])));
    // Reference against the struct API as well.
    EXPECT_NEAR(d1[i], b.d[i], 1e-12 * b.d[i]);
  }
}

TEST_P(KernelEquivalence, ConsToPrimMatchesAcrossVariants) {
  const std::size_t n = GetParam();
  Batch b(n);
  std::vector<double> r1(n), vx1(n), vy1(n), vz1(n), p1(n);
  std::vector<double> r2(n), vx2(n), vy2(n), vz2(n), p2(n);
  const srhd::Con2PrimOptions opt;
  const auto s1 = k::scalar::cons_to_prim_n(
      n, b.d.data(), b.sx.data(), b.sy.data(), b.sz.data(), b.tau.data(),
      r1.data(), vx1.data(), vy1.data(), vz1.data(), p1.data(), kGamma, opt);
  const auto s2 = k::simd::cons_to_prim_n(
      n, b.d.data(), b.sx.data(), b.sy.data(), b.sz.data(), b.tau.data(),
      r2.data(), vx2.data(), vy2.data(), vz2.data(), p2.data(), kGamma, opt);
  EXPECT_EQ(s1.failures, 0);
  EXPECT_EQ(s2.failures, 0);
  EXPECT_EQ(s1.total_iterations, s2.total_iterations);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-12 * r1[i]);
    EXPECT_NEAR(p1[i], p2[i], 1e-12 * p1[i]);
    EXPECT_NEAR(vx1[i], vx2[i], 1e-12);
    // Roundtrip accuracy vs the original batch.
    EXPECT_NEAR(r1[i], b.rho[i], 1e-7 * b.rho[i]);
    EXPECT_NEAR(p1[i], b.p[i], 1e-7 * b.p[i]);
  }
}

TEST_P(KernelEquivalence, MaxSpeedMatchesStructApi) {
  const std::size_t n = GetParam();
  Batch b(n);
  std::vector<double> sp1(n), sp2(n);
  k::scalar::max_speed_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                         b.vz.data(), b.p.data(), sp1.data(), kGamma, 3);
  k::simd::max_speed_n(n, b.rho.data(), b.vx.data(), b.vy.data(),
                       b.vz.data(), b.p.data(), sp2.data(), kGamma, 3);
  const eos::IdealGas eos(kGamma);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sp1[i], sp2[i], 1e-13);
    const srhd::Prim w{b.rho[i], b.vx[i], b.vy[i], b.vz[i], b.p[i]};
    EXPECT_NEAR(sp1[i], srhd::max_signal_speed(w, eos, 3), 1e-12);
    EXPECT_LT(sp1[i], 1.0);
  }
}

TEST_P(KernelEquivalence, FluxMatchesStructApiAllAxes) {
  const std::size_t n = GetParam();
  Batch b(n);
  const eos::IdealGas eos(kGamma);
  for (int axis = 0; axis < 3; ++axis) {
    std::vector<double> fd(n), fsx(n), fsy(n), fsz(n), ftau(n);
    k::simd::flux_n(n, axis, b.rho.data(), b.vx.data(), b.vy.data(),
                    b.vz.data(), b.p.data(), b.d.data(), b.sx.data(),
                    b.sy.data(), b.sz.data(), b.tau.data(), fd.data(),
                    fsx.data(), fsy.data(), fsz.data(), ftau.data());
    for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 7)) {
      const srhd::Prim w{b.rho[i], b.vx[i], b.vy[i], b.vz[i], b.p[i]};
      const srhd::Cons u{b.d[i], b.sx[i], b.sy[i], b.sz[i], b.tau[i]};
      const srhd::Cons f = srhd::flux(w, u, axis);
      EXPECT_NEAR(fd[i], f.d, 1e-12 * std::max(1.0, std::abs(f.d)));
      EXPECT_NEAR(fsx[i], f.sx, 1e-12 * std::max(1.0, std::abs(f.sx)));
      EXPECT_NEAR(fsy[i], f.sy, 1e-12 * std::max(1.0, std::abs(f.sy)));
      EXPECT_NEAR(fsz[i], f.sz, 1e-12 * std::max(1.0, std::abs(f.sz)));
      EXPECT_NEAR(ftau[i], f.tau, 1e-12 * std::max(1.0, std::abs(f.tau)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, KernelEquivalence,
                         ::testing::Values(1u, 3u, 64u, 1000u));

TEST(Kernels, AxpbyBothVariants) {
  const std::size_t n = 100;
  std::vector<double> x(n), y1(n), y2(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y1[i] = y2[i] = 1.0;
  }
  k::scalar::axpby_n(n, 2.0, x.data(), 0.5, y1.data());
  k::simd::axpby_n(n, 2.0, x.data(), 0.5, y2.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y1[i], 2.0 * static_cast<double>(i) + 0.5);
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
  }
}

TEST(Kernels, ConsToPrimReportsFailures) {
  // One good zone, one evacuated zone: exactly one failure counted.
  std::vector<double> d{1.0, 1e-30}, sx{0.0, 0.0}, sy{0.0, 0.0},
      sz{0.0, 0.0}, tau{1.0, 1e-30};
  std::vector<double> rho(2), vx(2), vy(2), vz(2), p(2);
  const auto stats = k::scalar::cons_to_prim_n(
      2, d.data(), sx.data(), sy.data(), sz.data(), tau.data(), rho.data(),
      vx.data(), vy.data(), vz.data(), p.data(), kGamma, {});
  EXPECT_EQ(stats.failures, 1);
  EXPECT_GT(rho[0], 0.9);
  EXPECT_GT(rho[1], 0.0);  // atmosphere, still usable
}

TEST(Kernels, EmptyBatchIsSafe) {
  const auto stats = k::simd::cons_to_prim_n(
      0, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
      nullptr, nullptr, nullptr, kGamma, {});
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.total_iterations, 0);
  k::scalar::axpby_n(0, 1.0, nullptr, 1.0, nullptr);
}

}  // namespace
