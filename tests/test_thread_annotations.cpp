// Compile probe + behavior tests for the thread-safety annotation layer
// (common/thread_annotations.hpp, common/mutex.hpp). The point of this TU
// is to exercise every RSHC_* macro in a real declaration so a broken
// expansion — on either side of the __clang__ gate — fails the tier-1
// build instead of surfacing weeks later in the Clang static-analysis
// lane. The runtime assertions are secondary (the wrappers are thin), but
// they pin the contracts CV waits rely on: LockGuard really holds the
// mutex, native_lock() really is that mutex, try_lock really excludes.

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

#include "rshc/common/mutex.hpp"
#include "rshc/common/thread_annotations.hpp"

namespace {

using rshc::LockGuard;
using rshc::Mutex;

// --- compile probe: every macro in anger ----------------------------------

// A miniature guarded structure using the full annotation vocabulary. If a
// macro expands to garbage (e.g. a stray token on the no-op path), this
// class does not compile and the probe has done its job.
class RSHC_CAPABILITY("mutex") ProbeCapability {
 public:
  void lock() RSHC_ACQUIRE() {}
  void unlock() RSHC_RELEASE() {}
  bool try_lock() RSHC_TRY_ACQUIRE(true) { return true; }
  void assert_held() const RSHC_ASSERT_CAPABILITY() {}
};

class Probe {
 public:
  void public_entry() RSHC_EXCLUDES(mu_) {
    LockGuard lock(mu_);
    locked_helper();
  }

  [[nodiscard]] int read() const RSHC_EXCLUDES(mu_) {
    LockGuard lock(mu_);
    return value_;
  }

  [[nodiscard]] Mutex& mutex() RSHC_RETURN_CAPABILITY(mu_) { return mu_; }

  void unchecked_poke() RSHC_NO_THREAD_SAFETY_ANALYSIS { value_ = -1; }

 private:
  void locked_helper() RSHC_REQUIRES(mu_) { ++value_; }

  mutable Mutex mu_;
  int value_ RSHC_GUARDED_BY(mu_) = 0;
  int* remote_ RSHC_PT_GUARDED_BY(mu_) = nullptr;
};

TEST(ThreadAnnotations, MacrosCompileAndProbeWorks) {
  Probe p;
  p.public_entry();
  EXPECT_EQ(p.read(), 1);
  p.unchecked_poke();
  EXPECT_EQ(p.read(), -1);
  (void)p.mutex();

  ProbeCapability cap;
  cap.lock();
  cap.assert_held();
  cap.unlock();
  EXPECT_TRUE(cap.try_lock());

  // The activity flag must be exactly 0 or 1 and match the compiler.
#if defined(__clang__)
  static_assert(RSHC_THREAD_ANNOTATIONS_ACTIVE == 1,
                "annotations must be active under Clang");
#else
  static_assert(RSHC_THREAD_ANNOTATIONS_ACTIVE == 0,
                "annotations must be no-ops off Clang");
#endif
}

// --- behavior: the wrappers are real locks ---------------------------------

TEST(Mutex, TryLockExcludesWhileHeld) {
  Mutex m;
  {
    LockGuard lock(m);
    EXPECT_FALSE(m.try_lock());
  }
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(Mutex, NativeIsTheSameLock) {
  Mutex m;
  m.native().lock();
  EXPECT_FALSE(m.try_lock());
  m.native().unlock();
}

TEST(LockGuard, MutualExclusionUnderContention) {
  Mutex m;
  long long counter = 0;
  std::vector<std::jthread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lock(m);
        ++counter;
      }
    });
  }
  threads.clear();  // join
  LockGuard lock(m);
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(LockGuard, NativeLockDrivesConditionVariableWait) {
  Mutex m;
  std::condition_variable cv;
  bool ready = false;

  std::jthread producer([&] {
    {
      LockGuard lock(m);
      ready = true;
    }
    cv.notify_one();
  });

  LockGuard lock(m);
  cv.wait(lock.native_lock(), [&] {
    m.assert_held();  // predicate runs under the wait's lock
    return ready;
  });
  EXPECT_TRUE(ready);
}

}  // namespace
