// SRMHD physics: conservative map, fluxes, fast-speed bounds, GLM pieces,
// and the 1D-W con2prim roundtrip sweep (with and without magnetization).

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/srhd/state.hpp"
#include "rshc/srmhd/con2prim.hpp"
#include "rshc/srmhd/glm.hpp"
#include "rshc/srmhd/state.hpp"

namespace {

using namespace rshc;
using srmhd::Cons;
using srmhd::Prim;

const eos::IdealGas kEos(5.0 / 3.0);

Prim make_prim(double rho, double vx, double vy, double vz, double p,
               double bx, double by, double bz) {
  Prim w;
  w.rho = rho; w.vx = vx; w.vy = vy; w.vz = vz; w.p = p;
  w.bx = bx; w.by = by; w.bz = bz;
  return w;
}

TEST(SrmhdState, UnmagnetizedConsMatchesSrhd) {
  const Prim w = make_prim(1.3, 0.4, -0.2, 0.1, 0.9, 0.0, 0.0, 0.0);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const srhd::Prim wh{1.3, 0.4, -0.2, 0.1, 0.9};
  const srhd::Cons uh = srhd::prim_to_cons(wh, kEos);
  EXPECT_NEAR(u.d, uh.d, 1e-14);
  EXPECT_NEAR(u.sx, uh.sx, 1e-13);
  EXPECT_NEAR(u.sy, uh.sy, 1e-13);
  EXPECT_NEAR(u.tau, uh.tau, 1e-13);
}

TEST(SrmhdState, UnmagnetizedFluxMatchesSrhd) {
  const Prim w = make_prim(1.3, 0.4, -0.2, 0.1, 0.9, 0.0, 0.0, 0.0);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const srhd::Prim wh{1.3, 0.4, -0.2, 0.1, 0.9};
  const srhd::Cons uh = srhd::prim_to_cons(wh, kEos);
  for (int axis = 0; axis < 3; ++axis) {
    const Cons f = srmhd::flux(w, u, axis, kEos);
    const srhd::Cons fh = srhd::flux(wh, uh, axis);
    EXPECT_NEAR(f.d, fh.d, 1e-13);
    EXPECT_NEAR(f.sx, fh.sx, 1e-13);
    EXPECT_NEAR(f.sy, fh.sy, 1e-13);
    EXPECT_NEAR(f.tau, fh.tau, 1e-13);
  }
}

TEST(SrmhdState, StaticMagnetizedEnergyIncludesFieldEnergy) {
  const Prim w = make_prim(1.0, 0.0, 0.0, 0.0, 1.0, 0.3, 0.4, 0.0);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const double eps = kEos.specific_internal_energy(1.0, 1.0);
  // tau = rho*eps + B^2/2 at rest.
  EXPECT_NEAR(u.tau, eps + 0.5 * 0.25, 1e-13);
  EXPECT_DOUBLE_EQ(u.bx, 0.3);
  EXPECT_DOUBLE_EQ(u.by, 0.4);
}

TEST(SrmhdState, MagneticTensionAppearsInMomentumFlux) {
  // Static gas, field along x: F_x(S_x) = p + B^2/2 - Bx^2 (tension),
  // F_x(S_y) = -Bx By.
  const Prim w = make_prim(1.0, 0.0, 0.0, 0.0, 2.0, 0.5, 0.3, 0.0);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const Cons f = srmhd::flux(w, u, 0, kEos);
  const double b2 = 0.25 + 0.09;
  EXPECT_NEAR(f.sx, 2.0 + 0.5 * b2 - 0.25, 1e-13);
  EXPECT_NEAR(f.sy, -0.5 * 0.3, 1e-13);
}

TEST(SrmhdState, InductionFluxIsAntisymmetric) {
  const Prim w = make_prim(1.0, 0.3, 0.2, 0.0, 1.0, 0.1, 0.4, 0.2);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const Cons fx = srmhd::flux(w, u, 0, kEos);
  EXPECT_DOUBLE_EQ(fx.bx, 0.0);  // F_x(B_x) = 0 pre-GLM
  EXPECT_NEAR(fx.by, 0.3 * 0.4 - 0.2 * 0.1, 1e-14);  // vx By - vy Bx
  EXPECT_NEAR(fx.bz, 0.3 * 0.2 - 0.0 * 0.1, 1e-14);
}

TEST(SrmhdState, FastSpeedReducesToSoundSpeedUnmagnetized) {
  const Prim w = make_prim(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
  const auto s = srmhd::fast_speeds(w, 0, kEos);
  EXPECT_NEAR(s.lambda_plus, kEos.sound_speed(1.0, 1.0), 1e-12);
}

TEST(SrmhdState, FastSpeedGrowsWithFieldButStaysCausal) {
  const Prim weak = make_prim(1.0, 0.0, 0.0, 0.0, 0.1, 0.1, 0.0, 0.0);
  const Prim strong = make_prim(1.0, 0.0, 0.0, 0.0, 0.1, 10.0, 0.0, 0.0);
  const auto sw = srmhd::fast_speeds(weak, 1, kEos);
  const auto ss = srmhd::fast_speeds(strong, 1, kEos);
  EXPECT_GT(ss.lambda_plus, sw.lambda_plus);
  EXPECT_LT(ss.lambda_plus, 1.0);
  EXPECT_GT(srmhd::max_signal_speed(strong, kEos, 3), 0.9);
}

// --- con2prim sweep -------------------------------------------------------

struct MhdC2PCase {
  double v;      // |v|, split over axes
  double p;
  double b;      // |B|, oblique
};

class MhdRoundTrip : public ::testing::TestWithParam<MhdC2PCase> {};

TEST_P(MhdRoundTrip, RecoversPrimitives) {
  const auto c = GetParam();
  const Prim w = make_prim(1.0, 0.6 * c.v, 0.64 * c.v, 0.48 * c.v, c.p,
                           0.7 * c.b, 0.1 * c.b, -0.7 * c.b);
  const Cons u = srmhd::prim_to_cons(w, kEos);
  const auto r = srmhd::cons_to_prim(u, kEos);
  ASSERT_TRUE(r.converged) << "v=" << c.v << " p=" << c.p << " B=" << c.b;
  EXPECT_NEAR(r.prim.rho, w.rho, 1e-7 * w.rho);
  EXPECT_NEAR(r.prim.p, w.p, 2e-6 * w.p);
  EXPECT_NEAR(r.prim.vx, w.vx, 1e-7);
  EXPECT_NEAR(r.prim.vy, w.vy, 1e-7);
  EXPECT_NEAR(r.prim.vz, w.vz, 1e-7);
  EXPECT_DOUBLE_EQ(r.prim.bx, w.bx);  // B passes through exactly
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MhdRoundTrip,
    ::testing::Values(MhdC2PCase{0.0, 1.0, 0.0}, MhdC2PCase{0.0, 1.0, 1.0},
                      MhdC2PCase{0.5, 0.1, 0.5}, MhdC2PCase{0.9, 1.0, 0.1},
                      MhdC2PCase{0.5, 1e-4, 2.0}, MhdC2PCase{0.3, 100.0, 5.0},
                      MhdC2PCase{0.95, 10.0, 1.0},
                      MhdC2PCase{0.1, 1e-6, 1e-3}));

TEST(MhdCon2Prim, MagneticallyDominatedStillConverges) {
  // Magnetization sigma = B^2/rho ~ 100.
  const Prim w = make_prim(1.0, 0.1, 0.0, 0.0, 0.01, 10.0, 0.0, 0.0);
  const auto r = srmhd::cons_to_prim(srmhd::prim_to_cons(w, kEos), kEos);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.prim.rho, 1.0, 1e-6);
}

TEST(MhdCon2Prim, EvacuatedZoneKeepsField) {
  Cons u;
  u.d = 1e-30;
  u.bx = 0.7;
  u.psi = 0.2;
  const auto r = srmhd::cons_to_prim(u, kEos);
  EXPECT_TRUE(r.floored);
  EXPECT_DOUBLE_EQ(r.prim.bx, 0.7);  // field is divergence-constrained
  EXPECT_DOUBLE_EQ(r.prim.psi, 0.2);
  EXPECT_GT(r.prim.rho, 0.0);
}

TEST(MhdCon2Prim, NonFiniteInputFloorsQuietly) {
  Cons u;
  u.d = 1.0;
  u.tau = std::nan("");
  srmhd::Con2PrimResult r;
  EXPECT_NO_THROW(r = srmhd::cons_to_prim(u, kEos));
  EXPECT_TRUE(r.floored);
}

// --- GLM -------------------------------------------------------------------

TEST(Glm, ContinuousStateGivesContinuousFlux) {
  const auto f = srmhd::glm_interface_flux(0.4, 0.1, 0.4, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(f.flux_bn, 0.1);   // psi* = psi
  EXPECT_DOUBLE_EQ(f.flux_psi, 0.4);  // ch^2 Bn* = Bn
}

TEST(Glm, JumpIsUpwinded) {
  // Pure Bn jump: psi* = -ch dBn / 2, Bn* = mean.
  const auto f = srmhd::glm_interface_flux(0.0, 0.0, 1.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(f.flux_bn, -0.5);  // = psi*
  EXPECT_DOUBLE_EQ(f.flux_psi, 0.5);  // = ch^2 Bn*
  // Pure psi jump: Bn* picks up -dpsi / (2 ch).
  const auto g = srmhd::glm_interface_flux(0.2, 0.0, 0.2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(g.flux_bn, 0.5);          // psi* = mean = 0.5
  EXPECT_DOUBLE_EQ(g.flux_psi, 0.2 - 0.5);   // Bn* = 0.2 - 0.5
}

TEST(Glm, DampingFactorBehaviour) {
  srmhd::GlmParams glm;
  glm.alpha = 0.5;
  const double f = srmhd::glm_damping_factor(glm, 0.01, 0.01);
  EXPECT_NEAR(f, std::exp(-0.5), 1e-12);
  glm.enabled = false;
  EXPECT_DOUBLE_EQ(srmhd::glm_damping_factor(glm, 0.01, 0.01), 1.0);
  glm.enabled = true;
  glm.alpha = 0.0;
  EXPECT_DOUBLE_EQ(srmhd::glm_damping_factor(glm, 0.01, 0.01), 1.0);
}

TEST(SrmhdCons, ArithmeticCoversAllNineComponents) {
  Cons a;
  a.d = 1; a.sx = 2; a.sy = 3; a.sz = 4; a.tau = 5;
  a.bx = 6; a.by = 7; a.bz = 8; a.psi = 9;
  const Cons two = 2.0 * a;
  EXPECT_DOUBLE_EQ(two.psi, 18);
  EXPECT_DOUBLE_EQ(two.bz, 16);
  const Cons diff = two - a;
  EXPECT_DOUBLE_EQ(diff.by, 7);
  EXPECT_DOUBLE_EQ(a.s_dot_b(), 2 * 6 + 3 * 7 + 4 * 8);
}

}  // namespace
