// Interpolating-wavelet multiresolution: perfect reconstruction,
// polynomial annihilation, thresholding error control, and shock
// localization — the properties a wavelet-adaptive HRSC method rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/wavelet/interp_wavelet.hpp"

namespace {

using namespace rshc;
namespace w = rshc::wavelet;

std::vector<double> sample(int levels, const std::function<double(double)>& f) {
  const std::size_t n = w::grid_size(levels);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = f(static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return v;
}

TEST(Wavelet, GridSizeAndLevels) {
  EXPECT_EQ(w::grid_size(2), 5u);
  EXPECT_EQ(w::grid_size(10), 1025u);
  EXPECT_EQ(w::levels_for_size(5), 2);
  EXPECT_EQ(w::levels_for_size(1025), 10);
  EXPECT_THROW((void)w::levels_for_size(6), Error);
  EXPECT_THROW((void)w::levels_for_size(4), Error);
  EXPECT_THROW((void)w::grid_size(0), Error);
}

class LevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(LevelSweep, ForwardInverseIsIdentity) {
  const int levels = GetParam();
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(w::grid_size(levels));
  for (auto& x : v) x = u(rng);
  const auto original = v;
  w::forward(v, levels);
  w::inverse(v, levels);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-12) << "point " << i;
  }
}

TEST_P(LevelSweep, CubicsHaveZeroInteriorDetails) {
  // The DD4 predictor reproduces cubics exactly: every detail coefficient
  // computed with the full 4-point stencil vanishes. (The coarsest two
  // levels use lower-order stencils and are excluded.)
  const int levels = GetParam();
  if (levels < 4) GTEST_SKIP();
  auto v = sample(levels, [](double x) {
    return 1.0 + 2.0 * x - 3.0 * x * x + 0.5 * x * x * x;
  });
  w::forward(v, levels);
  // Details of the finest two levels (strides 1 and 2) are all interior-
  // cubic except near the ends; check interior coefficients.
  const std::size_t n = v.size();
  for (std::size_t k = 5; k + 5 < n; k += 2) {
    EXPECT_NEAR(v[k], 0.0, 1e-12) << "fine detail " << k;
  }
}

TEST_P(LevelSweep, SmoothFieldsCompressHard) {
  // Detail coefficients of a smooth field scale like h^4 * d4f/dx4, so
  // the fraction below a fixed threshold grows with resolution: only the
  // well-resolved grids are expected to compress.
  const int levels = GetParam();
  if (levels < 8) GTEST_SKIP();
  auto v = sample(levels, [](double x) {
    return std::sin(2.0 * std::numbers::pi * x);
  });
  std::vector<double> out(v.size());
  const auto c = w::compress_roundtrip(v, 1e-5, out);
  EXPECT_GT(c.compression_ratio(), 4.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(out[i], v[i], 1e-3) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep, ::testing::Values(2, 3, 4, 6, 8));

TEST(Wavelet, ThresholdErrorIsControlled) {
  // Reconstruction error after thresholding at eps stays within a small
  // multiple of eps (interpolating wavelets: error ~ C * eps with C O(1)
  // per level).
  const int levels = 8;
  auto v = sample(levels, [](double x) {
    return std::sin(6.0 * x) + 0.3 * std::cos(20.0 * x * x);
  });
  for (const double eps : {1e-3, 1e-5, 1e-7}) {
    std::vector<double> out(v.size());
    w::compress_roundtrip(v, eps, out);
    double worst = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      worst = std::max(worst, std::abs(out[i] - v[i]));
    }
    EXPECT_LT(worst, 20.0 * eps) << "eps=" << eps;
  }
}

TEST(Wavelet, CompressionRatioGrowsWithThreshold) {
  const int levels = 9;
  auto v = sample(levels, [](double x) {
    return std::tanh((x - 0.5) / 0.02);  // sharp front
  });
  std::vector<double> out(v.size());
  const auto loose = w::compress_roundtrip(v, 1e-3, out);
  const auto tight = w::compress_roundtrip(v, 1e-9, out);
  EXPECT_GT(loose.compression_ratio(), tight.compression_ratio());
  EXPECT_GT(loose.compression_ratio(), 10.0);
}

TEST(Wavelet, ActivePointsConcentrateAtTheShock) {
  // Step function: surviving coefficients must cluster around the jump —
  // the refinement criterion a wavelet-adaptive solver uses.
  const int levels = 9;
  auto v = sample(levels, [](double x) { return x < 0.5 ? 1.0 : 0.0; });
  const int lv = w::levels_for_size(v.size());
  w::forward(v, lv);
  std::vector<std::uint8_t> mask(v.size());
  w::active_mask(v, lv, 1e-8, mask);
  std::size_t active_near = 0;
  std::size_t active_far = 0;
  const double n1 = static_cast<double>(v.size() - 1);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (!mask[i]) continue;
    const double x = static_cast<double>(i) / n1;
    if (std::abs(x - 0.5) < 0.1) {
      ++active_near;
    } else if (i != 0 && i + 1 != mask.size()) {
      ++active_far;
    }
  }
  EXPECT_GT(active_near, 0u);
  EXPECT_LT(active_far, active_near);
}

TEST(Wavelet, TwoDimensionalRoundTrip) {
  const int levels = 5;
  const std::size_t n = w::grid_size(levels);
  std::vector<double> v(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / static_cast<double>(n - 1);
      const double y = static_cast<double>(j) / static_cast<double>(n - 1);
      v[j * n + i] = std::sin(3.0 * x) * std::cos(2.0 * y) + x * y;
    }
  }
  const auto original = v;
  w::forward_2d(v, n, n, levels);
  // A smooth 2D field must compress in the tensor basis too.
  std::size_t big = 0;
  for (const double c : v) big += std::abs(c) > 1e-6 ? 1 : 0;
  EXPECT_LT(big, v.size() / 2);
  w::inverse_2d(v, n, n, levels);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-11) << i;
  }
}

TEST(Wavelet, RejectsBadShapes) {
  std::vector<double> v(9);
  EXPECT_THROW(w::forward(v, 2), Error);          // 9 points needs levels=3
  std::vector<double> tiny(3);
  EXPECT_THROW(w::forward(tiny, 1), Error);        // below cubic minimum
  std::vector<double> out(8);
  EXPECT_THROW((void)w::compress_roundtrip(v, 1e-3, out), Error);
}

}  // namespace
