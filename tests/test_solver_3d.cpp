// 3D coverage: the solver machinery is dimension-general; these tests
// exercise the z-axis code paths (pencils, halos, boundaries) that the 1D
// and 2D suites never touch.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "rshc/analysis/norms.hpp"
#include "rshc/common/math.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;
using solver::SrhdSolver;

mesh::Grid cube(long long n) {
  return mesh::Grid(3, {n, n, n}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
}

SrhdSolver::Options opts3d() {
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

TEST(Solver3d, StaticGasStaysStatic) {
  SrhdSolver s(cube(8), opts3d());
  s.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  for (int i = 0; i < 5; ++i) s.step(0.01);
  for (const double r : s.gather_prim_var(srhd::kRho)) {
    EXPECT_NEAR(r, 1.0, 1e-12);
  }
}

TEST(Solver3d, DiagonalAdvectionConserves) {
  SrhdSolver s(cube(10), opts3d());
  s.initialize([](double x, double y, double z) {
    srhd::Prim w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * (x + y + z));
    w.vx = 0.2;
    w.vy = 0.15;
    w.vz = -0.1;
    w.p = 1.0;
    return w;
  });
  const auto before = s.total_cons();
  for (int i = 0; i < 10; ++i) s.step(s.compute_dt());
  const auto after = s.total_cons();
  EXPECT_NEAR(after.d, before.d, 1e-12 * before.d);
  EXPECT_NEAR(after.sz, before.sz, 1e-11 * std::abs(before.sz));
  EXPECT_NEAR(after.tau, before.tau, 1e-10 * std::abs(before.tau));
}

TEST(Solver3d, ZAxisAdvectionMatchesXAxis) {
  // The same 1D wave advected along x and along z must give identical
  // profiles — the axis-permutation symmetry of the sweep machinery.
  auto run_axis = [&](int axis) {
    auto s = std::make_unique<SrhdSolver>(cube(12), opts3d());
    s->initialize([axis](double x, double y, double z) {
      const double c = axis == 0 ? x : (axis == 1 ? y : z);
      srhd::Prim w;
      w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * c);
      w.p = 1.0;
      if (axis == 0) w.vx = 0.4;
      if (axis == 1) w.vy = 0.4;
      if (axis == 2) w.vz = 0.4;
      return w;
    });
    for (int i = 0; i < 8; ++i) s->step(0.01);
    return s;
  };
  auto sx = run_axis(0);
  auto sz = run_axis(2);
  // Compare rho along the respective pencils through the origin cell.
  for (long long i = 0; i < 12; ++i) {
    EXPECT_NEAR(sx->prim_at(i, 0, 0).rho, sz->prim_at(0, 0, i).rho, 1e-13)
        << "cell " << i;
  }
}

TEST(Solver3d, MultiBlock3dMatchesSingleBlock) {
  auto run = [&](std::array<int, 3> blocks) {
    auto opt = opts3d();
    opt.blocks = blocks;
    SrhdSolver s(cube(12), opt);
    s.initialize([](double x, double y, double z) {
      srhd::Prim w;
      w.rho = 1.0 + 0.2 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y) *
                        std::cos(2 * M_PI * z);
      w.vx = 0.2;
      w.vz = 0.1;
      w.p = 1.0;
      return w;
    });
    for (int i = 0; i < 5; ++i) s.step(0.008);
    return s.gather_prim_var(srhd::kRho);
  };
  const auto one = run({1, 1, 1});
  const auto eight = run({2, 2, 2});
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_NEAR(one[i], eight[i], 1e-13) << "cell " << i;
  }
}

TEST(Solver3d, DataflowMatchesSerial3d) {
  auto run = [&](bool dataflow) {
    auto opt = opts3d();
    opt.blocks = {2, 2, 2};
    SrhdSolver s(cube(12), opt);
    s.initialize([](double x, double y, double z) {
      srhd::Prim w;
      w.rho = 1.0 + 0.2 * std::cos(2 * M_PI * (x - y + z));
      w.vy = 0.25;
      w.p = 1.0;
      return w;
    });
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      if (dataflow) {
        s.step_parallel(0.008, pool, /*dataflow=*/true);
      } else {
        s.step(0.008);
      }
    }
    return s.gather_prim_var(srhd::kRho);
  };
  const auto serial = run(false);
  const auto flow = run(true);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], flow[i]) << "cell " << i;
  }
}

TEST(Solver3d, ReflectingBoxConservesMass) {
  auto opt = opts3d();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kReflect);
  SrhdSolver s(cube(10), opt);
  s.initialize([](double x, double y, double z) {
    srhd::Prim w;
    w.rho = 1.0;
    w.vx = 0.2 * std::sin(M_PI * x);
    w.vy = 0.1 * std::sin(M_PI * y);
    w.vz = -0.15 * std::sin(M_PI * z);
    w.p = 1.0;
    return w;
  });
  const double mass0 = s.total_cons().d;
  for (int i = 0; i < 15; ++i) s.step(s.compute_dt());
  EXPECT_NEAR(s.total_cons().d, mass0, 1e-11 * mass0);
}

}  // namespace
