// Concurrency stress: drives the thread pool, task graph, dataflow-mode
// solver, and the message-passing halo exchange with thread counts well
// above the host's core count. The assertions are deliberately simple
// (correct sums, bitwise equality with the serial path) — the real payload
// is the *interleavings*: this binary is the TSan lane's primary exercise
// of the machinery named in the lane's charter (thread_pool, task_graph,
// dataflow stepping, halo exchange).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "rshc/comm/communicator.hpp"
#include "rshc/parallel/task_graph.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

constexpr unsigned kThreads = 16;  // deliberately oversubscribed

TEST(ParallelStress, OversubscribedParallelForCoversEveryIndex) {
  parallel::ThreadPool pool(kThreads);
  constexpr long long kN = 20000;
  std::vector<int> hits(kN, 0);
  for (int rep = 0; rep < 4; ++rep) {
    std::fill(hits.begin(), hits.end(), 0);
    pool.parallel_for(0, kN, [&](long long i) { hits[i]++; }, 7);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0LL), kN);
  }
}

TEST(ParallelStress, NestedParallelForFromPoolWorkers) {
  // parallel_for is documented safe to call from inside a worker (the
  // caller self-schedules); nest it to stress that path under contention.
  parallel::ThreadPool pool(kThreads);
  std::atomic<long long> total{0};  // seq_cst test counter
  pool.parallel_for(0, 32, [&](long long) {
    pool.parallel_for(0, 100, [&](long long) { total++; }, 9);
  });
  EXPECT_EQ(total.load(), 32 * 100);
}

TEST(ParallelStress, WideLayeredGraphFiresEveryNodeOncePerRun) {
  parallel::ThreadPool pool(kThreads);
  constexpr int kLayers = 8;
  constexpr int kWidth = 16;
  parallel::TaskGraph graph;
  std::vector<std::atomic<int>> fired(kLayers * kWidth);
  std::vector<parallel::TaskGraph::NodeId> prev;
  std::vector<parallel::TaskGraph::NodeId> cur;
  for (int l = 0; l < kLayers; ++l) {
    cur.clear();
    for (int w = 0; w < kWidth; ++w) {
      auto* cell = &fired[static_cast<std::size_t>(l * kWidth + w)];
      // Each node depends on the whole previous layer: a dense, wide DAG
      // with maximal release contention on every pending counter.
      cur.push_back(graph.add([cell] { cell->fetch_add(1); },
                              std::span<const parallel::TaskGraph::NodeId>(
                                  prev.data(), prev.size())));
    }
    prev = cur;
  }
  for (int rep = 0; rep < 10; ++rep) {
    for (auto& f : fired) f.store(0);
    graph.run(pool);
    for (auto& f : fired) EXPECT_EQ(f.load(), 1);
  }
}

TEST(ParallelStress, DataflowSolverMatchesSerialUnderOversubscription) {
  const mesh::Grid g = mesh::Grid::make_2d(32, 32, 0.0, 1.0, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  const auto ic = [](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.3 * std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y);
    w.vx = 0.2;
    w.vy = -0.1;
    w.p = 1.0;
    return w;
  };
  constexpr double kDt = 0.004;
  constexpr int kSteps = 4;

  solver::SrhdSolver ref(g, opt);
  ref.initialize(ic);
  for (int i = 0; i < kSteps; ++i) ref.step(kDt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  // 4x4 blocks on 16 threads: every block's (exchange, compute) chain can
  // be live at once, with no barrier between steps.
  auto opt_mb = opt;
  opt_mb.blocks = {4, 4, 1};
  solver::SrhdSolver s(g, opt_mb);
  s.initialize(ic);
  parallel::ThreadPool pool(kThreads);
  s.run_steps_dataflow(kSteps, kDt, pool);

  const auto rho = s.gather_prim_var(srhd::kRho);
  ASSERT_EQ(rho.size(), rho_ref.size());
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_EQ(rho[i], rho_ref[i]) << "cell " << i;
  }
}

TEST(ParallelStress, NineRankHaloExchangeMatchesSerial) {
  // 9 communicator threads (3x3 topology) exchanging halos every stage.
  const mesh::Grid g = mesh::Grid::make_2d(24, 24, 0.0, 1.0, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  const auto ic = [](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.vx = 0.3;
    w.vy = -0.15;
    w.p = 1.0;
    return w;
  };
  constexpr double kDt = 0.004;
  constexpr int kSteps = 3;

  solver::SrhdSolver ref(g, opt);
  ref.initialize(ic);
  for (int i = 0; i < kSteps; ++i) ref.step(kDt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  std::vector<double> rho_dist;
  comm::run_world(9, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    s.initialize(ic);
    for (int i = 0; i < kSteps; ++i) s.step(kDt);
    auto gathered = s.gather_prim_var_root(srhd::kRho);
    if (c.rank() == 0) rho_dist = std::move(gathered);
  });

  ASSERT_EQ(rho_dist.size(), rho_ref.size());
  for (std::size_t i = 0; i < rho_ref.size(); ++i) {
    EXPECT_EQ(rho_dist[i], rho_ref[i]) << "cell " << i;
  }
}

}  // namespace
