// Coverage for the remaining small surfaces: the logger's level gate,
// Event standalone semantics, Table CSV file round-trip, and the bench
// helper conventions that other suites do not touch.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "rshc/common/error.hpp"
#include "rshc/common/log.hpp"
#include "rshc/common/table.hpp"
#include "rshc/device/event.hpp"

namespace {

using namespace rshc;

TEST(Log, LevelGateRoundTrips) {
  const auto before = log::level();
  log::set_level(log::Level::kWarn);
  EXPECT_EQ(log::level(), log::Level::kWarn);
  // Below-threshold messages are dropped before formatting; this must not
  // crash or emit (we can only assert it returns).
  log::debug("dropped ", 42);
  log::info("dropped too");
  log::set_level(log::Level::kOff);
  log::error("also dropped at kOff");
  log::set_level(before);
}

TEST(Log, EmitsAboveThreshold) {
  const auto before = log::level();
  log::set_level(log::Level::kDebug);
  // Smoke: all levels format & write without throwing.
  log::debug("d", 1);
  log::info("i", 2.5);
  log::warn("w ", std::string("str"));
  log::error("e");
  log::set_level(before);
}

TEST(Log, RateLimitFirstCallPassesThenSuppresses) {
  log::RateLimit limit(std::chrono::milliseconds(60'000));
  // First acquisition owns the window and reports nothing suppressed.
  EXPECT_EQ(limit.acquire(), 0);
  // Everything inside the window stays silent and is counted.
  EXPECT_EQ(limit.acquire(), -1);
  EXPECT_EQ(limit.acquire(), -1);
  EXPECT_EQ(limit.suppressed(), 2);
}

TEST(Log, RateLimitReportsSuppressedCountAfterWindow) {
  log::RateLimit limit(std::chrono::milliseconds(20));
  EXPECT_EQ(limit.acquire(), 0);
  EXPECT_EQ(limit.acquire(), -1);
  EXPECT_EQ(limit.acquire(), -1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The window expired: the next call is allowed and carries the count of
  // what was dropped, which also resets.
  EXPECT_EQ(limit.acquire(), 2);
  EXPECT_EQ(limit.suppressed(), 0);
  EXPECT_EQ(limit.acquire(), -1);
}

TEST(Log, WarnLimitedFormatsWithoutThrowing) {
  const auto before = log::level();
  log::set_level(log::Level::kOff);  // exercise the gate, keep output quiet
  log::RateLimit limit(std::chrono::milliseconds(0));
  for (int i = 0; i < 3; ++i) {
    log::warn_limited(limit, "repeated warning ", i);
  }
  log::set_level(before);
}

TEST(Event, SetBeforeWaitDoesNotBlock) {
  device::Event e;
  EXPECT_FALSE(e.query());
  e.set();
  EXPECT_TRUE(e.query());
  e.wait();  // must return immediately
}

TEST(Event, CrossThreadSignal) {
  device::Event e;
  std::jthread t([e] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    e.set();
  });
  e.wait();
  EXPECT_TRUE(e.query());
}

TEST(Event, CopiesShareState) {
  device::Event a;
  device::Event b = a;  // shared completion state
  a.set();
  EXPECT_TRUE(b.query());
}

TEST(Table, CsvFileRoundTrip) {
  Table t({"a", "b"});
  t.add_row({1.5, std::string("x")});
  const std::string path =
      std::string(::testing::TempDir()) + "/table_roundtrip.csv";
  t.write_csv_file(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1.5,x");
}

TEST(Table, CsvFileFailureThrows) {
  Table t({"a"});
  t.add_row({1.0});
  EXPECT_THROW(t.write_csv_file("/nonexistent-dir/zzz/t.csv"), Error);
}

}  // namespace
