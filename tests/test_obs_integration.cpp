// Integration tests of the observability layer against the SRHD solver:
// a traced shock-tube step must produce the expected phase spans in the
// expected order, registry phase times must nest inside the step total,
// a dataflow run must show halo exchange overlapping compute on another
// thread, and a four-rank distributed run must export a structurally valid
// Chrome trace with rank-labeled processes and paired send->recv flows.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rshc/comm/communicator.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/obs/report.hpp"
#include "rshc/obs/telemetry.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "support/json_mini.hpp"
#include "support/trace_validator.hpp"

#if RSHC_OBS_ENABLED

namespace {

using namespace rshc;
using solver::SrhdSolver;
using testsupport::JsonParser;
using testsupport::JsonValue;

class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(false);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::Tracer::global().clear();
  }
};

SrhdSolver::Options sod_opts(std::array<int, 3> blocks = {1, 1, 1}) {
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(problems::sod().gamma);
  opt.blocks = blocks;
  return opt;
}

TEST_F(ObsIntegration, SerialStepEmitsOrderedPhaseSpans) {
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts({2, 1, 1}));
  s.initialize(problems::shock_tube_ic(problems::sod()));
  obs::set_tracing(true);
  constexpr int kSteps = 3;
  for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());
  obs::set_tracing(false);

  const auto events = obs::Tracer::global().events();
  ASSERT_FALSE(events.empty());

  // Per block: spans come in exchange -> rhs -> update -> c2p order within
  // each stage, so the i-th occurrence of each phase must be strictly
  // ordered in time, and every c2p begins only after its update ended.
  std::map<std::string, std::vector<const obs::TraceEvent*>> by_phase[2];
  std::int64_t steps_seen = 0;
  for (const auto& e : events) {
    const std::string name(e.name);
    if (name == "solver.step") {
      ++steps_seen;
      continue;
    }
    if (e.id >= 0 && e.id < 2 && name.rfind("solver.phase.", 0) == 0) {
      by_phase[static_cast<std::size_t>(e.id)]
          .try_emplace(name)
          .first->second.push_back(&e);
    }
  }
  EXPECT_EQ(steps_seen, kSteps);

  for (std::size_t b = 0; b < 2; ++b) {
    const auto& exch = by_phase[b]["solver.phase.exchange"];
    const auto& rhs = by_phase[b]["solver.phase.rhs"];
    const auto& upd = by_phase[b]["solver.phase.update"];
    const auto& c2p = by_phase[b]["solver.phase.c2p"];
    ASSERT_FALSE(exch.empty()) << "block " << b;
    ASSERT_EQ(exch.size(), rhs.size());
    ASSERT_EQ(upd.size(), c2p.size());
    for (std::size_t i = 0; i < exch.size(); ++i) {
      // Ghosts are exchanged before the RHS that consumes them.
      EXPECT_LE(exch[i]->t1_ns, rhs[i]->t0_ns) << "block " << b;
    }
    for (std::size_t i = 0; i < upd.size(); ++i) {
      // Conserved update completes before its con2prim recovery begins.
      EXPECT_LE(upd[i]->t1_ns, c2p[i]->t0_ns) << "block " << b;
    }
  }
}

TEST_F(ObsIntegration, PhaseTimesNestInsideStepTotal) {
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts());
  s.initialize(problems::shock_tube_ic(problems::sod()));
  constexpr int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("solver.steps"), kSteps);

  const double phase_sum = snap.value_or("solver.phase.exchange") +
                           snap.value_or("solver.phase.rhs") +
                           snap.value_or("solver.phase.update") +
                           snap.value_or("solver.phase.c2p") +
                           snap.value_or("solver.phase.other");
  const double step_total = snap.value_or("solver.step");
  EXPECT_GT(phase_sum, 0.0);
  // Every phase span nests inside a solver.step span, so the per-phase
  // times can only sum to less than the step total.
  EXPECT_LE(phase_sum, step_total);

  const auto* step = snap.find("solver.step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->kind, "timer");
  EXPECT_EQ(step->count, kSteps);
  EXPECT_LE(step->min, step->max);
}

TEST_F(ObsIntegration, RuntimeDisabledSolverRecordsNothing) {
  obs::set_enabled(false);
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts());
  s.initialize(problems::shock_tube_ic(problems::sod()));
  s.step(s.compute_dt());
  obs::set_enabled(true);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("solver.steps"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("solver.phase.rhs"), 0.0);
  EXPECT_TRUE(obs::Tracer::global().events().empty());
}

TEST_F(ObsIntegration, DataflowTraceShowsExchangeOverlappingCompute) {
  // A multi-block dataflow run on several workers: some block's halo
  // exchange must overlap another block's compute on a different thread —
  // that is the whole point of the futurized schedule.
  const mesh::Grid grid = mesh::Grid::make_2d(96, 96, 0.0, 1.0, 0.0, 1.0);
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  opt.blocks = {4, 2, 1};
  SrhdSolver s(grid, opt);
  s.initialize([](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.vx = 0.3;
    w.vy = -0.2;
    w.p = 1.0;
    return w;
  });

  parallel::ThreadPool pool(4);
  obs::set_tracing(true);
  s.run_steps_dataflow(12, 0.002, pool);
  obs::set_tracing(false);

  const auto events = obs::Tracer::global().events();
  std::vector<const obs::TraceEvent*> exchanges;
  std::vector<const obs::TraceEvent*> computes;
  for (const auto& e : events) {
    const std::string name(e.name);
    if (name == "solver.phase.exchange") exchanges.push_back(&e);
    if (name == "solver.phase.rhs" || name == "solver.phase.update" ||
        name == "solver.phase.c2p") {
      computes.push_back(&e);
    }
  }
  ASSERT_FALSE(exchanges.empty());
  ASSERT_FALSE(computes.empty());

  bool overlap = false;
  for (const auto* ex : exchanges) {
    for (const auto* co : computes) {
      if (ex->tid != co->tid && ex->t0_ns < co->t1_ns &&
          co->t0_ns < ex->t1_ns) {
        overlap = true;
        break;
      }
    }
    if (overlap) break;
  }
  EXPECT_TRUE(overlap)
      << "no halo-exchange span overlapped a compute span on another "
         "thread across "
      << exchanges.size() << " exchanges and " << computes.size()
      << " compute spans";

  // The task-graph nodes themselves were counted.
  EXPECT_GT(obs::Registry::global().counter("graph.nodes_run").total(), 0);
}

// --- rank-aware reporting and comm flow tracing ----------------------------

SrhdSolver::Options kh_opts() {
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(4.0 / 3.0);
  return opt;
}

TEST_F(ObsIntegration, FourRankTraceHasPairedFlowsAndNamedRanks) {
  constexpr int kRanks = 4;
  const mesh::Grid grid = mesh::Grid::make_2d(32, 32, -0.5, 0.5, -0.5, 0.5);
  std::array<obs::Registry, kRanks> regs;

  obs::set_tracing(true);
  comm::run_world(kRanks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    obs::report::RankScope scope(regs[r], c.rank());
    solver::DistributedSolver<solver::SrhdPhysics> ds(grid, c, kh_opts());
    ds.initialize(problems::kelvin_helmholtz_ic({}));
    for (int i = 0; i < 2; ++i) ds.step(ds.compute_dt());
  });
  obs::set_tracing(false);

  std::ostringstream os;
  obs::Tracer::global().write_chrome_json(os);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();

  // The exported trace is structurally valid: metadata first, monotone
  // timestamps, balanced nesting, flow ids pairing up exactly once.
  const auto problems = testsupport::validate_chrome_trace(root);
  EXPECT_TRUE(problems.empty()) << ::testing::PrintToString(problems);

  std::set<std::string> process_names;
  // Flow ids are integral in the emitter; parse them back as keys.
  std::map<long long, double> flow_start_pid;  // flow id -> sender rank
  std::size_t cross_rank_flows = 0;
  for (const auto& e : root.at("traceEvents").array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "M" && e.at("name").string == "process_name") {
      process_names.insert(e.at("args").at("name").string);
    }
    const auto flow_id = static_cast<long long>(e.at("id").number);
    if (ph == "s") flow_start_pid[flow_id] = e.at("pid").number;
    if (ph == "f") {
      const auto it = flow_start_pid.find(flow_id);
      if (it != flow_start_pid.end() &&
          it->second != e.at("pid").number) {
        ++cross_rank_flows;
      }
    }
  }
  // Every rank ran under a RankScope, so its track carries its label.
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(process_names.count("rank " + std::to_string(r)) == 1)
        << "missing process_name for rank " << r;
  }
  // Halo messages travel between neighbouring ranks: the send->recv flow
  // arrows must actually cross process tracks.
  EXPECT_GT(cross_rank_flows, 0u);

  // Each rank's scoped registry saw its own solver phases and halo bytes.
  for (const auto& reg : regs) {
    const obs::Snapshot snap = reg.snapshot();
    EXPECT_GT(snap.value_or("solver.phase.rhs"), 0.0);
    EXPECT_GT(snap.value_or("halo.bytes_sent"), 0.0);
    EXPECT_GT(snap.value_or("comm.messages_sent"), 0.0);
  }
  // The global registry saw none of it (everything was rank-scoped).
  EXPECT_DOUBLE_EQ(
      obs::Registry::global().snapshot().value_or("halo.bytes_sent"), 0.0);
}

TEST_F(ObsIntegration, FourRankTraceCarriesTelemetryCounterTracks) {
  // The live-telemetry sampler re-emits transfer byte counters as ph:"C"
  // counter events on the rank tracks, so byte flow lines up with the
  // phase spans on one Perfetto timeline. Driven synchronously via
  // sample_now() for determinism (no background thread).
  constexpr int kRanks = 4;
  const mesh::Grid grid = mesh::Grid::make_2d(32, 32, -0.5, 0.5, -0.5, 0.5);
  std::array<obs::Registry, kRanks> regs;

  obs::telemetry::SamplerOptions sopt;
  sopt.counter_tracks = obs::telemetry::default_counter_tracks();
  obs::telemetry::Sampler sampler(sopt);
  for (int r = 0; r < kRanks; ++r) {
    sampler.attach_registry(r, &regs[static_cast<std::size_t>(r)]);
  }

  obs::set_tracing(true);
  comm::run_world(kRanks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    obs::report::RankScope scope(regs[r], c.rank());
    solver::DistributedSolver<solver::SrhdPhysics> ds(grid, c, kh_opts());
    ds.initialize(problems::kelvin_helmholtz_ic({}));
    for (int i = 0; i < 2; ++i) ds.step(ds.compute_dt());
  });

  // A small genuine device-pipeline step so the H2D/D2H byte counters
  // (accumulated in the global registry by the stream workers) are live.
  {
    SrhdSolver::Options dopt = sod_opts({2, 1, 1});
    dopt.pipeline = solver::HostPipeline::kDevice;
    dopt.accel = {0.0, std::numeric_limits<double>::infinity(), 0.0};
    SrhdSolver ds(mesh::Grid::make_1d(64, 0.0, 1.0), dopt);
    ds.initialize(problems::shock_tube_ic(problems::sod()));
    ds.step(ds.compute_dt());
  }

  sampler.sample_now();
  obs::set_tracing(false);

  std::ostringstream os;
  obs::Tracer::global().write_chrome_json(os);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const auto problems = testsupport::validate_chrome_trace(root);
  EXPECT_TRUE(problems.empty()) << ::testing::PrintToString(problems);

  // Counter name -> pids it was sampled on, with the last value seen.
  std::map<std::string, std::set<int>> counter_pids;
  std::map<std::string, double> counter_value;
  for (const auto& e : root.at("traceEvents").array) {
    if (e.at("ph").string != "C") continue;
    const std::string& name = e.at("name").string;
    counter_pids[name].insert(static_cast<int>(e.at("pid").number));
    counter_value[name] = e.at("args").at("value").number;
  }
  // Every rank's halo traffic shows up as a counter sample on its track.
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(counter_pids["halo.bytes_sent"].count(r) == 1)
        << "no halo.bytes_sent counter sample on rank track " << r;
  }
  // Device transfer bytes ride the global (pid 0) track with real totals.
  EXPECT_TRUE(counter_pids["device.h2d.bytes"].count(0) == 1);
  EXPECT_TRUE(counter_pids["device.d2h.bytes"].count(0) == 1);
  EXPECT_GT(counter_value["device.h2d.bytes"], 0.0);
  EXPECT_GT(counter_value["device.d2h.bytes"], 0.0);
}

TEST_F(ObsIntegration, RankRollupComputesExactCrossRankStats) {
  constexpr int kRanks = 4;
  std::array<obs::Registry, kRanks> regs;
  using Rollup = std::vector<std::pair<std::string, obs::report::RankStats>>;
  std::array<Rollup, kRanks> results;

  comm::run_world(kRanks, [&](comm::Communicator& c) {
    const auto r = static_cast<std::size_t>(c.rank());
    // Hand-planted per-rank totals: rank r spends (r + 1) seconds.
    regs[r].timer("phase.a").record_seconds(static_cast<double>(r + 1));
    results[r] = obs::report::rank_rollup(c, regs[r].snapshot(),
                                          {"phase.a", "phase.absent"});
  });

  // sums = {1, 2, 3, 4}: min 1, max 4, mean 2.5, imbalance 4 / 2.5 = 1.6.
  for (const auto& rollup : results) {
    ASSERT_EQ(rollup.size(), 2u);
    EXPECT_EQ(rollup[0].first, "phase.a");
    EXPECT_NEAR(rollup[0].second.min_s, 1.0, 1e-9);
    EXPECT_NEAR(rollup[0].second.max_s, 4.0, 1e-9);
    EXPECT_NEAR(rollup[0].second.mean_s, 2.5, 1e-9);
    EXPECT_NEAR(rollup[0].second.imbalance, 1.6, 1e-9);
    // A phase no rank recorded rolls up to all-zero, imbalance included.
    EXPECT_EQ(rollup[1].first, "phase.absent");
    EXPECT_DOUBLE_EQ(rollup[1].second.max_s, 0.0);
    EXPECT_DOUBLE_EQ(rollup[1].second.imbalance, 0.0);
  }
}

TEST_F(ObsIntegration, PhasesFromRanksMergeCountsAndRankStats) {
  std::array<obs::Registry, 2> regs;
  regs[0].timer("phase.m").record_seconds(1.0);
  regs[0].timer("phase.m").record_seconds(1.0);
  regs[1].timer("phase.m").record_seconds(2.0);
  const std::array<obs::Snapshot, 2> snaps = {regs[0].snapshot(),
                                              regs[1].snapshot()};
  const auto rows = obs::report::phases_from_ranks(
      std::span<const obs::Snapshot>(snaps), "dist.");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "dist.phase.m");
  EXPECT_EQ(rows[0].count, 3);
  EXPECT_NEAR(rows[0].sum_s, 4.0, 1e-8);
  ASSERT_TRUE(rows[0].ranks.has_value());
  EXPECT_NEAR(rows[0].ranks->min_s, 2.0, 1e-9);   // rank 0 total
  EXPECT_NEAR(rows[0].ranks->max_s, 2.0, 1e-9);   // rank 1 total
  EXPECT_NEAR(rows[0].ranks->mean_s, 2.0, 1e-9);
  EXPECT_NEAR(rows[0].ranks->imbalance, 1.0, 1e-9);
  // Percentiles come from the merged bins, clamped to the exact envelope.
  EXPECT_GE(rows[0].p50_s, rows[0].min_s);
  EXPECT_LE(rows[0].p99_s, rows[0].max_s);
}

TEST_F(ObsIntegration, MaybeDumpCreatesMissingOutputDirectory) {
  obs::Registry::global().timer("t.dump.timer").record_ns(1000);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rshc_obs_dump_test";
  std::filesystem::remove_all(dir);
  ::setenv("RSHC_DUMP_METRICS", "1", 1);
  ::setenv("RSHC_DUMP_REPORT", "1", 1);
  obs::maybe_dump((dir / "nested" / "run").string());
  ::unsetenv("RSHC_DUMP_METRICS");
  ::unsetenv("RSHC_DUMP_REPORT");

  EXPECT_TRUE(std::filesystem::exists(dir / "nested" / "run.metrics.csv"));
  const std::filesystem::path report = dir / "nested" / "run.report.json";
  ASSERT_TRUE(std::filesystem::exists(report));

  std::ifstream is(report);
  std::stringstream buf;
  buf << is.rdbuf();
  JsonParser parser(buf.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  EXPECT_EQ(root.at("schema").string, "rshc.perf_report");
  EXPECT_DOUBLE_EQ(root.at("schema_version").number,
                   obs::report::kSchemaVersion);
  EXPECT_EQ(root.at("suite").string, "run");
  ASSERT_EQ(root.at("phases").kind, JsonValue::Kind::kArray);
  bool saw_timer = false;
  for (const auto& ph : root.at("phases").array) {
    if (ph.at("name").string == "t.dump.timer") saw_timer = true;
  }
  EXPECT_TRUE(saw_timer);
  std::filesystem::remove_all(dir);
}

}  // namespace

#else  // !RSHC_OBS_ENABLED

namespace {

TEST(ObsIntegration, DisabledBuildCompilesWithoutInstrumentation) {
  // With RSHC_OBS=OFF the macros vanish; nothing to integrate against.
  SUCCEED();
}

}  // namespace

#endif  // RSHC_OBS_ENABLED
