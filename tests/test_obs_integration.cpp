// Integration tests of the observability layer against the SRHD solver:
// a traced shock-tube step must produce the expected phase spans in the
// expected order, registry phase times must nest inside the step total,
// and a dataflow run must show halo exchange overlapping compute on
// another thread.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rshc/obs/obs.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

#if RSHC_OBS_ENABLED

namespace {

using namespace rshc;
using solver::SrhdSolver;

class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(false);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::Tracer::global().clear();
  }
};

SrhdSolver::Options sod_opts(std::array<int, 3> blocks = {1, 1, 1}) {
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(problems::sod().gamma);
  opt.blocks = blocks;
  return opt;
}

TEST_F(ObsIntegration, SerialStepEmitsOrderedPhaseSpans) {
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts({2, 1, 1}));
  s.initialize(problems::shock_tube_ic(problems::sod()));
  obs::set_tracing(true);
  constexpr int kSteps = 3;
  for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());
  obs::set_tracing(false);

  const auto events = obs::Tracer::global().events();
  ASSERT_FALSE(events.empty());

  // Per block: spans come in exchange -> rhs -> update -> c2p order within
  // each stage, so the i-th occurrence of each phase must be strictly
  // ordered in time, and every c2p begins only after its update ended.
  std::map<std::string, std::vector<const obs::TraceEvent*>> by_phase[2];
  std::int64_t steps_seen = 0;
  for (const auto& e : events) {
    const std::string name(e.name);
    if (name == "solver.step") {
      ++steps_seen;
      continue;
    }
    if (e.id >= 0 && e.id < 2 && name.rfind("solver.phase.", 0) == 0) {
      by_phase[static_cast<std::size_t>(e.id)]
          .try_emplace(name)
          .first->second.push_back(&e);
    }
  }
  EXPECT_EQ(steps_seen, kSteps);

  for (std::size_t b = 0; b < 2; ++b) {
    const auto& exch = by_phase[b]["solver.phase.exchange"];
    const auto& rhs = by_phase[b]["solver.phase.rhs"];
    const auto& upd = by_phase[b]["solver.phase.update"];
    const auto& c2p = by_phase[b]["solver.phase.c2p"];
    ASSERT_FALSE(exch.empty()) << "block " << b;
    ASSERT_EQ(exch.size(), rhs.size());
    ASSERT_EQ(upd.size(), c2p.size());
    for (std::size_t i = 0; i < exch.size(); ++i) {
      // Ghosts are exchanged before the RHS that consumes them.
      EXPECT_LE(exch[i]->t1_ns, rhs[i]->t0_ns) << "block " << b;
    }
    for (std::size_t i = 0; i < upd.size(); ++i) {
      // Conserved update completes before its con2prim recovery begins.
      EXPECT_LE(upd[i]->t1_ns, c2p[i]->t0_ns) << "block " << b;
    }
  }
}

TEST_F(ObsIntegration, PhaseTimesNestInsideStepTotal) {
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts());
  s.initialize(problems::shock_tube_ic(problems::sod()));
  constexpr int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("solver.steps"), kSteps);

  const double phase_sum = snap.value_or("solver.phase.exchange") +
                           snap.value_or("solver.phase.rhs") +
                           snap.value_or("solver.phase.update") +
                           snap.value_or("solver.phase.c2p") +
                           snap.value_or("solver.phase.other");
  const double step_total = snap.value_or("solver.step");
  EXPECT_GT(phase_sum, 0.0);
  // Every phase span nests inside a solver.step span, so the per-phase
  // times can only sum to less than the step total.
  EXPECT_LE(phase_sum, step_total);

  const auto* step = snap.find("solver.step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->kind, "timer");
  EXPECT_EQ(step->count, kSteps);
  EXPECT_LE(step->min, step->max);
}

TEST_F(ObsIntegration, RuntimeDisabledSolverRecordsNothing) {
  obs::set_enabled(false);
  SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), sod_opts());
  s.initialize(problems::shock_tube_ic(problems::sod()));
  s.step(s.compute_dt());
  obs::set_enabled(true);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("solver.steps"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("solver.phase.rhs"), 0.0);
  EXPECT_TRUE(obs::Tracer::global().events().empty());
}

TEST_F(ObsIntegration, DataflowTraceShowsExchangeOverlappingCompute) {
  // A multi-block dataflow run on several workers: some block's halo
  // exchange must overlap another block's compute on a different thread —
  // that is the whole point of the futurized schedule.
  const mesh::Grid grid = mesh::Grid::make_2d(96, 96, 0.0, 1.0, 0.0, 1.0);
  SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  opt.blocks = {4, 2, 1};
  SrhdSolver s(grid, opt);
  s.initialize([](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.vx = 0.3;
    w.vy = -0.2;
    w.p = 1.0;
    return w;
  });

  parallel::ThreadPool pool(4);
  obs::set_tracing(true);
  s.run_steps_dataflow(12, 0.002, pool);
  obs::set_tracing(false);

  const auto events = obs::Tracer::global().events();
  std::vector<const obs::TraceEvent*> exchanges;
  std::vector<const obs::TraceEvent*> computes;
  for (const auto& e : events) {
    const std::string name(e.name);
    if (name == "solver.phase.exchange") exchanges.push_back(&e);
    if (name == "solver.phase.rhs" || name == "solver.phase.update" ||
        name == "solver.phase.c2p") {
      computes.push_back(&e);
    }
  }
  ASSERT_FALSE(exchanges.empty());
  ASSERT_FALSE(computes.empty());

  bool overlap = false;
  for (const auto* ex : exchanges) {
    for (const auto* co : computes) {
      if (ex->tid != co->tid && ex->t0_ns < co->t1_ns &&
          co->t0_ns < ex->t1_ns) {
        overlap = true;
        break;
      }
    }
    if (overlap) break;
  }
  EXPECT_TRUE(overlap)
      << "no halo-exchange span overlapped a compute span on another "
         "thread across "
      << exchanges.size() << " exchanges and " << computes.size()
      << " compute spans";

  // The task-graph nodes themselves were counted.
  EXPECT_GT(obs::Registry::global().counter("graph.nodes_run").total(), 0);
}

}  // namespace

#else  // !RSHC_OBS_ENABLED

namespace {

TEST(ObsIntegration, DisabledBuildCompilesWithoutInstrumentation) {
  // With RSHC_OBS=OFF the macros vanish; nothing to integrate against.
  SUCCEED();
}

}  // namespace

#endif  // RSHC_OBS_ENABLED
