// Exact SRHD Riemann solver: star-state values against published numbers
// (Marti & Mueller 2003), structural invariants, and wave-pattern cases.

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/error.hpp"

namespace {

using rshc::analysis::ExactRiemann;
using State = ExactRiemann::State;

TEST(ExactRiemann, MartiMuller1StarState) {
  // Published solution of MM problem 1 (Gamma = 5/3):
  // p* ~ 1.448, v* ~ 0.714 (Marti & Mueller 2003, Fig. 5).
  const ExactRiemann r({10.0, 0.0, 13.33}, {1.0, 0.0, 1e-7}, 5.0 / 3.0);
  EXPECT_NEAR(r.p_star(), 1.448, 5e-3);
  EXPECT_NEAR(r.v_star(), 0.714, 2e-3);
  EXPECT_EQ(r.left_wave(), ExactRiemann::Wave::kRarefaction);
  EXPECT_EQ(r.right_wave(), ExactRiemann::Wave::kShock);
}

TEST(ExactRiemann, MartiMuller2StarState) {
  // Blast wave problem 2: p_L/p_R = 1e5; v* ~ 0.960 (W* ~ 3.6),
  // p* ~ 18.6.
  const ExactRiemann r({1.0, 0.0, 1000.0}, {1.0, 0.0, 0.01}, 5.0 / 3.0);
  EXPECT_NEAR(r.v_star(), 0.960, 3e-3);
  EXPECT_NEAR(r.p_star(), 18.6, 0.3);
}

TEST(ExactRiemann, SymmetricCollisionHasZeroContactVelocity) {
  const ExactRiemann r({1.0, 0.5, 1.0}, {1.0, -0.5, 1.0}, 5.0 / 3.0);
  EXPECT_NEAR(r.v_star(), 0.0, 1e-10);
  EXPECT_EQ(r.left_wave(), ExactRiemann::Wave::kShock);
  EXPECT_EQ(r.right_wave(), ExactRiemann::Wave::kShock);
  EXPECT_GT(r.p_star(), 1.0);  // compression raises pressure
}

TEST(ExactRiemann, SymmetricExpansionMakesTwoRarefactions) {
  const ExactRiemann r({1.0, -0.3, 1.0}, {1.0, 0.3, 1.0}, 5.0 / 3.0);
  EXPECT_NEAR(r.v_star(), 0.0, 1e-10);
  EXPECT_EQ(r.left_wave(), ExactRiemann::Wave::kRarefaction);
  EXPECT_EQ(r.right_wave(), ExactRiemann::Wave::kRarefaction);
  EXPECT_LT(r.p_star(), 1.0);
}

TEST(ExactRiemann, PureContactIsPreserved) {
  // Equal p and v, different rho: only a contact; p* = p, v* = v.
  const ExactRiemann r({5.0, 0.25, 2.0}, {1.0, 0.25, 2.0}, 5.0 / 3.0);
  EXPECT_NEAR(r.p_star(), 2.0, 1e-9);
  EXPECT_NEAR(r.v_star(), 0.25, 1e-10);
  // Densities jump across the contact but match the inputs.
  EXPECT_NEAR(r.sample(0.25 - 1e-6).rho, 5.0, 1e-6);
  EXPECT_NEAR(r.sample(0.25 + 1e-6).rho, 1.0, 1e-6);
}

TEST(ExactRiemann, FarFieldReturnsInputStates) {
  const ExactRiemann r({10.0, 0.0, 13.33}, {1.0, 0.0, 1e-7}, 5.0 / 3.0);
  const State l = r.sample(-0.999);
  EXPECT_NEAR(l.rho, 10.0, 1e-12);
  EXPECT_NEAR(l.p, 13.33, 1e-12);
  const State rr = r.sample(0.999);
  EXPECT_NEAR(rr.rho, 1.0, 1e-12);
  EXPECT_NEAR(rr.p, 1e-7, 1e-15);
}

TEST(ExactRiemann, AllWaveSpeedsAreCausalAndOrdered) {
  const ExactRiemann r({1.0, 0.0, 1000.0}, {1.0, 0.0, 0.01}, 5.0 / 3.0);
  // Scan the full fan: p must decrease monotonically through the left
  // rarefaction and the solution must be continuous except at shock/contact.
  double prev_p = 1000.0;
  for (double xi = -0.99; xi < r.v_star(); xi += 0.01) {
    const State s = r.sample(xi);
    EXPECT_LE(s.p, prev_p + 1e-9);
    EXPECT_GT(s.rho, 0.0);
    EXPECT_LT(std::abs(s.v), 1.0);
    prev_p = s.p;
  }
}

TEST(ExactRiemann, ContactSeparatesStarDensities) {
  const ExactRiemann r({10.0, 0.0, 13.33}, {1.0, 0.0, 1e-7}, 5.0 / 3.0);
  const State sl = r.sample(r.v_star() - 1e-4);
  const State sr = r.sample(r.v_star() + 1e-4);
  EXPECT_NEAR(sl.p, r.p_star(), 1e-8);
  EXPECT_NEAR(sr.p, r.p_star(), 1e-8);
  EXPECT_NEAR(sl.v, r.v_star(), 1e-8);
  // Density is discontinuous across the contact.
  EXPECT_GT(std::abs(sl.rho - sr.rho), 0.1);
}

TEST(ExactRiemann, RarefactionFanIsSelfSimilarAndSmooth) {
  const ExactRiemann r({10.0, 0.0, 13.33}, {1.0, 0.0, 1e-7}, 5.0 / 3.0);
  // Sample pairs inside the left fan; velocity must increase with xi.
  double prev_v = -1.0;
  for (double xi = -0.6; xi < -0.2; xi += 0.02) {
    const State s = r.sample(xi);
    EXPECT_GT(s.v, prev_v);
    prev_v = s.v;
  }
}

TEST(ExactRiemann, MovingShockTube) {
  // Boosted Sod-like problem: both states drifting right at 0.3.
  const ExactRiemann r({1.0, 0.3, 1.0}, {0.125, 0.3, 0.1}, 1.4);
  EXPECT_GT(r.v_star(), 0.3);  // expansion pushes the contact forward
  EXPECT_LT(r.p_star(), 1.0);
  EXPECT_GT(r.p_star(), 0.1);
}

TEST(ExactRiemann, RejectsBadInputs) {
  EXPECT_THROW(ExactRiemann({1.0, 0.0, 1.0}, {1.0, 0.0, 1.0}, 1.0),
               rshc::Error);
  EXPECT_THROW(ExactRiemann({-1.0, 0.0, 1.0}, {1.0, 0.0, 1.0}, 1.4),
               rshc::Error);
  EXPECT_THROW(ExactRiemann({1.0, 1.5, 1.0}, {1.0, 0.0, 1.0}, 1.4),
               rshc::Error);
  EXPECT_THROW(ExactRiemann({1.0, 0.0, 0.0}, {1.0, 0.0, 1.0}, 1.4),
               rshc::Error);
}

// --- norms ------------------------------------------------------------------

TEST(Norms, BasicDefinitions) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.5, 1.0};
  EXPECT_NEAR(rshc::analysis::l1_error(a, b), (0.0 + 0.5 + 2.0) / 3.0, 1e-14);
  EXPECT_NEAR(rshc::analysis::l2_error(a, b),
              std::sqrt((0.25 + 4.0) / 3.0), 1e-14);
  EXPECT_NEAR(rshc::analysis::linf_error(a, b), 2.0, 1e-14);
  EXPECT_THROW(
      (void)rshc::analysis::l1_error(a, std::vector<double>{1.0}),
      rshc::Error);
}

TEST(Norms, ConvergenceOrder) {
  EXPECT_NEAR(rshc::analysis::convergence_order(4e-2, 1e-2), 2.0, 1e-12);
  EXPECT_NEAR(rshc::analysis::convergence_order(8e-3, 1e-3, 2.0), 3.0,
              1e-12);
  EXPECT_THROW((void)rshc::analysis::convergence_order(0.0, 1.0),
               rshc::Error);
}

TEST(Norms, GrowthRateRecoversExponential) {
  std::vector<double> t;
  std::vector<double> amp;
  for (int i = 0; i <= 20; ++i) {
    t.push_back(0.1 * i);
    amp.push_back(1e-3 * std::exp(2.5 * 0.1 * i));
  }
  EXPECT_NEAR(rshc::analysis::growth_rate(t, amp), 2.5, 1e-10);
  EXPECT_NEAR(rshc::analysis::linear_fit_slope(t, t), 1.0, 1e-12);
}

}  // namespace
