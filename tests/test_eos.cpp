// Equation-of-state identities, swept across adiabatic indices.

#include <gtest/gtest.h>

#include "rshc/common/error.hpp"
#include "rshc/eos/ideal_gas.hpp"

namespace {

using rshc::eos::IdealGas;

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, PressureEnergyInverse) {
  const IdealGas eos(GetParam());
  for (const double rho : {1e-8, 1.0, 42.0}) {
    for (const double p : {1e-10, 0.1, 1000.0}) {
      const double eps = eos.specific_internal_energy(rho, p);
      EXPECT_NEAR(eos.pressure(rho, eps), p, 1e-12 * p);
    }
  }
}

TEST_P(GammaSweep, EnthalpyDecomposition) {
  const IdealGas eos(GetParam());
  const double rho = 2.0;
  const double p = 5.0;
  const double eps = eos.specific_internal_energy(rho, p);
  EXPECT_NEAR(eos.enthalpy(rho, p), 1.0 + eps + p / rho, 1e-13);
}

TEST_P(GammaSweep, SoundSpeedIsSubluminal) {
  const IdealGas eos(GetParam());
  for (const double p_over_rho : {1e-6, 1.0, 1e6}) {
    const double cs = eos.sound_speed(1.0, p_over_rho);
    EXPECT_GT(cs, 0.0);
    EXPECT_LT(cs, 1.0);
    EXPECT_NEAR(cs * cs, eos.sound_speed_sq(1.0, p_over_rho), 1e-15);
  }
}

TEST_P(GammaSweep, UltraRelativisticSoundSpeedLimit) {
  const IdealGas eos(GetParam());
  // As p/rho -> inf, cs^2 -> gamma - 1.
  const double cs2 = eos.sound_speed_sq(1.0, 1e12);
  EXPECT_NEAR(cs2, GetParam() - 1.0, 1e-9);
}

TEST_P(GammaSweep, PolytropeMatchesDirectPressure) {
  const IdealGas eos(GetParam());
  const double kappa = 0.7;
  const double rho = 1.7;
  EXPECT_NEAR(eos.polytropic_pressure(rho, kappa),
              kappa * std::pow(rho, GetParam()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(4.0 / 3.0, 1.4, 5.0 / 3.0, 2.0));

TEST(IdealGas, RejectsUnphysicalGamma) {
  EXPECT_THROW(IdealGas(1.0), rshc::Error);
  EXPECT_THROW(IdealGas(0.9), rshc::Error);
  EXPECT_THROW(IdealGas(2.5), rshc::Error);
  EXPECT_NO_THROW(IdealGas(2.0));
}

TEST(IdealGas, ColdLimitEnthalpyIsOne) {
  const IdealGas eos(5.0 / 3.0);
  EXPECT_NEAR(eos.enthalpy(1.0, 1e-15), 1.0, 1e-13);
}

}  // namespace
