// Live-telemetry layer: the periodic Registry sampler (ring + JSONL
// stream + counter-event re-emission), the solver heartbeat gauges, the
// stall watchdog (true positive on a seeded never-completing task-graph
// node, quiet under genuine multi-thread load), and the structured event
// journal with git-sha provenance and the rshc::check failure hook.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rshc/check/check.hpp"
#include "rshc/device/event.hpp"
#include "rshc/obs/journal.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/obs/telemetry.hpp"
#include "rshc/parallel/task_graph.hpp"
#include "rshc/parallel/thread_pool.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "support/json_mini.hpp"

#if RSHC_OBS_ENABLED

namespace {

using namespace rshc;
using namespace std::chrono_literals;
using obs::telemetry::Sampler;
using obs::telemetry::SamplerOptions;
using obs::telemetry::Watchdog;
using obs::telemetry::WatchdogOptions;
using obs::telemetry::WatchdogPolicy;
using testsupport::JsonParser;
using testsupport::JsonValue;

class Telemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(false);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::Tracer::global().clear();
    obs::journal::Journal::global().close();
  }

  static std::filesystem::path temp_file(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / "rshc_telemetry_test";
    std::filesystem::create_directories(dir);
    return dir / name;
  }

  static std::vector<JsonValue> parse_jsonl(const std::filesystem::path& p) {
    std::ifstream is(p);
    std::vector<JsonValue> lines;
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      JsonParser parser(line);
      lines.push_back(parser.parse());
      EXPECT_TRUE(parser.ok()) << parser.error() << " in: " << line;
    }
    return lines;
  }
};

TEST_F(Telemetry, SamplerStreamsSchemaVersionedJsonl) {
  const auto path = temp_file("sampler.jsonl");
  obs::Registry::global().counter("t.tele.bytes").add(128);
  obs::Registry::global().gauge("t.tele.gauge").set(2.5);

  SamplerOptions opt;
  opt.interval = 5ms;
  opt.jsonl_path = path.string();
  Sampler sampler(opt);
  sampler.sample_now();
  obs::Registry::global().counter("t.tele.bytes").add(128);
  sampler.sample_now();
  EXPECT_EQ(sampler.samples_taken(), 2);

  const auto lines = parse_jsonl(path);
  ASSERT_GE(lines.size(), 3u);  // config + 2 samples
  const JsonValue& config = lines[0];
  EXPECT_EQ(config.at("schema").string, "rshc.telemetry");
  EXPECT_DOUBLE_EQ(config.at("v").number, obs::telemetry::kSchemaVersion);
  EXPECT_EQ(config.at("kind").string, "config");
  EXPECT_DOUBLE_EQ(config.at("interval_ms").number, 5.0);

  double prev_seq = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue& s = lines[i];
    EXPECT_EQ(s.at("schema").string, "rshc.telemetry");
    EXPECT_EQ(s.at("kind").string, "sample");
    EXPECT_GT(s.at("seq").number, prev_seq);  // contiguous take order
    prev_seq = s.at("seq").number;
    ASSERT_TRUE(s.has("hb"));
    EXPECT_TRUE(s.at("hb").has("step"));
    EXPECT_TRUE(s.at("hb").has("zones_per_sec"));
    ASSERT_TRUE(s.has("metrics"));
  }
  // The counter's running total lands in the last sample's metrics map.
  EXPECT_DOUBLE_EQ(lines.back().at("metrics").at("t.tele.bytes").number,
                   256.0);
  EXPECT_DOUBLE_EQ(lines.back().at("metrics").at("t.tele.gauge").number, 2.5);
  std::filesystem::remove(path);
}

TEST_F(Telemetry, SamplerRingKeepsNewestOldestFirst) {
  SamplerOptions opt;
  opt.ring_capacity = 4;
  Sampler sampler(opt);
  for (int i = 0; i < 6; ++i) sampler.sample_now();
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Six takes through a 4-deep ring leave seq 2..5, oldest first.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, static_cast<std::int64_t>(i + 2));
  }
}

TEST_F(Telemetry, SamplerEmitsCounterEventsWhileTracing) {
  obs::Registry::global().counter("t.tele.track").add(42);
  SamplerOptions opt;
  opt.counter_tracks = {"t.tele.track", "t.tele.absent"};
  Sampler sampler(opt);
  obs::set_tracing(true);
  sampler.sample_now();
  obs::set_tracing(false);

  bool saw = false;
  for (const auto& e : obs::Tracer::global().events()) {
    if (e.kind != obs::EventKind::kCounter) continue;
    EXPECT_EQ(std::string(e.name), "t.tele.track");  // absent one skipped
    EXPECT_DOUBLE_EQ(e.value, 42.0);
    EXPECT_EQ(e.pid, 0);  // global-registry samples ride the pid-0 track
    saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST_F(Telemetry, BackgroundSamplerCollectsAndStops) {
  SamplerOptions opt;
  opt.interval = 2ms;
  Sampler sampler(opt);
  sampler.start();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (sampler.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  sampler.stop();  // joins + takes one final sample
  const auto taken = sampler.samples_taken();
  EXPECT_GE(taken, 4);
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(sampler.samples_taken(), taken) << "sampler kept running";
  sampler.stop();  // idempotent
}

TEST_F(Telemetry, SolverStepsPublishHeartbeatGauges) {
  const auto ticks0 = obs::telemetry::heartbeat_ticks();
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(problems::sod().gamma);
  solver::SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), opt);
  s.initialize(problems::shock_tube_ic(problems::sod()));
  constexpr int kSteps = 3;
  for (int i = 0; i < kSteps; ++i) s.step(s.compute_dt());

  EXPECT_EQ(s.steps_taken(), kSteps);
  EXPECT_EQ(obs::telemetry::heartbeat_ticks() - ticks0,
            static_cast<std::uint64_t>(kSteps));
  const obs::telemetry::Heartbeat hb = obs::telemetry::last_heartbeat();
  EXPECT_EQ(hb.step, kSteps);
  EXPECT_DOUBLE_EQ(hb.t, s.time());
  EXPECT_GT(hb.dt, 0.0);
  EXPECT_GT(hb.zones_per_sec, 0.0);

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("solver.hb.step"), kSteps);
  EXPECT_GT(snap.value_or("solver.hb.zones_per_sec"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("solver.hb.mlups"),
                   snap.value_or("solver.hb.zones_per_sec") / 1e6);
}

TEST_F(Telemetry, ParallelStepsPublishHeartbeatToo) {
  const auto ticks0 = obs::telemetry::heartbeat_ticks();
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  opt.blocks = {2, 1, 1};
  solver::SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), opt);
  s.initialize(problems::shock_tube_ic(problems::sod()));
  parallel::ThreadPool pool(2);
  s.step_parallel(0.001, pool, /*dataflow=*/false);
  s.step_parallel(0.001, pool, /*dataflow=*/true);
  s.run_steps_dataflow(3, 0.001, pool);
  EXPECT_EQ(s.steps_taken(), 5);
  // One heartbeat per step_parallel call, one per run_steps_dataflow burst.
  EXPECT_EQ(obs::telemetry::heartbeat_ticks() - ticks0, 3u);
  EXPECT_EQ(obs::telemetry::last_heartbeat().step, 5);
}

TEST_F(Telemetry, WatchdogDetectsSeededGraphStall) {
  const auto path = temp_file("stall_journal.jsonl");
  obs::journal::Journal::global().open(path.string());

  constexpr auto kTimeout = 150ms;
  WatchdogOptions opt;
  opt.policy = WatchdogPolicy::kWarn;
  opt.timeout = kTimeout;
  Watchdog dog(opt);
  dog.start();

  // Seed a task-graph node that never completes until released: pending
  // work is visible (graph node + a busy worker) with zero progress.
  device::Event release;
  parallel::ThreadPool pool(1);
  parallel::TaskGraph graph;
  graph.add([&release] { release.wait(); });
  const auto t0 = std::chrono::steady_clock::now();
  std::thread runner([&graph, &pool] { graph.run(pool); });

  // Acceptance: detection within 2x the configured timeout.
  const auto deadline = t0 + 2 * kTimeout + 100ms;  // +margin for CI jitter
  while (dog.stalls_detected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  const auto detected = dog.stalls_detected();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  release.set();
  runner.join();
  dog.stop();

  EXPECT_GE(detected, 1) << "watchdog never fired on a seeded stall";
  EXPECT_LE(elapsed, 2 * kTimeout + 100ms);
  EXPECT_GE(obs::journal::Journal::global().events_written(), 1);
  obs::journal::Journal::global().close();

  bool journaled = false;
  for (const auto& line : parse_jsonl(path)) {
    if (line.at("event").string != "watchdog") continue;
    journaled = true;
    EXPECT_EQ(line.at("schema").string, "rshc.journal");
    EXPECT_EQ(line.at("policy").string, "warn");
    EXPECT_GE(line.at("idle_ms").number,
              0.9 * static_cast<double>(kTimeout.count()));
    EXPECT_GE(line.at("pending_nodes").number, 1.0);
    ASSERT_TRUE(line.has("registry"));  // embedded diagnostic snapshot
    EXPECT_TRUE(line.at("registry").has("metrics"));
  }
  EXPECT_TRUE(journaled);
  std::filesystem::remove(path);
}

TEST_F(Telemetry, WatchdogStaysQuietUnderHeavyLoad) {
  // 16 workers churning short tasks for several timeout windows: work is
  // pending on and off the whole time, but progress never stops, so a
  // healthy run must not trip the stall detector.
  WatchdogOptions opt;
  opt.policy = WatchdogPolicy::kWarn;
  opt.timeout = 60ms;
  Watchdog dog(opt);
  dog.start();

  parallel::ThreadPool pool(16);
  const auto until = std::chrono::steady_clock::now() + 400ms;
  while (std::chrono::steady_clock::now() < until) {
    pool.parallel_for(0, 256, [](long long i) {
      volatile double x = static_cast<double>(i);
      for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 1.0;
    });
  }
  dog.stop();
  EXPECT_EQ(dog.stalls_detected(), 0);
}

TEST_F(Telemetry, JournalCarriesProvenanceAndCheckFailures) {
  const auto path = temp_file("journal.jsonl");
  auto& journal = obs::journal::Journal::global();
  journal.open(path.string());
  journal.set_provenance("deadbeef123");
  obs::journal::install_check_hook();

  obs::journal::run_start("unit-run");
  obs::journal::checkpoint("ckpt_0001.bin", 0.25);
  const auto action0 = check::action();
  check::set_action(check::Action::kCount);
  check::fail("telemetry-test", "seeded violation", __FILE__, __LINE__);
  check::set_action(action0);
  check::set_failure_hook(nullptr);
  check::reset();
  obs::journal::run_end("unit-run");
  EXPECT_EQ(journal.events_written(), 4);
  journal.close();

  const auto lines = parse_jsonl(path);
  ASSERT_EQ(lines.size(), 4u);
  const std::vector<std::string> expected = {"run_start", "checkpoint",
                                             "check_failure", "run_end"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("schema").string, "rshc.journal");
    EXPECT_DOUBLE_EQ(lines[i].at("v").number, obs::journal::kSchemaVersion);
    EXPECT_EQ(lines[i].at("event").string, expected[i]);
    EXPECT_EQ(lines[i].at("git_sha").string, "deadbeef123");
    EXPECT_TRUE(lines[i].has("ts_ms"));
    EXPECT_TRUE(lines[i].has("rank"));
  }
  EXPECT_EQ(lines[1].at("path").string, "ckpt_0001.bin");
  EXPECT_DOUBLE_EQ(lines[1].at("t").number, 0.25);
  EXPECT_NE(lines[2].at("report").string.find("seeded violation"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(Telemetry, EnvParsingCoversPoliciesAndDefaults) {
  using obs::telemetry::parse_watchdog_policy;
  EXPECT_EQ(parse_watchdog_policy("off"), WatchdogPolicy::kOff);
  EXPECT_EQ(parse_watchdog_policy("0"), WatchdogPolicy::kOff);
  EXPECT_EQ(parse_watchdog_policy(""), WatchdogPolicy::kOff);
  EXPECT_EQ(parse_watchdog_policy("warn"), WatchdogPolicy::kWarn);
  EXPECT_EQ(parse_watchdog_policy("fatal"), WatchdogPolicy::kFatal);

  ::unsetenv("RSHC_TELEMETRY");
  ::unsetenv("RSHC_TELEMETRY_INTERVAL_MS");
  ::unsetenv("RSHC_TELEMETRY_OUT");
  const SamplerOptions sdef = obs::telemetry::sampler_options_from_env();
  EXPECT_TRUE(sdef.enabled);
  EXPECT_EQ(sdef.interval.count(), obs::telemetry::kDefaultIntervalMs);
  EXPECT_TRUE(sdef.jsonl_path.empty());
  EXPECT_FALSE(sdef.counter_tracks.empty());

  ::setenv("RSHC_TELEMETRY", "0", 1);
  ::setenv("RSHC_TELEMETRY_INTERVAL_MS", "37", 1);
  const SamplerOptions soff = obs::telemetry::sampler_options_from_env();
  EXPECT_FALSE(soff.enabled);
  EXPECT_EQ(soff.interval.count(), 37);
  ::unsetenv("RSHC_TELEMETRY");
  ::unsetenv("RSHC_TELEMETRY_INTERVAL_MS");

  ::unsetenv("RSHC_WATCHDOG");
  EXPECT_EQ(obs::telemetry::watchdog_options_from_env().policy,
            WatchdogPolicy::kOff);
  ::setenv("RSHC_WATCHDOG", "warn", 1);
  ::setenv("RSHC_WATCHDOG_TIMEOUT_MS", "123", 1);
  const WatchdogOptions wopt = obs::telemetry::watchdog_options_from_env();
  EXPECT_EQ(wopt.policy, WatchdogPolicy::kWarn);
  EXPECT_EQ(wopt.timeout.count(), 123);
  ::unsetenv("RSHC_WATCHDOG");
  ::unsetenv("RSHC_WATCHDOG_TIMEOUT_MS");
}

}  // namespace

#else  // !RSHC_OBS_ENABLED

namespace {

TEST(Telemetry, DisabledBuildStubsAreInert) {
  // The header stubs must be callable with zero effect under RSHC_OBS=OFF.
  rshc::obs::telemetry::Sampler sampler;
  sampler.start();
  sampler.sample_now();
  sampler.stop();
  EXPECT_EQ(sampler.samples_taken(), 0);
  rshc::obs::telemetry::Watchdog dog;
  dog.start();
  dog.stop();
  EXPECT_EQ(dog.stalls_detected(), 0);
  rshc::obs::journal::run_start("noop");
  EXPECT_EQ(rshc::obs::journal::Journal::global().events_written(), 0);
}

}  // namespace

#endif  // RSHC_OBS_ENABLED
