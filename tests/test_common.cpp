// Unit tests for the common utilities: math helpers, Table, Config,
// aligned storage, error macros.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rshc/common/aligned.hpp"
#include "rshc/common/config.hpp"
#include "rshc/common/error.hpp"
#include "rshc/common/math.hpp"
#include "rshc/common/table.hpp"
#include "rshc/common/timer.hpp"

namespace {

using namespace rshc;

TEST(Math, SignAndSquares) {
  EXPECT_EQ(sign(3.0), 1.0);
  EXPECT_EQ(sign(-2.5), -1.0);
  EXPECT_EQ(sign(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sq(-3.0), 9.0);
  EXPECT_DOUBLE_EQ(cube(-2.0), -8.0);
}

TEST(Math, MinmodBasics) {
  EXPECT_DOUBLE_EQ(minmod(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(minmod(-1.0, -3.0), -1.0);
  EXPECT_DOUBLE_EQ(minmod(1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(minmod(0.0, 5.0), 0.0);
}

TEST(Math, Minmod3TakesSmallestMagnitudeSameSign) {
  EXPECT_DOUBLE_EQ(minmod3(3.0, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(minmod3(-3.0, -2.0, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(minmod3(3.0, -2.0, 1.0), 0.0);
}

// Property sweep: every limiter returns a slope between 0 and the max
// argument magnitude, with the right sign.
class LimiterProperty : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LimiterProperty, SlopesAreBoundedAndSigned) {
  const auto [a, b] = GetParam();
  for (const double s : {minmod(a, b), mc_slope(a, b), van_leer_slope(a, b)}) {
    if (a * b <= 0.0) {
      EXPECT_DOUBLE_EQ(s, 0.0);
    } else {
      EXPECT_GE(s * sign(a), 0.0);
      EXPECT_LE(std::abs(s), 2.0 * std::max(std::abs(a), std::abs(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Slopes, LimiterProperty,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{1.0, 3.0},
                      std::pair{3.0, 1.0}, std::pair{-1.0, -0.5},
                      std::pair{1.0, -1.0}, std::pair{0.0, 1.0},
                      std::pair{1e-12, 1e12}, std::pair{-2.0, 2.0}));

TEST(Math, VanLeerIsHarmonicMean) {
  EXPECT_DOUBLE_EQ(van_leer_slope(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(van_leer_slope(2.0, 2.0), 2.0);
  EXPECT_NEAR(van_leer_slope(1.0, 3.0), 1.5, 1e-14);
}

TEST(Math, RelDiffAndClose) {
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_TRUE(close(1.0, 1.0 + 1e-15));
  EXPECT_FALSE(close(1.0, 1.001));
}

TEST(Error, RequireThrowsWithLocation) {
  try {
    RSHC_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(RSHC_REQUIRE(true, "never"));
}

TEST(Aligned, VectorDataIsCacheLineAligned) {
  aligned_vector<double> v(13, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
  v.resize(1027);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<double> a;
  AlignedAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(Config, ParsesTypedValues) {
  const Config cfg = Config::from_tokens({"n=42", "cfl=0.4", "name=weno5",
                                          "flag=true"});
  EXPECT_EQ(cfg.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("cfl", 0.0), 0.4);
  EXPECT_EQ(cfg.get_string("name", ""), "weno5");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_TRUE(cfg.has("n"));
}

TEST(Config, RejectsMalformedTokens) {
  EXPECT_THROW(Config::from_tokens({"novalue"}), Error);
  EXPECT_THROW(Config::from_tokens({"=x"}), Error);
  const Config cfg = Config::from_tokens({"n=abc"});
  EXPECT_THROW((void)cfg.get_int("n", 0), Error);
  EXPECT_THROW((void)cfg.get_double("n", 0.0), Error);
  EXPECT_THROW((void)cfg.get_bool("n", false), Error);
}

TEST(Config, FromArgsSkipsProgramName) {
  const char* argv[] = {"prog", "x=1"};
  const Config cfg = Config::from_args(2, argv);
  EXPECT_EQ(cfg.get_int("x", 0), 1);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(Table, PrintsAndRoundTripsCsv) {
  Table t({"name", "n", "err"});
  t.set_title("demo");
  t.add_row({std::string("weno5"), 128LL, 1.5e-3});
  t.add_row({std::string("plm"), 128LL, 4.2e-3});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(std::get<std::string>(t.cell(0, 0)), "weno5");
  EXPECT_EQ(std::get<long long>(t.cell(1, 1)), 128);

  std::ostringstream oss;
  t.print(oss);
  EXPECT_NE(oss.str().find("demo"), std::string::npos);
  EXPECT_NE(oss.str().find("weno5"), std::string::npos);

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_EQ(csv.str().substr(0, 11), "name,n,err\n");
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(Table({}), Error);
  Table t({"a"});
  EXPECT_THROW(t.add_row({1.0, 2.0}), Error);
  EXPECT_THROW((void)t.cell(0, 0), Error);
}

TEST(Timer, AccumulatesMonotonically) {
  WallTimer w;
  AccumTimer acc;
  acc.start();
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  acc.stop();
  EXPECT_GT(w.seconds(), 0.0);
  EXPECT_GT(acc.seconds(), 0.0);
  const double before = acc.seconds();
  acc.start();
  acc.stop();
  EXPECT_GE(acc.seconds(), before);
  acc.clear();
  EXPECT_EQ(acc.seconds(), 0.0);
}

TEST(Timer, AccumMisusePolicy) {
#ifndef NDEBUG
  // Debug builds: unpaired start/stop is an invariant violation.
  AccumTimer acc;
  EXPECT_THROW(acc.stop(), Error);  // stop without start
  acc.start();
  EXPECT_THROW(acc.start(), Error);  // start while running
  acc.stop();  // proper pairing still works afterwards
  EXPECT_GE(acc.seconds(), 0.0);
#else
  // NDEBUG builds: misuse is ignored and accumulates nothing.
  AccumTimer acc;
  acc.stop();
  EXPECT_EQ(acc.seconds(), 0.0);
  acc.start();
  acc.start();
  acc.stop();
  EXPECT_GE(acc.seconds(), 0.0);
#endif
}

}  // namespace
