// Pencil vs batched host-pipeline equivalence: the batched slab-wise rhs /
// RK update / con2prim / CFL path (DESIGN.md system #12) promises *bitwise*
// identical states to the per-pencil reference, for every reconstruction
// scheme, Riemann solver, physics system, and dimensionality — including
// the restricted-block (distributed per-rank) constructor. Any ulp of
// drift here means the batched path reassociated arithmetic or reordered
// an accumulation, which this suite exists to catch.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <tuple>

#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

constexpr double kPi = 3.14159265358979323846;

/// Count elements whose *bit patterns* differ (tolerates nothing, not even
/// -0.0 vs +0.0 or differing NaN payloads).
int count_bit_diffs(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) ++diffs;
  }
  return diffs;
}

/// Run `nsteps` fixed-dt steps under the pencil pipeline and under
/// `batched`, then require bitwise-equal cons and prim fields on every
/// block, an identical dt, and identical con2prim health counters.
template <typename Solver, typename Ic>
void expect_pipelines_identical(const mesh::Grid& g,
                                typename Solver::Options opt, const Ic& ic,
                                int nsteps, solver::HostPipeline batched) {
  opt.pipeline = solver::HostPipeline::kPencil;
  Solver ref(g, opt);
  ref.initialize(ic);
  opt.pipeline = batched;
  Solver s(g, opt);
  s.initialize(ic);

  const double dt = ref.compute_dt();
  EXPECT_EQ(dt, s.compute_dt()) << "batched compute_dt drifted";
  for (int n = 0; n < nsteps; ++n) {
    ref.step(dt);
    s.step(dt);
  }

  ASSERT_EQ(ref.num_blocks(), s.num_blocks());
  for (int b = 0; b < ref.num_blocks(); ++b) {
    EXPECT_EQ(count_bit_diffs(ref.block(b).cons().flat(),
                              s.block(b).cons().flat()),
              0)
        << "cons mismatch on block " << b;
    EXPECT_EQ(count_bit_diffs(ref.block(b).prim().flat(),
                              s.block(b).prim().flat()),
              0)
        << "prim mismatch on block " << b;
  }
  EXPECT_EQ(ref.c2p_stats().total_iterations, s.c2p_stats().total_iterations);
  EXPECT_EQ(ref.c2p_stats().floored_zones, s.c2p_stats().floored_zones);
}

/// SRHD workload with structure along every active axis: a shock-tube jump
/// in x riding on smooth transverse variations, so reconstruction,
/// limiting, and flux accumulation are all exercised per axis.
srhd::Prim srhd_ic(double x, double y, double z) {
  const bool left = x < 0.5;
  srhd::Prim p;
  p.rho = (left ? 1.0 : 0.125) + 0.05 * std::sin(2.0 * kPi * y) +
          0.05 * std::cos(2.0 * kPi * z);
  p.vx = left ? 0.1 : -0.1;
  p.vy = 0.05 * std::sin(2.0 * kPi * x);
  p.vz = 0.05 * std::cos(2.0 * kPi * y);
  p.p = (left ? 1.0 : 0.1) + 0.02 * std::sin(2.0 * kPi * (x + z));
  return p;
}

/// SRMHD analogue: Balsara-1-like jump plus transverse field structure.
srmhd::Prim srmhd_ic(double x, double y, double z) {
  const bool left = x < 0.5;
  srmhd::Prim p;
  p.rho = left ? 1.0 : 0.125;
  p.vx = 0.05 * std::sin(2.0 * kPi * y);
  p.vy = 0.05 * std::cos(2.0 * kPi * x);
  p.vz = 0.02 * std::sin(2.0 * kPi * z);
  p.p = left ? 1.0 : 0.1;
  p.bx = 0.5;
  p.by = (left ? 1.0 : -1.0) + 0.1 * std::sin(2.0 * kPi * z);
  p.bz = 0.1 * std::cos(2.0 * kPi * y);
  p.psi = 0.0;
  return p;
}

/// Grid + step count per dimensionality (small but multi-block in 1D/2D).
struct Case {
  mesh::Grid grid;
  std::array<int, 3> blocks;
  int nsteps;
};

Case make_case(int ndim) {
  switch (ndim) {
    case 1:
      return {mesh::Grid::make_1d(64, 0.0, 1.0), {2, 1, 1}, 4};
    case 2:
      return {mesh::Grid::make_2d(24, 16, 0.0, 1.0, 0.0, 1.0), {2, 2, 1}, 3};
    default:
      return {mesh::Grid(3, {12, 8, 8}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}),
              {1, 1, 1},
              2};
  }
}

using SrhdCombo = std::tuple<int, recon::Method, riemann::Solver>;

class RhsPipelineSrhd : public ::testing::TestWithParam<SrhdCombo> {};

TEST_P(RhsPipelineSrhd, BatchedMatchesPencilBitwise) {
  const auto [ndim, rm, rs] = GetParam();
  const Case c = make_case(ndim);
  solver::SrhdSolver::Options opt;
  opt.recon = rm;
  opt.cfl = 0.3;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.physics.riemann = rs;
  opt.blocks = c.blocks;
  expect_pipelines_identical<solver::SrhdSolver>(
      c.grid, opt, srhd_ic, c.nsteps, solver::HostPipeline::kBatchedSimd);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RhsPipelineSrhd,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),
        ::testing::Values(recon::Method::kPCM, recon::Method::kPLMMinmod,
                          recon::Method::kPLMMC, recon::Method::kPLMVanLeer,
                          recon::Method::kPPM, recon::Method::kWENO5),
        ::testing::Values(riemann::Solver::kLLF, riemann::Solver::kHLL,
                          riemann::Solver::kHLLC)));

using SrmhdCombo = std::tuple<int, recon::Method>;

class RhsPipelineSrmhd : public ::testing::TestWithParam<SrmhdCombo> {};

TEST_P(RhsPipelineSrmhd, BatchedMatchesPencilBitwise) {
  const auto [ndim, rm] = GetParam();
  const Case c = make_case(ndim);
  solver::SrmhdSolver::Options opt;
  opt.recon = rm;
  opt.cfl = 0.25;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.blocks = c.blocks;
  expect_pipelines_identical<solver::SrmhdSolver>(
      c.grid, opt, srmhd_ic, c.nsteps, solver::HostPipeline::kBatchedSimd);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RhsPipelineSrmhd,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),
        ::testing::Values(recon::Method::kPCM, recon::Method::kPLMMinmod,
                          recon::Method::kPLMMC, recon::Method::kPLMVanLeer,
                          recon::Method::kPPM, recon::Method::kWENO5)));

// The scalar batched variant must hit the same bits as well — it routes
// through the kernels::scalar TUs instead of kernels::simd.
TEST(RhsPipeline, BatchedScalarMatchesPencilBitwiseSrhd) {
  const Case c = make_case(2);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kWENO5;
  opt.cfl = 0.3;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.physics.riemann = riemann::Solver::kHLLC;
  opt.blocks = c.blocks;
  expect_pipelines_identical<solver::SrhdSolver>(
      c.grid, opt, srhd_ic, c.nsteps, solver::HostPipeline::kBatchedScalar);
}

TEST(RhsPipeline, BatchedScalarMatchesPencilBitwiseSrmhd) {
  const Case c = make_case(2);
  solver::SrmhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.25;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.blocks = c.blocks;
  expect_pipelines_identical<solver::SrmhdSolver>(
      c.grid, opt, srmhd_ic, c.nsteps, solver::HostPipeline::kBatchedScalar);
}

// Restricted-block construction (the distributed driver's per-rank view)
// must flow through the batched pipeline too. Both solvers own a single
// block covering the full grid and fill ghosts through the same manual
// physical-boundary filler.
TEST(RhsPipeline, RestrictedBlockBatchedMatchesPencil) {
  const mesh::Grid g = mesh::Grid::make_2d(20, 12, 0.0, 1.0, 0.0, 1.0);
  const mesh::BlockExtents sub{{0, 0, 0}, {20, 12, 1}};
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPPM;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.riemann = riemann::Solver::kHLL;

  auto make = [&](solver::HostPipeline p) {
    opt.pipeline = p;
    auto s = std::make_unique<solver::SrhdSolver>(g, opt, sub);
    solver::SrhdSolver* raw = s.get();
    s->set_ghost_filler([raw](int) {
      auto& blk = raw->block(0);
      for (int axis = 0; axis < 2; ++axis) {
        for (int side = 0; side < 2; ++side) {
          const auto negate = solver::SrhdPhysics::reflect_negate_vars(axis);
          mesh::apply_physical_boundary(blk, axis, side,
                                        mesh::BcType::kOutflow, negate);
        }
      }
    });
    s->initialize(srhd_ic);
    return s;
  };

  auto ref = make(solver::HostPipeline::kPencil);
  auto s = make(solver::HostPipeline::kBatchedSimd);
  const double dt = ref->compute_dt();
  EXPECT_EQ(dt, s->compute_dt());
  for (int n = 0; n < 3; ++n) {
    ref->step(dt);
    s->step(dt);
  }
  EXPECT_EQ(
      count_bit_diffs(ref->block(0).cons().flat(), s->block(0).cons().flat()),
      0);
  EXPECT_EQ(
      count_bit_diffs(ref->block(0).prim().flat(), s->block(0).prim().flat()),
      0);
}

}  // namespace
