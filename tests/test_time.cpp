// SSP Runge-Kutta integrators: coefficient identities and measured
// convergence order on a scalar ODE driven through the same stage loop the
// solver uses.

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/common/error.hpp"
#include "rshc/time/integrator.hpp"

namespace {

using namespace rshc::time;

class EveryIntegrator : public ::testing::TestWithParam<Integrator> {};

TEST_P(EveryIntegrator, CoefficientsAreConsistent) {
  // Consistency requires a + b = 1 at every stage (convex combination).
  const Integrator m = GetParam();
  for (int s = 0; s < num_stages(m); ++s) {
    const StageCoeffs c = stage_coeffs(m, s);
    EXPECT_NEAR(c.a + c.b, 1.0, 1e-15) << "stage " << s;
    EXPECT_GE(c.a, 0.0);
    EXPECT_GE(c.b, 0.0);
    EXPECT_GT(c.c, 0.0);
  }
}

TEST_P(EveryIntegrator, NameRoundTrips) {
  EXPECT_EQ(parse_integrator(integrator_name(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Integrators, EveryIntegrator,
                         ::testing::Values(Integrator::kEuler,
                                           Integrator::kSspRk2,
                                           Integrator::kSspRk3));

/// Integrate y' = -y from y(0) = 1 to t = 1 using the solver's stage-loop
/// structure; return |y - e^{-1}|.
double ode_error(Integrator m, int nsteps) {
  const double dt = 1.0 / nsteps;
  double y = 1.0;
  for (int step = 0; step < nsteps; ++step) {
    const double y0 = y;
    for (int s = 0; s < num_stages(m); ++s) {
      const StageCoeffs c = stage_coeffs(m, s);
      y = c.a * y0 + c.b * y + c.c * dt * (-y);
    }
  }
  return std::abs(y - std::exp(-1.0));
}

class OdeOrder
    : public ::testing::TestWithParam<std::pair<Integrator, double>> {};

TEST_P(OdeOrder, MeasuredOrderMatchesFormalOrder) {
  const auto [m, expected] = GetParam();
  const double e1 = ode_error(m, 40);
  const double e2 = ode_error(m, 80);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, expected, 0.15)
      << integrator_name(m) << " e1=" << e1 << " e2=" << e2;
}

INSTANTIATE_TEST_SUITE_P(
    Orders, OdeOrder,
    ::testing::Values(std::pair{Integrator::kEuler, 1.0},
                      std::pair{Integrator::kSspRk2, 2.0},
                      std::pair{Integrator::kSspRk3, 3.0}));

TEST(Integrator, FormalOrders) {
  EXPECT_EQ(formal_order(Integrator::kEuler), 1);
  EXPECT_EQ(formal_order(Integrator::kSspRk2), 2);
  EXPECT_EQ(formal_order(Integrator::kSspRk3), 3);
  EXPECT_EQ(num_stages(Integrator::kSspRk3), 3);
}

TEST(Integrator, ParseAliasesAndErrors) {
  EXPECT_EQ(parse_integrator("rk2"), Integrator::kSspRk2);
  EXPECT_EQ(parse_integrator("rk3"), Integrator::kSspRk3);
  EXPECT_THROW((void)parse_integrator("rk4"), rshc::Error);
}

TEST(Integrator, SspRk3MatchesShuOsherTableau) {
  // u1 = u0 + dt L;  u2 = 3/4 u0 + 1/4 (u1 + dt L(u1));
  // u  = 1/3 u0 + 2/3 (u2 + dt L(u2)).
  const StageCoeffs s1 = stage_coeffs(Integrator::kSspRk3, 1);
  EXPECT_DOUBLE_EQ(s1.a, 0.75);
  EXPECT_DOUBLE_EQ(s1.b, 0.25);
  EXPECT_DOUBLE_EQ(s1.c, 0.25);
  const StageCoeffs s2 = stage_coeffs(Integrator::kSspRk3, 2);
  EXPECT_DOUBLE_EQ(s2.a, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s2.b, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s2.c, 2.0 / 3.0);
}

}  // namespace
