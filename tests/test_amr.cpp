// Two-level mesh refinement: restriction/prolongation correctness, no
// coarse-fine boundary artifacts on trivial states, accuracy gain inside
// the refined region, and bounded conservation drift (no refluxing).

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/amr/two_level.hpp"
#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/common/error.hpp"
#include "rshc/problems/problems.hpp"

namespace {

using namespace rshc;
using amr::RefineRegion;
using amr::TwoLevelSrhdSolver;

solver::SrhdSolver::Options tube_opts() {
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

TEST(Amr, GeometryOfTheFineLevel) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  TwoLevelSrhdSolver s(g, tube_opts(), RefineRegion{{24, 0, 0}, {40, 1, 1}});
  EXPECT_EQ(s.fine().grid().extent(0), 32);  // 16 coarse cells x 2
  EXPECT_NEAR(s.fine().grid().xmin(0), 24.0 / 64.0, 1e-14);
  EXPECT_NEAR(s.fine().grid().xmax(0), 40.0 / 64.0, 1e-14);
  EXPECT_NEAR(s.fine().grid().dx(0), 0.5 * g.dx(0), 1e-15);
}

TEST(Amr, RegionValidation) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  EXPECT_THROW(TwoLevelSrhdSolver(g, tube_opts(),
                                  RefineRegion{{30, 0, 0}, {30, 1, 1}}),
               Error);  // empty
  EXPECT_THROW(TwoLevelSrhdSolver(g, tube_opts(),
                                  RefineRegion{{0, 0, 0}, {10, 1, 1}}),
               Error);  // touches the boundary
  EXPECT_THROW(TwoLevelSrhdSolver(g, tube_opts(),
                                  RefineRegion{{50, 0, 0}, {70, 1, 1}}),
               Error);  // past the grid
}

TEST(Amr, RestrictionAveragesFineOntoCoarse) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  TwoLevelSrhdSolver s(g, tube_opts(), RefineRegion{{24, 0, 0}, {40, 1, 1}});
  s.initialize([](double x, double, double) {
    return srhd::Prim{1.0 + x, 0.0, 0.0, 0.0, 1.0};
  });
  // Under the region, coarse D must equal the average of its two fine
  // cells' D (initialize() already ran restriction).
  const auto& fb = s.fine().block(0);
  for (long long gi = 24; gi < 40; ++gi) {
    const long long fi0 = (gi - 24) * 2;
    const double d_fine_avg =
        0.5 * (fb.cons()(srhd::kD, 0, 0, static_cast<int>(fi0) + fb.ghost(0)) +
               fb.cons()(srhd::kD, 0, 0, static_cast<int>(fi0) + 1 + fb.ghost(0)));
    // Locate the coarse cell through the public sampler.
    const auto p = s.coarse().prim_at(gi);
    const double W = p.lorentz();
    EXPECT_NEAR(p.rho * W, d_fine_avg, 1e-10) << "coarse cell " << gi;
  }
}

TEST(Amr, StaticGasProducesNoBoundaryArtifacts) {
  const mesh::Grid g = mesh::Grid::make_2d(32, 32, 0.0, 1.0, 0.0, 1.0);
  TwoLevelSrhdSolver s(g, tube_opts(),
                       RefineRegion{{10, 10, 0}, {22, 22, 1}});
  s.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  for (int i = 0; i < 8; ++i) s.step(s.compute_dt());
  for (const double r : s.gather_composite_var(srhd::kRho)) {
    EXPECT_NEAR(r, 1.0, 1e-11);
  }
  for (const double r : s.fine().gather_prim_var(srhd::kRho)) {
    EXPECT_NEAR(r, 1.0, 1e-11);
  }
}

TEST(Amr, SmoothWaveCrossesTheInterfaceStably) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  auto opt = tube_opts();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  TwoLevelSrhdSolver s(g, opt, RefineRegion{{24, 0, 0}, {40, 1, 1}});
  s.initialize(problems::smooth_wave_ic({}));
  const double mass0 = s.coarse().total_cons().d;
  s.advance_to(0.3);
  const auto rho = s.gather_composite_var(srhd::kRho);
  for (const double r : rho) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.5);
    EXPECT_LT(r, 1.5);
  }
  // No refluxing: conservation only to the boundary-flux mismatch, which
  // must stay at the truncation level.
  const double drift =
      std::abs(s.coarse().total_cons().d - mass0) / mass0;
  EXPECT_LT(drift, 2e-3);
}

TEST(Amr, RefinementImprovesShockAccuracyInRegion) {
  const problems::ShockTube st = problems::sod();
  auto opt = tube_opts();
  opt.physics.eos = eos::IdealGas(st.gamma);
  const mesh::Grid coarse_grid = mesh::Grid::make_1d(100, 0.0, 1.0);

  // Uniform coarse baseline.
  solver::SrhdSolver uniform(coarse_grid, opt);
  uniform.initialize(problems::shock_tube_ic(st));
  uniform.advance_to(st.t_final);

  // Refined run: region covering where the waves travel.
  TwoLevelSrhdSolver refined(coarse_grid, opt,
                             RefineRegion{{30, 0, 0}, {90, 1, 1}});
  refined.initialize(problems::shock_tube_ic(st));
  refined.advance_to(st.t_final);

  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  auto region_error = [&](solver::SrhdSolver& s) {
    double sum = 0.0;
    long long count = 0;
    for (long long i = 30; i < 90; ++i) {
      const double x = coarse_grid.cell_center(0, i);
      sum += std::abs(s.prim_at(i).rho -
                      exact.sample((x - st.x_split) / st.t_final).rho);
      ++count;
    }
    return sum / static_cast<double>(count);
  };
  const double e_uniform = region_error(uniform);
  const double e_refined = region_error(refined.coarse());
  EXPECT_LT(e_refined, 0.85 * e_uniform)
      << "uniform=" << e_uniform << " refined=" << e_refined;
}

TEST(Amr, AdaptiveRegionTracksTheShock) {
  // Sod tube with a deliberately off-target initial region: adaptivity
  // must move the refined region onto the wave structures.
  const problems::ShockTube st = problems::sod();
  auto opt = tube_opts();
  opt.physics.eos = eos::IdealGas(st.gamma);
  const mesh::Grid g = mesh::Grid::make_1d(128, 0.0, 1.0);
  TwoLevelSrhdSolver s(g, opt, RefineRegion{{8, 0, 0}, {24, 1, 1}});
  s.enable_adaptivity(/*interval=*/5, /*threshold=*/0.05, /*padding=*/4);
  s.initialize(problems::shock_tube_ic(st));
  s.advance_to(st.t_final);
  // At t=0.35 the contact sits near x ~ 0.65 and the shock near x ~ 0.8;
  // the rarefaction is smooth (per-cell jumps below threshold) so the
  // region legitimately ignores it. The region must have left its
  // off-target start and cover contact + shock.
  const double xlo = static_cast<double>(s.region().lo[0]) / 128.0;
  const double xhi = static_cast<double>(s.region().hi[0]) / 128.0;
  EXPECT_GT(xlo, 0.30);  // moved away from [0.06, 0.19)
  EXPECT_LT(xlo, 0.68);  // still covers the contact
  EXPECT_GT(xhi, 0.75);  // covers the shock
  // And the solution stayed physical through every regrid.
  for (const double r : s.gather_composite_var(srhd::kRho)) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(Amr, RegridTransfersFineDataOnOverlap) {
  // Manually trigger a regrid on a smooth state: where old and new
  // regions overlap, the fine data must be preserved exactly.
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  auto opt = tube_opts();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  TwoLevelSrhdSolver s(g, opt, RefineRegion{{20, 0, 0}, {36, 1, 1}});
  s.enable_adaptivity(/*interval=*/1000, /*threshold=*/0.02);
  s.initialize(problems::smooth_wave_ic({}));
  s.step(s.compute_dt());  // fine data now differs from a fresh prolongation
  const auto before = s.fine().gather_prim_var(srhd::kRho);
  const auto region_before = s.region();
  s.regrid_now();
  // The smooth sine flags a band around its steep flanks; whatever the new
  // region is, overlap cells must carry the old fine values.
  const auto& ng = s.fine().grid();
  const auto& og_lo = region_before.lo[0];
  const auto& og_hi = region_before.hi[0];
  int checked = 0;
  for (long long fi = 0; fi < ng.extent(0); ++fi) {
    const double x = ng.cell_center(0, fi);
    const long long coarse_cell =
        static_cast<long long>(std::floor(x * 64.0));
    if (coarse_cell < og_lo || coarse_cell >= og_hi) continue;
    // Old fine index of the same physical cell.
    const long long old_fi =
        static_cast<long long>(std::floor((x - static_cast<double>(og_lo) / 64.0) /
                                          (0.5 / 64.0)));
    if (old_fi < 0 ||
        old_fi >= static_cast<long long>(before.size())) {
      continue;
    }
    EXPECT_DOUBLE_EQ(s.fine().prim_at(fi).rho,
                     before[static_cast<std::size_t>(old_fi)])
        << "fine cell " << fi;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(Amr, AdaptiveBeatsStaticOffTargetRegion) {
  const problems::ShockTube st = problems::sod();
  auto opt = tube_opts();
  opt.physics.eos = eos::IdealGas(st.gamma);
  const mesh::Grid g = mesh::Grid::make_1d(128, 0.0, 1.0);
  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  auto run = [&](bool adaptive) {
    TwoLevelSrhdSolver s(g, opt, RefineRegion{{8, 0, 0}, {24, 1, 1}});
    if (adaptive) s.enable_adaptivity(5, 0.05, 4);
    s.initialize(problems::shock_tube_ic(st));
    s.advance_to(st.t_final);
    double sum = 0.0;
    for (long long i = 0; i < 128; ++i) {
      const double x = g.cell_center(0, i);
      sum += std::abs(s.coarse().prim_at(i).rho -
                      exact.sample((x - st.x_split) / st.t_final).rho);
    }
    return sum / 128.0;
  };
  const double e_static = run(false);
  const double e_adaptive = run(true);
  EXPECT_LT(e_adaptive, e_static)
      << "static=" << e_static << " adaptive=" << e_adaptive;
}

TEST(Amr, FineDtIsTheBindingOne) {
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  TwoLevelSrhdSolver s(g, tube_opts(), RefineRegion{{24, 0, 0}, {40, 1, 1}});
  s.initialize(problems::smooth_wave_ic({}));
  EXPECT_LE(s.compute_dt(), s.coarse().compute_dt());
  EXPECT_NEAR(s.compute_dt(), s.fine().compute_dt(), 1e-15);
}

}  // namespace
