// Unit tests for the observability layer: metric semantics, lock-free
// multi-threaded accumulation, snapshot isolation, and the Chrome
// trace-event exporter (parsed back with a minimal JSON reader).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rshc/obs/obs.hpp"

namespace {

using namespace rshc;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader — just enough to parse the tracer's
// own output ({"traceEvents":[{...},...]}): objects, arrays, strings with
// simple escapes, and doubles.

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue null_value;
    const auto it = object.find(key);
    return it != object.end() ? it->second : null_value;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text)
      : owned_(std::move(text)), text_(owned_) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      return parse_number();
    }
    fail("unexpected character");
    return {};
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (!consume('{')) fail("expected '{'");
    if (consume('}')) return v;
    do {
      JsonValue key = parse_string();
      if (!consume(':')) fail("expected ':'");
      v.object.emplace(key.string, parse_value());
    } while (consume(','));
    if (!consume('}')) fail("expected '}'");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (!consume('[')) fail("expected '['");
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    if (!consume(']')) fail("expected ']'");
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!consume('"')) fail("expected '\"'");
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        c = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
      }
      v.string.push_back(c);
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    } else {
      ++pos_;  // closing quote
    }
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    v.number = std::strtod(begin, &end);
    if (end == begin) fail("bad number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string owned_;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------

/// Every obs test starts from a clean global registry/tracer and restores
/// the default switches (metrics on, tracing off) afterwards — the
/// singletons are process-wide and other suites share them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(false);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::set_enabled(true);
    obs::Tracer::global().set_ring_capacity(65536);
    obs::Tracer::global().clear();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  auto& c = obs::Registry::global().counter("t.counter");
  EXPECT_EQ(c.total(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42);
  // Same name returns the same metric.
  EXPECT_EQ(&obs::Registry::global().counter("t.counter"), &c);
  c.reset();
  EXPECT_EQ(c.total(), 0);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  auto& g = obs::Registry::global().gauge("t.gauge");
  g.set(3.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, TimeHistStatisticsAndBins) {
  auto& h = obs::Registry::global().timer("t.hist");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);  // empty
  h.record_ns(1000);
  h.record_ns(3000);
  h.record_ns(500);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 4500e-9);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 500e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 3000e-9);

  // Bin i covers [2^i, 2^(i+1)) ns.
  EXPECT_EQ(obs::TimeHist::bin_index(0), 0u);
  EXPECT_EQ(obs::TimeHist::bin_index(1), 0u);
  EXPECT_EQ(obs::TimeHist::bin_index(1023), 9u);
  EXPECT_EQ(obs::TimeHist::bin_index(1024), 10u);
  EXPECT_EQ(obs::TimeHist::bin_index(std::int64_t{1} << 62),
            obs::TimeHist::kNumBins - 1);  // clamped open-ended last bin
  const auto bins = h.bins();
  std::int64_t binned = 0;
  for (const auto b : bins) binned += b;
  EXPECT_EQ(binned, 3);
  EXPECT_EQ(bins[obs::TimeHist::bin_index(500)], 1);

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST_F(ObsTest, NegativeDurationsClampToZero) {
  auto& h = obs::Registry::global().timer("t.hist.neg");
  h.record_ns(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
}

TEST_F(ObsTest, MultiThreadedAccumulationIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  auto& c = obs::Registry::global().counter("t.mt.counter");
  auto& h = obs::Registry::global().timer("t.mt.hist");
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c, &h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          c.add();
          h.record_ns(t + 1);  // per-thread distinct value
        }
      });
    }
  }
  EXPECT_EQ(c.total(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), kThreads * 1e-9);
}

TEST_F(ObsTest, SnapshotIsIsolatedFromLaterUpdates) {
  auto& c = obs::Registry::global().counter("t.snap.counter");
  c.add(7);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  c.add(100);  // must not retro-modify the snapshot
  const auto* e = snap.find("t.snap.counter");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, "counter");
  EXPECT_DOUBLE_EQ(e->value, 7.0);
  EXPECT_DOUBLE_EQ(snap.value_or("t.snap.counter"), 7.0);
  EXPECT_DOUBLE_EQ(snap.value_or("no.such.metric", -1.0), -1.0);
  EXPECT_EQ(snap.find("no.such.metric"), nullptr);
}

TEST_F(ObsTest, SnapshotSerializesSortedCsvAndJson) {
  obs::Registry::global().counter("t.ser.b").add(2);
  obs::Registry::global().counter("t.ser.a").add(1);
  obs::Registry::global().timer("t.ser.t").record_ns(1500);
  const obs::Snapshot snap = obs::Registry::global().snapshot();

  // Entries come back sorted by name.
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LE(snap.entries[i - 1].name, snap.entries[i].name);
  }

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.substr(0, 30), "name,kind,count,value,min,max\n");
  EXPECT_NE(csv.find("t.ser.a,counter,0,1"), std::string::npos);
  EXPECT_NE(csv.find("t.ser.t,timer,1,"), std::string::npos);

  JsonParser parser(snap.to_json());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const auto& metrics = root.at("metrics");
  ASSERT_EQ(metrics.kind, JsonValue::Kind::kArray);
  bool saw_timer = false;
  for (const auto& m : metrics.array) {
    if (m.at("name").string == "t.ser.t") {
      saw_timer = true;
      EXPECT_EQ(m.at("kind").string, "timer");
      EXPECT_DOUBLE_EQ(m.at("count").number, 1.0);
      EXPECT_EQ(m.at("bins").array.size(), obs::TimeHist::kNumBins);
    }
  }
  EXPECT_TRUE(saw_timer);
}

TEST_F(ObsTest, RuntimeDisableStopsAccumulationViaMacros) {
#if RSHC_OBS_ENABLED
  RSHC_OBS_COUNT("t.macro.counter", 1);
  obs::set_enabled(false);
  RSHC_OBS_COUNT("t.macro.counter", 1);  // gated off
  obs::set_enabled(true);
  RSHC_OBS_COUNT("t.macro.counter", 1);
  EXPECT_EQ(obs::Registry::global().counter("t.macro.counter").total(), 2);
#else
  RSHC_OBS_COUNT("t.macro.counter", 1);  // compiles to nothing
  EXPECT_EQ(obs::Registry::global().counter("t.macro.counter").total(), 0);
#endif
}

TEST_F(ObsTest, TracingRequiresMasterSwitch) {
  obs::set_tracing(true);
  EXPECT_TRUE(obs::tracing_active());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::tracing_active());
  obs::set_enabled(true);
  obs::set_tracing(false);
  EXPECT_FALSE(obs::tracing_active());
}

TEST_F(ObsTest, TraceScopeRecordsNestedSpans) {
  obs::set_tracing(true);
  {
    obs::TraceScope outer("t.outer", "test", 1);
    {
      obs::TraceScope inner("t.inner", "test", 2);
    }
  }
  obs::set_tracing(false);
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by begin time: outer opens first, closes last.
  EXPECT_STREQ(events[0].name, "t.outer");
  EXPECT_STREQ(events[1].name, "t.inner");
  EXPECT_LE(events[0].t0_ns, events[1].t0_ns);
  EXPECT_GE(events[0].t1_ns, events[1].t1_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].id, 1);
}

TEST_F(ObsTest, ScopesArmedBeforeDisableStillComplete) {
  obs::set_tracing(true);
  {
    obs::TraceScope s("t.straddle", "test");
    obs::set_tracing(false);  // span was armed at construction
  }
  EXPECT_EQ(obs::Tracer::global().events().size(), 1u);
}

TEST_F(ObsTest, ChromeJsonIsWellFormedAndNested) {
  obs::set_tracing(true);
  {
    obs::TraceScope outer("t.json.outer", "test", 7);
    obs::TraceScope inner("t.json.inner", "test");
  }
  std::jthread([] {
    obs::TraceScope other("t.json.other_thread", "test");
  }).join();
  obs::set_tracing(false);

  std::ostringstream os;
  obs::Tracer::global().write_chrome_json(os);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();

  const auto& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.array.size(), 3u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* other = nullptr;
  for (const auto& e : events.array) {
    // Every event is a Chrome "complete" event with the required keys.
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_EQ(e.at("cat").string, "test");
    EXPECT_GE(e.at("dur").number, 0.0);
    const std::string& name = e.at("name").string;
    if (name == "t.json.outer") outer = &e;
    if (name == "t.json.inner") inner = &e;
    if (name == "t.json.other_thread") other = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);

  // Inner nests inside outer on the same track (ts in microseconds).
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_LE(outer->at("ts").number, inner->at("ts").number);
  EXPECT_GE(outer->at("ts").number + outer->at("dur").number,
            inner->at("ts").number + inner->at("dur").number);
  // The other thread gets its own track, and the id argument survives.
  EXPECT_NE(other->at("tid").number, outer->at("tid").number);
  EXPECT_DOUBLE_EQ(outer->at("args").at("id").number, 7.0);
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDrops) {
  obs::Tracer::global().set_ring_capacity(16);
  const std::uint64_t dropped_before = obs::Tracer::global().dropped();
  obs::set_tracing(true);
  for (int i = 0; i < 100; ++i) {
    obs::TraceScope s("t.ring", "test", i);
  }
  obs::set_tracing(false);
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(obs::Tracer::global().dropped() - dropped_before, 84u);
  // The survivors are the newest 16 spans, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::int64_t>(84 + i));
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    obs::TraceScope s("t.off", "test");  // tracing off in SetUp
  }
  EXPECT_TRUE(obs::Tracer::global().events().empty());
}

}  // namespace
