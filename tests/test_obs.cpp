// Unit tests for the observability layer: metric semantics, lock-free
// multi-threaded accumulation, percentile estimation, snapshot isolation,
// registry scoping, and the Chrome trace-event exporter (parsed back with
// the shared minimal JSON reader and checked by the trace validator).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rshc/obs/obs.hpp"
#include "support/json_mini.hpp"
#include "support/trace_validator.hpp"

namespace {

using namespace rshc;
using testsupport::JsonParser;
using testsupport::JsonValue;

/// Every obs test starts from a clean global registry/tracer and restores
/// the default switches (metrics on, tracing off) afterwards — the
/// singletons are process-wide and other suites share them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(false);
    obs::Registry::global().reset();
    obs::Tracer::global().clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::set_enabled(true);
    obs::Tracer::global().set_ring_capacity(65536);
    obs::Tracer::global().clear();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  auto& c = obs::Registry::global().counter("t.counter");
  EXPECT_EQ(c.total(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42);
  // Same name returns the same metric.
  EXPECT_EQ(&obs::Registry::global().counter("t.counter"), &c);
  c.reset();
  EXPECT_EQ(c.total(), 0);
}

TEST_F(ObsTest, GaugeIsLastWriteWins) {
  auto& g = obs::Registry::global().gauge("t.gauge");
  g.set(3.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, TimeHistStatisticsAndBins) {
  auto& h = obs::Registry::global().timer("t.hist");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);  // empty
  h.record_ns(1000);
  h.record_ns(3000);
  h.record_ns(500);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 4500e-9);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 500e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 3000e-9);

  // Bin i covers [2^i, 2^(i+1)) ns.
  EXPECT_EQ(obs::TimeHist::bin_index(0), 0u);
  EXPECT_EQ(obs::TimeHist::bin_index(1), 0u);
  EXPECT_EQ(obs::TimeHist::bin_index(1023), 9u);
  EXPECT_EQ(obs::TimeHist::bin_index(1024), 10u);
  EXPECT_EQ(obs::TimeHist::bin_index(std::int64_t{1} << 62),
            obs::TimeHist::kNumBins - 1);  // clamped open-ended last bin
  const auto bins = h.bins();
  std::int64_t binned = 0;
  for (const auto b : bins) binned += b;
  EXPECT_EQ(binned, 3);
  EXPECT_EQ(bins[obs::TimeHist::bin_index(500)], 1);

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST_F(ObsTest, NegativeDurationsClampToZero) {
  auto& h = obs::Registry::global().timer("t.hist.neg");
  h.record_ns(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
}

TEST_F(ObsTest, MultiThreadedAccumulationIsExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  auto& c = obs::Registry::global().counter("t.mt.counter");
  auto& h = obs::Registry::global().timer("t.mt.hist");
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c, &h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          c.add();
          h.record_ns(t + 1);  // per-thread distinct value
        }
      });
    }
  }
  EXPECT_EQ(c.total(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), kThreads * 1e-9);
}

TEST_F(ObsTest, SnapshotIsIsolatedFromLaterUpdates) {
  auto& c = obs::Registry::global().counter("t.snap.counter");
  c.add(7);
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  c.add(100);  // must not retro-modify the snapshot
  const auto* e = snap.find("t.snap.counter");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, "counter");
  EXPECT_DOUBLE_EQ(e->value, 7.0);
  EXPECT_DOUBLE_EQ(snap.value_or("t.snap.counter"), 7.0);
  EXPECT_DOUBLE_EQ(snap.value_or("no.such.metric", -1.0), -1.0);
  EXPECT_EQ(snap.find("no.such.metric"), nullptr);
}

TEST_F(ObsTest, SnapshotSerializesSortedCsvAndJson) {
  obs::Registry::global().counter("t.ser.b").add(2);
  obs::Registry::global().counter("t.ser.a").add(1);
  obs::Registry::global().timer("t.ser.t").record_ns(1500);
  const obs::Snapshot snap = obs::Registry::global().snapshot();

  // Entries come back sorted by name.
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LE(snap.entries[i - 1].name, snap.entries[i].name);
  }

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n') + 1),
            "name,kind,count,value,min,max,p50,p90,p99\n");
  EXPECT_NE(csv.find("t.ser.a,counter,0,1"), std::string::npos);
  EXPECT_NE(csv.find("t.ser.t,timer,1,"), std::string::npos);

  JsonParser parser(snap.to_json());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const auto& metrics = root.at("metrics");
  ASSERT_EQ(metrics.kind, JsonValue::Kind::kArray);
  bool saw_timer = false;
  for (const auto& m : metrics.array) {
    if (m.at("name").string == "t.ser.t") {
      saw_timer = true;
      EXPECT_EQ(m.at("kind").string, "timer");
      EXPECT_DOUBLE_EQ(m.at("count").number, 1.0);
      EXPECT_EQ(m.at("bins").array.size(), obs::TimeHist::kNumBins);
      // A single sample collapses every percentile onto that sample.
      EXPECT_DOUBLE_EQ(m.at("p50").number, 1500e-9);
      EXPECT_DOUBLE_EQ(m.at("p90").number, 1500e-9);
      EXPECT_DOUBLE_EQ(m.at("p99").number, 1500e-9);
    }
  }
  EXPECT_TRUE(saw_timer);
}

TEST_F(ObsTest, RuntimeDisableStopsAccumulationViaMacros) {
#if RSHC_OBS_ENABLED
  RSHC_OBS_COUNT("t.macro.counter", 1);
  obs::set_enabled(false);
  RSHC_OBS_COUNT("t.macro.counter", 1);  // gated off
  obs::set_enabled(true);
  RSHC_OBS_COUNT("t.macro.counter", 1);
  EXPECT_EQ(obs::Registry::global().counter("t.macro.counter").total(), 2);
#else
  RSHC_OBS_COUNT("t.macro.counter", 1);  // compiles to nothing
  EXPECT_EQ(obs::Registry::global().counter("t.macro.counter").total(), 0);
#endif
}

TEST_F(ObsTest, TracingRequiresMasterSwitch) {
  obs::set_tracing(true);
  EXPECT_TRUE(obs::tracing_active());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::tracing_active());
  obs::set_enabled(true);
  obs::set_tracing(false);
  EXPECT_FALSE(obs::tracing_active());
}

TEST_F(ObsTest, TraceScopeRecordsNestedSpans) {
  obs::set_tracing(true);
  {
    obs::TraceScope outer("t.outer", "test", 1);
    {
      obs::TraceScope inner("t.inner", "test", 2);
    }
  }
  obs::set_tracing(false);
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by begin time: outer opens first, closes last.
  EXPECT_STREQ(events[0].name, "t.outer");
  EXPECT_STREQ(events[1].name, "t.inner");
  EXPECT_LE(events[0].t0_ns, events[1].t0_ns);
  EXPECT_GE(events[0].t1_ns, events[1].t1_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].id, 1);
}

TEST_F(ObsTest, ScopesArmedBeforeDisableStillComplete) {
  obs::set_tracing(true);
  {
    obs::TraceScope s("t.straddle", "test");
    obs::set_tracing(false);  // span was armed at construction
  }
  EXPECT_EQ(obs::Tracer::global().events().size(), 1u);
}

TEST_F(ObsTest, ChromeJsonIsWellFormedAndNested) {
  obs::set_tracing(true);
  {
    obs::TraceScope outer("t.json.outer", "test", 7);
    obs::TraceScope inner("t.json.inner", "test");
  }
  std::jthread([] {
    obs::TraceScope other("t.json.other_thread", "test");
  }).join();
  obs::set_tracing(false);

  std::ostringstream os;
  obs::Tracer::global().write_chrome_json(os);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();

  const auto& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  // The structural contract (metadata first, monotone ts, nesting, named
  // tracks) is checked wholesale by the shared validator.
  const auto problems = testsupport::validate_chrome_trace(root);
  EXPECT_TRUE(problems.empty()) << ::testing::PrintToString(problems);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* other = nullptr;
  std::size_t spans = 0;
  std::size_t metas = 0;
  for (const auto& e : events.array) {
    if (e.at("ph").string == "M") {
      ++metas;
      continue;
    }
    ++spans;
    // Every span is a Chrome "complete" event with the required keys.
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    EXPECT_EQ(e.at("cat").string, "test");
    EXPECT_GE(e.at("dur").number, 0.0);
    const std::string& name = e.at("name").string;
    if (name == "t.json.outer") outer = &e;
    if (name == "t.json.inner") inner = &e;
    if (name == "t.json.other_thread") other = &e;
  }
  EXPECT_EQ(spans, 3u);
  // One process_name (default pid 0) plus one thread_name per track.
  EXPECT_EQ(metas, 3u);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);

  // Inner nests inside outer on the same track (ts in microseconds).
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_LE(outer->at("ts").number, inner->at("ts").number);
  EXPECT_GE(outer->at("ts").number + outer->at("dur").number,
            inner->at("ts").number + inner->at("dur").number);
  // The other thread gets its own track, and the id argument survives.
  EXPECT_NE(other->at("tid").number, outer->at("tid").number);
  EXPECT_DOUBLE_EQ(outer->at("args").at("id").number, 7.0);
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDrops) {
  obs::Tracer::global().set_ring_capacity(16);
  const std::uint64_t dropped_before = obs::Tracer::global().dropped();
  obs::set_tracing(true);
  for (int i = 0; i < 100; ++i) {
    obs::TraceScope s("t.ring", "test", i);
  }
  obs::set_tracing(false);
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(obs::Tracer::global().dropped() - dropped_before, 84u);
  // The survivors are the newest 16 spans, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::int64_t>(84 + i));
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    obs::TraceScope s("t.off", "test");  // tracing off in SetUp
  }
  EXPECT_TRUE(obs::Tracer::global().events().empty());
}

// --- percentiles -----------------------------------------------------------

TEST_F(ObsTest, PercentileFromBinsInterpolatesWithinBin) {
  std::vector<std::int64_t> bins(obs::TimeHist::kNumBins, 0);
  // Ten samples somewhere in bin 4 = [16, 32) ns.
  bins[4] = 10;
  const auto p = [&bins](double q, double min_s, double max_s) {
    return obs::TimeHist::percentile_from_bins(
        std::span<const std::int64_t>(bins), q, min_s, max_s);
  };
  // target = q*total ranks into the bin: lo + frac * (hi - lo).
  EXPECT_DOUBLE_EQ(p(0.5, 0.0, 1.0), 24e-9);   // frac 0.5 of [16, 32)
  EXPECT_DOUBLE_EQ(p(0.0, 0.0, 1.0), 16e-9);   // bin lower edge
  EXPECT_DOUBLE_EQ(p(1.0, 0.0, 30e-9), 30e-9);  // clamped to exact max

  // Split across two bins: 5 in [16,32), 5 in [32,64).
  bins[4] = 5;
  bins[5] = 5;
  EXPECT_DOUBLE_EQ(p(0.9, 0.0, 1.0), (32.0 + 0.8 * 32.0) * 1e-9);

  // Empty histogram reports 0 for every percentile.
  std::vector<std::int64_t> empty(obs::TimeHist::kNumBins, 0);
  EXPECT_DOUBLE_EQ(obs::TimeHist::percentile_from_bins(
                       std::span<const std::int64_t>(empty), 0.5, 0.0, 1.0),
                   0.0);
}

TEST_F(ObsTest, PercentilesCollapseOnPointMass) {
  // Every sample identical: the [min, max] clamp must make all three
  // percentiles exact, regardless of where the bin edges fall.
  auto& h = obs::Registry::global().timer("t.pct.point");
  for (int i = 0; i < 100; ++i) h.record_ns(1500);
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.50), 1500e-9);
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.90), 1500e-9);
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.99), 1500e-9);
}

TEST_F(ObsTest, PercentilesAreOrderedAndWithinLogBinTolerance) {
  auto& h = obs::Registry::global().timer("t.pct.uniform");
  for (int i = 1; i <= 1000; ++i) h.record_ns(i * 1000);  // 1..1000 us
  const double p50 = h.percentile_seconds(0.50);
  const double p90 = h.percentile_seconds(0.90);
  const double p99 = h.percentile_seconds(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, h.min_seconds());
  EXPECT_LE(p99, h.max_seconds());
  // Power-of-two bins bound the interpolation error by 2x either way.
  EXPECT_GE(p50, 0.5 * 500e-6);
  EXPECT_LE(p50, 2.0 * 500e-6);
  EXPECT_GE(p99, 0.5 * 990e-6);

  // The snapshot carries the same numbers.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const auto* e = snap.find("t.pct.uniform");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->p50, p50);
  EXPECT_DOUBLE_EQ(e->p90, p90);
  EXPECT_DOUBLE_EQ(e->p99, p99);
}

// --- flow events and rank labels -------------------------------------------

TEST_F(ObsTest, FlowEventsPairAcrossThreads) {
  obs::set_tracing(true);
  std::uint64_t id = 0;
  {
    obs::TraceScope send("t.flow.send", "test");
    id = obs::flow_begin("t.flow", "test");
  }
  EXPECT_NE(id, 0u);
  std::jthread([id] {
    obs::set_thread_rank(1);
    obs::TraceScope recv("t.flow.recv", "test");
    obs::flow_end("t.flow", "test", id);
  }).join();
  obs::set_tracing(false);

  std::ostringstream os;
  obs::Tracer::global().write_chrome_json(os);
  JsonParser parser(os.str());
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const auto problems = testsupport::validate_chrome_trace(root);
  EXPECT_TRUE(problems.empty()) << ::testing::PrintToString(problems);

  const JsonValue* start = nullptr;
  const JsonValue* finish = nullptr;
  for (const auto& e : root.at("traceEvents").array) {
    if (e.at("ph").string == "s") start = &e;
    if (e.at("ph").string == "f") finish = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_DOUBLE_EQ(start->at("id").number, finish->at("id").number);
  EXPECT_EQ(finish->at("bp").string, "e");
  // The receiver ran under rank 1, so the arrow crosses process tracks.
  EXPECT_DOUBLE_EQ(start->at("pid").number, 0.0);
  EXPECT_DOUBLE_EQ(finish->at("pid").number, 1.0);
}

TEST_F(ObsTest, FlowBeginWhileDisabledReturnsZeroAndRecordsNothing) {
  const std::uint64_t id = obs::flow_begin("t.flow.off", "test");
  EXPECT_EQ(id, 0u);
  obs::flow_end("t.flow.off", "test", id);  // id 0 must be ignored
  EXPECT_TRUE(obs::Tracer::global().events().empty());
}

TEST_F(ObsTest, ThreadRankLabelsSpanPid) {
  obs::set_tracing(true);
  std::jthread([] {
    obs::set_thread_rank(3);
    obs::TraceScope s("t.rank", "test");
  }).join();
  obs::set_tracing(false);
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pid, 3);
}

// --- registry scoping ------------------------------------------------------

TEST_F(ObsTest, ScopedRegistryRoutesMacrosAndRestores) {
#if RSHC_OBS_ENABLED
  obs::Registry local;
  {
    obs::ScopedRegistry scope(local);
    EXPECT_EQ(obs::Registry::scoped(), &local);
    RSHC_OBS_COUNT("t.scoped.counter", 5);
    RSHC_OBS_GAUGE("t.scoped.gauge", 2.5);
    { RSHC_OBS_PHASE("t.scoped.phase", "test", -1); }
  }
  EXPECT_EQ(obs::Registry::scoped(), nullptr);
  RSHC_OBS_COUNT("t.scoped.counter", 2);  // back on the global path

  EXPECT_EQ(local.counter("t.scoped.counter").total(), 5);
  EXPECT_DOUBLE_EQ(local.gauge("t.scoped.gauge").value(), 2.5);
  EXPECT_EQ(local.timer("t.scoped.phase").count(), 1);
  EXPECT_EQ(obs::Registry::global().counter("t.scoped.counter").total(), 2);
  EXPECT_EQ(obs::Registry::global().timer("t.scoped.phase").count(), 0);
#else
  GTEST_SKIP() << "macros compiled out with RSHC_OBS=OFF";
#endif
}

TEST_F(ObsTest, ScopedRegistriesNest) {
  obs::Registry outer_reg;
  obs::Registry inner_reg;
  {
    obs::ScopedRegistry outer(outer_reg);
    {
      obs::ScopedRegistry inner(inner_reg);
      EXPECT_EQ(obs::Registry::scoped(), &inner_reg);
    }
    EXPECT_EQ(obs::Registry::scoped(), &outer_reg);
  }
  EXPECT_EQ(obs::Registry::scoped(), nullptr);
}

}  // namespace
