// Riemann solvers: consistency, upwinding, mirror symmetry, and ordering
// of numerical dissipation across LLF / HLL / HLLC.

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/riemann/riemann.hpp"

namespace {

using namespace rshc;
using riemann::Solver;

const eos::IdealGas kEos(5.0 / 3.0);
const eos::IdealGas kEosMhd(5.0 / 3.0);

srhd::Prim prim(double rho, double vx, double vy, double p) {
  return srhd::Prim{rho, vx, vy, 0.0, p};
}

class EverySolver : public ::testing::TestWithParam<Solver> {};

TEST_P(EverySolver, ConsistencyWithPhysicalFlux) {
  // F(w, w) must equal the exact physical flux for any state.
  for (const auto& w :
       {prim(1.0, 0.0, 0.0, 1.0), prim(2.0, 0.5, -0.3, 0.1),
        prim(0.1, -0.9, 0.0, 10.0)}) {
    for (int axis = 0; axis < 2; ++axis) {
      const srhd::Cons u = srhd::prim_to_cons(w, kEos);
      const srhd::Cons exact = srhd::flux(w, u, axis);
      const srhd::Cons numerical =
          riemann::solve_srhd(GetParam(), w, w, axis, kEos);
      auto tol = [](double x) { return 1e-11 * std::max(1.0, std::abs(x)); };
      EXPECT_NEAR(numerical.d, exact.d, tol(exact.d));
      EXPECT_NEAR(numerical.sx, exact.sx, tol(exact.sx));
      EXPECT_NEAR(numerical.sy, exact.sy, tol(exact.sy));
      EXPECT_NEAR(numerical.tau, exact.tau, tol(exact.tau));
    }
  }
}

TEST_P(EverySolver, SupersonicFlowIsPureUpwind) {
  // Both states moving right faster than every wave: HLL-family solvers
  // return the pure left flux. LLF always carries its |lambda_max| jump
  // dissipation, so it only gets a boundedness check here.
  const auto wl = prim(1.0, 0.95, 0.0, 1e-3);
  const auto wr = prim(0.5, 0.95, 0.0, 1e-3);
  const srhd::Cons ul = srhd::prim_to_cons(wl, kEos);
  const srhd::Cons fl = srhd::flux(wl, ul, 0);
  const srhd::Cons f = riemann::solve_srhd(GetParam(), wl, wr, 0, kEos);
  if (GetParam() == Solver::kLLF) {
    EXPECT_GT(f.d, 0.0);  // still transports rightwards
    EXPECT_TRUE(std::isfinite(f.tau));
    return;
  }
  EXPECT_NEAR(f.d, fl.d, 1e-12);
  EXPECT_NEAR(f.sx, fl.sx, 1e-12);
  EXPECT_NEAR(f.tau, fl.tau, 1e-12);
}

TEST_P(EverySolver, MirrorSymmetry) {
  // Reflecting the problem (x -> -x) must negate the mass flux.
  const auto wl = prim(1.0, 0.2, 0.0, 1.0);
  const auto wr = prim(0.5, -0.1, 0.0, 0.3);
  auto mirror = [](srhd::Prim w) {
    w.vx = -w.vx;
    return w;
  };
  const srhd::Cons f = riemann::solve_srhd(GetParam(), wl, wr, 0, kEos);
  const srhd::Cons g =
      riemann::solve_srhd(GetParam(), mirror(wr), mirror(wl), 0, kEos);
  EXPECT_NEAR(f.d, -g.d, 1e-12);
  EXPECT_NEAR(f.sx, g.sx, 1e-12);   // momentum flux is even
  EXPECT_NEAR(f.tau, -g.tau, 1e-12);
}

TEST_P(EverySolver, AxisPermutationConsistency) {
  // Swapping the flow into y must give the same flux with sx<->sy.
  const auto wl = prim(1.0, 0.3, 0.0, 1.0);
  const auto wr = prim(0.5, -0.2, 0.0, 0.4);
  srhd::Prim wl_y = wl;
  std::swap(wl_y.vx, wl_y.vy);
  srhd::Prim wr_y = wr;
  std::swap(wr_y.vx, wr_y.vy);
  const srhd::Cons fx = riemann::solve_srhd(GetParam(), wl, wr, 0, kEos);
  const srhd::Cons fy =
      riemann::solve_srhd(GetParam(), wl_y, wr_y, 1, kEos);
  EXPECT_NEAR(fx.d, fy.d, 1e-12);
  EXPECT_NEAR(fx.sx, fy.sy, 1e-12);
  EXPECT_NEAR(fx.tau, fy.tau, 1e-12);
}

TEST_P(EverySolver, NameRoundTrips) {
  EXPECT_EQ(riemann::parse_solver(riemann::solver_name(GetParam())),
            GetParam());
}

INSTANTIATE_TEST_SUITE_P(Solvers, EverySolver,
                         ::testing::Values(Solver::kLLF, Solver::kHLL,
                                           Solver::kHLLC, Solver::kExact));

TEST(Riemann, ExactGodunovResolvesContactExactly) {
  const auto wl = prim(10.0, 0.0, 0.0, 1.0);
  const auto wr = prim(1.0, 0.0, 0.0, 1.0);
  const srhd::Cons f = riemann::solve_srhd(Solver::kExact, wl, wr, 0, kEos);
  EXPECT_NEAR(f.d, 0.0, 1e-9);
  EXPECT_NEAR(f.sx, 1.0, 1e-9);
}

TEST(Riemann, ExactGodunovBeatsHllOnStrongTube) {
  // Single-interface accuracy proxy: the exact flux for MM1-like states
  // differs from HLL toward the true solution; just assert it is finite,
  // causal and between the upwind fluxes component-wise for mass.
  const auto wl = prim(10.0, 0.0, 0.0, 13.33);
  const auto wr = prim(1.0, 0.0, 0.0, 1e-7);
  const srhd::Cons f = riemann::solve_srhd(Solver::kExact, wl, wr, 0, kEos);
  EXPECT_TRUE(std::isfinite(f.d));
  EXPECT_GT(f.d, 0.0);   // mass flows right through the blast
  EXPECT_GT(f.sx, 0.0);
}

TEST(Riemann, DissipationOrderingOnContact) {
  // A stationary contact: HLLC resolves it exactly (zero mass flux and
  // no smearing), HLL and LLF add dissipation proportional to the jump.
  const auto wl = prim(10.0, 0.0, 0.0, 1.0);
  const auto wr = prim(1.0, 0.0, 0.0, 1.0);
  const srhd::Cons f_hllc = riemann::solve_srhd(Solver::kHLLC, wl, wr, 0, kEos);
  const srhd::Cons f_hll = riemann::solve_srhd(Solver::kHLL, wl, wr, 0, kEos);
  const srhd::Cons f_llf = riemann::solve_srhd(Solver::kLLF, wl, wr, 0, kEos);
  EXPECT_NEAR(f_hllc.d, 0.0, 1e-10);       // exact contact resolution
  EXPECT_NEAR(f_hllc.sx, 1.0, 1e-10);      // pressure only
  EXPECT_GT(std::abs(f_hll.d), 1e-3);      // HLL diffuses the contact
  EXPECT_GE(std::abs(f_llf.d), std::abs(f_hll.d) * 0.99);  // LLF >= HLL
}

TEST(Riemann, HllFluxIsBetweenUpwindLimits) {
  const auto wl = prim(1.0, 0.3, 0.0, 2.0);
  const auto wr = prim(0.3, -0.4, 0.0, 0.5);
  const srhd::Cons f = riemann::solve_srhd(Solver::kHLL, wl, wr, 0, kEos);
  EXPECT_TRUE(std::isfinite(f.d));
  EXPECT_TRUE(std::isfinite(f.tau));
  // Sanity: strong left-to-right pressure gradient drives rightward flux.
  EXPECT_GT(f.sx, 0.0);
}

TEST(Riemann, ParseRejectsUnknown) {
  EXPECT_THROW((void)riemann::parse_solver("roe"), Error);
}

// --- SRMHD HLL -------------------------------------------------------------

srmhd::Prim mhd_prim(double rho, double vx, double p, double bx, double by) {
  srmhd::Prim w;
  w.rho = rho;
  w.vx = vx;
  w.p = p;
  w.bx = bx;
  w.by = by;
  return w;
}

TEST(RiemannMhd, ConsistencyWithoutGlm) {
  srmhd::GlmParams glm;
  glm.enabled = false;
  const auto w = mhd_prim(1.0, 0.2, 1.0, 0.5, 0.3);
  const srmhd::Cons u = srmhd::prim_to_cons(w, kEosMhd);
  const srmhd::Cons exact = srmhd::flux(w, u, 0, kEosMhd);
  const srmhd::Cons f = riemann::solve_srmhd_hll(w, w, 0, kEosMhd, glm);
  EXPECT_NEAR(f.d, exact.d, 1e-12);
  EXPECT_NEAR(f.sx, exact.sx, 1e-12);
  EXPECT_NEAR(f.by, exact.by, 1e-12);
  EXPECT_DOUBLE_EQ(f.psi, 0.0);
}

TEST(RiemannMhd, GlmCouplesNormalFieldAndPsi) {
  srmhd::GlmParams glm;  // enabled, ch = 1
  auto wl = mhd_prim(1.0, 0.0, 1.0, 0.2, 0.0);
  auto wr = mhd_prim(1.0, 0.0, 1.0, 0.6, 0.0);
  const srmhd::Cons f = riemann::solve_srmhd_hll(wl, wr, 0, kEosMhd, glm);
  // psi* = -ch (Bn_r - Bn_l)/2 = -0.2 ; F(psi) = ch^2 mean(Bn) = 0.4.
  EXPECT_NEAR(f.bx, -0.2, 1e-12);
  EXPECT_NEAR(f.psi, 0.4, 1e-12);
}

TEST(RiemannMhd, UnmagnetizedReducesToSrhdHll) {
  srmhd::GlmParams glm;
  glm.enabled = false;
  const auto wl = mhd_prim(1.0, 0.3, 2.0, 0.0, 0.0);
  const auto wr = mhd_prim(0.3, -0.4, 0.5, 0.0, 0.0);
  const srmhd::Cons f = riemann::solve_srmhd_hll(wl, wr, 0, kEosMhd, glm);
  const srhd::Cons fh = riemann::solve_srhd(
      Solver::kHLL, prim(1.0, 0.3, 0.0, 2.0), prim(0.3, -0.4, 0.0, 0.5), 0,
      kEos);
  EXPECT_NEAR(f.d, fh.d, 1e-12);
  EXPECT_NEAR(f.sx, fh.sx, 1e-12);
  EXPECT_NEAR(f.tau, fh.tau, 1e-12);
}

}  // namespace
