// Simulation service: admission control, priority preemption with bitwise
// warm resume, the shared exact-Riemann reference cache, per-job metric
// isolation, per-job stall monitoring, and the hardened checkpoint reader
// it all leans on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/io/checkpoint.hpp"
#include "rshc/serve/riemann_cache.hpp"
#include "rshc/serve/scenario.hpp"
#include "rshc/serve/service.hpp"
#include "rshc/solver/fv_solver.hpp"

#if RSHC_OBS_ENABLED
#include "rshc/obs/journal.hpp"
#include "rshc/obs/metrics.hpp"
#include "rshc/obs/telemetry.hpp"
#endif

namespace {

using namespace rshc;
using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

serve::ServiceConfig test_config(const std::string& tag) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.checkpoint_dir = temp_path("serve_ckpt_" + tag);
  return cfg;
}

/// Poll until the job has taken at least `steps` steps while running (or
/// reached a terminal state — the caller's assertions catch that).
void wait_for_progress(serve::SimulationService& svc, serve::JobId id,
                       int steps) {
  for (int i = 0; i < 2000; ++i) {
    const auto st = svc.status(id);
    ASSERT_TRUE(st.has_value());
    if (st->steps_done >= steps) return;
    if (st->state == serve::JobState::kCompleted ||
        st->state == serve::JobState::kFailed) {
      return;
    }
    std::this_thread::sleep_for(5ms);
  }
  FAIL() << "job " << id << " never reached " << steps << " steps";
}

// --- Riemann cache -----------------------------------------------------

TEST(RiemannCache, SharesSolutionsAndCountsHits) {
  serve::RiemannCache cache;
  const serve::RiemannCache::State l{1.0, 0.0, 1.0};
  const serve::RiemannCache::State r{0.125, 0.0, 0.1};
  const auto a = cache.lookup(l, r, 1.4);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
  const auto b = cache.lookup(l, r, 1.4);
  EXPECT_EQ(a.get(), b.get());  // the same shared instance, not a rebuild
  EXPECT_EQ(cache.hits(), 1);
  // A different gamma is a different key even with identical states.
  const auto c = cache.lookup(l, r, 5.0 / 3.0);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

// --- scenario catalog --------------------------------------------------

TEST(Scenario, CatalogCoversBothPhysics) {
  EXPECT_TRUE(serve::known_problem(serve::PhysicsKind::kSrhd, "sod"));
  EXPECT_TRUE(serve::known_problem(serve::PhysicsKind::kSrhd, "kh"));
  EXPECT_TRUE(serve::known_problem(serve::PhysicsKind::kSrmhd, "balsara1"));
  EXPECT_FALSE(serve::known_problem(serve::PhysicsKind::kSrmhd, "sod"));
  EXPECT_FALSE(serve::known_problem(serve::PhysicsKind::kSrhd, "nope"));
  EXPECT_EQ(serve::problem_ndim(serve::PhysicsKind::kSrhd, "sod"), 1);
  EXPECT_EQ(serve::problem_ndim(serve::PhysicsKind::kSrhd, "blast2d"), 2);
  EXPECT_EQ(serve::problem_ndim(serve::PhysicsKind::kSrmhd, "field_loop"), 2);

  serve::JobSpec spec;
  spec.problem = "kh";
  spec.resolution = 32;
  EXPECT_EQ(serve::spec_zones(spec), 32 * 32);
  spec.problem = "sod";
  EXPECT_EQ(serve::spec_zones(spec), 32);
  EXPECT_TRUE(serve::validation_supported(spec));
  spec.problem = "kh";
  EXPECT_FALSE(serve::validation_supported(spec));
}

// --- admission control -------------------------------------------------

TEST(ServeAdmission, RejectsInvalidSpecs) {
  serve::SimulationService svc(test_config("invalid"));
  serve::JobSpec spec;

  spec.problem = "no_such_problem";
  auto a = svc.submit(spec);
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("unknown problem"), std::string::npos) << a.reason;

  spec.problem = "sod";
  spec.steps = 0;
  a = svc.submit(spec);
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("steps"), std::string::npos) << a.reason;

  spec.steps = 4;
  spec.problem = "kh";
  spec.validate = true;
  a = svc.submit(spec);
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("validation"), std::string::npos) << a.reason;

  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.rejected, 3);
  EXPECT_EQ(stats.admitted, 0);
}

TEST(ServeAdmission, RejectsWhenQueueFull) {
  auto cfg = test_config("queue_full");
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  serve::SimulationService svc(cfg);

  serve::JobSpec slow;
  slow.problem = "sod";
  slow.resolution = 32;
  slow.steps = 40;
  slow.step_delay_ms = 20;
  const auto running = svc.submit(slow);
  ASSERT_TRUE(running.admitted);
  wait_for_progress(svc, running.id, 1);  // off the queue, onto the worker

  serve::JobSpec quick = slow;
  quick.steps = 2;
  quick.step_delay_ms = 0;
  ASSERT_TRUE(svc.submit(quick).admitted);
  ASSERT_TRUE(svc.submit(quick).admitted);
  const auto overflow = svc.submit(quick);
  EXPECT_FALSE(overflow.admitted);
  EXPECT_NE(overflow.reason.find("queue full"), std::string::npos)
      << overflow.reason;
  svc.wait_idle();
  EXPECT_EQ(svc.stats().completed, 3);
}

TEST(ServeAdmission, RejectsWhenZoneBudgetExceeded) {
  auto cfg = test_config("budget");
  cfg.zone_budget = 1000;
  serve::SimulationService svc(cfg);

  serve::JobSpec big;
  big.problem = "kh";  // 40 x 40 = 1600 zones > 1000
  big.resolution = 40;
  big.steps = 1;
  const auto a = svc.submit(big);
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("zone budget"), std::string::npos) << a.reason;

  big.resolution = 16;  // 256 zones: fits
  EXPECT_TRUE(svc.submit(big).admitted);
  svc.wait_idle();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.zones_admitted, 0);  // released at the terminal state
}

// --- preempt / warm resume ---------------------------------------------

/// Uninterrupted reference run of `spec`, checkpointed at the end.
void run_reference(serve::JobSpec spec, const std::string& out) {
  auto engine = serve::make_engine(spec);
  engine->initialize();
  for (int i = 0; i < spec.steps; ++i) engine->step();
  engine->checkpoint(out);
}

void expect_bitwise_resume(serve::PhysicsKind physics,
                           const std::string& problem,
                           solver::HostPipeline pipeline,
                           const std::string& tag) {
  serve::JobSpec spec;
  spec.name = "resume_" + tag;
  spec.physics = physics;
  spec.problem = problem;
  spec.resolution = 64;
  spec.steps = 12;
  spec.pipeline = pipeline;

  const std::string ref_path = temp_path("ref_" + tag + ".ckpt");
  run_reference(spec, ref_path);

  auto cfg = test_config(tag);
  cfg.workers = 1;
  serve::SimulationService svc(cfg);
  spec.result_checkpoint = temp_path("svc_" + tag + ".ckpt");
  spec.step_delay_ms = 10;  // widen the preemption window
  const auto a = svc.submit(spec);
  ASSERT_TRUE(a.admitted) << a.reason;
  wait_for_progress(svc, a.id, 3);
  svc.preempt(a.id);
  const auto st = svc.wait(a.id);
  ASSERT_EQ(st.state, serve::JobState::kCompleted) << st.message;
  EXPECT_EQ(st.steps_done, spec.steps);
  EXPECT_GE(st.preempts, 1) << "job finished before the preempt landed";
  EXPECT_EQ(st.resumes, st.preempts);

  const std::string ref = read_file_bytes(ref_path);
  const std::string got = read_file_bytes(spec.result_checkpoint);
  ASSERT_EQ(ref.size(), got.size());
  EXPECT_TRUE(ref == got)
      << "preempted run diverged bitwise from the uninterrupted run ("
      << tag << ")";
}

TEST(ServePreemptResume, BitwiseIdenticalSrhdPencil) {
  expect_bitwise_resume(serve::PhysicsKind::kSrhd, "sod",
                        solver::HostPipeline::kPencil, "srhd_pencil");
}

TEST(ServePreemptResume, BitwiseIdenticalSrhdBatched) {
  expect_bitwise_resume(serve::PhysicsKind::kSrhd, "sod",
                        solver::HostPipeline::kBatchedSimd, "srhd_batched");
}

TEST(ServePreemptResume, BitwiseIdenticalSrmhdPencil) {
  expect_bitwise_resume(serve::PhysicsKind::kSrmhd, "balsara1",
                        solver::HostPipeline::kPencil, "srmhd_pencil");
}

TEST(ServePreemptResume, BitwiseIdenticalSrmhdBatched) {
  expect_bitwise_resume(serve::PhysicsKind::kSrmhd, "balsara1",
                        solver::HostPipeline::kBatchedSimd, "srmhd_batched");
}

TEST(ServePreemptResume, HighPrioritySubmissionEvictsBatchJob) {
  auto cfg = test_config("priority");
  cfg.workers = 1;
  serve::SimulationService svc(cfg);

  serve::JobSpec batch;
  batch.name = "batch";
  batch.problem = "sod";
  batch.resolution = 32;
  batch.steps = 60;
  batch.step_delay_ms = 15;
  batch.priority = serve::Priority::kBatch;
  const auto low = svc.submit(batch);
  ASSERT_TRUE(low.admitted);
  wait_for_progress(svc, low.id, 1);

  serve::JobSpec urgent = batch;
  urgent.name = "urgent";
  urgent.steps = 2;
  urgent.step_delay_ms = 0;
  urgent.priority = serve::Priority::kHigh;
  const auto high = svc.submit(urgent);
  ASSERT_TRUE(high.admitted);

  const auto high_st = svc.wait(high.id);
  EXPECT_EQ(high_st.state, serve::JobState::kCompleted) << high_st.message;
  const auto low_st = svc.wait(low.id);
  EXPECT_EQ(low_st.state, serve::JobState::kCompleted) << low_st.message;
  EXPECT_GE(low_st.preempts, 1);
  EXPECT_GE(low_st.resumes, 1);
  EXPECT_EQ(low_st.steps_done, batch.steps);
  EXPECT_EQ(svc.stats().preempted, low_st.preempts);
}

// --- validation + shared cache ----------------------------------------

TEST(ServeValidation, ValidationJobsShareTheExactReference) {
  serve::RiemannCache::global().clear();
  serve::SimulationService svc(test_config("validation"));

  serve::JobSpec spec;
  spec.problem = "sod";
  spec.resolution = 64;
  spec.steps = 24;
  spec.validate = true;
  std::vector<serve::JobId> ids;
  for (int i = 0; i < 3; ++i) {
    const auto a = svc.submit(spec);
    ASSERT_TRUE(a.admitted) << a.reason;
    ids.push_back(a.id);
  }
  for (const auto id : ids) {
    const auto st = svc.wait(id);
    ASSERT_EQ(st.state, serve::JobState::kCompleted) << st.message;
    EXPECT_GT(st.l1_error, 0.0);
    EXPECT_LT(st.l1_error, 0.1);  // PLM on 64 zones resolves Sod well
  }
  // One root find, shared by everyone else.
  EXPECT_EQ(serve::RiemannCache::global().misses(), 1);
  EXPECT_EQ(serve::RiemannCache::global().hits(), 2);
}

// --- stall monitoring --------------------------------------------------

TEST(ServeStallMonitor, FlagsRunningJobButNotQueuedOne) {
  auto cfg = test_config("stall");
  cfg.workers = 1;
  cfg.stall_timeout = 60ms;
  serve::SimulationService svc(cfg);

  serve::JobSpec crawler;
  crawler.name = "crawler";
  crawler.problem = "sod";
  crawler.resolution = 32;
  crawler.steps = 3;
  crawler.step_delay_ms = 300;  // well past the 60ms stall alarm
  const auto slow = svc.submit(crawler);
  ASSERT_TRUE(slow.admitted);

  serve::JobSpec waiter = crawler;
  waiter.name = "waiter";
  waiter.step_delay_ms = 0;
  const auto queued = svc.submit(waiter);
  ASSERT_TRUE(queued.admitted);

  const auto slow_st = svc.wait(slow.id);
  const auto queued_st = svc.wait(queued.id);
  EXPECT_EQ(slow_st.state, serve::JobState::kCompleted);
  EXPECT_EQ(queued_st.state, serve::JobState::kCompleted);
  // The crawling job trips the per-job monitor; the job that spent the
  // same wall time *queued* must not (idle-in-queue is not a stall).
  EXPECT_GE(slow_st.stalls, 1);
  EXPECT_EQ(queued_st.stalls, 0);
  EXPECT_GE(svc.stats().stalled, slow_st.stalls);
}

// --- per-job isolation (obs builds only) -------------------------------

#if RSHC_OBS_ENABLED

TEST(ServeIsolation, JobMetricsLandInJobRegistryNotGlobal) {
  const auto global_before =
      obs::Registry::global().snapshot().value_or("solver.steps", 0.0);
  const auto ticks_before = obs::telemetry::heartbeat_ticks();

  serve::SimulationService svc(test_config("isolation"));
  serve::JobSpec spec;
  spec.problem = "sod";
  spec.resolution = 32;
  spec.steps = 7;
  const auto a = svc.submit(spec);
  ASSERT_TRUE(a.admitted);
  const auto st = svc.wait(a.id);
  ASSERT_EQ(st.state, serve::JobState::kCompleted) << st.message;

  // The job's own registry saw its 7 steps (plus heartbeat gauges)...
  const auto snap = svc.job_snapshot(a.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value_or("solver.steps", 0.0), 7.0);
  EXPECT_EQ(snap->value_or("solver.hb.step", 0.0), 7.0);

  // ...while the process-global registry, heartbeat view, and watchdog
  // ticker saw none of it (satellite fix: a scoped job must not tick the
  // global watchdog or smear the global heartbeat).
  EXPECT_EQ(obs::Registry::global().snapshot().value_or("solver.steps", 0.0),
            global_before);
  EXPECT_EQ(obs::telemetry::heartbeat_ticks(), ticks_before);
}

#endif  // RSHC_OBS_ENABLED

// --- hardened checkpoint reader ----------------------------------------

class CheckpointHardening : public ::testing::Test {
 protected:
  static serve::JobSpec spec() {
    serve::JobSpec s;
    s.problem = "sod";
    s.resolution = 32;
    s.steps = 4;
    return s;
  }

  /// A valid checkpoint from a short Sod run.
  static std::string write_valid(const std::string& name) {
    const std::string path = temp_path(name);
    auto engine = serve::make_engine(spec());
    engine->initialize();
    for (int i = 0; i < 4; ++i) engine->step();
    engine->checkpoint(path);
    return path;
  }

  static void corrupt_bytes(const std::string& path, std::streamoff at,
                            const char* bytes, std::streamsize n) {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(at);
    f.write(bytes, n);
  }

  static void truncate_to(const std::string& src, const std::string& dst,
                          std::size_t n) {
    const std::string all = read_file_bytes(src);
    ASSERT_LT(n, all.size());
    std::ofstream f(dst, std::ios::binary);
    f.write(all.data(), static_cast<std::streamsize>(n));
  }
};

TEST_F(CheckpointHardening, RejectsBadMagicAndBadVersion) {
  const std::string path = write_valid("hard_magic.ckpt");
  auto engine = serve::make_engine(spec());
  engine->initialize();

  const std::string magic_path = temp_path("hard_magic_bad.ckpt");
  std::ofstream(magic_path, std::ios::binary) << read_file_bytes(path);
  const char bad_magic[4] = {'J', 'U', 'N', 'K'};
  corrupt_bytes(magic_path, 0, bad_magic, 4);
  try {
    engine->restore(magic_path);
    FAIL() << "bad magic accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
  }

  const std::string ver_path = temp_path("hard_version_bad.ckpt");
  std::ofstream(ver_path, std::ios::binary) << read_file_bytes(path);
  const char bad_version[4] = {99, 0, 0, 0};
  corrupt_bytes(ver_path, 4, bad_version, 4);
  try {
    engine->restore(ver_path);
    FAIL() << "bad version accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointHardening, TruncatedFileFailsWithoutMutatingSolver) {
  const std::string path = write_valid("hard_trunc.ckpt");
  const std::string short_path = temp_path("hard_trunc_short.ckpt");
  truncate_to(path, short_path, 56 + 100);  // header + partial payload

  const mesh::Grid g = mesh::Grid::make_1d(32, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  solver::SrhdSolver s(g, opt);
  s.initialize([](double, double, double) {
    return srhd::Prim{2.0, 0.0, 0.0, 0.0, 3.0};
  });
  const auto rho_before = s.gather_prim_var(srhd::kRho);

  try {
    io::read_checkpoint(short_path, s);
    FAIL() << "truncated checkpoint accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  // The pre-validation must reject before streaming a single zone: the
  // solver still holds its initial state, not a half-restored hybrid.
  const auto rho_after = s.gather_prim_var(srhd::kRho);
  ASSERT_EQ(rho_before.size(), rho_after.size());
  for (std::size_t i = 0; i < rho_before.size(); ++i) {
    EXPECT_EQ(rho_before[i], rho_after[i]) << i;
  }

  // Header-only truncation is caught too.
  const std::string header_path = temp_path("hard_trunc_header.ckpt");
  truncate_to(path, header_path, 20);
  EXPECT_THROW(io::read_checkpoint(header_path, s), Error);
}

TEST_F(CheckpointHardening, MismatchedPhysicsFailsClearly) {
  const std::string path = write_valid("hard_physics.ckpt");  // SRHD, 5 vars
  const mesh::Grid g = mesh::Grid::make_1d(32, 0.0, 1.0);
  solver::SrmhdSolver::Options opt;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  solver::SrmhdSolver mhd(g, opt);
  mhd.initialize([](double, double, double) {
    srmhd::Prim w;
    w.rho = 1.0;
    w.p = 1.0;
    return w;
  });
  try {
    io::read_checkpoint(path, mhd);
    FAIL() << "SRHD checkpoint restored into SRMHD solver";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("physics mismatch"),
              std::string::npos)
        << e.what();
  }
}

#if RSHC_OBS_ENABLED

TEST_F(CheckpointHardening, FailuresAreJournaled) {
  const std::string journal_path = temp_path("hard_journal.jsonl");
  obs::journal::Journal::global().open(journal_path);

  const std::string path = write_valid("hard_journal.ckpt");
  const std::string short_path = temp_path("hard_journal_short.ckpt");
  truncate_to(path, short_path, 80);
  auto engine = serve::make_engine(spec());
  engine->initialize();
  EXPECT_THROW(engine->restore(short_path), Error);
  // A successful restore journals too.
  engine->restore(path);
  obs::journal::Journal::global().close();

  const std::string journal = read_file_bytes(journal_path);
  EXPECT_NE(journal.find("\"checkpoint_error\""), std::string::npos);
  EXPECT_NE(journal.find("truncated"), std::string::npos);
  EXPECT_NE(journal.find("\"restore\""), std::string::npos);
}

#endif  // RSHC_OBS_ENABLED

// --- saturating mixed workload -----------------------------------------

TEST(ServeWorkload, SaturatedMixedWorkloadLosesNothing) {
  auto cfg = test_config("mixed");
  cfg.workers = 4;
  serve::SimulationService svc(cfg);

  struct Mix {
    const char* problem;
    serve::PhysicsKind physics;
    long long resolution;
    int steps;
  };
  const Mix mixes[] = {
      {"sod", serve::PhysicsKind::kSrhd, 48, 6},
      {"mm1", serve::PhysicsKind::kSrhd, 48, 6},
      {"kh", serve::PhysicsKind::kSrhd, 12, 2},
      {"balsara1", serve::PhysicsKind::kSrmhd, 48, 4},
      {"mhd_blast", serve::PhysicsKind::kSrmhd, 12, 2},
      {"field_loop", serve::PhysicsKind::kSrmhd, 12, 2},
  };
  constexpr int kJobs = 36;
  std::vector<serve::JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    const Mix& m = mixes[static_cast<std::size_t>(i) % std::size(mixes)];
    serve::JobSpec spec;
    spec.name = std::string(m.problem) + "_" + std::to_string(i);
    spec.problem = m.problem;
    spec.physics = m.physics;
    spec.resolution = m.resolution;
    spec.steps = m.steps;
    spec.priority = (i % 8 == 7)   ? serve::Priority::kHigh
                    : (i % 3 == 0) ? serve::Priority::kBatch
                                   : serve::Priority::kNormal;
    const auto a = svc.submit(spec);
    ASSERT_TRUE(a.admitted) << i << ": " << a.reason;
    ids.push_back(a.id);
  }
  for (const auto id : ids) {
    const auto st = svc.wait(id);
    EXPECT_EQ(st.state, serve::JobState::kCompleted)
        << st.name << ": " << st.message;
    EXPECT_EQ(st.steps_done, st.steps_total) << st.name;
    EXPECT_GE(st.latency_ms, 0.0);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.admitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);  // zero lost...
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.queued, 0);  // ...zero duplicated or stuck
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.zones_admitted, 0);
}

TEST(ServeShutdown, CancelsQueuedJobsAndReportsThem) {
  auto cfg = test_config("shutdown");
  cfg.workers = 1;
  serve::SimulationService svc(cfg);

  serve::JobSpec slow;
  slow.problem = "sod";
  slow.resolution = 32;
  slow.steps = 10;
  slow.step_delay_ms = 20;
  const auto running = svc.submit(slow);
  ASSERT_TRUE(running.admitted);
  wait_for_progress(svc, running.id, 1);

  serve::JobSpec queued = slow;
  queued.step_delay_ms = 0;
  const auto waiting = svc.submit(queued);
  ASSERT_TRUE(waiting.admitted);

  svc.shutdown();
  EXPECT_FALSE(svc.submit(queued).admitted);  // no work after shutdown
  const auto cancelled = svc.wait(waiting.id);
  EXPECT_EQ(cancelled.state, serve::JobState::kCancelled);
  const auto finished = svc.wait(running.id);  // running jobs drain
  EXPECT_EQ(finished.state, serve::JobState::kCompleted);
  EXPECT_EQ(svc.stats().cancelled, 1);
}

}  // namespace
