// Reconstruction schemes: exactness, accuracy, and monotonicity properties.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/recon/reconstruct.hpp"

namespace {

using namespace rshc;
using recon::Method;

const std::vector<Method> kAllMethods = {
    Method::kPCM,       Method::kPLMMinmod, Method::kPLMMC,
    Method::kPLMVanLeer, Method::kPPM,       Method::kWENO5};

struct Recon {
  std::vector<double> ql, qr;
  explicit Recon(Method m, const std::vector<double>& q)
      : ql(q.size()), qr(q.size()) {
    recon::reconstruct(m, q, ql, qr);
  }
};

class EveryMethod : public ::testing::TestWithParam<Method> {};

TEST_P(EveryMethod, ReproducesConstants) {
  const std::vector<double> q(16, 3.7);
  Recon r(GetParam(), q);
  const int rad = recon::stencil_radius(GetParam());
  for (std::size_t i = rad; i + rad < q.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.ql[i], 3.7);
    EXPECT_DOUBLE_EQ(r.qr[i], 3.7);
  }
}

TEST_P(EveryMethod, FaceValuesStayWithinNeighbourRange) {
  // Monotonicity-preservation property: on arbitrary data, TVD-limited
  // schemes must not create face values outside the local 3-cell envelope.
  // WENO5 is ENO, not TVD — it gets a separate boundedness test below.
  if (GetParam() == Method::kWENO5) GTEST_SKIP();
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 10.0);
  std::vector<double> q(64);
  for (auto& x : q) x = u(rng);
  Recon r(GetParam(), q);
  const int rad = recon::stencil_radius(GetParam());
  constexpr double tol = 1e-12;
  for (std::size_t i = rad; i + rad < q.size(); ++i) {
    const double lo =
        std::min({q[i - (rad > 0 ? 1 : 0)], q[i], q[i + (rad > 0 ? 1 : 0)]});
    const double hi =
        std::max({q[i - (rad > 0 ? 1 : 0)], q[i], q[i + (rad > 0 ? 1 : 0)]});
    EXPECT_GE(r.ql[i], lo - tol) << "cell " << i;
    EXPECT_LE(r.ql[i], hi + tol) << "cell " << i;
    EXPECT_GE(r.qr[i], lo - tol) << "cell " << i;
    EXPECT_LE(r.qr[i], hi + tol) << "cell " << i;
  }
}

TEST(Recon, Weno5StaysBoundedByStencilConvexity) {
  // WENO5 face values are convex combinations of three quadratic
  // interpolants; on data in [0, 10] they stay within a stencil-bounded
  // envelope even if not strictly TVD.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 10.0);
  std::vector<double> q(64);
  for (auto& x : q) x = u(rng);
  Recon r(Method::kWENO5, q);
  for (std::size_t i = 2; i + 2 < q.size(); ++i) {
    EXPECT_TRUE(std::isfinite(r.ql[i]));
    EXPECT_TRUE(std::isfinite(r.qr[i]));
    EXPECT_GT(r.qr[i], -25.0);
    EXPECT_LT(r.qr[i], 35.0);
  }
}

TEST_P(EveryMethod, NameRoundTrips) {
  const Method m = GetParam();
  EXPECT_EQ(recon::parse_method(recon::method_name(m)), m);
}

TEST_P(EveryMethod, GhostWidthIsStencilPlusOne) {
  EXPECT_EQ(recon::ghost_width(GetParam()),
            recon::stencil_radius(GetParam()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Methods, EveryMethod,
                         ::testing::ValuesIn(kAllMethods));

TEST(Recon, PlmReproducesLinearProfilesExactly) {
  std::vector<double> q(16);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = 2.0 + 0.5 * static_cast<double>(i);
  }
  for (const Method m :
       {Method::kPLMMinmod, Method::kPLMMC, Method::kPLMVanLeer,
        Method::kPPM, Method::kWENO5}) {
    Recon r(m, q);
    const int rad = recon::stencil_radius(m);
    for (std::size_t i = rad; i + rad < q.size(); ++i) {
      EXPECT_NEAR(r.ql[i], q[i] - 0.25, 1e-11) << recon::method_name(m);
      EXPECT_NEAR(r.qr[i], q[i] + 0.25, 1e-11) << recon::method_name(m);
    }
  }
}

TEST(Recon, PcmIsFirstOrderFlat) {
  std::vector<double> q{1.0, 2.0, 4.0, 8.0};
  Recon r(Method::kPCM, q);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.ql[i], q[i]);
    EXPECT_DOUBLE_EQ(r.qr[i], q[i]);
  }
}

TEST(Recon, PpmFlattensLocalExtrema) {
  std::vector<double> q{0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0};
  Recon r(Method::kPPM, q);
  EXPECT_DOUBLE_EQ(r.ql[2], 1.0);  // extremum cell is flattened
  EXPECT_DOUBLE_EQ(r.qr[2], 1.0);
}

/// Face-interpolation accuracy on a smooth profile: measure the error of
/// the right-face value against the analytic point value and check the
/// convergence rate between two resolutions.
double face_error(Method m, int n) {
  // Cell averages of sin(2 pi x) on [0, 1]: (cos(a) - cos(b)) / (b - a)
  // with the 2 pi folded in.
  std::vector<double> q(static_cast<std::size_t>(n));
  const double h = 1.0 / n;
  constexpr double k = 2.0 * std::numbers::pi;
  for (int i = 0; i < n; ++i) {
    const double a = i * h;
    const double b = (i + 1) * h;
    q[static_cast<std::size_t>(i)] =
        (std::cos(k * a) - std::cos(k * b)) / (k * h);
  }
  Recon r(m, q);
  const int rad = recon::stencil_radius(m);
  double worst = 0.0;
  for (int i = rad; i + rad < n; ++i) {
    const double exact = std::sin(k * (i + 1) * h);
    worst = std::max(worst,
                     std::abs(r.qr[static_cast<std::size_t>(i)] - exact));
  }
  return worst;
}

TEST(Recon, Weno5FaceAccuracyIsHighOrder) {
  const double e1 = face_error(Method::kWENO5, 32);
  const double e2 = face_error(Method::kWENO5, 64);
  const double order = std::log2(e1 / e2);
  EXPECT_GT(order, 4.0) << "e1=" << e1 << " e2=" << e2;
}

TEST(Recon, PpmFaceAccuracyBeatsPlm) {
  const double eppm = face_error(Method::kPPM, 64);
  const double eplm = face_error(Method::kPLMMC, 64);
  EXPECT_LT(eppm, eplm);
}

TEST(Recon, AccuracyOrderingOnSmoothData) {
  const double epcm = face_error(Method::kPCM, 64);
  const double eplm = face_error(Method::kPLMMC, 64);
  const double eweno = face_error(Method::kWENO5, 64);
  EXPECT_LT(eplm, epcm);
  EXPECT_LT(eweno, eplm);
}

TEST(Recon, RejectsMismatchedOutputSizes) {
  std::vector<double> q(8), ql(7), qr(8);
  EXPECT_THROW(recon::reconstruct(Method::kPCM, q, ql, qr), Error);
}

TEST(Recon, ParseRejectsUnknownName) {
  EXPECT_THROW((void)recon::parse_method("upwind-magic"), Error);
  EXPECT_EQ(recon::parse_method("plm"), Method::kPLMMC);  // alias
}

TEST(Recon, FormalOrdersAreMonotone) {
  EXPECT_EQ(recon::formal_order(Method::kPCM), 1);
  EXPECT_LT(recon::formal_order(Method::kPCM),
            recon::formal_order(Method::kPLMMC));
  EXPECT_LT(recon::formal_order(Method::kPPM),
            recon::formal_order(Method::kWENO5));
}

}  // namespace
