// Device-offload equivalence across backends, VTK output, and checkpoint
// round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "rshc/io/checkpoint.hpp"
#include "rshc/io/vtk.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/solver/offload.hpp"

namespace {

using namespace rshc;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// FvSolver is pinned in memory (blocks reference its grid), so tests hold
// it behind a unique_ptr.
std::unique_ptr<solver::SrhdSolver> make_evolved_solver() {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  auto s = std::make_unique<solver::SrhdSolver>(g, opt);
  s->initialize([](double x, double y, double) {
    srhd::Prim w;
    w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
    w.vx = 0.3;
    w.vy = -0.2;
    w.p = 1.0 + 0.1 * x;
    return w;
  });
  for (int i = 0; i < 5; ++i) s->step(s->compute_dt());
  return s;
}

class OffloadBackends : public ::testing::TestWithParam<device::Backend> {};

TEST_P(OffloadBackends, MatchesInPlacePrimitives) {
  auto sp = make_evolved_solver();
  auto& s = *sp;
  const auto rho_ref = s.gather_prim_var(srhd::kRho);
  const auto p_ref = s.gather_prim_var(srhd::kP);

  // Scrub the prims, then recover them through the device path.
  s.block(0).prim().fill(0.0);
  auto dev = device::make_device(GetParam());
  const auto stats =
      solver::offload_cons_to_prim(*dev, s.block(0), s.options().physics);
  EXPECT_EQ(stats.batch.failures, 0);
  EXPECT_EQ(stats.zones, 16u * 16u);
  EXPECT_GT(stats.batch.total_iterations, 0);

  const auto rho = s.gather_prim_var(srhd::kRho);
  const auto p = s.gather_prim_var(srhd::kP);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(rho[i], rho_ref[i], 1e-12 * rho_ref[i]) << i;
    EXPECT_NEAR(p[i], p_ref[i], 1e-12 * p_ref[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, OffloadBackends,
                         ::testing::Values(device::Backend::kHostScalar,
                                           device::Backend::kHostSimd,
                                           device::Backend::kAccelSim));

TEST(Offload, AccelReportsTransferTime) {
  auto sp = make_evolved_solver();
  auto& s = *sp;
  device::AccelModel model;
  model.transfer_latency_sec = 1e-3;
  auto dev = device::make_device(device::Backend::kAccelSim, model);
  const auto stats =
      solver::offload_cons_to_prim(*dev, s.block(0), s.options().physics);
  // 5 uploads at >= 1 ms latency each.
  EXPECT_GE(stats.upload_seconds, 4e-3);
  EXPECT_GT(stats.kernel_seconds, 0.0);
}

TEST(Vtk, WritesWellFormedFile) {
  const mesh::Grid g = mesh::Grid::make_2d(4, 3, 0.0, 1.0, 0.0, 1.0);
  io::VtkField f;
  f.name = "rho";
  f.data.assign(12, 1.5);
  const std::string path = temp_path("out.vtk");
  io::write_vtk(path, g, std::span<const io::VtkField>(&f, 1));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DIMENSIONS 5 4 2"), std::string::npos);
  EXPECT_NE(content.find("CELL_DATA 12"), std::string::npos);
  EXPECT_NE(content.find("SCALARS rho double 1"), std::string::npos);
}

TEST(Vtk, RejectsWrongFieldSize) {
  const mesh::Grid g = mesh::Grid::make_2d(4, 3, 0.0, 1.0, 0.0, 1.0);
  io::VtkField f;
  f.name = "rho";
  f.data.assign(7, 1.0);
  EXPECT_THROW(io::write_vtk(temp_path("bad.vtk"), g,
                             std::span<const io::VtkField>(&f, 1)),
               Error);
}

TEST(Checkpoint, RoundTripRestoresStateExactly) {
  auto sp = make_evolved_solver();
  auto& s = *sp;
  const std::string path = temp_path("state.rshc");
  io::write_checkpoint(path, s);

  // Fresh solver, same configuration, dummy initial data.
  const mesh::Grid g = s.grid();
  solver::SrhdSolver::Options opt = s.options();
  solver::SrhdSolver restored(g, opt);
  restored.initialize([](double, double, double) {
    return srhd::Prim{2.0, 0.0, 0.0, 0.0, 2.0};
  });
  io::read_checkpoint(path, restored);

  EXPECT_DOUBLE_EQ(restored.time(), s.time());
  const auto a = s.gather_prim_var(srhd::kRho);
  const auto b = restored.gather_prim_var(srhd::kRho);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12 * a[i]) << i;
  }

  // And both must evolve identically afterwards.
  s.step(0.002);
  restored.step(0.002);
  const auto a2 = s.gather_prim_var(srhd::kP);
  const auto b2 = restored.gather_prim_var(srhd::kP);
  for (std::size_t i = 0; i < a2.size(); ++i) {
    EXPECT_NEAR(a2[i], b2[i], 1e-12 * a2[i]) << i;
  }
}

TEST(Checkpoint, RejectsMismatchedGrid) {
  auto sp = make_evolved_solver();
  auto& s = *sp;
  const std::string path = temp_path("state2.rshc");
  io::write_checkpoint(path, s);

  const mesh::Grid other = mesh::Grid::make_2d(8, 8, 0.0, 1.0, 0.0, 1.0);
  solver::SrhdSolver wrong(other, s.options());
  wrong.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  EXPECT_THROW(io::read_checkpoint(path, wrong), Error);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.rshc");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint at all, not even close.............";
  }
  auto sp = make_evolved_solver();
  auto& s = *sp;
  EXPECT_THROW(io::read_checkpoint(path, s), Error);
  EXPECT_THROW(io::read_checkpoint("/nonexistent/nope.rshc", s), Error);
}

}  // namespace
