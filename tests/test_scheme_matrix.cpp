// Full scheme-matrix integration sweep: every (reconstruction x Riemann
// solver x integrator) combination drives a small relativistic shock tube
// and must stay stable, positive, conservative-of-mass (up to outflow),
// and rank sensibly in accuracy. This is the combinatorial safety net for
// configuration options that individual suites only probe pairwise.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "rshc/analysis/exact_riemann.hpp"
#include "rshc/analysis/norms.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

using Combo = std::tuple<recon::Method, riemann::Solver, time::Integrator>;

class SchemeMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(SchemeMatrix, SodTubeStaysPhysicalAndAccurate) {
  const auto [rm, rs, ti] = GetParam();
  const problems::ShockTube st = problems::sod();
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  solver::SrhdSolver::Options opt;
  opt.recon = rm;
  opt.integrator = ti;
  opt.cfl = ti == time::Integrator::kEuler ? 0.2 : 0.4;  // Euler needs slack
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  opt.physics.riemann = rs;
  solver::SrhdSolver s(g, opt);
  s.initialize(problems::shock_tube_ic(st));
  s.advance_to(st.t_final);

  const analysis::ExactRiemann exact(
      {st.left.rho, st.left.vx, st.left.p},
      {st.right.rho, st.right.vx, st.right.p}, st.gamma);
  const auto rho = s.gather_prim_var(srhd::kRho);
  const auto p = s.gather_prim_var(srhd::kP);
  std::vector<double> ref(rho.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = exact
                 .sample((g.cell_center(0, static_cast<long long>(i)) -
                          st.x_split) /
                         st.t_final)
                 .rho;
  }
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_TRUE(std::isfinite(rho[i])) << "cell " << i;
    EXPECT_GT(rho[i], 0.0) << "cell " << i;
    EXPECT_GT(p[i], 0.0) << "cell " << i;
  }
  // Generous accuracy gate: even PCM + LLF + Euler at N=64 lands well
  // under this; blow-ups land far above it.
  EXPECT_LT(analysis::l1_error(rho, ref), 0.08);
  EXPECT_EQ(s.c2p_stats().floored_zones, 0);

  // The run above used the default batched pipeline. Replaying it on the
  // per-pencil reference path (adaptive dt and all) must land on the exact
  // same bits — the batched pipeline's core contract, checked here across
  // the full scheme matrix on a complete shock-tube evolution.
  opt.pipeline = solver::HostPipeline::kPencil;
  solver::SrhdSolver pencil(g, opt);
  pencil.initialize(problems::shock_tube_ic(st));
  pencil.advance_to(st.t_final);
  const auto rho_p = pencil.gather_prim_var(srhd::kRho);
  const auto p_p = pencil.gather_prim_var(srhd::kP);
  int diffs = 0;
  for (std::size_t i = 0; i < rho.size(); ++i) {
    if (std::memcmp(&rho[i], &rho_p[i], sizeof(double)) != 0 ||
        std::memcmp(&p[i], &p_p[i], sizeof(double)) != 0) {
      ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0) << "batched pipeline diverged from pencil reference";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchemeMatrix,
    ::testing::Combine(
        ::testing::Values(recon::Method::kPCM, recon::Method::kPLMMinmod,
                          recon::Method::kPLMMC, recon::Method::kPLMVanLeer,
                          recon::Method::kPPM, recon::Method::kWENO5),
        ::testing::Values(riemann::Solver::kLLF, riemann::Solver::kHLL,
                          riemann::Solver::kHLLC),
        ::testing::Values(time::Integrator::kEuler,
                          time::Integrator::kSspRk2,
                          time::Integrator::kSspRk3)));

}  // namespace
