// rshc::check runtime checker: validator classification, violation sink
// machinery, c2p failure-path coverage (unphysical conserved states heal
// through the atmosphere in every build; a *misconfigured* atmosphere is
// reported when checks are compiled in), halo pack/guard assertions.
//
// Tests that assert on recorded violations are compiled only when
// RSHC_CHECKS_ENABLED is 1 (the Debug default); the checks-off branches
// assert the documented fallback behaviour instead, so this file is
// meaningful in both configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "rshc/check/check.hpp"
#include "rshc/check/halo_guard.hpp"
#include "rshc/mesh/halo.hpp"
#include "rshc/solver/fv_solver.hpp"
#include "rshc/srhd/con2prim.hpp"
#include "rshc/srmhd/con2prim.hpp"

namespace {

using namespace rshc;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Put the sink into count-and-continue mode for the duration of a test and
// restore the abort default afterwards, so a stray violation in any *other*
// test still aborts loudly.
struct CountScope {
  CountScope() {
    check::reset();
    check::set_action(check::Action::kCount);
  }
  ~CountScope() {
    check::set_action(check::Action::kAbort);
    check::reset();
  }
};

solver::SrhdSolver::Options periodic_opts() {
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

// --- validators (always compiled; independent of the gate) --------------

TEST(CheckValidators, AcceptsPhysicalPrim) {
  const srhd::Prim w{1.0, 0.3, -0.2, 0.1, 2.5};
  EXPECT_EQ(check::violates_prim(w), nullptr);
}

TEST(CheckValidators, ClassifiesUnphysicalPrims) {
  srhd::Prim w{1.0, 0.0, 0.0, 0.0, 1.0};
  w.rho = kNaN;
  EXPECT_STREQ(check::violates_prim(w), "non-finite rho or p");
  w = {0.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_STREQ(check::violates_prim(w), "rho <= 0");
  w = {1.0, 0.0, 0.0, 0.0, -1e-3};
  EXPECT_STREQ(check::violates_prim(w), "p <= 0");
  w = {1.0, 1.0, 0.5, 0.0, 1.0};
  EXPECT_STREQ(check::violates_prim(w), "superluminal |v| >= 1");
  w = {1.0, kNaN, 0.0, 0.0, 1.0};
  EXPECT_STREQ(check::violates_prim(w), "non-finite velocity");
  // |v| just below 1: physical in the SR sense but beyond any state the
  // face limiter can produce -> flagged as a runaway Lorentz factor.
  const double v = std::sqrt(1.0 - 1e-14);
  w = {1.0, v, 0.0, 0.0, 1.0};
  EXPECT_STREQ(check::violates_prim(w), "Lorentz factor beyond kMaxLorentz");
}

TEST(CheckValidators, ConsRejectsOnlyNonFinite) {
  srhd::Cons u{1.0, 0.2, 0.0, 0.0, 1.5};
  EXPECT_EQ(check::violates_cons(u), nullptr);
  // Unphysical-but-finite (c2p would floor this) is *legal* for a
  // conservative state mid-evolution.
  u = {1.0, 50.0, 0.0, 0.0, 0.01};
  EXPECT_EQ(check::violates_cons(u), nullptr);
  u.tau = kNaN;
  EXPECT_STREQ(check::violates_cons(u), "non-finite conservative state");
}

TEST(CheckValidators, FiniteSpan) {
  std::vector<double> buf(16, 1.0);
  EXPECT_EQ(check::violates_finite(buf), nullptr);
  buf[7] = std::numeric_limits<double>::infinity();
  EXPECT_NE(check::violates_finite(buf), nullptr);
}

// --- violation sink machinery -------------------------------------------

TEST(CheckSink, CountModeRecordsPhaseZoneAndMessage) {
  CountScope scope;
  EXPECT_EQ(check::violation_count(), 0);
  EXPECT_EQ(check::last_violation(), "");
  check::fail("c2p", "rho <= 0", "some_file.cpp", 42, {3, 7, 8, 9});
  EXPECT_EQ(check::violation_count(), 1);
  const std::string msg = check::last_violation();
  EXPECT_NE(msg.find("c2p"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rho <= 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("block 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("i=7"), std::string::npos) << msg;
  check::fail("flux", "x", "f.cpp", 1);
  EXPECT_EQ(check::violation_count(), 2);
  check::reset();
  EXPECT_EQ(check::violation_count(), 0);
  EXPECT_EQ(check::last_violation(), "");
}

TEST(CheckSinkDeathTest, AbortModeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  check::set_action(check::Action::kAbort);
  EXPECT_DEATH(check::fail("test", "deliberate abort-mode violation",
                           "f.cpp", 1),
               "deliberate abort-mode violation");
}

// --- c2p failure paths ---------------------------------------------------
// With a sane (default) atmosphere, every unphysical conserved state heals
// to a *physical* floored prim — in checks-on builds that means zero
// violations; in checks-off builds the identical fallback branch runs.

TEST(CheckC2P, UnphysicalConservedStatesHealToAtmosphere) {
  CountScope scope;
  const eos::IdealGas eos(5.0 / 3.0);
  const srhd::Con2PrimOptions opt;  // default floors

  const srhd::Cons cases[] = {
      {1.0, 50.0, 0.0, 0.0, 0.01},    // superluminal momentum: |S| >> E
      {1.0, 0.2, 0.0, 0.0, kNaN},     // NaN energy
      {-1.0, 0.0, 0.0, 0.0, 1.0},     // negative density
      {1e-30, 0.0, 0.0, 0.0, 1e-30},  // evacuated zone below the floor
  };
  for (const auto& u : cases) {
    const auto r = srhd::cons_to_prim(u, eos, opt);
    EXPECT_TRUE(r.floored);
    EXPECT_EQ(check::violates_prim(r.prim), nullptr)
        << "healed prim must be physical";
    EXPECT_DOUBLE_EQ(r.prim.rho, opt.rho_floor);
    EXPECT_DOUBLE_EQ(r.prim.p, opt.p_floor);
  }
  EXPECT_EQ(check::violation_count(), 0) << check::last_violation();
}

TEST(CheckC2P, SrmhdUnphysicalStatesHealToAtmosphere) {
  CountScope scope;
  const eos::IdealGas eos(5.0 / 3.0);
  const srmhd::Con2PrimOptions opt;  // default floors

  srmhd::Cons u{};
  u.d = 1.0;
  u.tau = kNaN;  // NaN energy with a live magnetic field
  u.bx = 0.5;
  const auto r = srmhd::cons_to_prim(u, eos, opt);
  EXPECT_TRUE(r.floored);
  EXPECT_EQ(check::violates_prim(r.prim), nullptr);
  EXPECT_EQ(check::violation_count(), 0) << check::last_violation();
}

TEST(CheckC2P, MisconfiguredAtmosphereIsTheBugTheCheckerCatches) {
  // A negative rho_floor turns the atmosphere itself unphysical: any zone
  // routed through it comes back with rho < 0. Checks-on builds report the
  // violation at the c2p boundary; checks-off builds return the bad prim
  // silently — exactly the corruption class rshc::check exists to catch.
  const eos::IdealGas eos(5.0 / 3.0);
  srhd::Con2PrimOptions opt;
  opt.rho_floor = -1.0;  // the seeded bug
  const srhd::Cons u{kNaN, 0.0, 0.0, 0.0, 1.0};

#if RSHC_CHECKS_ENABLED
  CountScope scope;
  const auto r = srhd::cons_to_prim(u, eos, opt);
  EXPECT_TRUE(r.floored);
  EXPECT_GE(check::violation_count(), 1);
  const std::string msg = check::last_violation();
  EXPECT_NE(msg.find("srhd.con2prim"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rho <= 0"), std::string::npos) << msg;
#else
  const auto r = srhd::cons_to_prim(u, eos, opt);
  EXPECT_TRUE(r.floored);
  EXPECT_DOUBLE_EQ(r.prim.rho, -1.0);  // silent garbage-out, as documented
#endif
}

// --- solver-level seeded bug: NaN zone + broken atmosphere ---------------

TEST(CheckSolver, SeededUnphysicalZoneIsReportedWithCoordinates) {
  auto opt = periodic_opts();
  opt.physics.c2p.rho_floor = -1.0;  // seeded misconfiguration
  const mesh::Grid g = mesh::Grid::make_1d(16, 0.0, 1.0);
  solver::SrhdSolver s(g, opt);
  s.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });

  // Corrupt one interior conservative zone (global cell 8).
  auto& blk = s.block(0);
  blk.cons()(srhd::kD, 0, 0, blk.begin(0) + 8) = kNaN;

#if RSHC_CHECKS_ENABLED
  CountScope scope;
  s.step(1e-3);
  EXPECT_GE(check::violation_count(), 1);
  const std::string msg = check::last_violation();
  // Every report carries zone provenance (block id + i/j/k).
  EXPECT_NE(msg.find("block"), std::string::npos) << msg;
  EXPECT_NE(msg.find("i="), std::string::npos) << msg;
#else
  s.step(1e-3);
  // Without checks the broken atmosphere leaks rho = -1 into the state.
  const auto rho = s.gather_prim_var(srhd::kRho);
  EXPECT_DOUBLE_EQ(rho[8], -1.0);
#endif
  EXPECT_GT(s.c2p_stats().floored_zones, 0);
}

TEST(CheckSolver, SaneFloorsHealNaNZoneWithoutViolations) {
  auto opt = periodic_opts();  // default (positive) floors
  const mesh::Grid g = mesh::Grid::make_1d(16, 0.0, 1.0);
  solver::SrhdSolver s(g, opt);
  s.initialize([](double, double, double) {
    return srhd::Prim{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  auto& blk = s.block(0);
  blk.cons()(srhd::kTau, 0, 0, blk.begin(0) + 5) = kNaN;

  CountScope scope;
  s.step(1e-3);
  EXPECT_EQ(check::violation_count(), 0) << check::last_violation();
  EXPECT_GT(s.c2p_stats().floored_zones, 0);
  const auto rho = s.gather_prim_var(srhd::kRho);
  for (const double r : rho) EXPECT_TRUE(std::isfinite(r));
}

// --- halo buffer checks --------------------------------------------------

TEST(CheckHalo, PackedFaceWithNaNIsReported) {
  const mesh::Grid g = mesh::Grid::make_1d(8, 0.0, 1.0);
  mesh::Block blk(g, mesh::BlockExtents{{0, 0, 0}, {8, 1, 1}}, 2, 5, 5);
  for (int v = 0; v < 5; ++v) {
    for (int i = 0; i < blk.total(0); ++i) blk.prim()(v, 0, 0, i) = 1.0;
  }
  // NaN inside the low-face send layers (local i in [ng, 2*ng)).
  blk.prim()(srhd::kP, 0, 0, blk.begin(0)) = kNaN;

  std::vector<double> buf(mesh::halo_buffer_size(blk, 0));
  CountScope scope;
  mesh::pack_face(blk, 0, 0, buf);
#if RSHC_CHECKS_ENABLED
  EXPECT_GE(check::violation_count(), 1);
  EXPECT_NE(check::last_violation().find("halo"), std::string::npos);
#else
  EXPECT_EQ(check::violation_count(), 0);
#endif
}

TEST(CheckHaloGuard, LegalProtocolIsSilent) {
  CountScope scope;
  check::HaloGuard guard;
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = 0; side < 2; ++side) {
      guard.post(axis, side);
      guard.complete(axis, side);
      guard.consume(axis, side);
    }
  }
  EXPECT_EQ(check::violation_count(), 0) << check::last_violation();
}

#if RSHC_CHECKS_ENABLED
TEST(CheckHaloGuard, ConsumeBeforePostIsReported) {
  CountScope scope;
  check::HaloGuard guard;
  guard.consume(0, 0);
  EXPECT_EQ(check::violation_count(), 1);
  EXPECT_NE(check::last_violation().find("no exchange posted"),
            std::string::npos);
}

TEST(CheckHaloGuard, ConsumeBeforeCompleteIsReported) {
  CountScope scope;
  check::HaloGuard guard;
  guard.post(1, 1);
  guard.consume(1, 1);
  EXPECT_EQ(check::violation_count(), 1);
  EXPECT_NE(check::last_violation().find("before its exchange completed"),
            std::string::npos);
}

TEST(CheckHaloGuard, DoublePostIsReported) {
  CountScope scope;
  check::HaloGuard guard;
  guard.post(2, 0);
  guard.post(2, 0);
  EXPECT_EQ(check::violation_count(), 1);
  EXPECT_NE(check::last_violation().find("posted twice"), std::string::npos);
}
#endif  // RSHC_CHECKS_ENABLED

// --- task-graph assertions stay silent on healthy graphs ----------------

TEST(CheckGraph, HealthyGraphRunsWithoutViolations) {
  CountScope scope;
  parallel::ThreadPool pool(4);
  parallel::TaskGraph graph;
  std::atomic<int> ran{0};  // relaxed-sufficient test counter (seq_cst fine)
  const auto a = graph.add([&] { ran++; });
  const auto b = graph.add([&] { ran++; }, {a});
  const auto c = graph.add([&] { ran++; }, {a});
  graph.add([&] { ran++; }, {b, c});
  for (int rep = 0; rep < 3; ++rep) {
    ran = 0;
    graph.run(pool);
    EXPECT_EQ(ran.load(), 4);
  }
  EXPECT_EQ(check::violation_count(), 0) << check::last_violation();
}

}  // namespace
