// Seeded-bug demonstration for the TSan lane (ctest label: demo).
//
// This binary contains a DELIBERATE data race: two threads increment a
// plain int with no synchronization. Under a normal build it passes (no
// assertion depends on the racy value being exact), and the sanitizer
// lanes exclude the demo label from their ctest run. The TSan CI job then
// runs this binary directly and asserts that it *fails* (ThreadSanitizer
// reports the race and exits non-zero under halt_on_error=1) — proving the
// lane actually detects races rather than trivially passing.
//
// Do not "fix" this race; it is the lane's canary.

#include <gtest/gtest.h>

#include <thread>

namespace {

TEST(TsanSeededRace, DeliberateUnsynchronizedCounter) {
  int racy = 0;  // intentionally not atomic, not locked
  auto bump = [&racy] {
    for (int i = 0; i < 100000; ++i) racy++;  // the seeded race
  };
  std::thread a(bump);
  std::thread b(bump);
  a.join();
  b.join();
  // Sanity only — any interleaving satisfies this; the value is racy.
  EXPECT_GT(racy, 0);
  EXPECT_LE(racy, 200000);
}

}  // namespace
