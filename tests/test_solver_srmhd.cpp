// SRMHD solver integration: stability on standard MHD problems, GLM
// divergence control, reduction to SRHD at B = 0, and failure injection
// (corrupted zones must be healed, not crash the run).

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/analysis/norms.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/diagnostics.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;
using solver::SrmhdSolver;

SrmhdSolver::Options mhd_opts() {
  SrmhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

TEST(SrmhdSolver, StaticMagnetizedGasStaysStatic) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  SrmhdSolver s(g, mhd_opts());
  s.initialize([](double, double, double) {
    srmhd::Prim w;
    w.rho = 1.0;
    w.p = 1.0;
    w.bx = 0.5;
    w.by = 0.25;
    return w;
  });
  for (int i = 0; i < 10; ++i) s.step(0.005);
  const auto rho = s.gather_prim_var(srmhd::kRho);
  const auto bx = s.gather_prim_var(srmhd::kBx);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(rho[i], 1.0, 1e-11);
    EXPECT_NEAR(bx[i], 0.5, 1e-11);
  }
  EXPECT_NEAR(solver::max_divb(s), 0.0, 1e-11);
}

TEST(SrmhdSolver, UnmagnetizedSodMatchesSrhdSolver) {
  const problems::ShockTube st = problems::sod();
  const mesh::Grid g = mesh::Grid::make_1d(100, 0.0, 1.0);

  SrmhdSolver::Options mopt = mhd_opts();
  mopt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  mopt.physics.eos = eos::IdealGas(st.gamma);
  SrmhdSolver ms(g, mopt);
  ms.initialize([&st](double x, double, double) {
    const srhd::Prim h = x < st.x_split ? st.left : st.right;
    srmhd::Prim w;
    w.rho = h.rho;
    w.vx = h.vx;
    w.p = h.p;
    return w;
  });

  solver::SrhdSolver::Options hopt;
  hopt.recon = recon::Method::kPLMMC;
  hopt.cfl = 0.3;
  hopt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  hopt.physics.eos = eos::IdealGas(st.gamma);
  hopt.physics.riemann = riemann::Solver::kHLL;
  solver::SrhdSolver hs(g, hopt);
  hs.initialize(problems::shock_tube_ic(st));

  const double dt = 0.5 * std::min(ms.compute_dt(), hs.compute_dt());
  for (int i = 0; i < 40; ++i) {
    ms.step(dt);
    hs.step(dt);
  }
  const auto rho_m = ms.gather_prim_var(srmhd::kRho);
  const auto rho_h = hs.gather_prim_var(srhd::kRho);
  // Same HLL flux, same reconstruction: results agree to solver tolerance.
  EXPECT_LT(analysis::l1_error(rho_m, rho_h), 1e-8);
}

TEST(SrmhdSolver, BalsaraShockTubeRunsStable) {
  const problems::MhdShockTube st = problems::balsara_1();
  const mesh::Grid g = mesh::Grid::make_1d(200, 0.0, 1.0);
  SrmhdSolver::Options opt = mhd_opts();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);
  SrmhdSolver s(g, opt);
  s.initialize(problems::mhd_shock_tube_ic(st));
  s.advance_to(st.t_final);

  const auto rho = s.gather_prim_var(srmhd::kRho);
  const auto by = s.gather_prim_var(srmhd::kBy);
  for (const double r : rho) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
  // Left state, compound structures, right state: By must transition from
  // +1 to -1 through the fan.
  EXPECT_NEAR(by.front(), 1.0, 1e-6);
  EXPECT_NEAR(by.back(), -1.0, 1e-6);
  // Density stays bounded by the initial extremes (no blow-up).
  for (const double r : rho) EXPECT_LT(r, 2.0);
  EXPECT_EQ(s.c2p_stats().floored_zones, 0);
}

TEST(SrmhdSolver, ConservationWithPeriodicBcs) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, -0.5, 0.5, -0.5, 0.5);
  SrmhdSolver s(g, mhd_opts());
  s.initialize(problems::field_loop_ic({}));
  const auto before = s.total_cons();
  for (int i = 0; i < 15; ++i) s.step(s.compute_dt());
  const auto after = s.total_cons();
  EXPECT_NEAR(after.d, before.d, 1e-11 * before.d);
  EXPECT_NEAR(after.bx, before.bx, 1e-11 * std::max(1.0, std::abs(before.bx)));
  EXPECT_NEAR(after.by, before.by, 1e-11 * std::max(1.0, std::abs(before.by)));
}

TEST(SrmhdSolver, GlmCleaningBoundsDivergenceGrowth) {
  auto run = [](bool cleaning) {
    const mesh::Grid g = mesh::Grid::make_2d(32, 32, -0.5, 0.5, -0.5, 0.5);
    SrmhdSolver::Options opt;
    opt.recon = recon::Method::kPLMMC;
    opt.cfl = 0.3;
    opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
    opt.physics.eos = eos::IdealGas(5.0 / 3.0);
    opt.physics.glm.enabled = cleaning;
    SrmhdSolver s(g, opt);
    // The discretized field loop edge seeds div B errors immediately.
    s.initialize(problems::field_loop_ic({}));
    for (int i = 0; i < 60; ++i) s.step(s.compute_dt());
    return solver::max_divb(s);
  };
  const double with_glm = run(true);
  const double without = run(false);
  EXPECT_LT(with_glm, 0.6 * without)
      << "cleaned=" << with_glm << " uncleaned=" << without;
}

TEST(SrmhdSolver, MhdBlastStaysPhysical) {
  const mesh::Grid g = mesh::Grid::make_2d(48, 48, -1.0, 1.0, -1.0, 1.0);
  SrmhdSolver::Options opt = mhd_opts();
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  SrmhdSolver s(g, opt);
  s.initialize(problems::mhd_blast2d_ic({}));
  for (int i = 0; i < 30; ++i) s.step(s.compute_dt());
  const auto p = s.gather_prim_var(srmhd::kP);
  const auto rho = s.gather_prim_var(srmhd::kRho);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GT(p[i], 0.0);
    EXPECT_GT(rho[i], 0.0);
    EXPECT_TRUE(std::isfinite(p[i]));
  }
}

TEST(SrmhdSolver, FailureInjectionIsHealedNotFatal) {
  // Corrupt one zone's conservatives mid-run: con2prim must floor it,
  // count it, and the run must continue producing finite output.
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  SrmhdSolver s(g, mhd_opts());
  s.initialize([](double, double, double) {
    srmhd::Prim w;
    w.rho = 1.0;
    w.p = 1.0;
    w.bx = 0.2;
    return w;
  });
  s.step(s.compute_dt());

  auto& blk = s.block(0);
  auto& u = blk.cons();
  const int k = blk.begin(2);
  const int j = blk.begin(1) + 4;
  const int i = blk.begin(0) + 4;
  u(srmhd::kD, k, j, i) = -5.0;          // unphysical density
  u(srmhd::kTau, k, j, i) = -1.0;        // and energy
  const long long floored_before = s.c2p_stats().floored_zones;
  EXPECT_NO_THROW({
    for (int n = 0; n < 5; ++n) s.step(s.compute_dt());
  });
  EXPECT_GT(s.c2p_stats().floored_zones, floored_before);
  for (const double r : s.gather_prim_var(srmhd::kRho)) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(SrmhdSolver, PsiDampingShrinksPsiNorm) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, -0.5, 0.5, -0.5, 0.5);
  SrmhdSolver::Options opt = mhd_opts();
  opt.physics.glm.alpha = 1.0;
  SrmhdSolver s(g, opt);
  // Seed pure psi noise on a static background.
  s.initialize([](double x, double y, double) {
    srmhd::Prim w;
    w.rho = 1.0;
    w.p = 1.0;
    w.psi = 0.1 * std::sin(2 * M_PI * x) * std::sin(2 * M_PI * y);
    return w;
  });
  const double psi0 = solver::psi_l2(s);
  for (int i = 0; i < 30; ++i) s.step(s.compute_dt());
  EXPECT_LT(solver::psi_l2(s), psi0);
}

}  // namespace
