// Device-offload vs pencil host-pipeline equivalence: HostPipeline::kDevice
// routes the full rhs / RK update / con2prim / CFL path through
// device::Device with persistent per-block arenas (DESIGN.md systems
// #4/#12), and promises *bitwise* identical states to the per-pencil
// reference — the kernels are the same compiled rhs_core bodies the host
// batched pipelines call. This suite pins that promise across every
// reconstruction scheme, Riemann solver, physics system, and
// dimensionality, plus the restricted-block constructor, multi-step
// residency (only halo-sized payloads may cross the boundary after step
// 0, asserted via the obs byte counters), and mid-run pipeline switching.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <tuple>

#include "rshc/mesh/halo.hpp"
#include "rshc/obs/obs.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

constexpr double kPi = 3.14159265358979323846;

/// Zero-cost accelerator model: no modeled latency / launch overhead, so
/// the suite exercises the full staging + stream-fencing machinery at
/// real-kernel speed.
device::AccelModel zero_cost() {
  return {0.0, std::numeric_limits<double>::infinity(), 0.0};
}

/// Count elements whose *bit patterns* differ (tolerates nothing, not even
/// -0.0 vs +0.0 or differing NaN payloads).
int count_bit_diffs(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) ++diffs;
  }
  return diffs;
}

/// Run `nsteps` fixed-dt steps under the pencil pipeline and under the
/// device pipeline, then require bitwise-equal cons and prim fields on
/// every block, identical dt from both the host and the device-resident
/// CFL scan, and identical con2prim health counters.
template <typename Solver, typename Ic>
void expect_device_matches_pencil(const mesh::Grid& g,
                                  typename Solver::Options opt, const Ic& ic,
                                  int nsteps) {
  opt.pipeline = solver::HostPipeline::kPencil;
  Solver ref(g, opt);
  ref.initialize(ic);
  opt.pipeline = solver::HostPipeline::kDevice;
  opt.accel = zero_cost();
  Solver s(g, opt);
  s.initialize(ic);

  const double dt = ref.compute_dt();
  // Pre-residency the device solver computes dt on the host mirror.
  EXPECT_EQ(dt, s.compute_dt()) << "pre-residency compute_dt drifted";
  for (int n = 0; n < nsteps; ++n) {
    ref.step(dt);
    s.step(dt);
  }
  ASSERT_TRUE(s.device_resident());
  // Post-step the device solver computes dt with its device-side CFL
  // kernel against the resident state.
  EXPECT_EQ(ref.compute_dt(), s.compute_dt())
      << "device-resident compute_dt drifted";

  s.sync_from_device();
  ASSERT_EQ(ref.num_blocks(), s.num_blocks());
  for (int b = 0; b < ref.num_blocks(); ++b) {
    EXPECT_EQ(count_bit_diffs(ref.block(b).cons().flat(),
                              s.block(b).cons().flat()),
              0)
        << "cons mismatch on block " << b;
    EXPECT_EQ(count_bit_diffs(ref.block(b).prim().flat(),
                              s.block(b).prim().flat()),
              0)
        << "prim mismatch on block " << b;
  }
  EXPECT_EQ(ref.c2p_stats().total_iterations, s.c2p_stats().total_iterations);
  EXPECT_EQ(ref.c2p_stats().floored_zones, s.c2p_stats().floored_zones);
}

/// SRHD workload with structure along every active axis (same as
/// test_rhs_pipeline, so the two suites pin the same dynamics).
srhd::Prim srhd_ic(double x, double y, double z) {
  const bool left = x < 0.5;
  srhd::Prim p;
  p.rho = (left ? 1.0 : 0.125) + 0.05 * std::sin(2.0 * kPi * y) +
          0.05 * std::cos(2.0 * kPi * z);
  p.vx = left ? 0.1 : -0.1;
  p.vy = 0.05 * std::sin(2.0 * kPi * x);
  p.vz = 0.05 * std::cos(2.0 * kPi * y);
  p.p = (left ? 1.0 : 0.1) + 0.02 * std::sin(2.0 * kPi * (x + z));
  return p;
}

/// SRMHD analogue: Balsara-1-like jump plus transverse field structure.
srmhd::Prim srmhd_ic(double x, double y, double z) {
  const bool left = x < 0.5;
  srmhd::Prim p;
  p.rho = left ? 1.0 : 0.125;
  p.vx = 0.05 * std::sin(2.0 * kPi * y);
  p.vy = 0.05 * std::cos(2.0 * kPi * x);
  p.vz = 0.02 * std::sin(2.0 * kPi * z);
  p.p = left ? 1.0 : 0.1;
  p.bx = 0.5;
  p.by = (left ? 1.0 : -1.0) + 0.1 * std::sin(2.0 * kPi * z);
  p.bz = 0.1 * std::cos(2.0 * kPi * y);
  p.psi = 0.0;
  return p;
}

/// Grid + step count per dimensionality (small but multi-block in 1D/2D,
/// so the halo staging crosses real sibling boundaries).
struct Case {
  mesh::Grid grid;
  std::array<int, 3> blocks;
  int nsteps;
};

Case make_case(int ndim) {
  switch (ndim) {
    case 1:
      return {mesh::Grid::make_1d(64, 0.0, 1.0), {2, 1, 1}, 4};
    case 2:
      return {mesh::Grid::make_2d(24, 16, 0.0, 1.0, 0.0, 1.0), {2, 2, 1}, 3};
    default:
      return {mesh::Grid(3, {12, 8, 8}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}),
              {1, 1, 1},
              2};
  }
}

using SrhdCombo = std::tuple<int, recon::Method, riemann::Solver>;

class DevicePipelineSrhd : public ::testing::TestWithParam<SrhdCombo> {};

TEST_P(DevicePipelineSrhd, DeviceMatchesPencilBitwise) {
  const auto [ndim, rm, rs] = GetParam();
  const Case c = make_case(ndim);
  solver::SrhdSolver::Options opt;
  opt.recon = rm;
  opt.cfl = 0.3;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.physics.riemann = rs;
  opt.blocks = c.blocks;
  expect_device_matches_pencil<solver::SrhdSolver>(c.grid, opt, srhd_ic,
                                                   c.nsteps);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DevicePipelineSrhd,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),
        ::testing::Values(recon::Method::kPCM, recon::Method::kPLMMinmod,
                          recon::Method::kPLMMC, recon::Method::kPLMVanLeer,
                          recon::Method::kPPM, recon::Method::kWENO5),
        ::testing::Values(riemann::Solver::kLLF, riemann::Solver::kHLL,
                          riemann::Solver::kHLLC)));

using SrmhdCombo = std::tuple<int, recon::Method>;

class DevicePipelineSrmhd : public ::testing::TestWithParam<SrmhdCombo> {};

TEST_P(DevicePipelineSrmhd, DeviceMatchesPencilBitwise) {
  const auto [ndim, rm] = GetParam();
  const Case c = make_case(ndim);
  solver::SrmhdSolver::Options opt;
  opt.recon = rm;
  opt.cfl = 0.25;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.blocks = c.blocks;
  expect_device_matches_pencil<solver::SrmhdSolver>(c.grid, opt, srmhd_ic,
                                                    c.nsteps);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DevicePipelineSrmhd,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),
        ::testing::Values(recon::Method::kPCM, recon::Method::kPLMMinmod,
                          recon::Method::kPLMMC, recon::Method::kPLMVanLeer,
                          recon::Method::kPPM, recon::Method::kWENO5)));

// Restricted-block construction (the distributed driver's per-rank view)
// must flow through the device pipeline too: the custom ghost filler runs
// against the host mirror between the rim download and the ghost upload.
TEST(DevicePipeline, RestrictedBlockDeviceMatchesPencil) {
  const mesh::Grid g = mesh::Grid::make_2d(20, 12, 0.0, 1.0, 0.0, 1.0);
  const mesh::BlockExtents sub{{0, 0, 0}, {20, 12, 1}};
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPPM;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kOutflow);
  opt.physics.riemann = riemann::Solver::kHLL;

  auto make = [&](solver::HostPipeline p) {
    opt.pipeline = p;
    opt.accel = zero_cost();
    auto s = std::make_unique<solver::SrhdSolver>(g, opt, sub);
    solver::SrhdSolver* raw = s.get();
    s->set_ghost_filler([raw](int) {
      auto& blk = raw->block(0);
      for (int axis = 0; axis < 2; ++axis) {
        for (int side = 0; side < 2; ++side) {
          const auto negate = solver::SrhdPhysics::reflect_negate_vars(axis);
          mesh::apply_physical_boundary(blk, axis, side,
                                        mesh::BcType::kOutflow, negate);
        }
      }
    });
    s->initialize(srhd_ic);
    return s;
  };

  auto ref = make(solver::HostPipeline::kPencil);
  auto s = make(solver::HostPipeline::kDevice);
  const double dt = ref->compute_dt();
  EXPECT_EQ(dt, s->compute_dt());
  for (int n = 0; n < 3; ++n) {
    ref->step(dt);
    s->step(dt);
  }
  s->sync_from_device();
  EXPECT_EQ(
      count_bit_diffs(ref->block(0).cons().flat(), s->block(0).cons().flat()),
      0);
  EXPECT_EQ(
      count_bit_diffs(ref->block(0).prim().flat(), s->block(0).prim().flat()),
      0);
}

// Mid-run pipeline switching: device -> host hands authority back to the
// host mirror (sync + residency drop), host -> device re-uploads. The
// final state must still match a pencil-only run bit for bit.
TEST(DevicePipeline, MidRunPipelineSwitchStaysBitwise) {
  const Case c = make_case(2);
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.3;
  opt.bc.type = {mesh::BcType::kOutflow, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.physics.riemann = riemann::Solver::kHLLC;
  opt.blocks = c.blocks;

  opt.pipeline = solver::HostPipeline::kPencil;
  solver::SrhdSolver ref(c.grid, opt);
  ref.initialize(srhd_ic);
  opt.pipeline = solver::HostPipeline::kDevice;
  opt.accel = zero_cost();
  solver::SrhdSolver s(c.grid, opt);
  s.initialize(srhd_ic);

  const double dt = ref.compute_dt();
  for (int n = 0; n < 4; ++n) ref.step(dt);

  s.step(dt);
  s.step(dt);
  EXPECT_TRUE(s.device_resident());
  s.set_pipeline(solver::HostPipeline::kPencil);  // syncs + drops residency
  EXPECT_FALSE(s.device_resident());
  s.step(dt);  // host step against the synced mirror
  s.set_pipeline(solver::HostPipeline::kDevice);
  s.step(dt);  // re-uploads, then steps on the device
  EXPECT_TRUE(s.device_resident());
  s.sync_from_device();

  for (int b = 0; b < ref.num_blocks(); ++b) {
    EXPECT_EQ(count_bit_diffs(ref.block(b).cons().flat(),
                              s.block(b).cons().flat()),
              0);
    EXPECT_EQ(count_bit_diffs(ref.block(b).prim().flat(),
                              s.block(b).prim().flat()),
              0);
  }
}

#if RSHC_OBS_ENABLED
/// Expected D2H bytes per RK stage: every block's interior rims come down
/// — exactly 2 * halo_buffer_size(b, axis) doubles per active axis (the
/// same region the sibling halo exchange reads).
template <typename Solver>
std::int64_t rim_bytes_per_stage(const Solver& s) {
  std::int64_t doubles = 0;
  for (int b = 0; b < s.num_blocks(); ++b) {
    const auto& blk = s.block(b);
    for (int axis = 0; axis < s.grid().ndim(); ++axis) {
      doubles +=
          2 * static_cast<std::int64_t>(mesh::halo_buffer_size(blk, axis));
    }
  }
  return doubles * static_cast<std::int64_t>(sizeof(double));
}

/// Expected H2D bytes per RK stage: every block's freshly filled ghost
/// shells go back up with *full* transverse extent (physical boundaries
/// fill corner ghosts, so the shells are wider than the rims).
template <typename Solver>
std::int64_t ghost_bytes_per_stage(const Solver& s) {
  std::int64_t doubles = 0;
  for (int b = 0; b < s.num_blocks(); ++b) {
    const auto& blk = s.block(b);
    for (int axis = 0; axis < s.grid().ndim(); ++axis) {
      std::int64_t shell = static_cast<std::int64_t>(blk.prim().nvar()) *
                           static_cast<std::int64_t>(blk.ghost(axis));
      for (int a = 0; a < 3; ++a) {
        if (a != axis) shell *= static_cast<std::int64_t>(blk.total(a));
      }
      doubles += 2 * shell;
    }
  }
  return doubles * static_cast<std::int64_t>(sizeof(double));
}

/// Multi-step residency accounting: after the step-0 full upload, a device
/// step moves *exactly* nstages halo payloads in each direction — nothing
/// else may cross the boundary. Pinned for both physics systems via the
/// device backend's obs byte counters.
template <typename Solver, typename Ic>
void expect_halo_only_traffic(const Ic& ic) {
  if (!obs::enabled()) GTEST_SKIP() << "obs disabled at runtime (RSHC_OBS=0)";
  typename Solver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.25;
  opt.bc.type = {mesh::BcType::kPeriodic, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.blocks = {2, 2, 1};
  opt.pipeline = solver::HostPipeline::kDevice;
  opt.accel = zero_cost();
  Solver s(mesh::Grid::make_2d(24, 16, 0.0, 1.0, 0.0, 1.0), opt);
  s.initialize(ic);
  const double dt = s.compute_dt();  // pre-residency: host scan, no traffic

  auto& h2d = obs::Registry::global().counter("device.h2d.bytes");
  auto& d2h = obs::Registry::global().counter("device.d2h.bytes");

  s.step(dt);  // step 0: full residency upload + per-stage halo traffic
  const std::int64_t up_stage = ghost_bytes_per_stage(s);
  const std::int64_t down_stage = rim_bytes_per_stage(s);
  const std::int64_t stages = time::num_stages(opt.integrator);
  for (int n = 1; n <= 2; ++n) {
    const std::int64_t h2d0 = h2d.total();
    const std::int64_t d2h0 = d2h.total();
    s.step(dt);
    EXPECT_EQ(h2d.total() - h2d0, stages * up_stage)
        << "step " << n << " uploaded more than its ghost shells";
    EXPECT_EQ(d2h.total() - d2h0, stages * down_stage)
        << "step " << n << " downloaded more than its rims";
  }
}

TEST(DevicePipeline, HaloOnlyTransfersAfterFirstStepSrhd) {
  expect_halo_only_traffic<solver::SrhdSolver>(srhd_ic);
}

TEST(DevicePipeline, HaloOnlyTransfersAfterFirstStepSrmhd) {
  expect_halo_only_traffic<solver::SrmhdSolver>(srmhd_ic);
}

// The step-0 residency upload must be the *full* state (cons + prim of
// every ghosted cell) plus the stage halo traffic — and only once: a
// second device run of the same solver object re-uses the arenas.
TEST(DevicePipeline, ResidencyUploadIsFullStateOnce) {
  if (!obs::enabled()) GTEST_SKIP() << "obs disabled at runtime (RSHC_OBS=0)";
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.25;
  opt.bc.type = {mesh::BcType::kPeriodic, mesh::BcType::kPeriodic,
                 mesh::BcType::kPeriodic};
  opt.blocks = {2, 1, 1};
  opt.pipeline = solver::HostPipeline::kDevice;
  opt.accel = zero_cost();
  solver::SrhdSolver s(mesh::Grid::make_1d(64, 0.0, 1.0), opt);
  s.initialize(srhd_ic);
  const double dt = s.compute_dt();

  std::int64_t full_state = 0;
  for (int b = 0; b < s.num_blocks(); ++b) {
    full_state += static_cast<std::int64_t>(s.block(b).cons().size() +
                                            s.block(b).prim().size()) *
                  static_cast<std::int64_t>(sizeof(double));
  }
  auto& h2d = obs::Registry::global().counter("device.h2d.bytes");
  const std::int64_t h2d0 = h2d.total();
  s.step(dt);
  const std::int64_t stages = time::num_stages(opt.integrator);
  EXPECT_EQ(h2d.total() - h2d0,
            full_state + stages * ghost_bytes_per_stage(s));
}
#endif  // RSHC_OBS_ENABLED

}  // namespace
