// Tests for the heterogeneous device layer: staging semantics, stream
// ordering, events, and the accelerator cost model.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <thread>

#include "rshc/common/error.hpp"
#include "rshc/common/timer.hpp"
#include "rshc/device/device.hpp"

namespace {

using namespace rshc::device;

class AllBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(AllBackends, UploadDownloadRoundTrip) {
  auto dev = make_device(GetParam());
  std::vector<double> in(257);
  std::iota(in.begin(), in.end(), 0.0);
  Buffer buf = dev->alloc(in.size());
  dev->upload_async(in, buf);
  std::vector<double> out(in.size(), -1.0);
  dev->download_async(buf, out);
  dev->synchronize();
  EXPECT_EQ(in, out);
}

TEST_P(AllBackends, LaunchSeesUploadedData) {
  auto dev = make_device(GetParam());
  std::vector<double> in(100, 2.0);
  Buffer buf = dev->alloc(in.size());
  dev->upload_async(in, buf);
  auto view = buf.device_view();
  dev->launch([view] {
    for (double& x : view) x *= 3.0;
  });
  std::vector<double> out(in.size());
  dev->download_async(buf, out);
  dev->synchronize();
  for (const double x : out) EXPECT_DOUBLE_EQ(x, 6.0);
}

TEST_P(AllBackends, KernelsExecuteInSubmissionOrder) {
  auto dev = make_device(GetParam());
  Buffer buf = dev->alloc(1);
  std::vector<double> one{1.0};
  dev->upload_async(one, buf);
  auto view = buf.device_view();
  // (x + 1) * 10 != x * 10 + 1: order matters.
  dev->launch([view] { view[0] += 1.0; });
  dev->launch([view] { view[0] *= 10.0; });
  std::vector<double> out(1);
  dev->download_async(buf, out);
  dev->synchronize();
  EXPECT_DOUBLE_EQ(out[0], 20.0);
}

TEST_P(AllBackends, SizeMismatchThrows) {
  auto dev = make_device(GetParam());
  Buffer buf = dev->alloc(4);
  std::vector<double> wrong(5);
  EXPECT_THROW(dev->upload_async(wrong, buf), rshc::Error);
  EXPECT_THROW(dev->download_async(buf, wrong), rshc::Error);
}

TEST_P(AllBackends, NamesAreDistinct) {
  auto dev = make_device(GetParam());
  EXPECT_EQ(dev->backend(), GetParam());
  EXPECT_FALSE(dev->name().empty());
}

INSTANTIATE_TEST_SUITE_P(Backends, AllBackends,
                         ::testing::Values(Backend::kHostScalar,
                                           Backend::kHostSimd,
                                           Backend::kAccelSim));

TEST(Device, HostBackendsNeedNoStaging) {
  EXPECT_FALSE(make_device(Backend::kHostScalar)->requires_staging());
  EXPECT_FALSE(make_device(Backend::kHostSimd)->requires_staging());
  EXPECT_TRUE(make_device(Backend::kAccelSim)->requires_staging());
}

TEST(Device, EventsSignalCompletion) {
  auto dev = make_device(Backend::kAccelSim);
  std::atomic<bool> ran{false};
  Event e = dev->launch([&ran] { ran.store(true); });
  e.wait();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(e.query());
}

TEST(Device, AccelIsAsynchronous) {
  AccelModel model;
  model.launch_overhead_sec = 20e-3;
  auto dev = make_device(Backend::kAccelSim, model);
  rshc::WallTimer t;
  Event e = dev->launch([] {}, /*work_items=*/1);
  const double submit_time = t.seconds();
  e.wait();
  const double total_time = t.seconds();
  // Submission returns immediately; completion pays the modeled overhead.
  EXPECT_LT(submit_time, 0.010);
  EXPECT_GE(total_time, 0.015);
}

TEST(Device, AccelTransferCostScalesWithBytes) {
  AccelModel model;
  model.transfer_latency_sec = 0.0;
  model.transfer_bandwidth_bytes_per_sec = 1e8;  // deliberately slow: 100MB/s
  auto dev = make_device(Backend::kAccelSim, model);
  std::vector<double> big(1 << 17);  // 1 MiB -> ~10 ms at 100 MB/s
  Buffer buf = dev->alloc(big.size());
  rshc::WallTimer t;
  dev->upload_async(big, buf);
  dev->synchronize();
  EXPECT_GE(t.seconds(), 0.008);
}

TEST(Device, UntimedLaunchSkipsOverhead) {
  AccelModel model;
  model.launch_overhead_sec = 50e-3;
  auto dev = make_device(Backend::kAccelSim, model);
  rshc::WallTimer t;
  for (int i = 0; i < 5; ++i) {
    dev->launch([] {}, /*work_items=*/0);
  }
  dev->synchronize();
  EXPECT_LT(t.seconds(), 0.050);
}

TEST(Device, BuffersTrackOwningDevice) {
  auto a = make_device(Backend::kHostScalar);
  auto b = make_device(Backend::kHostScalar);
  Buffer ba = a->alloc(1);
  Buffer bb = b->alloc(1);
  EXPECT_NE(ba.device_id(), bb.device_id());
  EXPECT_EQ(ba.size(), 1u);
}

// Two-stream H2D -> kernel -> D2H chain where every hop changes streams
// and is ordered *only* by event fences: upload on the transfer stream,
// kernel on the compute stream after wait_event, download back on the
// transfer stream after a second wait_event. With a modeled transfer
// latency the kernel would race ahead of the upload if the fence were
// broken, so a correct result here means the fences actually held.
TEST_P(AllBackends, CrossStreamEventFencesOrderWork) {
  AccelModel model;
  model.transfer_latency_sec = 5e-3;
  model.transfer_bandwidth_bytes_per_sec =
      std::numeric_limits<double>::infinity();
  model.launch_overhead_sec = 0.0;
  auto dev = make_device(GetParam(), model);
  const StreamId compute = kDefaultStream;
  const StreamId transfer = dev->create_stream();

  std::vector<double> in(64);
  std::iota(in.begin(), in.end(), 1.0);
  Buffer buf = dev->alloc(in.size());
  const Event up = dev->upload_async(in, buf, transfer);
  dev->wait_event(compute, up);
  auto view = buf.device_view();
  const Event k = dev->launch([view] {
    for (double& x : view) x *= 2.0;
  }, /*work_items=*/view.size(), compute);
  dev->wait_event(transfer, k);
  std::vector<double> out(in.size(), -1.0);
  dev->download_async(buf, out, transfer);
  dev->synchronize();
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * in[i]) << "at " << i;
  }
}

TEST(Device, StreamsRunIndependentlyUntilFenced) {
  auto dev = make_device(Backend::kAccelSim);
  const StreamId s1 = dev->create_stream();
  // A kernel parked on the default stream must not block a later kernel
  // submitted to another stream (no implicit cross-stream ordering).
  std::atomic<bool> release{false};
  std::atomic<bool> other_ran{false};
  dev->launch([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  Event e = dev->launch([&other_ran] { other_ran.store(true); }, 0, s1);
  e.wait();
  EXPECT_TRUE(other_ran.load());
  release.store(true);
  dev->synchronize();
}

// Seeded mis-fence: an upload with real modeled latency is enqueued on the
// transfer stream and a dependent kernel on the compute stream. Without
// wait_event the kernel observes the upload still incomplete (the bug this
// fence discipline exists to prevent); with the fence it always observes
// completion. Observation is via Event::query() — never a racing buffer
// read — so the test is TSan-clean.
TEST(Device, MissingCrossStreamFenceIsObservable) {
  AccelModel model;
  model.transfer_latency_sec = 20e-3;
  model.transfer_bandwidth_bytes_per_sec =
      std::numeric_limits<double>::infinity();
  model.launch_overhead_sec = 0.0;
  auto dev = make_device(Backend::kAccelSim, model);
  const StreamId transfer = dev->create_stream();
  std::vector<double> in(8, 1.0);
  Buffer buf = dev->alloc(in.size());

  {
    // Mis-fenced: kernel launches immediately while the upload is still
    // paying its 20 ms modeled latency.
    const Event up = dev->upload_async(in, buf, transfer);
    std::atomic<bool> upload_done_at_kernel{true};
    dev->launch([up, &upload_done_at_kernel] {
      upload_done_at_kernel.store(up.query());
    }).wait();
    EXPECT_FALSE(upload_done_at_kernel.load())
        << "kernel should have raced ahead of the un-fenced upload";
    dev->synchronize();
  }
  {
    // Fenced: the same chain with wait_event is always ordered.
    const Event up = dev->upload_async(in, buf, transfer);
    dev->wait_event(kDefaultStream, up);
    std::atomic<bool> upload_done_at_kernel{false};
    dev->launch([up, &upload_done_at_kernel] {
      upload_done_at_kernel.store(up.query());
    }).wait();
    EXPECT_TRUE(upload_done_at_kernel.load());
    dev->synchronize();
  }
}

TEST(Device, WaitEventOnCompletedEventIsNoOp) {
  auto dev = make_device(Backend::kAccelSim);
  const StreamId s1 = dev->create_stream();
  Event e = dev->launch([] {});
  e.wait();
  dev->wait_event(s1, e);  // already set: must not deadlock
  std::atomic<bool> ran{false};
  dev->launch([&ran] { ran.store(true); }, 0, s1).wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
