// Distributed (message-passing) solver: numerical equivalence with the
// serial path, collective dt agreement, and traffic accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/analysis/norms.hpp"
#include "rshc/problems/problems.hpp"
#include "rshc/solver/distributed.hpp"
#include "rshc/solver/fv_solver.hpp"

namespace {

using namespace rshc;

solver::SrhdSolver::Options base_opts(mesh::BcType bc) {
  solver::SrhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.4;
  opt.bc = mesh::BoundarySpec::all(bc);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  return opt;
}

srhd::Prim wavy_ic(double x, double y, double) {
  srhd::Prim w;
  w.rho = 1.0 + 0.4 * std::sin(2 * M_PI * x) * std::cos(2 * M_PI * y);
  w.vx = 0.3;
  w.vy = -0.15;
  w.p = 1.0;
  return w;
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, MatchesSerialSolverBitwise2d) {
  const int nranks = GetParam();
  const mesh::Grid g = mesh::Grid::make_2d(24, 24, 0.0, 1.0, 0.0, 1.0);
  const auto opt = base_opts(mesh::BcType::kPeriodic);
  constexpr double kDt = 0.004;
  constexpr int kSteps = 8;

  // Serial reference.
  solver::SrhdSolver ref(g, opt);
  ref.initialize(wavy_ic);
  for (int i = 0; i < kSteps; ++i) ref.step(kDt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  std::vector<double> rho_dist;
  comm::run_world(nranks, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    s.initialize(wavy_ic);
    for (int i = 0; i < kSteps; ++i) s.step(kDt);
    auto gathered = s.gather_prim_var_root(srhd::kRho);
    if (c.rank() == 0) rho_dist = std::move(gathered);
  });

  ASSERT_EQ(rho_dist.size(), rho_ref.size());
  for (std::size_t i = 0; i < rho_ref.size(); ++i) {
    EXPECT_EQ(rho_dist[i], rho_ref[i]) << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 4));

TEST(Distributed, AgreesWithSerialOnOutflowShockTube) {
  const problems::ShockTube st = problems::sod();
  const mesh::Grid g = mesh::Grid::make_1d(96, 0.0, 1.0);
  auto opt = base_opts(mesh::BcType::kOutflow);
  opt.physics.eos = eos::IdealGas(st.gamma);

  solver::SrhdSolver ref(g, opt);
  ref.initialize(problems::shock_tube_ic(st));
  constexpr double kDt = 0.002;
  for (int i = 0; i < 30; ++i) ref.step(kDt);
  const auto rho_ref = ref.gather_prim_var(srhd::kRho);

  std::vector<double> rho_dist;
  comm::run_world(3, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    s.initialize(problems::shock_tube_ic(st));
    for (int i = 0; i < 30; ++i) s.step(kDt);
    auto gathered = s.gather_prim_var_root(srhd::kRho);
    if (c.rank() == 0) rho_dist = std::move(gathered);
  });

  ASSERT_EQ(rho_dist.size(), rho_ref.size());
  for (std::size_t i = 0; i < rho_ref.size(); ++i) {
    EXPECT_EQ(rho_dist[i], rho_ref[i]) << "cell " << i;
  }
}

TEST(Distributed, DtIsGloballyAgreed) {
  // Put the fastest zone on one rank only: every rank must still compute
  // the same (global minimum) dt.
  const mesh::Grid g = mesh::Grid::make_1d(64, 0.0, 1.0);
  const auto opt = base_opts(mesh::BcType::kPeriodic);
  std::vector<double> dts(2, -1.0);
  comm::run_world(2, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    s.initialize([](double x, double, double) {
      srhd::Prim w;
      w.rho = 1.0;
      w.p = x < 0.5 ? 100.0 : 1e-4;  // hot half is much faster
      return w;
    });
    dts[static_cast<std::size_t>(c.rank())] = s.compute_dt();
  });
  EXPECT_DOUBLE_EQ(dts[0], dts[1]);
  EXPECT_GT(dts[0], 0.0);
}

TEST(Distributed, HaloTrafficIsAccounted) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  const auto opt = base_opts(mesh::BcType::kPeriodic);
  comm::World world(4);
  std::vector<std::jthread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&world, &g, &opt, r] {
      auto c = world.communicator(r);
      solver::DistributedSrhdSolver s(g, c, opt);
      s.initialize(wavy_ic);
      s.step(0.004);
    });
  }
  threads.clear();  // join
  // 4 ranks x 2 axes x 2 sides x 3 RK stages = 48 halo messages per step
  // (plus none for dt since we used a fixed dt).
  EXPECT_GE(world.total_messages(), 48u);
  EXPECT_GT(world.total_bytes(), 48u * 8);
}

TEST(Distributed, AdvanceToReachesFinalTime) {
  const mesh::Grid g = mesh::Grid::make_1d(48, 0.0, 1.0);
  const auto opt = base_opts(mesh::BcType::kPeriodic);
  comm::run_world(2, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    s.initialize(problems::smooth_wave_ic({}));
    const int steps = s.advance_to(0.05);
    EXPECT_GT(steps, 0);
    EXPECT_NEAR(s.time(), 0.05, 1e-12);
  });
}

TEST(DistributedMhd, MatchesSerialSrmhdBitwise) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, -0.5, 0.5, -0.5, 0.5);
  solver::SrmhdSolver::Options opt;
  opt.recon = recon::Method::kPLMMC;
  opt.cfl = 0.3;
  opt.bc = mesh::BoundarySpec::all(mesh::BcType::kPeriodic);
  opt.physics.eos = eos::IdealGas(5.0 / 3.0);
  const auto ic = problems::field_loop_ic({});
  constexpr double kDt = 0.004;
  constexpr int kSteps = 6;

  solver::SrmhdSolver ref(g, opt);
  ref.initialize(ic);
  for (int i = 0; i < kSteps; ++i) ref.step(kDt);
  const auto by_ref = ref.gather_prim_var(srmhd::kBy);

  std::vector<double> by_dist;
  comm::run_world(4, [&](comm::Communicator& c) {
    solver::DistributedSrmhdSolver s(g, c, opt);
    s.initialize(ic);
    for (int i = 0; i < kSteps; ++i) s.step(kDt);
    auto gathered = s.gather_prim_var_root(srmhd::kBy);
    if (c.rank() == 0) by_dist = std::move(gathered);
  });

  ASSERT_EQ(by_dist.size(), by_ref.size());
  for (std::size_t i = 0; i < by_ref.size(); ++i) {
    EXPECT_EQ(by_dist[i], by_ref[i]) << "cell " << i;
  }
}

TEST(Distributed, TopologyMatchesWorldSize) {
  const mesh::Grid g = mesh::Grid::make_2d(16, 16, 0.0, 1.0, 0.0, 1.0);
  const auto opt = base_opts(mesh::BcType::kPeriodic);
  comm::run_world(4, [&](comm::Communicator& c) {
    solver::DistributedSrhdSolver s(g, c, opt);
    EXPECT_EQ(s.topology().size(), 4);
    EXPECT_EQ(s.topology().dims()[0] * s.topology().dims()[1], 4);
    EXPECT_GT(s.local_block().extents().num_cells(), 0);
  });
}

}  // namespace
