// Initial-condition library: membrane placement, perturbation structure,
// analytic divergence-free fields, and published parameter values.

#include <gtest/gtest.h>

#include <cmath>

#include "rshc/problems/problems.hpp"

namespace {

using namespace rshc;
using namespace rshc::problems;

TEST(Problems, ShockTubeMembraneSplitsStates) {
  const ShockTube st = marti_muller_1();
  const auto ic = shock_tube_ic(st);
  EXPECT_DOUBLE_EQ(ic(0.1, 0, 0).rho, 10.0);
  EXPECT_DOUBLE_EQ(ic(0.9, 0, 0).rho, 1.0);
  EXPECT_DOUBLE_EQ(ic(0.1, 0, 0).p, 13.33);
  EXPECT_DOUBLE_EQ(ic(0.9, 0, 0).p, 1e-7);
}

TEST(Problems, PublishedParameterValues) {
  const ShockTube mm2 = marti_muller_2();
  EXPECT_DOUBLE_EQ(mm2.left.p, 1000.0);
  EXPECT_DOUBLE_EQ(mm2.right.p, 0.01);
  EXPECT_DOUBLE_EQ(mm2.gamma, 5.0 / 3.0);
  const ShockTube s = sod();
  EXPECT_DOUBLE_EQ(s.left.rho / s.right.rho, 8.0);
  EXPECT_DOUBLE_EQ(s.gamma, 1.4);
  const MhdShockTube b1 = balsara_1();
  EXPECT_DOUBLE_EQ(b1.left.bx, b1.right.bx);  // Bx continuous
  EXPECT_DOUBLE_EQ(b1.left.by, 1.0);
  EXPECT_DOUBLE_EQ(b1.right.by, -1.0);
  EXPECT_DOUBLE_EQ(b1.gamma, 2.0);
}

TEST(Problems, SmoothWaveHasExactSolution) {
  const SmoothWave w{};
  const auto ic = smooth_wave_ic(w);
  // At t = 0 the exact solution equals the IC.
  for (const double x : {0.0, 0.21, 0.5, 0.83}) {
    EXPECT_NEAR(ic(x, 0, 0).rho, smooth_wave_exact_rho(w, x, 0.0), 1e-14);
    EXPECT_DOUBLE_EQ(ic(x, 0, 0).vx, w.velocity);
    EXPECT_DOUBLE_EQ(ic(x, 0, 0).p, w.pressure);
  }
  // One full period returns the profile (periodic domain [0, 1]).
  const double t_period = 1.0 / w.velocity;
  EXPECT_NEAR(smooth_wave_exact_rho(w, 0.3, t_period),
              smooth_wave_exact_rho(w, 0.3, 0.0), 1e-12);
  // Density never goes negative.
  EXPECT_LT(w.amplitude, w.rho0);
}

TEST(Problems, KelvinHelmholtzShearAndPerturbation) {
  const KelvinHelmholtz kh{};
  const auto ic = kelvin_helmholtz_ic(kh);
  // Double layer: inner band (|y| < 1/4) streams at +v_sh, the outer band
  // at -v_sh, and the profile matches across the periodic y-boundary.
  EXPECT_NEAR(ic(0.0, 0.0, 0).vx, kh.shear_velocity, 1e-3);
  EXPECT_NEAR(ic(0.0, 0.45, 0).vx, -kh.shear_velocity, 1e-2);
  EXPECT_NEAR(ic(0.0, -0.45, 0).vx, -kh.shear_velocity, 1e-2);
  EXPECT_NEAR(ic(0.0, 0.5, 0).vx, ic(0.0, -0.5, 0).vx, 1e-10);
  // Perturbation peaks on the layers and is bounded by the amplitude.
  EXPECT_NEAR(ic(0.25, 0.25, 0).vy,
              kh.perturb_amplitude * kh.shear_velocity, 2e-5);
  EXPECT_LT(std::abs(ic(0.25, 0.5, 0).vy),
            kh.perturb_amplitude * kh.shear_velocity);
  // Velocity stays subluminal everywhere.
  for (double y = -0.5; y <= 0.5; y += 0.05) {
    const auto p = ic(0.25, y, 0);
    EXPECT_LT(p.v_sq(), 1.0);
  }
}

TEST(Problems, Blast2dIsRadiallySymmetric) {
  const Blast2d b{};
  const auto ic = blast2d_ic(b);
  EXPECT_DOUBLE_EQ(ic(0.05, 0.05, 0).p, b.p_inner);
  EXPECT_DOUBLE_EQ(ic(0.5, 0.5, 0).p, b.p_outer);
  // Same radius, different direction: same state.
  EXPECT_DOUBLE_EQ(ic(0.09, 0.0, 0).p, ic(0.0, 0.09, 0).p);
}

TEST(Problems, FieldLoopIsDivergenceFreeAnalytically) {
  const FieldLoop fl{};
  const auto ic = field_loop_ic(fl);
  // B = A0 (-y/r, x/r): div B = A0 d/dx(-y/r) + A0 d/dy(x/r)
  //                          = A0 (xy/r^3) + A0 (-xy/r^3) = 0.
  // Verify numerically away from the loop edge and center.
  const double h = 1e-6;
  for (const auto& [x, y] : {std::pair{0.1, 0.05}, std::pair{-0.12, 0.2}}) {
    const double dbx_dx = (ic(x + h, y, 0).bx - ic(x - h, y, 0).bx) / (2 * h);
    const double dby_dy = (ic(x, y + h, 0).by - ic(x, y - h, 0).by) / (2 * h);
    EXPECT_NEAR(dbx_dx + dby_dy, 0.0, 1e-6);
  }
  // Field magnitude is constant inside the loop, zero outside.
  EXPECT_NEAR(std::hypot(ic(0.1, 0.1, 0).bx, ic(0.1, 0.1, 0).by), fl.field,
              1e-12);
  EXPECT_DOUBLE_EQ(ic(0.4, 0.4, 0).bx, 0.0);
}

TEST(Problems, MhdBlastHasUniformField) {
  const MhdBlast2d b{};
  const auto ic = mhd_blast2d_ic(b);
  EXPECT_DOUBLE_EQ(ic(0.0, 0.0, 0).bx, b.bx);
  EXPECT_DOUBLE_EQ(ic(0.9, 0.9, 0).bx, b.bx);
  EXPECT_DOUBLE_EQ(ic(0.0, 0.0, 0).p, b.p_inner);
}

}  // namespace
