// Unit tests for the shared-memory runtime: ThreadPool and TaskGraph.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "rshc/common/error.hpp"
#include "rshc/parallel/task_graph.hpp"
#include "rshc/parallel/thread_pool.hpp"

namespace {

using namespace rshc::parallel;

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("bang"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

class ParallelForSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, long long>> {};

TEST_P(ParallelForSweep, CoversEveryIndexExactlyOnce) {
  const auto [threads, n] = GetParam();
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(0, n, [&](long long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (long long i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelForSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1LL, 7LL, 64LL, 1000LL)));

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](long long) { ++calls; });
  pool.parallel_for(5, 3, [&](long long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  pool.parallel_for(0, 100, [&](long long i) { sum.fetch_add(i); }, 16);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A 1-thread pool is the worst case: the outer loop body itself calls
  // parallel_for from the only worker thread.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](long long) {
    pool.parallel_for(0, 8, [&](long long) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](long long i) {
                                   if (i == 37) {
                                     throw std::runtime_error("at 37");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, RequiresAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool(0), rshc::Error);
}

TEST(TaskGraph, RunsAllNodes) {
  ThreadPool pool(2);
  TaskGraph g;
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    g.add([&count] { count.fetch_add(1); });
  }
  g.run(pool);
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(g.size(), 10u);
}

TEST(TaskGraph, RespectsChainOrder) {
  ThreadPool pool(4);
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  auto note = [&](int id) {
    std::scoped_lock lock(m);
    order.push_back(id);
  };
  const auto a = g.add([&] { note(0); });
  const auto b = g.add([&] { note(1); }, {a});
  g.add([&] { note(2); }, {b});
  g.run(pool);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TaskGraph, DiamondDependency) {
  ThreadPool pool(4);
  TaskGraph g;
  std::atomic<int> top_done{0};
  std::atomic<int> mids_done{0};
  std::atomic<bool> bottom_saw_both{false};
  const auto top = g.add([&] { top_done.store(1); });
  const auto l = g.add(
      [&] {
        EXPECT_EQ(top_done.load(), 1);
        mids_done.fetch_add(1);
      },
      {top});
  const auto r = g.add(
      [&] {
        EXPECT_EQ(top_done.load(), 1);
        mids_done.fetch_add(1);
      },
      {top});
  g.add([&] { bottom_saw_both.store(mids_done.load() == 2); }, {l, r});
  g.run(pool);
  EXPECT_TRUE(bottom_saw_both.load());
}

TEST(TaskGraph, ReRunnable) {
  ThreadPool pool(2);
  TaskGraph g;
  std::atomic<int> count{0};
  const auto a = g.add([&] { count.fetch_add(1); });
  g.add([&] { count.fetch_add(10); }, {a});
  g.run(pool);
  g.run(pool);
  g.run(pool);
  EXPECT_EQ(count.load(), 33);
}

TEST(TaskGraph, ForwardDependenciesRejected) {
  TaskGraph g;
  const auto a = g.add([] {});
  (void)a;
  // Depending on a node that does not exist yet (id >= current) must throw.
  EXPECT_THROW(g.add([] {}, {TaskGraph::NodeId{5}}), rshc::Error);
}

TEST(TaskGraph, ExceptionIsRethrownAfterDrain) {
  ThreadPool pool(2);
  TaskGraph g;
  std::atomic<int> ran{0};
  const auto a = g.add([] { throw std::runtime_error("node failed"); });
  g.add([&] { ran.fetch_add(1); }, {a});
  EXPECT_THROW(g.run(pool), std::runtime_error);
  // Downstream node still ran (failure policy documented in the header).
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGraph, EmptyGraphRuns) {
  ThreadPool pool(1);
  TaskGraph g;
  EXPECT_NO_THROW(g.run(pool));
}

TEST(TaskGraph, WideFanOutAndIn) {
  ThreadPool pool(4);
  TaskGraph g;
  std::atomic<long long> sum{0};
  const auto root = g.add([] {});
  std::vector<TaskGraph::NodeId> mids;
  for (long long i = 1; i <= 64; ++i) {
    mids.push_back(g.add([&sum, i] { sum.fetch_add(i); }, {root}));
  }
  std::atomic<long long> total{-1};
  g.add([&] { total.store(sum.load()); },
        std::span<const TaskGraph::NodeId>(mids));
  g.run(pool);
  EXPECT_EQ(total.load(), 64 * 65 / 2);
}

}  // namespace
