#pragma once
// Structural validator for dumped Chrome trace-event JSON (the contract
// behind `RSHC_DUMP_TRACE`). Checks what a human squinting at Perfetto
// cannot: balanced span nesting per track, monotone timestamps, flow ids
// that pair up exactly once and point forward in time, flow endpoints that
// bind to an enclosing span, and rank/thread metadata for every track.
//
// Returns the list of violations (empty = structurally valid) so tests can
// print every problem at once instead of dying on the first.

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "json_mini.hpp"

namespace rshc::testsupport {

// ts values are microseconds printed with 3 decimals (exact ns), so any
// true ordering violation is >= 0.001; this only absorbs float parsing.
inline constexpr double kTraceTsEps = 1e-6;

inline std::vector<std::string> validate_chrome_trace(const JsonValue& root) {
  std::vector<std::string> problems;
  auto problem = [&problems](std::string msg) {
    problems.push_back(std::move(msg));
  };

  const JsonValue& events = root.at("traceEvents");
  if (events.kind != JsonValue::Kind::kArray) {
    problem("traceEvents missing or not an array");
    return problems;
  }

  using Track = std::pair<int, int>;  // (pid, tid)
  std::set<int> span_pids;
  std::set<Track> span_tracks;
  std::set<int> counter_pids;
  std::set<int> named_pids;
  std::set<Track> named_tracks;
  // Spans per track in emission (= begin-time) order, as (ts, end).
  std::map<Track, std::vector<std::pair<double, double>>> spans;
  struct FlowEnd {
    int count = 0;
    double ts = 0.0;
    Track track{};
  };
  // Flow ids are integral in the emitter; quantize the parsed doubles.
  std::map<long long, FlowEnd> flow_starts;  // keyed by flow id
  std::map<long long, FlowEnd> flow_ends;

  bool seen_non_meta = false;
  double prev_ts = 0.0;
  bool have_prev_ts = false;
  for (const JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").string;
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid = static_cast<int>(e.at("tid").number);
    if (ph == "M") {
      if (seen_non_meta) {
        problem("metadata event after the first span/flow event");
      }
      const std::string& mname = e.at("name").string;
      if (mname == "process_name") {
        named_pids.insert(pid);
      } else if (mname == "thread_name") {
        named_tracks.insert({pid, tid});
      } else {
        problem("unknown metadata record: " + mname);
      }
      if (e.at("args").at("name").string.empty()) {
        problem(mname + " metadata for pid " + std::to_string(pid) +
                " has an empty name");
      }
      continue;
    }
    seen_non_meta = true;
    if (!e.has("ts")) {
      problem("event '" + e.at("name").string + "' has no ts");
      continue;
    }
    const double ts = e.at("ts").number;
    if (have_prev_ts && ts + kTraceTsEps < prev_ts) {
      problem("timestamps not monotone: " + e.at("name").string + " at " +
              std::to_string(ts) + " after " + std::to_string(prev_ts));
    }
    prev_ts = ts;
    have_prev_ts = true;

    if (ph == "X") {
      const double dur = e.at("dur").number;
      if (dur < 0.0) {
        problem("span '" + e.at("name").string + "' has negative dur");
      }
      span_pids.insert(pid);
      span_tracks.insert({pid, tid});
      spans[{pid, tid}].emplace_back(ts, ts + dur);
    } else if (ph == "C") {
      // Counter samples: a name to group the track by, a finite numeric
      // args.value. Counters do not join span nesting and their (pid, tid)
      // track needs no thread_name metadata (Perfetto keys them by name).
      if (e.at("name").string.empty()) {
        problem("counter event with an empty name");
      }
      if (e.has("dur")) {
        problem("counter '" + e.at("name").string + "' carries a dur");
      }
      const JsonValue& value = e.at("args").at("value");
      if (value.kind != JsonValue::Kind::kNumber ||
          !std::isfinite(value.number)) {
        problem("counter '" + e.at("name").string +
                "' has no finite numeric args.value");
      }
      counter_pids.insert(pid);
    } else if (ph == "s" || ph == "f") {
      auto& slot = (ph == "s" ? flow_starts
                              : flow_ends)[static_cast<long long>(
          e.at("id").number)];
      ++slot.count;
      slot.ts = ts;
      slot.track = {pid, tid};
      if (ph == "f" && e.at("bp").string != "e") {
        problem("flow end without bp:\"e\" (would bind to the next slice)");
      }
    } else {
      problem("unexpected ph '" + ph + "' for '" + e.at("name").string +
              "'");
    }
  }

  // Balanced nesting per track: spans arrive sorted by begin time; a stack
  // of still-open end times must strictly contain each new span.
  for (const auto& [track, list] : spans) {
    std::vector<double> open;
    for (const auto& [ts, end] : list) {
      while (!open.empty() && open.back() <= ts + kTraceTsEps) {
        open.pop_back();
      }
      if (!open.empty() && end > open.back() + kTraceTsEps) {
        problem("span overlap on pid " + std::to_string(track.first) +
                " tid " + std::to_string(track.second) + ": [" +
                std::to_string(ts) + ", " + std::to_string(end) +
                ") crosses the enclosing span's end " +
                std::to_string(open.back()));
      }
      open.push_back(end);
    }
  }

  // Flow ids pair up exactly once, point forward in time, and both
  // endpoints land inside some span on their own track.
  auto enclosed = [&spans](const FlowEnd& fe) {
    const auto it = spans.find(fe.track);
    if (it == spans.end()) return false;
    for (const auto& [ts, end] : it->second) {
      if (ts <= fe.ts + kTraceTsEps && fe.ts <= end + kTraceTsEps) {
        return true;
      }
    }
    return false;
  };
  for (const auto& [id, start] : flow_starts) {
    if (start.count != 1) {
      problem("flow id " + std::to_string(id) + " started " +
              std::to_string(start.count) + " times");
    }
    const auto fin = flow_ends.find(id);
    if (fin == flow_ends.end()) {
      problem("flow id " + std::to_string(id) + " never finishes");
      continue;
    }
    if (fin->second.ts + kTraceTsEps < start.ts) {
      problem("flow id " + std::to_string(id) + " finishes before it "
              "starts");
    }
    if (!enclosed(start)) {
      problem("flow id " + std::to_string(id) +
              " starts outside any span on its track");
    }
    if (!enclosed(fin->second)) {
      problem("flow id " + std::to_string(id) +
              " finishes outside any span on its track");
    }
  }
  for (const auto& [id, fin] : flow_ends) {
    if (fin.count != 1) {
      problem("flow id " + std::to_string(id) + " finished " +
              std::to_string(fin.count) + " times");
    }
    if (flow_starts.find(id) == flow_starts.end()) {
      problem("flow id " + std::to_string(id) + " finishes but never "
              "starts");
    }
  }

  // Every track that carries spans is labeled. Counter tracks only need
  // the process-level label (Perfetto groups them by counter name).
  for (const int pid : counter_pids) {
    if (named_pids.find(pid) == named_pids.end()) {
      problem("counter pid " + std::to_string(pid) + " has no "
              "process_name metadata");
    }
  }
  for (const int pid : span_pids) {
    if (named_pids.find(pid) == named_pids.end()) {
      problem("pid " + std::to_string(pid) + " has no process_name "
              "metadata");
    }
  }
  for (const auto& track : span_tracks) {
    if (named_tracks.find(track) == named_tracks.end()) {
      problem("pid " + std::to_string(track.first) + " tid " +
              std::to_string(track.second) + " has no thread_name "
              "metadata");
    }
  }
  return problems;
}

}  // namespace rshc::testsupport
